// Benchmarks regenerating every table and figure of the paper (quick
// scale — run cmd/pactbench -full for paper-scale numbers) plus
// microbenchmarks of the numeric kernels. Each experiment benchmark
// prints the paper-style rows once, then times repeated runs.
package pact_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	pact "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netgen"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/stamp"
)

var printedExperiments sync.Map

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	if _, done := printedExperiments.LoadOrStore(name, true); !done {
		fmt.Printf("\n================ %s (quick scale) ================\n", name)
		if err := experiments.Run(name, os.Stdout, false); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
	}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, io.Discard, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq20Ladder regenerates the Section 6 illustrative example: the
// reduced admittance matrices of Eq. (20) and the 4.7 GHz pole.
func BenchmarkEq20Ladder(b *testing.B) { benchExperiment(b, "eq20") }

// BenchmarkFig3InverterPair regenerates Figure 3: transient response of
// the inverter pair with the full, lumped, absent and PACT-reduced line.
func BenchmarkFig3InverterPair(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable1Fig4Multiplier regenerates Table 1 and Figure 4:
// reduction and simulation of multiplier interconnect parasitics.
func BenchmarkTable1Fig4Multiplier(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Fig5Substrate regenerates Table 2 and Figure 5:
// substrate mesh reductions at three frequencies and the transimpedance
// sweep.
func BenchmarkTable2Fig5Substrate(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Fig6Adder regenerates Table 3 and Figure 6: full-adder
// substrate-noise transient with original and reduced mesh.
func BenchmarkTable3Fig6Adder(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4LargeMesh regenerates Table 4: large-mesh reduction with
// the Section 4 memory accounting.
func BenchmarkTable4LargeMesh(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkSection4Complexity regenerates the Section 4 scaling
// comparison between LASO and the block-Padé method.
func BenchmarkSection4Complexity(b *testing.B) { benchExperiment(b, "sec4") }

// BenchmarkAblationAWEStability regenerates the stability ablation: AWE
// order sweep versus PACT's structural guarantees.
func BenchmarkAblationAWEStability(b *testing.B) { benchExperiment(b, "awe") }

// --- microbenchmarks of the kernels ---------------------------------

func meshSystem(b *testing.B) *core.System {
	b.Helper()
	deck, ports, err := netgen.Mesh3D(netgen.SmallMeshOpts())
	if err != nil {
		b.Fatal(err)
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		b.Fatal(err)
	}
	return ex.Sys
}

// BenchmarkReduceLadder100 times the full PACT reduction of the paper's
// 100-segment ladder.
func BenchmarkReduceLadder100(b *testing.B) {
	deck := netgen.Ladder(100, 250, 1.35e-12)
	ex, err := stamp.Extract(deck)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Reduce(ex.Sys, core.Options{FMax: 5e9, Tol: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduceSubstrateMesh times the Table 2 reduction (1521 nodes,
// 25 ports, 3 GHz).
func BenchmarkReduceSubstrateMesh(b *testing.B) {
	sys := meshSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Reduce(sys, core.Options{FMax: 3e9, Tol: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderingMinDegree times minimum-degree ordering of the
// substrate mesh internal block.
func BenchmarkOrderingMinDegree(b *testing.B) {
	sys := meshSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.MinDegree(sys.D)
	}
}

// BenchmarkSymbolicAndFactor times analysis plus numeric Cholesky of the
// mesh internal conductance block.
func BenchmarkSymbolicAndFactor(b *testing.B) {
	sys := meshSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sym := order.Analyze(sys.D, order.MinimumDegree)
		if _, _, err := core.Transform1(sys, core.Options{FMax: 1e9, Ordering: order.MinimumDegree}); err != nil {
			b.Fatal(err)
		}
		_ = sym
	}
}

// BenchmarkExactYEvaluation times one exact Y(jω) evaluation of the mesh
// (complex LDLᵀ factorization + 25 port solves), the per-frequency cost
// of full-network AC analysis in Table 2.
func BenchmarkExactYEvaluation(b *testing.B) {
	sys := meshSystem(b)
	if _, err := sys.Y(complex(0, 1e9)); err != nil { // warm the symbolic cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Y(complex(0, 2e9)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReducedYEvaluation times the same evaluation on the reduced
// model — the speedup that makes Table 2's AC sweep cheap.
func BenchmarkReducedYEvaluation(b *testing.B) {
	sys := meshSystem(b)
	model, _, err := core.Reduce(sys, core.Options{FMax: 3e9, Tol: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Y(complex(0, 2e9))
	}
}

// BenchmarkTransientInverterPair times the Figure 3 transient of the full
// 100-segment line through the SPICE-class simulator.
func BenchmarkTransientInverterPair(b *testing.B) {
	deck := netgen.InverterPair(100, 250, 1.35e-12, netgen.LineFull)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sim.Build(deck)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Transient(2e-9, 0.05e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCFITPipeline times the whole SPICE-in/SPICE-out flow on the
// ladder deck.
func BenchmarkRCFITPipeline(b *testing.B) {
	text := netgen.Ladder(100, 250, 1.35e-12).String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pact.ReduceString(text, pact.Options{FMax: 5e9, Tol: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSparsify regenerates the sparsity-enhancement
// threshold sweep (element count versus accuracy).
func BenchmarkAblationSparsify(b *testing.B) { benchExperiment(b, "sparsify") }

// BenchmarkAblationOrdering regenerates the fill-reducing-ordering
// comparison (minimum degree vs RCM vs natural).
func BenchmarkAblationOrdering(b *testing.B) { benchExperiment(b, "ordering") }

// BenchmarkYSweepParallel times the 81-point exact AC sweep of the Table 2
// mesh using all cores (the serial per-point cost is
// BenchmarkExactYEvaluation).
func BenchmarkYSweepParallel(b *testing.B) {
	sys := meshSystem(b)
	freqs := sim.LogSpace(10e6, 10e9, 81)
	if _, err := sys.YSweep(freqs[:2], 1); err != nil { // warm symbolic cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.YSweep(freqs, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}
