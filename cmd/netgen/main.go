// Command netgen emits the paper's experimental workloads as SPICE decks
// for use with rcfit, spicesim, or any other SPICE tool.
//
// Usage:
//
//	netgen -kind ladder -nseg 100 > line.sp
//	netgen -kind inverterpair > fig2.sp
//	netgen -kind mesh -nx 13 -ny 13 -nz 9 -ports 25 > substrate.sp
//	netgen -kind adder > adder_on_mesh.sp
//	netgen -kind multiplier -stages 8 -sidenets 24 > mult.sp
//	netgen -kind supply > grid.sp
//	netgen -kind powergrid -nodes 1000000 > grid1m.sp
//	netgen -kind clocktree -levels 19 > tree1m.sp
//	netgen -kind wideband -ports 256 > wideband256.sp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("netgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "ladder", "ladder | inverterpair | mesh | adder | multiplier | supply | powergrid | clocktree | wideband")
	nseg := fs.Int("nseg", 100, "ladder segments")
	rtot := fs.Float64("r", 250, "ladder total resistance (ohm)")
	ctot := fs.Float64("c", 1.35e-12, "ladder total capacitance (F)")
	nx := fs.Int("nx", 13, "mesh x nodes")
	ny := fs.Int("ny", 13, "mesh y nodes")
	nz := fs.Int("nz", 9, "mesh z nodes")
	ports := fs.Int("ports", 25, "mesh surface contacts")
	redge := fs.Float64("redge", 630, "mesh edge resistance (ohm)")
	csurf := fs.Float64("csurf", 30e-15, "mesh surface capacitance (F)")
	stages := fs.Int("stages", 8, "multiplier path stages")
	fanout := fs.Int("fanout", 3, "multiplier net fanout")
	segs := fs.Int("segs", 6, "multiplier net segments per branch")
	sideNets := fs.Int("sidenets", 24, "multiplier side nets")
	seed := fs.Int64("seed", 7, "random seed for net parameters")
	nodes := fs.Int("nodes", 0, "powergrid/clocktree preset target node count (overrides -nx/-ny/-levels)")
	levels := fs.Int("levels", 10, "clocktree depth (2^(levels+1)-1 nodes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nseg < 1 {
		return fmt.Errorf("netgen: -nseg must be at least 1, got %d", *nseg)
	}
	if *rtot <= 0 || *ctot <= 0 {
		return fmt.Errorf("netgen: -r and -c must be positive, got %g and %g", *rtot, *ctot)
	}
	if *stages < 1 || *fanout < 1 || *segs < 1 || *sideNets < 0 {
		return fmt.Errorf("netgen: multiplier shape -stages=%d -fanout=%d -segs=%d -sidenets=%d invalid (positive counts, non-negative side nets)",
			*stages, *fanout, *segs, *sideNets)
	}

	var deck *netlist.Deck
	switch *kind {
	case "ladder":
		deck = netgen.Ladder(*nseg, *rtot, *ctot)
	case "inverterpair":
		deck = netgen.InverterPair(*nseg, *rtot, *ctot, netgen.LineFull)
	case "mesh":
		o := netgen.MeshOpts{NX: *nx, NY: *ny, NZ: *nz, REdge: *redge, CSurf: *csurf, NPorts: *ports}
		var portNames []string
		var err error
		deck, portNames, err = netgen.Mesh3D(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: port nodes: %v\n", portNames)
	case "adder":
		o := netgen.MeshOpts{NX: *nx, NY: *ny, NZ: *nz, REdge: *redge, CSurf: *csurf, NPorts: *ports}
		var info *netgen.AdderInfo
		var err error
		deck, info, err = netgen.FullAdderOnMesh(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: monitor node: %s\n", info.Monitor)
	case "multiplier":
		deck = netgen.Multiplier(*stages, *fanout, *segs, *sideNets, *seed)
	case "supply":
		var info *netgen.SupplyInfo
		var err error
		deck, info, err = netgen.Supply(netgen.DefaultSupplyOpts())
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: supply pin %s, far tap %s\n", info.Pin, info.Far)
	case "powergrid":
		o := netgen.PowerGridOpts{NX: *nx, NY: *ny, RSeg: 0.8, CNode: 60e-15, NPorts: *ports}
		if *nodes > 0 {
			o = netgen.PowerGridPreset(*nodes)
		}
		var portNames []string
		var err error
		deck, portNames, err = netgen.PowerGrid(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: %dx%d grid, %d port nodes\n", o.NX, o.NY, len(portNames))
	case "clocktree":
		o := netgen.ClockTreeOpts{Levels: *levels, RSeg: 2.5, CSeg: 4e-15, NLeafPorts: 8}
		if *nodes > 0 {
			o = netgen.ClockTreePreset(*nodes)
		}
		var portNames []string
		var err error
		deck, portNames, err = netgen.ClockTree(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: depth-%d tree (%d nodes), ports %v\n",
			o.Levels, netgen.ClockTreeNodes(o.Levels), portNames)
	case "wideband":
		o := netgen.WideBandPreset(*ports)
		var portNames []string
		var err error
		deck, portNames, err = netgen.WideBand(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "netgen: %dx%d graded grid, %d port nodes over %g decades\n",
			o.NX, o.NY, len(portNames), o.GradeDecades)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return deck.Write(stdout)
}
