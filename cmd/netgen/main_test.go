package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestRunKinds(t *testing.T) {
	for _, kind := range []string{"ladder", "inverterpair", "mesh", "adder", "multiplier", "supply"} {
		var out, errw bytes.Buffer
		args := []string{"-kind", kind}
		if kind == "adder" {
			args = append(args, "-nx", "5", "-ny", "5", "-nz", "3")
		}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		// Every generated deck must re-parse.
		if _, err := netlist.ParseString(out.String()); err != nil {
			t.Fatalf("%s deck does not re-parse: %v", kind, err)
		}
		if !strings.Contains(out.String(), ".end") {
			t.Fatalf("%s deck incomplete", kind)
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "zzz"}, &out, &errw); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
