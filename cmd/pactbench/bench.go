package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/experiments"
	"repro/internal/netgen"
	"repro/internal/par"
	"repro/internal/stamp"
)

// BenchReport is the machine-readable benchmark output of pactbench
// -json: environment metadata plus serial (GOMAXPROCS=1) and parallel
// (ambient GOMAXPROCS) timings per kernel. The speedup field is the
// measured serial/parallel ratio on the machine that produced the file —
// meaningful only alongside num_cpu/gomaxprocs, which is why both are
// recorded.
type BenchReport struct {
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	BenchTimeNs int64         `json:"bench_time_ns"`
	Results     []BenchResult `json:"results"`
}

// BenchResult is one kernel's measurement.
type BenchResult struct {
	Name            string  `json:"name"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	SerialIters     int     `json:"serial_iters"`
	ParallelIters   int     `json:"parallel_iters"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
}

// benchCase is a named operation prepared once and timed under both
// GOMAXPROCS settings.
type benchCase struct {
	name string
	op   func() error
}

// measure times op until benchtime has elapsed (at least one iteration)
// and reports ns/op plus allocation rates from the runtime.MemStats
// deltas (global counters, so allocations on pool goroutines are
// included).
func measure(op func() error, benchtime time.Duration) (nsPerOp, allocsPerOp, bytesPerOp float64, iters int, err error) {
	if err := op(); err != nil { // warm-up: caches, one-time symbolic work
		return 0, 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var elapsed time.Duration
	for elapsed < benchtime {
		if err := op(); err != nil {
			return 0, 0, 0, 0, err
		}
		iters++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n,
		iters, nil
}

// benchCases builds the benchmark set. "kernels" covers the parallelized
// primitives (fast enough for a CI smoke run); "all" adds end-to-end
// experiment regenerations.
func benchCases(set string) ([]benchCase, error) {
	mat := dense.New(512, 512)
	mat2 := dense.New(512, 512)
	fillMat(mat, 1)
	fillMat(mat2, 2)
	vecMat := dense.New(1024, 1024)
	fillMat(vecMat, 3)
	vec := make([]float64, 1024)
	for i := range vec {
		vec[i] = float64(i%13) * 0.5
	}

	deck, ports, err := netgen.Mesh3D(netgen.SmallMeshOpts())
	if err != nil {
		return nil, err
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	sys := ex.Sys
	opts := core.Options{FMax: 3e9, Tol: 0.05}
	tr, _, err := core.Transform1(sys, opts)
	if err != nil {
		return nil, err
	}
	sweep := make([]float64, 16)
	for i := range sweep {
		sweep[i] = 1e7 * math.Pow(10, 3*float64(i)/15)
	}

	cases := []benchCase{
		{"dense.Mul/512x512", func() error {
			dense.Mul(mat, mat2)
			return nil
		}},
		{"dense.MulVec/1024x1024", func() error {
			vecMat.MulVec(vec)
			return nil
		}},
		{"core.Transform1/mesh25", func() error {
			_, _, err := core.Transform1(sys, opts)
			return err
		}},
		{"core.RPrimeBlock/mesh25", func() error {
			tr.RPrimeBlock()
			return nil
		}},
		{"core.YSweep/mesh25x16", func() error {
			_, err := sys.YSweep(sweep, par.Workers(len(sweep)))
			return err
		}},
		{"core.Reduce/mesh25", func() error {
			_, _, err := core.Reduce(sys, opts)
			return err
		}},
	}
	if set == "all" {
		for _, name := range []string{"eq20", "sparsify"} {
			name := name
			cases = append(cases, benchCase{"experiments/" + name, func() error {
				return experiments.Run(name, io.Discard, false)
			}})
		}
	}
	return cases, nil
}

func fillMat(m *dense.Mat, seed uint64) {
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(int64(s>>11)) / float64(1<<52)
	}
}

// runBenchJSON executes the benchmark set serially (GOMAXPROCS=1) and at
// the ambient GOMAXPROCS and writes the report as JSON to path ("-" for
// stdout).
func runBenchJSON(path, set string, benchtime time.Duration, stdout io.Writer) error {
	if set != "kernels" && set != "all" {
		return fmt.Errorf("unknown -benchset %q (want kernels or all)", set)
	}
	if benchtime <= 0 {
		return fmt.Errorf("-benchtime must be positive, got %v", benchtime)
	}
	cases, err := benchCases(set)
	if err != nil {
		return err
	}
	ambient := runtime.GOMAXPROCS(0)
	report := &BenchReport{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  ambient,
		BenchTimeNs: benchtime.Nanoseconds(),
	}
	for _, bc := range cases {
		runtime.GOMAXPROCS(1)
		serialNs, _, _, serialIters, err := measure(bc.op, benchtime)
		runtime.GOMAXPROCS(ambient)
		if err != nil {
			return fmt.Errorf("%s (serial): %w", bc.name, err)
		}
		parNs, allocs, bytes, parIters, err := measure(bc.op, benchtime)
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", bc.name, err)
		}
		report.Results = append(report.Results, BenchResult{
			Name:            bc.name,
			SerialNsPerOp:   serialNs,
			ParallelNsPerOp: parNs,
			Speedup:         serialNs / parNs,
			SerialIters:     serialIters,
			ParallelIters:   parIters,
			AllocsPerOp:     allocs,
			BytesPerOp:      bytes,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, GOMAXPROCS %d, %d CPUs)\n",
		path, len(report.Results), ambient, report.NumCPU)
	return nil
}
