package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/chol"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/experiments"
	"repro/internal/netgen"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/stamp"
)

// BenchReport is the machine-readable benchmark output of pactbench
// -json: environment metadata plus serial (GOMAXPROCS=1) and parallel
// (ambient GOMAXPROCS) timings per kernel. The speedup field is the
// measured serial/parallel ratio on the machine that produced the file —
// meaningful only alongside num_cpu/gomaxprocs, which is why both are
// recorded.
type BenchReport struct {
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	BenchTimeNs int64         `json:"bench_time_ns"`
	Results     []BenchResult `json:"results"`
}

// BenchResult is one kernel's measurement. The factorization kernels
// additionally report their known FLOP count as a parallel-leg GFLOP/s
// rate plus the supernode count and amalgamation fill of the factor
// they exercise, so a report shows how the blocked kernel's arithmetic
// density changes alongside its wall-clock time.
type BenchResult struct {
	Name            string  `json:"name"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	SerialIters     int     `json:"serial_iters"`
	ParallelIters   int     `json:"parallel_iters"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	GFLOPS          float64 `json:"gflops,omitempty"`
	Supernodes      int     `json:"supernodes,omitempty"`
	FillNNZ         int     `json:"fill_nnz,omitempty"`
	// The service rows (benchset "service") report a concurrent-client
	// workload instead of a serial/parallel pair: throughput, tail
	// latency, and the model-cache hit rate over the row's requests. For
	// those rows ParallelNsPerOp is the mean request latency and the
	// serial leg is not run (SerialNsPerOp and Speedup are zero).
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	P99NsPerOp     float64 `json:"p99_ns_per_op,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	// The multipoint rows (benchset "multipoint") report the reduced
	// model next to its wall time: retained pole count, max relative
	// Y(s) error against the dense oracle over the band, and the
	// multi-point stage splits (per-shift factorization under the shared
	// symbolic, basis union) from one instrumented run.
	Poles         int     `json:"poles,omitempty"`
	MaxRelErr     float64 `json:"max_rel_err,omitempty"`
	ShiftFactorNs float64 `json:"shift_factor_ns,omitempty"`
	BasisUnionNs  float64 `json:"basis_union_ns,omitempty"`
}

// benchCase is a named operation prepared once and timed under both
// GOMAXPROCS settings. flops, supernodes and fill are optional metadata
// copied into the result when nonzero.
type benchCase struct {
	name       string
	op         func() error
	flops      float64 // FLOPs per op, when the kernel's count is known
	supernodes int     // supernode count of the factor being exercised
	fill       int     // amalgamation fill (explicit zeros) of that factor
	procs      int     // parallel-leg GOMAXPROCS override (0 = ambient)
}

// measure times op until benchtime has elapsed (at least one iteration)
// and reports ns/op plus allocation rates from the runtime.MemStats
// deltas (global counters, so allocations on pool goroutines are
// included).
func measure(op func() error, benchtime time.Duration) (nsPerOp, allocsPerOp, bytesPerOp float64, iters int, err error) {
	if err := op(); err != nil { // warm-up: caches, one-time symbolic work
		return 0, 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var elapsed time.Duration
	for elapsed < benchtime {
		if err := op(); err != nil {
			return 0, 0, 0, 0, err
		}
		iters++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n,
		iters, nil
}

// benchCases builds the benchmark set. "kernels" covers the parallelized
// primitives (fast enough for a CI smoke run), "factor" the supernodal-
// versus-up-looking comparison on a mesh at the paper's full-chip scale
// (seconds per iteration), "scale" the DAG-versus-level schedule rows on
// a 100k-node power grid, and "all" is everything plus end-to-end
// experiment regenerations.
func benchCases(set string) ([]benchCase, error) {
	var cases []benchCase
	if set == "kernels" || set == "all" {
		kc, err := kernelCases()
		if err != nil {
			return nil, err
		}
		cases = append(cases, kc...)
	}
	if set == "factor" || set == "all" {
		fc, err := factorCases()
		if err != nil {
			return nil, err
		}
		cases = append(cases, fc...)
	}
	if set == "scale" || set == "all" {
		sc, err := scaleCases()
		if err != nil {
			return nil, err
		}
		cases = append(cases, sc...)
	}
	if set == "all" {
		for _, name := range []string{"eq20", "sparsify"} {
			name := name
			cases = append(cases, benchCase{name: "experiments/" + name, op: func() error {
				return experiments.Run(name, io.Discard, false)
			}})
		}
	}
	return cases, nil
}

func kernelCases() ([]benchCase, error) {
	mat := dense.New(512, 512)
	mat2 := dense.New(512, 512)
	fillMat(mat, 1)
	fillMat(mat2, 2)
	vecMat := dense.New(1024, 1024)
	fillMat(vecMat, 3)
	vec := make([]float64, 1024)
	for i := range vec {
		vec[i] = float64(i%13) * 0.5
	}

	deck, ports, err := netgen.Mesh3D(netgen.SmallMeshOpts())
	if err != nil {
		return nil, err
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	sys := ex.Sys
	opts := core.Options{FMax: 3e9, Tol: 0.05}
	tr, _, err := core.Transform1(sys, opts)
	if err != nil {
		return nil, err
	}
	sweep := make([]float64, 16)
	for i := range sweep {
		sweep[i] = 1e7 * math.Pow(10, 3*float64(i)/15)
	}

	// Factorization/solve kernels on the permuted internal conductance
	// block of the same mesh: supernodal and up-looking factor the
	// identical reordered matrix, and the solve pair runs the same 25
	// right-hand sides blocked versus one column at a time.
	sym := order.Analyze(sys.D, order.MinimumDegree)
	dperm := sys.D.PermuteSym(sym.Perm)
	ss, err := chol.AnalyzeSuper(dperm, sym, order.SupernodeOptions{})
	if err != nil {
		return nil, err
	}
	factUp, err := chol.FactorizeStrategy(dperm, sym, chol.StrategyUpLooking)
	if err != nil {
		return nil, err
	}
	factSuper, err := ss.Factorize(dperm)
	if err != nil {
		return nil, err
	}
	nrhs := sys.M
	rhs := make([]float64, nrhs*sys.N)
	for i := range rhs {
		rhs[i] = float64(i%17)*0.25 + 1
	}
	work := make([]float64, len(rhs))
	solveFlops := 4 * float64(factSuper.NNZ()) * float64(nrhs)

	return []benchCase{
		{name: "dense.Mul/512x512", op: func() error {
			dense.Mul(mat, mat2)
			return nil
		}},
		{name: "dense.MulVec/1024x1024", op: func() error {
			vecMat.MulVec(vec)
			return nil
		}},
		{name: "chol.Factorize/mesh25/supernodal", op: func() error {
			_, err := ss.Factorize(dperm)
			return err
		}, flops: ss.FlopEstimate(), supernodes: ss.NSuper(), fill: ss.Fill()},
		{name: "chol.Factorize/mesh25/uplooking", op: func() error {
			_, err := chol.FactorizeStrategy(dperm, sym, chol.StrategyUpLooking)
			return err
		}, flops: factUp.FlopEstimate()},
		{name: "chol.SolveMulti/mesh25x25", op: func() error {
			copy(work, rhs)
			factSuper.SolveMulti(work, nrhs)
			return nil
		}, flops: solveFlops},
		{name: "chol.Solve/mesh25x25/sequential", op: func() error {
			copy(work, rhs)
			for j := 0; j < nrhs; j++ {
				factSuper.Solve(work[j*sys.N : (j+1)*sys.N])
			}
			return nil
		}, flops: solveFlops},
		{name: "core.Transform1/mesh25", op: func() error {
			_, _, err := core.Transform1(sys, opts)
			return err
		}},
		{name: "core.RPrimeBlock/mesh25", op: func() error {
			tr.RPrimeBlock()
			return nil
		}},
		{name: "core.YSweep/mesh25x16", op: func() error {
			_, err := sys.YSweep(sweep, par.Workers(len(sweep)))
			return err
		}},
		{name: "core.Reduce/mesh25", op: func() error {
			_, _, err := core.Reduce(sys, opts)
			return err
		}},
	}, nil
}

// factorCases pits the supernodal kernel against the up-looking baseline
// on a mesh large enough that blocking matters: ~20k internal nodes and
// 64 ports, above the default dispatch threshold. Iterations take
// seconds, so these run in the "factor"/"all" sets rather than the CI
// "kernels" smoke set.
func factorCases() ([]benchCase, error) {
	deck, ports, err := netgen.Mesh3D(netgen.LargeMeshOpts(64))
	if err != nil {
		return nil, err
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	sys := ex.Sys
	opts := core.Options{FMax: 3e9, Tol: 0.05}
	sym := order.Analyze(sys.D, order.MinimumDegree)
	dperm := sys.D.PermuteSym(sym.Perm)
	ss, err := chol.AnalyzeSuper(dperm, sym, order.SupernodeOptions{})
	if err != nil {
		return nil, err
	}
	factUp, err := chol.FactorizeStrategy(dperm, sym, chol.StrategyUpLooking)
	if err != nil {
		return nil, err
	}
	factSuper, err := ss.Factorize(dperm)
	if err != nil {
		return nil, err
	}
	const nrhs = 64
	rhs := make([]float64, nrhs*sys.N)
	for i := range rhs {
		rhs[i] = float64(i%17)*0.25 + 1
	}
	rwork := make([]float64, len(rhs))

	// Complex LDLᵀ on the same mesh at one AC point: the D + sE union
	// pattern is analyzed once (as a frequency sweep would) and every
	// iteration pays only the numeric panels through the precomputed
	// supernodal routing.
	union := sparse.PatternUnion(sys.D, sys.E)
	symU := order.Analyze(union, order.MinimumDegree)
	dp := sys.D.PermuteSym(symU.Perm)
	ep := sys.E.PermuteSym(symU.Perm)
	pat := sparse.PatternUnion(dp, ep)
	dPos, ePos := alignPositions(pat, dp, ep)
	sv := complex(0, 2*math.Pi*1e9)
	val := func(p int) complex128 {
		var v complex128
		if q := dPos[p]; q >= 0 {
			v += complex(dp.Val[q], 0)
		}
		if q := ePos[p]; q >= 0 {
			v += sv * complex(ep.Val[q], 0)
		}
		return v
	}
	ssU, err := chol.AnalyzeSuper(pat, symU, order.SupernodeOptions{})
	if err != nil {
		return nil, err
	}
	factC, err := ssU.FactorizeComplex(pat, val)
	if err != nil {
		return nil, err
	}
	crhs := make([]complex128, nrhs*sys.N)
	for i := range crhs {
		crhs[i] = complex(float64(i%17)*0.25+1, float64(i%11)*0.5-2)
	}
	cwork := make([]complex128, len(crhs))

	// Dense micro-kernel rows: the tiled primitives the supernodal panels
	// are built on, at a representative panel shape, with exact FLOP
	// counts so the report shows the per-kernel arithmetic rate the
	// factorization composes.
	const (
		mkH, mkW, mkK = 192, 48, 64 // update target 192×48, rank-64 descendant
		tsH, tsW      = 384, 48     // triangular solve: 48 pivots, 336 below rows
	)
	mkEntries := float64(mkH*mkW - mkW*(mkW-1)/2) // trapezoid entries
	mkC := make([]float64, mkH*mkW)
	mkA := make([]float64, mkK*mkH)
	mkCC := make([]complex128, mkH*mkW)
	mkCA := make([]complex128, mkK*mkH)
	mkD := make([]complex128, mkK)
	for i := range mkA {
		mkA[i] = float64(i%19)*0.125 - 1
		mkCA[i] = complex(float64(i%19)*0.125-1, float64(i%7)*0.25)
	}
	for i := range mkD {
		mkD[i] = complex(2+float64(i%5), 0.5)
	}
	tsP := make([]float64, tsH*tsW)
	for c := 0; c < tsW; c++ {
		for i := c; i < tsH; i++ {
			tsP[c*tsH+i] = float64((i+c)%13)*0.0625 + 0.01
		}
		tsP[c*tsH+c] = 3 + float64(c%4) // well-conditioned pivots
	}
	tsWork := make([]float64, tsH*tsW)

	// The Transform1 comparison toggles the dispatch threshold so the
	// whole first congruence (factorization plus all port solves) runs on
	// one kernel or the other.
	upLooking := func(op func() error) func() error {
		return func() error {
			old := chol.SupernodalMinOrder
			chol.SupernodalMinOrder = int(^uint(0) >> 1)
			defer func() { chol.SupernodalMinOrder = old }()
			return op()
		}
	}
	return []benchCase{
		{name: "chol.Factorize/meshL/supernodal", op: func() error {
			_, err := ss.Factorize(dperm)
			return err
		}, flops: ss.FlopEstimate(), supernodes: ss.NSuper(), fill: ss.Fill()},
		{name: "chol.Factorize/meshL/uplooking", op: func() error {
			_, err := chol.FactorizeStrategy(dperm, sym, chol.StrategyUpLooking)
			return err
		}, flops: factUp.FlopEstimate()},
		{name: "core.Transform1/meshL/supernodal", op: func() error {
			_, _, err := core.Transform1(sys, opts)
			return err
		}, supernodes: ss.NSuper(), fill: ss.Fill()},
		{name: "chol.FactorizeComplex/meshL/supernodal", op: func() error {
			_, err := ssU.FactorizeComplex(pat, val)
			return err
		}, flops: 4 * ssU.FlopEstimate(), supernodes: ssU.NSuper(), fill: ssU.Fill()},
		{name: "chol.SolveMulti/meshLx64", op: func() error {
			copy(rwork, rhs)
			factSuper.SolveMulti(rwork, nrhs)
			return nil
		}, flops: 4 * float64(factSuper.NNZ()) * nrhs},
		{name: "chol.ComplexSolveMulti/meshLx64", op: func() error {
			copy(cwork, crhs)
			return factC.SolveMulti(cwork, nrhs)
		}, flops: 16 * float64(ssU.TrapNNZ()) * nrhs},
		{name: "dense.RankKTrapAccum/192x48k64", op: func() error {
			dense.RankKTrapAccum(mkC, mkH, mkW, mkA, mkH, 0, mkK)
			return nil
		}, flops: 2 * float64(mkK) * mkEntries},
		{name: "dense.CRankKTrapAccum/192x48k64", op: func() error {
			dense.CRankKTrapAccum(mkCC, mkH, mkW, mkCA, mkH, 0, mkK, mkD)
			return nil
		}, flops: 8 * float64(mkK) * mkEntries},
		{name: "dense.TrsmLLBelow/384x48", op: func() error {
			copy(tsWork, tsP)
			dense.TrsmLLBelow(tsWork, tsH, tsW)
			return nil
		}, flops: float64(tsH-tsW) * float64(tsW) * float64(tsW)},
		{name: "core.Transform1/meshL/uplooking", op: upLooking(func() error {
			_, _, err := core.Transform1(sys, opts)
			return err
		})},
	}, nil
}

// scaleCases measures the tentpole on a ≥100k-node power grid: the
// DAG-scheduled supernodal factorization against the level-by-level
// schedule at GOMAXPROCS 1/2/4/8 (each row's serial leg is the same
// GOMAXPROCS=1 run, so the speedup column is the schedule's scaling
// curve), plus the pooled-workspace re-factorization loop whose
// allocs_per_op column pins the steady-state allocation behavior the
// AC sweep depends on. Setup extracts and orders the mesh once;
// iterations pay only numeric factorization.
func scaleCases() ([]benchCase, error) {
	deck, ports, err := netgen.PowerGrid(netgen.PowerGridPreset(100_000))
	if err != nil {
		return nil, err
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	sys := ex.Sys
	sym := order.Analyze(sys.D, order.MinimumDegree)
	dperm := sys.D.PermuteSym(sym.Perm)
	ss, err := chol.AnalyzeSuper(dperm, sym, order.SupernodeOptions{})
	if err != nil {
		return nil, err
	}
	var cases []benchCase
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		for _, s := range []struct {
			tag   string
			sched chol.Schedule
		}{{"dag", chol.ScheduleDAG}, {"level", chol.ScheduleLevel}} {
			s := s
			ws := ss.NewWorkspace()
			cases = append(cases, benchCase{
				name:  fmt.Sprintf("chol.FactorizeOpt/grid100k/%s/p%d", s.tag, p),
				procs: p,
				op: func() error {
					_, err := ss.FactorizeOpt(dperm, s.sched, ws)
					return err
				},
				flops: ss.FlopEstimate(), supernodes: ss.NSuper(), fill: ss.Fill(),
			})
		}
	}
	// The repeated-refactorization loop: one workspace, real and complex
	// passes plus a multi-RHS solve per op — the YSweep steady state.
	wsLoop := ss.NewWorkspace()
	val := func(p int) complex128 {
		return complex(dperm.Val[p], 0.25*dperm.Val[p])
	}
	nrhs := len(ports)
	rhs := make([]float64, nrhs*sys.N)
	for i := range rhs {
		rhs[i] = float64(i%17)*0.25 + 1
	}
	cases = append(cases, benchCase{
		name: "chol.Refactorize/grid100k/pooled",
		op: func() error {
			f, err := ss.FactorizeOpt(dperm, chol.ScheduleDAG, wsLoop)
			if err != nil {
				return err
			}
			f.SolveMulti(rhs, nrhs)
			_, err = ss.FactorizeComplexOpt(dperm, val, chol.ScheduleDAG, wsLoop)
			return err
		},
		flops: 5 * ss.FlopEstimate(), supernodes: ss.NSuper(), fill: ss.Fill(),
	})
	return cases, nil
}

// alignPositions maps each stored position of the union pattern to the
// matching position in a and b (-1 when absent), so a complex value
// closure can assemble D + sE without per-entry searches.
func alignPositions(pat, a, b *sparse.CSR) (aPos, bPos []int) {
	aPos = make([]int, pat.NNZ())
	bPos = make([]int, pat.NNZ())
	for p := range aPos {
		aPos[p] = -1
		bPos[p] = -1
	}
	for i := 0; i < pat.Rows; i++ {
		pa := a.RowPtr[i]
		pb := b.RowPtr[i]
		for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
			j := pat.Col[p]
			for pa < a.RowPtr[i+1] && a.Col[pa] < j {
				pa++
			}
			if pa < a.RowPtr[i+1] && a.Col[pa] == j {
				aPos[p] = pa
			}
			for pb < b.RowPtr[i+1] && b.Col[pb] < j {
				pb++
			}
			if pb < b.RowPtr[i+1] && b.Col[pb] == j {
				bPos[p] = pb
			}
		}
	}
	return aPos, bPos
}

func fillMat(m *dense.Mat, seed uint64) {
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(int64(s>>11)) / float64(1<<52)
	}
}

// runBenchJSON executes the benchmark set serially (GOMAXPROCS=1) and at
// the ambient GOMAXPROCS and writes the report as JSON to path ("-" for
// stdout).
func runBenchJSON(path, set string, benchtime time.Duration, stdout io.Writer) error {
	if set != "kernels" && set != "factor" && set != "scale" && set != "frontend" && set != "service" && set != "multipoint" && set != "all" {
		return fmt.Errorf("unknown -benchset %q (want kernels, factor, scale, frontend, service, multipoint or all)", set)
	}
	if benchtime <= 0 {
		return fmt.Errorf("-benchtime must be positive, got %v", benchtime)
	}
	cases, err := benchCases(set)
	if err != nil {
		return err
	}
	ambient := runtime.GOMAXPROCS(0)
	report := &BenchReport{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  ambient,
		BenchTimeNs: benchtime.Nanoseconds(),
	}
	for _, bc := range cases {
		runtime.GOMAXPROCS(1)
		serialNs, _, _, serialIters, err := measure(bc.op, benchtime)
		if bc.procs > 0 {
			runtime.GOMAXPROCS(bc.procs)
		} else {
			runtime.GOMAXPROCS(ambient)
		}
		if err != nil {
			runtime.GOMAXPROCS(ambient)
			return fmt.Errorf("%s (serial): %w", bc.name, err)
		}
		parNs, allocs, bytes, parIters, err := measure(bc.op, benchtime)
		runtime.GOMAXPROCS(ambient)
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", bc.name, err)
		}
		res := BenchResult{
			Name:            bc.name,
			SerialNsPerOp:   serialNs,
			ParallelNsPerOp: parNs,
			Speedup:         serialNs / parNs,
			SerialIters:     serialIters,
			ParallelIters:   parIters,
			AllocsPerOp:     allocs,
			BytesPerOp:      bytes,
			Supernodes:      bc.supernodes,
			FillNNZ:         bc.fill,
		}
		if bc.flops > 0 && parNs > 0 {
			res.GFLOPS = bc.flops / parNs // flop/ns = 1e9 flop/s
		}
		report.Results = append(report.Results, res)
	}
	if set == "frontend" || set == "all" {
		rows, err := frontendResults(benchtime)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rows...)
	}
	if set == "service" || set == "all" {
		rows, err := serviceResults(benchtime)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rows...)
	}
	if set == "multipoint" || set == "all" {
		rows, err := multipointResults(benchtime)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, rows...)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, GOMAXPROCS %d, %d CPUs)\n",
		path, len(report.Results), ambient, report.NumCPU)
	return nil
}
