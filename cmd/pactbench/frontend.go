package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/order"
	"repro/internal/stamp"
)

// frontendResults benchmarks the deck-to-factorizer front end stage by
// stage on two 100k-node presets: a power grid (wide, duplicate-heavy
// stamping) and a clock tree (deep, already near-optimal ordering).
// Each row reports one stage — parse, stamp, assemble, order, symbolic —
// with the serial leg at GOMAXPROCS=1 and the parallel leg at the
// ambient setting, using the per-stage wall times the pipeline itself
// records (Extraction.StampNs/AssembleNs, Symbolic.OrderNs/SymbolicNs)
// rather than re-timing around the calls, so the rows measure exactly
// what rcfit -v and /statz report.
func frontendResults(benchtime time.Duration) ([]BenchResult, error) {
	var out []BenchResult
	for _, preset := range []struct {
		tag   string
		build func() (*netlist.Deck, []string, error)
	}{
		{"grid100k", func() (*netlist.Deck, []string, error) {
			return netgen.PowerGrid(netgen.PowerGridPreset(100_000))
		}},
		{"tree100k", func() (*netlist.Deck, []string, error) {
			return netgen.ClockTree(netgen.ClockTreePreset(100_000))
		}},
	} {
		deck, ports, err := preset.build()
		if err != nil {
			return nil, err
		}
		rows, err := frontendPresetRows(preset.tag, deck, ports, benchtime)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// frontendPresetRows produces the five stage rows of one preset.
func frontendPresetRows(tag string, deck *netlist.Deck, ports []string, benchtime time.Duration) ([]BenchResult, error) {
	text := deck.String()

	// Parse: the deck's own recorded ParseNs per op (the scanner is
	// single-threaded, so the two legs should agree — a gap is scheduler
	// noise, not speedup).
	parse := func() ([]int64, error) {
		d, err := netlist.ParseString(text)
		if err != nil {
			return nil, err
		}
		return []int64{d.ParseNs}, nil
	}
	// Stamp and assemble: one Extract per op, split by the extraction's
	// stage accounting.
	extract := func() ([]int64, error) {
		ex, err := stamp.Extract(deck, ports...)
		if err != nil {
			return nil, err
		}
		return []int64{ex.StampNs, ex.AssembleNs}, nil
	}
	// Order and symbolic: one Analyze of the internal conductance block
	// per op. The system is extracted once outside the timed loop.
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	analyze := func() ([]int64, error) {
		sym := order.Analyze(ex.Sys.D, order.MinimumDegree)
		return []int64{sym.OrderNs, sym.SymbolicNs}, nil
	}

	var out []BenchResult
	for _, grp := range []struct {
		stages []string
		op     func() ([]int64, error)
	}{
		{[]string{"parse"}, parse},
		{[]string{"stamp", "assemble"}, extract},
		{[]string{"order", "symbolic"}, analyze},
	} {
		rows, err := frontendStageRows(tag, grp.stages, grp.op, benchtime)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// frontendStageRows times op under both GOMAXPROCS legs and splits the
// per-stage nanoseconds it returns into one BenchResult per stage name.
func frontendStageRows(tag string, stages []string, op func() ([]int64, error), benchtime time.Duration) ([]BenchResult, error) {
	ambient := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(1)
	serialNs, serialIters, err := accumulateStages(len(stages), op, benchtime)
	runtime.GOMAXPROCS(ambient)
	if err != nil {
		return nil, fmt.Errorf("frontend.%s/%s (serial): %w", stages[0], tag, err)
	}
	parNs, parIters, err := accumulateStages(len(stages), op, benchtime)
	if err != nil {
		return nil, fmt.Errorf("frontend.%s/%s (parallel): %w", stages[0], tag, err)
	}
	out := make([]BenchResult, len(stages))
	for i, stage := range stages {
		res := BenchResult{
			Name:            "frontend." + stage + "/" + tag,
			SerialNsPerOp:   serialNs[i],
			ParallelNsPerOp: parNs[i],
			SerialIters:     serialIters,
			ParallelIters:   parIters,
		}
		if parNs[i] > 0 {
			res.Speedup = serialNs[i] / parNs[i]
		}
		out[i] = res
	}
	return out, nil
}

// accumulateStages runs op until benchtime elapses (at least once after
// a warm-up iteration) and returns the mean per-stage nanoseconds.
func accumulateStages(nStages int, op func() ([]int64, error), benchtime time.Duration) ([]float64, int, error) {
	if _, err := op(); err != nil { // warm-up
		return nil, 0, err
	}
	sums := make([]int64, nStages)
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < benchtime; elapsed = time.Since(start) {
		ns, err := op()
		if err != nil {
			return nil, 0, err
		}
		if len(ns) != nStages {
			return nil, 0, fmt.Errorf("stage split returned %d values, want %d", len(ns), nStages)
		}
		for i, v := range ns {
			sums[i] += v
		}
		iters++
	}
	out := make([]float64, nStages)
	for i, s := range sums {
		out[i] = float64(s) / float64(iters)
	}
	return out, iters, nil
}
