package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// runBenchGate compares a freshly produced benchmark report against a
// committed baseline and fails when any kernel present in both slowed
// down by more than threshold×. The ratio uses the parallel-leg ns/op of
// each report. The default threshold is deliberately generous: the
// baseline was produced on whatever machine committed BENCH.json, and
// both reports carry go_version/num_cpu/gomaxprocs so a reader can judge
// whether a flagged ratio is a code regression or a hardware gap.
// Kernels present in only one report are listed but never fail the gate,
// so adding or retiring benchmarks does not require a lockstep baseline
// update.
func runBenchGate(baselinePath, freshPath string, threshold float64, stdout io.Writer) error {
	if threshold <= 1 {
		return fmt.Errorf("-threshold must exceed 1, got %g", threshold)
	}
	base, err := readReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fresh, err := readReport(freshPath)
	if err != nil {
		return fmt.Errorf("fresh report: %w", err)
	}
	fmt.Fprintf(stdout, "benchgate: baseline %s (%s %s/%s, %d CPUs) vs fresh %s (%s %s/%s, %d CPUs), threshold %.2fx\n",
		baselinePath, base.GoVersion, base.GOOS, base.GOARCH, base.NumCPU,
		freshPath, fresh.GoVersion, fresh.GOOS, fresh.GOARCH, fresh.NumCPU, threshold)
	baseBy := make(map[string]BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	var regressed []string
	for _, r := range fresh.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(stdout, "benchgate: %-40s new kernel, no baseline\n", r.Name)
			continue
		}
		delete(baseBy, r.Name)
		if b.ParallelNsPerOp <= 0 {
			fmt.Fprintf(stdout, "benchgate: %-40s baseline has no timing\n", r.Name)
			continue
		}
		ratio := r.ParallelNsPerOp / b.ParallelNsPerOp
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(stdout, "benchgate: %-40s %10.3fms -> %10.3fms  %5.2fx  %s\n",
			r.Name, b.ParallelNsPerOp/1e6, r.ParallelNsPerOp/1e6, ratio, status)
	}
	stale := make([]string, 0, len(baseBy))
	for name := range baseBy {
		stale = append(stale, name)
	}
	sort.Strings(stale)
	for _, name := range stale {
		fmt.Fprintf(stdout, "benchgate: %-40s only in baseline (not run)\n", name)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d kernel(s) beyond the %.2fx threshold: %v", len(regressed), threshold, regressed)
	}
	fmt.Fprintln(stdout, "benchgate: no regressions beyond threshold")
	return nil
}

func readReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
