// Command pactbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pactbench -ex all            # every experiment, quick scale
//	pactbench -ex table2 -full   # one experiment at paper scale
//	pactbench -list              # list experiments
//	pactbench -json BENCH.json   # machine-readable kernel benchmarks
//
// Quick scale keeps every run under a few seconds; -full uses the paper's
// problem sizes (table4 at full scale takes roughly a minute).
//
// The -json mode times each parallelized kernel twice — at GOMAXPROCS=1
// and at the ambient GOMAXPROCS — and writes ns/op, allocations per op
// and the measured speedup together with the machine's CPU count, so a
// committed report stays interpretable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pactbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pactbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ex := fs.String("ex", "all", "experiment to run (see -list)")
	full := fs.Bool("full", false, "run at paper scale instead of quick scale")
	list := fs.Bool("list", false, "list experiments and exit")
	outDir := fs.String("o", "", "write each experiment's report to <dir>/<name>.txt instead of stdout")
	jsonOut := fs.String("json", "", "benchmark the parallel kernels and write a JSON report to this file ('-' for stdout)")
	benchset := fs.String("benchset", "kernels", "benchmark set for -json: kernels (fast), factor (large-mesh supernodal vs up-looking), scale (DAG vs level schedule on a 100k-node power grid at GOMAXPROCS 1/2/4/8), frontend (per-stage parse/stamp/assemble/order/symbolic on 100k-node presets), service (rcfitd request throughput/latency/cache hit rate), multipoint (single- vs multi-expansion-point vs clustered reduction of the wide-band 256-port bench, with oracle accuracy columns) or all")
	benchtime := fs.Duration("benchtime", 200*time.Millisecond, "minimum measuring time per benchmark leg for -json")
	gate := fs.String("gate", "", "after -json, compare the fresh report against this baseline report and fail on slowdowns beyond -threshold")
	threshold := fs.Float64("threshold", 3.0, "allowed fresh/baseline ns-per-op ratio for -gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *benchset, *benchtime, stdout); err != nil {
			return err
		}
		if *gate != "" {
			if *jsonOut == "-" {
				return fmt.Errorf("-gate needs the fresh report in a file, not '-'")
			}
			return runBenchGate(*gate, *jsonOut, *threshold, stdout)
		}
		return nil
	}
	if *gate != "" {
		return fmt.Errorf("-gate requires -json")
	}
	if *list {
		for _, e := range experiments.Registry {
			fmt.Fprintf(stdout, "%-10s %s\n", e.Name, e.Desc)
		}
		return nil
	}
	if *outDir == "" {
		return experiments.Run(*ex, stdout, *full)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	names := []string{*ex}
	if *ex == "all" {
		names = names[:0]
		for _, e := range experiments.Registry {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		f, err := os.Create(filepath.Join(*outDir, name+".txt"))
		if err != nil {
			return err
		}
		err = experiments.Run(name, f, *full)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", filepath.Join(*outDir, name+".txt"))
	}
	return nil
}
