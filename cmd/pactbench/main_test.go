package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"eq20", "fig3", "table1", "table2", "table3", "table4", "sec4", "awe", "sparsify", "ordering"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("experiment %q missing from -list:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "eq20"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4.65 GHz") && !strings.Contains(out.String(), "4.7") {
		t.Fatalf("eq20 output unexpected:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "zzz"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOutputDir(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "eq20", "-o", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "eq20.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "passive: true") {
		t.Fatalf("report content:\n%s", data)
	}
}
