package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"eq20", "fig3", "table1", "table2", "table3", "table4", "sec4", "awe", "sparsify", "ordering"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("experiment %q missing from -list:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "eq20"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4.65 GHz") && !strings.Contains(out.String(), "4.7") {
		t.Fatalf("eq20 output unexpected:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "zzz"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	var out, errw bytes.Buffer
	if err := run([]string{"-json", path, "-benchset", "kernels", "-benchtime", "1ms"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH.json is not valid JSON: %v\n%s", err, data)
	}
	if report.NumCPU < 1 || report.GOMAXPROCS < 1 || report.GoVersion == "" {
		t.Fatalf("report missing environment metadata: %+v", report)
	}
	if len(report.Results) < 5 {
		t.Fatalf("expected the kernel benchmark set, got %d results", len(report.Results))
	}
	for _, r := range report.Results {
		if r.SerialNsPerOp <= 0 || r.ParallelNsPerOp <= 0 || r.SerialIters < 1 || r.ParallelIters < 1 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("non-positive speedup: %+v", r)
		}
	}
}

func TestRunBenchJSONRejectsBadSet(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-json", "-", "-benchset", "bogus"}, &out, &errw); err == nil {
		t.Fatal("bogus benchset accepted")
	}
}

func TestRunOutputDir(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	if err := run([]string{"-ex", "eq20", "-o", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "eq20.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "passive: true") {
		t.Fatalf("report content:\n%s", data)
	}
}

// TestRunBenchJSONService smokes the service benchset: both workload
// rows report throughput and tail latency, and the repeated-deck row's
// cache hit rate is positive (the warmed deck is served from cache).
func TestRunBenchJSONService(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-json", "-", "-benchset", "service", "-benchtime", "30ms"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("service report is not valid JSON: %v\n%s", err, out.String())
	}
	if len(report.Results) != 2 {
		t.Fatalf("expected the two service rows, got %d results", len(report.Results))
	}
	byName := map[string]BenchResult{}
	for _, r := range report.Results {
		byName[r.Name] = r
		if r.RequestsPerSec <= 0 || r.P99NsPerOp <= 0 || r.ParallelIters < 1 {
			t.Fatalf("degenerate service row: %+v", r)
		}
		if r.P99NsPerOp < r.ParallelNsPerOp {
			t.Fatalf("p99 below the mean: %+v", r)
		}
	}
	if r := byName["service/reduce/repeated"]; r.CacheHitRate <= 0 {
		t.Fatalf("repeated-deck workload never hit the cache: %+v", r)
	}
}
