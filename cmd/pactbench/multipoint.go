package main

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/stamp"
)

// The multipoint benchset measures the multi-expansion-point reduction
// on the wide-band 256-port bench (`netgen -kind wideband -ports 256`):
// single-point, two-shift multi-point, and cluster-thinned multi-point
// at one pole budget. Each row carries the usual serial/parallel wall
// times plus the reduced model's pole count and its max relative Y(s)
// error against the dense oracle over the band — the accuracy-vs-size
// comparison of the experiments tables, measured on this machine — and
// the multi-point rows split out the per-shift factorization (shared
// symbolic) and basis-union times.

// multipointResults builds the wide-band system once and produces one
// row per reduction mode.
func multipointResults(benchtime time.Duration) ([]BenchResult, error) {
	deck, ports, err := netgen.WideBand(netgen.WideBandPreset(256))
	if err != nil {
		return nil, err
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		return nil, err
	}
	sys := ex.Sys
	const fmax = 2e10
	base := core.Options{FMax: fmax, Tol: 0.05, MaxPoles: 48}
	multi := base
	multi.Shifts = []float64{0, fmax}
	clustered := multi
	clustered.PortClusters = 16
	freqs := core.OracleFreqs(fmax, 3, 3)

	var out []BenchResult
	for _, row := range []struct {
		name string
		opts core.Options
	}{
		{"multipoint/wideband256/single-point", base},
		{"multipoint/wideband256/multi-2pt", multi},
		{"multipoint/wideband256/multi-2pt-cluster16", clustered},
	} {
		opts := row.opts
		op := func() error {
			_, _, err := core.Reduce(sys, opts)
			return err
		}
		ambient := runtime.GOMAXPROCS(0)
		runtime.GOMAXPROCS(1)
		serialNs, _, _, serialIters, err := measure(op, benchtime)
		runtime.GOMAXPROCS(ambient)
		if err != nil {
			return nil, err
		}
		parNs, allocs, bytes, parIters, err := measure(op, benchtime)
		if err != nil {
			return nil, err
		}
		// One instrumented run for the model-quality and stage columns.
		model, stats, err := core.Reduce(sys, opts)
		if err != nil {
			return nil, err
		}
		errs, err := core.OracleMaxRelErrs(sys, []*core.ReducedModel{model}, freqs)
		if err != nil {
			return nil, err
		}
		out = append(out, BenchResult{
			Name:            row.name,
			SerialNsPerOp:   serialNs,
			ParallelNsPerOp: parNs,
			Speedup:         serialNs / parNs,
			SerialIters:     serialIters,
			ParallelIters:   parIters,
			AllocsPerOp:     allocs,
			BytesPerOp:      bytes,
			Poles:           model.K(),
			MaxRelErr:       errs[0],
			ShiftFactorNs:   float64(stats.Stage.ShiftFactorNs),
			BasisUnionNs:    float64(stats.Stage.BasisUnionNs),
		})
	}
	return out, nil
}
