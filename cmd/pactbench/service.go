package main

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/netgen"
	"repro/internal/service"
)

// serviceResults benchmarks the reduction service end to end, in
// process: concurrent clients POST decks through Server.ServeHTTP and
// every row reports throughput, mean and p99 latency, and the model
// cache's hit rate over the row's requests. Two workloads bracket the
// cache: "repeated" cycles two warmed decks (the verification-farm
// steady state — hit rate must be near 1), "unique" cycles more
// distinct decks than the cache holds (every request pays a reduction).
func serviceResults(benchtime time.Duration) ([]BenchResult, error) {
	svc := service.New(service.Config{})
	defer svc.Close()

	repeated := []string{
		netgen.Ladder(60, 250, 1.35e-12).String(),
		netgen.Ladder(80, 310, 1.1e-12).String(),
	}
	// More distinct decks than the default cache capacity, so the unique
	// row keeps missing even after the pool wraps around.
	unique := make([]string, 512)
	for i := range unique {
		unique[i] = netgen.Ladder(40, 250+float64(i)*0.5, 1.35e-12).String()
	}

	var out []BenchResult
	for _, row := range []struct {
		name  string
		decks []string
		warm  bool
	}{
		{"service/reduce/repeated", repeated, true},
		{"service/reduce/unique", unique, false},
	} {
		res, err := serviceRow(svc, row.name, row.decks, row.warm, benchtime)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// benchRecorder is a minimal in-process http.ResponseWriter, so the
// benchmark exercises the full handler without sockets.
type benchRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func (r *benchRecorder) Header() http.Header { return r.hdr }

func (r *benchRecorder) WriteHeader(code int) { r.code = code }

func (r *benchRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

func postBench(svc *service.Server, deck string) (int, string) {
	req, err := http.NewRequest(http.MethodPost, "/reduce?fmax=5e9", strings.NewReader(deck))
	if err != nil {
		return 0, err.Error()
	}
	rec := &benchRecorder{hdr: make(http.Header)}
	svc.ServeHTTP(rec, req)
	return rec.code, rec.body.String()
}

// serviceRow drives nClients concurrent posters over decks for
// benchtime and folds the latencies and the cache-counter deltas into
// one result row.
func serviceRow(svc *service.Server, name string, decks []string, warm bool, benchtime time.Duration) (BenchResult, error) {
	if warm {
		for _, d := range decks {
			if code, body := postBench(svc, d); code != http.StatusOK {
				return BenchResult{}, fmt.Errorf("%s: warm-up request failed %d: %s", name, code, body)
			}
		}
	}
	// Concurrent leaders on distinct decks each need an admission slot;
	// staying under workers+queue means the row never sheds.
	cfg := svc.Snapshot()
	nClients := runtime.GOMAXPROCS(0)
	if capacity := cfg.Workers + cfg.QueueLimit; nClients > capacity {
		nClients = capacity
	}
	if nClients > 8 {
		nClients = 8
	}

	before := svc.Snapshot()
	lat := make([][]time.Duration, nClients)
	errs := make(chan error, nClients)
	deadline := time.Now().Add(benchtime)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(deadline); i += nClients {
				t0 := time.Now()
				code, body := postBench(svc, decks[i%len(decks)])
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s: request failed %d: %s", name, code, body)
					return
				}
				lat[c] = append(lat[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return BenchResult{}, err
	}
	after := svc.Snapshot()

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return BenchResult{}, fmt.Errorf("%s: no requests completed within -benchtime", name)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	p99 := all[(len(all)*99+99)/100-1]
	lookups := (after.Cache.Hits + after.Cache.Misses) - (before.Cache.Hits + before.Cache.Misses)
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(after.Cache.Hits-before.Cache.Hits) / float64(lookups)
	}
	return BenchResult{
		Name:            name,
		ParallelNsPerOp: float64(sum.Nanoseconds()) / float64(len(all)),
		ParallelIters:   len(all),
		RequestsPerSec:  float64(len(all)) / elapsed.Seconds(),
		P99NsPerOp:      float64(p99.Nanoseconds()),
		CacheHitRate:    hitRate,
	}, nil
}
