// Command pactlint runs the repository's domain-aware static analysis
// (see internal/lint) over the module: float-equality misuse, dropped
// factorization errors, panic- and exit-policy violations,
// per-iteration allocation in the hot reduction loops, and the
// determinism/concurrency suite (sharedwrite, fpreduce, maporder,
// nondet, globalmut) that proves the worker-owned-scratch discipline
// over the module call graph.
//
// Usage:
//
//	pactlint ./...            # analyze every package in the module
//	pactlint ./internal/core  # analyze specific package directories
//	pactlint -rules           # list the registered rules
//	pactlint -json ./...      # findings as JSON lines (machine-readable)
//
// Findings print as file:line:col with a rule ID and a fix hint, and the
// exit code is 1 when anything is found. Identical (position, rule)
// findings reported from several analyzing packages — the callgraph
// rules anchor at the shared fact — are deduplicated. Suppress an
// individual finding with a trailing or preceding-line comment:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pactlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("pactlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags to enable (e.g. pactcheck)")
	listRules := fs.Bool("rules", false, "list registered rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON lines instead of text")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *listRules {
		for _, r := range lint.Registry {
			fmt.Fprintf(stdout, "%-12s %s\n", r.ID, r.Doc)
		}
		return 0, nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return 2, err
	}
	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}
	loader, err := lint.NewLoader(root, buildTags...)
	if err != nil {
		return 2, err
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, t := range targets {
		switch {
		case t == "./..." || t == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return 2, err
			}
			pkgs = append(pkgs, all...)
		default:
			p, err := loader.LoadDir(strings.TrimSuffix(t, "/"))
			if err != nil {
				return 2, err
			}
			pkgs = append(pkgs, p)
		}
	}
	seen := map[string]bool{}
	var all []lint.Diagnostic
	for _, p := range pkgs {
		if seen[p.Path] {
			continue
		}
		seen[p.Path] = true
		all = append(all, lint.Run(p, lint.Registry)...)
	}
	all = lint.Dedup(all)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range all {
			if err := enc.Encode(jsonDiag{
				File: d.Pos.Filename,
				Line: d.Pos.Line,
				Col:  d.Pos.Column,
				Rule: d.Rule,
				Msg:  d.Msg,
				Hint: d.Hint,
			}); err != nil {
				return 2, err
			}
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "pactlint: %d finding(s)\n", len(all))
		return 1, nil
	}
	return 0, nil
}

// jsonDiag is the wire form of one finding in -json mode: one object
// per line, stable field names for CI artifact consumers.
type jsonDiag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	Hint string `json:"hint,omitempty"`
}
