// Command pactlint runs the repository's domain-aware static analysis
// (see internal/lint) over the module: float-equality misuse, dropped
// factorization errors, panic- and exit-policy violations, and
// per-iteration allocation in the hot reduction loops.
//
// Usage:
//
//	pactlint ./...            # analyze every package in the module
//	pactlint ./internal/core  # analyze specific package directories
//	pactlint -rules           # list the registered rules
//
// Findings print as file:line:col with a rule ID and a fix hint, and the
// exit code is 1 when anything is found. Suppress an individual finding
// with a trailing or preceding-line comment:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pactlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("pactlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags to enable (e.g. pactcheck)")
	listRules := fs.Bool("rules", false, "list registered rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *listRules {
		for _, r := range lint.Registry {
			fmt.Fprintf(stdout, "%-12s %s\n", r.ID, r.Doc)
		}
		return 0, nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return 2, err
	}
	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}
	loader, err := lint.NewLoader(root, buildTags...)
	if err != nil {
		return 2, err
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, t := range targets {
		switch {
		case t == "./..." || t == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return 2, err
			}
			pkgs = append(pkgs, all...)
		default:
			p, err := loader.LoadDir(strings.TrimSuffix(t, "/"))
			if err != nil {
				return 2, err
			}
			pkgs = append(pkgs, p)
		}
	}
	seen := map[string]bool{}
	count := 0
	for _, p := range pkgs {
		if seen[p.Path] {
			continue
		}
		seen[p.Path] = true
		for _, d := range lint.Run(p, lint.Registry) {
			fmt.Fprintln(stdout, d)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(stderr, "pactlint: %d finding(s)\n", count)
		return 1, nil
	}
	return 0, nil
}
