package main

import (
	"bytes"
	"strings"
	"testing"
)

// The test binary runs with cwd = this package's source directory, so
// run() resolves the real module root — these are end-to-end runs of the
// tool over the actual repository.

func TestRunListRules(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"-rules"}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("run(-rules) = %d, %v", code, err)
	}
	for _, id := range []string{"floatcmp", "checkerr", "panicpolicy", "defersmell", "exitpolicy"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("rule listing missing %q:\n%s", id, out.String())
		}
	}
}

func TestRunSinglePackageClean(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"../../internal/dense"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d on internal/dense:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunFlagsFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"./testdata/bad"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d on known-bad fixture, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "floatcmp") {
		t.Errorf("expected a floatcmp finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("expected a findings summary on stderr, got %q", errb.String())
	}
}

func TestRunUnknownDir(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"./no/such/dir"}, &out, &errb)
	if err == nil || code != 2 {
		t.Fatalf("run on missing dir = %d, %v; want code 2 and an error", code, err)
	}
}
