package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The test binary runs with cwd = this package's source directory, so
// run() resolves the real module root — these are end-to-end runs of the
// tool over the actual repository.

func TestRunListRules(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"-rules"}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("run(-rules) = %d, %v", code, err)
	}
	for _, id := range []string{
		"floatcmp", "checkerr", "panicpolicy", "defersmell", "exitpolicy",
		"sharedwrite", "fpreduce", "maporder", "nondet", "globalmut",
	} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("rule listing missing %q:\n%s", id, out.String())
		}
	}
}

func TestRunSinglePackageClean(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"../../internal/dense"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d on internal/dense:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunFlagsFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"./testdata/bad"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d on known-bad fixture, want 1\n%s", code, out.String())
	}
	for _, rule := range []string{"floatcmp", "sharedwrite", "fpreduce", "maporder"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("expected a %s finding:\n%s", rule, out.String())
		}
	}
	// The sharedwrite diagnostic must carry a file:line anchor and a fix
	// hint naming the slot-indexed idiom — the report a future DAG
	// scheduler author will act on.
	if !strings.Contains(out.String(), "bad_par.go:14:") {
		t.Errorf("sharedwrite finding should anchor at bad_par.go:14:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "item argument") {
		t.Errorf("sharedwrite hint should name the slot-indexed idiom:\n%s", out.String())
	}
	// The DAG scheduler's callbacks are pool callbacks too: the captured
	// accumulation inside the par.RunDAG body must be flagged.
	if !strings.Contains(out.String(), "bad_par.go:35:") {
		t.Errorf("expected a finding inside the par.RunDAG callback at bad_par.go:35:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("expected a findings summary on stderr, got %q", errb.String())
	}
}

// TestRunJSON: -json emits one JSON object per finding with stable
// field names, and still exits 1.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"-json", "./testdata/bad"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d on known-bad fixture, want 1\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("want >= 4 JSON findings, got %d:\n%s", len(lines), out.String())
	}
	rules := map[string]bool{}
	for _, line := range lines {
		var d struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("finding is not a JSON object: %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Rule == "" || d.Msg == "" {
			t.Errorf("incomplete JSON finding: %q", line)
		}
		rules[d.Rule] = true
	}
	for _, rule := range []string{"floatcmp", "sharedwrite", "fpreduce", "maporder"} {
		if !rules[rule] {
			t.Errorf("JSON findings missing rule %s:\n%s", rule, out.String())
		}
	}
}

func TestRunUnknownDir(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"./no/such/dir"}, &out, &errb)
	if err == nil || code != 2 {
		t.Fatalf("run on missing dir = %d, %v; want code 2 and an error", code, err)
	}
}
