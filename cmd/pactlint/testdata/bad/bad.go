// Package bad is a deliberately lint-dirty fixture for pactlint's own
// tests. It is under testdata/ so the go tool never builds it, but
// pactlint can still be pointed at the directory explicitly.
package bad

// Equalish trips the floatcmp rule.
func Equalish(a, b float64) bool {
	return a == b
}
