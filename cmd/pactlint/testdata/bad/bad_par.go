package bad

import "repro/internal/par"

// SharedSum seeds the two canonical determinism violations the
// worker-pool discipline exists to prevent: an unindexed captured write
// (sharedwrite) and an order-dependent floating-point reduction
// (fpreduce) inside a parallel callback.
func SharedSum(xs []float64) float64 {
	sum := 0.0
	var last float64
	par.ForWorkers(len(xs), func(w, i int) {
		sum += xs[i]
		last = xs[i]
	})
	return sum + last
}

// LeakOrder seeds a maporder violation: map iteration order reaches the
// returned slice unsorted.
func LeakOrder(m map[string]float64) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names
}

// DAGShared seeds the sharedwrite/fpreduce violations through the DAG
// scheduler entry point: par.RunDAG callbacks run on pool workers and
// must obey the same slot-indexed write discipline as par.Do bodies.
func DAGShared(d *par.DAG, xs []float64) float64 {
	total := 0.0
	par.RunDAG(2, d, func(w, s int) {
		total += xs[s]
	})
	return total
}
