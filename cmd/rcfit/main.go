// Command rcfit is the SPICE-in, SPICE-out RC network reduction tool of
// the paper's Section 5: it parses a SPICE deck, extracts the RC
// networks, reduces them with PACT to the requested maximum frequency and
// error tolerance, and writes back a deck in which the RC networks are
// replaced by their reduced equivalents.
//
// Usage:
//
//	rcfit -fmax 1e9 [-tol 0.05] [-ports n1,n2] [-verify] [-o out.sp] [in.sp]
//	rcfit -fmax 1e9 -shifts 0,1e8,1e9 -portcluster 16 wideband.sp   # multi-point
//
// With no input file the deck is read from standard input.
//
// Exit codes: 0 on success, 2 when the reduction was canceled (SIGINT,
// SIGTERM, or the -timeout deadline) — cooperative cancellation is not
// a failure of the input — and 1 for every other error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	pact "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rcfit:", err)
		if pact.IsCancellation(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rcfit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fmax := fs.Float64("fmax", 0, "maximum frequency of interest in Hz (required)")
	tol := fs.Float64("tol", 0.05, "relative error tolerance at fmax")
	sparsify := fs.Float64("sparsify", 1e-8, "sparsity-enhancement threshold (0 disables)")
	portsFlag := fs.String("ports", "", "comma-separated extra port nodes")
	out := fs.String("o", "", "output file (default stdout)")
	prefix := fs.String("prefix", "pact", "name prefix for generated elements")
	maxPoles := fs.Int("maxpoles", 0, "cap on retained poles (0 = no cap)")
	shiftsFlag := fs.String("shifts", "", "comma-separated expansion-point frequencies in Hz for multi-point reduction (empty = classic single-point)")
	portCluster := fs.Int("portcluster", 0, "cluster ports into this many groups for cluster-wise basis thinning (multi-point only, 0 disables)")
	twoPass := fs.Bool("twopass", false, "use the memory-minimal two-pass Lanczos")
	verify := fs.Bool("verify", false, "sample exact vs reduced admittance and report errors on stderr")
	asSubckt := fs.Bool("subckt", false, "emit the reduced network as a .subckt + instance")
	quiet := fs.Bool("q", false, "suppress the statistics report on stderr")
	verbose := fs.Bool("v", false, "add a factorization-kernel statistics line to the stderr report")
	timeout := fs.Duration("timeout", 0, "abort the reduction after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fmax <= 0 {
		fs.Usage()
		return fmt.Errorf("-fmax is required and must be positive")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	deck, err := pact.Parse(in)
	if err != nil {
		return err
	}
	var extra []string
	if *portsFlag != "" {
		extra = strings.Split(*portsFlag, ",")
	}
	var shifts []float64
	if *shiftsFlag != "" {
		for _, tok := range strings.Split(*shiftsFlag, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("-shifts entry %q: %w", tok, err)
			}
			shifts = append(shifts, f)
		}
	}
	if *portCluster < 0 {
		return fmt.Errorf("-portcluster must be non-negative, got %d", *portCluster)
	}
	if *portCluster > 0 && len(shifts) == 0 {
		return fmt.Errorf("-portcluster requires -shifts (port clustering thins the multi-point basis)")
	}
	red, err := pact.ReduceDeckContext(ctx, deck, pact.Options{
		FMax:        *fmax,
		Tol:         *tol,
		SparsifyTol: *sparsify,
		Prefix:      *prefix,
		ExtraPorts:  extra,
		MaxPoles:    *maxPoles,
		TwoPass:     *twoPass,
		AsSubckt:    *asSubckt,

		Shifts:       shifts,
		PortClusters: *portCluster,
	})
	if err != nil {
		if pact.IsCancellation(err) && *timeout > 0 {
			return fmt.Errorf("reduction did not finish within -timeout %v: %w", *timeout, err)
		}
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := red.Deck.Write(w); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(stderr, "rcfit: %d ports, %d internal nodes -> %d poles (cutoff %.4g Hz)\n",
			red.Stats.Ports, red.Stats.Internal, red.Model.K(), red.Stats.CutoffHz)
		fmt.Fprintf(stderr, "rcfit: nodes %d -> %d, R %d -> %d, C %d -> %d in %v\n",
			red.OriginalNodes, red.ReducedNodes, red.OriginalR, red.ReducedR,
			red.OriginalC, red.ReducedC, red.Elapsed)
		if red.Stats.Shifts > 0 {
			fmt.Fprintf(stderr, "rcfit: multi-point: %d expansion points (%d dropped), basis kept %d of %d columns, %d port clusters\n",
				red.Stats.Shifts, red.Stats.ShiftsDropped, red.Stats.BasisKept,
				red.Stats.BasisColumns, red.Stats.PortClusters)
		}
		if *verbose {
			kernel := "up-looking"
			if red.Stats.Supernodes > 0 {
				kernel = fmt.Sprintf("supernodal (%d panels, %d amalgamation zeros)",
					red.Stats.Supernodes, red.Stats.SuperFill)
			}
			fmt.Fprintf(stderr, "rcfit: cholesky %s: %.4g GFLOP, %d solves, %d matvecs, peak factor %d B (%d B pooled scratch)\n",
				kernel, red.Stats.FactorFlops/1e9, red.Stats.Solves, red.Stats.MatVecs,
				red.Stats.CholeskyBytes, red.Stats.ScratchBytes)
			st := red.Stats.Stage
			fmt.Fprintf(stderr, "rcfit: stages: parse %s, stamp %s, assemble %s, order %s, symbolic %s, factor %s\n",
				stageMs(st.ParseNs), stageMs(st.StampNs), stageMs(st.AssembleNs),
				stageMs(st.OrderNs), stageMs(st.SymbolicNs), stageMs(st.FactorNs))
		}
		for _, rec := range red.Stats.Recoveries {
			fmt.Fprintf(stderr, "rcfit: degraded: %s\n", rec.String())
		}
	}
	if *verify {
		return runVerify(red, *fmax, stderr)
	}
	return nil
}

// stageMs formats a nanosecond stage time for the -v report.
func stageMs(ns int64) string {
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}

func runVerify(red *pact.Reduction, fmax float64, stderr io.Writer) error {
	pts, err := red.Verify(fmax, 7)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(stderr, "rcfit: verify f=%-12.4g rel err %.3f%%\n", p.Freq, 100*p.RelErr)
	}
	return nil
}
