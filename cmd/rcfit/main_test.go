package main

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	pact "repro"
	"repro/internal/netgen"
)

func TestRunLadder(t *testing.T) {
	in := strings.NewReader(netgen.Ladder(100, 250, 1.35e-12).String())
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-fmax", "5e9", "-verify"}, in, &out, &errw); err != nil {
		t.Fatalf("%v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(out.String(), "rpact1") || !strings.Contains(out.String(), ".end") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "-> 1 poles") {
		t.Fatalf("stats missing:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "verify") {
		t.Fatalf("verify lines missing:\n%s", errw.String())
	}
}

// TestRunVerboseKernelStats checks the -v factorization line: a
// 100-node ladder is below the supernodal dispatch threshold, so the
// report must name the up-looking kernel and carry the solve counters.
func TestRunVerboseKernelStats(t *testing.T) {
	in := strings.NewReader(netgen.Ladder(100, 250, 1.35e-12).String())
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-fmax", "5e9", "-v"}, in, &out, &errw); err != nil {
		t.Fatalf("%v\nstderr:\n%s", err, errw.String())
	}
	stats := errw.String()
	if !strings.Contains(stats, "cholesky up-looking") {
		t.Fatalf("kernel line missing or wrong kernel:\n%s", stats)
	}
	if !strings.Contains(stats, "solves") || !strings.Contains(stats, "GFLOP") {
		t.Fatalf("kernel counters missing:\n%s", stats)
	}
}

func TestRunRequiresFmax(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader("t\n.end\n"), &out, &errw); err == nil {
		t.Fatal("missing -fmax accepted")
	}
}

func TestRunBadDeck(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-fmax", "1e9"}, strings.NewReader("t\nz1 bogus\n.end\n"), &out, &errw); err == nil {
		t.Fatal("bad deck accepted")
	}
}

func TestRunExtraPorts(t *testing.T) {
	deck := `pure rc with forced port
v1 a 0 dc 1
r1 a b 1
r2 b c 1
c1 c 0 1p
.end
`
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-fmax", "1e9", "-ports", "c", "-q"}, strings.NewReader(deck), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), " c ") && !strings.Contains(out.String(), " c\n") {
		t.Fatalf("forced port c missing from reduced deck:\n%s", out.String())
	}
}

func TestRunSubcktOutput(t *testing.T) {
	in := strings.NewReader(netgen.Ladder(40, 250, 1.35e-12).String())
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-fmax", "5e9", "-subckt", "-q"}, in, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ".subckt pactnet") {
		t.Fatalf("subckt output missing:\n%s", out.String())
	}
}

func TestRunTimeoutInterruptsLargeReduction(t *testing.T) {
	// A 20000-segment ladder takes far longer than 1ms to reduce; the
	// -timeout deadline must interrupt it cooperatively, report the
	// timeout, and leave no worker goroutines behind.
	in := strings.NewReader(netgen.Ladder(20000, 250, 1.35e-12).String())
	var out, errw bytes.Buffer
	base := runtime.NumGoroutine()
	start := time.Now()
	err := run(context.Background(), []string{"-fmax", "5e9", "-timeout", "1ms", "-q"}, in, &out, &errw)
	if err == nil {
		t.Skip("reduction finished before the deadline on this machine")
	}
	if !strings.Contains(err.Error(), "did not finish within -timeout") {
		t.Fatalf("err = %v, want the -timeout report", err)
	}
	// main maps this to the documented cancellation exit code 2.
	if !pact.IsCancellation(err) {
		t.Fatalf("timeout error %v is not typed as a cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, not cooperative", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after timeout: %d live, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
