// Command rcfitd serves PACT reductions over HTTP: POST a SPICE deck to
// /reduce and get back the reduced deck as JSON. It is rcfit as a
// daemon — same pipeline, same typed errors — plus the service layer's
// bounded admission queue, content-addressed model cache, and
// singleflight dedup, so a farm of verification jobs hammering the same
// handful of decks pays for each reduction once.
//
// Usage:
//
//	rcfitd [-addr host:port] [-workers n] [-queue n] [-cache n]
//	       [-req-timeout d] [-drain-timeout d]
//
// Endpoints:
//
//	POST /reduce?fmax=5e9[&tol=0.05][&maxpoles=n]  body: SPICE deck
//	     [&shifts=0,1e9,5e9][&portcluster=16]      multi-expansion-point mode
//	GET  /healthz                                  "ok" or 503 "draining"
//	GET  /statz                                    JSON counters
//
// The shifts parameter selects multi-expansion-point reduction; the set
// is canonicalized (sorted, deduplicated) before keying the model
// cache, so every listing order of one expansion-point set shares one
// cache entry and one singleflight.
//
// On SIGTERM or SIGINT the daemon drains: new work is refused with 503,
// in-flight reductions get -drain-timeout to finish, then are canceled
// through their contexts.
//
// Exit codes: 0 after a clean drain, 1 on startup or serve errors, and
// 2 when the drain deadline forced the cancellation of in-flight work —
// distinct so orchestrators can tell a graceful stop from a lossy one.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcfitd:", err)
	}
	os.Exit(code)
}

// run starts the daemon and blocks until ctx is canceled (the signal
// path) or the listener fails. It returns the process exit code: 0 for
// a clean drain, 1 for errors, 2 for a forced drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("rcfitd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8607", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent reductions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth before 429s (0 = 4x workers)")
	cache := fs.Int("cache", 0, "model cache capacity in entries (0 = 256)")
	reqTimeout := fs.Duration("req-timeout", 0, "per-request reduction deadline (0 = 2m)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"grace for in-flight reductions on SIGTERM/SIGINT before they are canceled")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() > 0 {
		return 1, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return 1, err
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *reqTimeout,
	})
	// The listening line goes to stdout so scripts (and the smoke tests)
	// can discover a :0-assigned port.
	fmt.Fprintf(stdout, "rcfitd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return 1, err
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "rcfitd: signal received, draining (grace %v)\n", *drainTimeout)
	svc.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(dctx)
	shutErr := hs.Shutdown(dctx)
	svc.Close()
	if drainErr != nil {
		return 2, fmt.Errorf("forced drain: %w", drainErr)
	}
	if shutErr != nil {
		return 2, fmt.Errorf("forced shutdown: %w", shutErr)
	}
	fmt.Fprintln(stderr, "rcfitd: drained cleanly")
	return 0, nil
}
