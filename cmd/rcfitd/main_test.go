package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/netgen"
)

// daemon starts run in a goroutine on a kernel-assigned port and
// returns the base URL, a cancel func standing in for SIGTERM delivery
// (main wires the real signals through the same context), and a wait
// func yielding run's exit code and error.
func daemon(t *testing.T, extraArgs ...string) (base string, cancel func(), wait func() (int, error)) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	type exit struct {
		code int
		err  error
	}
	done := make(chan exit, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		code, err := run(ctx, args, pw, &stderr)
		pw.Close()
		done <- exit{code, err}
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		stop()
		t.Fatalf("no listening line: %v (stderr: %s)", err, stderr.String())
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		stop()
		t.Fatalf("unexpected first line %q", line)
	}
	base = strings.TrimSpace(line[i+len(marker):])
	go io.Copy(io.Discard, pr) // drain anything else
	t.Cleanup(stop)
	return base, stop, func() (int, error) {
		select {
		case e := <-done:
			return e.code, e.err
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit")
			return -1, nil
		}
	}
}

type reduceReply struct {
	Cache string `json:"cache"`
	Deck  string `json:"deck"`
	Poles int    `json:"poles"`
}

func postDeck(t *testing.T, base, deck, query string) (int, *reduceReply) {
	t.Helper()
	resp, err := http.Post(base+"/reduce?"+query, "text/plain", strings.NewReader(deck))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out reduceReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, &out
}

// TestDaemonServesMissThenHitAndDrainsCleanly is the end-to-end path
// over a real socket: reduce a deck twice (miss, then cache hit with an
// identical reduced deck), check health, then drain and expect exit 0.
func TestDaemonServesMissThenHitAndDrainsCleanly(t *testing.T) {
	base, cancel, wait := daemon(t)
	deck := netgen.Ladder(40, 250, 1.35e-12).String()

	code, first := postDeck(t, base, deck, "fmax=5e9")
	if code != http.StatusOK || first.Cache != "miss" {
		t.Fatalf("first POST: %d %+v, want 200 miss", code, first)
	}
	code, second := postDeck(t, base, deck, "fmax=5e9")
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second POST: %d %+v, want 200 hit", code, second)
	}
	if second.Deck != first.Deck {
		t.Fatal("cache hit returned a different reduced deck")
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", hz.StatusCode, body)
	}

	cancel()
	if exitCode, err := wait(); exitCode != 0 || err != nil {
		t.Fatalf("drained daemon exited %d (%v), want 0", exitCode, err)
	}
}

// TestDaemonForcedDrainExitsTwo pins the lossy-stop exit code: a
// reduction still running when the drain grace expires is canceled and
// the daemon exits 2, so orchestrators can tell the stop lost work.
func TestDaemonForcedDrainExitsTwo(t *testing.T) {
	base, cancel, wait := daemon(t, "-workers", "1", "-drain-timeout", "20ms")
	big := netgen.Ladder(20000, 250, 1.35e-12).String()
	posted := make(chan int, 1)
	go func() {
		code, _ := postDeck(t, base, big, "fmax=5e9")
		posted <- code
	}()
	// Wait until the reduction is genuinely in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/statz")
		if err != nil {
			t.Fatalf("statz: %v", err)
		}
		var st struct {
			Inflight  int64 `json:"inflight"`
			Completed int64 `json:"completed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("statz decode: %v", err)
		}
		resp.Body.Close()
		if st.Completed > 0 {
			t.Skip("reduction finished before the drain could interrupt it on this machine")
		}
		if st.Inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reduction never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	exitCode, err := wait()
	if code := <-posted; code == http.StatusOK {
		t.Skip("reduction finished inside the drain grace on this machine")
	}
	if exitCode != 2 {
		t.Fatalf("forced drain exited %d (%v), want 2", exitCode, err)
	}
	if err == nil || !strings.Contains(err.Error(), "forced drain") {
		t.Fatalf("forced drain err = %v, want the forced-drain report", err)
	}
}

// TestDaemonRefusesBadFlags: flag and argument errors exit 1 before the
// listener ever opens.
func TestDaemonRefusesBadFlags(t *testing.T) {
	ctx := context.Background()
	var out, errb bytes.Buffer
	if code, err := run(ctx, []string{"-bogus"}, &out, &errb); code != 1 || err == nil {
		t.Fatalf("bad flag: code %d err %v, want 1", code, err)
	}
	if code, err := run(ctx, []string{"-addr", "127.0.0.1:0", "positional"}, &out, &errb); code != 1 || err == nil {
		t.Fatalf("positional arg: code %d err %v, want 1", code, err)
	}
}

// TestDaemonListenFailureExitsOne: a port that is already bound is a
// startup error, not a crash.
func TestDaemonListenFailureExitsOne(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errb bytes.Buffer
	code, err := run(context.Background(), []string{"-addr", ln.Addr().String()}, &out, &errb)
	if code != 1 || err == nil {
		t.Fatalf("bound port: code %d err %v, want 1 and an error", code, err)
	}
	if out.Len() != 0 {
		t.Fatalf("failed startup still printed %q", out.String())
	}
}
