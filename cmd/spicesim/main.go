// Command spicesim runs the analysis cards of a SPICE deck (.op, .tran,
// .ac) through this repository's circuit simulator and prints the
// requested .print variables. It exists so reduced decks from rcfit can
// be verified end to end without an external simulator:
//
//	netgen -kind inverterpair > fig2.sp
//	rcfit -fmax 5e9 fig2.sp > fig2_red.sp
//	spicesim -tran "0.05n 6n" -print "tran v(out2)" fig2.sp
//	spicesim -tran "0.05n 6n" -print "tran v(out2)" fig2_red.sp
//
// With no file argument the deck is read from standard input. Decks
// without analysis cards can be given one with -tran/-ac flags.
//
// Exit codes: 0 on success, 2 when the analyses were canceled (SIGINT,
// SIGTERM, or the -timeout deadline), and 1 for every other error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/netlist"
	"repro/internal/resilience"
	"repro/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spicesim:", err)
		if resilience.IsCancellation(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spicesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tran := fs.String("tran", "", "override/add a transient: \"step stop\" (SPICE values)")
	ac := fs.String("ac", "", "override/add an AC sweep: \"dec npts fstart fstop\"")
	dc := fs.String("dc", "", "override/add a DC transfer sweep: \"src start stop step\"")
	printVars := fs.String("print", "", "override/add print variables, e.g. \"tran v(out)\"")
	op := fs.Bool("op", false, "add an operating-point analysis")
	timeout := fs.Duration("timeout", 0, "abort the analyses after this long (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	deck, err := netlist.Parse(in)
	if err != nil {
		return err
	}
	if *op {
		deck.Controls = append(deck.Controls, ".op")
	}
	if *tran != "" {
		deck.Controls = append(deck.Controls, ".tran "+*tran)
	}
	if *ac != "" {
		deck.Controls = append(deck.Controls, ".ac "+*ac)
	}
	if *dc != "" {
		deck.Controls = append(deck.Controls, ".dc "+*dc)
	}
	if *printVars != "" {
		deck.Controls = append(deck.Controls, ".print "+*printVars)
	}
	return sim.RunDeckCtx(ctx, deck, stdout)
}
