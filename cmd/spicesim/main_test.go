package main

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

const rcDeck = `rc lowpass
v1 a 0 dc 1 ac 1
r1 a b 1k
c1 b 0 159.155p
.end
`

func TestRunOP(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-op"}, strings.NewReader(rcDeck), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "v(b) = 1") {
		t.Fatalf("op output:\n%s", out.String())
	}
}

func TestRunACFlag(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"-ac", "dec 2 1e4 1e8", "-print", "ac vm(b)"}, strings.NewReader(rcDeck), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	// Passband magnitude ~ 1 at 10 kHz.
	for _, l := range strings.Split(out.String(), "\n") {
		f := strings.Fields(l)
		if len(f) == 2 && strings.HasPrefix(l, "10000") {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil || v < 0.99 || v > 1.001 {
				t.Fatalf("passband row %q", l)
			}
			return
		}
	}
	t.Fatalf("10 kHz row missing:\n%s", out.String())
}

func TestRunTranFlag(t *testing.T) {
	deck := `rc step
v1 a 0 dc 0 pulse(0 5 0 1p 1p 1 2)
r1 a b 1k
c1 b 0 1n
.end
`
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-tran", "50n 5u", "-print", "tran v(b)"}, strings.NewReader(deck), &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	last := strings.Fields(lines[len(lines)-1])
	v, err := strconv.ParseFloat(last[len(last)-1], 64)
	if err != nil || v < 4.9 || v > 5.01 {
		t.Fatalf("final value %q", lines[len(lines)-1])
	}
}

func TestRunNoAnalysis(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader(rcDeck), &out, &errw); err == nil {
		t.Fatal("deck without analysis accepted")
	}
}

func TestRunTimeoutInterruptsTransient(t *testing.T) {
	// 10ms of a 1µs-step transient is ten thousand steps; the 5ms deadline
	// must land mid-integration and surface as a cancellation error.
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"-tran", "1u 10m", "-timeout", "5ms"}, strings.NewReader(rcDeck), &out, &errw)
	if err == nil {
		t.Skip("transient finished before the deadline on this machine")
	}
	if !strings.Contains(err.Error(), "transient") || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want a transient-stage cancellation", err)
	}
}
