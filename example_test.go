package pact_test

import (
	"fmt"
	"log"

	pact "repro"
	"repro/internal/netgen"
)

// Example_reduceLadder reduces the paper's 100-segment RC transmission
// line (Figure 2) at 5 GHz with 5% tolerance: one pole survives and the
// 101-node line becomes a 3-node network.
func Example_reduceLadder() {
	deck := netgen.Ladder(100, 250, 1.35e-12)
	red, err := pact.ReduceDeck(deck, pact.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("poles kept: %d\n", red.Model.K())
	fmt.Printf("pole frequency: %.1f GHz\n", red.Model.PoleFreqs()[0]/1e9)
	fmt.Printf("nodes: %d -> %d\n", red.OriginalNodes, red.ReducedNodes)
	fmt.Printf("passive: %v\n", red.Model.CheckPassive(1e-9))
	// Output:
	// poles kept: 1
	// pole frequency: 4.7 GHz
	// nodes: 101 -> 3
	// passive: true
}

// Example_reduceString shows the SPICE-in, SPICE-out pipe on a small
// deck: nodes touching the voltage source and the probe stay as ports,
// the ladder interior is replaced by the reduced equivalent.
func Example_reduceString() {
	spice := `three segment line
v1 in 0 dc 1
iprobe out 0 dc 0
r1 in a 100
c1 a 0 100f
r2 a b 100
c2 b 0 100f
r3 b out 100
c3 out 0 100f
.end
`
	_, red, err := pact.ReduceString(spice, pact.Options{FMax: 1e9, Tol: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ports: %v\n", red.PortNames)
	fmt.Printf("internal nodes eliminated: %d\n", red.Stats.Internal-red.Model.K())
	// Output:
	// ports: [in out]
	// internal nodes eliminated: 2
}
