// Baselines: PACT versus the methods the paper compares against — AWE
// (moment matching + Padé, which loses stability as the order grows) and
// the block-Lanczos Padé congruence method (stable and passive, but with
// memory that grows with ports × order).
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	pact "repro"
	"repro/internal/awe"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/order"
	"repro/internal/pade"
	"repro/internal/prima"
	"repro/internal/sparse"
	"repro/internal/stamp"
)

func main() {
	// --- AWE stability on the 100-segment ladder -----------------------
	n := 100
	gb := sparse.NewBuilder(n, n)
	cb := sparse.NewBuilder(n, n)
	gseg := float64(n) / 250.0
	cseg := 1.35e-12 / float64(n)
	gb.Add(0, 0, gseg)
	for i := 0; i+1 < n; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	for i := 0; i < n; i++ {
		cb.Add(i, i, cseg)
	}
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[n-1] = 1
	moments, err := awe.Moments(gb.Build(), cb.Build(), b, l, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AWE on the 100-segment RC ladder:")
	for q := 2; q <= 10; q += 2 {
		model, err := awe.Pade(moments, q)
		if err != nil {
			fmt.Printf("  q=%-2d Hankel system singular (%v)\n", q, err)
			continue
		}
		fmt.Printf("  q=%-2d stable=%-5v real-negative-poles=%v\n", q, model.Stable(), model.RealNegative())
	}

	// --- PACT and Padé congruence on the same two-port ladder ----------
	deck := netgen.Ladder(100, 250, 1.35e-12)
	ex, err := stamp.Extract(deck)
	if err != nil {
		log.Fatal(err)
	}
	pactModel, pactStats, err := pact.ReduceSystem(ex.Sys, pact.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	padeModel, padeStats, err := pade.Reduce(ex.Sys, 1, core.Options{FMax: 5e9})
	if err != nil {
		log.Fatal(err)
	}
	primaModel, primaStats, err := prima.Reduce(ex.Sys, 2, 2*math.Pi*1e9, order.MinimumDegree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPACT:  %d pole(s), passive=%v, Lanczos working set %d vectors\n",
		pactModel.K(), pactModel.CheckPassive(1e-9), pactStats.PeakVectors)
	fmt.Printf("Padé:  %d pole(s), passive=%v, peak %d stored vectors (basis %d)\n",
		padeModel.K(), padeModel.CheckPassive(1e-9), padeStats.PeakVectors, padeStats.BasisSize)
	fmt.Printf("PRIMA: %d states,  passive=%v, peak %d stored vectors (1997 successor)\n",
		primaModel.Dims, primaModel.CheckPassive(1e-9), primaStats.PeakVectors)

	fmt.Printf("\n%12s %14s %12s %12s %12s\n", "f (Hz)", "|Y12| exact", "PACT err", "Padé err", "PRIMA err")
	for _, f := range []float64{1e8, 1e9, 3e9, 5e9} {
		s := complex(0, 2*math.Pi*f)
		yE, err := ex.Sys.Y(s)
		if err != nil {
			log.Fatal(err)
		}
		yPr, err := primaModel.Y(s)
		if err != nil {
			log.Fatal(err)
		}
		e := cmplx.Abs(yE.At(0, 1))
		ep := cmplx.Abs(pactModel.Y(s).At(0, 1)-yE.At(0, 1)) / e
		eq := cmplx.Abs(padeModel.Y(s).At(0, 1)-yE.At(0, 1)) / e
		er := cmplx.Abs(yPr.At(0, 1)-yE.At(0, 1)) / e
		fmt.Printf("%12.3g %14.6g %11.2f%% %11.2f%% %11.2f%%\n", f, e, 100*ep, 100*eq, 100*er)
	}
	fmt.Println("\nall three congruence methods stay passive; AWE does not. PACT additionally")
	fmt.Println("keeps its working set independent of the port count (Section 4).")
	_ = math.Pi
}
