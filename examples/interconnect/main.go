// Interconnect: the paper's Figure 2/3 scenario. A CMOS inverter drives a
// second inverter across a 100-segment RC transmission line
// (250 Ω / 1.35 pF total); the line is reduced by PACT to a single
// internal node and the transient responses are compared — including the
// 2-segment lumped model of the same size, which is visibly worse.
//
//	go run ./examples/interconnect
package main

import (
	"fmt"
	"log"
	"math"

	pact "repro"
	"repro/internal/netgen"
	"repro/internal/sim"
)

func main() {
	full := netgen.InverterPair(100, 250, 1.35e-12, netgen.LineFull)
	red, err := pact.ReduceDeck(full, pact.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("line reduced: 99 internal nodes -> %d pole(s)", red.Model.K())
	if red.Model.K() > 0 {
		fmt.Printf(" at %.2f GHz (paper: 4.7 GHz)", red.Model.PoleFreqs()[0]/1e9)
	}
	fmt.Println()

	variants := map[string]*pact.Deck{
		"full line (100 seg)": full,
		"pact reduced":        red.Deck,
		"2-segment lumped":    netgen.InverterPair(100, 250, 1.35e-12, netgen.LineLumped2),
		"no line":             netgen.InverterPair(100, 250, 1.35e-12, netgen.LineNone),
	}
	order := []string{"no line", "2-segment lumped", "full line (100 seg)", "pact reduced"}

	type result struct {
		res *sim.TranResult
		idx int
	}
	results := map[string]result{}
	for name, deck := range variants {
		c, err := sim.Build(deck)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		r, err := c.Transient(6e-9, 0.02e-9)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		idx, _ := c.NodeIndex("out2")
		results[name] = result{r, idx}
	}

	fmt.Printf("\nV(out2) in volts (input switches at 1 ns)\n%8s", "t (ns)")
	for _, n := range order {
		fmt.Printf(" %20s", n)
	}
	fmt.Println()
	for t := 0.5; t <= 6.0; t += 0.5 {
		fmt.Printf("%8.1f", t)
		for _, n := range order {
			r := results[n]
			fmt.Printf(" %20.4f", r.res.At(r.idx, t*1e-9))
		}
		fmt.Println()
	}

	ref := results["full line (100 seg)"]
	fmt.Println("\nmax deviation from the full line:")
	for _, n := range order {
		if n == "full line (100 seg)" {
			continue
		}
		r := results[n]
		maxd := 0.0
		for k := 0; k <= 300; k++ {
			tt := 6e-9 * float64(k) / 300
			if d := math.Abs(r.res.At(r.idx, tt) - ref.res.At(ref.idx, tt)); d > maxd {
				maxd = d
			}
		}
		fmt.Printf("  %-20s %.3f V\n", n, maxd)
	}
	fmt.Println("\nthe PACT model (same size as the 2-segment model) tracks the full line.")
}
