// Quickstart: reduce a small RC interconnect deck with PACT and compare
// the reduced multiport admittance against the exact one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	pact "repro"
	"repro/internal/stamp"
)

// A 20-segment RC line between two inverter-connected nodes plus a side
// branch — small enough to print, large enough to have structure.
const deckText = `quickstart rc network
* a driver (v1) and a receiver marker (i1) make in/out ports
v1 in 0 dc 0 pulse(0 5 1n 0.1n 0.1n 8n 20n)
i1 out 0 dc 0
rline1 in a1 25
cline1 a1 0 67.5f
rline2 a1 a2 25
cline2 a2 0 67.5f
rline3 a2 a3 25
cline3 a3 0 67.5f
rline4 a3 a4 25
cline4 a4 0 67.5f
rline5 a4 a5 25
cline5 a5 0 67.5f
rline6 a5 a6 25
cline6 a6 0 67.5f
rline7 a6 a7 25
cline7 a7 0 67.5f
rline8 a7 a8 25
cline8 a8 0 67.5f
rline9 a8 a9 25
cline9 a9 0 67.5f
rline10 a9 out 25
cline10 out 0 67.5f
rbr a5 b1 100
cbr b1 0 200f
.end
`

func main() {
	deck, err := pact.ParseString(deckText)
	if err != nil {
		log.Fatal(err)
	}

	// Reduce: keep the network accurate to 5% up to 5 GHz.
	red, err := pact.ReduceDeck(deck, pact.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ports: %v\n", red.PortNames)
	fmt.Printf("internal nodes: %d -> %d retained poles\n", red.Stats.Internal, red.Model.K())
	for i, f := range red.Model.PoleFreqs() {
		fmt.Printf("  pole %d: %.3g Hz\n", i+1, f)
	}
	fmt.Printf("elements: %d R + %d C  ->  %d R + %d C\n",
		red.OriginalR, red.OriginalC, red.ReducedR, red.ReducedC)
	fmt.Printf("reduced network passive: %v\n\n", red.Model.CheckPassive(1e-9))

	// Compare reduced vs exact admittance. The exact Y(s) comes from the
	// extracted (unreduced) system.
	ex, err := stamp.Extract(deck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %16s %16s %10s\n", "f (Hz)", "|Y11| exact", "|Y11| reduced", "rel err")
	for _, f := range []float64{1e7, 1e8, 1e9, 5e9} {
		s := complex(0, 2*math.Pi*f)
		yExact, err := ex.Sys.Y(s)
		if err != nil {
			log.Fatal(err)
		}
		yRed := red.Model.Y(s)
		e := cmplx.Abs(yExact.At(0, 0))
		r := cmplx.Abs(yRed.At(0, 0))
		fmt.Printf("%12.3g %16.6g %16.6g %9.2f%%\n", f, e, r, 100*math.Abs(r-e)/e)
	}

	fmt.Println("\nreduced SPICE deck:")
	fmt.Print(red.Deck)
}
