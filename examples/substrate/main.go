// Substrate: the paper's Table 2 / Figure 5 scenario. A 1521-node 3-D RC
// substrate mesh with 25 surface contacts is reduced at three maximum
// frequencies, and the small-signal transimpedance between two contacts
// is swept for the original and each reduced model.
//
//	go run ./examples/substrate
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	pact "repro"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/sim"
	"repro/internal/stamp"
)

func main() {
	deck, ports, err := netgen.Mesh3D(netgen.SmallMeshOpts())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		log.Fatal(err)
	}
	nodes, rs, cs := ex.Sys.RCStats()
	fmt.Printf("substrate mesh: %d nodes (%d ports), %d resistors, %d capacitors\n\n",
		nodes, ex.Sys.M, rs, cs)

	type reduction struct {
		label string
		fmax  float64
		model *pact.Model
	}
	var reds []reduction
	for _, fmax := range []float64{3e9, 1e9, 300e6} {
		model, stats, err := pact.ReduceSystem(ex.Sys, pact.Options{FMax: fmax, Tol: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fmax %8.3g Hz: %2d poles kept (cutoff %.3g Hz, %d Lanczos iterations)\n",
			fmax, model.K(), stats.CutoffHz, stats.LanczosIters)
		reds = append(reds, reduction{fmt.Sprintf("%.2g Hz", fmax), fmax, model})
	}

	// Transimpedance |Z(monitor, drive)| over frequency.
	iMon, jDrv := 2, 12
	freqs := sim.LogSpace(10e6, 10e9, 21)
	fmt.Printf("\n|Z| between contacts %d and %d (Ω)\n%12s %12s", iMon, jDrv, "f (Hz)", "original")
	for _, r := range reds {
		fmt.Printf(" %12s", r.label)
	}
	fmt.Println()
	zorig := make([]complex128, len(freqs))
	for k, f := range freqs {
		s := complex(0, 2*math.Pi*f)
		y, err := ex.Sys.Y(s)
		if err != nil {
			log.Fatal(err)
		}
		z, err := core.TransimpedanceOf(y, iMon, jDrv)
		if err != nil {
			log.Fatal(err)
		}
		zorig[k] = z
		fmt.Printf("%12.3g %12.4g", f, cmplx.Abs(z))
		for _, r := range reds {
			zr, err := core.TransimpedanceOf(r.model.Y(s), iMon, jDrv)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.4g", cmplx.Abs(zr))
		}
		fmt.Println()
	}

	fmt.Println("\nmaximum |Z| error below each reduction's fmax:")
	for _, r := range reds {
		maxErr := 0.0
		for k, f := range freqs {
			if f > r.fmax {
				continue
			}
			s := complex(0, 2*math.Pi*f)
			zr, err := core.TransimpedanceOf(r.model.Y(s), iMon, jDrv)
			if err != nil {
				log.Fatal(err)
			}
			if e := cmplx.Abs(zr-zorig[k]) / cmplx.Abs(zorig[k]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("  %-10s %.2f%%\n", r.label, 100*maxErr)
	}
}
