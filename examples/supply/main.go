// Supply: the paper's other motivating scenario — supply-line resistance
// and capacitance combined with package inductance producing supply
// droop during simultaneous switching. The on-chip vdd grid (an RC
// network) is reduced by PACT; the package inductor and the switching
// gates stay untouched, and the droop waveform at the worst-case tap is
// compared between the full and reduced grids.
//
//	go run ./examples/supply
package main

import (
	"fmt"
	"log"
	"math"

	pact "repro"
	"repro/internal/netgen"
	"repro/internal/sim"
)

func main() {
	deck, info, err := netgen.Supply(netgen.DefaultSupplyOpts())
	if err != nil {
		log.Fatal(err)
	}
	red, err := pact.ReduceDeck(deck, pact.Options{FMax: 2e9, Tol: 0.05, SparsifyTol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power grid: %d nodes, %d R + %d C  ->  %d nodes, %d R + %d C (%d poles)\n",
		red.OriginalNodes, red.OriginalR, red.OriginalC,
		red.ReducedNodes, red.ReducedR, red.ReducedC, red.Model.K())

	run := func(d *pact.Deck) (*sim.TranResult, *sim.Circuit) {
		c, err := sim.Build(d)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Transient(8e-9, 0.01e-9)
		if err != nil {
			log.Fatal(err)
		}
		return r, c
	}
	ro, co := run(deck)
	rr, cr := run(red.Deck)
	io, _ := co.NodeIndex(info.Far)
	ir, _ := cr.NodeIndex(info.Far)

	fmt.Printf("\nsupply voltage at the far tap %s (V); clock switches at 1 ns and 5.2 ns\n", info.Far)
	fmt.Printf("%8s %12s %12s\n", "t (ns)", "full grid", "reduced")
	minO, minR := 5.0, 5.0
	for k := 0; k <= 32; k++ {
		tt := 8e-9 * float64(k) / 32
		vo := ro.At(io, tt)
		vr := rr.At(ir, tt)
		if vo < minO {
			minO = vo
		}
		if vr < minR {
			minR = vr
		}
		if k%2 == 0 {
			fmt.Printf("%8.2f %12.4f %12.4f\n", tt*1e9, vo, vr)
		}
	}
	fmt.Printf("\nworst droop: full %.1f mV, reduced %.1f mV (Δ %.1f mV)\n",
		1e3*(5-minO), 1e3*(5-minR), 1e3*math.Abs(minO-minR))

	maxd := 0.0
	for k := 0; k <= 400; k++ {
		tt := 8e-9 * float64(k) / 400
		if d := math.Abs(ro.At(io, tt) - rr.At(ir, tt)); d > maxd {
			maxd = d
		}
	}
	fmt.Printf("max waveform deviation: %.2f mV\n", 1e3*maxd)
}
