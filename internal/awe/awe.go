// Package awe implements Asymptotic Waveform Evaluation (Pillage &
// Rohrer), the Padé-approximation baseline the paper contrasts PACT with.
// Moments of a transfer function are computed by repeated sparse solves,
// and a q-pole model is fitted by solving the moment Hankel system
// (Prony's method) and rooting the characteristic polynomial.
//
// AWE exhibits exactly the failure modes Section 1 of the paper
// describes: higher moments are dominated by the smallest pole, the
// Hankel system becomes violently ill-conditioned, and the fitted model
// can acquire positive (unstable) or spurious complex poles — none of
// which can happen to PACT, whose poles are eigenvalues of a symmetric
// non-negative definite pencil.
package awe

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Moments computes the first count moments of the transfer function
// H(s) = lᵀ x(s), (G + sC) x = b, expanded at s = 0:
//
//	x₀ = G⁻¹ b,  x_{k+1} = −G⁻¹ C x_k,  m_k = lᵀ x_k.
//
// G must be symmetric positive definite (a grounded RC conductance
// matrix).
func Moments(g, c *sparse.CSR, b, l []float64, count int) ([]float64, error) {
	n := g.Rows
	if g.Cols != n || c.Rows != n || c.Cols != n || len(b) != n || len(l) != n {
		return nil, errors.New("awe: dimension mismatch")
	}
	sym := order.Analyze(g, order.MinimumDegree)
	gp := g.PermuteSym(sym.Perm)
	f, err := chol.Factorize(gp, sym)
	if err != nil {
		return nil, fmt.Errorf("awe: conductance factorization: %w", err)
	}
	// Work in permuted space.
	cp := c.PermuteSym(sym.Perm)
	x := make([]float64, n)
	lp := make([]float64, n)
	for i, p := range sym.Perm {
		x[i] = b[p]
		lp[i] = l[p]
	}
	f.Solve(x)
	moments := make([]float64, count)
	tmp := make([]float64, n)
	for k := 0; k < count; k++ {
		moments[k] = sparse.Dot(lp, x)
		if k == count-1 {
			break
		}
		cp.MulVec(tmp, x)
		f.Solve(tmp)
		for i := range x {
			x[i] = -tmp[i]
		}
	}
	return moments, nil
}

// PoleResidueModel approximates H(s) ≈ m₀ + Σ k_i·s/(s − p_i)... in the
// classic AWE normalization H(s) = Σ_i k_i/(s − p_i) + direct, matching
// the first 2q moments of the expansion at s = 0.
type PoleResidueModel struct {
	Poles    []complex128
	Residues []complex128
}

// Pade fits a q-pole model to the first 2q moments via Prony's method:
// the moment sequence m_j = Σ_i b_i λ_i^j (λ_i = 1/p_i, b_i = −k_i/p_i)
// obeys a linear recurrence whose characteristic polynomial is found from
// the Hankel system; its roots give the poles and a Vandermonde solve the
// residues.
func Pade(moments []float64, q int) (*PoleResidueModel, error) {
	if len(moments) < 2*q {
		return nil, fmt.Errorf("awe: need %d moments for %d poles, have %d", 2*q, q, len(moments))
	}
	// Hankel solve for the recurrence coefficients c_0..c_{q-1} with
	// Σ_{l} c_l m_{j+l} + m_{j+q} = 0.
	h := dense.New(q, q)
	rhs := make([]float64, q)
	for j := 0; j < q; j++ {
		for l := 0; l < q; l++ {
			h.Set(j, l, moments[j+l])
		}
		rhs[j] = -moments[j+q]
	}
	coef, err := dense.SolveLinear(h, rhs)
	if err != nil {
		return nil, fmt.Errorf("awe: Hankel system singular (ill-conditioned moments): %w", err)
	}
	// Roots of z^q + c_{q-1} z^{q-1} + ... + c_0 (λ domain).
	poly := make([]complex128, q+1)
	poly[q] = 1
	for l := 0; l < q; l++ {
		poly[l] = complex(coef[l], 0)
	}
	lambda, err := durandKerner(poly)
	if err != nil {
		return nil, err
	}
	// Vandermonde solve for b_i: m_j = Σ b_i λ_i^j, j = 0..q-1.
	v := dense.NewC(q, q)
	for j := 0; j < q; j++ {
		for i := 0; i < q; i++ {
			v.Set(j, i, cmplx.Pow(lambda[i], complex(float64(j), 0)))
		}
	}
	fv, err := dense.FactorCLU(v)
	if err != nil {
		return nil, fmt.Errorf("awe: Vandermonde singular (repeated poles): %w", err)
	}
	bvec := make([]complex128, q)
	for j := 0; j < q; j++ {
		bvec[j] = complex(moments[j], 0)
	}
	fv.Solve(bvec)
	model := &PoleResidueModel{}
	for i := 0; i < q; i++ {
		if lambda[i] == 0 {
			return nil, errors.New("awe: zero root (pole at infinity)")
		}
		p := 1 / lambda[i]
		model.Poles = append(model.Poles, p)
		model.Residues = append(model.Residues, -bvec[i]*p)
	}
	return model, nil
}

// Eval evaluates the fitted model at complex frequency s.
func (m *PoleResidueModel) Eval(s complex128) complex128 {
	var acc complex128
	for i, p := range m.Poles {
		acc += m.Residues[i] / (s - p)
	}
	return acc
}

// Stable reports whether every pole has a strictly negative real part
// (asymptotic stability). The exact network's poles are all real
// negative; AWE models frequently violate this for larger q.
func (m *PoleResidueModel) Stable() bool {
	for _, p := range m.Poles {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}

// RealNegative reports whether every pole is (numerically) real and
// negative, the property PACT guarantees by construction.
func (m *PoleResidueModel) RealNegative() bool {
	for _, p := range m.Poles {
		if real(p) >= 0 || math.Abs(imag(p)) > 1e-9*cmplx.Abs(p) {
			return false
		}
	}
	return true
}

// durandKerner finds all roots of the monic polynomial with coefficients
// poly[0] + poly[1] z + ... + poly[n] z^n (poly[n] must be 1) by
// simultaneous (Weierstrass) iteration.
func durandKerner(poly []complex128) ([]complex128, error) {
	n := len(poly) - 1
	if n == 0 {
		return nil, nil
	}
	eval := func(z complex128) complex128 {
		acc := poly[n]
		for k := n - 1; k >= 0; k-- {
			acc = acc*z + poly[k]
		}
		return acc
	}
	// Initial guesses on a non-real circle.
	roots := make([]complex128, n)
	for i := range roots {
		roots[i] = cmplx.Pow(complex(0.4, 0.9), complex(float64(i+1), 0))
	}
	for iter := 0; iter < 500; iter++ {
		maxStep := 0.0
		for i := range roots {
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				den = complex(1e-300, 0)
			}
			step := eval(roots[i]) / den
			roots[i] -= step
			if a := cmplx.Abs(step); a > maxStep {
				maxStep = a
			}
		}
		scale := 0.0
		for _, r := range roots {
			if a := cmplx.Abs(r); a > scale {
				scale = a
			}
		}
		if maxStep <= 1e-13*(scale+1) {
			return roots, nil
		}
	}
	// Accept the best effort; Durand–Kerner stalls only on pathological
	// inputs, and AWE instability detection does not need exact roots.
	return roots, nil
}
