package awe

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// ladderGC builds the grounded G, C matrices of an n-segment RC ladder
// driven at node 0 (nodes 0..n-1, far end open).
func ladderGC(n int, rtot, ctot float64) (g, c *sparse.CSR) {
	gseg := float64(n) / rtot
	cseg := ctot / float64(n)
	gb := sparse.NewBuilder(n, n)
	cb := sparse.NewBuilder(n, n)
	// Segment 1 connects node 0 to ground-driven source side: model the
	// drive as a conductance to ground at node 0.
	gb.Add(0, 0, gseg)
	for i := 0; i+1 < n; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	for i := 0; i < n; i++ {
		cb.Add(i, i, cseg)
	}
	return gb.Build(), cb.Build()
}

func denseMoments(g, c *sparse.CSR, b, l []float64, count int) []float64 {
	n := g.Rows
	gd := dense.NewFromRows(g.Dense())
	cd := dense.NewFromRows(c.Dense())
	x := append([]float64(nil), b...)
	lu, err := dense.FactorLU(gd.Clone())
	if err != nil {
		panic(err)
	}
	lu.Solve(x)
	out := make([]float64, count)
	for k := 0; k < count; k++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += l[i] * x[i]
		}
		out[k] = s
		cx := cd.MulVec(x)
		lu.Solve(cx)
		for i := range x {
			x[i] = -cx[i]
		}
	}
	return out
}

func TestMomentsMatchDense(t *testing.T) {
	g, c := ladderGC(20, 1000, 1e-9)
	n := g.Rows
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[n-1] = 1
	got, err := Moments(g, c, b, l, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := denseMoments(g, c, b, l, 8)
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9*math.Abs(want[k]) {
			t.Fatalf("moment %d = %g, want %g", k, got[k], want[k])
		}
	}
}

func TestPadeLowOrderAccurate(t *testing.T) {
	// A q=2 AWE model of the ladder must be accurate well below the first
	// pole.
	g, c := ladderGC(40, 1000, 1e-9)
	n := g.Rows
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[n-1] = 1
	moments, err := Moments(g, c, b, l, 8)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Pade(moments, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Stable() {
		t.Fatalf("q=2 model unstable: poles %v", model.Poles)
	}
	// Exact H(s) via dense solve.
	exact := func(s complex128) complex128 {
		gd, cd := g.Dense(), c.Dense()
		a := dense.NewC(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(gd[i][j], 0)+s*complex(cd[i][j], 0))
			}
		}
		f, err := dense.FactorCLU(a)
		if err != nil {
			panic(err)
		}
		x := make([]complex128, n)
		x[0] = 1
		f.Solve(x)
		return x[n-1]
	}
	// The first pole of the ladder is at ~1/(R C) scale; test a decade
	// below.
	for _, f := range []float64{1e3, 1e4, 1e5} {
		s := complex(0, 2*math.Pi*f)
		h := exact(s)
		hm := model.Eval(s)
		if cmplx.Abs(h-hm) > 0.03*cmplx.Abs(h) {
			t.Fatalf("f=%g: AWE q=2 error %g", f, cmplx.Abs(h-hm)/cmplx.Abs(h))
		}
	}
}

func TestPadeHighOrderIllConditioned(t *testing.T) {
	// The classic AWE failure: on a 100-segment ladder, raising the order
	// eventually produces poles that are complex or non-negative — the
	// instability PACT structurally cannot produce.
	g, c := ladderGC(100, 250, 1.35e-12)
	n := g.Rows
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[n-1] = 1
	moments, err := Moments(g, c, b, l, 24)
	if err != nil {
		t.Fatal(err)
	}
	broken := -1
	for q := 2; q <= 12; q++ {
		model, err := Pade(moments, q)
		if err != nil {
			broken = q // Hankel singular: also an ill-conditioning symptom
			break
		}
		if !model.RealNegative() {
			broken = q
			break
		}
	}
	if broken < 0 {
		t.Fatal("AWE stayed well-conditioned to q=12 on a 100-segment ladder; expected the documented breakdown")
	}
	t.Logf("AWE breaks down at q=%d (complex/unstable/singular)", broken)
}

func TestMomentsDecaySanity(t *testing.T) {
	// RC moment sequences alternate in sign (poles all real negative).
	g, c := ladderGC(15, 100, 1e-12)
	n := g.Rows
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[0] = 1
	moments, err := Moments(g, c, b, l, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(moments); k++ {
		if moments[k]*moments[k-1] >= 0 {
			t.Fatalf("moments must alternate sign: %v", moments)
		}
	}
}

func TestPadeArgValidation(t *testing.T) {
	if _, err := Pade([]float64{1, 2}, 2); err == nil {
		t.Error("insufficient moments accepted")
	}
}

func TestDurandKernerKnownRoots(t *testing.T) {
	// (z-1)(z-2)(z-3) = z³ -6z² +11z -6.
	roots, err := durandKerner([]complex128{-6, 11, -6, 1})
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, r := range roots {
		for _, w := range []float64{1, 2, 3} {
			if cmplx.Abs(r-complex(w, 0)) < 1e-8 {
				found[int(w)] = true
			}
		}
	}
	if len(found) != 3 {
		t.Fatalf("roots = %v", roots)
	}
}
