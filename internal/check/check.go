// Package check is the runtime invariant layer of the PACT pipeline. The
// reduction's correctness rests on a small set of structural facts — the
// stamped matrices are symmetric, the congruence-transformed port blocks
// stay symmetric and non-negative definite, retained poles are real and
// negative, the realized reduced network is passive — and this package
// turns each of them into an executable assertion.
//
// The checks are compiled out by default: every function is a no-op stub
// and Enabled is a false constant, so call sites guarded by
//
//	if check.Enabled { check.NonNegDef(...) }
//
// cost nothing in release builds. Building with
//
//	go build -tags pactcheck ./...
//	go test  -tags pactcheck ./...
//
// swaps in the real implementations, which panic with a "check: ..."
// message naming the violated invariant. The panics are deliberate:
// an invariant violation is a bug in the reduction code (or a broken
// congruence), never a recoverable input condition.
package check

// DefaultTol is the relative tolerance used by the pipeline's invariant
// call sites: symmetry and definiteness violations smaller than
// DefaultTol times the matrix scale are attributed to roundoff.
const DefaultTol = 1e-7

// OrthTol is the pairwise orthonormality tolerance for converged Ritz
// bases. It is looser than DefaultTol because selective
// reorthogonalization only maintains semi-orthogonality (≈√ε) between
// unconverged Lanczos vectors.
const OrthTol = 1e-6
