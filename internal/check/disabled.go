//go:build !pactcheck

package check

import (
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Enabled reports whether the invariant checks are compiled in. In the
// default build it is a false constant, so guarded call sites are
// eliminated as dead code.
const Enabled = false

// Symmetric is a no-op unless built with -tags pactcheck.
func Symmetric(ctx string, m *dense.Mat, tol float64) {}

// NonNegDef is a no-op unless built with -tags pactcheck.
func NonNegDef(ctx string, m *dense.Mat, tol float64) {}

// PoleRealNonneg is a no-op unless built with -tags pactcheck.
func PoleRealNonneg(ctx string, lambda []float64) {}

// ReducedPassive is a no-op unless built with -tags pactcheck.
func ReducedPassive(ctx string, g, c *dense.Mat, tol float64) {}

// SymmetricCSR is a no-op unless built with -tags pactcheck.
func SymmetricCSR(ctx string, a *sparse.CSR, tol float64) {}

// Orthonormal is a no-op unless built with -tags pactcheck.
func Orthonormal(ctx string, v *dense.Mat, tol float64) {}
