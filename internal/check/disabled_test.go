//go:build !pactcheck

package check

import (
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// In the default build the stubs must be inert even on inputs that
// violate every invariant — the release pipeline never pays for or
// panics on a check.
func TestDisabledStubsAreNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the pactcheck tag")
	}
	indef := dense.NewFromRows([][]float64{{1, 2}, {2, 1}})
	asym := dense.NewFromRows([][]float64{{1, 2}, {0, 1}})
	Symmetric("stub", asym, DefaultTol)
	NonNegDef("stub", indef, DefaultTol)
	PoleRealNonneg("stub", []float64{-1, 2})
	ReducedPassive("stub", indef, asym, DefaultTol)
	ub := sparse.NewBuilder(2, 2)
	ub.Add(0, 1, -1)
	SymmetricCSR("stub", ub.Build(), DefaultTol)
	Orthonormal("stub", dense.NewFromRows([][]float64{{2, 2}, {2, 2}}), OrthTol)
}
