//go:build pactcheck

package check

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Enabled reports whether the invariant checks are compiled in.
const Enabled = true

func fail(ctx, detail string) {
	panic(fmt.Sprintf("check: %s: %s", ctx, detail))
}

// Symmetric panics unless m is square and |m_ij − m_ji| ≤ tol·scale for
// every entry, where scale is the largest magnitude in m.
func Symmetric(ctx string, m *dense.Mat, tol float64) {
	if m.R != m.C {
		fail(ctx, fmt.Sprintf("matrix is %d×%d, not square", m.R, m.C))
	}
	scale := m.MaxAbs()
	if scale == 0 {
		return
	}
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			if d := math.Abs(m.At(i, j) - m.At(j, i)); d > tol*scale {
				fail(ctx, fmt.Sprintf("asymmetry |m[%d,%d]−m[%d,%d]| = %g exceeds %g·%g", i, j, j, i, d, tol, scale))
			}
		}
	}
}

// NonNegDef panics unless the symmetric matrix m is non-negative definite
// within tolerance: its smallest eigenvalue must exceed −tol·scale, scale
// being the largest diagonal magnitude. The fast path is a Cholesky probe
// of m + 2·tol·scale·I — if that factors, the bound holds; only when the
// probe fails is the exact eigenvalue computed for the verdict.
func NonNegDef(ctx string, m *dense.Mat, tol float64) {
	if m.R != m.C {
		fail(ctx, fmt.Sprintf("matrix is %d×%d, not square", m.R, m.C))
	}
	n := m.R
	if n == 0 {
		return
	}
	scale := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(m.At(i, i)); d > scale {
			scale = d
		}
	}
	if scale == 0 {
		scale = m.MaxAbs()
		if scale == 0 {
			return // the zero matrix is non-negative definite
		}
	}
	probe := m.Clone()
	shift := 2 * tol * scale
	for i := 0; i < n; i++ {
		probe.Add(i, i, shift)
	}
	if dense.Cholesky(probe) == nil {
		return
	}
	// The probe is inconclusive near the tolerance boundary; decide with
	// the exact smallest eigenvalue.
	vals, _, err := dense.SymEig(m.Clone(), false)
	if err != nil {
		fail(ctx, fmt.Sprintf("eigensolve failed while verifying definiteness: %v", err))
	}
	min := vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	if min < -tol*scale {
		fail(ctx, fmt.Sprintf("matrix is not non-negative definite: λ_min = %g < %g", min, -tol*scale))
	}
}

// PoleRealNonneg panics unless every retained eigenvalue of E′ is finite,
// strictly positive (each maps to a real negative pole at −1/λ), and the
// list is sorted descending — the contract of the pole analysis.
func PoleRealNonneg(ctx string, lambda []float64) {
	for i, l := range lambda {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			fail(ctx, fmt.Sprintf("eigenvalue %d is %g", i, l))
		}
		if l <= 0 {
			fail(ctx, fmt.Sprintf("eigenvalue %d is %g; retained λ must be positive (pole −1/λ real and negative)", i, l))
		}
		if i > 0 && l > lambda[i-1] {
			fail(ctx, fmt.Sprintf("eigenvalues not sorted descending at %d: %g > %g", i, l, lambda[i-1]))
		}
	}
}

// ReducedPassive panics unless the realized conductance and susceptance
// matrices of a reduced model are symmetric and non-negative definite —
// the necessary-and-sufficient passivity condition for RC multiports.
func ReducedPassive(ctx string, g, c *dense.Mat, tol float64) {
	Symmetric(ctx+" (conductance)", g, tol)
	Symmetric(ctx+" (susceptance)", c, tol)
	NonNegDef(ctx+" (conductance)", g, tol)
	NonNegDef(ctx+" (susceptance)", c, tol)
}

// SymmetricCSR panics unless the sparse matrix a is square and
// numerically symmetric within tol·scale (scale = largest entry
// magnitude). Stamping is the one place the pipeline builds matrices
// entry by entry, so an unpaired AddSym shows up here first.
func SymmetricCSR(ctx string, a *sparse.CSR, tol float64) {
	if a.Rows != a.Cols {
		fail(ctx, fmt.Sprintf("matrix is %d×%d, not square", a.Rows, a.Cols))
	}
	scale := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		return
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for p, j := range cols {
			if d := math.Abs(vals[p] - a.At(j, i)); d > tol*scale {
				fail(ctx, fmt.Sprintf("asymmetry |a[%d,%d]−a[%d,%d]| = %g exceeds %g·%g", i, j, j, i, d, tol, scale))
			}
		}
	}
}

// Orthonormal panics unless the columns of v are pairwise orthonormal
// within tol: |vᵢᵀvⱼ − δᵢⱼ| ≤ tol.
func Orthonormal(ctx string, v *dense.Mat, tol float64) {
	n, k := v.R, v.C
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += v.At(i, a) * v.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if d := math.Abs(s - want); d > tol {
				fail(ctx, fmt.Sprintf("columns %d,%d have inner product %g (want %g within %g)", a, b, s, want, tol))
			}
		}
	}
}
