//go:build pactcheck

package check

import (
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a check panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("check panicked with %T, want string", r)
		}
		if !strings.HasPrefix(msg, "check: ") {
			t.Fatalf("panic message %q lacks the check: prefix", msg)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic message %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestEnabledConst(t *testing.T) {
	if !Enabled {
		t.Fatal("built with pactcheck but Enabled is false")
	}
}

func TestSymmetric(t *testing.T) {
	m := dense.NewFromRows([][]float64{{2, -1}, {-1, 2}})
	Symmetric("ok", m, DefaultTol)

	bad := dense.NewFromRows([][]float64{{2, -1}, {-0.5, 2}})
	mustPanic(t, "asymmetry", func() { Symmetric("bad", bad, DefaultTol) })

	rect := dense.New(2, 3)
	mustPanic(t, "not square", func() { Symmetric("rect", rect, DefaultTol) })

	// Asymmetry below tolerance is roundoff, not a violation.
	near := dense.NewFromRows([][]float64{{2, -1}, {-1 + 1e-12, 2}})
	Symmetric("near", near, DefaultTol)
}

func TestNonNegDef(t *testing.T) {
	spd := dense.NewFromRows([][]float64{{2, -1}, {-1, 2}})
	NonNegDef("spd", spd, DefaultTol)

	// Singular but non-negative definite: the grounded-through-one-node
	// Laplacian pattern the stamps produce.
	psd := dense.NewFromRows([][]float64{{1, -1}, {-1, 1}})
	NonNegDef("psd", psd, DefaultTol)

	NonNegDef("zero", dense.New(3, 3), DefaultTol)
	NonNegDef("empty", dense.New(0, 0), DefaultTol)

	indef := dense.NewFromRows([][]float64{{1, 2}, {2, 1}})
	mustPanic(t, "not non-negative definite", func() { NonNegDef("indef", indef, DefaultTol) })

	neg := dense.NewFromRows([][]float64{{-1, 0}, {0, 1}})
	mustPanic(t, "not non-negative definite", func() { NonNegDef("neg", neg, DefaultTol) })
}

func TestPoleRealNonneg(t *testing.T) {
	PoleRealNonneg("ok", []float64{3e-9, 2e-9, 2e-9, 1e-12})
	PoleRealNonneg("empty", nil)

	mustPanic(t, "must be positive", func() { PoleRealNonneg("zero", []float64{1e-9, 0}) })
	mustPanic(t, "must be positive", func() { PoleRealNonneg("neg", []float64{-1e-9}) })
	mustPanic(t, "not sorted", func() { PoleRealNonneg("order", []float64{1e-9, 2e-9}) })
	nan := 0.0
	nan /= nan
	mustPanic(t, "eigenvalue 0", func() { PoleRealNonneg("nan", []float64{nan}) })
}

func TestReducedPassive(t *testing.T) {
	g := dense.NewFromRows([][]float64{{2, -1}, {-1, 2}})
	c := dense.NewFromRows([][]float64{{1, 0}, {0, 1}})
	ReducedPassive("ok", g, c, DefaultTol)

	badC := dense.NewFromRows([][]float64{{-1, 0}, {0, 1}})
	mustPanic(t, "susceptance", func() { ReducedPassive("bad", g, badC, DefaultTol) })
}

func TestSymmetricCSR(t *testing.T) {
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	b.Add(2, 2, 1)
	b.AddSym(0, 1, -1)
	SymmetricCSR("ok", b.Build(), DefaultTol)

	ub := sparse.NewBuilder(2, 2)
	ub.Add(0, 0, 1)
	ub.Add(1, 1, 1)
	ub.Add(0, 1, -1) // no matching (1,0) entry
	mustPanic(t, "asymmetry", func() { SymmetricCSR("bad", ub.Build(), DefaultTol) })

	mustPanic(t, "not square", func() { SymmetricCSR("rect", sparse.Zero(2, 3), DefaultTol) })
	SymmetricCSR("empty", sparse.Zero(4, 4), DefaultTol)
}

func TestOrthonormal(t *testing.T) {
	id := dense.NewFromRows([][]float64{{1, 0}, {0, 1}, {0, 0}})
	Orthonormal("ok", id, OrthTol)
	Orthonormal("empty", dense.New(5, 0), OrthTol)

	unnorm := dense.NewFromRows([][]float64{{2}, {0}})
	mustPanic(t, "inner product", func() { Orthonormal("unnorm", unnorm, OrthTol) })

	skew := dense.NewFromRows([][]float64{{1, 1}, {0, 0.001}})
	mustPanic(t, "inner product", func() { Orthonormal("skew", skew, OrthTol) })
}
