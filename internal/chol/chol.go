// Package chol implements the sparse factorizations at the heart of the
// PACT flow: a real Cholesky factorization LLᵀ of the internal conductance
// matrix D (Section 3.1 of the paper), and a complex LDLᵀ factorization of
// D + sE sharing the same symbolic structure, used to evaluate the exact
// multiport admittance Y(s) of the unreduced network for verification.
//
// Both factorizations are up-looking: row k of L is computed from the
// elimination-tree reach of column k of the upper triangle of A, following
// the classic CSparse scheme. No numeric pivoting is performed; D is
// symmetric positive definite by construction (every internal node has a
// DC path to a port), which the factorization verifies, and D + jωE is
// diagonally dominated by D for the frequencies of interest.
package chol

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/order"
	"repro/internal/resilience/inject"
	"repro/internal/sparse"
)

// ErrNotPositiveDefinite is returned when a pivot is non-positive; for a
// correctly stamped RC network this means some internal node has no DC
// path to any port (D singular), which the paper assumes away and we
// diagnose.
var ErrNotPositiveDefinite = errors.New("chol: matrix is not positive definite (internal node without DC path to a port?)")

// Factor is a sparse lower-triangular Cholesky factor. It is backed by
// one of two representations: the up-looking kernel's per-column CSC
// storage (diagonal first in every column), or the supernodal kernel's
// packed dense panels. All methods dispatch transparently.
type Factor struct {
	L     *sparse.CSC  // simplicial storage; nil for a supernodal factor
	super *superFactor // supernodal storage; nil for a simplicial factor
}

func (f *Factor) order() int {
	if f.super != nil {
		return f.super.ss.sym.N
	}
	return f.L.Cols
}

// Factorize computes the Cholesky factorization A = LLᵀ of the symmetric
// positive definite matrix A (full pattern CSR, already permuted into its
// final order) using the symbolic analysis sym, which must have been
// computed for the same (permuted) pattern — i.e. Analyze(...).Perm was
// already applied by the caller, or the pattern was analyzed with
// order.Natural. Orders at or above SupernodalMinOrder take the blocked
// supernodal kernel; smaller ones the scalar up-looking kernel.
func Factorize(a *sparse.CSR, sym *order.Symbolic) (*Factor, error) {
	return FactorizeStrategy(a, sym, StrategyAuto)
}

// FactorizeStrategy is Factorize with an explicit kernel choice, for
// benchmarks and the cross-check tests that pit the two kernels against
// each other.
func FactorizeStrategy(a *sparse.CSR, sym *order.Symbolic, strat Strategy) (*Factor, error) {
	if strat == StrategySupernodal || (strat == StrategyAuto && a.Rows >= SupernodalMinOrder) {
		ss, err := AnalyzeSuper(a, sym, order.SupernodeOptions{})
		if err != nil {
			return nil, err
		}
		return ss.Factorize(a)
	}
	return factorizeUpLooking(a, sym)
}

func factorizeUpLooking(a *sparse.CSR, sym *order.Symbolic) (*Factor, error) {
	n := a.Rows
	if a.Cols != n || sym.N != n {
		return nil, fmt.Errorf("chol: dimension mismatch (matrix %dx%d, symbolic %d)", a.Rows, a.Cols, sym.N)
	}
	upper := a.UpperCSC()
	lnz := sym.LNNZ()
	l := &sparse.CSC{
		Rows: n, Cols: n,
		ColPtr: append([]int(nil), sym.ColPtr...),
		Row:    make([]int, lnz),
		Val:    make([]float64, lnz),
	}
	// nextFree[j] tracks where the next entry of column j goes; the
	// diagonal is reserved at ColPtr[j] and filled when row j is finished.
	nextFree := make([]int, n)
	for j := 0; j < n; j++ {
		nextFree[j] = sym.ColPtr[j] + 1
		l.Row[sym.ColPtr[j]] = j
	}
	x := make([]float64, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		// Scatter column k of the upper triangle of A into x.
		top := order.EReach(upper, k, sym.Parent, s, w)
		for p := upper.ColPtr[k]; p < upper.ColPtr[k+1]; p++ {
			x[upper.Row[p]] = upper.Val[p]
		}
		d := x[k]
		adiag := d // original diagonal, reference for the pivot check
		x[k] = 0
		// Eliminate along the reach in topological order.
		for t := top; t < n; t++ {
			j := s[t]
			lkj := x[j] / l.Val[sym.ColPtr[j]]
			x[j] = 0
			for p := sym.ColPtr[j] + 1; p < nextFree[j]; p++ {
				x[l.Row[p]] -= l.Val[p] * lkj
			}
			d -= lkj * lkj
			q := nextFree[j]
			if q >= sym.ColPtr[j+1] {
				return nil, fmt.Errorf("chol: symbolic column %d overflow; pattern not symmetric?", j)
			}
			l.Row[q] = k
			l.Val[q] = lkj
			nextFree[j]++
		}
		if inject.Enabled {
			// Fault-injection sites (compiled out of release builds): poison
			// the pivot of elimination k, or fail it outright, as if the
			// matrix were singular there.
			d = inject.PoisonValue(inject.CholPoison, k, d)
			if inject.ShouldFail(inject.CholPivot, k) {
				return nil, fmt.Errorf("%w: injected pivot failure at elimination %d", ErrNotPositiveDefinite, k)
			}
		}
		// A pivot that collapsed by 13+ orders of magnitude relative to its
		// original diagonal is numerical noise around a singular matrix
		// (e.g. a floating subnetwork), not a usable value.
		if d <= 0 || d <= 1e-13*adiag || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g (diagonal was %g)", ErrNotPositiveDefinite, k, d, adiag)
		}
		l.Val[sym.ColPtr[k]] = math.Sqrt(d)
	}
	return &Factor{L: l}, nil
}

// LSolve solves L y = b in place (b becomes y).
func (f *Factor) LSolve(b []float64) {
	if f.super != nil {
		f.super.lsolve(b)
		return
	}
	sparse.LowerSolveCSC(f.L, b)
}

// LTSolve solves Lᵀ y = b in place.
func (f *Factor) LTSolve(b []float64) {
	if f.super != nil {
		f.super.ltsolve(b)
		return
	}
	sparse.LowerTransposeSolveCSC(f.L, b)
}

// Solve solves A x = b in place using A = LLᵀ.
func (f *Factor) Solve(b []float64) {
	f.LSolve(b)
	f.LTSolve(b)
}

// NNZ returns the number of stored factor entries the solves touch: the
// structural nonzeros of L for the up-looking kernel, the trapezoid
// entries (structural plus amalgamation zeros) for the supernodal one.
func (f *Factor) NNZ() int {
	if f.super != nil {
		return f.super.ss.trapNNZ
	}
	return f.L.NNZ()
}

// Supernodes returns the number of supernodal panels, or 0 for a
// simplicial (up-looking) factor.
func (f *Factor) Supernodes() int {
	if f.super != nil {
		return f.super.ss.NSuper()
	}
	return 0
}

// AmalgamatedFill returns the count of explicitly stored zeros the
// relaxed supernode amalgamation introduced (0 for a simplicial factor).
func (f *Factor) AmalgamatedFill() int {
	if f.super != nil {
		return f.super.ss.Fill()
	}
	return 0
}

// FlopEstimate returns the approximate floating-point operation count
// of the numeric factorization, 2·Σⱼ cⱼ² over the stored column counts.
func (f *Factor) FlopEstimate() float64 {
	if f.super != nil {
		return f.super.ss.flops
	}
	flops := 0.0
	for j := 0; j < f.L.Cols; j++ {
		c := float64(f.L.ColPtr[j+1] - f.L.ColPtr[j])
		flops += 2 * c * c
	}
	return flops
}

// Bytes returns the approximate peak memory footprint of the factor in
// bytes, used by the Table 4 memory accounting. For a supernodal factor
// this counts the packed panel values, the shared symbolic structure
// (row lists, panel offsets, the precomputed update-edge and scatter
// routing: int32 rel/scat lists plus the fixed per-edge records), and
// the transient numeric-run scratch reported by ScratchBytes — the
// per-worker dense update blocks, DAG run state, and solve buffers that
// earlier accountings missed.
func (f *Factor) Bytes() int64 {
	if f.super != nil {
		ss := f.super.ss
		b := int64(len(f.super.val)) * 8 // panel values
		for _, r := range ss.rows {
			b += int64(len(r)) * 8 // row lists (shared with other factors)
		}
		b += int64(len(ss.off)+2*len(ss.sn.Super)) * 8
		b += int64(ss.edgeInts) * 4 // rel + scat int32 storage
		for _, es := range ss.updaters {
			b += int64(len(es)) * 40 // per-edge record incl. slice header
		}
		return b + f.super.scratchBytes
	}
	return int64(f.L.NNZ())*(8+8) + int64(len(f.L.ColPtr))*8
}

// ScratchBytes returns the transient memory of the numeric
// factorization run that produced this factor — worker-owned dense
// update scratch, DAG scheduling state, and the peak per-worker solve
// buffers its multi-RHS solves create — 0 for a simplicial factor
// (whose up-looking scratch is three length-n arrays, counted against
// the matrix, not the factor). Included in Bytes.
func (f *Factor) ScratchBytes() int64 {
	if f.super != nil {
		return f.super.scratchBytes
	}
	return 0
}

// ComplexFactor is a sparse LDLᵀ factorization of a complex symmetric (not
// Hermitian) matrix: A = L D Lᵀ with unit-lower-triangular L and diagonal
// D. It shares the symbolic structure of the real Cholesky of the pattern
// union of its real and imaginary parts.
type ComplexFactor struct {
	L     *sparse.CSC // row indices only; values in LVal
	LVal  []complex128
	D     []complex128
	super *superComplexFactor // supernodal storage; nil for simplicial
}

func (f *ComplexFactor) order() int {
	if f.super != nil {
		return f.super.ss.sym.N
	}
	return f.L.Cols
}

// FactorizeComplex computes the LDLᵀ factorization of the complex
// symmetric matrix with the given pattern (CSR, full symmetric pattern,
// already permuted) and entry values supplied by the val callback, which
// receives the position of each stored pattern entry. sym must be the
// symbolic analysis of the same pattern.
//
// The intended use is A(s) = D + sE: the pattern is PatternUnion(D, E) and
// val(p) = Dval(p) + s*Eval(p).
func FactorizeComplex(pattern *sparse.CSR, val func(p int) complex128, sym *order.Symbolic) (*ComplexFactor, error) {
	n := pattern.Rows
	if pattern.Cols != n || sym.N != n {
		return nil, fmt.Errorf("chol: complex dimension mismatch")
	}
	// Build the upper triangle in CSC with complex values. For a symmetric
	// CSR matrix, column j of the upper triangle is read from row j
	// (columns <= j), preserving original entry positions for val.
	upColPtr := make([]int, n+1)
	var upRow []int
	var upVal []complex128
	for j := 0; j < n; j++ {
		for p := pattern.RowPtr[j]; p < pattern.RowPtr[j+1] && pattern.Col[p] <= j; p++ {
			upRow = append(upRow, pattern.Col[p])
			upVal = append(upVal, val(p))
		}
		upColPtr[j+1] = len(upRow)
	}
	upper := &sparse.CSC{Rows: n, Cols: n, ColPtr: upColPtr, Row: upRow}

	lnz := sym.LNNZ()
	l := &sparse.CSC{Rows: n, Cols: n, ColPtr: append([]int(nil), sym.ColPtr...), Row: make([]int, lnz)}
	lval := make([]complex128, lnz)
	diag := make([]complex128, n)
	nextFree := make([]int, n)
	for j := 0; j < n; j++ {
		nextFree[j] = sym.ColPtr[j] + 1
		l.Row[sym.ColPtr[j]] = j
	}
	x := make([]complex128, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		top := order.EReach(upper, k, sym.Parent, s, w)
		for p := upper.ColPtr[k]; p < upper.ColPtr[k+1]; p++ {
			x[upper.Row[p]] = upVal[p]
		}
		d := x[k]
		x[k] = 0
		for t := top; t < n; t++ {
			j := s[t]
			// Row k of L: with LDLᵀ, the update uses x[j]/d[j] and the raw
			// x[j] for the diagonal correction.
			xj := x[j]
			lkj := xj / diag[j]
			x[j] = 0
			for p := sym.ColPtr[j] + 1; p < nextFree[j]; p++ {
				x[l.Row[p]] -= lval[p] * xj
			}
			d -= lkj * xj
			q := nextFree[j]
			if q >= sym.ColPtr[j+1] {
				return nil, fmt.Errorf("chol: complex symbolic column %d overflow", j)
			}
			l.Row[q] = k
			lval[q] = lkj
			nextFree[j]++
		}
		if inject.Enabled && inject.ShouldFail(inject.CholComplexPivot, k) {
			return nil, fmt.Errorf("chol: injected zero pivot %d in complex LDLᵀ", k)
		}
		if cmplx.Abs(d) == 0 || cmplx.IsNaN(d) {
			return nil, fmt.Errorf("chol: zero pivot %d in complex LDLᵀ", k)
		}
		diag[k] = d
	}
	return &ComplexFactor{L: l, LVal: lval, D: diag}, nil
}

// Solve solves A x = b in place using A = L D Lᵀ. A right-hand side of
// the wrong length is reported as an error (every sibling solve path
// returns typed errors; this one used to panic).
func (f *ComplexFactor) Solve(b []complex128) error {
	n := f.order()
	if len(b) != n {
		return fmt.Errorf("chol: complex solve dimension mismatch: rhs length %d, factor order %d", len(b), n)
	}
	if f.super != nil {
		f.super.solve(b)
		return nil
	}
	// Forward: L z = b (unit diagonal).
	for j := 0; j < n; j++ {
		zj := b[j]
		for p := f.L.ColPtr[j] + 1; p < f.L.ColPtr[j+1]; p++ {
			b[f.L.Row[p]] -= f.LVal[p] * zj
		}
	}
	// Diagonal.
	for j := 0; j < n; j++ {
		b[j] /= f.D[j]
	}
	// Backward: Lᵀ x = w.
	for j := n - 1; j >= 0; j-- {
		s := b[j]
		for p := f.L.ColPtr[j] + 1; p < f.L.ColPtr[j+1]; p++ {
			s -= f.LVal[p] * b[f.L.Row[p]]
		}
		b[j] = s
	}
	return nil
}
