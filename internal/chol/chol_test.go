package chol

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/sparse"
)

// randomSPD builds a random sparse symmetric diagonally dominant (hence
// SPD) matrix, the structural class of conductance matrices.
func randomSPD(rng *rand.Rand, n, extra int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	diag := make([]float64, n)
	type edge struct {
		i, j int
		v    float64
	}
	var edges []edge
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := -rng.Float64()
		edges = append(edges, edge{i, j, v})
		diag[i] += -v
		diag[j] += -v
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+0.5+rng.Float64())
	}
	for _, e := range edges {
		b.AddSym(e.i, e.j, e.v)
	}
	return b.Build()
}

func factorAndCheck(t *testing.T, a *sparse.CSR, method order.Method) {
	t.Helper()
	sym := order.Analyze(a, method)
	ap := a.PermuteSym(sym.Perm)
	f, err := Factorize(ap, sym)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	// Check L Lᵀ == Ap entrywise via dense reconstruction.
	n := a.Rows
	l := f.L.ToCSR().Dense()
	want := ap.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := 0.0
			for k := 0; k <= i && k <= j; k++ {
				got += l[i][k] * l[j][k]
			}
			if math.Abs(got-want[i][j]) > 1e-9*(1+math.Abs(want[i][j])) {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	// Factor nnz must match symbolic prediction exactly.
	if f.NNZ() != sym.LNNZ() {
		t.Fatalf("factor nnz %d != symbolic %d", f.NNZ(), sym.LNNZ())
	}
	// Solve check: A x = b round trip on the permuted system.
	x := make([]float64, n)
	for i := range x {
		x[i] = rng2.NormFloat64()
	}
	b := make([]float64, n)
	ap.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
			t.Fatalf("Solve[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

var rng2 = rand.New(rand.NewSource(99))

func TestFactorizeRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randomSPD(rng, n, 3*n)
		for _, m := range []order.Method{order.Natural, order.RCM, order.MinimumDegree} {
			factorAndCheck(t, a, m)
		}
	}
}

func TestFactorizeDiagonal(t *testing.T) {
	b := sparse.NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, float64(i+1))
	}
	a := b.Build()
	sym := order.Analyze(a, order.Natural)
	f, err := Factorize(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := math.Sqrt(float64(i + 1))
		if got := f.L.Val[f.L.ColPtr[i]]; math.Abs(got-want) > 1e-15 {
			t.Errorf("L[%d][%d] = %v, want %v", i, i, got, want)
		}
	}
}

func TestFactorizeRejectsIndefinite(t *testing.T) {
	// A singular conductance matrix: node 1 has no path to ground (rows
	// sum to zero exactly in the 2x2 floating block).
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.AddSym(0, 1, -1)
	a := b.Build()
	sym := order.Analyze(a, order.Natural)
	_, err := Factorize(a, sym)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestLSolveLTSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomSPD(rng, 15, 40)
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	f, err := Factorize(ap, sym)
	if err != nil {
		t.Fatal(err)
	}
	lcsr := f.L.ToCSR()
	x := make([]float64, 15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// L y = b where b = L x.
	b := make([]float64, 15)
	lcsr.MulVec(b, x)
	f.LSolve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-10 {
			t.Fatalf("LSolve[%d] = %v, want %v", i, b[i], x[i])
		}
	}
	// Lᵀ y = b where b = Lᵀ x.
	lt := lcsr.Transpose()
	lt.MulVec(b, x)
	f.LTSolve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-10 {
			t.Fatalf("LTSolve[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

// denseComplexSolve solves A x = b by Gaussian elimination with partial
// pivoting; the reference for the sparse complex LDLᵀ.
func denseComplexSolve(a [][]complex128, b []complex128) []complex128 {
	n := len(b)
	m := make([][]complex128, n)
	for i := range m {
		m[i] = append([]complex128(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for k := 0; k < n; k++ {
		piv := k
		for i := k + 1; i < n; i++ {
			if cmplx.Abs(m[i][k]) > cmplx.Abs(m[piv][k]) {
				piv = i
			}
		}
		m[k], m[piv] = m[piv], m[k]
		for i := k + 1; i < n; i++ {
			f := m[i][k] / m[k][k]
			for j := k; j <= n; j++ {
				m[i][j] -= f * m[k][j]
			}
		}
	}
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

func TestComplexLDLTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(20)
		d := randomSPD(rng, n, 2*n)
		e := randomSPD(rng, n, n)
		e.Scale(1e-2) // susceptance-like
		s := complex(0, 1e2*rng.Float64())
		pattern := sparse.PatternUnion(d, e)
		sym := order.Analyze(pattern, order.MinimumDegree)
		dp := d.PermuteSym(sym.Perm)
		ep := e.PermuteSym(sym.Perm)
		pat := sparse.PatternUnion(dp, ep)
		// Values aligned with pat's storage: re-extract by position.
		evalAt := func(p int) complex128 {
			// pat row/col of entry p.
			i := rowOf(pat, p)
			j := pat.Col[p]
			return complex(dp.At(i, j), 0) + s*complex(ep.At(i, j), 0)
		}
		f, err := FactorizeComplex(pat, evalAt, sym)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		// Dense reference on the permuted matrix.
		ad := make([][]complex128, n)
		ddense, edense := dp.Dense(), ep.Dense()
		for i := range ad {
			ad[i] = make([]complex128, n)
			for j := 0; j < n; j++ {
				ad[i][j] = complex(ddense[i][j], 0) + s*complex(edense[i][j], 0)
			}
		}
		want := denseComplexSolve(ad, b)
		got := append([]complex128(nil), b...)
		if err := f.Solve(got); err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-7*(1+cmplx.Abs(want[i])) {
				t.Fatalf("trial %d: Solve[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestComplexSolveDimensionMismatch(t *testing.T) {
	b := sparse.NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		b.Add(i, i, float64(i+2))
	}
	pat := b.Build()
	sym := order.Analyze(pat, order.Natural)
	f, err := FactorizeComplex(pat, func(p int) complex128 {
		return complex(pat.Val[p], 0)
	}, sym)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Solve(make([]complex128, 2)); err == nil {
		t.Fatal("Solve with short rhs must return an error, not succeed")
	}
	if err := f.Solve(make([]complex128, 3)); err != nil {
		t.Fatalf("Solve with correct rhs length: %v", err)
	}
}

// rowOf finds the row of storage position p by scanning RowPtr; fine for
// tests.
func rowOf(a *sparse.CSR, p int) int {
	for i := 0; i < a.Rows; i++ {
		if p >= a.RowPtr[i] && p < a.RowPtr[i+1] {
			return i
		}
	}
	panic("position out of range")
}

func TestFactorBytesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := randomSPD(rng, 10, 20)
	sym := order.Analyze(a, order.Natural)
	f, err := Factorize(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Bytes() <= 0 {
		t.Error("Bytes() must be positive")
	}
}
