package chol

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/order"
	"repro/internal/sparse"
)

// analyzeMeshSuper builds the permuted mesh matrix and its supernodal
// symbolic structure under minimum-degree ordering — the production
// configuration of the large-mesh path.
func analyzeMeshSuper(t *testing.T, nx, ny int) (*SuperSymbolic, *sparse.CSR) {
	t.Helper()
	a := meshSPD(nx, ny)
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	ss, err := AnalyzeSuper(ap, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ss, ap
}

// TestDAGScheduleBitIdenticalRealFactor pins the tentpole determinism
// contract for the real LLᵀ: the packed factor of the DAG schedule is
// Float64bits-identical to the serial run and to the legacy level
// schedule, at every GOMAXPROCS, with and without a pooled workspace.
func TestDAGScheduleBitIdenticalRealFactor(t *testing.T) {
	ss, ap := analyzeMeshSuper(t, 40, 40)

	serial := runtime.GOMAXPROCS(1)
	ref, err := ss.FactorizeOpt(ap, ScheduleDAG, nil)
	runtime.GOMAXPROCS(serial)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), ref.super.val...)

	ws := ss.NewWorkspace()
	for _, procs := range []int{1, 2, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, sched := range []Schedule{ScheduleDAG, ScheduleLevel} {
			fresh, err := ss.FactorizeOpt(ap, sched, nil)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "fresh factor", want, fresh.super.val)
			pooled, err := ss.FactorizeOpt(ap, sched, ws)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "workspace factor", want, pooled.super.val)
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestDAGScheduleBitIdenticalComplexFactor is the complex LDLᵀ half of
// the pin: packed panels AND the diagonal must be bit-identical across
// schedules, GOMAXPROCS, and workspace reuse — the YSweep
// re-factorization configuration.
func TestDAGScheduleBitIdenticalComplexFactor(t *testing.T) {
	ss, ap := analyzeMeshSuper(t, 32, 32)
	val := func(p int) complex128 {
		return complex(ap.Val[p], 0.25*ap.Val[p]) // (1+0.25i)·A: symmetric, nonsingular
	}

	serial := runtime.GOMAXPROCS(1)
	ref, err := ss.FactorizeComplexOpt(ap, val, ScheduleDAG, nil)
	runtime.GOMAXPROCS(serial)
	if err != nil {
		t.Fatal(err)
	}
	wantV := append([]complex128(nil), ref.super.val...)
	wantD := append([]complex128(nil), ref.super.d...)

	ws := ss.NewWorkspace()
	for _, procs := range []int{1, 2, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, sched := range []Schedule{ScheduleDAG, ScheduleLevel} {
			for _, useWS := range []bool{false, true} {
				var w *FactorWorkspace
				if useWS {
					w = ws
				}
				f, err := ss.FactorizeComplexOpt(ap, val, sched, w)
				if err != nil {
					t.Fatal(err)
				}
				cbitsEqual(t, "complex panels", wantV, f.super.val)
				cbitsEqual(t, "complex diagonal", wantD, f.super.d)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

func cbitsEqual(t *testing.T, what string, a, b []complex128) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			t.Fatalf("%s: entry %d differs in bits: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestFactorWorkspaceSteadyStateAllocs pins the memory-engineering half
// of the tentpole: repeated factorizations through one workspace must
// allocate only O(1) descriptor objects (the returned factor handles),
// never the panel/scratch/solve storage — the property that makes
// AC-sweep re-factorizations allocation-free in steady state.
func TestFactorWorkspaceSteadyStateAllocs(t *testing.T) {
	ss, ap := analyzeMeshSuper(t, 30, 30)
	val := func(p int) complex128 { return complex(ap.Val[p], 0.25*ap.Val[p]) }

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	ws := ss.NewWorkspace()
	n := ss.sym.N
	rhs := make([]float64, 4*n)
	crhs := make([]complex128, 4*n)

	// Warm every lazily created buffer once.
	if _, err := ss.FactorizeOpt(ap, ScheduleDAG, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.FactorizeComplexOpt(ap, val, ScheduleDAG, ws); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(5, func() {
		f, err := ss.FactorizeOpt(ap, ScheduleDAG, ws)
		if err != nil {
			t.Fatal(err)
		}
		f.SolveMulti(rhs, 4)
		cf, err := ss.FactorizeComplexOpt(ap, val, ScheduleDAG, ws)
		if err != nil {
			t.Fatal(err)
		}
		if err := cf.SolveMulti(crhs, 4); err != nil {
			t.Fatal(err)
		}
	})
	// Factor/ComplexFactor handles and scheduler closures are O(1) small
	// objects; the panels (the megabytes) must be pooled.
	if allocs > 16 {
		t.Fatalf("steady-state factorize+solve allocates %v objects/op, want O(1) descriptors only", allocs)
	}
}

// TestDAGScheduleErrorDeterministic: a non-SPD matrix must fail with
// the same typed error under the DAG schedule as under the level
// schedule (single failing panel), with no early exit corrupting the
// report, at several worker counts.
func TestDAGScheduleErrorDeterministic(t *testing.T) {
	a := meshSPD(24, 24)
	// Flip one diagonal deep in the matrix: that column's pivot goes
	// negative during elimination.
	for p := a.RowPtr[400]; p < a.RowPtr[401]; p++ {
		if a.Col[p] == 400 {
			a.Val[p] = -5
		}
	}
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	ss, err := AnalyzeSuper(ap, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, sched := range []Schedule{ScheduleDAG, ScheduleLevel} {
			_, err := ss.FactorizeOpt(ap, sched, nil)
			if !errors.Is(err, ErrNotPositiveDefinite) {
				t.Fatalf("procs=%d sched=%v: err = %v, want ErrNotPositiveDefinite", procs, sched, err)
			}
			msgs = append(msgs, err.Error())
		}
		runtime.GOMAXPROCS(old)
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("error message drifted across schedules/procs: %q vs %q", msgs[0], m)
		}
	}
}
