//go:build pactcheck

package chol

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/order"
	"repro/internal/resilience/inject"
)

// TestInjectedDAGTaskFailureDrainsDeterministically drives the
// chol.dag.task point: a forced task failure at one supernode must
// surface as that panel's error after the whole DAG drains (no early
// exit), identically at several GOMAXPROCS and under both schedules,
// for the real and the complex factorization.
func TestInjectedDAGTaskFailureDrainsDeterministically(t *testing.T) {
	a := meshSPD(24, 24)
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	ss, err := AnalyzeSuper(ap, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	target := ss.NSuper() / 2
	val := func(p int) complex128 { return complex(ap.Val[p], 0.25*ap.Val[p]) }

	var msgs []string
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, sched := range []Schedule{ScheduleDAG, ScheduleLevel} {
			s := inject.NewSchedule().Arm(inject.CholDAGTask, target)
			inject.Install(s)
			_, ferr := ss.FactorizeOpt(ap, sched, nil)
			if ferr == nil || !strings.Contains(ferr.Error(), "injected task failure") {
				t.Fatalf("procs=%d sched=%v: err = %v, want injected task failure", procs, sched, ferr)
			}
			if s.Fired(inject.CholDAGTask) != 1 {
				t.Fatalf("procs=%d sched=%v: point fired %d times", procs, sched, s.Fired(inject.CholDAGTask))
			}
			msgs = append(msgs, ferr.Error())

			s = inject.NewSchedule().Arm(inject.CholDAGTask, target)
			inject.Install(s)
			_, cerr := ss.FactorizeComplexOpt(ap, val, sched, nil)
			if cerr == nil || !strings.Contains(cerr.Error(), "injected task failure") {
				t.Fatalf("procs=%d sched=%v: complex err = %v", procs, sched, cerr)
			}
			msgs = append(msgs, cerr.Error())
			inject.Reset()
		}
		runtime.GOMAXPROCS(old)
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("injected failure drifted across schedules/procs: %q vs %q", msgs[0], m)
		}
	}

	// Disarmed, the same structure factors cleanly — the injection left
	// no state behind.
	if _, err := ss.FactorizeOpt(ap, ScheduleDAG, nil); err != nil {
		t.Fatalf("clean refactorize after injection: %v", err)
	}
}
