package chol

import (
	"repro/internal/order"
	"repro/internal/sparse"
)

// ShiftedAnalysis bundles the symbolic state needed to factor the pencil
// D + sE repeatedly at different complex shifts s: the union pattern of
// D and E, its symbolic factorization, and — at supernodal order — the
// amalgamated supernodal analysis. Analyze once, then Factorize per
// shift: exactly the amortization YSweep performs, packaged as an entry
// point so the multi-expansion-point reduction (and any other repeated
// shifted-solve client) shares it without re-deriving the dispatch.
type ShiftedAnalysis struct {
	// Pat is the union pattern the analysis was performed on; the val
	// callback passed to Factorize is indexed by Pat's stored positions.
	Pat *sparse.CSR

	sym *order.Symbolic
	ss  *SuperSymbolic
}

// AnalyzeShifted performs the symbolic analysis for repeated complex
// LDLᵀ factorizations of a pencil with the given (already ordered) union
// pattern and symbolic factorization. Orders at or above
// SupernodalMinOrder additionally get the supernodal amalgamation, so
// every subsequent Factorize runs the blocked DAG-scheduled kernel.
func AnalyzeShifted(pat *sparse.CSR, sym *order.Symbolic) (*ShiftedAnalysis, error) {
	sa := &ShiftedAnalysis{Pat: pat, sym: sym}
	if pat.Rows >= SupernodalMinOrder {
		ss, err := AnalyzeSuper(pat, sym, order.SupernodeOptions{})
		if err != nil {
			return nil, err
		}
		sa.ss = ss
	}
	return sa, nil
}

// Supernodal reports whether Factorize runs the supernodal kernel.
func (sa *ShiftedAnalysis) Supernodal() bool { return sa.ss != nil }

// NewWorkspace returns a reusable factorization workspace for the
// supernodal path, or nil when the order is simplicial (the simplicial
// kernel allocates per call and ignores the workspace).
func (sa *ShiftedAnalysis) NewWorkspace() *FactorWorkspace {
	if sa.ss == nil {
		return nil
	}
	return sa.ss.NewWorkspace()
}

// Factorize runs one complex LDLᵀ numeric factorization of the analyzed
// pattern with entry values supplied per stored pattern position. A
// non-nil workspace (supernodal path only) is reused across calls; the
// returned factor then aliases it and is valid until the next
// factorization against the same workspace.
func (sa *ShiftedAnalysis) Factorize(val func(p int) complex128, ws *FactorWorkspace) (*ComplexFactor, error) {
	if sa.ss != nil {
		return sa.ss.FactorizeComplexOpt(sa.Pat, val, ScheduleDAG, ws)
	}
	return FactorizeComplex(sa.Pat, val, sa.sym)
}
