package chol

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/order"
	"repro/internal/sparse"
)

// shiftedResidual returns max_i |(D+sE)x − b|_i for the permuted pair.
func shiftedResidual(dp, ep *sparse.CSR, s complex128, x, b []complex128) float64 {
	worst := 0.0
	for i := 0; i < dp.Rows; i++ {
		acc := -b[i]
		cols, vals := dp.Row(i)
		for p, j := range cols {
			acc += complex(vals[p], 0) * x[j]
		}
		cols, vals = ep.Row(i)
		for p, j := range cols {
			acc += s * complex(vals[p], 0) * x[j]
		}
		if a := cmplx.Abs(acc); a > worst {
			worst = a
		}
	}
	return worst
}

// TestAnalyzeShiftedSimplicialMatchesDense pins the small-order dispatch
// of the shared shifted analysis: below SupernodalMinOrder it must take
// the simplicial complex LDLᵀ (nil workspace) and solve D+sE exactly as
// the dense reference does.
func TestAnalyzeShiftedSimplicialMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(25)
		d := randomSPD(rng, n, 2*n)
		e := randomSPD(rng, n, n)
		e.Scale(1e-2)
		s := complex(0, 1+1e2*rng.Float64())
		sym0 := order.Analyze(sparse.PatternUnion(d, e), order.MinimumDegree)
		dp := d.PermuteSym(sym0.Perm)
		ep := e.PermuteSym(sym0.Perm)
		pat := sparse.PatternUnion(dp, ep)
		sym := order.Analyze(pat, order.Natural)
		sa, err := AnalyzeShifted(pat, sym)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sa.Supernodal() {
			t.Fatalf("trial %d: order %d must dispatch simplicial", trial, n)
		}
		if ws := sa.NewWorkspace(); ws != nil {
			t.Fatalf("trial %d: simplicial analysis must hand out a nil workspace", trial)
		}
		f, err := sa.Factorize(func(p int) complex128 {
			i := rowOf(pat, p)
			j := pat.Col[p]
			return complex(dp.At(i, j), 0) + s*complex(ep.At(i, j), 0)
		}, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := append([]complex128(nil), b...)
		if err := f.Solve(x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := shiftedResidual(dp, ep, s, x, b); r > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
	}
}

// TestAnalyzeShiftedSupernodalDispatch pins the large-order dispatch:
// at SupernodalMinOrder and above the analysis must carry a supernodal
// plan and a reusable workspace, and the blocked complex factorization
// must solve multi-RHS blocks to working precision — the path every
// large multi-point shift reuses with one symbolic analysis.
func TestAnalyzeShiftedSupernodalDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := SupernodalMinOrder + 37
	d := randomSPD(rng, n, 3*n)
	e := randomSPD(rng, n, n)
	e.Scale(1e-2)
	s := complex(0, 42.5)
	sym0 := order.Analyze(sparse.PatternUnion(d, e), order.MinimumDegree)
	dp := d.PermuteSym(sym0.Perm)
	ep := e.PermuteSym(sym0.Perm)
	pat := sparse.PatternUnion(dp, ep)
	sym := order.Analyze(pat, order.Natural)
	sa, err := AnalyzeShifted(pat, sym)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Supernodal() {
		t.Fatalf("order %d must dispatch supernodal", n)
	}
	ws := sa.NewWorkspace()
	if ws == nil {
		t.Fatal("supernodal analysis must hand out a reusable workspace")
	}
	val := func(p int) complex128 {
		i := rowOf(pat, p)
		j := pat.Col[p]
		return complex(dp.At(i, j), 0) + s*complex(ep.At(i, j), 0)
	}
	for round := 0; round < 2; round++ { // workspace must be reusable
		f, err := sa.Factorize(val, ws)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		const nrhs = 3
		rhs := make([]complex128, nrhs*n)
		for i := range rhs {
			rhs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := append([]complex128(nil), rhs...)
		if err := f.SolveMulti(x, nrhs); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for c := 0; c < nrhs; c++ {
			if r := shiftedResidual(dp, ep, s, x[c*n:(c+1)*n], rhs[c*n:(c+1)*n]); r > 1e-7 {
				t.Fatalf("round %d: rhs %d residual %g", round, c, r)
			}
		}
	}
}
