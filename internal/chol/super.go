// Supernodal blocked Cholesky: the BLAS-3 variant of the factorization
// kernels. The columns of L are partitioned into supernodes (contiguous
// panels whose structures nest, found by order.FindSupernodes with
// relaxed amalgamation); each panel is stored as one dense column-major
// trapezoid and factored by a dense right-looking kernel, and the
// sparse update of a panel by its descendants becomes a dense rank-k
// product gathered through an integer relative map. The arithmetic per
// entry is a fixed-order sum exactly as in the up-looking kernel's
// spirit — updaters ascending, columns ascending within a panel — so
// the result is deterministic: bit-identical across runs and at every
// GOMAXPROCS, with parallelism only across the independent panels of
// one elimination-tree level and across right-hand sides in the blocked
// solves.
package chol

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/resilience/inject"
	"repro/internal/sparse"
)

// SupernodalMinOrder is the matrix order at and above which Factorize
// selects the supernodal blocked kernel; below it the scalar up-looking
// kernel wins (panel bookkeeping costs more than it saves) and keeps
// the historical bit-exact outputs for the small golden tests. Tests
// lower it to force the blocked path onto small matrices.
var SupernodalMinOrder = 512

// Strategy selects a factorization kernel explicitly, mainly for
// benchmarks and cross-check tests; production callers use Factorize,
// which picks by size.
type Strategy int

const (
	// StrategyAuto picks the supernodal kernel for orders at or above
	// SupernodalMinOrder and the up-looking kernel below it.
	StrategyAuto Strategy = iota
	// StrategyUpLooking forces the scalar up-looking kernel.
	StrategyUpLooking
	// StrategySupernodal forces the supernodal blocked kernel.
	StrategySupernodal
)

// SuperSymbolic is the supernodal extension of a symbolic analysis: the
// supernode partition plus, per supernode, its full row list, the
// ascending list of descendant supernodes that update it, and a level
// schedule of the supernodal elimination tree. It depends only on the
// pattern, so one SuperSymbolic is shared by every numeric
// factorization of that pattern — the real Cholesky, each refactorize
// of a recovery ladder, and every frequency point of a complex LDLᵀ
// sweep.
type SuperSymbolic struct {
	sym *order.Symbolic
	sn  *order.Supernodes
	// rows[s] lists the global row indices of supernode s's trapezoid in
	// ascending order; the first Width(s) entries are the panel's own
	// columns, the rest the below-diagonal structure of its last column.
	rows [][]int
	// off[s] is the offset of panel s in the packed value storage; panel
	// s occupies off[s+1]-off[s] = len(rows[s])*Width(s) entries,
	// column-major (local column j starts at off[s]+j*len(rows[s])).
	off []int
	// updaters[s] lists, ascending, the supernodes d < s whose below
	// rows intersect s's column range: exactly the panels whose dense
	// rank-k products must be subtracted from panel s.
	updaters [][]int
	// levels groups supernodes by height in the supernodal elimination
	// tree. Every updater of s sits at a strictly lower level, so the
	// panels within one level are independent and run in parallel.
	levels [][]int
	// trapNNZ counts the trapezoid entries (the "logical" factor
	// nonzeros, structural plus amalgamation zeros); maxRows/maxWidth
	// bound the per-worker dense scratch.
	trapNNZ           int
	maxRows, maxWidth int
	flops             float64
}

// AnalyzeSuper builds the supernodal symbolic structure for the given
// full symmetric pattern and its symbolic analysis. Pass a zero
// SupernodeOptions for the default panel width and relaxed-amalgamation
// budget.
func AnalyzeSuper(a *sparse.CSR, sym *order.Symbolic, opt order.SupernodeOptions) (*SuperSymbolic, error) {
	n := a.Rows
	if a.Cols != n || sym.N != n {
		return nil, fmt.Errorf("chol: supernodal dimension mismatch (matrix %dx%d, symbolic %d)", a.Rows, a.Cols, sym.N)
	}
	sn := sym.FindSupernodes(opt)
	ns := sn.NSuper()
	ss := &SuperSymbolic{sym: sym, sn: sn}

	// Below-diagonal rows per supernode: k belongs to below(s) exactly
	// when the last column of s appears in the elimination reach of row
	// k, i.e. L[k, last(s)] is structurally nonzero. One EReach sweep
	// over all rows (ascending k, so each list comes out sorted) gives
	// every list.
	isLast := make([]bool, n)
	for s := 1; s <= ns; s++ {
		isLast[sn.Super[s]-1] = true
	}
	upper := a.UpperCSC()
	below := make([][]int, ns)
	stack := make([]int, n)
	work := make([]int, n)
	for i := range work {
		work[i] = -1
	}
	for k := 0; k < n; k++ {
		top := order.EReach(upper, k, sym.Parent, stack, work)
		for t := top; t < n; t++ {
			if j := stack[t]; isLast[j] {
				d := sn.ColToSuper[j]
				below[d] = append(below[d], k)
			}
		}
	}

	ss.rows = make([][]int, ns)
	ss.off = make([]int, ns+1)
	for s := 0; s < ns; s++ {
		c0, w := sn.Super[s], sn.Width(s)
		rows := make([]int, w+len(below[s]))
		for j := 0; j < w; j++ {
			rows[j] = c0 + j
		}
		copy(rows[w:], below[s])
		ss.rows[s] = rows
		h := len(rows)
		ss.off[s+1] = ss.off[s] + h*w
		ss.trapNNZ += h*w - w*(w-1)/2
		if h > ss.maxRows {
			ss.maxRows = h
		}
		if w > ss.maxWidth {
			ss.maxWidth = w
		}
		for j := 0; j < w; j++ {
			hj := float64(h - j)
			ss.flops += 2 * hj * hj
		}
	}

	// updaters[s]: descendants whose below rows land in s's columns.
	// Below lists are ascending, so consecutive rows of one target
	// supernode dedupe with a single "previous" check, and scanning d
	// ascending keeps each updater list ascending.
	ss.updaters = make([][]int, ns)
	for d := 0; d < ns; d++ {
		w := sn.Width(d)
		prev := -1
		for _, r := range ss.rows[d][w:] {
			if t := sn.ColToSuper[r]; t != prev {
				ss.updaters[t] = append(ss.updaters[t], d)
				prev = t
			}
		}
	}

	// Level schedule by height in the supernodal etree. Children always
	// have smaller indices than their parent (the parent column of a
	// supernode's last column lies beyond it), so one ascending pass
	// computes heights.
	level := make([]int, ns)
	maxLevel := -1
	for s := 0; s < ns; s++ {
		last := sn.Super[s+1] - 1
		if p := sym.Parent[last]; p >= 0 {
			ps := sn.ColToSuper[p]
			if level[ps] < level[s]+1 {
				level[ps] = level[s] + 1
			}
		}
		if level[s] > maxLevel {
			maxLevel = level[s]
		}
	}
	ss.levels = make([][]int, maxLevel+1)
	for s := 0; s < ns; s++ {
		ss.levels[level[s]] = append(ss.levels[level[s]], s)
	}
	return ss, nil
}

// NSuper returns the number of supernodes.
func (ss *SuperSymbolic) NSuper() int { return ss.sn.NSuper() }

// Fill returns the count of explicitly stored zeros introduced by
// relaxed amalgamation.
func (ss *SuperSymbolic) Fill() int { return ss.sn.Fill }

// FlopEstimate returns the approximate floating-point operation count
// of one numeric factorization (2·Σⱼ hⱼ² over the stored column heights
// hⱼ, counting multiplies and adds separately).
func (ss *SuperSymbolic) FlopEstimate() float64 { return ss.flops }

// superFactor is the numeric supernodal factor: the packed column-major
// panels, interpreted through the shared symbolic structure. For the
// real Cholesky the panels hold L with its diagonal; for the complex
// LDLᵀ they hold unit-diagonal L with the diagonal in a separate slice.
type superFactor struct {
	ss  *SuperSymbolic
	val []float64
}

func (sf *superFactor) panel(s int) []float64 {
	return sf.val[sf.ss.off[s]:sf.ss.off[s+1]]
}

// superScratch is the worker-owned scratch of the numeric
// factorization: the relative map from global rows to panel-local
// indices, the dense update block, and the original diagonals for the
// pivot check.
type superScratch struct {
	relmap []int
	upd    []float64
	cupd   []complex128
	adiag  []float64
}

func (ss *SuperSymbolic) newScratch(complexUpd bool) *superScratch {
	sc := &superScratch{
		relmap: make([]int, ss.sym.N),
		adiag:  make([]float64, ss.maxWidth),
	}
	for i := range sc.relmap {
		sc.relmap[i] = -1
	}
	if complexUpd {
		sc.cupd = make([]complex128, ss.maxRows*ss.maxWidth)
	} else {
		sc.upd = make([]float64, ss.maxRows*ss.maxWidth)
	}
	return sc
}

// Factorize runs the numeric supernodal Cholesky A = LLᵀ against this
// symbolic structure. Panels within one elimination-tree level factor
// in parallel; all arithmetic per panel is serial in fixed order, so
// the factor is bit-identical at every GOMAXPROCS.
func (ss *SuperSymbolic) Factorize(a *sparse.CSR) (*Factor, error) {
	n := ss.sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("chol: supernodal factorize dimension mismatch (matrix %dx%d, symbolic %d)", a.Rows, a.Cols, n)
	}
	sf := &superFactor{ss: ss, val: make([]float64, ss.off[ss.sn.NSuper()])}
	errs := make([]error, ss.sn.NSuper())
	workers := ss.maxLevelWorkers()
	scratch := make([]*superScratch, workers)
	for _, lvl := range ss.levels {
		par.Do(workers, len(lvl), func(w, i int) {
			if scratch[w] == nil {
				scratch[w] = ss.newScratch(false)
			}
			s := lvl[i]
			errs[s] = sf.factorPanel(a, s, scratch[w])
		})
		for _, s := range lvl {
			if errs[s] != nil {
				return nil, errs[s]
			}
		}
	}
	return &Factor{super: sf}, nil
}

func (ss *SuperSymbolic) maxLevelWorkers() int {
	widest := 1
	for _, lvl := range ss.levels {
		if len(lvl) > widest {
			widest = len(lvl)
		}
	}
	return par.Workers(widest)
}

// factorPanel assembles and factors one supernode: scatter A's lower
// triangle, subtract the dense rank-k products of the updating
// descendants (ascending), then run the dense right-looking trapezoid
// factorization. The pivot checks and fault-injection sites match the
// up-looking kernel exactly, per global column.
func (sf *superFactor) factorPanel(a *sparse.CSR, s int, sc *superScratch) error {
	ss := sf.ss
	c0, w := ss.sn.Super[s], ss.sn.Width(s)
	rows := ss.rows[s]
	h := len(rows)
	P := sf.panel(s)
	for i, r := range rows {
		sc.relmap[r] = i
	}
	defer func() {
		for _, r := range rows {
			sc.relmap[r] = -1
		}
	}()

	// Scatter the lower triangle of A: for symmetric CSR, column c's
	// rows >= c are read from row c's entries at columns >= c.
	for j := 0; j < w; j++ {
		c := c0 + j
		col := P[j*h : (j+1)*h]
		for p := a.RowPtr[c]; p < a.RowPtr[c+1]; p++ {
			cc := a.Col[p]
			if cc < c {
				continue
			}
			col[sc.relmap[cc]] = a.Val[p]
			if cc == c {
				sc.adiag[j] = a.Val[p]
			}
		}
	}

	// Left-looking update: for each descendant panel d, form the dense
	// product C = Ld[lo:, :]·Ld[lo:mid, :]ᵀ (lower part only) in scratch
	// and scatter-subtract it through the relative map.
	for _, d := range ss.updaters[s] {
		rd := ss.rows[d]
		hd := len(rd)
		wd := ss.sn.Width(d)
		Pd := sf.panel(d)
		lo := sort.SearchInts(rd, c0)
		mid := sort.SearchInts(rd, c0+w)
		hC := hd - lo
		wC := mid - lo
		C := sc.upd[:hC*wC]
		for i := range C {
			C[i] = 0
		}
		// Rank-wd update, unrolled two columns of d at a time: each pass
		// reads C once for two multiplier columns, halving the traffic on
		// the accumulator. The pairing is fixed by k, so the summation
		// order — and therefore the result bits — never depends on the
		// worker count.
		k := 0
		for ; k+1 < wd; k += 2 {
			colA := Pd[k*hd : (k+1)*hd]
			colB := Pd[(k+1)*hd : (k+2)*hd]
			for j := 0; j < wC; j++ {
				fa, fb := colA[lo+j], colB[lo+j]
				if fa == 0 && fb == 0 {
					continue
				}
				dst := C[j*hC:]
				for i := j; i < hC; i++ {
					dst[i] += fa*colA[lo+i] + fb*colB[lo+i]
				}
			}
		}
		for ; k < wd; k++ {
			colD := Pd[k*hd : (k+1)*hd]
			for j := 0; j < wC; j++ {
				f := colD[lo+j]
				if f == 0 {
					continue
				}
				dst := C[j*hC:]
				for i := j; i < hC; i++ {
					dst[i] += f * colD[lo+i]
				}
			}
		}
		for j := 0; j < wC; j++ {
			dst := P[(rd[lo+j]-c0)*h:]
			cj := C[j*hC:]
			for i := j; i < hC; i++ {
				dst[sc.relmap[rd[lo+i]]] -= cj[i]
			}
		}
	}

	// Dense right-looking factorization of the trapezoid.
	for j := 0; j < w; j++ {
		col := P[j*h : (j+1)*h]
		d := col[j]
		adiag := sc.adiag[j]
		k := c0 + j
		if inject.Enabled {
			d = inject.PoisonValue(inject.CholPoison, k, d)
			if inject.ShouldFail(inject.CholPivot, k) {
				return fmt.Errorf("%w: injected pivot failure at elimination %d", ErrNotPositiveDefinite, k)
			}
		}
		if d <= 0 || d <= 1e-13*adiag || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d = %g (diagonal was %g)", ErrNotPositiveDefinite, k, d, adiag)
		}
		ljj := math.Sqrt(d)
		col[j] = ljj
		for i := j + 1; i < h; i++ {
			col[i] /= ljj
		}
		for c := j + 1; c < w; c++ {
			f := col[c]
			if f == 0 {
				continue
			}
			dst := P[c*h : (c+1)*h]
			for i := c; i < h; i++ {
				dst[i] -= f * col[i]
			}
		}
	}
	return nil
}

// lsolve solves L x = b in place against the supernodal factor, one
// panel at a time: a dense forward substitution on the diagonal block
// fused with the below-block update.
func (sf *superFactor) lsolve(x []float64) {
	ss := sf.ss
	for s := 0; s < ss.sn.NSuper(); s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for j := 0; j < w; j++ {
			col := P[j*h : (j+1)*h]
			xj := x[c0+j] / col[j]
			x[c0+j] = xj
			if xj == 0 {
				continue
			}
			for i := j + 1; i < h; i++ {
				x[rows[i]] -= col[i] * xj
			}
		}
	}
}

// ltsolve solves Lᵀ x = b in place: per column, a dense dot product
// against the panel suffix, panels in descending order.
func (sf *superFactor) ltsolve(x []float64) {
	ss := sf.ss
	for s := ss.sn.NSuper() - 1; s >= 0; s-- {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for j := w - 1; j >= 0; j-- {
			col := P[j*h : (j+1)*h]
			sum := x[c0+j]
			for i := j + 1; i < h; i++ {
				sum -= col[i] * x[rows[i]]
			}
			x[c0+j] = sum / col[j]
		}
	}
}

// solveMultiChunk is the hand-out granularity of the blocked multi-RHS
// solves: one atomic claim per batch of right-hand-side columns, and
// each factor panel streams through the cache once per batch instead of
// once per column — the BLAS-3 effect of the blocked solve.
const solveMultiChunk = 8

// SolveMulti solves A X = B in place for nrhs right-hand sides stored
// column-major in rhs (column c occupies rhs[c*n:(c+1)*n]). Each column
// runs exactly the arithmetic of Solve on that column — parallelism is
// only across columns — so the result is bit-identical to nrhs
// sequential Solve calls at every GOMAXPROCS.
func (f *Factor) SolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
		if f.super != nil {
			f.super.lsolveRange(rhs, n, lo, hi)
			f.super.ltsolveRange(rhs, n, lo, hi)
			return
		}
		for c := lo; c < hi; c++ {
			f.Solve(rhs[c*n : (c+1)*n])
		}
	})
}

// LSolveMulti solves L Y = B in place for nrhs column-major right-hand
// sides (see SolveMulti for the layout and determinism contract).
func (f *Factor) LSolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
		if f.super != nil {
			f.super.lsolveRange(rhs, n, lo, hi)
			return
		}
		for c := lo; c < hi; c++ {
			f.LSolve(rhs[c*n : (c+1)*n])
		}
	})
}

// LTSolveMulti solves Lᵀ Y = B in place for nrhs column-major
// right-hand sides (see SolveMulti).
func (f *Factor) LTSolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
		if f.super != nil {
			f.super.ltsolveRange(rhs, n, lo, hi)
			return
		}
		for c := lo; c < hi; c++ {
			f.LTSolve(rhs[c*n : (c+1)*n])
		}
	})
}

func checkMulti(have, n, nrhs int) {
	if nrhs < 0 || have != n*nrhs {
		panic(fmt.Sprintf("chol: multi-RHS block length %d, want %d columns of %d", have, nrhs, n))
	}
}

// lsolveRange runs the forward solve for RHS columns [lo, hi), panel by
// panel on the outside so each panel is loaded once per batch.
func (sf *superFactor) lsolveRange(rhs []float64, n, lo, hi int) {
	ss := sf.ss
	for s := 0; s < ss.sn.NSuper(); s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			for j := 0; j < w; j++ {
				col := P[j*h : (j+1)*h]
				xj := x[c0+j] / col[j]
				x[c0+j] = xj
				if xj == 0 {
					continue
				}
				for i := j + 1; i < h; i++ {
					x[rows[i]] -= col[i] * xj
				}
			}
		}
	}
}

// ltsolveRange runs the backward solve for RHS columns [lo, hi).
func (sf *superFactor) ltsolveRange(rhs []float64, n, lo, hi int) {
	ss := sf.ss
	for s := ss.sn.NSuper() - 1; s >= 0; s-- {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			for j := w - 1; j >= 0; j-- {
				col := P[j*h : (j+1)*h]
				sum := x[c0+j]
				for i := j + 1; i < h; i++ {
					sum -= col[i] * x[rows[i]]
				}
				x[c0+j] = sum / col[j]
			}
		}
	}
}

// superComplexFactor is the supernodal complex LDLᵀ: unit-lower panels
// (diagonal slots hold 1) plus the diagonal D, sharing the real
// structure's SuperSymbolic across all frequency points of a sweep.
type superComplexFactor struct {
	ss  *SuperSymbolic
	val []complex128
	d   []complex128
}

func (sf *superComplexFactor) panel(s int) []complex128 {
	return sf.val[sf.ss.off[s]:sf.ss.off[s+1]]
}

// FactorizeComplex runs the supernodal LDLᵀ of the complex symmetric
// matrix with the given pattern (the one this SuperSymbolic was
// analyzed for) and entry values supplied per stored pattern position,
// as in the package-level FactorizeComplex.
func (ss *SuperSymbolic) FactorizeComplex(pattern *sparse.CSR, val func(p int) complex128) (*ComplexFactor, error) {
	n := ss.sym.N
	if pattern.Rows != n || pattern.Cols != n {
		return nil, fmt.Errorf("chol: supernodal complex dimension mismatch")
	}
	sf := &superComplexFactor{
		ss:  ss,
		val: make([]complex128, ss.off[ss.sn.NSuper()]),
		d:   make([]complex128, n),
	}
	errs := make([]error, ss.sn.NSuper())
	workers := ss.maxLevelWorkers()
	scratch := make([]*superScratch, workers)
	for _, lvl := range ss.levels {
		par.Do(workers, len(lvl), func(w, i int) {
			if scratch[w] == nil {
				scratch[w] = ss.newScratch(true)
			}
			s := lvl[i]
			errs[s] = sf.factorPanel(pattern, val, s, scratch[w])
		})
		for _, s := range lvl {
			if errs[s] != nil {
				return nil, errs[s]
			}
		}
	}
	return &ComplexFactor{super: sf}, nil
}

func (sf *superComplexFactor) factorPanel(pattern *sparse.CSR, val func(p int) complex128, s int, sc *superScratch) error {
	ss := sf.ss
	c0, w := ss.sn.Super[s], ss.sn.Width(s)
	rows := ss.rows[s]
	h := len(rows)
	P := sf.panel(s)
	for i, r := range rows {
		sc.relmap[r] = i
	}
	defer func() {
		for _, r := range rows {
			sc.relmap[r] = -1
		}
	}()

	for j := 0; j < w; j++ {
		c := c0 + j
		col := P[j*h : (j+1)*h]
		for p := pattern.RowPtr[c]; p < pattern.RowPtr[c+1]; p++ {
			cc := pattern.Col[p]
			if cc < c {
				continue
			}
			col[sc.relmap[cc]] = val(p)
		}
	}

	// Update with descendants: C = Ld[lo:, :]·Dd·Ld[lo:mid, :]ᵀ (lower
	// part), subtracted through the relative map.
	for _, dsn := range ss.updaters[s] {
		rd := ss.rows[dsn]
		hd := len(rd)
		wd := ss.sn.Width(dsn)
		Pd := sf.panel(dsn)
		d0 := ss.sn.Super[dsn]
		lo := sort.SearchInts(rd, c0)
		mid := sort.SearchInts(rd, c0+w)
		hC := hd - lo
		wC := mid - lo
		C := sc.cupd[:hC*wC]
		for i := range C {
			C[i] = 0
		}
		// Same two-column unroll as the real kernel: fixed pairing by k
		// keeps the summation order (and result bits) worker-independent.
		k := 0
		for ; k+1 < wd; k += 2 {
			colA := Pd[k*hd : (k+1)*hd]
			colB := Pd[(k+1)*hd : (k+2)*hd]
			da, db := sf.d[d0+k], sf.d[d0+k+1]
			for j := 0; j < wC; j++ {
				fa := colA[lo+j] * da
				fb := colB[lo+j] * db
				if fa == 0 && fb == 0 {
					continue
				}
				dst := C[j*hC:]
				for i := j; i < hC; i++ {
					dst[i] += fa*colA[lo+i] + fb*colB[lo+i]
				}
			}
		}
		for ; k < wd; k++ {
			colD := Pd[k*hd : (k+1)*hd]
			dk := sf.d[d0+k]
			for j := 0; j < wC; j++ {
				f := colD[lo+j] * dk
				if f == 0 {
					continue
				}
				dst := C[j*hC:]
				for i := j; i < hC; i++ {
					dst[i] += f * colD[lo+i]
				}
			}
		}
		for j := 0; j < wC; j++ {
			dst := P[(rd[lo+j]-c0)*h:]
			cj := C[j*hC:]
			for i := j; i < hC; i++ {
				dst[sc.relmap[rd[lo+i]]] -= cj[i]
			}
		}
	}

	// Dense right-looking LDLᵀ of the trapezoid: pivot, normalize the
	// column (unit diagonal), rank-1 update of the remaining columns.
	for j := 0; j < w; j++ {
		col := P[j*h : (j+1)*h]
		d := col[j]
		k := c0 + j
		if inject.Enabled && inject.ShouldFail(inject.CholComplexPivot, k) {
			return fmt.Errorf("chol: injected zero pivot %d in complex LDLᵀ", k)
		}
		if cmplx.Abs(d) == 0 || cmplx.IsNaN(d) {
			return fmt.Errorf("chol: zero pivot %d in complex LDLᵀ", k)
		}
		sf.d[k] = d
		col[j] = 1
		for i := j + 1; i < h; i++ {
			col[i] /= d
		}
		for c := j + 1; c < w; c++ {
			f := col[c] * d
			if f == 0 {
				continue
			}
			dst := P[c*h : (c+1)*h]
			for i := c; i < h; i++ {
				dst[i] -= f * col[i]
			}
		}
	}
	return nil
}

// solve runs the supernodal L D Lᵀ solve in place, mirroring the
// simplicial phase order: full forward substitution, then the diagonal,
// then full backward substitution.
func (sf *superComplexFactor) solve(x []complex128) {
	ss := sf.ss
	ns := ss.sn.NSuper()
	for s := 0; s < ns; s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for j := 0; j < w; j++ {
			zj := x[c0+j]
			if zj == 0 {
				continue
			}
			col := P[j*h : (j+1)*h]
			for i := j + 1; i < h; i++ {
				x[rows[i]] -= col[i] * zj
			}
		}
	}
	for j := range x {
		x[j] /= sf.d[j]
	}
	for s := ns - 1; s >= 0; s-- {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		for j := w - 1; j >= 0; j-- {
			col := P[j*h : (j+1)*h]
			sum := x[c0+j]
			for i := j + 1; i < h; i++ {
				sum -= col[i] * x[rows[i]]
			}
			x[c0+j] = sum
		}
	}
}

// SolveMulti solves A X = B in place for nrhs column-major right-hand
// sides. Per column the arithmetic is exactly Solve's, so the block
// solve is bit-identical to nrhs sequential Solve calls; columns run in
// parallel chunks and each panel streams once per chunk.
func (f *ComplexFactor) SolveMulti(rhs []complex128, nrhs int) error {
	n := f.order()
	if nrhs < 0 || len(rhs) != n*nrhs {
		return fmt.Errorf("chol: complex multi-RHS block length %d, want %d columns of %d", len(rhs), nrhs, n)
	}
	errs := make([]error, nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			errs[c] = f.Solve(rhs[c*n : (c+1)*n])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
