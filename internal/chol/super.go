// Supernodal blocked Cholesky: the BLAS-3 variant of the factorization
// kernels. The columns of L are partitioned into supernodes (contiguous
// panels whose structures nest, found by order.FindSupernodes with
// relaxed amalgamation); each panel is stored as one dense column-major
// trapezoid and factored by a dense right-looking kernel, and the
// sparse update of a panel by its descendants becomes a dense rank-k
// product routed through precomputed relative row maps. The dense inner
// loops — the rank-k trapezoid update, the below-block triangular
// solve, and the panel halves of the forward/backward substitutions —
// live in internal/dense as explicit unrolled micro-kernels; this file
// owns the sparse bookkeeping around them.
//
// Everything that depends only on the pattern is computed once in
// AnalyzeSuper and shared by every numeric factorization: the row
// lists, the update edges (which rows of a descendant land where in
// each ancestor, with the common contiguous case stored as a single
// base offset instead of an index list), and the scatter positions of
// the matrix entries into the panels. A complex LDLᵀ frequency sweep
// re-factorizing the same pattern per point therefore pays no symbolic
// work per point — no binary searches, no relative-map rebuilds.
//
// The arithmetic per entry is a fixed-order sum — updaters ascending,
// columns ascending within a panel, the micro-kernels' quad-then-tail
// k order — so the result is deterministic: bit-identical across runs
// and at every GOMAXPROCS. Parallelism is across panels via a
// dependency-counting task DAG (each panel fires the moment its last
// updater completes; see DESIGN.md §10), with the legacy
// level-by-level schedule kept behind ScheduleLevel for comparison,
// and across right-hand sides in the blocked solves. Determinism
// survives the out-of-order panel completion because each panel writes
// only its own packed region in a fixed order and reads updater panels
// only after they are final.
package chol

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/resilience/inject"
	"repro/internal/sparse"
)

// SupernodalMinOrder is the matrix order at and above which Factorize
// selects the supernodal blocked kernel; below it the scalar up-looking
// kernel wins (panel bookkeeping costs more than it saves) and keeps
// the historical bit-exact outputs for the small golden tests. Tests
// lower it to force the blocked path onto small matrices.
var SupernodalMinOrder = 512

// Strategy selects a factorization kernel explicitly, mainly for
// benchmarks and cross-check tests; production callers use Factorize,
// which picks by size.
type Strategy int

const (
	// StrategyAuto picks the supernodal kernel for orders at or above
	// SupernodalMinOrder and the up-looking kernel below it.
	StrategyAuto Strategy = iota
	// StrategyUpLooking forces the scalar up-looking kernel.
	StrategyUpLooking
	// StrategySupernodal forces the supernodal blocked kernel.
	StrategySupernodal
)

// Schedule selects how the supernodal numeric factorization
// parallelizes across panels. Both schedules run identical per-panel
// arithmetic in identical order, so the packed factor is bit-identical
// between them (and to a serial run) at every GOMAXPROCS; they differ
// only in when a ready panel starts.
type Schedule int

const (
	// ScheduleDAG (the default) fires each panel the moment its last
	// updater descendant completes, via the dependency-counting ready
	// queue of par.RunDAG. No level barriers: workers stay busy as long
	// as any panel is ready.
	ScheduleDAG Schedule = iota
	// ScheduleLevel is the legacy elimination-tree level schedule: the
	// panels of one level factor in parallel, with a barrier between
	// levels. Kept for A/B benchmarking (pactbench -benchset scale) and
	// as a determinism cross-check.
	ScheduleLevel
)

// updEdge is one precomputed descendant→ancestor update route: rows
// [lo, mid) of descendant d's row list fall inside the ancestor's
// column range (these drive the update's wC columns), rows [lo, hd)
// feed its hC rows, and the target panel-local row of descendant row
// lo+i is rel[i] — or base+i when the mapping is contiguous, the
// common case in mesh factors, stored without any index list at all.
type updEdge struct {
	d       int32
	lo, mid int32
	base    int32
	rel     []int32
}

// SuperSymbolic is the supernodal extension of a symbolic analysis: the
// supernode partition plus, per supernode, its full row list, the
// precomputed update edges from its descendants, the scatter positions
// of the analyzed pattern's entries into its panel, and a level
// schedule of the supernodal elimination tree. It depends only on the
// pattern, so one SuperSymbolic is shared by every numeric
// factorization of that pattern — the real Cholesky, each refactorize
// of a recovery ladder, and every frequency point of a complex LDLᵀ
// sweep.
type SuperSymbolic struct {
	sym *order.Symbolic
	sn  *order.Supernodes
	// rows[s] lists the global row indices of supernode s's trapezoid in
	// ascending order; the first Width(s) entries are the panel's own
	// columns, the rest the below-diagonal structure of its last column.
	rows [][]int
	// off[s] is the offset of panel s in the packed value storage; panel
	// s occupies off[s+1]-off[s] = len(rows[s])*Width(s) entries,
	// column-major (local column j starts at off[s]+j*len(rows[s])).
	off []int
	// updaters[s] lists, ascending by descendant, the precomputed update
	// edges of the supernodes d < s whose below rows intersect s's
	// column range: exactly the dense rank-k products subtracted from
	// panel s, with their row routing resolved at analysis time.
	updaters [][]updEdge
	// scat[s] holds (position, slot) pairs routing the analyzed
	// pattern's lower-triangle entries of s's columns into the panel:
	// panel[slot] = val(position). Flattened as pos0, slot0, pos1, ….
	scat [][]int32
	// levels groups supernodes by height in the supernodal elimination
	// tree. Every updater of s sits at a strictly lower level, so the
	// panels within one level are independent and run in parallel. The
	// level schedule is the legacy ScheduleLevel path; the default
	// schedule runs on dag instead.
	levels [][]int
	// dag is the panel-precedence DAG: supernode s depends on exactly
	// its updater descendants (which include its supernodal-etree
	// children — a child's first below row is its parent column), so a
	// panel may fire the moment its last updater completes instead of
	// barriering on a whole level.
	dag *par.DAG
	// trapNNZ counts the trapezoid entries (the "logical" factor
	// nonzeros, structural plus amalgamation zeros); maxRows/maxWidth
	// bound the per-worker dense scratch; edgeInts counts the int32
	// storage of the rel and scat lists for the memory accounting.
	trapNNZ           int
	maxRows, maxWidth int
	edgeInts          int
	flops             float64
}

// AnalyzeSuper builds the supernodal symbolic structure for the given
// full symmetric pattern and its symbolic analysis. Pass a zero
// SupernodeOptions for the default panel width and relaxed-amalgamation
// budget. Numeric factorizations against the returned structure must
// present a matrix with exactly this pattern (the scatter routes are
// resolved here, once, not per factorization).
func AnalyzeSuper(a *sparse.CSR, sym *order.Symbolic, opt order.SupernodeOptions) (*SuperSymbolic, error) {
	n := a.Rows
	if a.Cols != n || sym.N != n {
		return nil, fmt.Errorf("chol: supernodal dimension mismatch (matrix %dx%d, symbolic %d)", a.Rows, a.Cols, sym.N)
	}
	sn := sym.FindSupernodes(opt)
	ns := sn.NSuper()
	ss := &SuperSymbolic{sym: sym, sn: sn}

	// Below-diagonal rows per supernode: k belongs to below(s) exactly
	// when the last column of s appears in the elimination reach of row
	// k, i.e. L[k, last(s)] is structurally nonzero. One EReach sweep
	// over all rows (ascending k, so each list comes out sorted) gives
	// every list.
	isLast := make([]bool, n)
	for s := 1; s <= ns; s++ {
		isLast[sn.Super[s]-1] = true
	}
	upper := a.UpperCSC()
	below := make([][]int, ns)
	stack := make([]int, n)
	work := make([]int, n)
	for i := range work {
		work[i] = -1
	}
	for k := 0; k < n; k++ {
		top := order.EReach(upper, k, sym.Parent, stack, work)
		for t := top; t < n; t++ {
			if j := stack[t]; isLast[j] {
				d := sn.ColToSuper[j]
				below[d] = append(below[d], k)
			}
		}
	}

	ss.rows = make([][]int, ns)
	ss.off = make([]int, ns+1)
	for s := 0; s < ns; s++ {
		c0, w := sn.Super[s], sn.Width(s)
		rows := make([]int, w+len(below[s]))
		for j := 0; j < w; j++ {
			rows[j] = c0 + j
		}
		copy(rows[w:], below[s])
		ss.rows[s] = rows
		h := len(rows)
		ss.off[s+1] = ss.off[s] + h*w
		ss.trapNNZ += h*w - w*(w-1)/2
		if h > ss.maxRows {
			ss.maxRows = h
		}
		if w > ss.maxWidth {
			ss.maxWidth = w
		}
		for j := 0; j < w; j++ {
			hj := float64(h - j)
			ss.flops += 2 * hj * hj
		}
	}

	// updlist[s]: descendants whose below rows land in s's columns.
	// Below lists are ascending, so consecutive rows of one target
	// supernode dedupe with a single "previous" check, and scanning d
	// ascending keeps each updater list ascending.
	updlist := make([][]int32, ns)
	for d := 0; d < ns; d++ {
		w := sn.Width(d)
		prev := -1
		for _, r := range ss.rows[d][w:] {
			if t := sn.ColToSuper[r]; t != prev {
				updlist[t] = append(updlist[t], int32(d))
				prev = t
			}
		}
	}

	// Resolve the update routing and matrix scatter once. relmap maps
	// global rows to panel-local indices of the current target; edges
	// whose target rows come out consecutive (the bulk, in mesh
	// factors) collapse to a base offset with no index list.
	relmap := make([]int32, n)
	for i := range relmap {
		relmap[i] = -1
	}
	ss.updaters = make([][]updEdge, ns)
	ss.scat = make([][]int32, ns)
	for s := 0; s < ns; s++ {
		c0, w := sn.Super[s], sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		for i, r := range rows {
			relmap[r] = int32(i)
		}
		edges := make([]updEdge, len(updlist[s]))
		for ei, d32 := range updlist[s] {
			rd := ss.rows[d32]
			lo := sort.SearchInts(rd, c0)
			mid := sort.SearchInts(rd, c0+w)
			nr := len(rd) - lo
			e := updEdge{d: d32, lo: int32(lo), mid: int32(mid), base: relmap[rd[lo]]}
			for i := 1; i < nr; i++ {
				if relmap[rd[lo+i]] != e.base+int32(i) {
					rel := make([]int32, nr)
					for q := 0; q < nr; q++ {
						rel[q] = relmap[rd[lo+q]]
					}
					e.rel = rel
					ss.edgeInts += nr
					break
				}
			}
			edges[ei] = e
		}
		ss.updaters[s] = edges
		var sc []int32
		for j := 0; j < w; j++ {
			c := c0 + j
			for p := a.RowPtr[c]; p < a.RowPtr[c+1]; p++ {
				if cc := a.Col[p]; cc >= c {
					sc = append(sc, int32(p), int32(j*h)+relmap[cc])
				}
			}
		}
		ss.scat[s] = sc
		ss.edgeInts += len(sc)
		for _, r := range rows {
			relmap[r] = -1
		}
	}

	// Level schedule by height in the supernodal etree. Children always
	// have smaller indices than their parent (the parent column of a
	// supernode's last column lies beyond it), so one ascending pass
	// computes heights.
	level := make([]int, ns)
	maxLevel := -1
	for s := 0; s < ns; s++ {
		last := sn.Super[s+1] - 1
		if p := sym.Parent[last]; p >= 0 {
			ps := sn.ColToSuper[p]
			if level[ps] < level[s]+1 {
				level[ps] = level[s] + 1
			}
		}
		if level[s] > maxLevel {
			maxLevel = level[s]
		}
	}
	ss.levels = make([][]int, maxLevel+1)
	for s := 0; s < ns; s++ {
		ss.levels[level[s]] = append(ss.levels[level[s]], s)
	}

	// Panel-precedence DAG from the updater lists: panel s reads exactly
	// the panels of its updater descendants (and, for LDLᵀ, their
	// diagonal segments, written by the same tasks), so those are its
	// complete dependency set. updlist entries are distinct and d < s
	// always, so the graph is acyclic by construction.
	ss.dag = par.NewDAG(updlist)
	return ss, nil
}

// NSuper returns the number of supernodes.
func (ss *SuperSymbolic) NSuper() int { return ss.sn.NSuper() }

// Fill returns the count of explicitly stored zeros introduced by
// relaxed amalgamation.
func (ss *SuperSymbolic) Fill() int { return ss.sn.Fill }

// FlopEstimate returns the approximate floating-point operation count
// of one numeric factorization (2·Σⱼ hⱼ² over the stored column heights
// hⱼ, counting multiplies and adds separately).
func (ss *SuperSymbolic) FlopEstimate() float64 { return ss.flops }

// TrapNNZ returns the packed trapezoid storage of the factor in entries,
// including the explicit zeros of relaxed amalgamation — the entry count
// one triangular solve streams through.
func (ss *SuperSymbolic) TrapNNZ() int { return ss.trapNNZ }

// superFactor is the numeric supernodal factor: the packed column-major
// panels, interpreted through the shared symbolic structure. For the
// real Cholesky the panels hold L with its diagonal; for the complex
// LDLᵀ they hold unit-diagonal L with the diagonal in a separate slice.
type superFactor struct {
	ss  *SuperSymbolic
	val []float64
	// ws is the workspace this factor was produced through (nil for an
	// owning factor): its solve buffers are reused by the multi-RHS
	// solves, which therefore must not run concurrently.
	ws *FactorWorkspace
	// scratchBytes is the transient memory of the numeric run (dense
	// update scratch, DAG run state, solve buffers), reported by Bytes.
	scratchBytes int64
}

func (sf *superFactor) panel(s int) []float64 {
	return sf.val[sf.ss.off[s]:sf.ss.off[s+1]]
}

// superScratch is the worker-owned scratch of the numeric
// factorization: the dense update block and the original diagonals for
// the pivot check. (The row routing that used to need a length-n
// relative map per worker is precomputed in the SuperSymbolic now.)
type superScratch struct {
	upd   []float64
	cupd  []complex128
	adiag []float64
}

func (ss *SuperSymbolic) newScratch(complexUpd bool) *superScratch {
	sc := &superScratch{adiag: make([]float64, ss.maxWidth)}
	if complexUpd {
		sc.cupd = make([]complex128, ss.maxRows*ss.maxWidth)
	} else {
		sc.upd = make([]float64, ss.maxRows*ss.maxWidth)
	}
	return sc
}

// Factorize runs the numeric supernodal Cholesky A = LLᵀ against this
// symbolic structure; a must carry exactly the analyzed pattern. Panels
// factor in parallel on the dependency DAG; all arithmetic per panel is
// serial in fixed order, so the factor is bit-identical at every
// GOMAXPROCS and under either schedule.
func (ss *SuperSymbolic) Factorize(a *sparse.CSR) (*Factor, error) {
	return ss.FactorizeOpt(a, ScheduleDAG, nil)
}

// FactorizeOpt is Factorize with an explicit panel schedule and an
// optional workspace. A nil workspace allocates fresh storage (the
// returned factor owns it); a non-nil workspace makes the factorization
// allocation-free in steady state, and the returned factor aliases the
// workspace — valid only until the next factorization through it (see
// FactorWorkspace).
func (ss *SuperSymbolic) FactorizeOpt(a *sparse.CSR, sched Schedule, ws *FactorWorkspace) (*Factor, error) {
	n := ss.sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("chol: supernodal factorize dimension mismatch (matrix %dx%d, symbolic %d)", a.Rows, a.Cols, n)
	}
	ns := ss.sn.NSuper()
	workers := ss.maxLevelWorkers()
	sf := &superFactor{ss: ss, ws: ws}
	var errs []error
	var scratch []*superScratch
	if ws != nil {
		sf.val = ws.realPanels()
		errs = ws.errSlots()
		scratch = ws.workerScratch(workers, false)
	} else {
		sf.val = make([]float64, ss.off[ns])
		errs = make([]error, ns)
		scratch = make([]*superScratch, workers)
	}
	body := func(w, s int) {
		if scratch[w] == nil {
			scratch[w] = ss.newScratch(false)
		}
		if inject.Enabled && inject.ShouldFail(inject.CholDAGTask, s) {
			errs[s] = fmt.Errorf("chol: injected task failure at supernode %d", s)
			return
		}
		errs[s] = sf.factorPanel(a, s, scratch[w])
	}
	if err := ss.runSchedule(sched, ws, workers, errs, body); err != nil {
		return nil, err
	}
	sf.scratchBytes = ss.runBytes(scratch, sched, 8)
	return &Factor{super: sf}, nil
}

// runSchedule executes the panel body under the chosen schedule and
// returns the lowest-indexed panel error, if any. The DAG schedule has
// no early exit — every panel runs even after a failure, which keeps
// the set of executed tasks (and so the reported error) deterministic
// under every interleaving; a failed panel's partial values are
// themselves deterministic, so its dependents compute deterministic
// (discarded) results. The level schedule keeps its historical
// stop-after-failing-level behavior.
func (ss *SuperSymbolic) runSchedule(sched Schedule, ws *FactorWorkspace, workers int, errs []error, body func(w, s int)) error {
	if sched == ScheduleLevel {
		for _, lvl := range ss.levels {
			lvl := lvl
			par.Do(workers, len(lvl), func(w, i int) { body(w, lvl[i]) })
			for _, s := range lvl {
				if errs[s] != nil {
					return errs[s]
				}
			}
		}
		return nil
	}
	if ws != nil {
		par.RunDAGScratch(workers, ss.dag, ws.dagScratch(), body)
	} else {
		par.RunDAG(workers, ss.dag, body)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runBytes totals the factorization scratch actually allocated by one
// numeric run plus the peak per-worker solve buffers the factor's
// multi-RHS solves will lazily create, for the Bytes memory accounting
// (elemSize 8 for real, 16 for complex solves).
func (ss *SuperSymbolic) runBytes(scratch []*superScratch, sched Schedule, elemSize int) int64 {
	var b int64
	for _, sc := range scratch {
		b += sc.bytes()
	}
	if sched == ScheduleDAG {
		b += int64(ss.dag.Len()) * 8 // counts + ready queue
	}
	b += int64(ss.sn.NSuper()) * 16 // error slots
	b += int64(par.Workers(ss.sn.NSuper())) * int64(ss.maxRows) * int64(elemSize)
	return b
}

func (ss *SuperSymbolic) maxLevelWorkers() int {
	widest := 1
	for _, lvl := range ss.levels {
		if len(lvl) > widest {
			widest = len(lvl)
		}
	}
	return par.Workers(widest)
}

// scatterSub subtracts the lower trapezoid of the update block C
// (hC×wC column-major) from panel P (leading dimension h) through the
// routing of edge e: C's column j lands in panel column base+j (or
// rel[j]), C's row i in panel row base+i (or rel[i]).
func scatterSub(P []float64, h int, C []float64, hC, wC int, e *updEdge) {
	if e.rel == nil {
		base := int(e.base)
		for j := 0; j < wC; j++ {
			dst := P[(base+j)*h+base:]
			cj := C[j*hC:]
			for i := j; i < hC; i++ {
				dst[i] -= cj[i]
			}
		}
		return
	}
	rel := e.rel
	for j := 0; j < wC; j++ {
		dst := P[int(rel[j])*h:]
		cj := C[j*hC:]
		for i := j; i < hC; i++ {
			dst[rel[i]] -= cj[i]
		}
	}
}

// cscatterSub is scatterSub for the complex panels.
func cscatterSub(P []complex128, h int, C []complex128, hC, wC int, e *updEdge) {
	if e.rel == nil {
		base := int(e.base)
		for j := 0; j < wC; j++ {
			dst := P[(base+j)*h+base:]
			cj := C[j*hC:]
			for i := j; i < hC; i++ {
				dst[i] -= cj[i]
			}
		}
		return
	}
	rel := e.rel
	for j := 0; j < wC; j++ {
		dst := P[int(rel[j])*h:]
		cj := C[j*hC:]
		for i := j; i < hC; i++ {
			dst[rel[i]] -= cj[i]
		}
	}
}

// factorPanel assembles and factors one supernode: scatter A's lower
// triangle through the precomputed routes, subtract the dense rank-k
// products of the updating descendants (ascending), then factor the
// trapezoid — the w×w diagonal block right-looking with the pivot
// checks and fault-injection sites of the up-looking kernel (same
// global column order), the below block by the dense trsm micro-kernel.
func (sf *superFactor) factorPanel(a *sparse.CSR, s int, sc *superScratch) error {
	ss := sf.ss
	c0, w := ss.sn.Super[s], ss.sn.Width(s)
	h := len(ss.rows[s])
	P := sf.panel(s)

	scat := ss.scat[s]
	for q := 0; q < len(scat); q += 2 {
		P[scat[q+1]] = a.Val[scat[q]]
	}
	for j := 0; j < w; j++ {
		sc.adiag[j] = P[j*h+j]
	}

	// Left-looking update: for each descendant edge, form the dense
	// product C = Ld[lo:, :]·Ld[lo:mid, :]ᵀ (lower trapezoid only) in
	// scratch and subtract it through the precomputed routing.
	for ei := range ss.updaters[s] {
		e := &ss.updaters[s][ei]
		hd := len(ss.rows[e.d])
		wd := ss.sn.Width(int(e.d))
		lo := int(e.lo)
		hC := hd - lo
		wC := int(e.mid) - lo
		C := sc.upd[:hC*wC]
		clear(C)
		dense.RankKTrapAccum(C, hC, wC, sf.panel(int(e.d)), hd, lo, wd)
		scatterSub(P, h, C, hC, wC, e)
	}

	// Right-looking factorization of the w×w diagonal block; pivot
	// checks and injection sites fire in global column order exactly as
	// in the up-looking kernel.
	for j := 0; j < w; j++ {
		col := P[j*h : j*h+w]
		d := col[j]
		adiag := sc.adiag[j]
		k := c0 + j
		if inject.Enabled {
			d = inject.PoisonValue(inject.CholPoison, k, d)
			if inject.ShouldFail(inject.CholPivot, k) {
				return fmt.Errorf("%w: injected pivot failure at elimination %d", ErrNotPositiveDefinite, k)
			}
		}
		if d <= 0 || d <= 1e-13*adiag || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d = %g (diagonal was %g)", ErrNotPositiveDefinite, k, d, adiag)
		}
		ljj := math.Sqrt(d)
		col[j] = ljj
		for i := j + 1; i < w; i++ {
			col[i] /= ljj
		}
		for c := j + 1; c < w; c++ {
			f := col[c]
			if f == 0 {
				continue
			}
			dst := P[c*h : c*h+w]
			for i := c; i < w; i++ {
				dst[i] -= f * col[i]
			}
		}
	}
	dense.TrsmLLBelow(P, h, w)
	return nil
}

// lsolveRange runs the forward solve for RHS columns [lo, hi), panel by
// panel on the outside so each panel is loaded once per batch. Per
// panel and column: a dense trsv on the contiguous in-block segment,
// then the below-block product accumulated densely in buf (len ≥
// maxRows) and scattered through the row list.
func (sf *superFactor) lsolveRange(rhs []float64, n, lo, hi int, buf []float64) {
	ss := sf.ss
	for s := 0; s < ss.sn.NSuper(); s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		hb := h - w
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			xseg := x[c0 : c0+w]
			dense.TrsvLowerNonUnit(xseg, P, h, w)
			if hb > 0 {
				yb := buf[:hb]
				clear(yb)
				dense.GemvBelowAccum(yb, P, h, w, xseg)
				for i, r := range rows[w:] {
					x[r] -= yb[i]
				}
			}
		}
	}
}

// ltsolveRange runs the backward solve for RHS columns [lo, hi): per
// panel and column, gather the below entries into buf, subtract the
// transposed below-block product from the in-block segment, then the
// dense transposed trsv.
func (sf *superFactor) ltsolveRange(rhs []float64, n, lo, hi int, buf []float64) {
	ss := sf.ss
	for s := ss.sn.NSuper() - 1; s >= 0; s-- {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		hb := h - w
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			xseg := x[c0 : c0+w]
			if hb > 0 {
				yb := buf[:hb]
				for i, r := range rows[w:] {
					yb[i] = x[r]
				}
				dense.GemvBelowTransSub(xseg, P, h, w, yb)
			}
			dense.TrsvLowerTransNonUnit(xseg, P, h, w)
		}
	}
}

// lsolve solves L x = b in place against the supernodal factor.
func (sf *superFactor) lsolve(x []float64) {
	sf.lsolveRange(x, len(x), 0, 1, make([]float64, sf.ss.maxRows))
}

// ltsolve solves Lᵀ x = b in place.
func (sf *superFactor) ltsolve(x []float64) {
	sf.ltsolveRange(x, len(x), 0, 1, make([]float64, sf.ss.maxRows))
}

// solveMultiChunk is the hand-out granularity of the blocked multi-RHS
// solves: one atomic claim per batch of right-hand-side columns, and
// each factor panel streams through the cache once per batch instead of
// once per column — the BLAS-3 effect of the blocked solve.
const solveMultiChunk = 8

// solveBufs allocates the slots for the per-worker solve scratch of a
// chunked multi-RHS run; the buffers themselves are created lazily by
// the worker that needs them.
func solveBufs[T float64 | complex128](nrhs int) [][]T {
	return make([][]T, par.Workers(par.Chunks(nrhs, solveMultiChunk)))
}

// solveScratch returns the per-worker solve-buffer slots for a
// multi-RHS run: pooled in the workspace for a workspace-backed factor
// (allocation-free in steady state, not concurrency-safe), fresh
// otherwise.
func (sf *superFactor) solveScratch(nrhs int) [][]float64 {
	if sf.ws != nil {
		return sf.ws.realSolveBufs(par.Workers(par.Chunks(nrhs, solveMultiChunk)))
	}
	return solveBufs[float64](nrhs)
}

// solveScratch is superFactor.solveScratch for the complex factor.
func (sf *superComplexFactor) solveScratch(nrhs int) [][]complex128 {
	if sf.ws != nil {
		return sf.ws.complexSolveBufs(par.Workers(par.Chunks(nrhs, solveMultiChunk)))
	}
	return solveBufs[complex128](nrhs)
}

// SolveMulti solves A X = B in place for nrhs right-hand sides stored
// column-major in rhs (column c occupies rhs[c*n:(c+1)*n]). Each column
// runs exactly the arithmetic of Solve on that column — parallelism is
// only across columns, scratch is worker-owned — so the result is
// bit-identical to nrhs sequential Solve calls at every GOMAXPROCS.
func (f *Factor) SolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	if f.super == nil {
		par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				f.Solve(rhs[c*n : (c+1)*n])
			}
		})
		return
	}
	bufs := f.super.solveScratch(nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(w, lo, hi int) {
		if bufs[w] == nil {
			bufs[w] = make([]float64, f.super.ss.maxRows)
		}
		f.super.lsolveRange(rhs, n, lo, hi, bufs[w])
		f.super.ltsolveRange(rhs, n, lo, hi, bufs[w])
	})
}

// LSolveMulti solves L Y = B in place for nrhs column-major right-hand
// sides (see SolveMulti for the layout and determinism contract).
func (f *Factor) LSolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	if f.super == nil {
		par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				f.LSolve(rhs[c*n : (c+1)*n])
			}
		})
		return
	}
	bufs := f.super.solveScratch(nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(w, lo, hi int) {
		if bufs[w] == nil {
			bufs[w] = make([]float64, f.super.ss.maxRows)
		}
		f.super.lsolveRange(rhs, n, lo, hi, bufs[w])
	})
}

// LTSolveMulti solves Lᵀ Y = B in place for nrhs column-major
// right-hand sides (see SolveMulti).
func (f *Factor) LTSolveMulti(rhs []float64, nrhs int) {
	n := f.order()
	checkMulti(len(rhs), n, nrhs)
	if f.super == nil {
		par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				f.LTSolve(rhs[c*n : (c+1)*n])
			}
		})
		return
	}
	bufs := f.super.solveScratch(nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(w, lo, hi int) {
		if bufs[w] == nil {
			bufs[w] = make([]float64, f.super.ss.maxRows)
		}
		f.super.ltsolveRange(rhs, n, lo, hi, bufs[w])
	})
}

func checkMulti(have, n, nrhs int) {
	if nrhs < 0 || have != n*nrhs {
		panic(fmt.Sprintf("chol: multi-RHS block length %d, want %d columns of %d", have, nrhs, n))
	}
}

// superComplexFactor is the supernodal complex LDLᵀ: unit-lower panels
// (diagonal slots hold 1) plus the diagonal D, sharing the real
// structure's SuperSymbolic — row lists, update edges, scatter routes —
// across all frequency points of a sweep.
type superComplexFactor struct {
	ss  *SuperSymbolic
	val []complex128
	d   []complex128
	ws  *FactorWorkspace // see superFactor.ws
}

func (sf *superComplexFactor) panel(s int) []complex128 {
	return sf.val[sf.ss.off[s]:sf.ss.off[s+1]]
}

// FactorizeComplex runs the supernodal LDLᵀ of the complex symmetric
// matrix with the given pattern (the one this SuperSymbolic was
// analyzed for) and entry values supplied per stored pattern position,
// as in the package-level FactorizeComplex.
func (ss *SuperSymbolic) FactorizeComplex(pattern *sparse.CSR, val func(p int) complex128) (*ComplexFactor, error) {
	return ss.FactorizeComplexOpt(pattern, val, ScheduleDAG, nil)
}

// FactorizeComplexOpt is FactorizeComplex with an explicit panel
// schedule and an optional workspace, mirroring FactorizeOpt: a
// workspace-backed complex factor aliases the workspace and is valid
// only until its next factorization.
func (ss *SuperSymbolic) FactorizeComplexOpt(pattern *sparse.CSR, val func(p int) complex128, sched Schedule, ws *FactorWorkspace) (*ComplexFactor, error) {
	n := ss.sym.N
	if pattern.Rows != n || pattern.Cols != n {
		return nil, fmt.Errorf("chol: supernodal complex dimension mismatch")
	}
	ns := ss.sn.NSuper()
	workers := ss.maxLevelWorkers()
	sf := &superComplexFactor{ss: ss, ws: ws}
	var errs []error
	var scratch []*superScratch
	if ws != nil {
		sf.val, sf.d = ws.complexPanels()
		errs = ws.errSlots()
		scratch = ws.workerScratch(workers, true)
	} else {
		sf.val = make([]complex128, ss.off[ns])
		sf.d = make([]complex128, n)
		errs = make([]error, ns)
		scratch = make([]*superScratch, workers)
	}
	body := func(w, s int) {
		if scratch[w] == nil {
			scratch[w] = ss.newScratch(true)
		}
		if inject.Enabled && inject.ShouldFail(inject.CholDAGTask, s) {
			errs[s] = fmt.Errorf("chol: injected task failure at supernode %d", s)
			return
		}
		errs[s] = sf.factorPanel(val, s, scratch[w])
	}
	if err := ss.runSchedule(sched, ws, workers, errs, body); err != nil {
		return nil, err
	}
	return &ComplexFactor{super: sf}, nil
}

func (sf *superComplexFactor) factorPanel(val func(p int) complex128, s int, sc *superScratch) error {
	ss := sf.ss
	c0, w := ss.sn.Super[s], ss.sn.Width(s)
	h := len(ss.rows[s])
	P := sf.panel(s)

	scat := ss.scat[s]
	for q := 0; q < len(scat); q += 2 {
		P[scat[q+1]] = val(int(scat[q]))
	}

	// Update with descendants: C = Ld[lo:, :]·Dd·Ld[lo:mid, :]ᵀ (lower
	// trapezoid), subtracted through the precomputed routing.
	for ei := range ss.updaters[s] {
		e := &ss.updaters[s][ei]
		dsn := int(e.d)
		hd := len(ss.rows[dsn])
		wd := ss.sn.Width(dsn)
		d0 := ss.sn.Super[dsn]
		lo := int(e.lo)
		hC := hd - lo
		wC := int(e.mid) - lo
		C := sc.cupd[:hC*wC]
		clear(C)
		dense.CRankKTrapAccum(C, hC, wC, sf.panel(dsn), hd, lo, wd, sf.d[d0:d0+wd])
		cscatterSub(P, h, C, hC, wC, e)
	}

	// Right-looking LDLᵀ of the w×w diagonal block: pivot, normalize
	// the column (unit diagonal), rank-1 update of the remaining block
	// columns; then the below block via the dense trsm micro-kernel.
	for j := 0; j < w; j++ {
		col := P[j*h : j*h+w]
		d := col[j]
		k := c0 + j
		if inject.Enabled && inject.ShouldFail(inject.CholComplexPivot, k) {
			return fmt.Errorf("chol: injected zero pivot %d in complex LDLᵀ", k)
		}
		if cmplx.Abs(d) == 0 || cmplx.IsNaN(d) {
			return fmt.Errorf("chol: zero pivot %d in complex LDLᵀ", k)
		}
		sf.d[k] = d
		col[j] = 1
		for i := j + 1; i < w; i++ {
			col[i] /= d
		}
		for c := j + 1; c < w; c++ {
			f := col[c] * d
			if f == 0 {
				continue
			}
			dst := P[c*h : c*h+w]
			for i := c; i < w; i++ {
				dst[i] -= f * col[i]
			}
		}
	}
	dense.CTrsmLDLBelow(P, h, w, sf.d[c0:c0+w])
	return nil
}

// solveRange runs the supernodal L D Lᵀ solve for RHS columns [lo, hi)
// in place, mirroring the simplicial phase order — full forward
// substitution, then the diagonal, then full backward substitution —
// with each panel's in-block half running as a dense trsv and its
// below half as a dense gemv against buf (len ≥ maxRows).
func (sf *superComplexFactor) solveRange(rhs []complex128, n, lo, hi int, buf []complex128) {
	ss := sf.ss
	ns := ss.sn.NSuper()
	for s := 0; s < ns; s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		hb := h - w
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			xseg := x[c0 : c0+w]
			dense.CTrsvLowerUnit(xseg, P, h, w)
			if hb > 0 {
				yb := buf[:hb]
				clear(yb)
				dense.CGemvBelowAccum(yb, P, h, w, xseg)
				for i, r := range rows[w:] {
					x[r] -= yb[i]
				}
			}
		}
	}
	for c := lo; c < hi; c++ {
		x := rhs[c*n : (c+1)*n]
		for j := range x {
			x[j] /= sf.d[j]
		}
	}
	for s := ns - 1; s >= 0; s-- {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := sf.panel(s)
		hb := h - w
		for c := lo; c < hi; c++ {
			x := rhs[c*n : (c+1)*n]
			xseg := x[c0 : c0+w]
			if hb > 0 {
				yb := buf[:hb]
				for i, r := range rows[w:] {
					yb[i] = x[r]
				}
				dense.CGemvBelowTransSub(xseg, P, h, w, yb)
			}
			dense.CTrsvLowerTransUnit(xseg, P, h, w)
		}
	}
}

// solve runs the supernodal solve for one right-hand side.
func (sf *superComplexFactor) solve(x []complex128) {
	sf.solveRange(x, len(x), 0, 1, make([]complex128, sf.ss.maxRows))
}

// SolveMulti solves A X = B in place for nrhs column-major right-hand
// sides. Per column the arithmetic is exactly Solve's — the supernodal
// path shares its panel kernels and runs whole chunks of columns
// against each streamed panel, with worker-owned scratch — so the block
// solve is bit-identical to nrhs sequential Solve calls at every
// GOMAXPROCS.
func (f *ComplexFactor) SolveMulti(rhs []complex128, nrhs int) error {
	n := f.order()
	if nrhs < 0 || len(rhs) != n*nrhs {
		return fmt.Errorf("chol: complex multi-RHS block length %d, want %d columns of %d", len(rhs), nrhs, n)
	}
	if f.super != nil {
		bufs := f.super.solveScratch(nrhs)
		par.ForChunks(nrhs, solveMultiChunk, func(w, lo, hi int) {
			if bufs[w] == nil {
				bufs[w] = make([]complex128, f.super.ss.maxRows)
			}
			f.super.solveRange(rhs, n, lo, hi, bufs[w])
		})
		return nil
	}
	errs := make([]error, nrhs)
	par.ForChunks(nrhs, solveMultiChunk, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			errs[c] = f.Solve(rhs[c*n : (c+1)*n])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
