package chol

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/order"
	"repro/internal/sparse"
)

// This file pins the micro-kernel rewrite of the supernodal path: the
// blocked factorization and solves against the up-looking oracle at
// deliberately awkward panel widths (1×1 supernodes, widths on every
// unroll residue), the SupernodalMinOrder dispatch boundary, and the
// bit-determinism of the complex tiled path across GOMAXPROCS.

// TestOracleSupernodalPanelWidths forces panel widths onto every unroll
// tail — width-1 supernodes (each panel a single column, the rank-k
// kernel's scalar path), widths ≡ 1, 2, 3 mod 4, and the default — and
// cross-checks factor entries and solves against the up-looking kernel.
func TestOracleSupernodalPanelWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := meshSPD(19, 17)
	n := a.Rows
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	fu, err := FactorizeStrategy(ap, sym, StrategyUpLooking)
	if err != nil {
		t.Fatal(err)
	}
	lu := denseL(fu)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	ap.MulVec(b, x)
	for _, opt := range []order.SupernodeOptions{
		{MaxWidth: 1, RelaxFill: -1}, // every supernode 1×1
		{MaxWidth: 2},
		{MaxWidth: 3},
		{MaxWidth: 5},
		{MaxWidth: 7, RelaxFill: 0.3},
		{}, // defaults
	} {
		ss, err := AnalyzeSuper(ap, sym, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if opt.MaxWidth == 1 && ss.NSuper() != n {
			t.Fatalf("MaxWidth 1: %d supernodes, want %d singletons", ss.NSuper(), n)
		}
		fs, err := ss.Factorize(ap)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		ls := denseL(fs)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(ls[i][j] - lu[i][j]); d > 1e-11*(1+math.Abs(lu[i][j])) {
					t.Fatalf("opt %+v: L(%d,%d) = %v vs oracle %v", opt, i, j, ls[i][j], lu[i][j])
				}
			}
		}
		got := append([]float64(nil), b...)
		fs.Solve(got)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("opt %+v: Solve[%d] = %v, want %v", opt, i, got[i], x[i])
			}
		}
	}
}

// complexTestSystem builds a permuted D + sE pattern with per-position
// values, the shared fixture of the complex kernel tests.
func complexTestSystem(rng *rand.Rand, n int, s complex128) (*sparse.CSR, *order.Symbolic, func(p int) complex128) {
	d := randomSPD(rng, n, 3*n)
	e := randomSPD(rng, n, n)
	e.Scale(1e-2)
	pattern := sparse.PatternUnion(d, e)
	sym := order.Analyze(pattern, order.MinimumDegree)
	dp := d.PermuteSym(sym.Perm)
	ep := e.PermuteSym(sym.Perm)
	pat := sparse.PatternUnion(dp, ep)
	dv := make([]complex128, len(pat.Val))
	for i := 0; i < n; i++ {
		for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
			j := pat.Col[p]
			dv[p] = complex(dp.At(i, j), 0) + s*complex(ep.At(i, j), 0)
		}
	}
	return pat, sym, func(p int) complex128 { return dv[p] }
}

// TestOracleSupernodalComplexTiled pins the tiled complex LDLᵀ path —
// panel widths on every unroll residue of the pair-unrolled complex
// kernels — against the up-looking simplicial oracle, factor solves
// entrywise.
func TestOracleSupernodalComplexTiled(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 140
	pat, sym, val := complexTestSystem(rng, n, complex(0, 37.5))
	fu, err := FactorizeComplex(pat, val, sym)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	xu := append([]complex128(nil), b...)
	if err := fu.Solve(xu); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []order.SupernodeOptions{
		{MaxWidth: 1, RelaxFill: -1},
		{MaxWidth: 2},
		{MaxWidth: 3},
		{},
	} {
		ss, err := AnalyzeSuper(pat, sym, opt)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		fs, err := ss.FactorizeComplex(pat, val)
		if err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		xs := append([]complex128(nil), b...)
		if err := fs.Solve(xs); err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		for i := range xs {
			if cmplx.Abs(xs[i]-xu[i]) > 1e-8*(1+cmplx.Abs(xu[i])) {
				t.Fatalf("opt %+v: solve[%d] = %v vs oracle %v", opt, i, xs[i], xu[i])
			}
		}
	}
}

// TestOracleSupernodalDispatchBoundary walks the SupernodalMinOrder
// threshold at n = 511, 512, 513: the automatic dispatch must pick the
// up-looking kernel strictly below 512 and the blocked kernel at and
// above it, and whichever kernel is chosen must agree with the other
// kernel run explicitly (the oracle for the chosen one).
func TestOracleSupernodalDispatchBoundary(t *testing.T) {
	if SupernodalMinOrder != 512 {
		t.Fatalf("SupernodalMinOrder = %d, test assumes 512", SupernodalMinOrder)
	}
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{511, 512, 513} {
		a := randomSPD(rng, n, 3*n)
		sym := order.Analyze(a, order.MinimumDegree)
		ap := a.PermuteSym(sym.Perm)
		f, err := Factorize(ap, sym)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantSuper := n >= SupernodalMinOrder
		if gotSuper := f.Supernodes() > 0; gotSuper != wantSuper {
			t.Fatalf("n=%d: dispatch picked supernodal=%v, want %v", n, gotSuper, wantSuper)
		}
		// The oracle is the kernel the dispatch did not choose.
		oracleStrat := StrategySupernodal
		if wantSuper {
			oracleStrat = StrategyUpLooking
		}
		fo, err := FactorizeStrategy(ap, sym, oracleStrat)
		if err != nil {
			t.Fatalf("n=%d: oracle kernel: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		ap.MulVec(b, x)
		got := append([]float64(nil), b...)
		f.Solve(got)
		want := append([]float64(nil), b...)
		fo.Solve(want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: solve[%d] = %v chosen kernel vs %v oracle kernel", n, i, got[i], want[i])
			}
			if math.Abs(got[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d: solve[%d] = %v, want %v", n, i, got[i], x[i])
			}
		}
	}
}

// TestSupernodalComplexDeterministicAcrossGOMAXPROCS pins the complex
// tiled path's determinism contract at GOMAXPROCS ∈ {1, 2, 4, 8}: the
// packed panel values, the diagonal, and a blocked multi-RHS solve must
// be bit-identical at every worker count (one shared SuperSymbolic, as
// a frequency sweep would use it).
func TestSupernodalComplexDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 160
	pat, sym, val := complexTestSystem(rng, n, complex(0, 61.8))
	ss, err := AnalyzeSuper(pat, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 9
	block := make([]complex128, k*n)
	for i := range block {
		block[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	run := func() (*superComplexFactor, []complex128) {
		f, err := ss.FactorizeComplex(pat, val)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), block...)
		if err := f.SolveMulti(got, k); err != nil {
			t.Fatal(err)
		}
		return f.super, got
	}
	cbits := func(what string, a, b []complex128) {
		t.Helper()
		for i := range a {
			if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
				math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
				t.Fatalf("%s: entry %d differs bitwise: %v vs %v", what, i, a[i], b[i])
			}
		}
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	f1, x1 := run()
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		fP, xP := run()
		cbits("complex factor values", f1.val, fP.val)
		cbits("complex diagonal", f1.d, fP.d)
		cbits("complex SolveMulti", x1, xP)
	}
}
