package chol

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/order"
	"repro/internal/sparse"
)

// meshSPD builds the conductance matrix of an nx×ny resistor mesh with
// every node grounded through a small conductance — strictly diagonally
// dominant, hence SPD, and structurally the matrix class the supernodal
// kernel is built for.
func meshSPD(nx, ny int) *sparse.CSR {
	b := sparse.NewBuilder(nx*ny, nx*ny)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			deg := 0.0
			if x+1 < nx {
				b.AddSym(i, idx(x+1, y), -1)
				deg += 1
			}
			if x > 0 {
				deg += 1
			}
			if y+1 < ny {
				b.AddSym(i, idx(x, y+1), -1)
				deg += 1
			}
			if y > 0 {
				deg += 1
			}
			b.Add(i, i, deg+0.1)
		}
	}
	return b.Build()
}

// denseL reconstructs the dense lower factor from either representation.
func denseL(f *Factor) [][]float64 {
	n := f.order()
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	if f.super == nil {
		for j := 0; j < n; j++ {
			for p := f.L.ColPtr[j]; p < f.L.ColPtr[j+1]; p++ {
				l[f.L.Row[p]][j] = f.L.Val[p]
			}
		}
		return l
	}
	ss := f.super.ss
	for s := 0; s < ss.sn.NSuper(); s++ {
		c0, w := ss.sn.Super[s], ss.sn.Width(s)
		rows := ss.rows[s]
		h := len(rows)
		P := f.super.panel(s)
		for j := 0; j < w; j++ {
			for i := j; i < h; i++ {
				l[rows[i]][c0+j] = P[j*h+i]
			}
		}
	}
	return l
}

// TestSupernodalMatchesUpLooking cross-checks the blocked kernel against
// the up-looking oracle on random SPD matrices under every ordering:
// LLᵀ must reconstruct A, the two factors must agree entrywise to tight
// tolerance, and the stats must be mutually consistent (trapezoid
// entries = structural nonzeros + amalgamated fill).
func TestSupernodalMatchesUpLooking(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 60 + rng.Intn(200)
		a := randomSPD(rng, n, 4*n)
		for _, m := range []order.Method{order.Natural, order.RCM, order.MinimumDegree} {
			sym := order.Analyze(a, m)
			ap := a.PermuteSym(sym.Perm)
			fs, err := FactorizeStrategy(ap, sym, StrategySupernodal)
			if err != nil {
				t.Fatalf("trial %d %v: supernodal: %v", trial, m, err)
			}
			fu, err := FactorizeStrategy(ap, sym, StrategyUpLooking)
			if err != nil {
				t.Fatalf("trial %d %v: up-looking: %v", trial, m, err)
			}
			if fs.Supernodes() == 0 || fu.Supernodes() != 0 {
				t.Fatalf("trial %d %v: strategy dispatch wrong: %d / %d supernodes",
					trial, m, fs.Supernodes(), fu.Supernodes())
			}
			if got, want := fs.NNZ(), fu.NNZ()+fs.AmalgamatedFill(); got != want {
				t.Fatalf("trial %d %v: trapezoid entries %d != structural %d + fill %d",
					trial, m, got, fu.NNZ(), fs.AmalgamatedFill())
			}
			ls, lu := denseL(fs), denseL(fu)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if d := math.Abs(ls[i][j] - lu[i][j]); d > 1e-11*(1+math.Abs(lu[i][j])) {
						t.Fatalf("trial %d %v: L(%d,%d) = %v supernodal vs %v up-looking",
							trial, m, i, j, ls[i][j], lu[i][j])
					}
				}
			}
			// Solve round trip through the supernodal factor.
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			b := make([]float64, n)
			ap.MulVec(b, x)
			fs.Solve(b)
			for i := range x {
				if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
					t.Fatalf("trial %d %v: supernodal Solve[%d] = %v, want %v", trial, m, i, b[i], x[i])
				}
			}
		}
	}
}

func bitsEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: entry %d differs bitwise: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestSupernodalDeterministicAcrossGOMAXPROCS pins the determinism
// contract of the parallel panel schedule: the packed factor values and
// a solve through them must be bit-identical at every worker count.
func TestSupernodalDeterministicAcrossGOMAXPROCS(t *testing.T) {
	a := meshSPD(28, 31)
	sym := order.Analyze(a, order.MinimumDegree)
	ap := a.PermuteSym(sym.Perm)
	n := a.Rows
	run := func() ([]float64, []float64) {
		f, err := FactorizeStrategy(ap, sym, StrategySupernodal)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(3*i + 1))
		}
		f.Solve(x)
		return f.super.val, x
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	val1, x1 := run()
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		valP, xP := run()
		bitsEqual(t, "factor values", val1, valP)
		bitsEqual(t, "solve result", x1, xP)
	}
}

// TestSolveMultiBitIdenticalToSequential checks the blocked multi-RHS
// solves against column-by-column single solves, bitwise, for both
// kernels and at several worker counts.
func TestSolveMultiBitIdenticalToSequential(t *testing.T) {
	a := meshSPD(17, 23)
	sym := order.Analyze(a, order.RCM)
	ap := a.PermuteSym(sym.Perm)
	n := a.Rows
	const k = 13
	rng := rand.New(rand.NewSource(42))
	block := make([]float64, k*n)
	for i := range block {
		block[i] = rng.NormFloat64()
	}
	for _, strat := range []Strategy{StrategyUpLooking, StrategySupernodal} {
		f, err := FactorizeStrategy(ap, sym, strat)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), block...)
		for c := 0; c < k; c++ {
			f.Solve(want[c*n : (c+1)*n])
		}
		wantL := append([]float64(nil), block...)
		for c := 0; c < k; c++ {
			f.LSolve(wantL[c*n : (c+1)*n])
		}
		wantLT := append([]float64(nil), block...)
		for c := 0; c < k; c++ {
			f.LTSolve(wantLT[c*n : (c+1)*n])
		}
		for _, procs := range []int{1, 2, 4, 8} {
			old := runtime.GOMAXPROCS(procs)
			got := append([]float64(nil), block...)
			f.SolveMulti(got, k)
			bitsEqual(t, "SolveMulti", want, got)
			got = append([]float64(nil), block...)
			f.LSolveMulti(got, k)
			bitsEqual(t, "LSolveMulti", wantL, got)
			got = append([]float64(nil), block...)
			f.LTSolveMulti(got, k)
			bitsEqual(t, "LTSolveMulti", wantLT, got)
			runtime.GOMAXPROCS(old)
		}
	}
}

// TestSupernodalComplexMatchesSimplicial cross-checks the supernodal
// LDLᵀ against the up-looking complex kernel on D + sE systems, and the
// complex SolveMulti against sequential solves bitwise.
func TestSupernodalComplexMatchesSimplicial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		n := 80 + rng.Intn(120)
		d := randomSPD(rng, n, 3*n)
		e := randomSPD(rng, n, n)
		e.Scale(1e-2)
		s := complex(0, 10+100*rng.Float64())
		pattern := sparse.PatternUnion(d, e)
		sym := order.Analyze(pattern, order.MinimumDegree)
		dp := d.PermuteSym(sym.Perm)
		ep := e.PermuteSym(sym.Perm)
		pat := sparse.PatternUnion(dp, ep)
		// Per-position values, aligned with pat's storage.
		dv := make([]complex128, len(pat.Val))
		for i := 0; i < n; i++ {
			for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
				j := pat.Col[p]
				dv[p] = complex(dp.At(i, j), 0) + s*complex(ep.At(i, j), 0)
			}
		}
		val := func(p int) complex128 { return dv[p] }
		ss, err := AnalyzeSuper(pat, sym, order.SupernodeOptions{})
		if err != nil {
			t.Fatalf("trial %d: AnalyzeSuper: %v", trial, err)
		}
		fs, err := ss.FactorizeComplex(pat, val)
		if err != nil {
			t.Fatalf("trial %d: supernodal complex: %v", trial, err)
		}
		fu, err := FactorizeComplex(pat, val, sym)
		if err != nil {
			t.Fatalf("trial %d: simplicial complex: %v", trial, err)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		xs := append([]complex128(nil), b...)
		xu := append([]complex128(nil), b...)
		if err := fs.Solve(xs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := fu.Solve(xu); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range xs {
			if cmplx.Abs(xs[i]-xu[i]) > 1e-8*(1+cmplx.Abs(xu[i])) {
				t.Fatalf("trial %d: solve[%d] = %v supernodal vs %v simplicial", trial, i, xs[i], xu[i])
			}
		}
		// Blocked complex solve, bitwise against sequential.
		const k = 5
		block := make([]complex128, k*n)
		for i := range block {
			block[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), block...)
		for c := 0; c < k; c++ {
			if err := fs.Solve(want[c*n : (c+1)*n]); err != nil {
				t.Fatal(err)
			}
		}
		got := append([]complex128(nil), block...)
		if err := fs.SolveMulti(got, k); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: complex SolveMulti entry %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSupernodalRejectsIndefinite: a floating subnetwork (zero row-sum
// block) must surface as ErrNotPositiveDefinite from the blocked kernel
// too, so the recovery ladders behave identically on either path.
func TestSupernodalRejectsIndefinite(t *testing.T) {
	n := 64
	b := sparse.NewBuilder(n, n)
	for i := 0; i+1 < n; i += 2 {
		// Disconnected two-node pairs with exactly singular 2×2 blocks.
		b.Add(i, i, 1)
		b.Add(i+1, i+1, 1)
		b.AddSym(i, i+1, -1)
	}
	a := b.Build()
	sym := order.Analyze(a, order.Natural)
	_, err := FactorizeStrategy(a, sym, StrategySupernodal)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

// TestFactorizeAutoDispatch checks the size threshold: small systems
// keep the historical up-looking factor, large ones get the blocked
// kernel, and lowering SupernodalMinOrder redirects small systems too.
func TestFactorizeAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	small := randomSPD(rng, 50, 150)
	sym := order.Analyze(small, order.Natural)
	f, err := Factorize(small, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Supernodes() != 0 {
		t.Fatalf("order 50 took the supernodal path below threshold %d", SupernodalMinOrder)
	}
	defer func(old int) { SupernodalMinOrder = old }(SupernodalMinOrder)
	SupernodalMinOrder = 16
	f, err = Factorize(small, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Supernodes() == 0 {
		t.Fatal("lowered threshold did not select the supernodal kernel")
	}
	if f.Bytes() <= 0 || f.FlopEstimate() <= 0 {
		t.Fatalf("supernodal stats: Bytes=%d FlopEstimate=%g", f.Bytes(), f.FlopEstimate())
	}
}
