// FactorWorkspace: pooled numeric state for repeated supernodal
// factorizations of one symbolic structure. An AC verification sweep
// re-factorizes D + sE at every frequency point; without pooling, each
// point allocates the packed panels (hundreds of megabytes at 10⁶
// nodes), the per-worker dense scratch, the DAG run state, and the
// solve buffers, all of which have pattern-determined sizes that never
// change across points. A workspace owns all of them and hands them
// back to every factorization threaded through it, so the steady state
// of a sweep allocates nothing.
package chol

import (
	"repro/internal/par"
)

// FactorWorkspace holds the reusable numeric buffers of supernodal
// factorizations against one SuperSymbolic. Buffers are created lazily
// on first use (a real-only caller never pays for complex panels) and
// retained across factorizations.
//
// A workspace is NOT safe for concurrent use: it serves one
// factorization at a time, and a Factor or ComplexFactor produced
// through it aliases the workspace's buffers — it remains valid only
// until the next factorization through the same workspace, and its
// multi-RHS solves draw scratch from the workspace, so they must not
// overlap each other either. Use one workspace per worker (the YSweep
// pattern); the shared SuperSymbolic is immutable and safe to share.
type FactorWorkspace struct {
	ss *SuperSymbolic

	val  []float64    // real packed panels
	cval []complex128 // complex packed panels
	d    []complex128 // complex LDLᵀ diagonal

	errs     []error         // per-supernode error slots
	scratchR []*superScratch // worker-owned dense update scratch, real
	scratchC []*superScratch // worker-owned dense update scratch, complex
	dagSc    *par.DAGScratch // DAG run state (counts + ready queue)

	solveF [][]float64    // per-worker solve buffers, real
	solveC [][]complex128 // per-worker solve buffers, complex
}

// NewWorkspace creates an empty workspace bound to this symbolic
// structure. All buffers are allocated on first use.
func (ss *SuperSymbolic) NewWorkspace() *FactorWorkspace {
	return &FactorWorkspace{ss: ss}
}

// realPanels returns the packed real panel storage, zeroed: panel slots
// outside the analyzed pattern (amalgamation and elimination fill) are
// never written by the scatter phase and must start at zero.
func (ws *FactorWorkspace) realPanels() []float64 {
	n := ws.ss.off[ws.ss.sn.NSuper()]
	if ws.val == nil {
		ws.val = make([]float64, n)
		return ws.val
	}
	clear(ws.val)
	return ws.val
}

// complexPanels returns the packed complex panel storage and the
// diagonal, both zeroed (see realPanels).
func (ws *FactorWorkspace) complexPanels() ([]complex128, []complex128) {
	if ws.cval == nil {
		ws.cval = make([]complex128, ws.ss.off[ws.ss.sn.NSuper()])
		ws.d = make([]complex128, ws.ss.sym.N)
		return ws.cval, ws.d
	}
	clear(ws.cval)
	clear(ws.d)
	return ws.cval, ws.d
}

// errSlots returns the per-supernode error slice. No clearing is
// needed: every panel task writes its slot unconditionally before any
// slot is read.
func (ws *FactorWorkspace) errSlots() []error {
	if ws.errs == nil {
		ws.errs = make([]error, ws.ss.sn.NSuper())
	}
	return ws.errs
}

// workerScratch returns the per-worker dense scratch slots for the
// given pool size, growing the slice if a larger pool appears. Slots
// are filled lazily by the worker that claims them, exactly as in the
// unpooled path.
func (ws *FactorWorkspace) workerScratch(workers int, complexUpd bool) []*superScratch {
	sl := &ws.scratchR
	if complexUpd {
		sl = &ws.scratchC
	}
	for len(*sl) < workers {
		*sl = append(*sl, nil)
	}
	return (*sl)[:workers]
}

// dagScratch returns the pooled DAG run state.
func (ws *FactorWorkspace) dagScratch() *par.DAGScratch {
	if ws.dagSc == nil {
		ws.dagSc = ws.ss.dag.NewScratch()
	}
	return ws.dagSc
}

// realSolveBufs returns the per-worker solve-buffer slots for a
// multi-RHS real solve (slots filled lazily, as with workerScratch).
func (ws *FactorWorkspace) realSolveBufs(workers int) [][]float64 {
	for len(ws.solveF) < workers {
		ws.solveF = append(ws.solveF, nil)
	}
	return ws.solveF[:workers]
}

// complexSolveBufs is realSolveBufs for complex solves.
func (ws *FactorWorkspace) complexSolveBufs(workers int) [][]complex128 {
	for len(ws.solveC) < workers {
		ws.solveC = append(ws.solveC, nil)
	}
	return ws.solveC[:workers]
}

// Bytes returns the memory currently held by the workspace: packed
// panels, diagonal, per-worker dense scratch, DAG run state, and solve
// buffers. Together with SuperSymbolic's routing storage this is the
// true peak footprint of a pooled factorization, which the Table 4
// memory accounting reports.
func (ws *FactorWorkspace) Bytes() int64 {
	b := int64(len(ws.val))*8 + int64(len(ws.cval))*16 + int64(len(ws.d))*16
	b += int64(len(ws.errs)) * 16
	for _, sc := range ws.scratchR {
		b += sc.bytes()
	}
	for _, sc := range ws.scratchC {
		b += sc.bytes()
	}
	if ws.dagSc != nil {
		b += ws.dagSc.Bytes()
	}
	for _, buf := range ws.solveF {
		b += int64(len(buf)) * 8
	}
	for _, buf := range ws.solveC {
		b += int64(len(buf)) * 16
	}
	return b
}

// bytes is the memory footprint of one worker's dense scratch.
func (sc *superScratch) bytes() int64 {
	if sc == nil {
		return 0
	}
	return int64(len(sc.upd))*8 + int64(len(sc.cupd))*16 + int64(len(sc.adiag))*8
}
