package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/lanczos"
	"repro/internal/order"
	"repro/internal/sparse"
)

// randomRC builds a random connected RC network on tot nodes plus ground
// and returns its grounded G, C matrices. A resistor spanning tree
// guarantees every node a DC path to ground, the paper's positive
// definiteness condition for D.
func randomRC(rng *rand.Rand, tot int) (g, c *sparse.CSR) {
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	stampG := func(i, j int, cond float64) {
		// j == -1 means ground.
		if i >= 0 {
			gb.Add(i, i, cond)
		}
		if j >= 0 {
			gb.Add(j, j, cond)
		}
		if i >= 0 && j >= 0 {
			gb.AddSym(i, j, -cond)
		}
	}
	stampC := func(i, j int, cap float64) {
		if i >= 0 {
			cb.Add(i, i, cap)
		}
		if j >= 0 {
			cb.Add(j, j, cap)
		}
		if i >= 0 && j >= 0 {
			cb.AddSym(i, j, -cap)
		}
	}
	// Spanning tree of resistors: node i connects to a random earlier node
	// (or ground for node 0).
	stampG(0, -1, 0.5+rng.Float64())
	for i := 1; i < tot; i++ {
		stampG(i, rng.Intn(i), 0.5+rng.Float64())
	}
	// Extra resistors and capacitors.
	for k := 0; k < 2*tot; k++ {
		i, j := rng.Intn(tot), rng.Intn(tot)
		if i != j {
			stampG(i, j, rng.Float64())
		}
	}
	for k := 0; k < 2*tot; k++ {
		i := rng.Intn(tot)
		if rng.Intn(2) == 0 {
			stampC(i, -1, 0.1+rng.Float64())
		} else if j := rng.Intn(tot); j != i {
			stampC(i, j, 0.1*rng.Float64())
		}
	}
	// Make sure C is nonzero even in degenerate draws.
	stampC(tot-1, -1, 0.3)
	// Zero-entry padding so patterns differ between G and C.
	return gb.Build(), cb.Build()
}

func randomSystem(rng *rand.Rand, m, n int) *System {
	g, c := randomRC(rng, m+n)
	ports := make([]int, m)
	for i := range ports {
		ports[i] = i
	}
	sys, err := Partition(g, c, ports)
	if err != nil {
		panic(err)
	}
	return sys
}

// schurY computes Y(s) by dense Schur complement — an implementation
// independent of System.Y for cross-checking.
func schurY(sys *System, s complex128) *dense.CMat {
	m, n := sys.M, sys.N
	di := dense.NewC(n, n)
	dd, ed := sys.D.Dense(), sys.E.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			di.Set(i, j, complex(dd[i][j], 0)+s*complex(ed[i][j], 0))
		}
	}
	f, err := dense.FactorCLU(di)
	if err != nil {
		panic(err)
	}
	qd, rd := sys.Q.Dense(), sys.R.Dense()
	ad, bd := sys.A.Dense(), sys.B.Dense()
	y := dense.NewC(m, m)
	for j := 0; j < m; j++ {
		col := make([]complex128, n)
		for i := 0; i < n; i++ {
			col[i] = complex(qd[i][j], 0) + s*complex(rd[i][j], 0)
		}
		f.Solve(col)
		for i := 0; i < m; i++ {
			acc := complex(ad[i][j], 0) + s*complex(bd[i][j], 0)
			for kk := 0; kk < n; kk++ {
				acc -= (complex(qd[kk][i], 0) + s*complex(rd[kk][i], 0)) * col[kk]
			}
			y.Set(i, j, acc)
		}
	}
	return y
}

func cNorm(y *dense.CMat) float64 {
	maxv := 0.0
	for _, v := range y.Data {
		if a := cmplx.Abs(v); a > maxv {
			maxv = a
		}
	}
	return maxv
}

func TestPartitionFullRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(51))
	g, c := randomRC(rng, 12)
	sys, err := Partition(g, c, []int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sys.M != 3 || sys.N != 9 {
		t.Fatalf("M=%d N=%d, want 3, 9", sys.M, sys.N)
	}
	gf, cf := sys.Full()
	// Full() reassembles in port-first order; compare against the same
	// permutation of the originals.
	perm := []int{0, 3, 7, 1, 2, 4, 5, 6, 8, 9, 10, 11}
	gp, cp := g.PermuteSym(perm), c.PermuteSym(perm)
	dg, dc := gf.Dense(), cf.Dense()
	wg, wc := gp.Dense(), cp.Dense()
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if math.Abs(dg[i][j]-wg[i][j]) > 1e-14 || math.Abs(dc[i][j]-wc[i][j]) > 1e-14 {
				t.Fatalf("Full() mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPartitionRejectsBadPorts(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(52))
	g, c := randomRC(rng, 5)
	if _, err := Partition(g, c, []int{0, 0}); err == nil {
		t.Error("duplicate port accepted")
	}
	if _, err := Partition(g, c, []int{9}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestYAgainstSchur(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(rng, 2+rng.Intn(3), 5+rng.Intn(15))
		for _, s := range []complex128{0, complex(0, 1), complex(0, 10), complex(0.5, 3)} {
			got, err := sys.Y(s)
			if err != nil {
				t.Fatal(err)
			}
			want := schurY(sys, s)
			if d := dense.MaxAbsDiff(got, want); d > 1e-8*(1+cNorm(want)) {
				t.Fatalf("trial %d s=%v: |Y - Yschur| = %g", trial, s, d)
			}
		}
	}
}

func TestCutoffFactor(t *testing.T) {
	t.Parallel()
	if f := CutoffFactor(0.05); math.Abs(f-3.04) > 0.01 {
		t.Errorf("CutoffFactor(0.05) = %v, want 3.04 (paper Section 5)", f)
	}
	if f := CutoffFactor(0.10); math.Abs(f-2.06) > 0.01 {
		t.Errorf("CutoffFactor(0.10) = %v, want about 2.06", f)
	}
}

// keepAllFMax returns an FMax so high that every pole of the system is
// retained, making the reduction exact.
const keepAllFMax = 1e9

func TestReduceExactWhenAllPolesKept(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 8; trial++ {
		sys := randomSystem(rng, 2+rng.Intn(3), 4+rng.Intn(10))
		model, stats, err := Reduce(sys, Options{FMax: keepAllFMax, Tol: 0.05})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.DenseEig {
			t.Fatalf("trial %d: expected dense eigenpath for small n", trial)
		}
		for _, s := range []complex128{0, complex(0, 0.3), complex(0, 2), complex(0, 25)} {
			want, err := sys.Y(s)
			if err != nil {
				t.Fatal(err)
			}
			got := model.Y(s)
			if d := dense.MaxAbsDiff(got, want); d > 1e-6*(1+cNorm(want)) {
				t.Fatalf("trial %d s=%v: exact reduction error %g", trial, s, d)
			}
		}
	}
}

func TestReduceDCAndFirstMomentExact(t *testing.T) {
	t.Parallel()
	// Even when poles are dropped, Y(0) and dY/ds(0) are preserved
	// exactly (A′ and B′ are the first two moments).
	rng := rand.New(rand.NewSource(55))
	sys := randomSystem(rng, 3, 20)
	model, _, err := Reduce(sys, Options{FMax: 1e-4, Tol: 0.05}) // drop everything
	if err != nil {
		t.Fatal(err)
	}
	if model.K() != 0 {
		t.Logf("kept %d poles at extreme cutoff", model.K())
	}
	y0, err := sys.Y(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(model.Y(0), y0); d > 1e-9*(1+cNorm(y0)) {
		t.Fatalf("DC mismatch %g", d)
	}
	// First moment by finite difference on the exact admittance.
	h := 1e-6
	yh, err := sys.Y(complex(h, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.M; i++ {
		for j := 0; j < sys.M; j++ {
			want := real(yh.At(i, j)-y0.At(i, j)) / h
			got := model.B.At(i, j)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("B′(%d,%d) = %v, want %v (finite difference)", i, j, got, want)
			}
		}
	}
}

func TestReduceMeetsTolerance(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 6; trial++ {
		sys := randomSystem(rng, 2, 25)
		fmax := 0.05 // rad-normalized units; poles of these networks are O(1)
		tol := 0.05
		model, _, err := Reduce(sys, Options{FMax: fmax, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{fmax / 10, fmax / 3, fmax} {
			s := complex(0, 2*math.Pi*f)
			want, err := sys.Y(s)
			if err != nil {
				t.Fatal(err)
			}
			got := model.Y(s)
			// The per-pole tolerance bounds each dropped term; allow the
			// aggregate a small factor.
			if d := dense.MaxAbsDiff(got, want); d > 3*tol*cNorm(want) {
				t.Fatalf("trial %d f=%g: error %g exceeds budget %g", trial, f, d, 3*tol*cNorm(want))
			}
		}
	}
}

func TestReduceLanczosMatchesDense(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 5; trial++ {
		sys := randomSystem(rng, 3, 40)
		fmax := 0.08
		md, _, err := Reduce(sys, Options{FMax: fmax, DenseThreshold: 100})
		if err != nil {
			t.Fatal(err)
		}
		ml, statsL, err := Reduce(sys, Options{FMax: fmax, DenseThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		if statsL.DenseEig {
			t.Fatal("expected Lanczos path")
		}
		if md.K() != ml.K() {
			t.Fatalf("trial %d: dense kept %d poles, Lanczos kept %d", trial, md.K(), ml.K())
		}
		for i := range md.Lambda {
			if math.Abs(md.Lambda[i]-ml.Lambda[i]) > 1e-6*md.Lambda[i] {
				t.Fatalf("trial %d: pole %d mismatch: %v vs %v", trial, i, md.Lambda[i], ml.Lambda[i])
			}
		}
		for _, s := range []complex128{complex(0, 0.1), complex(0, 0.4)} {
			if d := dense.MaxAbsDiff(md.Y(s), ml.Y(s)); d > 1e-6*(1+cNorm(md.Y(s))) {
				t.Fatalf("trial %d: Y mismatch between dense and Lanczos paths: %g", trial, d)
			}
		}
	}
}

func TestReduceTwoPassAgrees(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(58))
	sys := randomSystem(rng, 2, 45)
	fmax := 0.08
	ref, _, err := Reduce(sys, Options{FMax: fmax, DenseThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := Reduce(sys, Options{FMax: fmax, DenseThreshold: -1, TwoPass: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.K() != two.K() {
		t.Fatalf("two-pass kept %d poles, dense %d", two.K(), ref.K())
	}
	s := complex(0, 2*math.Pi*fmax)
	if d := dense.MaxAbsDiff(ref.Y(s), two.Y(s)); d > 1e-5*(1+cNorm(ref.Y(s))) {
		t.Fatalf("two-pass Y mismatch %g", d)
	}
}

func TestReducePassivity(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng, 1+rng.Intn(4), 3+rng.Intn(20))
		model, _, err := Reduce(sys, Options{FMax: 0.01 + rng.Float64()})
		if err != nil {
			return false
		}
		return model.CheckPassive(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReducePolesAreRealNegative(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(59))
	sys := randomSystem(rng, 2, 30)
	model, _, err := Reduce(sys, Options{FMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range model.Lambda {
		if !(l > 0) || math.IsNaN(l) {
			t.Fatalf("retained λ = %v must be positive (pole −1/λ real negative)", l)
		}
	}
	for _, f := range model.PoleFreqs() {
		if !(f > 0) {
			t.Fatalf("pole frequency %v must be positive", f)
		}
	}
}

func TestReduceNoCacheMatchesCache(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(60))
	sys := randomSystem(rng, 3, 25)
	withCache, s1, err := Reduce(sys, Options{FMax: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	noCache, s2, err := Reduce(sys, Options{FMax: 0.05, XCacheBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.XCached || s2.XCached {
		t.Fatalf("cache flags wrong: %v %v", s1.XCached, s2.XCached)
	}
	if s2.Solves <= s1.Solves {
		t.Errorf("column recomputation should use more solves (%d vs %d)", s2.Solves, s1.Solves)
	}
	sEval := complex(0, 0.2)
	if d := dense.MaxAbsDiff(withCache.Y(sEval), noCache.Y(sEval)); d > 1e-10*(1+cNorm(withCache.Y(sEval))) {
		t.Fatalf("cache/no-cache mismatch %g", d)
	}
}

func TestReduceOrderings(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(61))
	sys := randomSystem(rng, 2, 30)
	var ref *ReducedModel
	for _, m := range []order.Method{order.MinimumDegree, order.RCM, order.Natural} {
		model, _, err := Reduce(sys, Options{FMax: 0.05, Ordering: m})
		if err != nil {
			t.Fatalf("ordering %v: %v", m, err)
		}
		if ref == nil {
			ref = model
			continue
		}
		if model.K() != ref.K() {
			t.Fatalf("ordering %v kept %d poles, want %d", m, model.K(), ref.K())
		}
		s := complex(0, 0.3)
		if d := dense.MaxAbsDiff(model.Y(s), ref.Y(s)); d > 1e-7*(1+cNorm(ref.Y(s))) {
			t.Fatalf("ordering %v: Y mismatch %g", m, d)
		}
	}
}

func TestReduceLanczosModes(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(62))
	sys := randomSystem(rng, 2, 50)
	ref, _, err := Reduce(sys, Options{FMax: 0.08, DenseThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []lanczos.Mode{lanczos.Selective, lanczos.Full} {
		model, _, err := Reduce(sys, Options{FMax: 0.08, DenseThreshold: -1, LanczosMode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if model.K() != ref.K() {
			t.Fatalf("mode %v kept %d poles, want %d", mode, model.K(), ref.K())
		}
	}
}

func TestReduceMaxPoles(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(63))
	sys := randomSystem(rng, 2, 20)
	model, _, err := Reduce(sys, Options{FMax: keepAllFMax, MaxPoles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() > 2 {
		t.Fatalf("kept %d poles, cap was 2", model.K())
	}
	// The two largest λ (lowest-frequency poles) must be the ones kept.
	for i := 1; i < len(model.Lambda); i++ {
		if model.Lambda[i] > model.Lambda[i-1] {
			t.Fatal("Lambda not descending")
		}
	}
}

func TestReduceZeroInternal(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(64))
	g, c := randomRC(rng, 3)
	sys, err := Partition(g, c, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := Reduce(sys, Options{FMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() != 0 {
		t.Fatal("no internal nodes must give no poles")
	}
	want, err := sys.Y(complex(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(model.Y(complex(0, 5)), want); d > 1e-10*(1+cNorm(want)) {
		t.Fatalf("portless-internal mismatch %g", d)
	}
}

func TestReduceRejectsBadOptions(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(65))
	sys := randomSystem(rng, 2, 5)
	if _, _, err := Reduce(sys, Options{}); err == nil {
		t.Error("FMax = 0 accepted")
	}
}

func TestMatricesRealizationMatchesY(t *testing.T) {
	t.Parallel()
	// The realized (m+k) matrices must reproduce the reduced Y(s) via the
	// Schur complement, i.e. realization is exact.
	rng := rand.New(rand.NewSource(66))
	sys := randomSystem(rng, 2, 15)
	model, _, err := Reduce(sys, Options{FMax: keepAllFMax})
	if err != nil {
		t.Fatal(err)
	}
	g, c := model.Matrices()
	mm, k := model.M, model.K()
	if k == 0 {
		t.Skip("no poles retained in this draw")
	}
	for _, s := range []complex128{complex(0, 0.2), complex(0, 3)} {
		// Schur on the realized dense matrices.
		di := dense.NewC(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				di.Set(i, j, complex(g.At(mm+i, mm+j), 0)+s*complex(c.At(mm+i, mm+j), 0))
			}
		}
		f, err := dense.FactorCLU(di)
		if err != nil {
			t.Fatal(err)
		}
		y := dense.NewC(mm, mm)
		for j := 0; j < mm; j++ {
			col := make([]complex128, k)
			for i := 0; i < k; i++ {
				col[i] = complex(g.At(mm+i, j), 0) + s*complex(c.At(mm+i, j), 0)
			}
			f.Solve(col)
			for i := 0; i < mm; i++ {
				acc := complex(g.At(i, j), 0) + s*complex(c.At(i, j), 0)
				for kk := 0; kk < k; kk++ {
					acc -= (complex(g.At(mm+kk, i), 0) + s*complex(c.At(mm+kk, i), 0)) * col[kk]
				}
				y.Set(i, j, acc)
			}
		}
		if d := dense.MaxAbsDiff(y, model.Y(s)); d > 1e-8*(1+cNorm(y)) {
			t.Fatalf("realization mismatch %g at s=%v", d, s)
		}
	}
}

func TestSparsifyPreservesNND(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		b := dense.New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := dense.Mul(b.T(), b) // NND
		before := a.Clone()
		dropped := Sparsify(a, 0.2)
		if !dense.IsNonNegDefinite(a, 1e-9) {
			t.Fatalf("trial %d: Sparsify broke non-negative definiteness", trial)
		}
		if dropped == 0 {
			continue
		}
		// Dropped entries must be zero and diagonal must not decrease.
		for i := 0; i < n; i++ {
			if a.At(i, i) < before.At(i, i)-1e-12 {
				t.Fatal("diagonal decreased")
			}
		}
	}
}

func TestRCStats(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(68))
	sys := randomSystem(rng, 2, 10)
	nodes, rs, cs := sys.RCStats()
	if nodes != 12 || rs <= 0 || cs <= 0 {
		t.Fatalf("RCStats = %d nodes, %d R, %d C", nodes, rs, cs)
	}
}

func TestResiduePruning(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(91))
	sys := randomSystem(rng, 2, 25)
	fmax := 0.05
	full, sFull, err := Reduce(sys, Options{FMax: fmax})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny threshold must prune nothing.
	same, s0, err := Reduce(sys, Options{FMax: fmax, ResiduePruneTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if same.K() != full.K() || s0.PolesPruned != 0 {
		t.Fatalf("tiny threshold pruned %d poles", s0.PolesPruned)
	}
	// A moderate threshold may prune; the model must stay passive and
	// within the combined error budget below fmax.
	pruned, sp, err := Reduce(sys, Options{FMax: fmax, ResiduePruneTol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.K() > full.K() {
		t.Fatal("pruning added poles?")
	}
	if sp.PolesFound != pruned.K() {
		t.Fatalf("stats PolesFound %d != K %d", sp.PolesFound, pruned.K())
	}
	if !pruned.CheckPassive(1e-9) {
		t.Fatal("pruned model lost passivity")
	}
	_ = sFull
	for _, f := range []float64{fmax / 5, fmax} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got := pruned.Y(s)
		// Budget: the dropped-pole tolerance plus one prune tolerance per
		// pruned pole.
		budget := (3*0.05 + 0.01*float64(sp.PolesPruned+1)) * cNorm(want)
		if d := dense.MaxAbsDiff(got, want); d > budget {
			t.Fatalf("f=%g: pruned model error %g exceeds %g", f, d, budget)
		}
	}
}

func TestModelStringAndTransimpedance(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(95))
	sys := randomSystem(rng, 2, 8)
	model, _, err := Reduce(sys, Options{FMax: keepAllFMax})
	if err != nil {
		t.Fatal(err)
	}
	if s := model.String(); s == "" {
		t.Error("empty String()")
	}
	// Transimpedance wrapper agrees with explicit inversion.
	sv := complex(0, 1.5)
	z, err := sys.Transimpedance(sv, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sys.Y(sv)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := TransimpedanceOf(y, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(z-z2) > 1e-12*(1+cmplx.Abs(z2)) {
		t.Fatalf("Transimpedance %v vs %v", z, z2)
	}
}

func TestReducePureResistive(t *testing.T) {
	t.Parallel()
	// E = 0 (no capacitors): no poles exist; the reduction is exactly the
	// DC Schur complement.
	rng := rand.New(rand.NewSource(96))
	gb := sparse.NewBuilder(12, 12)
	gb.Add(0, 0, 1)
	for i := 1; i < 12; i++ {
		gb.Add(i, i, 0.5)
		gb.AddSym(i, rng.Intn(i), -0.4)
		gb.Add(i, i, 0.4)
		gb.Add(rng.Intn(i), rng.Intn(i)+0, 0) // no-op keeps builder exercised
	}
	g := gb.Build()
	c := sparse.Zero(12, 12)
	sys, err := Partition(g, c, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := Reduce(sys, Options{FMax: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() != 0 {
		t.Fatalf("resistive network produced %d poles", model.K())
	}
	want, err := sys.Y(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(model.Y(0), want); d > 1e-10*(1+cNorm(want)) {
		t.Fatalf("DC mismatch %g", d)
	}
	// B' of a capacitor-free network must vanish.
	if model.B.MaxAbs() > 1e-15 {
		t.Fatalf("B' = %v for a resistive network", model.B.MaxAbs())
	}
}

func TestPartitionZeroPorts(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(97))
	g, c := randomRC(rng, 6)
	sys, err := Partition(g, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.M != 0 || sys.N != 6 {
		t.Fatalf("system %d/%d", sys.M, sys.N)
	}
	model, _, err := Reduce(sys, Options{FMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.M != 0 {
		t.Fatal("portless model has ports")
	}
}

func TestPoleResidues(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(98))
	sys := randomSystem(rng, 2, 10)
	model, _, err := Reduce(sys, Options{FMax: keepAllFMax})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() == 0 {
		t.Skip("no poles in this draw")
	}
	prs := model.PoleResidues()
	if len(prs) != model.K() {
		t.Fatalf("residue count %d != %d", len(prs), model.K())
	}
	// Numeric residue: (s - p) Y(s) evaluated just off the pole.
	pr := prs[0]
	eps := 1e-7 * math.Abs(pr.Pole)
	s := complex(pr.Pole+eps, 0)
	y := model.Y(s)
	for i := 0; i < model.M; i++ {
		for j := 0; j < model.M; j++ {
			got := real((s - complex(pr.Pole, 0)) * y.At(i, j))
			want := pr.Residue.At(i, j)
			// The regular part contributes O(eps); residues of other
			// poles are far away.
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("residue(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSParamsKnownValues(t *testing.T) {
	t.Parallel()
	z0 := 50.0
	mk := func(y float64) *dense.CMat {
		m := dense.NewC(1, 1)
		m.Set(0, 0, complex(y, 0))
		return m
	}
	s, err := SParams(mk(1/z0), z0) // matched
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.At(0, 0)) > 1e-12 {
		t.Fatalf("matched load S11 = %v, want 0", s.At(0, 0))
	}
	s, err = SParams(mk(0), z0) // open
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.At(0, 0)-1) > 1e-12 {
		t.Fatalf("open S11 = %v, want 1", s.At(0, 0))
	}
	s, err = SParams(mk(2/z0), z0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.At(0, 0)+1.0/3) > 1e-12 {
		t.Fatalf("S11 = %v, want -1/3", s.At(0, 0))
	}
	if _, err := SParams(mk(1), -1); err == nil {
		t.Error("negative z0 accepted")
	}
}

// TestSParamsPassiveContraction: scattering of a passive network is a
// contraction — for any incident wave a, the reflected wave S·a is no
// larger. Checked on reduced models across random networks and
// frequencies.
func TestSParamsPassiveContraction(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng, 1+rng.Intn(3), 3+rng.Intn(12))
		model, _, err := Reduce(sys, Options{FMax: 0.01 + rng.Float64()})
		if err != nil {
			return false
		}
		w := rng.Float64() * 10
		y := model.Y(complex(0, w))
		s, err := SParams(y, 0.1+10*rng.Float64())
		if err != nil {
			return false
		}
		m := model.M
		a := make([]complex128, m)
		na := 0.0
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			na += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		}
		nb := 0.0
		for i := 0; i < m; i++ {
			var acc complex128
			for j := 0; j < m; j++ {
				acc += s.At(i, j) * a[j]
			}
			nb += real(acc)*real(acc) + imag(acc)*imag(acc)
		}
		return nb <= na*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransformedStatsAccessor(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	sys := randomSystem(rng, 2, 6)
	tr, st, err := Transform1(sys, Options{FMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats() != st {
		t.Fatal("Stats() must return the shared statistics")
	}
	if _, _, err := Reduce(sys, Options{FMax: -1}); err == nil {
		t.Fatal("negative FMax accepted")
	}
}

func TestCutoffFactorPanics(t *testing.T) {
	t.Parallel()
	for _, bad := range []float64{0, 1, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CutoffFactor(%v) did not panic", bad)
				}
			}()
			CutoffFactor(bad)
		}()
	}
}

func TestYSweepMatchesSerial(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(100))
	sys := randomSystem(rng, 3, 30)
	freqs := []float64{0.01, 0.03, 0.1, 0.3, 1, 3}
	serial, err := sys.YSweep(freqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sys.YSweep(freqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := range freqs {
		if d := dense.MaxAbsDiff(serial[k], parallel[k]); d > 0 {
			t.Fatalf("f=%g: parallel result differs by %g", freqs[k], d)
		}
	}
	// Spot check against direct evaluation.
	direct, err := sys.Y(complex(0, 2*math.Pi*freqs[2]))
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(serial[2], direct); d > 0 {
		t.Fatalf("sweep vs direct differ by %g", d)
	}
}

func TestReduceRejectsBadTol(t *testing.T) {
	t.Parallel()
	sys := randomSystem(rand.New(rand.NewSource(42)), 3, 12)
	for _, tol := range []float64{-0.1, 1, 1.5} {
		if _, _, err := Reduce(sys, Options{FMax: 1e9, Tol: tol}); err == nil {
			t.Errorf("Reduce accepted Tol = %g", tol)
		}
		tr, _, err := Transform1(sys, Options{FMax: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Transform2(Options{FMax: 1e9, Tol: tol}); err == nil {
			t.Errorf("Transform2 accepted Tol = %g", tol)
		}
	}
}
