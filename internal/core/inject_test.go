//go:build pactcheck

package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/chol"
	"repro/internal/resilience"
	"repro/internal/resilience/inject"
)

// TestInjectedPivotFailureRecovers drives the chol.pivot injection point:
// a single forced pivot failure on the clean matrix must be absorbed by
// the first regularization rung, leaving a recorded recovery and a model
// indistinguishable from the clean run to well below the reported bound.
func TestInjectedPivotFailureRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	sys := randomSystem(rng, 3, 25)
	clean, _, err := Reduce(sys, Options{FMax: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s := inject.NewSchedule().Arm(inject.CholPivot, 0)
	inject.Install(s)
	defer inject.Reset()
	model, stats, err := Reduce(sys, Options{FMax: 0.1})
	if err != nil {
		t.Fatalf("ladder did not absorb an injected pivot failure: %v", err)
	}
	if s.Fired(inject.CholPivot) != 1 {
		t.Fatal("injection point did not fire")
	}
	if len(stats.Recoveries) != 1 || stats.Recoveries[0].Stage != resilience.StageCholesky {
		t.Fatalf("Recoveries = %+v, want one Cholesky entry", stats.Recoveries)
	}
	if stats.Recoveries[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (failure + first rung)", stats.Recoveries[0].Attempts)
	}
	if clean.K() != model.K() {
		t.Fatalf("recovered run kept %d poles, clean run %d", model.K(), clean.K())
	}
	for i := range clean.Lambda {
		if math.Abs(clean.Lambda[i]-model.Lambda[i]) > 1e-6*clean.Lambda[i] {
			t.Fatalf("pole %d drifted: %v vs %v", i, model.Lambda[i], clean.Lambda[i])
		}
	}
}

// TestInjectedNaNPoisonExhaustsLadder drives chol.poison: a pivot that is
// NaN at every elimination defeats every γ rung, and the terminal error
// must be a StageError carrying the full attempt history and still
// matching the chol sentinel through errors.Is.
func TestInjectedNaNPoisonExhaustsLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	sys := randomSystem(rng, 2, 15)
	inject.Install(inject.NewSchedule().ArmPoison(inject.CholPoison, -1, -1, inject.NaN()))
	defer inject.Reset()
	_, _, err := Reduce(sys, Options{FMax: 0.1})
	var se *resilience.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a StageError", err)
	}
	if se.Stage != resilience.StageCholesky {
		t.Fatalf("stage = %s, want %s", se.Stage, resilience.StageCholesky)
	}
	if want := 1 + len(cholGammaRungs); len(se.Attempts) != want {
		t.Fatalf("attempt history has %d entries, want %d", len(se.Attempts), want)
	}
	if !errors.Is(err, chol.ErrNotPositiveDefinite) {
		t.Fatalf("StageError no longer matches the chol sentinel: %v", err)
	}
}

// TestInjectedLanczosStagnationFallsBackDense drives lanczos.iter: armed
// twice, the injection defeats both the initial LASO run and the
// restarted full-reorthogonalization rung, forcing the dense eigenpath.
// The fallback runs the same deterministic code as the DenseThreshold
// path, so the resulting model must be bit-identical to it.
func TestInjectedLanczosStagnationFallsBackDense(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	sys := randomSystem(rng, 3, 40)
	ref, refStats, err := Reduce(sys, Options{FMax: 0.08, DenseThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !refStats.DenseEig {
		t.Fatal("reference run must take the dense path")
	}
	s := inject.NewSchedule().ArmN(inject.LanczosIter, -1, 2)
	inject.Install(s)
	defer inject.Reset()
	model, stats, err := Reduce(sys, Options{FMax: 0.08, DenseThreshold: -1})
	if err != nil {
		t.Fatalf("fallback ladder failed: %v", err)
	}
	if got := s.Fired(inject.LanczosIter); got != 2 {
		t.Fatalf("lanczos.iter fired %d times, want 2 (initial + restart)", got)
	}
	if !stats.DenseEig {
		t.Fatal("fallback did not mark DenseEig")
	}
	if len(stats.Recoveries) != 1 || stats.Recoveries[0].Action != "dense eigenpath fallback" {
		t.Fatalf("Recoveries = %+v, want the dense fallback entry", stats.Recoveries)
	}
	if stats.Recoveries[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", stats.Recoveries[0].Attempts)
	}
	if len(model.Lambda) != len(ref.Lambda) {
		t.Fatalf("fallback kept %d poles, dense path %d", len(model.Lambda), len(ref.Lambda))
	}
	for i := range ref.Lambda {
		if math.Float64bits(model.Lambda[i]) != math.Float64bits(ref.Lambda[i]) {
			t.Fatalf("pole %d not bit-identical: %x vs %x",
				i, math.Float64bits(model.Lambda[i]), math.Float64bits(ref.Lambda[i]))
		}
	}
	for c := 0; c < len(ref.Lambda); c++ {
		for j := 0; j < ref.M; j++ {
			if math.Float64bits(model.R.At(c, j)) != math.Float64bits(ref.R.At(c, j)) {
				t.Fatalf("R(%d,%d) not bit-identical: %g vs %g", c, j, model.R.At(c, j), ref.R.At(c, j))
			}
		}
	}
}

// TestInjectedShiftFactorDegradesToSurvivors drives mp.shiftfactor: a
// forced factorization failure at one expansion point must drop only
// that point, record a StageMultiPoint recovery, and leave a model
// bit-identical to a clean run over the surviving shift set — the
// degradation contract of the multi-point basis union.
func TestInjectedShiftFactorDegradesToSurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	sys := randomSystem(rng, 3, 30)
	opts := Options{FMax: 0.1, Shifts: []float64{0, 0.01, 0.1}}
	s := inject.NewSchedule().Arm(inject.MPShiftFactor, 1)
	inject.Install(s)
	defer inject.Reset()
	model, stats, err := Reduce(sys, opts)
	if err != nil {
		t.Fatalf("multi-point run did not absorb one failed expansion point: %v", err)
	}
	if s.Fired(inject.MPShiftFactor) != 1 {
		t.Fatal("injection point did not fire")
	}
	if stats.ShiftsDropped != 1 || stats.Shifts != 3 {
		t.Fatalf("shift accounting: %d of %d dropped, want 1 of 3", stats.ShiftsDropped, stats.Shifts)
	}
	if len(stats.Recoveries) != 1 || stats.Recoveries[0].Stage != resilience.StageMultiPoint {
		t.Fatalf("Recoveries = %+v, want one StageMultiPoint entry", stats.Recoveries)
	}
	inject.Reset()
	ref, _, err := Reduce(sys, Options{FMax: 0.1, Shifts: []float64{0, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	pinModelBits(t, "degraded run vs clean survivor set", model, ref)
}

// TestInjectedShiftFactorAllFailIsTyped drives mp.shiftfactor armed for
// every expansion point: with no survivor left to degrade to, the stage
// must return a typed StageError carrying one attempt per shift and
// still matching the chol sentinel through errors.Is.
func TestInjectedShiftFactorAllFailIsTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	sys := randomSystem(rng, 2, 20)
	inject.Install(inject.NewSchedule().ArmN(inject.MPShiftFactor, -1, -1))
	defer inject.Reset()
	_, _, err := Reduce(sys, Options{FMax: 0.1, Shifts: []float64{0, 0.1}})
	var se *resilience.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a StageError", err)
	}
	if se.Stage != resilience.StageMultiPoint {
		t.Fatalf("stage = %s, want %s", se.Stage, resilience.StageMultiPoint)
	}
	if len(se.Attempts) != 2 {
		t.Fatalf("attempt history has %d entries, want one per expansion point (2)", len(se.Attempts))
	}
	if !errors.Is(err, chol.ErrNotPositiveDefinite) {
		t.Fatalf("StageError no longer matches the chol sentinel: %v", err)
	}
}

// sweepSeeds returns how many seeds the seeded fault sweep replays:
// PACT_FAULT_SWEEP_SEEDS when set (the nightly job raises it to 200),
// else a 6-seed smoke suitable for every push.
func sweepSeeds(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("PACT_FAULT_SWEEP_SEEDS")
	if s == "" {
		return 6
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		t.Fatalf("PACT_FAULT_SWEEP_SEEDS = %q: %v", s, err)
	}
	return n
}

// TestSeededFaultSweepIsTypedAndReproducible replays FromSeed schedules
// over the core side of the injection catalog — chol.pivot, chol.poison,
// chol.complexpivot, chol.dag.task, lanczos.iter, mp.shiftfactor, plus a
// par.item cancellation — against
// the full reduction, a multi-point reduction, an exact admittance
// evaluation, and a frequency sweep. Whatever the armed faults hit, the
// outcome must be
// either a success (with any ladder firings recorded as recoveries), a
// typed StageError, or a clean cancellation — never a panic — and
// replaying the same seed must reproduce the outcome string exactly.
// (The simulator side of the catalog — newton.iter, sim.sparselu.pivot,
// sim.ac.complexsolve — has its own seeded sweep in internal/sim.)
func TestSeededFaultSweepIsTypedAndReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	sys := randomSystem(rng, 2, 30)
	classify := func(seed int64, err error) string {
		if resilience.IsCancellation(err) {
			return "canceled"
		}
		var se *resilience.StageError
		if !errors.As(err, &se) {
			t.Fatalf("seed %d: untyped failure: %v", seed, err)
		}
		return "error: " + err.Error()
	}
	oneRun := func(seed int64) string {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s := inject.FromSeed(seed, 10,
			inject.CholPivot, inject.CholPoison, inject.CholComplexPivot,
			inject.CholDAGTask, inject.LanczosIter, inject.MPShiftFactor).
			// The func-only par.item point cannot be armed from a seed, so
			// the sweep derives its cancellation index from the seed itself:
			// item seed%5 of the frequency sweep below cancels the context.
			ArmFunc(inject.ParItem, int(seed%5), cancel)
		inject.Install(s)
		defer inject.Reset()
		var out string
		model, stats, err := ReduceContext(ctx, sys, Options{FMax: 0.1})
		if err != nil {
			out = classify(seed, err)
		} else {
			out = fmt.Sprintf("ok: %d poles, %d recoveries", model.K(), len(stats.Recoveries))
		}
		// Multi-point reduction: gives mp.shiftfactor its firing sites and
		// exercises the degradation ladder under whatever else is armed.
		if mm, mstats, merr := ReduceContext(ctx, sys, Options{FMax: 0.1, Shifts: []float64{0, 0.02, 0.1}}); merr != nil {
			out += "; mp " + classify(seed, merr)
		} else {
			out += fmt.Sprintf("; mp ok: %d poles, %d shifts dropped", mm.K(), mstats.ShiftsDropped)
		}
		// Exact admittance: gives chol.complexpivot a firing site.
		if _, yerr := sys.Y(complex(0, 0.3)); yerr != nil {
			out += "; Y failed"
		} else {
			out += "; Y ok"
		}
		// Serial frequency sweep (workers=1 keeps rule consumption order
		// deterministic): visits par.item per point, firing the armed
		// cancellation when its index is in range.
		freqs := []float64{0.01, 0.03, 0.1, 0.3, 1}
		if _, serr := sys.YSweepCtx(ctx, freqs, 1); serr != nil {
			out += "; sweep " + classify(seed, serr)
		} else {
			out += "; sweep ok"
		}
		return out
	}
	for seed := int64(0); seed < sweepSeeds(t); seed++ {
		first := oneRun(seed)
		if second := oneRun(seed); second != first {
			t.Fatalf("seed %d not reproducible:\n  first:  %s\n  second: %s", seed, first, second)
		}
	}
}

// TestInjectedComplexPivotFailsYEval drives chol.complexpivot: the exact
// admittance evaluation must surface the factorization failure as a typed
// error instead of a panic or a silent wrong answer.
func TestInjectedComplexPivotFailsYEval(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	sys := randomSystem(rng, 2, 12)
	s := inject.NewSchedule().Arm(inject.CholComplexPivot, -1)
	inject.Install(s)
	defer inject.Reset()
	_, err := sys.Y(complex(0, 0.3))
	if err == nil {
		t.Fatal("injected complex pivot failure was swallowed")
	}
	if s.Fired(inject.CholComplexPivot) != 1 {
		t.Fatal("injection point did not fire")
	}
	inject.Reset()
	if _, err := sys.Y(complex(0, 0.3)); err != nil {
		t.Fatalf("clean retry after reset failed: %v", err)
	}
}
