//go:build pactcheck

package core

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// meshSystemForCheck stamps a 3-D substrate-style RC lattice directly
// through the sparse builders (netgen/stamp would be an import cycle
// from here): REdge-conductance lattice edges, surface capacitors on the
// top face, a resistive back-plane contact on the bottom face, and the
// first nports top-surface nodes as ports.
func meshSystemForCheck(t *testing.T, nx, ny, nz, nports int) *System {
	t.Helper()
	n := nx * ny * nz
	idx := func(x, y, z int) int { return x + nx*(y+ny*z) }
	gb := sparse.NewBuilder(n, n)
	cb := sparse.NewBuilder(n, n)
	const gEdge = 1.0 / 630.0
	edge := func(i, j int) {
		gb.Add(i, i, gEdge)
		gb.Add(j, j, gEdge)
		gb.AddSym(i, j, -gEdge)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				if x+1 < nx {
					edge(i, idx(x+1, y, z))
				}
				if y+1 < ny {
					edge(i, idx(x, y+1, z))
				}
				if z+1 < nz {
					edge(i, idx(x, y, z+1))
				}
				if z == 0 {
					cb.Add(i, i, 30e-15)
				}
				if z == nz-1 {
					gb.Add(i, i, gEdge/50) // back-plane contact
				}
			}
		}
	}
	ports := make([]int, nports)
	for i := range ports {
		ports[i] = i // top-surface nodes come first in the linearization
	}
	sys, err := Partition(gb.Build(), cb.Build(), ports)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestTransform2RealizedMatricesStayPassive runs the full reduction over
// bench-style mesh sizes on both eigensolver paths and asserts the
// Section 3 invariant: the realized Ĝ and Ĉ of the reduced model remain
// symmetric and non-negative definite. Built with -tags pactcheck, the
// wired-in invariant layer additionally verifies every intermediate
// (Transform1 port blocks, retained eigenvalues, Ritz orthonormality)
// inside the Reduce call itself.
func TestTransform2RealizedMatricesStayPassive(t *testing.T) {
	if !check.Enabled {
		t.Fatal("this file must be built with -tags pactcheck")
	}
	cases := []struct {
		nx, ny, nz, m  int
		fmax           float64
		denseThreshold int
	}{
		{4, 4, 3, 4, 3e9, 1000},  // dense eigensolver path
		{6, 6, 4, 8, 10e9, 1000}, // dense path, cutoff high enough to keep several poles
		{6, 6, 4, 8, 10e9, -1},   // LASO path on the same system
		{8, 8, 5, 12, 3e9, -1},   // larger mesh, LASO
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%dx%dx%d_m%d_dt%d", tc.nx, tc.ny, tc.nz, tc.m, tc.denseThreshold)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sys := meshSystemForCheck(t, tc.nx, tc.ny, tc.nz, tc.m)
			model, stats, err := Reduce(sys, Options{
				FMax: tc.fmax, Tol: 0.05, DenseThreshold: tc.denseThreshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			g, c := model.Matrices()
			const tol = 1e-8
			for i := 0; i < g.R; i++ {
				for j := i + 1; j < g.C; j++ {
					if g.At(i, j) != g.At(j, i) {
						t.Fatalf("Ĝ[%d,%d] = %g but Ĝ[%d,%d] = %g", i, j, g.At(i, j), j, i, g.At(j, i))
					}
					if c.At(i, j) != c.At(j, i) {
						t.Fatalf("Ĉ[%d,%d] = %g but Ĉ[%d,%d] = %g", i, j, c.At(i, j), j, i, c.At(j, i))
					}
				}
			}
			if !dense.IsNonNegDefinite(g, tol) {
				t.Fatalf("realized Ĝ lost non-negative definiteness (%d ports, %d poles)", model.M, model.K())
			}
			if !dense.IsNonNegDefinite(c, tol) {
				t.Fatalf("realized Ĉ lost non-negative definiteness (%d ports, %d poles)", model.M, model.K())
			}
			if !model.CheckPassive(tol) {
				t.Fatal("model.CheckPassive disagrees with the direct matrix checks")
			}
			t.Logf("%s: kept %d poles of %d internal nodes", name, stats.PolesFound, stats.Internal)
		})
	}
}
