package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

// These tests check the mathematical claims of Section 3 of the paper
// directly, independent of the reduction pipeline.

// genEig computes the generalized eigenvalues of det[E − λD] = 0 for SPD
// D and symmetric E, via the congruent standard problem L⁻¹EL⁻ᵀ.
func genEig(t *testing.T, e, d *dense.Mat) []float64 {
	t.Helper()
	n := d.R
	l := d.Clone()
	if err := dense.Cholesky(l); err != nil {
		t.Fatal(err)
	}
	// M = L⁻¹ E L⁻ᵀ computed column by column.
	m := dense.New(n, n)
	lu := l // lower triangular
	forward := func(x []float64) {
		for i := 0; i < n; i++ {
			s := x[i]
			for k := 0; k < i; k++ {
				s -= lu.At(i, k) * x[k]
			}
			x[i] = s / lu.At(i, i)
		}
	}
	backward := func(x []float64) {
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for k := i + 1; k < n; k++ {
				s -= lu.At(k, i) * x[k]
			}
			x[i] = s / lu.At(i, i)
		}
	}
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		backward(col) // L⁻ᵀ e_j
		ec := e.MulVec(col)
		forward(ec) // L⁻¹ E L⁻ᵀ e_j
		for i := 0; i < n; i++ {
			m.Set(i, j, ec[i])
		}
	}
	m.Symmetrize()
	vals, _, err := dense.SymEig(m, false)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func randSPDMat(rng *rand.Rand, n int) *dense.Mat {
	b := dense.New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := dense.Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.5)
	}
	return a
}

func randNNDMat(rng *rand.Rand, n, rank int) *dense.Mat {
	b := dense.New(rank, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return dense.Mul(b.T(), b)
}

// TestCongruencePreservesGeneralizedEigenvalues is the fundamental
// property of Section 3: for square nonsingular V, the pencil
// (VᵀEV, VᵀDV) has the same eigenvalues as (E, D).
func TestCongruencePreservesGeneralizedEigenvalues(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		d := randSPDMat(rng, n)
		e := randNNDMat(rng, n, n)
		// Random nonsingular V (diagonally boosted).
		v := dense.New(n, n)
		for i := range v.Data {
			v.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			v.Add(i, i, 3)
		}
		dT := dense.Mul(dense.Mul(v.T(), d), v)
		eT := dense.Mul(dense.Mul(v.T(), e), v)
		dT.Symmetrize()
		eT.Symmetrize()
		want := genEig(t, e, d)
		got := genEig(t, eT, dT)
		sort.Float64s(want)
		sort.Float64s(got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: eigenvalue %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestCongruencePreservesNND: VᵀWV is NND for NND W and ANY V, including
// rectangular and singular — the passivity-preservation mechanism.
func TestCongruencePreservesNND(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(n) // fewer columns: a size-reducing transform
		w := randNNDMat(rng, n, 1+rng.Intn(n))
		v := dense.New(n, k)
		for i := range v.Data {
			v.Data[i] = rng.NormFloat64()
		}
		x := dense.Mul(dense.Mul(v.T(), w), v)
		x.Symmetrize()
		return dense.IsNonNegDefinite(x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReducedPolesAreGeneralizedEigenvalues: the λ retained by Reduce
// (with everything kept) equal the eigenvalues of the pencil (E, D) of
// the internal blocks — "the poles of Y(s) occur where (D+sE) is
// singular" (Section 2).
func TestReducedPolesAreGeneralizedEigenvalues(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 6; trial++ {
		sys := randomSystem(rng, 2, 4+rng.Intn(8))
		model, _, err := Reduce(sys, Options{FMax: keepAllFMax})
		if err != nil {
			t.Fatal(err)
		}
		d := dense.NewFromRows(sys.D.Dense())
		e := dense.NewFromRows(sys.E.Dense())
		pencil := genEig(t, e, d)
		sort.Sort(sort.Reverse(sort.Float64Slice(pencil)))
		// Reduce keeps eigenvalues above λc ~ 0; compare the retained set
		// against the top of the pencil spectrum.
		for i, lam := range model.Lambda {
			if math.Abs(lam-pencil[i]) > 1e-7*(1+pencil[i]) {
				t.Fatalf("trial %d: pole λ%d = %v, pencil %v", trial, i, lam, pencil[i])
			}
		}
	}
}

// TestMomentsMatchTaylor: A′ and B′ equal the zeroth and first Taylor
// coefficients of Y(s) at s = 0 (the moments the Padé methods also
// match), for the transformed-but-unreduced system.
func TestMomentsMatchTaylor(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(83))
	sys := randomSystem(rng, 3, 12)
	tr, _, err := Transform1(sys, Options{FMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	y0, err := sys.Y(0)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-7
	yh, err := sys.Y(complex(h, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d := math.Abs(tr.APrime.At(i, j) - real(y0.At(i, j))); d > 1e-9*(1+math.Abs(real(y0.At(i, j)))) {
				t.Fatalf("A'(%d,%d) differs from Y(0) by %g", i, j, d)
			}
			fd := real(yh.At(i, j)-y0.At(i, j)) / h
			if d := math.Abs(tr.BPrime.At(i, j) - fd); d > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("B'(%d,%d) = %v, finite difference %v", i, j, tr.BPrime.At(i, j), fd)
			}
		}
	}
}

// TestRPrimeColumnAgainstDense verifies the streamed R′ columns against
// the dense formula R′ = L⁻¹(R − E D⁻¹ Q) (in the permuted internal
// space, checked via the projected admittance instead of raw columns):
// Y(s) = A′ + sB′ − s² R′ᵀ(I + sE′)⁻¹R′ must equal the exact Y(s).
func TestRPrimeColumnAgainstDense(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(84))
	sys := randomSystem(rng, 2, 10)
	tr, _, err := Transform1(sys, Options{FMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, m := sys.N, sys.M
	// Dense E′ via the operator.
	op := tr.EOp()
	eP := dense.New(n, n)
	src := make([]float64, n)
	dst := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range src {
			src[i] = 0
		}
		src[j] = 1
		op.Apply(dst, src)
		for i := 0; i < n; i++ {
			eP.Set(i, j, dst[i])
		}
	}
	// R′ columns.
	rP := dense.New(n, m)
	col := make([]float64, n)
	for j := 0; j < m; j++ {
		tr.RPrimeColumn(j, col)
		for i := 0; i < n; i++ {
			rP.Set(i, j, col[i])
		}
	}
	for _, sv := range []complex128{complex(0, 0.5), complex(0, 3)} {
		want, err := sys.Y(sv)
		if err != nil {
			t.Fatal(err)
		}
		// (I + sE′)⁻¹ R′ densely.
		a := dense.NewC(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := sv * complex(eP.At(i, j), 0)
				if i == j {
					v += 1
				}
				a.Set(i, j, v)
			}
		}
		f, err := dense.FactorCLU(a)
		if err != nil {
			t.Fatal(err)
		}
		got := dense.NewC(m, m)
		for j := 0; j < m; j++ {
			b := make([]complex128, n)
			for i := 0; i < n; i++ {
				b[i] = complex(rP.At(i, j), 0)
			}
			f.Solve(b)
			for i := 0; i < m; i++ {
				acc := complex(tr.APrime.At(i, j), 0) + sv*complex(tr.BPrime.At(i, j), 0)
				for k := 0; k < n; k++ {
					acc -= sv * sv * complex(rP.At(k, i), 0) * b[k]
				}
				got.Set(i, j, acc)
			}
		}
		if d := dense.MaxAbsDiff(got, want); d > 1e-8*(1+cNorm(want)) {
			t.Fatalf("s=%v: transformed Y differs from exact by %g", sv, d)
		}
	}
}
