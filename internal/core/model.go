package core

import (
	"fmt"
	"math"

	"repro/internal/dense"
)

// ReducedModel is the output of the PACT reduction: the admittance
//
//	Y(s) = A′ + sB′ − Σᵢ s² rᵢᵀrᵢ / (1 + sλᵢ)
//
// where rᵢ is row i of R (k×m) and λᵢ > 0 the retained eigenvalues of E′
// (poles at s = −1/λᵢ). A′ and B′ are the first two moments of the
// original admittance at s = 0, so the reduction is exact at DC and in
// the first-order term; all retained poles are real and negative, and the
// model is passive by construction.
type ReducedModel struct {
	M      int
	Lambda []float64 // descending; length k
	A, B   *dense.Mat
	R      *dense.Mat // k×m connection rows
}

// K returns the number of retained poles (= internal nodes of the
// realized network).
func (r *ReducedModel) K() int { return len(r.Lambda) }

// PoleFreqs returns the retained pole frequencies in Hz (1/(2πλ)),
// ascending in frequency.
func (r *ReducedModel) PoleFreqs() []float64 {
	out := make([]float64, len(r.Lambda))
	for i, l := range r.Lambda {
		out[i] = 1 / (2 * math.Pi * l)
	}
	return out
}

// Y evaluates the reduced multiport admittance at the complex frequency
// s.
func (r *ReducedModel) Y(s complex128) *dense.CMat {
	m := r.M
	y := dense.NewC(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			y.Set(i, j, complex(r.A.At(i, j), 0)+s*complex(r.B.At(i, j), 0))
		}
	}
	for p, lam := range r.Lambda {
		f := -(s * s) / (1 + s*complex(lam, 0))
		for i := 0; i < m; i++ {
			ri := r.R.At(p, i)
			if ri == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				y.Add(i, j, f*complex(ri*r.R.At(p, j), 0))
			}
		}
	}
	return y
}

// Matrices realizes the reduced model as (m+k)×(m+k) conductance and
// susceptance matrices with ports first. Each retained pole becomes one
// internal node; the free diagonal scaling of each internal row is chosen
// so that the internal capacitance diagonal equals the total coupling
// capacitance magnitude (αᵢ = Σⱼ|r_ij| / λᵢ), which realizes the internal
// node without a grounded capacitor — the convention that reproduces
// Eq. (20) of the paper.
func (r *ReducedModel) Matrices() (g, c *dense.Mat) {
	m, k := r.M, r.K()
	g = dense.New(m+k, m+k)
	c = dense.New(m+k, m+k)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			g.Set(i, j, r.A.At(i, j))
			c.Set(i, j, r.B.At(i, j))
		}
	}
	for p := 0; p < k; p++ {
		sumAbs := 0.0
		for j := 0; j < m; j++ {
			sumAbs += math.Abs(r.R.At(p, j))
		}
		alpha := 1.0
		if sumAbs > 0 {
			alpha = sumAbs / r.Lambda[p]
		}
		g.Set(m+p, m+p, alpha*alpha)
		c.Set(m+p, m+p, alpha*alpha*r.Lambda[p])
		for j := 0; j < m; j++ {
			v := alpha * r.R.At(p, j)
			c.Set(m+p, j, v)
			c.Set(j, m+p, v)
		}
	}
	return g, c
}

// CheckPassive verifies that the realized conductance and susceptance
// matrices are non-negative definite within tolerance — the
// necessary-and-sufficient passivity condition for RC multiports the
// paper builds on.
func (r *ReducedModel) CheckPassive(tol float64) bool {
	g, c := r.Matrices()
	return dense.IsNonNegDefinite(g, tol) && dense.IsNonNegDefinite(c, tol)
}

// Sparsify applies the RCFIT sparsity-enhancement heuristic to a
// symmetric realized matrix: every off-diagonal entry with
// |x_ij| < tol·√(x_ii·x_jj) is dropped and |x_ij| is added to both
// diagonal entries. The perturbation for each dropped pair,
// [[|x|, −x], [−x, |x|]], is non-negative definite, so passivity is
// preserved exactly. It returns the number of dropped entry pairs.
func Sparsify(x *dense.Mat, tol float64) int {
	if x.R != x.C {
		panic("core: Sparsify requires a square matrix")
	}
	n := x.R
	dropped := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := x.At(i, j)
			if v == 0 {
				continue
			}
			if math.Abs(v) < tol*math.Sqrt(math.Abs(x.At(i, i))*math.Abs(x.At(j, j))) {
				x.Set(i, j, 0)
				x.Set(j, i, 0)
				x.Add(i, i, math.Abs(v))
				x.Add(j, j, math.Abs(v))
				dropped++
			}
		}
	}
	return dropped
}

// String summarizes the model.
func (r *ReducedModel) String() string {
	return fmt.Sprintf("ReducedModel{ports: %d, poles: %d}", r.M, r.K())
}

// PoleResidue is one term of the partial-fraction form of the reduced
// admittance: near s = Pole, Y(s) ≈ Residue/(s − Pole) + regular part.
type PoleResidue struct {
	// Pole is the (real, negative) pole location in rad/s.
	Pole float64
	// Residue is the rank-one m×m residue matrix −rᵀr/λ³.
	Residue *dense.Mat
}

// PoleResidues returns the partial-fraction residues of the reduced
// model: for the term −s²rᵢᵀrᵢ/(1+sλᵢ) = −s²rᵢᵀrᵢ/(λᵢ(s+1/λᵢ)), the
// residue at s = −1/λᵢ is −rᵢᵀrᵢ/λᵢ³ (admittance residues of RC
// networks are negative; the corresponding impedance residues are
// positive).
func (r *ReducedModel) PoleResidues() []PoleResidue {
	out := make([]PoleResidue, 0, r.K())
	for p, lam := range r.Lambda {
		//lint:ignore defersmell each residue matrix is a returned value, not loop-local scratch
		res := dense.New(r.M, r.M)
		f := -1 / (lam * lam * lam)
		for i := 0; i < r.M; i++ {
			ri := r.R.At(p, i)
			for j := 0; j < r.M; j++ {
				res.Set(i, j, f*ri*r.R.At(p, j))
			}
		}
		out = append(out, PoleResidue{Pole: -1 / lam, Residue: res})
	}
	return out
}

// SParams converts a multiport admittance matrix to scattering parameters
// with real reference impedance z0 at every port:
//
//	S = (I − z0·Y)(I + z0·Y)⁻¹.
//
// For a passive network ‖S·a‖ ≤ ‖a‖ for every incident wave vector a.
func SParams(y *dense.CMat, z0 float64) (*dense.CMat, error) {
	if y.R != y.C {
		return nil, fmt.Errorf("core: SParams needs a square admittance matrix")
	}
	if z0 <= 0 {
		return nil, fmt.Errorf("core: reference impedance must be positive, got %g", z0)
	}
	m := y.R
	plus := dense.NewC(m, m)
	minus := dense.NewC(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := complex(z0, 0) * y.At(i, j)
			plus.Set(i, j, v)
			minus.Set(i, j, -v)
		}
		plus.Add(i, i, 1)
		minus.Add(i, i, 1)
	}
	f, err := dense.FactorCLU(plus)
	if err != nil {
		return nil, fmt.Errorf("core: I + z0·Y singular: %w", err)
	}
	// S = minus * plus⁻¹: solve plusᵀ colᵀ ... work column-wise on the
	// right factor: X = plus⁻¹ then S = minus·X; equivalently solve
	// plus·x_j = e_j and multiply.
	s := dense.NewC(m, m)
	col := make([]complex128, m)
	for j := 0; j < m; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.Solve(col)
		for i := 0; i < m; i++ {
			var acc complex128
			for k := 0; k < m; k++ {
				acc += minus.At(i, k) * col[k]
			}
			s.Set(i, j, acc)
		}
	}
	return s, nil
}
