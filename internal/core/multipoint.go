package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/resilience"
	"repro/internal/resilience/inject"
	"repro/internal/sparse"
)

// This file is the multi-expansion-point replacement for Transform 2.
//
// Single-point PACT keeps the dominant eigenvectors of E′ = L⁻¹EL⁻ᵀ:
// exact at s = 0 through two moments, but blind to where the ports
// actually drive the network at higher frequencies. The multi-point mode
// works on the same Transform-1 state and instead builds a projection
// basis from the internal responses (D + s₀E)⁻¹P at a small set of
// expansion points s₀ = j2πf (P = R − EX is the connection block
// Transform 1 already assembles). The candidate columns are unioned by a
// D-orthonormal modified Gram–Schmidt into V with VᵀDV = I, so the
// congruence-projected pencil is simply
//
//	Vᵀ(D + sE)V = I + sÊ,  Ê = VᵀEV  (symmetric, non-negative definite),
//
// and the eigendecomposition Ê = WΛWᵀ lands the projected internal term
// in exactly the single-point model form Σᵢ s²rᵢᵀrᵢ/(1+sλᵢ) with
// rᵢ = wᵢᵀVᵀP. Congruence on a non-negative definite pencil preserves
// non-negative definiteness, so the realized reduced model is passive by
// construction, shift set or not — the same argument as Transform 2,
// with V in place of the kept eigenvectors.
//
// Determinism: the shift set is canonicalized, candidate columns are
// generated into a fixed order (shift ascending → moment ascending → Re
// columns by port → Im columns by port), and the Gram–Schmidt union runs
// serially over that order. All parallelism lives in the factorizations
// and per-column slot writes, which are bit-identical at every
// GOMAXPROCS, so the projected model is too.

// CanonicalShifts returns the canonical form of a multi-point shift set:
// sorted ascending with exact duplicates dropped. Every consumer of
// Options.Shifts (the reduction itself, the service cache key) uses this
// form, so listing order never changes the model or splits cache
// entries. Returns an error for negative or non-finite entries.
func CanonicalShifts(shifts []float64) ([]float64, error) {
	out := make([]float64, 0, len(shifts))
	for _, f := range shifts {
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return nil, fmt.Errorf("core: expansion-point frequency %g outside [0, ∞)", f)
		}
		out = append(out, f)
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, f := range out {
		//lint:ignore floatcmp exact equality is the dedup contract: only bit-identical listing duplicates collapse, near-equal shifts are distinct expansion points
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup, nil
}

// connectionBlock assembles the m columns of P = R − EX in the permuted
// internal frame — the right-hand-side block RPrimeBlock forward-solves,
// kept unsolved here because the multi-point moments apply (D + s₀E)⁻¹
// themselves. Column j is owned by one goroutine, so the block is
// bit-identical at every GOMAXPROCS.
func (t *Transformed) connectionBlock(ctx context.Context) ([][]float64, error) {
	m, n := t.M, t.N
	back := make([]float64, m*n)
	out := make([][]float64, m)
	workers := par.Workers(m)
	wcs := make([]workCounters, workers)
	xbufs := make([][]float64, workers)
	for w := range xbufs {
		xbufs[w] = make([]float64, n)
	}
	err := par.ForWorkersCtx(ctx, m, func(w, j int) {
		col := back[j*n : (j+1)*n]
		out[j] = col
		x := t.columnX(j, xbufs[w], &wcs[w])
		t.ep.MulVec(col, x)
		wcs[w].matVecs++
		for i := range col {
			col[i] = -col[i]
		}
		cols, vals := t.rpT.Row(j)
		for p, i := range cols {
			col[i] += vals[p]
		}
	})
	t.stats.merge(wcs)
	if err != nil {
		return nil, resilience.Canceled(resilience.StageMultiPoint, ctx)
	}
	return out, nil
}

// alignUnionPositions maps every stored position of the union pattern to
// the corresponding stored position in a and b (-1 where the pattern has
// no entry) — the value-alignment idiom of the exact admittance path,
// reused here for the shifted factorizations D + s₀E.
func alignUnionPositions(pat, a, b *sparse.CSR) (aPos, bPos []int) {
	aPos = make([]int, pat.NNZ())
	bPos = make([]int, pat.NNZ())
	for p := range aPos {
		aPos[p] = -1
		bPos[p] = -1
	}
	for i := 0; i < pat.Rows; i++ {
		pa := a.RowPtr[i]
		pb := b.RowPtr[i]
		for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
			j := pat.Col[p]
			for pa < a.RowPtr[i+1] && a.Col[pa] < j {
				pa++
			}
			if pa < a.RowPtr[i+1] && a.Col[pa] == j {
				aPos[p] = pa
			}
			for pb < b.RowPtr[i+1] && b.Col[pb] < j {
				pb++
			}
			if pb < b.RowPtr[i+1] && b.Col[pb] == j {
				bPos[p] = pb
			}
		}
	}
	return aPos, bPos
}

// mulVecComplexReal computes dst = a·src for a real sparse matrix and a
// complex vector.
func mulVecComplexReal(a *sparse.CSR, dst, src []complex128) {
	for i := 0; i < a.Rows; i++ {
		var acc complex128
		cols, vals := a.Row(i)
		for p, j := range cols {
			acc += complex(vals[p], 0) * src[j]
		}
		dst[i] = acc
	}
}

// shiftedBasisState is the shared symbolic state of the per-shift
// factorizations: the union pattern of the permuted D and E, its
// analysis (one symbolic shared by every shift, as in YSweep), and the
// value alignment of both operands against the union storage.
type shiftedBasisState struct {
	sa         *chol.ShiftedAnalysis
	ws         *chol.FactorWorkspace
	dPos, ePos []int
}

// newShiftedBasisState analyzes the D/E union pattern once for all
// shifts. The Transform-1 frame is kept (order.Natural on the already
// permuted pattern is the identity), so candidate columns live in the
// same coordinates as dp, ep and the connection block.
func (t *Transformed) newShiftedBasisState() (*shiftedBasisState, error) {
	pat := sparse.PatternUnion(t.dp, t.ep)
	sym := order.Analyze(pat, order.Natural)
	sa, err := chol.AnalyzeShifted(pat, sym)
	if err != nil {
		return nil, err
	}
	dPos, ePos := alignUnionPositions(pat, t.dp, t.ep)
	return &shiftedBasisState{sa: sa, ws: sa.NewWorkspace(), dPos: dPos, ePos: ePos}, nil
}

// shiftCandidates generates the moment candidates of expansion point
// index k at frequency f (Hz): v₀ = (D+s₀E)⁻¹P and
// v_{j+1} = (D+s₀E)⁻¹(E v_j), returned as real columns in the fixed
// order moment → Re by port → Im by port (the DC shift has no imaginary
// part and reuses the real Transform-1 factor). ports[i] names the port
// that produced column i, for the cluster-wise basis thinning.
func (t *Transformed) shiftCandidates(sb *shiftedBasisState, k, moments int, f float64, pcols [][]float64) (cands [][]float64, ports []int, err error) {
	m, n := t.M, t.N
	if inject.Enabled && inject.ShouldFail(inject.MPShiftFactor, k) {
		return nil, nil, fmt.Errorf("core: injected shifted factorization failure at expansion point %g Hz: %w",
			f, chol.ErrNotPositiveDefinite)
	}
	if f == 0 {
		block := make([]float64, m*n)
		tmp := make([]float64, n)
		for mom := 0; mom < moments; mom++ {
			if mom == 0 {
				for j, col := range pcols {
					copy(block[j*n:(j+1)*n], col)
				}
			} else {
				for j := 0; j < m; j++ {
					col := block[j*n : (j+1)*n]
					t.ep.MulVec(tmp, col)
					copy(col, tmp)
				}
				t.stats.MatVecs += m
			}
			t.fact.SolveMulti(block, m)
			t.stats.Solves += m
			for j := 0; j < m; j++ {
				//lint:ignore defersmell the clone survives as a moment candidate for the basis union; block is the reused per-moment scratch
				cands = append(cands, append([]float64(nil), block[j*n:(j+1)*n]...))
				ports = append(ports, j)
			}
		}
		return cands, ports, nil
	}
	sv := complex(0, 2*math.Pi*f)
	val := func(p int) complex128 {
		var v complex128
		if q := sb.dPos[p]; q >= 0 {
			v += complex(t.dp.Val[q], 0)
		}
		if q := sb.ePos[p]; q >= 0 {
			v += sv * complex(t.ep.Val[q], 0)
		}
		return v
	}
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	t0 := time.Now()
	cf, err := sb.sa.Factorize(val, sb.ws)
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	t.stats.Stage.ShiftFactorNs += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, nil, fmt.Errorf("core: factorization of D+sE at expansion point %g Hz: %w", f, err)
	}
	z := make([]complex128, m*n)
	tmp := make([]complex128, n)
	for j, col := range pcols {
		for i, v := range col {
			z[j*n+i] = complex(v, 0)
		}
	}
	for mom := 0; mom < moments; mom++ {
		if mom > 0 {
			for j := 0; j < m; j++ {
				col := z[j*n : (j+1)*n]
				mulVecComplexReal(t.ep, tmp, col)
				copy(col, tmp)
			}
			t.stats.MatVecs += m
		}
		if serr := cf.SolveMulti(z, m); serr != nil {
			return nil, nil, fmt.Errorf("core: moment solves at expansion point %g Hz: %w", f, serr)
		}
		t.stats.Solves += m
		re := make([][]float64, m)
		im := make([][]float64, m)
		for j := 0; j < m; j++ {
			rc := make([]float64, n)
			ic := make([]float64, n)
			for i := 0; i < n; i++ {
				rc[i] = real(z[j*n+i])
				ic[i] = imag(z[j*n+i])
			}
			re[j], im[j] = rc, ic
		}
		cands = append(cands, re...)
		cands = append(cands, im...)
		for j := 0; j < m; j++ {
			ports = append(ports, j)
		}
		for j := 0; j < m; j++ {
			ports = append(ports, j)
		}
	}
	return cands, ports, nil
}

// mgsD thins candidate columns into a D-orthonormal basis by modified
// Gram–Schmidt in the D inner product ⟨u,v⟩ = uᵀDv, dropping a column
// when orthogonalization leaves less than droptol of its original
// D-norm. The loop is serial over the fixed candidate order, so the kept
// basis — and everything projected through it — is bit-identical at
// every GOMAXPROCS and invariant under shift listing order. Candidate
// slices are normalized in place and aliased by the returned basis.
func (t *Transformed) mgsD(cands [][]float64, droptol float64) [][]float64 {
	n := t.N
	var basis, wcache [][]float64
	w := make([]float64, n)
	for _, c := range cands {
		t.dp.MulVec(w, c)
		norm0 := math.Sqrt(sparse.Dot(c, w))
		if !(norm0 > 0) || math.IsInf(norm0, 0) {
			continue
		}
		orth := func() {
			for i, u := range basis {
				h := sparse.Dot(wcache[i], c)
				if h == 0 {
					continue
				}
				for r := range c {
					c[r] -= h * u[r]
				}
			}
		}
		orth()
		t.dp.MulVec(w, c)
		nrm2 := sparse.Dot(c, w)
		if !(nrm2 > 0) {
			continue
		}
		nrm := math.Sqrt(nrm2)
		if nrm < 0.5*norm0 {
			// Heavy cancellation: one reorthogonalization pass restores
			// D-orthogonality to working precision ("twice is enough").
			orth()
			t.dp.MulVec(w, c)
			nrm2 = sparse.Dot(c, w)
			if !(nrm2 > 0) {
				continue
			}
			nrm = math.Sqrt(nrm2)
		}
		if nrm <= droptol*norm0 {
			continue
		}
		inv := 1 / nrm
		for r := range c {
			c[r] *= inv
		}
		wc := make([]float64, n)
		t.dp.MulVec(wc, c)
		basis = append(basis, c)
		wcache = append(wcache, wc)
	}
	return basis
}

// clusterPorts groups the ports by electrical proximity on the exact
// port conductance block: weight(i,j) = |A′_ij|/√(A′_ii·A′_jj), the
// normalized DC coupling two ports see through the network (TurboMOR's
// notion of port locality, computed on the block Transform 1 already
// produced exactly).
func (t *Transformed) clusterPorts(k int) [][]int {
	a := t.APrime
	return order.ClusterGreedy(t.M, k, func(i, j int) float64 {
		v := math.Abs(a.At(i, j))
		d := a.At(i, i) * a.At(j, j)
		if d > 0 {
			return v / math.Sqrt(d)
		}
		return v
	})
}

// transform2MultiPoint is the multi-expansion-point Transform 2: moment
// candidates per shift, per-cluster thinning when port clustering is on,
// the global D-orthonormal union, and the congruence projection of the
// (D, E) pencil onto it. A shift whose factorization fails is dropped
// with a recorded Recovery (the surviving shifts still span a valid
// congruence basis); only when every shift fails does the stage return a
// typed StageError. Cancellation is terminal immediately.
func (t *Transformed) transform2MultiPoint(ctx context.Context, opts Options) (*ReducedModel, error) {
	opts = opts.withDefaults()
	if opts.FMax <= 0 {
		return nil, fmt.Errorf("core: Options.FMax must be positive, got %g", opts.FMax)
	}
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, fmt.Errorf("core: Options.Tol must be in (0,1), got %g", opts.Tol)
	}
	m, n := t.M, t.N
	stats := t.stats
	if n == 0 {
		return &ReducedModel{M: m, A: t.APrime, B: t.BPrime, R: dense.New(0, m)}, nil
	}
	shifts, err := CanonicalShifts(opts.Shifts)
	if err != nil {
		return nil, err
	}
	if len(shifts) == 0 {
		return nil, fmt.Errorf("core: multi-point mode needs at least one expansion point")
	}
	stats.Shifts = len(shifts)

	pcols, err := t.connectionBlock(ctx)
	if err != nil {
		return nil, err
	}
	sb, err := t.newShiftedBasisState()
	if err != nil {
		return nil, fmt.Errorf("core: shifted symbolic analysis: %w", err)
	}

	// Candidate generation, shift by shift in canonical order. The
	// degradation ladder lives here: a failed shift contributes nothing
	// but does not kill the reduction while any shift survives.
	var cands [][]float64
	var ports []int
	var attempts []resilience.Attempt
	for k, f := range shifts {
		if cerr := ctx.Err(); cerr != nil {
			return nil, resilience.Canceled(resilience.StageMultiPoint, ctx)
		}
		sc, sp, serr := t.shiftCandidates(sb, k, opts.ShiftMoments, f, pcols)
		if serr != nil {
			if resilience.IsCancellation(serr) {
				return nil, resilience.Canceled(resilience.StageMultiPoint, ctx)
			}
			attempts = append(attempts, resilience.Attempt{
				Action: fmt.Sprintf("factorize(D+s₀E), f=%g Hz", f),
				Err:    serr,
			})
			stats.ShiftsDropped++
			continue
		}
		cands = append(cands, sc...)
		ports = append(ports, sp...)
	}
	if stats.ShiftsDropped == len(shifts) {
		return nil, resilience.NewStageError(resilience.StageMultiPoint,
			"every expansion point failed to factor", attempts, attempts[len(attempts)-1].Err)
	}
	if stats.ShiftsDropped > 0 {
		stats.Recoveries = append(stats.Recoveries, resilience.Recovery{
			Stage:    resilience.StageMultiPoint,
			Action:   fmt.Sprintf("degraded to %d of %d expansion points", len(shifts)-stats.ShiftsDropped, len(shifts)),
			Attempts: stats.ShiftsDropped + 1,
			Reason:   attempts[0].Err.Error(),
		})
	}
	stats.BasisColumns = len(cands)

	// Basis union. With port clustering the candidates thin per cluster
	// first (each cluster's Gram–Schmidt sees only its own columns —
	// the quadratic cost drops by the cluster count), then the surviving
	// columns union globally in fixed cluster order.
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	u0 := time.Now()
	var basis [][]float64
	if opts.PortClusters > 1 && m > opts.PortClusters {
		clusters := t.clusterPorts(opts.PortClusters)
		stats.PortClusters = len(clusters)
		inCluster := make([]int, m)
		for ci, cl := range clusters {
			for _, p := range cl {
				inCluster[p] = ci
			}
		}
		var merged [][]float64
		for ci := range clusters {
			var sub [][]float64
			for i, c := range cands {
				if inCluster[ports[i]] == ci {
					sub = append(sub, c)
				}
			}
			merged = append(merged, t.mgsD(sub, opts.BasisDropTol)...)
		}
		basis = t.mgsD(merged, opts.BasisDropTol)
	} else {
		basis = t.mgsD(cands, opts.BasisDropTol)
	}
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	stats.Stage.BasisUnionNs += time.Since(u0).Nanoseconds()
	stats.BasisKept = len(basis)
	q := len(basis)
	if q == 0 {
		return nil, resilience.NewStageError(resilience.StageMultiPoint,
			"basis union kept no columns", attempts, fmt.Errorf("core: all %d candidates dropped", len(cands)))
	}

	// Projection: Ê = VᵀEV and R̂ = VᵀP. Column j of each owns its slot
	// writes (SetSym mirrors i ≤ j), so both are bit-identical at every
	// GOMAXPROCS; symmetry of Ê is constructional.
	ev := make([][]float64, q)
	merr := par.ForWorkersCtx(ctx, q, func(_, j int) {
		e := make([]float64, n)
		t.ep.MulVec(e, basis[j])
		ev[j] = e
	})
	if merr != nil {
		return nil, resilience.Canceled(resilience.StageMultiPoint, ctx)
	}
	stats.MatVecs += q
	eHat := dense.New(q, q)
	par.ForWorkers(q, func(_, j int) {
		for i := 0; i <= j; i++ {
			eHat.SetSym(i, j, sparse.Dot(basis[i], ev[j]))
		}
	})
	rHat := dense.New(q, m)
	par.ForWorkers(m, func(_, j int) {
		for i := 0; i < q; i++ {
			rHat.Set(i, j, sparse.Dot(basis[i], pcols[j]))
		}
	})
	if check.Enabled {
		check.Symmetric("multi-point projected pencil Ê = VᵀEV", eHat, check.DefaultTol)
		check.NonNegDef("multi-point projected pencil Ê = VᵀEV", eHat, check.DefaultTol)
	}

	if cerr := ctx.Err(); cerr != nil {
		return nil, resilience.Canceled(resilience.StageMultiPoint, ctx)
	}
	vals, vecs, err := dense.SymEig(eHat, true)
	if err != nil {
		return nil, fmt.Errorf("core: eigensolve of projected Ê: %w", err)
	}
	// Keep λ ≥ λ_c descending — the same frequency cutoff as the
	// single-point path, so every retained pole is strictly positive and
	// the realized internal nodes are well defined.
	var keep []int
	for i := q - 1; i >= 0; i-- {
		if vals[i] >= stats.LambdaC {
			keep = append(keep, i)
		}
	}
	k := len(keep)
	outVals := make([]float64, k)
	rk := dense.New(k, m)
	for c, idx := range keep {
		outVals[c] = vals[idx]
		for j := 0; j < m; j++ {
			s := 0.0
			for i := 0; i < q; i++ {
				s += vecs.At(i, idx) * rHat.At(i, j)
			}
			rk.Set(c, j, s)
		}
	}
	if opts.MaxPoles > 0 && k > opts.MaxPoles {
		outVals, rk = selectStrongestPoles(outVals, rk, opts.MaxPoles, opts.FMax)
		k = len(outVals)
	}
	if check.Enabled {
		check.PoleRealNonneg("multi-point retained eigenvalues of Ê", outVals)
	}
	stats.PolesFound = k

	model := &ReducedModel{M: m, Lambda: outVals, A: t.APrime, B: t.BPrime, R: rk}
	if opts.ResiduePruneTol > 0 && k > 0 {
		model = pruneWeakPoles(model, opts, stats)
	}
	if check.Enabled {
		gr, cr := model.Matrices()
		check.ReducedPassive("multi-point realized reduced model", gr, cr, check.DefaultTol)
	}
	return model, nil
}

// selectStrongestPoles enforces an opts.MaxPoles budget on the
// multi-point model. The single-point path truncates by eigenvalue
// (keep the slowest poles); with hundreds of ports that wastes budget
// on slow modes the ports barely couple to. Here the budget goes to
// the poles with the largest worst-case contribution to Y(s) over the
// band [0, ω_max]: the pole term s²rᵢᵀrᵢ/(1+sλᵢ) peaks at the band
// edge with magnitude ω²‖rᵢ‖²/√(1+(ωλᵢ)²), ω = 2π·FMax. Selection is
// by that score, ties broken toward the slower pole, and the kept set
// is re-sorted λ-descending so the model keeps the ordering every
// consumer (and check.PoleRealNonneg) expects. Dropping rows of R_k is
// a congruence restriction, so passivity is untouched.
func selectStrongestPoles(vals []float64, rk *dense.Mat, budget int, fmax float64) ([]float64, *dense.Mat) {
	k, m := len(vals), rk.C
	w := 2 * math.Pi * fmax
	idx := make([]int, k)
	score := make([]float64, k)
	for i := range idx {
		idx[i] = i
		nrm2 := 0.0
		for j := 0; j < m; j++ {
			v := rk.At(i, j)
			nrm2 += v * v
		}
		score[i] = w * w * nrm2 / math.Sqrt(1+w*vals[i]*w*vals[i])
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
	sel := idx[:budget]
	// vals arrives λ-descending, so ascending index order restores it.
	sort.Ints(sel)
	outVals := make([]float64, budget)
	out := dense.New(budget, m)
	for c, i := range sel {
		outVals[c] = vals[i]
		for j := 0; j < m; j++ {
			out.Set(c, j, rk.At(i, j))
		}
	}
	return outVals, out
}
