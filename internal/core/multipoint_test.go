package core

import (
	"math"
	"runtime"
	"testing"
)

// Determinism pins of the multi-point mode: the model must be
// bit-identical at every GOMAXPROCS, for every shift count, clustered
// or not, and invariant under the listing order of the shift set. These
// are Float64bits pins, not tolerance comparisons — any reduction in
// the ordering guarantees (candidate order, serial Gram–Schmidt,
// per-slot parallel writes) shows up as a hard failure here.

func multiPointFixture(t *testing.T) *System {
	t.Helper()
	return gradedGridSystem(t, 10, 10, 2, 2, 2)
}

func reduceMP(t *testing.T, sys *System, o Options) *ReducedModel {
	t.Helper()
	model, _, err := Reduce(sys, o)
	if err != nil {
		t.Fatalf("multi-point reduce: %v", err)
	}
	return model
}

func pinModelBits(t *testing.T, name string, got, want *ReducedModel) {
	t.Helper()
	if got.K() != want.K() {
		t.Fatalf("%s: order %d vs %d", name, got.K(), want.K())
	}
	bitsEqualSlice(t, name+" Lambda", got.Lambda, want.Lambda)
	bitsEqualSlice(t, name+" A", got.A.Data, want.A.Data)
	bitsEqualSlice(t, name+" B", got.B.Data, want.B.Data)
	bitsEqualSlice(t, name+" R", got.R.Data, want.R.Data)
}

// TestMultiPointDeterministicAcrossGOMAXPROCS sweeps GOMAXPROCS
// {1,2,4,8} × shift counts {1,2,4} × clustered/unclustered and pins the
// model of every combination against its GOMAXPROCS=1 reference. Not
// t.Parallel: it mutates the process-wide GOMAXPROCS.
func TestMultiPointDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sys := multiPointFixture(t)
	fmax := 0.05
	shiftSets := [][]float64{
		{0},
		{0, fmax},
		{0, fmax / 30, fmax / 5, fmax},
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for si, shifts := range shiftSets {
		for _, clusters := range []int{0, 2} {
			o := Options{FMax: fmax, Tol: 0.05, Shifts: shifts, PortClusters: clusters, MaxPoles: 12}
			runtime.GOMAXPROCS(1)
			ref := reduceMP(t, sys, o)
			for _, procs := range []int{2, 4, 8} {
				runtime.GOMAXPROCS(procs)
				got := reduceMP(t, sys, o)
				name := "shifts#" + string(rune('1'+si)) + "/clusters" + string(rune('0'+clusters)) +
					"/procs" + string(rune('0'+procs))
				pinModelBits(t, name, got, ref)
			}
		}
	}
}

// TestMultiPointShiftOrderInvariance pins that listing the expansion
// points in any order produces the bit-identical model — the
// CanonicalShifts contract observed end to end.
func TestMultiPointShiftOrderInvariance(t *testing.T) {
	t.Parallel()
	sys := multiPointFixture(t)
	fmax := 0.05
	base := Options{FMax: fmax, Tol: 0.05, MaxPoles: 12}
	perms := [][]float64{
		{0, fmax / 10, fmax},
		{fmax, 0, fmax / 10},
		{fmax / 10, fmax, 0, fmax}, // duplicate collapses too
	}
	o := base
	o.Shifts = perms[0]
	ref := reduceMP(t, sys, o)
	for i, p := range perms[1:] {
		o := base
		o.Shifts = p
		got := reduceMP(t, sys, o)
		pinModelBits(t, "permutation "+string(rune('1'+i)), got, ref)
	}
}

func TestCanonicalShifts(t *testing.T) {
	t.Parallel()
	got, err := CanonicalShifts([]float64{3, 0, 1e9, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 3, 1e9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range [][]float64{{-1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := CanonicalShifts(bad); err == nil {
			t.Fatalf("CanonicalShifts(%v) must reject", bad)
		}
	}
}

// TestMultiPointMatchesSinglePointSubspace pins the congruence algebra:
// with the DC shift only and enough moments to saturate, the multi-point
// model must reproduce the exact admittance as well as its basis allows,
// and stay passive. (The accuracy ordering against single-point is pinned
// by the oracle suite; this is the smoke test of the projection itself.)
func TestMultiPointBasicAccuracy(t *testing.T) {
	t.Parallel()
	sys := gradedLadderSystem(t, 40, 2)
	fmax := 0.05
	model := reduceMP(t, sys, Options{FMax: fmax, Tol: 0.05, Shifts: []float64{0, fmax}, ShiftMoments: 3})
	e, err := OracleMaxRelErr(sys, model, OracleFreqs(fmax, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if e > 5e-2 {
		t.Fatalf("saturated multi-point model error %.3e, want < 5e-2 (the Tol-band target)", e)
	}
	if !model.CheckPassive(1e-9) {
		t.Fatal("multi-point model not passive")
	}
}

// TestMultiPointPortlessSystem pins the m = 0 / n = 0 edges of the
// multi-point path.
func TestMultiPointTrivialSystems(t *testing.T) {
	t.Parallel()
	// All nodes are ports: no internal block, model must be exact A/B.
	st := newRCStamper(3)
	st.resistor(0, 1, 1)
	st.resistor(1, 2, 2)
	st.resistor(2, -1, 1)
	st.capacitor(0, 1)
	st.capacitor(2, 0.5)
	sys := st.system(t, []int{0, 1, 2})
	if sys.N != 0 {
		t.Fatalf("fixture has %d internal nodes, want 0", sys.N)
	}
	model := reduceMP(t, sys, Options{FMax: 1, Tol: 0.05, Shifts: []float64{0, 1}})
	if model.K() != 0 {
		t.Fatalf("trivial system produced %d poles", model.K())
	}
	if !model.CheckPassive(1e-12) {
		t.Fatal("trivial multi-point model not passive")
	}
}
