package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dense"
)

// This file is the brute-force accuracy oracle of the reduction: the
// exact multiport admittance evaluated through a dense complex LU of the
// full internal block, sharing no code with the sparse evaluation path
// (no ordering, no symbolic analysis, no sparse factorization kernels).
// At O(n³) per frequency it is only usable on small systems — which is
// exactly the point: it is the independent reference the single-point,
// multi-point and clustered multi-point reductions are all measured
// against in the oracle test suite and the experiments tables.

// OracleY evaluates Y(s) = A + sB − (Q+sR)ᵀ(D+sE)⁻¹(Q+sR) by dense
// complex LU, entirely independent of the sparse admittance path.
func OracleY(sys *System, sv complex128) (*dense.CMat, error) {
	m, n := sys.M, sys.N
	y := dense.NewC(m, m)
	for i := 0; i < m; i++ {
		cols, vals := sys.A.Row(i)
		for p, j := range cols {
			y.Add(i, j, complex(vals[p], 0))
		}
		cols, vals = sys.B.Row(i)
		for p, j := range cols {
			y.Add(i, j, sv*complex(vals[p], 0))
		}
	}
	if n == 0 {
		return y, nil
	}
	pencil := dense.NewC(n, n)
	for i := 0; i < n; i++ {
		cols, vals := sys.D.Row(i)
		for p, j := range cols {
			pencil.Add(i, j, complex(vals[p], 0))
		}
		cols, vals = sys.E.Row(i)
		for p, j := range cols {
			pencil.Add(i, j, sv*complex(vals[p], 0))
		}
	}
	f, err := dense.FactorCLU(pencil)
	if err != nil {
		return nil, fmt.Errorf("core: oracle pencil D+sE singular at s=%v: %w", sv, err)
	}
	qT := sys.Q.Transpose() // m×n: row j = column j of Q
	rT := sys.R.Transpose()
	b := make([]complex128, n)
	for j := 0; j < m; j++ {
		for i := range b {
			b[i] = 0
		}
		cols, vals := qT.Row(j)
		for p, i := range cols {
			b[i] += complex(vals[p], 0)
		}
		cols, vals = rT.Row(j)
		for p, i := range cols {
			b[i] += sv * complex(vals[p], 0)
		}
		f.Solve(b)
		for i := 0; i < m; i++ {
			var acc complex128
			cols, vals := qT.Row(i)
			for p, k := range cols {
				acc += complex(vals[p], 0) * b[k]
			}
			cols, vals = rT.Row(i)
			for p, k := range cols {
				acc += sv * complex(vals[p], 0) * b[k]
			}
			y.Add(i, j, -acc)
		}
	}
	return y, nil
}

// cFrob returns the Frobenius norm of a complex matrix.
func cFrob(a *dense.CMat) float64 {
	s := 0.0
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			v := cmplx.Abs(a.At(i, j))
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// OracleRelErr measures ‖Y_model(s) − Y_exact(s)‖_F / ‖Y_exact(s)‖_F at
// one real frequency (Hz) against the dense oracle.
func OracleRelErr(sys *System, model *ReducedModel, freq float64) (float64, error) {
	sv := complex(0, 2*math.Pi*freq)
	exact, err := OracleY(sys, sv)
	if err != nil {
		return 0, err
	}
	got := model.Y(sv)
	diff := dense.NewC(exact.R, exact.C)
	for i := 0; i < exact.R; i++ {
		for j := 0; j < exact.C; j++ {
			diff.Set(i, j, got.At(i, j)-exact.At(i, j))
		}
	}
	denom := cFrob(exact)
	if denom == 0 {
		return cFrob(diff), nil
	}
	return cFrob(diff) / denom, nil
}

// OracleMaxRelErr is the maximum OracleRelErr over a frequency sweep —
// the wide-band accuracy figure the oracle tests and the experiments
// tables report.
func OracleMaxRelErr(sys *System, model *ReducedModel, freqs []float64) (float64, error) {
	worst := 0.0
	for _, f := range freqs {
		e, err := OracleRelErr(sys, model, f)
		if err != nil {
			return 0, err
		}
		if e > worst {
			worst = e
		}
	}
	return worst, nil
}

// OracleMaxRelErrs sweeps freqs once, factoring the dense pencil a
// single time per frequency, and returns the worst relative error of
// each model — the cheap way to measure single-point, multi-point and
// clustered reductions against one oracle pass.
func OracleMaxRelErrs(sys *System, models []*ReducedModel, freqs []float64) ([]float64, error) {
	worst := make([]float64, len(models))
	for _, f := range freqs {
		sv := complex(0, 2*math.Pi*f)
		exact, err := OracleY(sys, sv)
		if err != nil {
			return nil, err
		}
		denom := cFrob(exact)
		for mi, model := range models {
			got := model.Y(sv)
			d := 0.0
			for i := 0; i < exact.R; i++ {
				for j := 0; j < exact.C; j++ {
					v := cmplx.Abs(got.At(i, j) - exact.At(i, j))
					d += v * v
				}
			}
			e := math.Sqrt(d)
			if denom > 0 {
				e /= denom
			}
			if e > worst[mi] {
				worst[mi] = e
			}
		}
	}
	return worst, nil
}

// OracleFreqs returns count log-spaced frequencies from fmax/10^decades
// up to fmax inclusive — the standard sweep the oracle suite measures
// over.
func OracleFreqs(fmax float64, decades float64, count int) []float64 {
	if count < 2 {
		return []float64{fmax}
	}
	out := make([]float64, count)
	lo := math.Log10(fmax) - decades
	step := decades / float64(count-1)
	for i := range out {
		out[i] = math.Pow(10, lo+float64(i)*step)
	}
	out[count-1] = fmax
	return out
}
