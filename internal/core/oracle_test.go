package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// The accuracy-oracle suite: deterministic graded fixtures whose time
// constants span several decades — the workload single-expansion-point
// reduction is known to struggle with — measured against the dense
// brute-force Y(s) oracle. Every test pins the headline claim of the
// multi-point mode: at equal reduced order, the multi-point model is at
// least as accurate as the single-point model over the band, and on the
// wide-band many-port bench strictly better.

// rcStamper collects grounded G and C stamps; j == -1 means ground.
type rcStamper struct {
	gb, cb *sparse.Builder
}

func newRCStamper(tot int) *rcStamper {
	return &rcStamper{gb: sparse.NewBuilder(tot, tot), cb: sparse.NewBuilder(tot, tot)}
}

func (s *rcStamper) resistor(i, j int, res float64) {
	cond := 1 / res
	s.gb.Add(i, i, cond)
	if j >= 0 {
		s.gb.Add(j, j, cond)
		s.gb.AddSym(i, j, -cond)
	}
}

func (s *rcStamper) capacitor(i int, cap float64) {
	s.cb.Add(i, i, cap)
}

func (s *rcStamper) system(t *testing.T, ports []int) *System {
	t.Helper()
	sys, err := Partition(s.gb.Build(), s.cb.Build(), ports)
	if err != nil {
		t.Fatalf("partition fixture: %v", err)
	}
	return sys
}

// gradedLadderSystem is an nn-node RC chain whose segment resistance
// grows by `decades` decades from the driven end to the far end, ports
// at both ends. Unit-scale parts, so the interesting band sits near
// f ~ 1/(2π) in fixture units.
func gradedLadderSystem(t *testing.T, nn int, decades float64) *System {
	st := newRCStamper(nn)
	for i := 0; i+1 < nn; i++ {
		st.resistor(i, i+1, math.Pow(10, decades*float64(i)/float64(nn-1)))
	}
	for i := 0; i < nn; i++ {
		st.capacitor(i, 1)
	}
	return st.system(t, []int{0, nn - 1})
}

// gradedGridSystem is the in-package twin of netgen's wide-band deck:
// an nx×ny grid with resistances graded along x and capacitances graded
// along y, ports on a px×py subgrid spread evenly over the interior
// (same tap formula as netgen.WideBand, in fixture units R=C=1 at the
// fast corner).
func gradedGridSystem(t *testing.T, nx, ny, px, py int, decades float64) *System {
	st := newRCStamper(nx * ny)
	id := func(x, y int) int { return y*nx + x }
	gradeX := func(x float64) float64 { return math.Pow(10, decades*x/float64(nx-1)) }
	gradeY := func(y float64) float64 { return math.Pow(10, decades*y/float64(ny-1)) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				st.resistor(id(x, y), id(x+1, y), gradeX(float64(x)+0.5))
			}
			if y+1 < ny {
				st.resistor(id(x, y), id(x, y+1), gradeX(float64(x)))
			}
			st.capacitor(id(x, y), gradeY(float64(y)))
		}
	}
	tap := func(p, pn, nn int) int {
		den := pn - 1
		if pn == 1 {
			den = 1
		}
		return (p*(nn-1) + (pn-1)/2) / den
	}
	ports := make([]int, 0, px*py)
	for py_ := 0; py_ < py; py_++ {
		for px_ := 0; px_ < px; px_++ {
			ports = append(ports, id(tap(px_, px, nx), tap(py_, py, ny)))
		}
	}
	return st.system(t, ports)
}

// gradedMeshSystem is a 3D nx×ny×nz mesh with edge resistance graded
// along z and unit node capacitance, ports at the eight corners — the
// substrate-style fixture of the suite.
func gradedMeshSystem(t *testing.T, nx, ny, nz int, decades float64) *System {
	st := newRCStamper(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	grade := func(z float64) float64 { return math.Pow(10, decades*z/float64(nz-1)) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					st.resistor(id(x, y, z), id(x+1, y, z), grade(float64(z)))
				}
				if y+1 < ny {
					st.resistor(id(x, y, z), id(x, y+1, z), grade(float64(z)))
				}
				if z+1 < nz {
					st.resistor(id(x, y, z), id(x, y, z+1), grade(float64(z)+0.5))
				}
				st.capacitor(id(x, y, z), 1)
			}
		}
	}
	var ports []int
	for _, z := range []int{0, nz - 1} {
		for _, y := range []int{0, ny - 1} {
			for _, x := range []int{0, nx - 1} {
				ports = append(ports, id(x, y, z))
			}
		}
	}
	return st.system(t, ports)
}

// comparePointModes reduces sys multi-point with o, then single-point
// at the same reduced order, and measures both against the oracle over
// freqs. When the single-point spectrum holds fewer poles above the
// cutoff than the multi-point basis produced, the comparison equalizes
// downward so the orders always match exactly.
func comparePointModes(t *testing.T, sys *System, o Options, freqs []float64) (single, multi *ReducedModel, errSingle, errMulti float64) {
	t.Helper()
	multi, mstats, err := Reduce(sys, o)
	if err != nil {
		t.Fatalf("multi-point reduce: %v", err)
	}
	so := o
	so.Shifts, so.PortClusters = nil, 0
	so.MaxPoles = multi.K()
	single, _, err = Reduce(sys, so)
	if err != nil {
		t.Fatalf("single-point reduce: %v", err)
	}
	if single.K() < multi.K() {
		mo := o
		mo.MaxPoles = single.K()
		multi, mstats, err = Reduce(sys, mo)
		if err != nil {
			t.Fatalf("multi-point reduce at equalized order %d: %v", single.K(), err)
		}
	}
	if single.K() != multi.K() {
		t.Fatalf("reduced orders differ: single %d, multi %d", single.K(), multi.K())
	}
	if mstats.Shifts != len(mustCanonical(t, o.Shifts)) {
		t.Fatalf("stats.Shifts = %d, want %d", mstats.Shifts, len(mustCanonical(t, o.Shifts)))
	}
	if mstats.BasisColumns <= 0 || mstats.BasisKept <= 0 || mstats.BasisKept > mstats.BasisColumns {
		t.Fatalf("implausible basis accounting: %d generated, %d kept", mstats.BasisColumns, mstats.BasisKept)
	}
	errs, err := OracleMaxRelErrs(sys, []*ReducedModel{single, multi}, freqs)
	if err != nil {
		t.Fatalf("oracle sweep: %v", err)
	}
	if !multi.CheckPassive(1e-9) {
		t.Fatal("multi-point reduced model is not passive")
	}
	return single, multi, errs[0], errs[1]
}

func mustCanonical(t *testing.T, shifts []float64) []float64 {
	t.Helper()
	cs, err := CanonicalShifts(shifts)
	if err != nil {
		t.Fatalf("canonical shifts: %v", err)
	}
	return cs
}

func TestMultiPointOracleLadder(t *testing.T) {
	t.Parallel()
	sys := gradedLadderSystem(t, 64, 3)
	fmax := 0.05
	o := Options{FMax: fmax, Tol: 0.05, Shifts: []float64{0, fmax}, MaxPoles: 6, DenseThreshold: 1000}
	freqs := OracleFreqs(fmax, 3, 7)
	_, _, errSingle, errMulti := comparePointModes(t, sys, o, freqs)
	t.Logf("ladder: order %d, single %.3e, multi %.3e", 6, errSingle, errMulti)
	if errMulti > errSingle {
		t.Fatalf("multi-point worse than single-point at equal order: %.3e > %.3e", errMulti, errSingle)
	}
}

func TestMultiPointOracleGrid(t *testing.T) {
	t.Parallel()
	sys := gradedGridSystem(t, 12, 12, 2, 2, 2)
	fmax := 0.05
	o := Options{FMax: fmax, Tol: 0.05, Shifts: []float64{0, fmax / 10, fmax}, MaxPoles: 10, DenseThreshold: 1000}
	freqs := OracleFreqs(fmax, 3, 7)
	_, _, errSingle, errMulti := comparePointModes(t, sys, o, freqs)
	t.Logf("grid: single %.3e, multi %.3e", errSingle, errMulti)
	if errMulti > errSingle {
		t.Fatalf("multi-point worse than single-point at equal order: %.3e > %.3e", errMulti, errSingle)
	}
}

func TestMultiPointOracleMesh(t *testing.T) {
	t.Parallel()
	sys := gradedMeshSystem(t, 5, 5, 3, 2)
	fmax := 0.05
	o := Options{FMax: fmax, Tol: 0.05, Shifts: []float64{0, fmax}, MaxPoles: 16, DenseThreshold: 1000}
	freqs := OracleFreqs(fmax, 3, 7)
	_, _, errSingle, errMulti := comparePointModes(t, sys, o, freqs)
	t.Logf("mesh: single %.3e, multi %.3e", errSingle, errMulti)
	if errMulti > errSingle {
		t.Fatalf("multi-point worse than single-point at equal order: %.3e > %.3e", errMulti, errSingle)
	}
}

// TestMultiPointOracleWideBand256 is the acceptance bench of the
// multi-point mode: the 256-port wide-band graded grid (the in-package
// twin of `netgen -kind wideband -ports 256`), reduced single-point,
// multi-point, and cluster-thinned multi-point at one equal order and
// measured against the dense oracle. Multi-point must win strictly;
// the clustered variant must not give the win back.
func TestMultiPointOracleWideBand256(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("dense 320-node oracle sweep is slow under -short")
	}
	sys := gradedGridSystem(t, 24, 24, 16, 16, 2)
	if sys.M != 256 {
		t.Fatalf("fixture has %d ports, want 256", sys.M)
	}
	fmax := 0.05
	o := Options{FMax: fmax, Tol: 0.05, Shifts: []float64{0, fmax}, MaxPoles: 48, DenseThreshold: 1000}
	freqs := OracleFreqs(fmax, 3, 5)
	single, multi, errSingle, errMulti := comparePointModes(t, sys, o, freqs)
	if errMulti >= errSingle {
		t.Fatalf("multi-point must beat single-point on the wide-band 256-port bench: multi %.3e, single %.3e",
			errMulti, errSingle)
	}

	co := o
	co.PortClusters = 16
	co.MaxPoles = multi.K()
	clustered, cstats, err := Reduce(sys, co)
	if err != nil {
		t.Fatalf("clustered multi-point reduce: %v", err)
	}
	if cstats.PortClusters != 16 {
		t.Fatalf("stats.PortClusters = %d, want 16", cstats.PortClusters)
	}
	if clustered.K() != multi.K() {
		t.Fatalf("clustered order %d differs from unclustered %d", clustered.K(), multi.K())
	}
	if !clustered.CheckPassive(1e-9) {
		t.Fatal("clustered multi-point reduced model is not passive")
	}
	errs, err := OracleMaxRelErrs(sys, []*ReducedModel{clustered}, freqs)
	if err != nil {
		t.Fatalf("oracle sweep: %v", err)
	}
	errClustered := errs[0]
	t.Logf("wideband256: order %d — single %.3e, multi %.3e, clustered multi %.3e",
		single.K(), errSingle, errMulti, errClustered)
	if errClustered >= errSingle {
		t.Fatalf("clustered multi-point must still beat single-point: clustered %.3e, single %.3e",
			errClustered, errSingle)
	}
}

// TestMultiPointOracleAgreesWithIndependentSchur pins the oracle itself
// against the pre-existing dense Schur cross-check on random systems,
// so an oracle bug cannot silently validate the reductions.
func TestMultiPointOracleAgreesWithIndependentSchur(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1811))
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(rng, 3, 9)
		f := math.Pow(10, -2+3*rng.Float64())
		sv := complex(0, 2*math.Pi*f)
		want := schurY(sys, sv)
		got, err := OracleY(sys, sv)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		scale := cNorm(want)
		for i := 0; i < want.R; i++ {
			for j := 0; j < want.C; j++ {
				if d := cmplx.Abs(got.At(i, j) - want.At(i, j)); d > 1e-9*scale {
					t.Fatalf("trial %d: oracle Y[%d,%d] = %v, schur %v (|Δ| = %.3e)",
						trial, i, j, got.At(i, j), want.At(i, j), d)
				}
			}
		}
	}
}

func TestOracleFreqsSpansBand(t *testing.T) {
	t.Parallel()
	fs := OracleFreqs(1e9, 3, 7)
	if len(fs) != 7 {
		t.Fatalf("got %d freqs, want 7", len(fs))
	}
	if fs[6] != 1e9 {
		t.Fatalf("sweep must end at fmax exactly, got %g", fs[6])
	}
	if math.Abs(fs[0]-1e6) > 1 {
		t.Fatalf("sweep must start 3 decades down, got %g", fs[0])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("sweep not increasing at %d: %g then %g", i, fs[i-1], fs[i])
		}
	}
}
