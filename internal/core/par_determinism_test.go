package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// bitsEqualSlice fails if the two float slices differ in any bit — the
// parallel-determinism contract of the par worker pool.
func bitsEqualSlice(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestTransform1DeterministicAcrossGOMAXPROCS runs the parallel first
// transform at GOMAXPROCS 1 and 4 and requires bit-identical port blocks
// and R′ columns: every column's arithmetic is independent and lands in
// caller-owned slots, so the worker count must not be observable in the
// output. Not t.Parallel: it mutates the process-wide GOMAXPROCS.
func TestTransform1DeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys := randomSystem(rng, 8, 120)
	opts := Options{FMax: 1e9, Tol: 0.05}

	run := func() (*Transformed, [][]float64) {
		tr, _, err := Transform1(sys, opts)
		if err != nil {
			t.Fatal(err)
		}
		return tr, tr.RPrimeBlock()
	}
	old := runtime.GOMAXPROCS(1)
	ts, rs := run()
	runtime.GOMAXPROCS(4)
	tp, rp := run()
	runtime.GOMAXPROCS(old)

	bitsEqualSlice(t, "APrime", tp.APrime.Data, ts.APrime.Data)
	bitsEqualSlice(t, "BPrime", tp.BPrime.Data, ts.BPrime.Data)
	for j := range rs {
		bitsEqualSlice(t, "RPrime column", rp[j], rs[j])
	}
}

// TestReduceDeterministicAcrossGOMAXPROCS extends the contract to the
// full reduction (Transform 2's parallel solves and the dense eigenpath
// included): poles and residue factors must be bit-identical at every
// worker count.
func TestReduceDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys := randomSystem(rng, 6, 90)
	opts := Options{FMax: 2e9, Tol: 0.05, DenseThreshold: 1 << 20} // force the dense eigenpath

	run := func() ([]float64, []float64, []float64, []float64) {
		model, _, err := Reduce(sys, opts)
		if err != nil {
			t.Fatal(err)
		}
		return model.Lambda, model.A.Data, model.B.Data, model.R.Data
	}
	old := runtime.GOMAXPROCS(1)
	lamS, aS, bS, rS := run()
	runtime.GOMAXPROCS(4)
	lamP, aP, bP, rP := run()
	runtime.GOMAXPROCS(old)

	bitsEqualSlice(t, "Lambda", lamP, lamS)
	bitsEqualSlice(t, "A", aP, aS)
	bitsEqualSlice(t, "B", bP, bS)
	bitsEqualSlice(t, "R", rP, rS)
}
