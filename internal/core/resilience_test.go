package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/resilience"
	"repro/internal/sparse"
)

// floatingNodeSystem builds a 1-port network whose last internal node
// couples only through capacitors: its row of D is structurally empty, so
// D is singular and the paper's positive-definiteness assumption fails.
func floatingNodeSystem(t *testing.T) *System {
	t.Helper()
	// Nodes: 0 = port, 1 = resistively connected internal, 2 = floating
	// internal (capacitor to node 1 and to ground only).
	gb := sparse.NewBuilder(3, 3)
	gb.Add(0, 0, 2.0) // port to ground + to node 1
	gb.Add(1, 1, 1.0)
	gb.AddSym(0, 1, -1.0)
	cb := sparse.NewBuilder(3, 3)
	cb.Add(1, 1, 0.2)
	cb.Add(2, 2, 0.5) // cap to ground and to node 1
	cb.AddSym(1, 2, -0.2)
	cb.Add(0, 0, 0.1)
	sys, err := Partition(gb.Build(), cb.Build(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReduceFloatingNodeRecoversByRegularization(t *testing.T) {
	sys := floatingNodeSystem(t)
	// A large FMax keeps every pole, so the only model error left is the
	// regularization itself and the admittance comparison below is sharp.
	model, stats, err := Reduce(sys, Options{FMax: 1000})
	if err != nil {
		t.Fatalf("Reduce on floating-node system did not recover: %v", err)
	}
	if len(stats.Recoveries) != 1 {
		t.Fatalf("Recoveries = %v, want exactly the Cholesky ladder", stats.Recoveries)
	}
	rec := stats.Recoveries[0]
	if rec.Stage != resilience.StageCholesky {
		t.Fatalf("recovery stage = %s, want %s", rec.Stage, resilience.StageCholesky)
	}
	if !(rec.Gamma > 0) {
		t.Fatalf("recovery did not report the applied γ: %+v", rec)
	}
	if math.IsNaN(rec.ErrBound) || math.IsInf(rec.ErrBound, 0) || rec.ErrBound < 0 {
		t.Fatalf("error bound not a usable finite value: %g", rec.ErrBound)
	}
	if rec.ErrBound <= 0 {
		t.Fatalf("γ > 0 with coupled ports must give a positive bound, got %g", rec.ErrBound)
	}
	// The regularized model must still track the exact admittance of the
	// original network at a frequency where it is well defined, to far
	// tighter than the reported worst-case bound suggests (γ is tiny).
	s := complex(0, 2*math.Pi*0.05)
	yExact, err := sys.Y(s)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(yExact, model.Y(s)); d > 1e-6 {
		t.Fatalf("regularized model deviates by %g at f=0.05", d)
	}
}

func TestTransform1FloatingNodeGammaEscalation(t *testing.T) {
	// The first ladder rung γ = 1e-12·‖diag(D)‖∞ must already succeed for
	// a merely singular (not poisoned) D, so the perturbation is minimal.
	sys := floatingNodeSystem(t)
	_, stats, err := Transform1(sys, Options{FMax: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.Recoveries[0]
	scale := maxAbsDiag(sys.D)
	if got, want := rec.Gamma, 1e-12*scale; math.Abs(got-want) > 1e-20*scale {
		t.Fatalf("γ = %g, want first rung %g", got, want)
	}
	if rec.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (initial failure + first rung)", rec.Attempts)
	}
}

func TestReduceContextPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sys := randomSystem(rng, 2, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ReduceContext(ctx, sys, Options{FMax: 0.1})
	if err == nil || !resilience.IsCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
}

func TestTransform2ContextCancelMidRunNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	sys := randomSystem(rng, 3, 400)
	t1, _, err := Transform1(sys, Options{FMax: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	// DenseThreshold above n forces the dense path: n×n operator
	// applications, long enough for the 2ms deadline to land mid-loop on
	// any machine; if the run still finishes first the test is vacuous but
	// not flaky, so require only: no error other than cancellation, and no
	// goroutine leak either way.
	_, terr := t1.Transform2Context(ctx, Options{FMax: 0.1, DenseThreshold: 500})
	if terr != nil && !resilience.IsCancellation(terr) {
		t.Fatalf("unexpected failure: %v", terr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after canceled Transform2: %d live, want <= %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestYSweepCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	sys := randomSystem(rng, 2, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.YSweepCtx(ctx, []float64{0.01, 0.02, 0.03}, 2)
	var se *resilience.StageError
	if !errors.As(err, &se) || se.Stage != resilience.StageYEval {
		t.Fatalf("err = %v, want StageError at %s", err, resilience.StageYEval)
	}
	if !resilience.IsCancellation(err) {
		t.Fatalf("err = %v does not report cancellation", err)
	}
}
