package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// extremeSystem builds RC networks with component values spread over
// many orders of magnitude (1 Ω–1 MΩ, 1 fF–1 µF), the conditioning
// regime real extractions produce.
func extremeSystem(rng *rand.Rand, m, n int) *System {
	tot := m + n
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	stamp := func(b *sparse.Builder, i, j int, v float64) {
		if i >= 0 {
			b.Add(i, i, v)
		}
		if j >= 0 {
			b.Add(j, j, v)
		}
		if i >= 0 && j >= 0 {
			b.AddSym(i, j, -v)
		}
	}
	logUniform := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	stamp(gb, 0, -1, 1/logUniform(1, 1e6))
	for i := 1; i < tot; i++ {
		stamp(gb, i, rng.Intn(i), 1/logUniform(1, 1e6))
	}
	for k := 0; k < 2*tot; k++ {
		i, j := rng.Intn(tot), rng.Intn(tot)
		if i != j && rng.Intn(2) == 0 {
			stamp(gb, i, j, 1/logUniform(1, 1e6))
		} else {
			stamp(cb, i, -1, logUniform(1e-15, 1e-6))
		}
	}
	stamp(cb, tot-1, -1, 1e-12)
	ports := make([]int, m)
	for i := range ports {
		ports[i] = i
	}
	sys, err := Partition(gb.Build(), cb.Build(), ports)
	if err != nil {
		panic(err)
	}
	return sys
}

// TestStressExtremeValueSpreads runs the whole reduction across networks
// whose element values span 6–9 orders of magnitude, checking DC
// exactness, passivity and Lanczos/dense agreement under stiff
// conditioning.
func TestStressExtremeValueSpreads(t *testing.T) {
	t.Parallel()
	trials := 20
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < trials; trial++ {
		m := 1 + rng.Intn(4)
		n := 10 + rng.Intn(30)
		sys := extremeSystem(rng, m, n)
		fmax := math.Pow(10, 3+6*rng.Float64()) // 1 kHz .. 1 GHz
		model, stats, err := Reduce(sys, Options{FMax: fmax, Tol: 0.05, DenseThreshold: -1})
		if err != nil {
			t.Fatalf("trial %d (m=%d n=%d fmax=%.3g): %v", trial, m, n, fmax, err)
		}
		if !model.CheckPassive(1e-7) {
			t.Fatalf("trial %d: passivity lost under extreme spreads", trial)
		}
		for _, lam := range model.Lambda {
			if !(lam > 0) || math.IsInf(lam, 0) {
				t.Fatalf("trial %d: bad pole λ=%v", trial, lam)
			}
		}
		// DC exactness regardless of conditioning.
		y0, err := sys.Y(0)
		if err != nil {
			t.Fatal(err)
		}
		g0 := model.Y(0)
		scale := 0.0
		for _, v := range y0.Data {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		if d := dense.MaxAbsDiff(g0, y0); d > 1e-7*(scale+1e-300) {
			t.Fatalf("trial %d: DC error %g (scale %g)", trial, d, scale)
		}
		// Cross-validate Lanczos poles against the dense path.
		md, _, err := Reduce(sys, Options{FMax: fmax, Tol: 0.05, DenseThreshold: 1 << 20})
		if err != nil {
			t.Fatalf("trial %d dense path: %v", trial, err)
		}
		if md.K() != model.K() {
			t.Fatalf("trial %d: dense kept %d poles, Lanczos %d", trial, md.K(), model.K())
		}
		for i := range md.Lambda {
			if rel := math.Abs(md.Lambda[i]-model.Lambda[i]) / md.Lambda[i]; rel > 1e-5 {
				t.Fatalf("trial %d: pole %d differs by %g", trial, i, rel)
			}
		}
		_ = stats
	}
}
