package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/chol"
)

// forceSupernodal lowers the kernel-dispatch threshold so the test
// systems (too small for the default) take the supernodal blocked path,
// restoring it on cleanup. Tests using it must not run in parallel.
func forceSupernodal(t *testing.T) {
	t.Helper()
	old := chol.SupernodalMinOrder
	chol.SupernodalMinOrder = 8
	t.Cleanup(func() { chol.SupernodalMinOrder = old })
}

// TestReduceSupernodalMatchesUpLooking runs the full reduction once per
// kernel and requires the models to agree to tight tolerance: the
// blocked factorization reorders floating-point sums, so bit equality
// is not expected, but the poles and realized blocks must match to
// rounding.
func TestReduceSupernodalMatchesUpLooking(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	sys := randomSystem(rng, 6, 140)
	opts := Options{FMax: 1e9, Tol: 0.05, DenseThreshold: 1 << 20}

	up, upStats, err := Reduce(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if upStats.Supernodes != 0 {
		t.Fatalf("order 140 took the supernodal kernel below threshold %d", chol.SupernodalMinOrder)
	}
	forceSupernodal(t)
	sn, snStats, err := Reduce(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snStats.Supernodes == 0 {
		t.Fatal("forced supernodal path reported zero supernodes")
	}
	if snStats.FactorFlops <= 0 || snStats.CholeskyBytes <= 0 {
		t.Fatalf("supernodal stats: flops %g, bytes %d", snStats.FactorFlops, snStats.CholeskyBytes)
	}
	if snStats.Solves != upStats.Solves {
		t.Fatalf("solve counts diverge across kernels: %d vs %d", snStats.Solves, upStats.Solves)
	}
	if len(sn.Lambda) != len(up.Lambda) {
		t.Fatalf("pole counts diverge: %d supernodal vs %d up-looking", len(sn.Lambda), len(up.Lambda))
	}
	for i := range sn.Lambda {
		if d := math.Abs(sn.Lambda[i] - up.Lambda[i]); d > 1e-9*(1+math.Abs(up.Lambda[i])) {
			t.Fatalf("pole %d: %v supernodal vs %v up-looking", i, sn.Lambda[i], up.Lambda[i])
		}
	}
	for i, v := range sn.A.Data {
		if d := math.Abs(v - up.A.Data[i]); d > 1e-8*(1+math.Abs(up.A.Data[i])) {
			t.Fatalf("A entry %d: %v vs %v", i, v, up.A.Data[i])
		}
	}
	for i, v := range sn.B.Data {
		if d := math.Abs(v - up.B.Data[i]); d > 1e-8*(1+math.Abs(up.B.Data[i])) {
			t.Fatalf("B entry %d: %v vs %v", i, v, up.B.Data[i])
		}
	}
}

// TestReduceSupernodalDeterministicAcrossGOMAXPROCS extends the
// bit-determinism contract to the supernodal pipeline: parallel panel
// factorization plus the blocked multi-RHS solves of both transforms
// must leave no trace of the worker count in the reduced model.
func TestReduceSupernodalDeterministicAcrossGOMAXPROCS(t *testing.T) {
	forceSupernodal(t)
	rng := rand.New(rand.NewSource(11))
	sys := randomSystem(rng, 7, 150)
	opts := Options{FMax: 2e9, Tol: 0.05, DenseThreshold: 1 << 20}

	run := func() ([]float64, []float64, []float64, []float64) {
		model, stats, err := Reduce(sys, opts)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Supernodes == 0 {
			t.Fatal("supernodal path not taken")
		}
		return model.Lambda, model.A.Data, model.B.Data, model.R.Data
	}
	old := runtime.GOMAXPROCS(1)
	lamS, aS, bS, rS := run()
	runtime.GOMAXPROCS(4)
	lamP, aP, bP, rP := run()
	runtime.GOMAXPROCS(old)

	bitsEqualSlice(t, "Lambda", lamP, lamS)
	bitsEqualSlice(t, "A", aP, aS)
	bitsEqualSlice(t, "B", bP, bS)
	bitsEqualSlice(t, "R", rP, rS)
}

// TestYSweepSupernodalMatchesSimplicial pins the shared-symbolic complex
// path: admittance sweeps through the supernodal LDLᵀ must agree with
// the simplicial evaluation to rounding at every frequency point.
func TestYSweepSupernodalMatchesSimplicial(t *testing.T) {
	freqs := []float64{1e6, 1e8, 1e9}
	build := func() *System {
		r := rand.New(rand.NewSource(55))
		return randomSystem(r, 5, 130)
	}
	plain := build()
	ysPlain, err := plain.YSweep(freqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	forceSupernodal(t)
	super := build() // fresh system: yOnce must re-run under the new threshold
	ysSuper, err := super.YSweep(freqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range freqs {
		for i := range ysPlain[k].Data {
			gp, gs := ysPlain[k].Data[i], ysSuper[k].Data[i]
			diff := gp - gs
			mag := math.Hypot(real(gp), imag(gp))
			if math.Hypot(real(diff), imag(diff)) > 1e-7*(1+mag) {
				t.Fatalf("freq %d entry %d: %v simplicial vs %v supernodal", k, i, gp, gs)
			}
		}
	}
}
