// Package core implements Pole Analysis via Congruence Transformations
// (PACT), the reduction algorithm of Kerns & Yang (DAC 1996): an RC
// multiport described by partitioned conductance/susceptance matrices is
// reduced by (1) a Cholesky-based congruence transform that normalizes the
// internal conductance block and decouples the connection conductances,
// and (2) a pole-analysis congruence transform that keeps only the
// eigenspace of the internal susceptance corresponding to poles below a
// cutoff frequency. Both transforms are congruences, so the non-negative
// definiteness of the matrices — and therefore the passivity and absolute
// stability of the network — is preserved exactly.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chol"
	"repro/internal/order"
	"repro/internal/sparse"
)

// System is the partitioned admittance representation of an RC network
// with m ports (plus an implicit common/ground node) and n internal
// nodes:
//
//	G = | A  Qᵀ |    C = | B  Rᵀ |
//	    | Q  D  |        | R  E  |
//
// relating nodal voltages and injected currents by (G + sC)x = b. A, B
// are the m×m port blocks, D, E the n×n internal blocks and Q, R the n×m
// connection blocks. All blocks come from stamping positive resistors and
// capacitors, so G and C are symmetric non-negative definite, and D is
// positive definite whenever every internal node has a DC path to a port.
type System struct {
	M, N int
	A, B *sparse.CSR // m×m port blocks
	Q, R *sparse.CSR // n×m connection blocks
	D, E *sparse.CSR // n×n internal blocks

	// Cached exact-evaluation state (symbolic analysis of D+sE),
	// initialized once; Y evaluations afterwards share it read-only, so
	// they are safe to run concurrently (see YSweep).
	yOnce sync.Once
	yErr  error
	ySym  *order.Symbolic
	yPat  *sparse.CSR
	yDP   *sparse.CSR
	yEP   *sparse.CSR
	yQP   *sparse.CSR
	yRP   *sparse.CSR
	yDPos []int // position of each yPat entry in yDP (-1 if absent)
	yEPos []int
	// ySS is the supernodal symbolic structure of the union pattern (nil
	// for small systems): analyzed once, then shared by the complex LDLᵀ
	// of every frequency point of a sweep, so per-point work is purely
	// numeric.
	ySS *chol.SuperSymbolic
}

// ErrBadShape reports inconsistent block dimensions.
var ErrBadShape = errors.New("core: inconsistent system block dimensions")

// NewSystem validates block shapes and returns the partitioned system.
func NewSystem(a, b, q, r, d, e *sparse.CSR) (*System, error) {
	m := a.Rows
	n := d.Rows
	if a.Cols != m || b.Rows != m || b.Cols != m ||
		d.Cols != n || e.Rows != n || e.Cols != n ||
		q.Rows != n || q.Cols != m || r.Rows != n || r.Cols != m {
		return nil, fmt.Errorf("%w: A %dx%d B %dx%d Q %dx%d R %dx%d D %dx%d E %dx%d",
			ErrBadShape, a.Rows, a.Cols, b.Rows, b.Cols, q.Rows, q.Cols, r.Rows, r.Cols, d.Rows, d.Cols, e.Rows, e.Cols)
	}
	return &System{M: m, N: n, A: a, B: b, Q: q, R: r, D: d, E: e}, nil
}

// Partition splits full (m+n)×(m+n) conductance and susceptance matrices
// into a System given the list of port node indices (the remaining
// indices become internal nodes). The port order in the System follows
// the order of ports.
func Partition(g, c *sparse.CSR, ports []int) (*System, error) {
	if g.Rows != g.Cols || c.Rows != c.Cols || g.Rows != c.Rows {
		return nil, fmt.Errorf("%w: G %dx%d C %dx%d", ErrBadShape, g.Rows, g.Cols, c.Rows, c.Cols)
	}
	total := g.Rows
	isPort := make([]bool, total)
	for _, p := range ports {
		if p < 0 || p >= total {
			return nil, fmt.Errorf("core: port index %d out of range [0,%d)", p, total)
		}
		if isPort[p] {
			return nil, fmt.Errorf("core: duplicate port index %d", p)
		}
		isPort[p] = true
	}
	var internal []int
	for i := 0; i < total; i++ {
		if !isPort[i] {
			internal = append(internal, i)
		}
	}
	// Build a permutation [ports..., internal...] and permute, then slice
	// the blocks out.
	perm := append(append([]int(nil), ports...), internal...)
	gp := g.PermuteSym(perm)
	cp := c.PermuteSym(perm)
	m := len(ports)
	n := len(internal)
	portIdx := make([]int, m)
	intIdx := make([]int, n)
	for i := range portIdx {
		portIdx[i] = i
	}
	for i := range intIdx {
		intIdx[i] = m + i
	}
	return NewSystem(
		gp.Submatrix(portIdx, portIdx),
		cp.Submatrix(portIdx, portIdx),
		gp.Submatrix(intIdx, portIdx),
		cp.Submatrix(intIdx, portIdx),
		gp.Submatrix(intIdx, intIdx),
		cp.Submatrix(intIdx, intIdx),
	)
}

// Full reassembles the (m+n)×(m+n) G and C matrices from the partitions
// (ports first). Used by tests and by the exact-admittance cross-checks.
func (s *System) Full() (g, c *sparse.CSR) {
	tot := s.M + s.N
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	addBlock := func(b *sparse.Builder, blk *sparse.CSR, ro, co int) {
		for i := 0; i < blk.Rows; i++ {
			cols, vals := blk.Row(i)
			for p, j := range cols {
				b.Add(i+ro, j+co, vals[p])
			}
		}
	}
	addBlock(gb, s.A, 0, 0)
	addBlock(gb, s.Q, s.M, 0)
	addBlock(gb, s.Q.Transpose(), 0, s.M)
	addBlock(gb, s.D, s.M, s.M)
	addBlock(cb, s.B, 0, 0)
	addBlock(cb, s.R, s.M, 0)
	addBlock(cb, s.R.Transpose(), 0, s.M)
	addBlock(cb, s.E, s.M, s.M)
	return gb.Build(), cb.Build()
}

// RCStats summarizes the element structure of the system.
func (s *System) RCStats() (nodes, conductances, capacitances int) {
	g, c := s.Full()
	// Count branch elements: each strictly-upper off-diagonal nonzero is a
	// branch; each positive diagonal surplus is an element to ground.
	count := func(a *sparse.CSR) int {
		cnt := 0
		rowAbs := make([]float64, a.Rows)
		for i := 0; i < a.Rows; i++ {
			cols, vals := a.Row(i)
			for p, j := range cols {
				if j > i && vals[p] != 0 {
					cnt++
				}
				if j != i {
					v := vals[p]
					if v < 0 {
						v = -v
					}
					rowAbs[i] += v
				}
			}
		}
		for i := 0; i < a.Rows; i++ {
			if a.At(i, i)-rowAbs[i] > 1e-12*(rowAbs[i]+1e-300) {
				cnt++ // element to ground
			}
		}
		return cnt
	}
	return s.M + s.N, count(g), count(c)
}
