package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/check"
	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/lanczos"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/resilience"
	"repro/internal/sparse"
)

// workCounters accumulates solve/matvec counts on a single worker of a
// parallel region; Stats.merge folds the per-worker deltas back into the
// shared Stats in a fixed order, keeping the counters exact (and the
// whole pipeline free of shared mutable state inside pool bodies).
type workCounters struct {
	solves  int
	matVecs int
}

// merge folds per-worker counters into the stats.
func (s *Stats) merge(wcs []workCounters) {
	for _, wc := range wcs {
		s.Solves += wc.solves
		s.MatVecs += wc.matVecs
	}
}

// Options configures the PACT reduction.
type Options struct {
	// FMax is the maximum frequency (Hz) at which the reduced model must
	// track the original within Tol. Required.
	FMax float64
	// Tol is the per-pole relative admittance error tolerance at FMax
	// (default 0.05, the 5% of the paper; it maps to the cutoff frequency
	// f_c = CutoffFactor(Tol)·FMax — 3.04 for 5%).
	Tol float64
	// Ordering selects the fill-reducing ordering for the Cholesky of D
	// (default minimum degree).
	Ordering order.Method
	// LanczosMode selects the reorthogonalization strategy (default
	// Selective, i.e. LASO as in the paper's RCFIT).
	LanczosMode lanczos.Mode
	// LanczosConvTol is the Ritz convergence tolerance (default 1e-8).
	LanczosConvTol float64
	// TwoPass uses the memory-minimal two-pass Lanczos instead of storing
	// the Lanczos basis.
	TwoPass bool
	// DenseThreshold: when the number of internal nodes is at or below
	// this, the eigenproblem is solved densely (exact), which doubles as
	// the cross-validation path (default 96; set negative to disable).
	DenseThreshold int
	// XCacheBudget bounds the bytes used to cache the columns of
	// X = D⁻¹Q between the two passes that need them (default 512 MiB;
	// set to 0 to force the paper's column-at-a-time recomputation).
	XCacheBudget int64
	// Seed seeds the Lanczos starting vector (default 1).
	Seed int64
	// MaxPoles, when positive, caps the number of retained poles (orders
	// the kept eigenvalues descending and keeps the largest). Zero keeps
	// everything above the cutoff.
	MaxPoles int
	// Shifts, when non-empty, switches Transform 2 to the
	// multi-expansion-point mode: D + s₀E is factored at s₀ = j2πf for
	// each listed frequency f (Hz; 0 is the paper's DC expansion), a
	// moment basis is built per shift, the bases are unioned with a
	// D-orthonormal modified Gram–Schmidt, and the pencil is
	// congruence-projected onto the union — so passivity is preserved by
	// construction exactly as in the single-point path. The shift set is
	// canonicalized (sorted ascending, duplicates dropped) before use, so
	// the projected model is independent of listing order.
	Shifts []float64
	// ShiftMoments is the number of block moments matched per expansion
	// point in multi-point mode (default 1: the zeroth moment of the
	// internal response at each shift).
	ShiftMoments int
	// BasisDropTol is the relative drop tolerance of the basis union's
	// Gram–Schmidt: a candidate whose D-norm after orthogonalization
	// falls below this fraction of its original D-norm is discarded as
	// numerically dependent (default 1e-8).
	BasisDropTol float64
	// PortClusters, when > 1, clusters the ports into this many groups by
	// electrical proximity on the conductance graph (TurboMOR-style) and
	// thins the multi-point candidate basis per cluster before the global
	// union — cutting the quadratic Gram–Schmidt cost on decks with
	// hundreds of ports. Only meaningful together with Shifts.
	PortClusters int
	// ResiduePruneTol, when positive, additionally drops retained poles
	// whose worst-case admittance contribution below FMax is smaller than
	// this fraction of the port-block admittance scale — an extension
	// beyond the paper: a pole can be below the frequency cutoff yet
	// couple so weakly to the ports that carrying its internal node is
	// pointless. Pruning preserves passivity (it is a further congruence
	// restriction) and adds at most ResiduePruneTol relative error per
	// pruned pole.
	ResiduePruneTol float64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Tol == 0 {
		out.Tol = 0.05
	}
	if out.DenseThreshold == 0 {
		out.DenseThreshold = 96
	}
	if out.XCacheBudget == 0 {
		out.XCacheBudget = 512 << 20
	}
	if out.LanczosConvTol == 0 {
		out.LanczosConvTol = 1e-8
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.ShiftMoments == 0 {
		out.ShiftMoments = 1
	}
	if out.BasisDropTol == 0 {
		out.BasisDropTol = 1e-8
	}
	return out
}

// Stats reports the work done by a reduction, the quantities Section 4 of
// the paper analyzes. The JSON tags give rcfitd's /statz and /reduce
// responses a stable wire shape.
type Stats struct {
	Ports         int     `json:"ports"`
	Internal      int     `json:"internal"`
	PolesFound    int     `json:"poles_found"`
	CutoffHz      float64 `json:"cutoff_hz"`
	LambdaC       float64 `json:"lambda_c"`
	PolesPruned   int     `json:"poles_pruned"` // poles dropped by residue pruning
	Solves        int     `json:"solves"`       // sparse triangular solve pairs (D backsolves)
	MatVecs       int     `json:"matvecs"`      // E (or E') matrix-vector products
	LanczosIters  int     `json:"lanczos_iters"`
	Reorths       int     `json:"reorths"`
	PeakVectors   int     `json:"peak_vectors"` // length-n vectors simultaneously live in Lanczos
	CholeskyNNZ   int     `json:"cholesky_nnz"`
	CholeskyBytes int64   `json:"cholesky_bytes"`
	// ScratchBytes is the transient memory of the numeric factorization
	// run (worker-owned dense update scratch, DAG scheduling state, and
	// the factor's pooled multi-RHS solve buffers). CholeskyBytes
	// includes it; it is broken out so rcfit -v can report how much of
	// the peak is pooled workspace rather than factor storage.
	ScratchBytes int64   `json:"scratch_bytes"`
	Supernodes   int     `json:"supernodes"`   // supernodal panels of the D factor (0: up-looking kernel)
	SuperFill    int     `json:"super_fill"`   // explicit zeros stored by relaxed amalgamation
	FactorFlops  float64 `json:"factor_flops"` // estimated flop count of the numeric factorization
	DenseEig     bool    `json:"dense_eig"`    // eigenproblem solved densely (small n)
	XCached      bool    `json:"x_cached"`
	// Multi-expansion-point counters (zero in single-point runs): the
	// canonicalized shift count, how many shifts were dropped by the
	// degradation ladder, the candidate columns generated, the columns the
	// basis union kept, and the port clusters used by the basis thinning.
	Shifts        int `json:"shifts,omitempty"`
	ShiftsDropped int `json:"shifts_dropped,omitempty"`
	BasisColumns  int `json:"basis_columns,omitempty"`
	BasisKept     int `json:"basis_kept,omitempty"`
	PortClusters  int `json:"port_clusters,omitempty"`
	// Recoveries lists every recovery ladder that fired during the
	// reduction, with the perturbation applied (Gamma) and its worst-case
	// DC admittance error bound (ErrBound) where applicable. An empty list
	// means the pipeline ran clean; a non-empty list means the result is
	// degraded in the recorded, bounded ways.
	Recoveries []resilience.Recovery `json:"recoveries,omitempty"`
	// Stage breaks the reduction's wall time down by pipeline stage, so a
	// front end that stops keeping pace with the factorizer is visible in
	// rcfit -v and /statz rather than buried in an aggregate total.
	Stage StageTimes `json:"stage_ns"`
}

// StageTimes is the per-stage wall-time breakdown of one deck-to-model
// run, in nanoseconds. The front-end stages (parse, stamp, assemble) are
// filled by callers that start from a netlist deck (pact.ReduceDeck);
// the ordering, symbolic and numeric-factorization stages are filled by
// Transform 1 and accumulate across recovery rungs, so a rescued run
// reports the total time spent, not just the winning rung's.
type StageTimes struct {
	ParseNs    int64 `json:"parse,omitempty"`
	StampNs    int64 `json:"stamp,omitempty"`
	AssembleNs int64 `json:"assemble,omitempty"`
	OrderNs    int64 `json:"order,omitempty"`
	SymbolicNs int64 `json:"symbolic,omitempty"`
	FactorNs   int64 `json:"factor,omitempty"`
	// Multi-expansion-point stages: the shifted complex factorizations
	// of D + s₀E (symbolic analysis shared across every shift) and the
	// Gram–Schmidt basis union.
	ShiftFactorNs int64 `json:"shift_factor,omitempty"`
	BasisUnionNs  int64 `json:"basis_union,omitempty"`
}

// CutoffFactor maps a relative error tolerance to the ratio f_c/f_max.
// Dropping a pole term s²rᵀr/(1+sλ) perturbs the admittance by the factor
// 1 − 1/√(1+(ω/ω_pole)²) at ω; bounding that by tol at ω_max gives
//
//	f_c/f_max = 1 / √( 1/(1−tol)² − 1 ).
//
// tol = 5% yields 3.04, the constant quoted in Section 5 of the paper.
func CutoffFactor(tol float64) float64 {
	if tol <= 0 || tol >= 1 {
		panic(fmt.Sprintf("core: tolerance %g outside (0,1)", tol))
	}
	x := math.Sqrt(1/((1-tol)*(1-tol)) - 1)
	return 1 / x
}

// CutoffFrequency returns f_c (Hz) for a maximum frequency and tolerance.
func CutoffFrequency(fmax, tol float64) float64 { return fmax * CutoffFactor(tol) }

// LambdaCutoff converts a cutoff frequency to the eigenvalue threshold of
// E′: poles at −1/λ (rad/s) with λ ≥ λ_c lie below f_c.
func LambdaCutoff(fc float64) float64 { return 1 / (2 * math.Pi * fc) }

// ePrimeOp is the matrix-free operator E′ = L⁻¹ E L⁻ᵀ.
type ePrimeOp struct {
	n     int
	fact  *chol.Factor
	ep    *sparse.CSR
	tmp   []float64
	stats *Stats
}

func (o *ePrimeOp) Dim() int { return o.n }

func (o *ePrimeOp) Apply(dst, src []float64) {
	copy(o.tmp, src)
	o.fact.LTSolve(o.tmp) // y = L⁻ᵀ x
	o.ep.MulVec(dst, o.tmp)
	o.fact.LSolve(dst) // L⁻¹ E y
	if o.stats != nil {
		o.stats.MatVecs++
	}
}

// Transformed is the state after the first (Cholesky-based) congruence
// transform: the exact port moment blocks A′ and B′, the Cholesky factor
// of D, and enough permuted sparse state to apply the E′ operator and
// recover connection columns. It is exported so the Padé-congruence
// baseline (internal/pade) can share Transform 1 and differ only in how
// it treats the internal block.
type Transformed struct {
	M, N           int
	APrime, BPrime *dense.Mat

	fact     *chol.Factor
	dp       *sparse.CSR // permuted (possibly γ-regularized) D, the factored matrix
	ep       *sparse.CSR
	qpT, rpT *sparse.CSR
	xCache   [][]float64
	cacheX   bool
	stats    *Stats
}

// Reduce runs the full PACT reduction on sys and returns the reduced
// model together with work statistics.
func Reduce(sys *System, opts Options) (*ReducedModel, *Stats, error) {
	return ReduceContext(context.Background(), sys, opts)
}

// ReduceContext is Reduce with cooperative cancellation: both transforms
// observe ctx between parallel work items and solver iterations, so a
// deadline or an interrupt stops the reduction at the next checkpoint
// with a resilience.StageError identifying where it stopped.
func ReduceContext(ctx context.Context, sys *System, opts Options) (*ReducedModel, *Stats, error) {
	opts = opts.withDefaults()
	if opts.FMax <= 0 {
		return nil, nil, fmt.Errorf("core: Options.FMax must be positive, got %g", opts.FMax)
	}
	t, stats, err := Transform1Context(ctx, sys, opts)
	if err != nil {
		return nil, nil, err
	}
	var model *ReducedModel
	if len(opts.Shifts) > 0 {
		model, err = t.transform2MultiPoint(ctx, opts)
	} else {
		model, err = t.Transform2Context(ctx, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return model, stats, nil
}

// cholGammaRungs is the escalation schedule of the Cholesky recovery
// ladder: γ starts near the noise floor of the diagonal scale and climbs
// three decades per rung. Matrices that a γ of 1e-3·‖diag(D)‖∞ cannot
// rescue (NaN/Inf contamination, wildly indefinite blocks) are reported
// as terminal rather than silently crushed by huge regularization.
var cholGammaRungs = []float64{1e-12, 1e-9, 1e-6, 1e-3}

// maxAbsDiag returns max_i |A_ii|, the scale reference for γ.
func maxAbsDiag(a *sparse.CSR) float64 {
	s := 0.0
	for i := 0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, i)); v > s {
			s = v
		}
	}
	return s
}

// Transform1 performs the Cholesky congruence transform (Section 3.1 of
// the paper): it orders and factors D, zeroes the connection conductance
// block, and produces the exact port blocks A′ and B′.
func Transform1(sys *System, opts Options) (*Transformed, *Stats, error) {
	return Transform1Context(context.Background(), sys, opts)
}

// Transform1Context is Transform1 with cooperative cancellation and a
// recovery ladder on the Cholesky of D: when D is not positive definite
// (classically a floating internal subnetwork), the factorization is
// retried on D + γI with γ escalating from ~1e-12·‖diag(D)‖∞ by three
// decades per rung. A rescued run records a resilience.Recovery in the
// stats carrying the applied γ and the first-order worst-case DC
// admittance perturbation ‖ΔY(0)‖_F ≤ γ·‖X‖²_F (X = D_γ⁻¹Q); an
// exhausted ladder returns a resilience.StageError listing every attempt.
func Transform1Context(ctx context.Context, sys *System, opts Options) (*Transformed, *Stats, error) {
	opts = opts.withDefaults()
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, nil, fmt.Errorf("core: Options.Tol must be in (0,1), got %g", opts.Tol)
	}
	m, n := sys.M, sys.N
	stats := &Stats{Ports: m, Internal: n}
	if opts.FMax > 0 {
		stats.CutoffHz = CutoffFrequency(opts.FMax, opts.Tol)
		stats.LambdaC = LambdaCutoff(stats.CutoffHz)
	}

	if n == 0 {
		return &Transformed{
			M: m, N: 0,
			APrime: denseFromCSR(sys.A, m),
			BPrime: denseFromCSR(sys.B, m),
			stats:  stats,
		}, stats, nil
	}

	// factorizeD routes large orders through an explicit supernodal
	// analysis with a private workspace: the factor's many blocked
	// multi-RHS solve passes (X, Z, back-projection) then draw their
	// per-worker buffers from one pool instead of allocating per call.
	// The workspace is used for this one factorization only, so the
	// factor owns its storage exactly as in the unpooled path.
	// Every Analyze and factorizeD call folds its wall time into the
	// per-stage accounting, so a recovery ladder that reorders and
	// refactors reports the total time spent, not the winning rung's.
	factorizeD := func(dp *sparse.CSR, sym *order.Symbolic) (*chol.Factor, error) {
		stats.Stage.OrderNs += sym.OrderNs
		stats.Stage.SymbolicNs += sym.SymbolicNs
		//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
		t0 := time.Now()
		var ss *chol.SuperSymbolic
		if dp.Rows >= chol.SupernodalMinOrder {
			var err error
			ss, err = chol.AnalyzeSuper(dp, sym, order.SupernodeOptions{})
			if err != nil {
				return nil, err
			}
		}
		// The supernodal amalgamation is symbolic work; everything after
		// this point is the numeric factorization.
		//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
		t1 := time.Now()
		stats.Stage.SymbolicNs += t1.Sub(t0).Nanoseconds()
		defer func() {
			//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
			stats.Stage.FactorNs += time.Since(t1).Nanoseconds()
		}()
		if ss == nil {
			return chol.Factorize(dp, sym)
		}
		return ss.FactorizeOpt(dp, chol.ScheduleDAG, ss.NewWorkspace())
	}

	sym := order.Analyze(sys.D, opts.Ordering)
	dp := sys.D.PermuteSym(sym.Perm)
	fact, err := factorizeD(dp, sym)
	gamma := 0.0
	if err != nil && errors.Is(err, chol.ErrNotPositiveDefinite) {
		attempts := []resilience.Attempt{{Action: "factorize(D)", Err: err}}
		scale := maxAbsDiag(sys.D)
		if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 1
		}
		for _, rung := range cholGammaRungs {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, resilience.Canceled(resilience.StageCholesky, ctx)
			}
			g := rung * scale
			// Regularizing may create diagonal entries the pattern lacked,
			// so the symbolic analysis is redone on the shifted matrix.
			dreg := sparse.AddDiagonal(sys.D, g)
			symG := order.Analyze(dreg, opts.Ordering)
			dpG := dreg.PermuteSym(symG.Perm)
			factG, ferr := factorizeD(dpG, symG)
			if ferr == nil {
				sym, dp, fact, gamma, err = symG, dpG, factG, g, nil
				stats.Recoveries = append(stats.Recoveries, resilience.Recovery{
					Stage:    resilience.StageCholesky,
					Action:   "diagonal regularization D+γI",
					Attempts: len(attempts) + 1,
					Gamma:    g,
					Reason:   attempts[0].Err.Error(),
				})
				break
			}
			attempts = append(attempts, resilience.Attempt{
				Action: fmt.Sprintf("factorize(D+γI), γ=%.3g", g),
				Err:    ferr,
			})
		}
		if err != nil {
			return nil, nil, resilience.NewStageError(resilience.StageCholesky,
				"escalating diagonal regularization exhausted", attempts, err)
		}
	} else if err != nil {
		return nil, nil, fmt.Errorf("core: Cholesky of internal conductance block: %w", err)
	}
	ep := sys.E.PermuteSym(sym.Perm)
	qp := sys.Q.PermuteRows(sym.Perm)
	rp := sys.R.PermuteRows(sym.Perm)
	stats.CholeskyNNZ = fact.NNZ()
	stats.CholeskyBytes = fact.Bytes()
	stats.ScratchBytes = fact.ScratchBytes()
	stats.Supernodes = fact.Supernodes()
	stats.SuperFill = fact.AmalgamatedFill()
	stats.FactorFlops = fact.FlopEstimate()
	qpT := qp.Transpose() // m×n, row j = column j of Q (in permuted internal order)
	rpT := rp.Transpose()

	t := &Transformed{
		M: m, N: n,
		fact: fact, dp: dp, ep: ep, qpT: qpT, rpT: rpT,
		stats: stats,
	}
	// Column cache for X = D⁻¹Q. When it fits the budget the second pass
	// (connection susceptance projection) reuses it; otherwise columns are
	// recomputed one at a time, the paper's memory-conserving strategy.
	t.cacheX = int64(n)*int64(m)*8 <= opts.XCacheBudget
	stats.XCached = t.cacheX
	if t.cacheX {
		t.xCache = make([][]float64, m)
	}

	// A′ = A − QᵀX,  B′ = B − S − Sᵀ + T with S = RᵀX and T = QᵀZ,
	// Z = D⁻¹EX (so T_ij = x_iᵀ E x_j, computed with sparse dots only).
	//
	// The m port columns are independent multi-RHS solves against the one
	// Cholesky factor, so they fan out across the worker pool; worker w
	// owns scratch[w], and column j owns every mirrored write pair
	// {(i,j),(j,i)} with i ≤ j, so no two goroutines touch the same cell
	// and the result is bit-identical at any GOMAXPROCS. Symmetry of A′
	// and T is constructional (dense.SetSym mirrors the i ≤ j values);
	// S = RᵀX is genuinely unsymmetric and is kept in full.
	aPrime := denseFromCSR(sys.A, m)
	bPrime := denseFromCSR(sys.B, m)
	sMat := dense.New(m, m)
	tMat := dense.New(m, m)
	type t1Scratch struct {
		qtx, rtx, qtz, w, x []float64
	}
	workers := par.Workers(m)
	scratch := make([]t1Scratch, workers)
	wcs := make([]workCounters, workers)
	for w := range scratch {
		scratch[w] = t1Scratch{
			qtx: make([]float64, m),
			rtx: make([]float64, m),
			qtz: make([]float64, m),
			w:   make([]float64, n),
			x:   make([]float64, n),
		}
	}
	// Per-column ‖x_j‖² slots for the regularization error bound: each j
	// owns its slot and the reduction over columns happens serially below,
	// so the bound is bit-identical at every worker count.
	var xNorm2 []float64
	if gamma > 0 {
		xNorm2 = make([]float64, m)
	}
	// Blocked path: when the X cache is enabled, the 2m port solves
	// (X = D⁻¹Q, then Z = D⁻¹EX) run as two multi-RHS blocks against the
	// one factor, streaming each factor panel once per solve chunk
	// instead of once per port. Each block column runs exactly the
	// arithmetic of its single solve, so the results — and the golden
	// outputs downstream — are unchanged bit for bit.
	var zBlock []float64
	if t.cacheX {
		xBlock := make([]float64, m*n)
		for j := 0; j < m; j++ {
			col := xBlock[j*n : (j+1)*n]
			cols, vals := qpT.Row(j)
			for p, i := range cols {
				col[i] = vals[p]
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, resilience.Canceled(resilience.StageCholesky, ctx)
		}
		fact.SolveMulti(xBlock, m)
		for j := 0; j < m; j++ {
			t.xCache[j] = xBlock[j*n : (j+1)*n]
		}
		zBlock = make([]float64, m*n)
		if merr := par.ForWorkersCtx(ctx, m, func(_, j int) {
			ep.MulVec(zBlock[j*n:(j+1)*n], t.xCache[j])
		}); merr != nil {
			return nil, nil, resilience.Canceled(resilience.StageCholesky, ctx)
		}
		fact.SolveMulti(zBlock, m)
		stats.Solves += 2 * m
		stats.MatVecs += m
	}
	perr := par.ForWorkersCtx(ctx, m, func(w, j int) {
		scr := &scratch[w]
		wc := &wcs[w]
		x := t.columnX(j, scr.x, wc)
		if xNorm2 != nil {
			xNorm2[j] = sparse.Dot(x, x)
		}
		qpT.MulVec(scr.qtx, x)
		rpT.MulVec(scr.rtx, x)
		z := scr.w
		if zBlock != nil {
			z = zBlock[j*n : (j+1)*n]
		} else {
			ep.MulVec(scr.w, x)
			wc.matVecs++
			fact.Solve(scr.w) // scr.w := z_j = D⁻¹ E x_j
			wc.solves++
		}
		qpT.MulVec(scr.qtz, z)
		for i := 0; i < m; i++ {
			sMat.Set(i, j, scr.rtx[i])
		}
		for i := 0; i <= j; i++ {
			aPrime.SetSym(i, j, aPrime.At(i, j)-scr.qtx[i])
			tMat.SetSym(i, j, scr.qtz[i])
		}
	})
	stats.merge(wcs)
	if perr != nil {
		return nil, nil, resilience.Canceled(resilience.StageCholesky, ctx)
	}
	if gamma > 0 {
		// First-order worst-case DC admittance perturbation of the
		// regularization: ΔY(0) ≈ γ·XᵀX, so ‖ΔY(0)‖_F ≤ γ·‖X‖²_F.
		sum := 0.0
		for _, v := range xNorm2 {
			sum += v
		}
		stats.Recoveries[len(stats.Recoveries)-1].ErrBound = gamma * sum
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			bPrime.SetSym(i, j, bPrime.At(i, j)-sMat.At(i, j)-sMat.At(j, i)+tMat.At(i, j))
		}
	}
	if check.Enabled {
		// Congruence preserves symmetry and definiteness: the exact port
		// blocks of Transform 1 must inherit both from the input system.
		check.Symmetric("Transform1 port conductance block A'", aPrime, check.DefaultTol)
		check.Symmetric("Transform1 port susceptance block B'", bPrime, check.DefaultTol)
		check.NonNegDef("Transform1 port conductance block A'", aPrime, check.DefaultTol)
		check.NonNegDef("Transform1 port susceptance block B'", bPrime, check.DefaultTol)
	}
	t.APrime = aPrime
	t.BPrime = bPrime
	return t, stats, nil
}

// columnX returns column j of X = D⁻¹Q, from the cache when enabled,
// recomputed into buf otherwise. Solve counts go to wc, never to the
// shared stats, so concurrent callers for distinct j are race-free (the
// cache slot write is per-j and thus owned by exactly one goroutine).
func (t *Transformed) columnX(j int, buf []float64, wc *workCounters) []float64 {
	if t.cacheX && t.xCache[j] != nil {
		return t.xCache[j]
	}
	for i := range buf {
		buf[i] = 0
	}
	cols, vals := t.qpT.Row(j)
	for p, i := range cols {
		buf[i] = vals[p]
	}
	t.fact.Solve(buf)
	wc.solves++
	if t.cacheX {
		t.xCache[j] = append([]float64(nil), buf...)
		return t.xCache[j]
	}
	return buf
}

// EOp returns the matrix-free operator E′ = L⁻¹ E L⁻ᵀ.
func (t *Transformed) EOp() lanczos.Operator {
	return &ePrimeOp{n: t.N, fact: t.fact, ep: t.ep, tmp: make([]float64, t.N), stats: t.stats}
}

// RPrimeColumn computes column j of R′ = L⁻¹(R − EX) into dst (length N).
// Forming all of R′ takes the m·n memory the Padé-based methods need and
// PACT avoids; it is exported for exactly that comparison. It updates the
// shared statistics and is therefore not safe for concurrent use — batch
// callers should use RPrimeBlock, which fans the independent port columns
// out across the worker pool.
func (t *Transformed) RPrimeColumn(j int, dst []float64) {
	var wc workCounters
	t.rPrimeColumn(j, dst, make([]float64, t.N), &wc)
	t.stats.Solves += wc.solves
	t.stats.MatVecs += wc.matVecs
}

// rPrimeColumn is the reentrant core of RPrimeColumn: xbuf is scratch for
// the X column (unused when cached) and counters go to wc.
func (t *Transformed) rPrimeColumn(j int, dst, xbuf []float64, wc *workCounters) {
	x := t.columnX(j, xbuf, wc)
	t.ep.MulVec(dst, x)
	wc.matVecs++
	for i := range dst {
		dst[i] = -dst[i]
	}
	cols, vals := t.rpT.Row(j)
	for p, i := range cols {
		dst[i] += vals[p]
	}
	t.fact.LSolve(dst)
	wc.solves++
}

// RPrimeBlock computes all M columns of R′ = L⁻¹(R − EX) as a blocked
// multi-RHS triangular solve: the right-hand sides R − EX assemble in
// parallel into one column-major block, then a single LSolveMulti
// streams each factor panel once per solve chunk. Per column the
// arithmetic equals rPrimeColumn's exactly, so the block is
// bit-identical to M serial RPrimeColumn calls at every GOMAXPROCS.
func (t *Transformed) RPrimeBlock() [][]float64 {
	m, n := t.M, t.N
	back := make([]float64, m*n)
	out := make([][]float64, m)
	workers := par.Workers(m)
	wcs := make([]workCounters, workers)
	xbufs := make([][]float64, workers)
	for w := range xbufs {
		xbufs[w] = make([]float64, n)
	}
	par.ForWorkers(m, func(w, j int) {
		col := back[j*n : (j+1)*n]
		out[j] = col
		x := t.columnX(j, xbufs[w], &wcs[w])
		t.ep.MulVec(col, x)
		wcs[w].matVecs++
		for i := range col {
			col[i] = -col[i]
		}
		cols, vals := t.rpT.Row(j)
		for p, i := range cols {
			col[i] += vals[p]
		}
	})
	t.stats.merge(wcs)
	t.fact.LSolveMulti(back, m)
	t.stats.Solves += m
	return out
}

// Stats returns the running statistics of this transform.
func (t *Transformed) Stats() *Stats { return t.stats }

// Transform2 performs the pole-analysis congruence transform (Section
// 3.2): eigenvalues of E′ above λ_c are found (densely for small N,
// otherwise with LASO), and the kept eigenspace is projected onto the
// connection block.
func (t *Transformed) Transform2(opts Options) (*ReducedModel, error) {
	return t.Transform2Context(context.Background(), opts)
}

// Transform2Context is Transform2 with cooperative cancellation and a
// recovery ladder on Lanczos stagnation: a run that fails with
// lanczos.ErrNoConvergence is restarted once with a fresh starting seed
// and full reorthogonalization; if that also stagnates, the eigenproblem
// falls back to the dense eigenpath (exact, the same code the
// DenseThreshold cross-validation uses) with the reason recorded in
// Stats.Recoveries and Stats.DenseEig set. Cancellation and non-stagnation
// failures are never retried.
func (t *Transformed) Transform2Context(ctx context.Context, opts Options) (*ReducedModel, error) {
	opts = opts.withDefaults()
	if opts.FMax <= 0 {
		return nil, fmt.Errorf("core: Options.FMax must be positive, got %g", opts.FMax)
	}
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, fmt.Errorf("core: Options.Tol must be in (0,1), got %g", opts.Tol)
	}
	m, n := t.M, t.N
	stats := t.stats
	if n == 0 {
		return &ReducedModel{M: m, A: t.APrime, B: t.BPrime, R: dense.New(0, m)}, nil
	}
	op := t.EOp()
	var vals []float64
	var uk *dense.Mat
	var err error
	if opts.DenseThreshold >= 0 && n <= opts.DenseThreshold {
		stats.DenseEig = true
		vals, uk, err = t.denseEigAbove(ctx, stats.LambdaC)
		if err != nil {
			if resilience.IsCancellation(err) {
				return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
			}
			return nil, err
		}
	} else {
		lopts := lanczos.Options{
			Cutoff:  stats.LambdaC,
			Mode:    opts.LanczosMode,
			ConvTol: opts.LanczosConvTol,
			Seed:    opts.Seed,
		}
		run := func(o lanczos.Options) (*lanczos.Result, error) {
			if opts.TwoPass {
				return lanczos.TwoPassCtx(ctx, op, o)
			}
			return lanczos.FindAboveCtx(ctx, op, o)
		}
		res, lerr := run(lopts)
		if lerr != nil && errors.Is(lerr, lanczos.ErrNoConvergence) {
			// Recovery ladder. Rung 1: restart with a fresh starting vector
			// and full reorthogonalization — stagnation from an unlucky seed
			// or from orthogonality loss is cured by exactly this.
			attempts := []resilience.Attempt{{
				Action: fmt.Sprintf("laso(mode=%v, seed=%d)", lopts.Mode, lopts.Seed),
				Err:    lerr,
			}}
			retry := lopts
			retry.Seed = lopts.Seed + 1
			retry.Mode = lanczos.Full
			res2, rerr := run(retry)
			switch {
			case rerr == nil:
				res, lerr = res2, nil
				stats.Recoveries = append(stats.Recoveries, resilience.Recovery{
					Stage:    resilience.StagePoleAnalysis,
					Action:   "lanczos restart (fresh seed, full reorthogonalization)",
					Attempts: 2,
					Reason:   attempts[0].Err.Error(),
				})
			case errors.Is(rerr, lanczos.ErrNoConvergence):
				// Rung 2: dense eigenpath — exact and unconditionally
				// convergent, at the O(n²) memory the paper avoids; a
				// degraded-but-correct answer beats none.
				attempts = append(attempts, resilience.Attempt{
					Action: "lanczos restart (fresh seed, full reorthogonalization)",
					Err:    rerr,
				})
				dvals, duk, derr := t.denseEigAbove(ctx, stats.LambdaC)
				if derr != nil {
					if resilience.IsCancellation(derr) {
						return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
					}
					attempts = append(attempts, resilience.Attempt{Action: "dense eigenpath fallback", Err: derr})
					return nil, resilience.NewStageError(resilience.StagePoleAnalysis,
						"recovery ladder exhausted", attempts, lerr)
				}
				stats.DenseEig = true
				stats.Recoveries = append(stats.Recoveries, resilience.Recovery{
					Stage:    resilience.StagePoleAnalysis,
					Action:   "dense eigenpath fallback",
					Attempts: 3,
					Reason:   attempts[0].Err.Error(),
				})
				vals, uk, res, lerr = dvals, duk, nil, nil
			default:
				lerr = rerr // cancellation or a hard failure on the retry
			}
		}
		if lerr != nil {
			if resilience.IsCancellation(lerr) {
				return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
			}
			return nil, fmt.Errorf("core: pole analysis (LASO): %w", lerr)
		}
		if res != nil {
			vals = res.Values
			uk = res.Vectors
			stats.LanczosIters = res.Iterations
			stats.Reorths = res.Reorths
			stats.PeakVectors = res.PeakVectors
		}
	}
	if opts.MaxPoles > 0 && len(vals) > opts.MaxPoles {
		vals = vals[:opts.MaxPoles]
	}
	if check.Enabled {
		check.PoleRealNonneg("Transform2 retained eigenvalues of E'", vals)
	}
	k := len(vals)
	stats.PolesFound = k

	// R_k = Ukᵀ R′ = Zkᵀ P with Zk = L⁻ᵀ Uk and P = R − EX, assembled
	// column by column: R_k[c][j] = z_cᵀ r_j − (E z_c)ᵀ x_j. Both stages
	// are independent per column (k triangular solves, then m projection
	// columns), so each fans out across the pool with per-worker counters
	// and scratch; every slot is written by exactly one goroutine.
	rk := dense.New(k, m)
	if k > 0 {
		zk := make([][]float64, k)
		ez := make([][]float64, k)
		zback := make([]float64, k*n)
		for c := 0; c < k; c++ {
			z := zback[c*n : (c+1)*n]
			for i := 0; i < n; i++ {
				z[i] = uk.At(i, c)
			}
			zk[c] = z
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
		}
		// Z_k = L⁻ᵀ U_k as one blocked transpose solve — bit-identical to
		// k single LTSolve calls, but each factor panel streams once per
		// solve chunk.
		t.fact.LTSolveMulti(zback, k)
		stats.Solves += k
		zwcs := make([]workCounters, par.Workers(k))
		zerr := par.ForWorkersCtx(ctx, k, func(w, c int) {
			e := make([]float64, n)
			t.ep.MulVec(e, zk[c])
			zwcs[w].matVecs++
			ez[c] = e
		})
		stats.merge(zwcs)
		if zerr != nil {
			return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
		}
		workers := par.Workers(m)
		wcs := make([]workCounters, workers)
		xbufs := make([][]float64, workers)
		for w := range xbufs {
			xbufs[w] = make([]float64, n)
		}
		perr := par.ForWorkersCtx(ctx, m, func(w, j int) {
			x := t.columnX(j, xbufs[w], &wcs[w])
			cols, vals2 := t.rpT.Row(j) // column j of permuted R
			for c := 0; c < k; c++ {
				s := 0.0
				for p, i := range cols {
					s += vals2[p] * zk[c][i]
				}
				s -= sparse.Dot(ez[c], x)
				rk.Set(c, j, s)
			}
		})
		stats.merge(wcs)
		if perr != nil {
			return nil, resilience.Canceled(resilience.StagePoleAnalysis, ctx)
		}
	}

	model := &ReducedModel{M: m, Lambda: vals, A: t.APrime, B: t.BPrime, R: rk}
	if opts.ResiduePruneTol > 0 && k > 0 {
		model = pruneWeakPoles(model, opts, stats)
	}
	if check.Enabled {
		gr, cr := model.Matrices()
		check.ReducedPassive("Transform2 realized reduced model", gr, cr, check.DefaultTol)
	}
	return model, nil
}

// pruneWeakPoles drops retained poles whose worst-case contribution to
// the admittance below FMax is negligible relative to the port blocks.
// The bound on the term −s²rᵢᵀrᵢ/(1+sλᵢ) at s = jω_max is
// ω_max²·‖rᵢ‖² / √(1+(ω_max λᵢ)²).
func pruneWeakPoles(model *ReducedModel, opts Options, stats *Stats) *ReducedModel {
	m := model.M
	wmax := 2 * math.Pi * opts.FMax
	// Admittance scale at f_max from the exact port blocks.
	scale := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := math.Abs(model.A.At(i, j)) + wmax*math.Abs(model.B.At(i, j))
			if v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		return model
	}
	var lambda []float64
	var rows []int
	for p, lam := range model.Lambda {
		norm2 := 0.0
		for j := 0; j < m; j++ {
			norm2 += model.R.At(p, j) * model.R.At(p, j)
		}
		contrib := wmax * wmax * norm2 / math.Sqrt(1+wmax*lam*wmax*lam)
		if contrib >= opts.ResiduePruneTol*scale {
			lambda = append(lambda, lam)
			rows = append(rows, p)
		} else {
			stats.PolesPruned++
		}
	}
	if len(rows) == len(model.Lambda) {
		return model
	}
	rk := dense.New(len(rows), m)
	for c, p := range rows {
		for j := 0; j < m; j++ {
			rk.Set(c, j, model.R.At(p, j))
		}
	}
	stats.PolesFound = len(rows)
	return &ReducedModel{M: m, Lambda: lambda, A: model.A, B: model.B, R: rk}
}

// denseEigAbove builds E′ explicitly by applying the operator to unit
// vectors and solves the dense symmetric eigenproblem — the exact
// reference path for small internal blocks, doubling as the
// cross-validation of the Lanczos path. The n independent operator
// columns fan out across the pool (each worker owns a stats-free E′
// operator and its scratch); column j owns the mirrored pair writes for
// i ≤ j, so E′ is constructionally symmetric and bit-identical at every
// GOMAXPROCS. The QL eigensolve itself is inherently sequential.
func (t *Transformed) denseEigAbove(ctx context.Context, cutoff float64) ([]float64, *dense.Mat, error) {
	n := t.N
	eMat := dense.New(n, n)
	workers := par.Workers(n)
	ops := make([]*ePrimeOp, workers)
	srcs := make([][]float64, workers)
	dsts := make([][]float64, workers)
	for w := range ops {
		ops[w] = &ePrimeOp{n: n, fact: t.fact, ep: t.ep, tmp: make([]float64, n)}
		srcs[w] = make([]float64, n)
		dsts[w] = make([]float64, n)
	}
	if err := par.ForWorkersCtx(ctx, n, func(w, j int) {
		src, dst := srcs[w], dsts[w]
		for i := range src {
			src[i] = 0
		}
		src[j] = 1
		ops[w].Apply(dst, src)
		for i := 0; i <= j; i++ {
			eMat.SetSym(i, j, dst[i])
		}
	}); err != nil {
		return nil, nil, fmt.Errorf("core: dense eigenpath canceled: %w", err)
	}
	t.stats.MatVecs += n
	vals, vecs, err := dense.SymEig(eMat, true)
	if err != nil {
		return nil, nil, fmt.Errorf("core: dense eigensolve of E′: %w", err)
	}
	// Select eigenvalues >= cutoff, descending.
	var keep []int
	for i := n - 1; i >= 0; i-- {
		if vals[i] >= cutoff {
			keep = append(keep, i)
		}
	}
	outVals := make([]float64, len(keep))
	uk := dense.New(n, len(keep))
	for c, idx := range keep {
		outVals[c] = vals[idx]
		for i := 0; i < n; i++ {
			uk.Set(i, c, vecs.At(i, idx))
		}
	}
	return outVals, uk, nil
}

func denseFromCSR(a *sparse.CSR, m int) *dense.Mat {
	out := dense.New(m, m)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for p, j := range cols {
			out.Set(i, j, vals[p])
		}
	}
	return out
}
