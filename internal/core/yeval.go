package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/resilience"
	"repro/internal/sparse"
)

// initYEval prepares the cached state for exact multiport admittance
// evaluation: a fill-reducing ordering and symbolic factorization of the
// pattern union of D and E (valid for D + sE at every s), the permuted
// blocks, and value arrays aligned with the union pattern. It runs once;
// subsequent Y evaluations only read the cache, so they may run
// concurrently.
func (s *System) initYEval() error {
	s.yOnce.Do(func() { s.yErr = s.buildYEval() })
	return s.yErr
}

func (s *System) buildYEval() error {
	union := sparse.PatternUnion(s.D, s.E)
	sym := order.Analyze(union, order.MinimumDegree)
	dp := s.D.PermuteSym(sym.Perm)
	ep := s.E.PermuteSym(sym.Perm)
	pat := sparse.PatternUnion(dp, ep)
	// Align the D and E values with the union pattern storage.
	dPos := make([]int, pat.NNZ())
	ePos := make([]int, pat.NNZ())
	for p := range dPos {
		dPos[p] = -1
		ePos[p] = -1
	}
	for i := 0; i < s.N; i++ {
		pd := dp.RowPtr[i]
		pe := ep.RowPtr[i]
		for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
			j := pat.Col[p]
			for pd < dp.RowPtr[i+1] && dp.Col[pd] < j {
				pd++
			}
			if pd < dp.RowPtr[i+1] && dp.Col[pd] == j {
				dPos[p] = pd
			}
			for pe < ep.RowPtr[i+1] && ep.Col[pe] < j {
				pe++
			}
			if pe < ep.RowPtr[i+1] && ep.Col[pe] == j {
				ePos[p] = pe
			}
		}
	}
	s.ySym = sym
	s.yPat = pat
	s.yDP = dp
	s.yEP = ep
	s.yQP = s.Q.PermuteRows(sym.Perm).Transpose() // m×n: row i = column i of permuted Q
	s.yRP = s.R.PermuteRows(sym.Perm).Transpose()
	s.yDPos = dPos
	s.yEPos = ePos
	if s.N >= chol.SupernodalMinOrder {
		ss, err := chol.AnalyzeSuper(pat, sym, order.SupernodeOptions{})
		if err != nil {
			return err
		}
		s.ySS = ss
	}
	return nil
}

// yPortChunk is the block size of the Schur-complement port solves: the
// multi-RHS batch bounds the extra memory at yPortChunk·n complex
// entries per evaluation.
const yPortChunk = 8

// yWorkspace is the reusable per-worker state of a frequency sweep: the
// chol factorization workspace (packed panels, dense scratch, DAG run
// state, solve buffers) and the port-block solve buffer. At 10⁶ nodes
// those total hundreds of megabytes per evaluation, so YSweep threads
// one yWorkspace through each worker's serial sequence of frequency
// points and the steady state of a sweep allocates only the m×m result
// matrices. Not safe for concurrent use; Y without a workspace remains
// fully concurrent.
type yWorkspace struct {
	fws   *chol.FactorWorkspace
	block []complex128
}

// Y evaluates the exact multiport admittance
//
//	Y(s) = A + sB − (Q+sR)ᵀ (D+sE)⁻¹ (Q+sR)
//
// at the complex frequency sv by a sparse complex LDLᵀ factorization of
// D + sE followed by one solve per port. This is the reference the
// reduced models are verified against; its cost per frequency point is
// what Tables 2–3 of the paper compare full-network AC analysis with.
func (s *System) Y(sv complex128) (*dense.CMat, error) {
	return s.yEval(sv, nil)
}

// yEval is Y against an optional sweep workspace (nil allocates fresh
// buffers, preserving Y's concurrency).
func (s *System) yEval(sv complex128, ws *yWorkspace) (*dense.CMat, error) {
	if err := s.initYEval(); err != nil {
		return nil, err
	}
	val := func(p int) complex128 {
		var v complex128
		if q := s.yDPos[p]; q >= 0 {
			v += complex(s.yDP.Val[q], 0)
		}
		if q := s.yEPos[p]; q >= 0 {
			v += sv * complex(s.yEP.Val[q], 0)
		}
		return v
	}
	var f *chol.ComplexFactor
	var err error
	if s.ySS != nil {
		// Large system: reuse the supernodal structure analyzed once in
		// buildYEval; each frequency point pays only the numeric panels —
		// and with a sweep workspace, not even an allocation for those.
		var fws *chol.FactorWorkspace
		if ws != nil {
			if ws.fws == nil {
				ws.fws = s.ySS.NewWorkspace()
			}
			fws = ws.fws
		}
		f, err = s.ySS.FactorizeComplexOpt(s.yPat, val, chol.ScheduleDAG, fws)
	} else {
		f, err = chol.FactorizeComplex(s.yPat, val, s.ySym)
	}
	if err != nil {
		return nil, fmt.Errorf("core: factorization of D+sE at s=%v: %w", sv, err)
	}
	m := s.M
	y := dense.NewC(m, m)
	// Port block A + sB.
	for i := 0; i < m; i++ {
		cols, vals := s.A.Row(i)
		for p, j := range cols {
			y.Add(i, j, complex(vals[p], 0))
		}
		cols, vals = s.B.Row(i)
		for p, j := range cols {
			y.Add(i, j, sv*complex(vals[p], 0))
		}
	}
	// Schur complement: the port columns are independent solves against
	// the one factor, batched into fixed-size blocks so each factor panel
	// streams through the cache once per block rather than once per port
	// (the multi-RHS solve runs each column's arithmetic exactly as a
	// single solve would, so the batching changes no bits).
	var block []complex128
	if ws != nil {
		if ws.block == nil {
			ws.block = make([]complex128, yPortChunk*s.N)
		}
		block = ws.block
	} else {
		block = make([]complex128, yPortChunk*s.N)
	}
	for j0 := 0; j0 < m; j0 += yPortChunk {
		j1 := j0 + yPortChunk
		if j1 > m {
			j1 = m
		}
		nb := j1 - j0
		x := block[:nb*s.N]
		for i := range x {
			x[i] = 0
		}
		for j := j0; j < j1; j++ {
			col := x[(j-j0)*s.N : (j-j0+1)*s.N]
			cols, vals := s.yQP.Row(j) // column j of permuted Q
			for p, i := range cols {
				col[i] += complex(vals[p], 0)
			}
			cols, vals = s.yRP.Row(j)
			for p, i := range cols {
				col[i] += sv * complex(vals[p], 0)
			}
		}
		if err := f.SolveMulti(x, nb); err != nil {
			return nil, fmt.Errorf("core: admittance solves for ports %d..%d at s=%v: %w", j0, j1-1, sv, err)
		}
		for j := j0; j < j1; j++ {
			col := x[(j-j0)*s.N : (j-j0+1)*s.N]
			for i := 0; i < m; i++ {
				var acc complex128
				cols, vals := s.yQP.Row(i)
				for p, k := range cols {
					acc += complex(vals[p], 0) * col[k]
				}
				cols, vals = s.yRP.Row(i)
				for p, k := range cols {
					acc += sv * complex(vals[p], 0) * col[k]
				}
				y.Add(i, j, -acc)
			}
		}
	}
	return y, nil
}

// Transimpedance evaluates Z(s) = Y(s)⁻¹ and returns the (i, j) entry,
// the quantity plotted in Figure 5 of the paper (small-signal
// transimpedance between two port nodes).
func (s *System) Transimpedance(sv complex128, i, j int) (complex128, error) {
	y, err := s.Y(sv)
	if err != nil {
		return 0, err
	}
	return TransimpedanceOf(y, i, j)
}

// TransimpedanceOf inverts the admittance matrix and returns Z[i][j].
func TransimpedanceOf(y *dense.CMat, i, j int) (complex128, error) {
	f, err := dense.FactorCLU(y.Clone())
	if err != nil {
		return 0, fmt.Errorf("core: admittance matrix singular: %w", err)
	}
	b := make([]complex128, y.R)
	b[j] = 1
	f.Solve(b)
	return b[i], nil
}

// YSweep evaluates the exact multiport admittance at every frequency of
// the sweep (Hz, evaluated at s = j2πf) using up to workers goroutines
// (workers <= 1 runs serially). The factorizations per frequency are
// independent, so the sweep fans out over the par pool — the dominant
// cost of full-network AC verification. Each result lands in its own
// index slot and errors are reported by lowest failing frequency index,
// so the outcome is identical at every worker count.
func (s *System) YSweep(freqs []float64, workers int) ([]*dense.CMat, error) {
	return s.YSweepCtx(context.Background(), freqs, workers)
}

// YSweepCtx is YSweep with cooperative cancellation between frequency
// points: a canceled sweep returns a resilience.StageError for the
// admittance stage instead of partial results.
func (s *System) YSweepCtx(ctx context.Context, freqs []float64, workers int) ([]*dense.CMat, error) {
	if err := s.initYEval(); err != nil {
		return nil, err
	}
	out := make([]*dense.CMat, len(freqs))
	errs := make([]error, len(freqs))
	// One workspace per pool worker: each worker evaluates its frequency
	// points serially through its own workspace, so the per-point
	// factorization and solve storage is allocated once per worker for
	// the whole sweep instead of once per point. Result placement and
	// arithmetic are unchanged — the workspace only recycles buffers.
	nw := workers
	if max := par.Workers(len(freqs)); nw > max {
		nw = max
	}
	if nw < 1 {
		nw = 1
	}
	wss := make([]*yWorkspace, nw)
	if err := par.DoCtx(ctx, workers, len(freqs), func(w, k int) {
		if wss[w] == nil {
			wss[w] = &yWorkspace{}
		}
		out[k], errs[k] = s.yEval(complex(0, 2*math.Pi*freqs[k]), wss[w])
	}); err != nil {
		return nil, resilience.Canceled(resilience.StageYEval, ctx)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
