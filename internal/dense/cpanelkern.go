// Complex panel micro-kernels: the LDLᵀ analogues of panelkern.go for
// the supernodal factorization of D + sE. A complex multiply is already
// four real multiplies and two adds, so the column kernels unroll two
// source columns per pass (register pressure doubles per value); the
// accumulation order — pairs of k ascending, then the scalar tail — is
// fixed exactly like the real kernels', keeping every result
// bit-identical at any GOMAXPROCS. The LDLᵀ diagonal rides along as an
// explicit scale: panels store unit-diagonal L, and the rank-k and trsm
// kernels fold d into the multiplier column, never into the streamed
// source columns.
package dense

// CRankKTrapAccum accumulates the lower trapezoid of the scaled rank-wd
// product into C: for 0 ≤ j < wC and j ≤ i < hC,
//
//	C[i + j·hC] += Σₖ (A[lo+j + k·lda]·d[k]) · A[lo+i + k·lda],
//
// the descendant update C += Aᵥ·D·Aₘᵀ of the supernodal complex LDLᵀ,
// with d holding the wd diagonal entries of the descendant's columns.
func CRankKTrapAccum(C []complex128, hC, wC int, A []complex128, lda, lo, wd int, d []complex128) {
	for j := 0; j < wC; j++ {
		dst := C[j*hC : (j+1)*hC]
		dst = dst[j:hC]
		k := 0
		for ; k+2 <= wd; k += 2 {
			p0 := k*lda + lo
			p1 := p0 + lda
			f0 := A[p0+j] * d[k]
			f1 := A[p1+j] * d[k+1]
			if f0 == 0 && f1 == 0 {
				continue
			}
			a0 := A[p0+j : p0+hC]
			a1 := A[p1+j : p1+hC]
			for i := range dst {
				dst[i] += f0*a0[i] + f1*a1[i]
			}
		}
		for ; k < wd; k++ {
			p0 := k*lda + lo
			f0 := A[p0+j] * d[k]
			if f0 == 0 {
				continue
			}
			a0 := A[p0+j : p0+hC]
			for i := range dst {
				dst[i] += f0 * a0[i]
			}
		}
	}
}

// CTrsmLDLBelow finishes a complex LDLᵀ panel whose w×w diagonal block
// already holds its unit-lower factor L11 and whose column diagonals
// are in d: the below block rows [w, h) holding the updated A21 are
// overwritten with L21 = A21·L11⁻ᵀ·D⁻¹, left-looking per column:
//
//	L21[:,c] = (A21[:,c] − Σₖ (L11[c,k]·d[k])·L21[:,k]) / d[c].
func CTrsmLDLBelow(P []complex128, h, w int, d []complex128) {
	if h <= w {
		return
	}
	for c := 0; c < w; c++ {
		dst := P[c*h+w : (c+1)*h]
		k := 0
		for ; k+2 <= c; k += 2 {
			f0 := P[k*h+c] * d[k]
			f1 := P[(k+1)*h+c] * d[k+1]
			if f0 == 0 && f1 == 0 {
				continue
			}
			a0 := P[k*h+w : k*h+h]
			a1 := P[(k+1)*h+w : (k+1)*h+h]
			for i := range dst {
				dst[i] -= f0*a0[i] + f1*a1[i]
			}
		}
		for ; k < c; k++ {
			f0 := P[k*h+c] * d[k]
			if f0 == 0 {
				continue
			}
			a0 := P[k*h+w : k*h+h]
			for i := range dst {
				dst[i] -= f0 * a0[i]
			}
		}
		dc := d[c]
		for i := range dst {
			dst[i] /= dc
		}
	}
}

// CTrsvLowerUnit solves L11 x = x in place against the w×w unit-lower
// triangle of the panel (the stored diagonal slots hold 1 and are not
// read): the in-block half of a supernodal complex forward solve.
func CTrsvLowerUnit(x []complex128, P []complex128, h, w int) {
	for j := 0; j < w; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := P[j*h : j*h+w]
		for i := j + 1; i < w; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// CTrsvLowerTransUnit solves L11ᵀ x = x in place against the w×w
// unit-lower triangle of the panel: the in-block half of a supernodal
// complex backward solve.
func CTrsvLowerTransUnit(x []complex128, P []complex128, h, w int) {
	for j := w - 1; j >= 0; j-- {
		col := P[j*h : j*h+w]
		s := x[j]
		for i := j + 1; i < w; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s
	}
}

// CGemvBelowAccum accumulates the below-block product into y:
// y[i] += Σⱼ P[w+i + j·h]·x[j] for 0 ≤ i < h−w, two panel columns per
// pass (see GemvBelowAccum).
func CGemvBelowAccum(y []complex128, P []complex128, h, w int, x []complex128) {
	hb := h - w
	if hb <= 0 {
		return
	}
	y = y[:hb]
	j := 0
	for ; j+2 <= w; j += 2 {
		f0, f1 := x[j], x[j+1]
		if f0 == 0 && f1 == 0 {
			continue
		}
		a0 := P[j*h+w : j*h+h]
		a1 := P[(j+1)*h+w : (j+1)*h+h]
		for i := range y {
			y[i] += f0*a0[i] + f1*a1[i]
		}
	}
	for ; j < w; j++ {
		f0 := x[j]
		if f0 == 0 {
			continue
		}
		a0 := P[j*h+w : j*h+h]
		for i := range y {
			y[i] += f0 * a0[i]
		}
	}
}

// CGemvBelowTransSub subtracts the transposed below-block product from
// x: x[j] −= Σᵢ P[w+i + j·h]·yb[i], two dot products per pass sharing
// the streamed yb (see GemvBelowTransSub).
func CGemvBelowTransSub(x []complex128, P []complex128, h, w int, yb []complex128) {
	hb := h - w
	if hb <= 0 {
		return
	}
	yb = yb[:hb]
	j := 0
	for ; j+2 <= w; j += 2 {
		a0 := P[j*h+w : j*h+h]
		a1 := P[(j+1)*h+w : (j+1)*h+h]
		var s0, s1 complex128
		for i, v := range yb {
			s0 += a0[i] * v
			s1 += a1[i] * v
		}
		x[j] -= s0
		x[j+1] -= s1
	}
	for ; j < w; j++ {
		a0 := P[j*h+w : j*h+h]
		var s0 complex128
		for i, v := range yb {
			s0 += a0[i] * v
		}
		x[j] -= s0
	}
}
