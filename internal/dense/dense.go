// Package dense provides the small dense linear-algebra kernels PACT
// needs: a row-major matrix type, dense Cholesky and LU solves (real and
// complex), Householder tridiagonalization and the implicit-shift QL
// eigensolver for symmetric matrices, and the symmetric tridiagonal
// eigensolver used on the Lanczos T matrix.
package dense

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	Data []float64
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("dense: negative dimension")
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices (copied).
func NewFromRows(rows [][]float64) *Mat {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("dense: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Add accumulates v into element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.C+j] += v }

// SetSym assigns v to both (i, j) and (j, i), making symmetry
// constructional: a matrix filled only through SetSym (one triangle's
// worth of computed values, mirrored at write time) is exactly symmetric
// with no post-hoc Symmetrize averaging. In parallel fills, the pair
// {(i,j), (j,i)} must be written by a single goroutine.
func (m *Mat) SetSym(i, j int, v float64) {
	m.Data[i*m.C+j] = v
	m.Data[j*m.C+i] = v
}

// Row returns row i as a sub-slice of the backing storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{R: m.R, C: m.C, Data: append([]float64(nil), m.Data...)}
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Data[j*t.C+i] = m.Data[i*m.C+j]
		}
	}
	return t
}

// Scale multiplies all entries by f in place.
func (m *Mat) Scale(f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// Cache-tiling parameters for the blocked Mul kernel. A k-tile of B
// (mulBlockK rows × mulBlockJ columns ≈ 128 KiB) stays resident across a
// whole row panel of A, and each output-row segment (mulBlockJ entries,
// 2 KiB) lives in L1 while its k-tile accumulates. Below
// mulSerialFlops (multiply-adds) the triple loop runs unblocked and
// inline so small products pay no tiling or pool overhead.
const (
	mulBlockK      = 64
	mulBlockJ      = 256
	mulSerialFlops = 1 << 18
	// mulRowChunk is the row-panel granularity handed to the pool: one
	// atomic hand-out per panel of rows instead of per row, with
	// boundaries that depend only on the matrix shape (never the worker
	// count), so load balancing improves without touching determinism.
	mulRowChunk = 32
)

// Mul returns a*b using a cache-tiled kernel with row-panel parallelism
// for large products. For every output entry the k-summation runs in
// ascending index order with structural zeros of a skipped, exactly as
// in the serial triple loop, so the result is bit-identical at every
// GOMAXPROCS and to the small-product fallback.
func Mul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	if int64(a.R)*int64(a.C)*int64(b.C) < mulSerialFlops {
		mulRows(out, a, b, 0, a.R)
		return out
	}
	par.ForChunks(a.R, mulRowChunk, func(_, i0, i1 int) {
		mulRows(out, a, b, i0, i1)
	})
	return out
}

// mulRows computes rows [i0, i1) of out = a*b with k- and j-tiling. The
// k tiles advance in ascending order, so per output entry the
// accumulation order matches the naive i-k-j loop exactly.
func mulRows(out, a, b *Mat, i0, i1 int) {
	n, p := a.C, b.C
	for kk := 0; kk < n; kk += mulBlockK {
		kend := kk + mulBlockK
		if kend > n {
			kend = n
		}
		for jj := 0; jj < p; jj += mulBlockJ {
			jend := jj + mulBlockJ
			if jend > p {
				jend = p
			}
			for i := i0; i < i1; i++ {
				arow := a.Row(i)
				orow := out.Row(i)[jj:jend]
				for k := kk; k < kend; k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					brow := b.Row(k)[jj:jend]
					for j, bkj := range brow {
						orow[j] += aik * bkj
					}
				}
			}
		}
	}
}

// mulVecSerialFlops is the multiply-add count below which MulVec stays
// serial; one matrix row is always computed by one goroutine, so the
// result is bit-identical at every GOMAXPROCS.
const mulVecSerialFlops = 1 << 16

// MulVec returns A x as a new slice, computing row panels in parallel
// for large matrices.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic("dense: MulVec dimension mismatch")
	}
	out := make([]float64, m.R)
	if int64(m.R)*int64(m.C) < mulVecSerialFlops {
		m.mulVecRows(out, x, 0, m.R)
		return out
	}
	par.ForChunks(m.R, mulRowChunk, func(_, i0, i1 int) {
		m.mulVecRows(out, x, i0, i1)
	})
	return out
}

func (m *Mat) mulVecRows(out, x []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
}

// AddScaled computes m += f*b in place.
func (m *Mat) AddScaled(f float64, b *Mat) {
	if m.R != b.R || m.C != b.C {
		panic("dense: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += f * b.Data[i]
	}
}

// MaxAbs returns the largest absolute entry.
func (m *Mat) MaxAbs() float64 {
	maxv := 0.0
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > maxv {
			maxv = v
		}
	}
	return maxv
}

// Symmetrize replaces m by (m + mᵀ)/2, removing roundoff asymmetry.
func (m *Mat) Symmetrize() {
	if m.R != m.C {
		panic("dense: Symmetrize requires square matrix")
	}
	n := m.R
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// Cholesky factors the symmetric positive definite matrix a in place into
// its lower Cholesky factor (the strict upper triangle is zeroed). It
// returns an error on a non-positive pivot.
func Cholesky(a *Mat) error {
	if a.R != a.C {
		return fmt.Errorf("dense: Cholesky requires square matrix")
	}
	n := a.R
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		for j := 0; j < k; j++ {
			d -= a.At(k, j) * a.At(k, j)
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("dense: Cholesky pivot %d = %g not positive", k, d)
		}
		lkk := math.Sqrt(d)
		a.Set(k, k, lkk)
		for i := k + 1; i < n; i++ {
			s := a.At(i, k)
			for j := 0; j < k; j++ {
				s -= a.At(i, j) * a.At(k, j)
			}
			a.Set(i, k, s/lkk)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// IsNonNegDefinite reports whether the symmetric matrix a is non-negative
// definite within tolerance tol (relative to the largest diagonal entry):
// its smallest eigenvalue must exceed -tol*scale. This is the passivity
// check from Section 3 of the paper.
func IsNonNegDefinite(a *Mat, tol float64) bool {
	vals, _, err := SymEig(a.Clone(), false)
	if err != nil {
		return false
	}
	scale := 0.0
	for i := 0; i < a.R; i++ {
		if d := math.Abs(a.At(i, i)); d > scale {
			scale = d
		}
	}
	if scale == 0 {
		scale = 1
	}
	for _, v := range vals {
		if v < -tol*scale {
			return false
		}
	}
	return true
}
