package dense

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSym(rng *rand.Rand, n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randomMat(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulAgainstNaive(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	a := randomMat(rng, 5, 7)
	b := randomMat(rng, 7, 4)
	c := Mul(a, b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			for k := 0; k < 7; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	a := randomMat(rng, 3, 6)
	at := a.T()
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestSymEigReconstruction(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		a := randomSym(rng, n)
		orig := a.Clone()
		vals, vecs, err := SymEig(a, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("eigenvalues not ascending: %v", vals)
			}
		}
		// Orthonormality of eigenvectors.
		vtv := Mul(vecs.T(), vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-9 {
					t.Fatalf("VᵀV(%d,%d) = %v, want %v", i, j, vtv.At(i, j), want)
				}
			}
		}
		// Reconstruction A = V Λ Vᵀ.
		lam := New(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		rec := Mul(Mul(vecs, lam), vecs.T())
		scale := orig.MaxAbs() + 1
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-orig.Data[i]) > 1e-9*scale {
				t.Fatalf("trial %d: reconstruction error %v at flat index %d", trial, rec.Data[i]-orig.Data[i], i)
			}
		}
	}
}

func TestSymEigKnownValues(t *testing.T) {
	t.Parallel()
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := SymEig(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

func TestSymEigRepeatedEigenvalues(t *testing.T) {
	t.Parallel()
	// Identity-like with a repeated eigenvalue block.
	a := NewFromRows([][]float64{
		{2, 0, 0},
		{0, 2, 0},
		{0, 0, 5},
	})
	vals, vecs, err := SymEig(a, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if vecs == nil {
		t.Fatal("expected eigenvectors")
	}
}

func TestTridiagEig(t *testing.T) {
	t.Parallel()
	// T = tridiag(-1, 2, -1) of size n has eigenvalues
	// 2 - 2 cos(kπ/(n+1)).
	n := 12
	alpha := make([]float64, n)
	beta := make([]float64, n-1)
	for i := range alpha {
		alpha[i] = 2
	}
	for i := range beta {
		beta[i] = -1
	}
	vals, z, err := TridiagEig(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d = %v, want %v", k, vals[k-1], want)
		}
	}
	// Residual check: T z_i = λ_i z_i.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			tz := alpha[i] * z.At(i, j)
			if i > 0 {
				tz += beta[i-1] * z.At(i-1, j)
			}
			if i < n-1 {
				tz += beta[i] * z.At(i+1, j)
			}
			if math.Abs(tz-vals[j]*z.At(i, j)) > 1e-9 {
				t.Fatalf("residual at (%d,%d)", i, j)
			}
		}
	}
}

func TestTridiagEigSize1(t *testing.T) {
	t.Parallel()
	vals, z, err := TridiagEig([]float64{7}, nil)
	if err != nil || len(vals) != 1 || vals[0] != 7 || z.At(0, 0) != 1 {
		t.Fatalf("size-1 tridiag: vals=%v z=%v err=%v", vals, z, err)
	}
}

func TestCholeskyDense(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(12)
		// SPD via BᵀB + I.
		b := randomMat(rng, n, n)
		a := Mul(b.T(), b)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		orig := a.Clone()
		if err := Cholesky(a); err != nil {
			t.Fatal(err)
		}
		rec := Mul(a, a.T())
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-orig.Data[i]) > 1e-9*(1+orig.MaxAbs()) {
				t.Fatalf("trial %d: LLᵀ reconstruction failed", trial)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	t.Parallel()
	a := NewFromRows([][]float64{{1, 2}, {2, 1}})
	if err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestIsNonNegDefinite(t *testing.T) {
	t.Parallel()
	if !IsNonNegDefinite(NewFromRows([][]float64{{1, -1}, {-1, 1}}), 1e-12) {
		t.Error("singular NND matrix must pass")
	}
	if IsNonNegDefinite(NewFromRows([][]float64{{1, 2}, {2, 1}}), 1e-12) {
		t.Error("indefinite matrix must fail")
	}
}

func TestLUSolve(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(15)
		a := randomMat(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, 3) // keep well conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	t.Parallel()
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestCLUSolve(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(12)
		a := NewC(n, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, 4)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			s := complex(0, 0)
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			b[i] = s
		}
		f, err := FactorCLU(a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		f.Solve(b)
		for i := range x {
			if cmplx.Abs(b[i]-x[i]) > 1e-8*(1+cmplx.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, b[i], x[i])
			}
		}
	}
}

// Property: eigenvalue sum equals trace and eigenvalue product sign
// matches determinant sign heuristics via Cholesky success for SPD.
func TestSymEigTraceProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomSym(rng, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, _, err := SymEig(a, false)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) <= 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymmetrize(t *testing.T) {
	t.Parallel()
	a := NewFromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize: got %v / %v, want 3 / 3", a.At(0, 1), a.At(1, 0))
	}
}

func TestScaleAddScaledMaxAbsDiff(t *testing.T) {
	t.Parallel()
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatal("Scale failed")
	}
	b := NewFromRows([][]float64{{1, 0}, {0, 1}})
	a.AddScaled(-1, b)
	if a.At(0, 0) != 1 || a.At(1, 1) != 7 {
		t.Fatal("AddScaled failed")
	}
	x := NewC(1, 2)
	y := NewC(1, 2)
	y.Set(0, 1, complex(3, 4))
	if d := MaxAbsDiff(x, y); math.Abs(d-5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 5", d)
	}
}
