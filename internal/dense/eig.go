package dense

import (
	"fmt"
	"math"
)

// SymEig computes the eigendecomposition of the symmetric matrix a:
// a = V diag(vals) Vᵀ with eigenvalues sorted ascending and eigenvectors
// in the columns of V. The input matrix is destroyed. When wantVecs is
// false the returned matrix is nil (the work is still O(n³) but with a
// smaller constant since no accumulation correctness is needed by
// callers).
//
// The implementation is the classic EISPACK pair: Householder
// tridiagonalization (tred2) followed by implicit-shift QL iteration
// (tql2).
func SymEig(a *Mat, wantVecs bool) (vals []float64, vecs *Mat, err error) {
	if a.R != a.C {
		return nil, nil, fmt.Errorf("dense: SymEig requires square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	if n == 0 {
		return nil, New(0, 0), nil
	}
	d := make([]float64, n)
	e := make([]float64, n)
	v := a // tridiagonalize in place, accumulating transforms into a
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, nil, err
	}
	if !wantVecs {
		return d, nil, nil
	}
	return d, v, nil
}

// TridiagEig computes the full eigensystem of the symmetric tridiagonal
// matrix with diagonal alpha (length k) and subdiagonal beta (length k-1):
// T = Z diag(vals) Zᵀ, eigenvalues ascending, eigenvectors in columns of
// Z. It is the inner solve of every Lanczos step.
func TridiagEig(alpha, beta []float64) (vals []float64, z *Mat, err error) {
	k := len(alpha)
	if len(beta) != k-1 && !(k == 0 && len(beta) == 0) {
		return nil, nil, fmt.Errorf("dense: TridiagEig needs len(beta) == len(alpha)-1")
	}
	if k == 0 {
		return nil, New(0, 0), nil
	}
	d := append([]float64(nil), alpha...)
	e := make([]float64, k)
	for i := 1; i < k; i++ {
		e[i] = beta[i-1]
	}
	z = Identity(k)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, err
	}
	return d, z, nil
}

// tred2 reduces the symmetric matrix in v to tridiagonal form by
// Householder similarity transformations, accumulating the orthogonal
// transform into v. On return d holds the diagonal and e[1..n-1] the
// subdiagonal (e[0] = 0). Ported from the EISPACK/JAMA routine.
func tred2(v *Mat, d, e []float64) {
	n := v.R
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		scale := 0.0
		h := 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Add(k, j, -(f*e[k] + g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Add(k, j, -g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalizes a symmetric tridiagonal matrix (diagonal d,
// subdiagonal e[1..n-1]) by the implicit-shift QL algorithm, accumulating
// rotations into v. On return d holds the eigenvalues ascending and the
// columns of v the eigenvectors. Ported from the EISPACK/JAMA routine.
func tql2(v *Mat, d, e []float64) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f := 0.0
	tst1 := 0.0
	const eps = 2.220446049250313e-16
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 50 {
					return fmt.Errorf("dense: QL iteration failed to converge at eigenvalue %d", l)
				}
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				p = d[m]
				c := 1.0
				c2, c3 := c, c
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
			d[l] += f
			e[l] = 0
		} else {
			d[l] += f
			e[l] = 0
		}
	}
	// Sort eigenvalues ascending, permuting eigenvectors alongside.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			for r := 0; r < n; r++ {
				tmp := v.At(r, i)
				v.Set(r, i, v.At(r, k))
				v.Set(r, k, tmp)
			}
		}
	}
	return nil
}
