package dense

import (
	"fmt"
	"math"
	"math/cmplx"
)

// LU is a dense real LU factorization with partial pivoting, PA = LU,
// stored packed in a single matrix.
type LU struct {
	lu   *Mat
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a (which is destroyed).
func FactorLU(a *Mat) (*LU, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("dense: LU requires square matrix")
	}
	n := a.R
	piv := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		p := k
		maxv := math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > maxv {
				maxv = v
				p = i
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("dense: singular matrix at column %d", k)
		}
		piv[k] = p
		if p != k {
			sign = -sign
			rp, rk := a.Row(p), a.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
		}
		akk := a.At(k, k)
		for i := k + 1; i < n; i++ {
			f := a.At(i, k) / akk
			a.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: a, piv: piv, sign: sign}, nil
}

// Solve solves A x = b in place.
func (f *LU) Solve(b []float64) {
	n := f.lu.R
	if len(b) != n {
		panic("dense: LU solve dimension mismatch")
	}
	// The factorization swapped full rows (LAPACK convention), so all
	// pivots are applied to b before the triangular solves.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			b[p], b[k] = b[k], b[p]
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu.At(i, k) * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// SolveLinear is a convenience wrapper solving A x = b with a fresh
// factorization; a and b are preserved.
func SolveLinear(a *Mat, b []float64) ([]float64, error) {
	f, err := FactorLU(a.Clone())
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), b...)
	f.Solve(x)
	return x, nil
}

// CMat is a dense row-major complex matrix, used for evaluating Y(jω)
// blocks and small complex solves.
type CMat struct {
	R, C int
	Data []complex128
}

// NewC returns a zeroed complex r-by-c matrix.
func NewC(r, c int) *CMat {
	return &CMat{R: r, C: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (m *CMat) At(i, j int) complex128 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *CMat) Set(i, j int, v complex128) { m.Data[i*m.C+j] = v }

// Add accumulates v into element (i, j).
func (m *CMat) Add(i, j int, v complex128) { m.Data[i*m.C+j] += v }

// Row returns row i as a sub-slice.
func (m *CMat) Row(i int) []complex128 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *CMat) Clone() *CMat {
	return &CMat{R: m.R, C: m.C, Data: append([]complex128(nil), m.Data...)}
}

// MaxAbsDiff returns the largest entrywise |a-b|, used by AC comparison
// tests.
func MaxAbsDiff(a, b *CMat) float64 {
	if a.R != b.R || a.C != b.C {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	maxv := 0.0
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > maxv {
			maxv = d
		}
	}
	return maxv
}

// CLU is a dense complex LU factorization with partial pivoting.
type CLU struct {
	lu  *CMat
	piv []int
}

// FactorCLU computes the complex LU factorization of a (destroyed).
func FactorCLU(a *CMat) (*CLU, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("dense: complex LU requires square matrix")
	}
	n := a.R
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		p := k
		maxv := cmplx.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a.At(i, k)); v > maxv {
				maxv = v
				p = i
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("dense: singular complex matrix at column %d", k)
		}
		piv[k] = p
		if p != k {
			rp, rk := a.Row(p), a.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
		}
		akk := a.At(k, k)
		for i := k + 1; i < n; i++ {
			f := a.At(i, k) / akk
			a.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := a.Row(i), a.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &CLU{lu: a, piv: piv}, nil
}

// Solve solves A x = b in place.
func (f *CLU) Solve(b []complex128) {
	n := f.lu.R
	if len(b) != n {
		panic("dense: complex LU solve dimension mismatch")
	}
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			b[p], b[k] = b[k], b[p]
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			b[i] -= f.lu.At(i, k) * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := f.lu.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}
