// Package oracle holds the property-based reference layer the dense
// micro-kernels are pinned against: naive triple-loop implementations
// of every kernel's contract, plus randomized shape generators that
// deliberately exercise the unroll tails. The oracles trade all speed
// for obviousness — one accumulator, one term per loop iteration,
// textbook index arithmetic — so a disagreement always indicts the
// optimized kernel, never the reference.
//
// The package operates on raw slices only and imports nothing from
// internal/dense; the kernel packages' tests import it, not the other
// way round, so the references can never inherit a bug from the code
// they check.
package oracle

import "math/rand"

// RankKTrap is the reference for dense.RankKTrapAccum: for 0 ≤ j < wC
// and j ≤ i < hC, C[i + j·hC] += Σₖ A[lo+i + k·lda]·A[lo+j + k·lda].
func RankKTrap(C []float64, hC, wC int, A []float64, lda, lo, wd int) {
	for j := 0; j < wC; j++ {
		for i := j; i < hC; i++ {
			s := 0.0
			for k := 0; k < wd; k++ {
				s += A[lo+i+k*lda] * A[lo+j+k*lda]
			}
			C[i+j*hC] += s
		}
	}
}

// CRankKTrap is the reference for dense.CRankKTrapAccum: the scaled
// product C[i + j·hC] += Σₖ (A[lo+j + k·lda]·d[k])·A[lo+i + k·lda].
func CRankKTrap(C []complex128, hC, wC int, A []complex128, lda, lo, wd int, d []complex128) {
	for j := 0; j < wC; j++ {
		for i := j; i < hC; i++ {
			var s complex128
			for k := 0; k < wd; k++ {
				s += (A[lo+j+k*lda] * d[k]) * A[lo+i+k*lda]
			}
			C[i+j*hC] += s
		}
	}
}

// TrsmLLBelow is the reference for dense.TrsmLLBelow: rows [w, h) of
// the column-major panel P are overwritten with L21 = A21·L11⁻ᵀ given
// the already-factored non-unit lower triangle L11 in the top block.
func TrsmLLBelow(P []float64, h, w int) {
	for c := 0; c < w; c++ {
		for i := w; i < h; i++ {
			s := P[c*h+i]
			for k := 0; k < c; k++ {
				s -= P[k*h+c] * P[k*h+i]
			}
			P[c*h+i] = s / P[c*h+c]
		}
	}
}

// CTrsmLDLBelow is the reference for dense.CTrsmLDLBelow: rows [w, h)
// overwritten with L21 = A21·L11⁻ᵀ·D⁻¹ for a unit-lower L11 with
// column diagonals d.
func CTrsmLDLBelow(P []complex128, h, w int, d []complex128) {
	for c := 0; c < w; c++ {
		for i := w; i < h; i++ {
			s := P[c*h+i]
			for k := 0; k < c; k++ {
				s -= (P[k*h+c] * d[k]) * P[k*h+i]
			}
			P[c*h+i] = s / d[c]
		}
	}
}

// TrsvLower solves L11 x = x (non-unit diagonal) against the w×w lower
// triangle of the panel, the reference for dense.TrsvLowerNonUnit.
func TrsvLower(x []float64, P []float64, h, w int) {
	for j := 0; j < w; j++ {
		s := x[j]
		for k := 0; k < j; k++ {
			s -= P[k*h+j] * x[k]
		}
		x[j] = s / P[j*h+j]
	}
}

// TrsvLowerTrans solves L11ᵀ x = x (non-unit diagonal), the reference
// for dense.TrsvLowerTransNonUnit.
func TrsvLowerTrans(x []float64, P []float64, h, w int) {
	for j := w - 1; j >= 0; j-- {
		s := x[j]
		for i := j + 1; i < w; i++ {
			s -= P[j*h+i] * x[i]
		}
		x[j] = s / P[j*h+j]
	}
}

// GemvBelow is the reference for dense.GemvBelowAccum:
// y[i] += Σⱼ P[w+i + j·h]·x[j] for 0 ≤ i < h−w.
func GemvBelow(y []float64, P []float64, h, w int, x []float64) {
	for i := 0; i < h-w; i++ {
		s := 0.0
		for j := 0; j < w; j++ {
			s += P[j*h+w+i] * x[j]
		}
		y[i] += s
	}
}

// GemvBelowTrans is the reference for dense.GemvBelowTransSub:
// x[j] −= Σᵢ P[w+i + j·h]·yb[i].
func GemvBelowTrans(x []float64, P []float64, h, w int, yb []float64) {
	for j := 0; j < w; j++ {
		s := 0.0
		for i := 0; i < h-w; i++ {
			s += P[j*h+w+i] * yb[i]
		}
		x[j] -= s
	}
}

// CGemvBelow is the complex reference for dense.CGemvBelowAccum.
func CGemvBelow(y []complex128, P []complex128, h, w int, x []complex128) {
	for i := 0; i < h-w; i++ {
		var s complex128
		for j := 0; j < w; j++ {
			s += P[j*h+w+i] * x[j]
		}
		y[i] += s
	}
}

// CGemvBelowTrans is the complex reference for dense.CGemvBelowTransSub.
func CGemvBelowTrans(x []complex128, P []complex128, h, w int, yb []complex128) {
	for j := 0; j < w; j++ {
		var s complex128
		for i := 0; i < h-w; i++ {
			s += P[j*h+w+i] * yb[i]
		}
		x[j] -= s
	}
}

// CTrsvLowerUnit solves L11 x = x for a unit-lower triangle, the
// reference for dense.CTrsvLowerUnit.
func CTrsvLowerUnit(x []complex128, P []complex128, h, w int) {
	for j := 0; j < w; j++ {
		s := x[j]
		for k := 0; k < j; k++ {
			s -= P[k*h+j] * x[k]
		}
		x[j] = s
	}
}

// CTrsvLowerTransUnit solves L11ᵀ x = x for a unit-lower triangle, the
// reference for dense.CTrsvLowerTransUnit.
func CTrsvLowerTransUnit(x []complex128, P []complex128, h, w int) {
	for j := w - 1; j >= 0; j-- {
		s := x[j]
		for i := j + 1; i < w; i++ {
			s -= P[j*h+i] * x[i]
		}
		x[j] = s
	}
}

// Mul is the reference dense product for row-major raw storage:
// c[i·n + j] = Σₖ a[i·kk + k]·b[k·n + j] for an m×kk a and kk×n b.
func Mul(c, a, b []float64, m, kk, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < kk; k++ {
				s += a[i*kk+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// MulVec is the reference row-major matrix-vector product:
// y[i] = Σⱼ a[i·n + j]·x[j].
func MulVec(y, a, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		y[i] = s
	}
}

// Shape is one randomized panel-update geometry: a descendant panel of
// lda rows and wd columns, updating from row lo an hC-row target of
// which the first wC rows are target columns (wC ≤ hC ≤ lda−lo).
type Shape struct {
	HC, WC, Wd, Lda, Lo int
}

// tailDim draws a dimension in [1, max] biased toward unroll tails:
// with probability ~3/4 the result is congruent to 1, 2, or 3 mod 4,
// so quad-tail and pair-tail code paths dominate the sample instead of
// almost never firing.
func tailDim(rng *rand.Rand, max int) int {
	if max < 1 {
		return 1
	}
	d := 1 + rng.Intn(max)
	if r := rng.Intn(4); r != 0 {
		// Nudge onto residue r (mod 4), staying in [1, max].
		d = d - d%4 + r
		if d > max {
			d -= 4
		}
		if d < 1 {
			d = r
			if d > max {
				d = max
			}
		}
	}
	return d
}

// RandomShape draws a panel-update geometry biased toward edge cases:
// dimensions land on every residue mod 4, degenerate widths (1) and
// empty below-blocks (hC == wC) occur with non-trivial probability.
func RandomShape(rng *rand.Rand) Shape {
	wd := tailDim(rng, 24)
	wC := tailDim(rng, 16)
	hC := wC
	if rng.Intn(8) != 0 { // 1-in-8 shapes keep an empty below block
		hC += tailDim(rng, 96)
	}
	lo := rng.Intn(8)
	return Shape{HC: hC, WC: wC, Wd: wd, Lda: lo + hC + rng.Intn(8), Lo: lo}
}

// FillPanel fills a column-major lda×wd panel with reproducible values
// in [-1, 1) drawn from rng.
func FillPanel(rng *rand.Rand, lda, wd int) []float64 {
	a := make([]float64, lda*wd)
	for i := range a {
		a[i] = 2*rng.Float64() - 1
	}
	return a
}

// FillCPanel is FillPanel for complex values (both parts in [-1, 1)).
func FillCPanel(rng *rand.Rand, lda, wd int) []complex128 {
	a := make([]complex128, lda*wd)
	for i := range a {
		a[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return a
}

// FillVec fills a length-n vector with reproducible values in [-1, 1).
func FillVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	return x
}

// FillCVec is FillVec for complex values.
func FillCVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return x
}
