// Panel micro-kernels for the supernodal factorization: the dense inner
// loops of the blocked Cholesky operate on raw column-major panels (a
// trapezoid of height h and width w with leading dimension h) rather
// than the row-major Mat type, so the chol package can call straight
// into them with its packed storage.
//
// The register shape was chosen by measurement on the scalar SSE code
// the default amd64 target emits: a 4-way k-unrolled column update (one
// destination column, four source columns per pass) beats explicit 4×4
// and 4×2 register tiles here, because the tile kernels pay strided
// panel loads and spill their accumulators, while the column kernel
// streams four contiguous source columns against one contiguous
// destination and keeps all live values in registers. Edge tails (k not
// a multiple of 4) fall back to a scalar-k loop after the quads.
//
// Determinism contract: every kernel is a pure serial function of its
// operands with a fixed accumulation order — quads of k ascending, then
// the scalar tail ascending — so results are bit-identical across runs
// and at every GOMAXPROCS regardless of how callers schedule panels
// onto workers. Structural zeros are skipped only in whole quads (or
// whole scalar-tail terms), which adds exact zeros and never reorders
// the surviving terms.
package dense

// RankKTrapAccum accumulates the lower trapezoid of a symmetric rank-wd
// product into C: for 0 ≤ j < wC and j ≤ i < hC,
//
//	C[i + j·hC] += Σₖ A[lo+i + k·lda] · A[lo+j + k·lda],  k = 0..wd-1,
//
// i.e. C += Aᵥ·Aₘᵀ restricted to the lower trapezoid, where Aᵥ is rows
// [lo, lo+hC) and Aₘ rows [lo, lo+wC) of the column-major panel A. This
// is the left-looking descendant update of the supernodal Cholesky: A
// is the descendant's trapezoid, lo the first of its rows that lands in
// the target panel's columns, wC how many land there, hC its remaining
// height.
func RankKTrapAccum(C []float64, hC, wC int, A []float64, lda, lo, wd int) {
	for j := 0; j < wC; j++ {
		rankKCol(C[j*hC:(j+1)*hC], A, lda, lo, wd, j, j, hC)
	}
}

// rankKCol accumulates rows [iLo, iHi) of one product column j:
// dst[i] += Σₖ A[lo+i + k·lda]·A[lo+j + k·lda] for dst = C[j·hC:],
// four k per pass with a scalar tail.
func rankKCol(dst []float64, A []float64, lda, lo, wd, j, iLo, iHi int) {
	if iLo >= iHi {
		return
	}
	dst = dst[iLo:iHi]
	k := 0
	for ; k+4 <= wd; k += 4 {
		p0 := k*lda + lo
		p1 := p0 + lda
		p2 := p1 + lda
		p3 := p2 + lda
		f0, f1, f2, f3 := A[p0+j], A[p1+j], A[p2+j], A[p3+j]
		if f0 == 0 && f1 == 0 && f2 == 0 && f3 == 0 {
			continue
		}
		a0 := A[p0+iLo : p0+iHi]
		a1 := A[p1+iLo : p1+iHi]
		a2 := A[p2+iLo : p2+iHi]
		a3 := A[p3+iLo : p3+iHi]
		for i := range dst {
			dst[i] += f0*a0[i] + f1*a1[i] + f2*a2[i] + f3*a3[i]
		}
	}
	for ; k < wd; k++ {
		p0 := k*lda + lo
		f0 := A[p0+j]
		if f0 == 0 {
			continue
		}
		a0 := A[p0+iLo : p0+iHi]
		for i := range dst {
			dst[i] += f0 * a0[i]
		}
	}
}

// TrsmLLBelow finishes a Cholesky panel whose w×w diagonal block
// already holds its factor L11 (lower triangular, non-unit diagonal):
// the below block rows [w, h) holding the updated A21 are overwritten
// with L21 = A21·L11⁻ᵀ. Left-looking per column c, so each destination
// column streams once per quad of source columns:
//
//	L21[:,c] = (A21[:,c] − Σₖ L11[c,k]·L21[:,k]) / L11[c,c],  k = 0..c-1.
func TrsmLLBelow(P []float64, h, w int) {
	if h <= w {
		return
	}
	for c := 0; c < w; c++ {
		dst := P[c*h+w : (c+1)*h]
		k := 0
		for ; k+4 <= c; k += 4 {
			f0 := P[k*h+c]
			f1 := P[(k+1)*h+c]
			f2 := P[(k+2)*h+c]
			f3 := P[(k+3)*h+c]
			if f0 == 0 && f1 == 0 && f2 == 0 && f3 == 0 {
				continue
			}
			a0 := P[k*h+w : k*h+h]
			a1 := P[(k+1)*h+w : (k+1)*h+h]
			a2 := P[(k+2)*h+w : (k+2)*h+h]
			a3 := P[(k+3)*h+w : (k+3)*h+h]
			for i := range dst {
				dst[i] -= f0*a0[i] + f1*a1[i] + f2*a2[i] + f3*a3[i]
			}
		}
		for ; k < c; k++ {
			f0 := P[k*h+c]
			if f0 == 0 {
				continue
			}
			a0 := P[k*h+w : k*h+h]
			for i := range dst {
				dst[i] -= f0 * a0[i]
			}
		}
		d := P[c*h+c]
		for i := range dst {
			dst[i] /= d
		}
	}
}

// TrsvLowerNonUnit solves L11 x = x in place against the w×w lower
// triangle of the panel (column-major, leading dimension h, non-unit
// diagonal): the in-block half of a supernodal forward substitution.
func TrsvLowerNonUnit(x []float64, P []float64, h, w int) {
	for j := 0; j < w; j++ {
		col := P[j*h : j*h+w]
		xj := x[j] / col[j]
		x[j] = xj
		if xj == 0 {
			continue
		}
		for i := j + 1; i < w; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// TrsvLowerTransNonUnit solves L11ᵀ x = x in place against the w×w
// lower triangle of the panel: the in-block half of a supernodal
// backward substitution.
func TrsvLowerTransNonUnit(x []float64, P []float64, h, w int) {
	for j := w - 1; j >= 0; j-- {
		col := P[j*h : j*h+w]
		s := x[j]
		for i := j + 1; i < w; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s / col[j]
	}
}

// GemvBelowAccum accumulates the below-block product into y:
// y[i] += Σⱼ P[w+i + j·h]·x[j] for 0 ≤ i < h−w, four panel columns per
// pass. This is the gather-free half of a supernodal forward solve: the
// caller scatters y through the panel's row list afterwards.
func GemvBelowAccum(y []float64, P []float64, h, w int, x []float64) {
	hb := h - w
	if hb <= 0 {
		return
	}
	y = y[:hb]
	j := 0
	for ; j+4 <= w; j += 4 {
		f0, f1, f2, f3 := x[j], x[j+1], x[j+2], x[j+3]
		if f0 == 0 && f1 == 0 && f2 == 0 && f3 == 0 {
			continue
		}
		a0 := P[j*h+w : j*h+h]
		a1 := P[(j+1)*h+w : (j+1)*h+h]
		a2 := P[(j+2)*h+w : (j+2)*h+h]
		a3 := P[(j+3)*h+w : (j+3)*h+h]
		for i := range y {
			y[i] += f0*a0[i] + f1*a1[i] + f2*a2[i] + f3*a3[i]
		}
	}
	for ; j < w; j++ {
		f0 := x[j]
		if f0 == 0 {
			continue
		}
		a0 := P[j*h+w : j*h+h]
		for i := range y {
			y[i] += f0 * a0[i]
		}
	}
}

// GemvBelowTransSub subtracts the transposed below-block product from
// x: x[j] −= Σᵢ P[w+i + j·h]·yb[i], four panel columns of independent
// dot products per pass sharing the streamed yb. This is the gathered
// half of a supernodal backward solve: the caller fills yb from the
// panel's row list first.
func GemvBelowTransSub(x []float64, P []float64, h, w int, yb []float64) {
	hb := h - w
	if hb <= 0 {
		return
	}
	yb = yb[:hb]
	j := 0
	for ; j+4 <= w; j += 4 {
		a0 := P[j*h+w : j*h+h]
		a1 := P[(j+1)*h+w : (j+1)*h+h]
		a2 := P[(j+2)*h+w : (j+2)*h+h]
		a3 := P[(j+3)*h+w : (j+3)*h+h]
		var s0, s1, s2, s3 float64
		for i, v := range yb {
			s0 += a0[i] * v
			s1 += a1[i] * v
			s2 += a2[i] * v
			s3 += a3[i] * v
		}
		x[j] -= s0
		x[j+1] -= s1
		x[j+2] -= s2
		x[j+3] -= s3
	}
	for ; j < w; j++ {
		a0 := P[j*h+w : j*h+h]
		var s0 float64
		for i, v := range yb {
			s0 += a0[i] * v
		}
		x[j] -= s0
	}
}
