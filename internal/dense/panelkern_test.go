package dense_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/dense/oracle"
)

// The property suite: every micro-kernel against its naive oracle over
// randomized shapes biased onto the unroll tails (dims ≡ 1, 2, 3 mod 4),
// plus the degenerate geometries (empty below block, width-1 panels,
// zero rank) pinned explicitly. Oracles regroup no sums, so agreement is
// up to reassociation roundoff only; the tolerance is relative 1e-12.

const kernTol = 1e-12

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		d /= m
	}
	return d
}

func crelDiff(a, b complex128) float64 {
	d := cmplx.Abs(a - b)
	if m := math.Max(cmplx.Abs(a), cmplx.Abs(b)); m > 1 {
		d /= m
	}
	return d
}

func TestOracleRankKTrap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := make([]oracle.Shape, 0, 203)
	for i := 0; i < 200; i++ {
		shapes = append(shapes, oracle.RandomShape(rng))
	}
	// Degenerate geometries the generator reaches only by luck.
	shapes = append(shapes,
		oracle.Shape{HC: 5, WC: 0, Wd: 4, Lda: 8, Lo: 1}, // empty update
		oracle.Shape{HC: 1, WC: 1, Wd: 1, Lda: 3, Lo: 0}, // 1×1 supernode
		oracle.Shape{HC: 9, WC: 3, Wd: 0, Lda: 9, Lo: 0}, // zero rank
	)
	for _, s := range shapes {
		a := oracle.FillPanel(rng, s.Lda, max(s.Wd, 1))
		got := oracle.FillVec(rng, s.HC*s.WC)
		want := append([]float64(nil), got...)
		dense.RankKTrapAccum(got, s.HC, s.WC, a, s.Lda, s.Lo, s.Wd)
		oracle.RankKTrap(want, s.HC, s.WC, a, s.Lda, s.Lo, s.Wd)
		for j := 0; j < s.WC; j++ {
			for i := j; i < s.HC; i++ {
				if d := relDiff(got[j*s.HC+i], want[j*s.HC+i]); d > kernTol {
					t.Fatalf("shape %+v: C(%d,%d) = %g, oracle %g (rel %g)", s, i, j, got[j*s.HC+i], want[j*s.HC+i], d)
				}
			}
		}
		// The strict upper triangle of C is out of contract and must be
		// untouched (bitwise) by the kernel.
		for j := 1; j < s.WC; j++ {
			for i := 0; i < j && i < s.HC; i++ {
				if got[j*s.HC+i] != want[j*s.HC+i] {
					t.Fatalf("shape %+v: kernel wrote out-of-trapezoid entry (%d,%d)", s, i, j)
				}
			}
		}
	}
}

func TestOracleCRankKTrap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomShape(rng)
		a := oracle.FillCPanel(rng, s.Lda, max(s.Wd, 1))
		d := oracle.FillCVec(rng, max(s.Wd, 1))
		got := oracle.FillCVec(rng, s.HC*s.WC)
		want := append([]complex128(nil), got...)
		dense.CRankKTrapAccum(got, s.HC, s.WC, a, s.Lda, s.Lo, s.Wd, d)
		oracle.CRankKTrap(want, s.HC, s.WC, a, s.Lda, s.Lo, s.Wd, d)
		for j := 0; j < s.WC; j++ {
			for i := j; i < s.HC; i++ {
				if dd := crelDiff(got[j*s.HC+i], want[j*s.HC+i]); dd > kernTol {
					t.Fatalf("shape %+v: C(%d,%d) = %v, oracle %v (rel %g)", s, i, j, got[j*s.HC+i], want[j*s.HC+i], dd)
				}
			}
		}
	}
}

// randTrapPanel builds an h×w column-major trapezoid whose diagonal
// block is a plausible non-unit lower factor: unit-scale entries with a
// diagonal pushed away from zero.
func randTrapPanel(rng *rand.Rand, h, w int) []float64 {
	p := oracle.FillPanel(rng, h, w)
	for c := 0; c < w; c++ {
		p[c*h+c] = 2 + rng.Float64()
	}
	return p
}

func TestOracleTrsmLLBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomShape(rng)
		h, w := s.HC, s.WC
		if w == 0 {
			continue
		}
		got := randTrapPanel(rng, h, w)
		want := append([]float64(nil), got...)
		dense.TrsmLLBelow(got, h, w)
		oracle.TrsmLLBelow(want, h, w)
		for c := 0; c < w; c++ {
			for i := 0; i < h; i++ {
				if i < w { // diagonal block is out of contract: untouched
					if got[c*h+i] != want[c*h+i] {
						t.Fatalf("h=%d w=%d: trsm touched diagonal block (%d,%d)", h, w, i, c)
					}
					continue
				}
				if d := relDiff(got[c*h+i], want[c*h+i]); d > kernTol {
					t.Fatalf("h=%d w=%d: L21(%d,%d) = %g, oracle %g (rel %g)", h, w, i, c, got[c*h+i], want[c*h+i], d)
				}
			}
		}
	}
}

func TestOracleCTrsmLDLBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomShape(rng)
		h, w := s.HC, s.WC
		if w == 0 {
			continue
		}
		got := oracle.FillCPanel(rng, h, w)
		d := make([]complex128, w)
		for c := range d {
			d[c] = complex(2+rng.Float64(), 2*rng.Float64()-1)
		}
		want := append([]complex128(nil), got...)
		dense.CTrsmLDLBelow(got, h, w, d)
		oracle.CTrsmLDLBelow(want, h, w, d)
		for c := 0; c < w; c++ {
			for i := w; i < h; i++ {
				if dd := crelDiff(got[c*h+i], want[c*h+i]); dd > kernTol {
					t.Fatalf("h=%d w=%d: L21(%d,%d) = %v, oracle %v (rel %g)", h, w, i, c, got[c*h+i], want[c*h+i], dd)
				}
			}
		}
	}
}

func TestOracleSolveKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomShape(rng)
		h, w := s.HC, s.WC
		if w == 0 {
			continue
		}
		p := randTrapPanel(rng, h, w)

		x := oracle.FillVec(rng, w)
		xo := append([]float64(nil), x...)
		dense.TrsvLowerNonUnit(x, p, h, w)
		oracle.TrsvLower(xo, p, h, w)
		for j := range x {
			if d := relDiff(x[j], xo[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: trsv x[%d] = %g, oracle %g", h, w, j, x[j], xo[j])
			}
		}

		xt := oracle.FillVec(rng, w)
		xto := append([]float64(nil), xt...)
		dense.TrsvLowerTransNonUnit(xt, p, h, w)
		oracle.TrsvLowerTrans(xto, p, h, w)
		for j := range xt {
			if d := relDiff(xt[j], xto[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: trsvT x[%d] = %g, oracle %g", h, w, j, xt[j], xto[j])
			}
		}

		y := oracle.FillVec(rng, max(h-w, 0))
		yo := append([]float64(nil), y...)
		xv := oracle.FillVec(rng, w)
		dense.GemvBelowAccum(y, p, h, w, xv)
		oracle.GemvBelow(yo, p, h, w, xv)
		for i := range y {
			if d := relDiff(y[i], yo[i]); d > kernTol {
				t.Fatalf("h=%d w=%d: gemv y[%d] = %g, oracle %g", h, w, i, y[i], yo[i])
			}
		}

		xg := oracle.FillVec(rng, w)
		xgo := append([]float64(nil), xg...)
		yb := oracle.FillVec(rng, max(h-w, 0))
		dense.GemvBelowTransSub(xg, p, h, w, yb)
		oracle.GemvBelowTrans(xgo, p, h, w, yb)
		for j := range xg {
			if d := relDiff(xg[j], xgo[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: gemvT x[%d] = %g, oracle %g", h, w, j, xg[j], xgo[j])
			}
		}
	}
}

func TestOracleCSolveKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomShape(rng)
		h, w := s.HC, s.WC
		if w == 0 {
			continue
		}
		p := oracle.FillCPanel(rng, h, w)

		x := oracle.FillCVec(rng, w)
		xo := append([]complex128(nil), x...)
		dense.CTrsvLowerUnit(x, p, h, w)
		oracle.CTrsvLowerUnit(xo, p, h, w)
		for j := range x {
			if d := crelDiff(x[j], xo[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: ctrsv x[%d] = %v, oracle %v", h, w, j, x[j], xo[j])
			}
		}

		xt := oracle.FillCVec(rng, w)
		xto := append([]complex128(nil), xt...)
		dense.CTrsvLowerTransUnit(xt, p, h, w)
		oracle.CTrsvLowerTransUnit(xto, p, h, w)
		for j := range xt {
			if d := crelDiff(xt[j], xto[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: ctrsvT x[%d] = %v, oracle %v", h, w, j, xt[j], xto[j])
			}
		}

		y := oracle.FillCVec(rng, max(h-w, 0))
		yo := append([]complex128(nil), y...)
		xv := oracle.FillCVec(rng, w)
		dense.CGemvBelowAccum(y, p, h, w, xv)
		oracle.CGemvBelow(yo, p, h, w, xv)
		for i := range y {
			if d := crelDiff(y[i], yo[i]); d > kernTol {
				t.Fatalf("h=%d w=%d: cgemv y[%d] = %v, oracle %v", h, w, i, y[i], yo[i])
			}
		}

		xg := oracle.FillCVec(rng, w)
		xgo := append([]complex128(nil), xg...)
		yb := oracle.FillCVec(rng, max(h-w, 0))
		dense.CGemvBelowTransSub(xg, p, h, w, yb)
		oracle.CGemvBelowTrans(xgo, p, h, w, yb)
		for j := range xg {
			if d := crelDiff(xg[j], xgo[j]); d > kernTol {
				t.Fatalf("h=%d w=%d: cgemvT x[%d] = %v, oracle %v", h, w, j, xg[j], xgo[j])
			}
		}
	}
}

// TestOracleMul pins the public blocked Mul (and its parallel row-panel
// path) against the naive triple loop over metamorphic random shapes,
// including one large enough to cross the parallel threshold.
func TestOracleMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type dims struct{ m, k, n int }
	cases := []dims{{1, 1, 1}, {3, 5, 2}, {17, 9, 13}, {31, 33, 34}, {80, 80, 80}}
	for trial := 0; trial < 30; trial++ {
		cases = append(cases, dims{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	for _, d := range cases {
		a, b := dense.New(d.m, d.k), dense.New(d.k, d.n)
		for i := range a.Data {
			a.Data[i] = 2*rng.Float64() - 1
		}
		for i := range b.Data {
			b.Data[i] = 2*rng.Float64() - 1
		}
		got := dense.Mul(a, b)
		want := make([]float64, d.m*d.n)
		oracle.Mul(want, a.Data, b.Data, d.m, d.k, d.n)
		for i := range want {
			if diff := relDiff(got.Data[i], want[i]); diff > kernTol {
				t.Fatalf("%dx%dx%d: entry %d = %g, oracle %g", d.m, d.k, d.n, i, got.Data[i], want[i])
			}
		}
	}
}

// TestOracleMulVec pins MulVec (both its serial and row-panel parallel
// paths) against the naive reference.
func TestOracleMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, d := range []struct{ m, n int }{{1, 1}, {7, 3}, {33, 31}, {300, 300}} {
		a := dense.New(d.m, d.n)
		for i := range a.Data {
			a.Data[i] = 2*rng.Float64() - 1
		}
		x := oracle.FillVec(rng, d.n)
		got := a.MulVec(x)
		want := make([]float64, d.m)
		oracle.MulVec(want, a.Data, x, d.m, d.n)
		for i := range want {
			if diff := relDiff(got[i], want[i]); diff > kernTol {
				t.Fatalf("%dx%d: y[%d] = %g, oracle %g", d.m, d.n, i, got[i], want[i])
			}
		}
	}
}
