package dense

import (
	"math"
	"runtime"
	"testing"
)

// lcgFill fills m with a deterministic pseudo-random pattern (including
// exact zeros, to exercise the structural-zero skip).
func lcgFill(m *Mat, seed uint64) {
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		v := float64(int64(s>>11)) / float64(1<<52)
		if s%37 == 0 {
			v = 0
		}
		m.Data[i] = v
	}
}

func mulNaive(a, b *Mat) *Mat {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestMulBlockedMatchesNaiveBitwise pins the tiled kernel to the naive
// triple loop: identical accumulation order means identical bits.
func TestMulBlockedMatchesNaiveBitwise(t *testing.T) {
	for _, dims := range [][3]int{{3, 5, 4}, {65, 64, 67}, {130, 257, 96}, {200, 300, 150}} {
		a, b := New(dims[0], dims[1]), New(dims[1], dims[2])
		lcgFill(a, 1)
		lcgFill(b, 2)
		bitsEqual(t, "blocked vs naive", Mul(a, b).Data, mulNaive(a, b).Data)
	}
}

// TestMulDeterministicAcrossGOMAXPROCS is the parallel-determinism
// contract of the ISSUE: the row-panel parallel product must be
// bit-identical at GOMAXPROCS 1 and 4. Not t.Parallel: it mutates the
// process-wide GOMAXPROCS.
func TestMulDeterministicAcrossGOMAXPROCS(t *testing.T) {
	a, b := New(300, 280), New(280, 310) // above the serial threshold
	lcgFill(a, 3)
	lcgFill(b, 4)
	old := runtime.GOMAXPROCS(1)
	serial := Mul(a, b)
	runtime.GOMAXPROCS(4)
	parallel := Mul(a, b)
	runtime.GOMAXPROCS(old)
	bitsEqual(t, "Mul across GOMAXPROCS", parallel.Data, serial.Data)
}

func TestMulVecDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := New(400, 380)
	lcgFill(m, 5)
	x := make([]float64, 380)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	old := runtime.GOMAXPROCS(1)
	serial := m.MulVec(x)
	runtime.GOMAXPROCS(4)
	parallel := m.MulVec(x)
	runtime.GOMAXPROCS(old)
	bitsEqual(t, "MulVec across GOMAXPROCS", parallel, serial)
}

func TestSetSym(t *testing.T) {
	t.Parallel()
	m := New(4, 4)
	m.SetSym(1, 3, 2.5)
	m.SetSym(2, 2, -1)
	if m.At(1, 3) != 2.5 || m.At(3, 1) != 2.5 || m.At(2, 2) != -1 {
		t.Fatalf("SetSym wrote %v", m.Data)
	}
	// A matrix filled through SetSym is exactly symmetric.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Float64bits(m.At(i, j)) != math.Float64bits(m.At(j, i)) {
				t.Fatalf("SetSym left asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// BenchmarkMul512 is the ≥512×512 dense product benchmark of the ISSUE
// acceptance criteria; compare -cpu 1 and -cpu 4 legs (or the
// committed BENCH.json from pactbench -json).
func BenchmarkMul512(b *testing.B) {
	x, y := New(512, 512), New(512, 512)
	lcgFill(x, 7)
	lcgFill(y, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
