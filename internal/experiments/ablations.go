package experiments

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/stamp"
)

// Sparsify quantifies the RCFIT sparsity-enhancement heuristic (Section 5
// of the paper): realized reduced networks carry dense port blocks whose
// small off-diagonals can be folded into the diagonals — exactly
// preserving passivity — at a controllable accuracy cost. The experiment
// sweeps the threshold on the Table 2 mesh and reports element counts
// against transimpedance error below f_max.
func Sparsify(w io.Writer, full bool) error {
	opts := netgen.SmallMeshOpts() // paper-scale mesh at both settings
	deck, ports, err := netgen.Mesh3D(opts)
	if err != nil {
		return err
	}
	ex, err := extractMesh(deck, ports)
	if err != nil {
		return err
	}
	fmax := 3e9
	model, _, err := core.Reduce(ex.Sys, core.Options{FMax: fmax, Tol: 0.05})
	if err != nil {
		return err
	}
	freqs := []float64{1e8, 3e8, 1e9, 2e9, 3e9}
	iMon, jDrv := 0, ex.Sys.M/2
	ys, err := ex.Sys.YSweep(freqs, par.Workers(len(freqs)))
	if err != nil {
		return err
	}
	zref, err := par.Map(len(freqs), func(k int) (complex128, error) {
		return core.TransimpedanceOf(ys[k], iMon, jDrv)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "reduced model: %d ports + %d poles; error measured on |Z(%d,%d)| below fmax\n\n",
		model.M, model.K(), iMon, jDrv)
	fmt.Fprintf(w, "%10s %8s %8s %14s\n", "threshold", "R's", "C's", "max |Z| err")
	for _, tol := range []float64{0, 1e-4, 1e-3, 3e-3, 1e-2, 2e-2, 3e-2, 5e-2} {
		elems, internal, err := stamp.Realize(model, ex.PortNames, stamp.RealizeOptions{SparsifyTol: tol})
		if err != nil {
			return err
		}
		maxErr := 0.0
		for k, f := range freqs {
			z, err := realizedTransimpedance(elems, ex.PortNames, internal, complex(0, 2*math.Pi*f), iMon, jDrv)
			if err != nil {
				return err
			}
			if e := cmplx.Abs(z-zref[k]) / cmplx.Abs(zref[k]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Fprintf(w, "%10.0e %8d %8d %13.2f%%\n",
			tol, countType(elems, 'r'), countType(elems, 'c'), 100*maxErr)
	}
	fmt.Fprintln(w, "\npassivity is preserved at every threshold (each dropped pair is replaced")
	fmt.Fprintln(w, "by a non-negative definite diagonal perturbation). accuracy collapses once")
	fmt.Fprintln(w, "the threshold reaches the size of genuine port-to-port conductances — the")
	fmt.Fprintln(w, "heuristic is for the long tail of tiny couplings (the paper's \"very small\"")
	fmt.Fprintln(w, "elements), not for thinning the real network.")
	return nil
}

// Ordering compares the fill-reducing orderings on the substrate mesh:
// factor size and end-to-end reduction time for minimum degree, reverse
// Cuthill–McKee and the natural order — the design choice behind the
// paper's Cholesky-based first transform.
func Ordering(w io.Writer, full bool) error {
	opts := netgen.SmallMeshOpts()
	if !full {
		opts = netgen.MeshOpts{NX: 10, NY: 10, NZ: 7, REdge: 630, CSurf: 30e-15, NPorts: 20}
	}
	deck, ports, err := netgen.Mesh3D(opts)
	if err != nil {
		return err
	}
	ex, err := extractMesh(deck, ports)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mesh internal block: %d nodes, %d nonzeros\n\n", ex.Sys.N, ex.Sys.D.NNZ())
	fmt.Fprintf(w, "%-16s %12s %12s %14s %8s\n", "ordering", "factor nnz", "fill ratio", "reduce (s)", "poles")
	for _, m := range []order.Method{order.MinimumDegree, order.RCM, order.Natural} {
		sym := order.Analyze(ex.Sys.D, m)
		t0 := time.Now()
		model, _, err := core.Reduce(ex.Sys, core.Options{FMax: 3e9, Tol: 0.05, Ordering: m})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16v %12d %12.1f %14.3f %8d\n",
			m, sym.LNNZ(), float64(sym.LNNZ())/float64(ex.Sys.D.NNZ()),
			time.Since(t0).Seconds(), model.K())
	}
	fmt.Fprintln(w, "\nall orderings give identical poles (congruence by permutation); minimum")
	fmt.Fprintln(w, "degree minimizes fill on the strongly connected 3-D mesh, the workload the")
	fmt.Fprintln(w, "paper designed PACT for.")
	return nil
}

// realizedTransimpedance evaluates Z(i,j) of a realized element list by
// inverting the full stamped admittance matrix of the realized network at
// complex frequency s.
func realizedTransimpedance(elems []netlist.Element, portNames, internal []string, s complex128, i, j int) (complex128, error) {
	names := append(append([]string(nil), portNames...), internal...)
	idx := map[string]int{netlist.Ground: -1}
	for k, n := range names {
		idx[n] = k
	}
	n := len(names)
	y := dense.NewC(n, n)
	for _, e := range elems {
		var val complex128
		switch el := e.(type) {
		case *netlist.Resistor:
			val = complex(1/el.Value, 0)
		case *netlist.Capacitor:
			val = s * complex(el.Value, 0)
		}
		ns := e.Nodes()
		a, b := idx[ns[0]], idx[ns[1]]
		if a >= 0 {
			y.Add(a, a, val)
		}
		if b >= 0 {
			y.Add(b, b, val)
		}
		if a >= 0 && b >= 0 {
			y.Add(a, b, -val)
			y.Add(b, a, -val)
		}
	}
	// Z = Y⁻¹ on the full (ports + internal) matrix; entry (i, j) of the
	// port block is the transimpedance we want.
	f, err := dense.FactorCLU(y)
	if err != nil {
		return 0, err
	}
	b := make([]complex128, n)
	b[j] = 1
	f.Solve(b)
	return b[i], nil
}
