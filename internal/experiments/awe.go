package experiments

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"

	"repro/internal/awe"
	"repro/internal/core"
	"repro/internal/lanczos"
	"repro/internal/netgen"
	"repro/internal/order"
	"repro/internal/prima"
	"repro/internal/sparse"
	"repro/internal/stamp"
)

// AWEStability is the stability/conditioning ablation behind the paper's
// Section 1 critique of Padé approximation: on the 100-segment ladder,
// AWE models of increasing order are fitted from moments and their poles
// classified, while PACT's poles are eigenvalues of a symmetric NND
// pencil and therefore real and negative by construction. The second
// half measures LASO against full reorthogonalization on the substrate
// mesh (the paper's Section 3.2 efficiency argument).
func AWEStability(w io.Writer, full bool) error {
	// Grounded ladder for AWE (driver conductance at node 0, observe the
	// far end).
	n := 100
	gb := sparse.NewBuilder(n, n)
	cb := sparse.NewBuilder(n, n)
	gseg := float64(n) / 250.0
	cseg := 1.35e-12 / float64(n)
	gb.Add(0, 0, gseg)
	for i := 0; i+1 < n; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	for i := 0; i < n; i++ {
		cb.Add(i, i, cseg)
	}
	g, c := gb.Build(), cb.Build()
	b := make([]float64, n)
	l := make([]float64, n)
	b[0] = 1
	l[n-1] = 1
	moments, err := awe.Moments(g, c, b, l, 28)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "AWE on the 100-segment ladder (moment count available: %d)\n", len(moments))
	fmt.Fprintf(w, "%4s %10s %14s %s\n", "q", "stable?", "real&negative?", "poles (GHz, real part)")
	firstBad := -1
	for q := 1; q <= 12; q++ {
		model, err := awe.Pade(moments, q)
		if err != nil {
			fmt.Fprintf(w, "%4d %10s %14s (Hankel solve failed: ill-conditioned)\n", q, "—", "—")
			if firstBad < 0 {
				firstBad = q
			}
			continue
		}
		if !model.RealNegative() && firstBad < 0 {
			firstBad = q
		}
		fmt.Fprintf(w, "%4d %10v %14v", q, model.Stable(), model.RealNegative())
		shown := 0
		for _, p := range model.Poles {
			if shown >= 4 {
				fmt.Fprint(w, " ...")
				break
			}
			if imagAbs(p) > 1e-9*cmplx.Abs(p) {
				fmt.Fprintf(w, " %.2f±j", real(p)/2/3.14159e9)
			} else {
				fmt.Fprintf(w, " %.2f", real(p)/2/3.14159e9)
			}
			shown++
		}
		fmt.Fprintln(w)
	}
	if firstBad > 0 {
		fmt.Fprintf(w, "AWE first produces non-real/unstable/singular results at q = %d\n\n", firstBad)
	} else {
		fmt.Fprintf(w, "AWE stayed conditioned through q = 12 on this run\n\n")
	}

	// PACT on the same ladder: all poles real negative, network passive,
	// at every requested order.
	deck := netgen.Ladder(n, 250, 1.35e-12)
	ex, err := stamp.Extract(deck)
	if err != nil {
		return err
	}
	for _, fm := range []float64{5e9, 50e9, 500e9} {
		model, st, err := core.Reduce(ex.Sys, core.Options{FMax: fm, Tol: 0.05})
		if err != nil {
			return err
		}
		ok := true
		for _, lam := range model.Lambda {
			if !(lam > 0) {
				ok = false
			}
		}
		fmt.Fprintf(w, "PACT fmax=%-8s poles=%-3d all real negative: %v  passive: %v  (iters %d)\n",
			fmtFreq(fm), model.K(), ok, model.CheckPassive(1e-8), st.LanczosIters)
	}
	// The 1997 successor for context: PRIMA (block Arnoldi, shifted
	// expansion) is also passive by congruence — the property this line of
	// work made standard.
	pm, pst, err := prima.Reduce(ex.Sys, 2, 2*math.Pi*5e9, order.MinimumDegree)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PRIMA q=2 (successor): %d states, passive: %v, peak %d vectors\n",
		pm.Dims, pm.CheckPassive(1e-8), pst.PeakVectors)

	// LASO vs full reorthogonalization on the substrate mesh.
	fmt.Fprintln(w, "\nreorthogonalization ablation on the substrate mesh (fmax = 3 GHz):")
	mopts := netgen.SmallMeshOpts()
	if !full {
		mopts = netgen.MeshOpts{NX: 9, NY: 9, NZ: 7, REdge: 630, CSurf: 30e-15, NPorts: 16}
	}
	mdeck, ports, err := netgen.Mesh3D(mopts)
	if err != nil {
		return err
	}
	mex, err := extractMesh(mdeck, ports)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %8s %10s %10s %12s\n", "mode", "poles", "iters", "matvecs", "reorth ops")
	for _, mode := range []lanczos.Mode{lanczos.Selective, lanczos.Full} {
		model, st, err := core.Reduce(mex.Sys, core.Options{
			FMax: 3e9, Tol: 0.05, LanczosMode: mode, DenseThreshold: -1,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12v %8d %10d %10d %12d\n", mode, model.K(), st.LanczosIters, st.MatVecs, st.Reorths)
	}
	fmt.Fprintln(w, "(LASO orthogonalizes only against converged Ritz vectors — the paper's efficiency argument.)")
	return nil
}

func imagAbs(z complex128) float64 {
	v := imag(z)
	if v < 0 {
		return -v
	}
	return v
}
