// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6) plus the Section 4 complexity claims and
// a stability ablation against AWE. Each experiment prints the same rows
// or series the paper reports; cmd/pactbench and the repository-level
// benchmarks drive them.
//
// Absolute times and memory differ from the paper's 1996 SPARC-20 — the
// reproducible content is the *shape*: pole counts, element counts,
// accuracy below f_max, reduction speedups, and the PACT-vs-Padé memory
// and operation scaling. EXPERIMENTS.md records paper-vs-measured for
// each artifact.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// Registry maps experiment names to runners, in paper order.
var Registry = []struct {
	Name string
	Desc string
	Run  func(w io.Writer, full bool) error
}{
	{"eq20", "Eq. (20): reduced matrices of the 100-segment RC ladder", Eq20},
	{"fig3", "Figure 3: inverter pair transient with line models", Fig3},
	{"table1", "Table 1 + Figure 4: multiplier interconnect reduction", Table1},
	{"table2", "Table 2 + Figure 5: substrate mesh reduction and AC", Table2},
	{"table3", "Table 3 + Figure 6: full-adder substrate-noise transient", Table3},
	{"table4", "Table 4: large 3-D mesh reduction and memory", Table4},
	{"sec4", "Section 4: LASO vs Padé complexity scaling", Section4},
	{"awe", "Ablation: AWE Padé instability vs PACT guarantees", AWEStability},
	{"sparsify", "Ablation: sparsity-enhancement threshold vs accuracy", Sparsify},
	{"ordering", "Ablation: fill-reducing ordering choice", Ordering},
	{"multipoint", "Multi-expansion-point vs single-point on the wide-band many-port bench", MultiPoint},
}

// Run executes the named experiment ("all" runs everything).
func Run(name string, w io.Writer, full bool) error {
	if name == "all" {
		for _, e := range Registry {
			fmt.Fprintf(w, "\n============ %s — %s ============\n", e.Name, e.Desc)
			if err := e.Run(w, full); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	for _, e := range Registry {
		if e.Name == name {
			return e.Run(w, full)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}

// ---------------------------------------------------------------------
// shared helpers

func engMem(bytes int64) string {
	return fmt.Sprintf("%.2f MB", float64(bytes)/1e6)
}

// crossing returns the first time the waveform of node idx crosses level
// in the given direction after tStart (linear interpolation), or NaN.
func crossing(r *sim.TranResult, idx int, level float64, rising bool, tStart float64) float64 {
	for k := 1; k < len(r.T); k++ {
		if r.T[k] < tStart {
			continue
		}
		v0 := r.X[k-1][idx]
		v1 := r.X[k][idx]
		if rising && v0 < level && v1 >= level || !rising && v0 > level && v1 <= level {
			f := (level - v0) / (v1 - v0)
			return r.T[k-1] + f*(r.T[k]-r.T[k-1])
		}
	}
	return math.NaN()
}

// maxDeviation samples two transient results at count points and returns
// the largest voltage difference.
func maxDeviation(a *sim.TranResult, ia int, b *sim.TranResult, ib int, tStop float64, count int) float64 {
	maxd := 0.0
	for k := 0; k <= count; k++ {
		tt := tStop * float64(k) / float64(count)
		if d := math.Abs(a.At(ia, tt) - b.At(ib, tt)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// deckStats counts nodes and R/C elements of a deck.
func deckStats(d *netlist.Deck) (nodes, rs, cs int) {
	return len(d.NodeNames()), len(d.ElementsOfType('r')), len(d.ElementsOfType('c'))
}

// runTransient builds and simulates a deck, returning the result, the
// circuit, the wall time and the solver's peak LU bytes.
func runTransient(d *netlist.Deck, tStop, h float64) (*sim.TranResult, *sim.Circuit, time.Duration, int64, error) {
	c, err := sim.Build(d)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	t0 := time.Now()
	res, err := c.Transient(tStop, h)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return res, c, time.Since(t0), c.Stats.PeakBytes, nil
}

// timeIt measures f.
func timeIt(f func() error) (time.Duration, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0), err
}

// extractMesh extracts a pure-RC deck with forced ports.
func extractMesh(deck *netlist.Deck, ports []string) (*stamp.Extraction, error) {
	return stamp.Extract(deck, ports...)
}
