package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Each experiment must run in quick mode and produce its key markers —
// these are the integration tests of the whole reproduction pipeline.

func runExp(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, &buf, false); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", name, err, buf.String())
	}
	return buf.String()
}

// labeledValue finds a line starting with label (after trimming) and
// returns its second whitespace field as a float.
func labeledValue(t *testing.T, out, label string) float64 {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		l = strings.TrimSpace(l)
		if strings.HasPrefix(l, label) {
			fields := strings.Fields(strings.TrimPrefix(l, label))
			if len(fields) == 0 {
				continue
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				t.Fatalf("line %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("label %q not found in output:\n%s", label, out)
	return 0
}

func TestEq20Markers(t *testing.T) {
	out := runExp(t, "eq20")
	for _, want := range []string{"passive: true", "31.99", "-547"} {
		if !strings.Contains(out, want) {
			t.Errorf("eq20 output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "pole 1 at 4.6") && !strings.Contains(out, "pole 1 at 4.7") {
		t.Errorf("eq20 pole not near 4.7 GHz:\n%s", out)
	}
}

func TestFig3Markers(t *testing.T) {
	out := runExp(t, "fig3")
	if !strings.Contains(out, "pact-reduced") || !strings.Contains(out, "t50") {
		t.Fatalf("fig3 output missing markers:\n%s", out)
	}
	dev2 := labeledValue(t, out, "2-segment")
	devRed := labeledValue(t, out, "pact-reduced")
	if devRed >= dev2 {
		t.Errorf("PACT deviation %v not below 2-segment deviation %v", devRed, dev2)
	}
}

func TestTable1Markers(t *testing.T) {
	out := runExp(t, "table1")
	for _, want := range []string{"no parasitics", "full parasitics", "pact reduced", "50% path delay", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Markers(t *testing.T) {
	out := runExp(t, "table2")
	for _, want := range []string{"3 GHz", "1 GHz", "300 MHz", "Figure 5", "max err below fmax"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
	// Every reduction must meet the 5% bound below its fmax; the error
	// lines read "max err below fmax: X.XX%".
	for _, l := range strings.Split(out, "\n") {
		if !strings.Contains(l, "max err below fmax:") {
			continue
		}
		f := strings.Fields(l)
		pct := strings.TrimSuffix(f[len(f)-1], "%")
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			t.Fatalf("bad error line %q", l)
		}
		// The 3.04 cutoff factor bounds each dropped pole term by 5%; the
		// aggregate over many comparable substrate modes can exceed it
		// slightly (the paper's error bars sit at 5%). Require < 10%.
		if v > 10.0 {
			t.Errorf("reduction error too large below fmax: %q", l)
		}
	}
}

func TestTable3Markers(t *testing.T) {
	out := runExp(t, "table3")
	for _, want := range []string{"25 substrate ports", "Figure 6", "speedup", "poles kept"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Markers(t *testing.T) {
	out := runExp(t, "table4")
	for _, want := range []string{"Cholesky factor", "Padé-based methods", "passivity check: ok", "vector memory ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q:\n%s", want, out)
		}
	}
}

func TestSection4Markers(t *testing.T) {
	out := runExp(t, "sec4")
	if !strings.Contains(out, "laso vecs") || !strings.Contains(out, "shape check") {
		t.Errorf("sec4 output missing markers:\n%s", out)
	}
}

func TestAWEMarkers(t *testing.T) {
	out := runExp(t, "awe")
	for _, want := range []string{"AWE first produces", "all real negative: true", "passive: true", "reorthogonalization ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("awe output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nonsense", &buf, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSparsifyMarkers(t *testing.T) {
	out := runExp(t, "sparsify")
	if !strings.Contains(out, "threshold") || !strings.Contains(out, "passivity is preserved") {
		t.Errorf("sparsify output missing markers:\n%s", out)
	}
}

func TestOrderingMarkers(t *testing.T) {
	out := runExp(t, "ordering")
	if !strings.Contains(out, "minimum-degree") || !strings.Contains(out, "identical poles") {
		t.Errorf("ordering output missing markers:\n%s", out)
	}
	// Minimum degree must produce the least fill of the three rows.
	var md, nat float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) >= 3 && f[0] == "minimum-degree" {
			md, _ = strconv.ParseFloat(f[1], 64)
		}
		if len(f) >= 3 && f[0] == "natural" {
			nat, _ = strconv.ParseFloat(f[1], 64)
		}
	}
	if md == 0 || nat == 0 || md >= nat {
		t.Errorf("fill: md=%v natural=%v", md, nat)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("all-experiments run skipped in short mode")
	}
	var buf bytes.Buffer
	if err := Run("all", &buf, false); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	for _, e := range Registry {
		if !strings.Contains(buf.String(), e.Name+" — ") {
			t.Errorf("experiment %s missing from 'all' output", e.Name)
		}
	}
}
