package experiments

import (
	"fmt"
	"io"
	"math"

	pact "repro"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// Eq20 reproduces the illustrative example of Section 6: reducing the
// 100-segment, 250 Ω / 1.35 pF ladder at f_max = 5 GHz, tol = 5% yields a
// single pole near 4.7 GHz and the admittance matrices of Eq. (20).
func Eq20(w io.Writer, full bool) error {
	deck := netgen.Ladder(100, 250, 1.35e-12)
	ex, err := stamp.Extract(deck)
	if err != nil {
		return err
	}
	model, stats, err := core.Reduce(ex.Sys, core.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ladder: %d internal nodes -> %d (poles found: %d)\n", ex.Sys.N, model.K(), stats.PolesFound)
	for i, f := range model.PoleFreqs() {
		fmt.Fprintf(w, "pole %d at %.2f GHz (paper: 4.7 GHz)\n", i+1, f/1e9)
	}
	g, c := model.Matrices()
	fmt.Fprintln(w, "reduced conductance matrix (mS; paper Eq. 20: [4 -4 0; -4 4 0; 0 0 32]):")
	for i := 0; i < g.R; i++ {
		fmt.Fprint(w, " ")
		for j := 0; j < g.C; j++ {
			fmt.Fprintf(w, " %8.3f", g.At(i, j)*1e3)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "reduced susceptance matrix (fF; paper Eq. 20: [443 225 -547; 225 457 -547; -547 -547 1094]):")
	for i := 0; i < c.R; i++ {
		fmt.Fprint(w, " ")
		for j := 0; j < c.C; j++ {
			fmt.Fprintf(w, " %8.1f", c.At(i, j)*1e15)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "passive: %v\n", model.CheckPassive(1e-9))
	return nil
}

// Fig3 reproduces Figure 3: the output waveform of the receiving inverter
// with (a) no line, (b) a 2-segment lumped line with identical totals,
// (c) the full distributed line, and (d) the PACT-reduced line (one
// internal node). The paper's point: (d) tracks (c) while (b), with the
// same reduced size, does not.
func Fig3(w io.Writer, full bool) error {
	nseg := 100
	tStop := 6e-9
	h := 0.02e-9
	if !full {
		nseg = 60
	}
	origFull := netgen.InverterPair(nseg, 250, 1.35e-12, netgen.LineFull)
	red, err := pact.ReduceDeck(origFull, pact.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "reduced line: %d poles (paper: 1 pole at 4.7 GHz)\n", red.Model.K())

	variants := []struct {
		name string
		deck *netlist.Deck
	}{
		{"no-line", netgen.InverterPair(nseg, 250, 1.35e-12, netgen.LineNone)},
		{"2-segment", netgen.InverterPair(nseg, 250, 1.35e-12, netgen.LineLumped2)},
		{"full-line", origFull},
		{"pact-reduced", red.Deck},
	}
	type run struct {
		res *sim.TranResult
		idx int
	}
	runs := make([]run, len(variants))
	for i, v := range variants {
		res, c, _, _, err := runTransient(v.deck, tStop, h)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		idx, _ := c.NodeIndex("out2")
		runs[i] = run{res, idx}
	}
	fmt.Fprintf(w, "V(out2) (V); input switches at t = 1 ns\n%10s", "t (ns)")
	for _, v := range variants {
		fmt.Fprintf(w, " %13s", v.name)
	}
	fmt.Fprintln(w)
	for _, tt := range []float64{0.5, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0} {
		fmt.Fprintf(w, "%10.2f", tt)
		for _, r := range runs {
			fmt.Fprintf(w, " %13.4f", r.res.At(r.idx, tt*1e-9))
		}
		fmt.Fprintln(w)
	}
	// 50% crossings of out2 after the input edge (out2 rises).
	fmt.Fprintf(w, "%10s", "t50 (ns)")
	for _, r := range runs {
		t50 := crossing(r.res, r.idx, 2.5, true, 1e-9)
		fmt.Fprintf(w, " %13.3f", t50*1e9)
	}
	fmt.Fprintln(w)
	// Deviation of each variant from the full line.
	fmt.Fprintln(w, "max |V - V(full-line)| over the window:")
	fullRun := runs[2]
	for i, v := range variants {
		if i == 2 {
			continue
		}
		maxd := 0.0
		for k := 0; k <= 300; k++ {
			tt := tStop * float64(k) / 300
			if d := math.Abs(runs[i].res.At(runs[i].idx, tt) - fullRun.res.At(fullRun.idx, tt)); d > maxd {
				maxd = d
			}
		}
		fmt.Fprintf(w, "  %-13s %6.3f V\n", v.name, maxd)
	}
	return nil
}
