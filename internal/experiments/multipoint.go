package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netgen"
)

// MultiPoint is the wide-band many-port comparison behind the
// multi-expansion-point mode: the graded-grid workload of
// `netgen -kind wideband` reduced single-point, multi-point, and
// cluster-thinned multi-point at one pole budget, each measured against
// the dense brute-force Y(s) oracle over three decades up to f_max. The
// quick variant runs the 64-port preset; -full runs the 256-port bench
// of the headline claim. Single-point PACT matches moments at s = 0
// only, so at a fixed budget its accuracy degrades over a wide band as
// the port count grows — the multi-point rows hold the same reduced
// order and cut the band-edge error by building the projection basis
// from responses at several expansion points.
func MultiPoint(w io.Writer, full bool) error {
	ports := 64
	if full {
		ports = 256
	}
	deck, portNames, err := netgen.WideBand(netgen.WideBandPreset(ports))
	if err != nil {
		return err
	}
	ex, err := extractMesh(deck, portNames)
	if err != nil {
		return err
	}
	sys := ex.Sys
	const fmax = 2e10
	budget := 48
	if !full {
		budget = 24
	}
	base := core.Options{FMax: fmax, Tol: 0.05, MaxPoles: budget}
	multi2 := base
	multi2.Shifts = []float64{0, fmax}
	multi3 := base
	multi3.Shifts = []float64{0, fmax / 30, fmax}
	clustered := multi2
	clustered.PortClusters = 16
	freqs := core.OracleFreqs(fmax, 3, 5)

	o := netgen.WideBandPreset(ports)
	fmt.Fprintf(w, "wide-band bench: %dx%d graded grid (%g decades), %d ports, %d internal nodes\n",
		o.NX, o.NY, o.GradeDecades, sys.M, sys.N)
	fmt.Fprintf(w, "pole budget %d at every row; error is max rel ‖Y‖_F vs the dense oracle over [f_max/1000, f_max]\n\n", budget)
	fmt.Fprintf(w, "%-30s %6s %6s %6s %10s %14s\n",
		"mode", "poles", "cands", "kept", "reduce", "max rel err")
	for _, row := range []struct {
		name string
		opts core.Options
	}{
		{"single-point (classic PACT)", base},
		{"multi-point {0, fmax}", multi2},
		{"multi-point {0, fmax/30, fmax}", multi3},
		{"multi-point 2pt + 16 clusters", clustered},
	} {
		var model *core.ReducedModel
		var stats *core.Stats
		elapsed, err := timeIt(func() error {
			var rerr error
			model, stats, rerr = core.Reduce(sys, row.opts)
			return rerr
		})
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		errs, err := core.OracleMaxRelErrs(sys, []*core.ReducedModel{model}, freqs)
		if err != nil {
			return err
		}
		cands, kept := "-", "-"
		if stats.Shifts > 0 {
			cands = fmt.Sprintf("%d", stats.BasisColumns)
			kept = fmt.Sprintf("%d", stats.BasisKept)
		}
		fmt.Fprintf(w, "%-30s %6d %6s %6s %10s %13.3f%%\n",
			row.name, model.K(), cands, kept, elapsed.Round(time.Millisecond), 100*errs[0])
	}
	fmt.Fprintln(w, "\nevery row is passive by construction (congruence on the non-negative")
	fmt.Fprintln(w, "definite (D, E) pencil); the multi-point rows spend their pole budget on")
	fmt.Fprintln(w, "band-weighted port coupling instead of the slowest modes, which is where")
	fmt.Fprintln(w, "the equal-size accuracy win comes from. The oracle suite in internal/core")
	fmt.Fprintln(w, "asserts the ordering; this table publishes the sizes.")
	return nil
}
