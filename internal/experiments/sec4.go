package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/pade"
)

// Section4 reproduces the complexity comparison of Section 4: on meshes
// with the internal node count proportional to the port count (the
// paper's assumption), LASO's working set stays at O(1) length-n vectors
// and its vector products per found pole grow like O(m²), while the
// block-Padé methods store O(m) vectors (m·n numbers) and spend O(m³)
// vector products — measured here as peak live vectors and operator
// applications.
func Section4(w io.Writer, full bool) error {
	sizes := []int{6, 8, 10}
	if full {
		sizes = append(sizes, 12, 14)
	}
	fmt.Fprintf(w, "%6s %6s %6s | %12s %12s | %12s %12s | %10s\n",
		"m", "n", "n/m", "laso vecs", "laso mv", "pade vecs", "pade mv", "vec ratio")
	for _, s := range sizes {
		o := netgen.MeshOpts{
			NX: s, NY: s, NZ: s/2 + 2,
			REdge: 630, CSurf: 30e-15,
			NPorts: s * s / 4,
		}
		deck, ports, err := netgen.Mesh3D(o)
		if err != nil {
			return err
		}
		ex, err := extractMesh(deck, ports)
		if err != nil {
			return err
		}
		_, lst, err := core.Reduce(ex.Sys, core.Options{
			FMax: 500e6, Tol: 0.10, TwoPass: true, XCacheBudget: -1, DenseThreshold: -1,
		})
		if err != nil {
			return err
		}
		lasoVecs := lst.PeakVectors
		if lasoVecs == 0 {
			lasoVecs = 2
		}
		_, pst, err := pade.Reduce(ex.Sys, 2, core.Options{FMax: 500e6, DenseThreshold: -1})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %6d %6.1f | %12d %12d | %12d %12d | %9.1fx\n",
			ex.Sys.M, ex.Sys.N, float64(ex.Sys.N)/float64(ex.Sys.M),
			lasoVecs, lst.MatVecs, pst.PeakVectors, pst.MatVecs,
			float64(pst.PeakVectors)/float64(lasoVecs))
	}
	fmt.Fprintln(w, "\nshape check: LASO vectors stay O(poles), Padé vectors grow with m (the paper's O(m) vs O(m²) memory).")
	return nil
}
