package experiments

import (
	"fmt"
	"io"

	pact "repro"
	"repro/internal/netgen"
)

// Table3 reproduces Table 3 and Figure 6: the one-bit full adder
// switching over the substrate mesh, simulated with the original mesh and
// with the mesh reduced at 1 GHz / 5%, comparing the substrate-noise
// waveform at the monitor contact and the simulation cost.
func Table3(w io.Writer, full bool) error {
	opts := netgen.SmallMeshOpts() // paper scale: 1521-node mesh
	tStop, h := 8e-9, 0.05e-9
	if !full {
		// Quick mode: smaller substrate, same structure.
		opts = netgen.MeshOpts{NX: 7, NY: 7, NZ: 5, REdge: 630, CSurf: 30e-15, NPorts: 25}
	} else {
		tStop = 16e-9
	}
	deck, info, err := netgen.FullAdderOnMesh(opts)
	if err != nil {
		return err
	}
	nodes, rs, cs := deckStats(deck)
	fmt.Fprintf(w, "original: %d nodes, %d R + %d C (paper: 1540 nodes, 5256 RC elements), 25 substrate ports\n",
		nodes, rs, cs)

	red, err := pact.ReduceDeck(deck, pact.Options{FMax: 1e9, Tol: 0.05, SparsifyTol: 1e-8})
	if err != nil {
		return err
	}
	rn, rr, rc := deckStats(red.Deck)
	fmt.Fprintf(w, "reduced:  %d nodes, %d R + %d C, %d poles kept, reduction %.3f s (paper: 41 nodes, 431 RCs, 6.2 s)\n\n",
		rn, rr, rc, red.Model.K(), red.Elapsed.Seconds())

	resO, cO, tO, memO, err := runTransient(deck, tStop, h)
	if err != nil {
		return fmt.Errorf("original transient: %w", err)
	}
	resR, cR, tR, memR, err := runTransient(red.Deck, tStop, h)
	if err != nil {
		return fmt.Errorf("reduced transient: %w", err)
	}
	fmt.Fprintf(w, "%-16s %10s %10s\n", "transient", "time (s)", "peak LU")
	fmt.Fprintf(w, "%-16s %10.3f %10s\n", "original", tO.Seconds(), engMem(memO))
	fmt.Fprintf(w, "%-16s %10.3f %10s\n", "reduced", tR.Seconds(), engMem(memR))
	fmt.Fprintf(w, "speedup: %.1fx, memory ratio: %.1fx (paper: >300x time, ~100x memory)\n\n",
		tO.Seconds()/tR.Seconds(), float64(memO)/float64(max64(memR, 1)))

	// Figure 6: substrate voltage at the monitor contact.
	iO, _ := cO.NodeIndex(info.Monitor)
	iR, _ := cR.NodeIndex(info.Monitor)
	fmt.Fprintf(w, "Figure 6 — substrate voltage at the monitor contact (mV)\n%10s %14s %14s\n",
		"t (ns)", "original", "reduced")
	steps := 20
	for k := 0; k <= steps; k++ {
		tt := tStop * float64(k) / float64(steps)
		fmt.Fprintf(w, "%10.2f %14.4f %14.4f\n", tt*1e9, 1e3*resO.At(iO, tt), 1e3*resR.At(iR, tt))
	}
	fmt.Fprintf(w, "max |ΔV| between original and reduced: %.4f mV\n",
		1e3*maxDeviation(resO, iO, resR, iR, tStop, 400))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
