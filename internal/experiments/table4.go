package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/pade"
)

// Table4 reproduces Table 4: reduction of the very large 3-D substrate
// mesh (469 ports, ~19.9k internal nodes at paper scale) at 500 MHz with
// 10% tolerance, with the memory accounting of Section 4: the Cholesky
// factor dominates PACT's footprint, while the Padé-based methods would
// additionally need the m·n block Lanczos vectors (the paper's 71.1 MB
// versus RCFIT's 6.3 MB of non-Cholesky memory).
func Table4(w io.Writer, full bool) error {
	opts := netgen.LargeMeshOpts(469)
	if !full {
		opts = netgen.MeshOpts{NX: 16, NY: 16, NZ: 10, REdge: 630, CSurf: 30e-15, NPorts: 120}
	}
	deck, ports, err := netgen.Mesh3D(opts)
	if err != nil {
		return err
	}
	ex, err := extractMesh(deck, ports)
	if err != nil {
		return err
	}
	_, rs, cs := ex.Sys.RCStats()
	m, n := ex.Sys.M, ex.Sys.N
	fmt.Fprintf(w, "original: %d ports, %d internal nodes, %d R, %d C\n", m, n, rs, cs)
	fmt.Fprintf(w, "(paper: 469 ports, 19877 internal, 65809 R, 3683 C)\n\n")

	var model *core.ReducedModel
	var st *core.Stats
	elapsed, err := timeIt(func() error {
		var e error
		// TwoPass keeps the Lanczos working set at two vectors — the
		// memory discipline the paper's Section 4 analysis assumes.
		model, st, e = core.Reduce(ex.Sys, core.Options{
			FMax: 500e6, Tol: 0.10, TwoPass: true, XCacheBudget: -1,
		})
		return e
	})
	if err != nil {
		return err
	}
	elems, internal, err := realizeElemsSparsified(model, ex.PortNames, 2e-3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %6s %9s %8s %8s %10s\n", "network", "ports", "internal", "R's", "C's", "time (s)")
	fmt.Fprintf(w, "%-18s %6d %9d %8d %8d %10s\n", "original", m, n, rs, cs, "—")
	fmt.Fprintf(w, "%-18s %6d %9d %8d %8d %10.1f\n", "reduced, 500 MHz", m, len(internal),
		countType(elems, 'r'), countType(elems, 'c'), elapsed.Seconds())
	fmt.Fprintf(w, "(realized with the sparsity-enhancement heuristic at 0.2%%, as RCFIT does;\n")
	fmt.Fprintf(w, " paper reduced: 469 ports, 10 internal, 14221 R, 46427 C, 1792.6 s)\n\n")

	// Memory accounting (Section 4 / Table 4 discussion).
	cholMB := float64(st.CholeskyBytes) / 1e6
	lanczosVecs := st.PeakVectors
	if lanczosVecs == 0 {
		lanczosVecs = 2
	}
	workMB := float64(lanczosVecs) * float64(n) * 8 / 1e6
	portMB := 2 * float64(m) * float64(m) * 8 / 1e6 // dense A', B'
	padeMB := float64(m+1) * float64(n) * 8 / 1e6   // one block of Lanczos vectors
	fmt.Fprintf(w, "memory: Cholesky factor %.1f MB (paper: 19.5 of 25.8 MB)\n", cholMB)
	fmt.Fprintf(w, "        LASO working set %d vectors = %.2f MB; dense port blocks %.2f MB\n",
		lanczosVecs, workMB, portMB)
	fmt.Fprintf(w, "        Padé-based methods would need %.1f MB per block of Lanczos vectors\n", padeMB)
	fmt.Fprintf(w, "        (MPVL stores two such blocks: %.1f MB; paper: 71.1 MB at full scale)\n", 2*padeMB)
	fmt.Fprintf(w, "poles kept: %d (paper: 10); lanczos iterations: %d; solves: %d\n\n",
		model.K(), st.LanczosIters, st.Solves)

	// Measured head-to-head on this scale: the Padé-congruence baseline's
	// actual peak vector count versus LASO's.
	if !full {
		_, pst, err := pade.Reduce(ex.Sys, 2, core.Options{FMax: 500e6})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "measured at this scale: LASO peak %d length-n vectors; Padé(q=2) peak %d (basis %d)\n",
			lanczosVecs, pst.PeakVectors, pst.BasisSize)
		fmt.Fprintf(w, "vector memory ratio Padé/LASO: %.1fx\n",
			float64(pst.PeakVectors)/float64(lanczosVecs))
	}
	// The realized reduced network must stay passive even at this scale.
	if !model.CheckPassive(1e-7) {
		return fmt.Errorf("table4: reduced model lost passivity")
	}
	fmt.Fprintln(w, "reduced network passivity check: ok")
	return nil
}
