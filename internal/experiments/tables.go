package experiments

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"time"

	pact "repro"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/stamp"
)

// Table1 reproduces Table 1 and Figure 4: reduction of the tree-like RC
// interconnect parasitics of a multiplier critical path, followed by
// transient simulation without parasitics, with the full parasitics, and
// with the PACT-reduced parasitics. The multiplier itself is synthetic
// (see DESIGN.md §5); the structure class — many tree-like nets, few
// ports per net — is the paper's.
func Table1(w io.Writer, full bool) error {
	stages, fanout, segs, side := 8, 3, 6, 24
	tStop, h := 12e-9, 0.05e-9
	if full {
		// Paper scale in element count: ~400 parasitic nets averaging ~30
		// RC elements each lands near the multiplier's 20k elements.
		side = 400
		segs = 8
		fanout = 4
	}
	deck := netgen.Multiplier(stages, fanout, segs, side, 7)
	nodes, rs, cs := deckStats(deck)
	fmt.Fprintf(w, "workload: %d inverter stages, %d side nets; %d nodes, %d R, %d C\n",
		stages, side, nodes, rs, cs)
	fmt.Fprintf(w, "(paper: 7264-transistor multiplier, 20263 RC elements)\n\n")

	red, err := pact.ReduceDeck(deck, pact.Options{FMax: 500e6, Tol: 0.05, SparsifyTol: 1e-8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %8s %8s %8s %12s %12s %10s\n",
		"simulation", "nodes", "R's", "C's", "reduce (s)", "sim (s)", "peak LU")
	rows := []struct {
		name string
		d    *deckAlias
		red  time.Duration
	}{
		{"no parasitics", netgen.MultiplierIdeal(stages, side), 0},
		{"full parasitics", deck, 0},
		{"pact reduced", red.Deck, red.Elapsed},
	}
	type outRow struct {
		res *sim.TranResult
		idx int
	}
	var outs []outRow
	var simTimes []time.Duration
	for _, r := range rows {
		res, c, dt, peak, err := runTransient(r.d, tStop, h)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		n2, r2, c2 := deckStats(r.d)
		fmt.Fprintf(w, "%-22s %8d %8d %8d %12.3f %12.3f %10s\n",
			r.name, n2, r2, c2, r.red.Seconds(), dt.Seconds(), engMem(peak))
		idx, ok := c.NodeIndex("out")
		if !ok {
			return fmt.Errorf("%s: node 'out' missing from deck", r.name)
		}
		outs = append(outs, outRow{res, idx})
		simTimes = append(simTimes, dt)
	}
	fmt.Fprintf(w, "\nreduced-vs-full sim speedup: %.2fx\n", simTimes[1].Seconds()/simTimes[2].Seconds())
	fmt.Fprintln(w, "(the paper saw only 12%: its 7264 nonlinear transistors dominated the cost;")
	fmt.Fprintln(w, " this synthetic path has far fewer transistors per RC element, so the RC")
	fmt.Fprintln(w, " reduction pays off more — same effect, different mix)")

	// Figure 4: critical-path output waveform.
	fmt.Fprintf(w, "\nFigure 4 — V(out) of the critical path (V)\n%10s %14s %14s %14s\n",
		"t (ns)", "no-parasitic", "full", "pact-reduced")
	for _, tt := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 10, 12} {
		fmt.Fprintf(w, "%10.1f %14.4f %14.4f %14.4f\n", tt,
			outs[0].res.At(outs[0].idx, tt*1e-9),
			outs[1].res.At(outs[1].idx, tt*1e-9),
			outs[2].res.At(outs[2].idx, tt*1e-9))
	}
	// The path has an even number of inversions: out rises with the input
	// edge at 1 ns.
	d10 := crossing(outs[0].res, outs[0].idx, 2.5, true, 1e-9)
	d11 := crossing(outs[1].res, outs[1].idx, 2.5, true, 1e-9)
	d12 := crossing(outs[2].res, outs[2].idx, 2.5, true, 1e-9)
	fmt.Fprintf(w, "50%% path delay: no-parasitic %.3f ns, full %.3f ns, reduced %.3f ns\n",
		d10*1e9, d11*1e9, d12*1e9)
	fmt.Fprintf(w, "max |V_reduced - V_full| = %.3f V\n",
		maxDeviation(outs[1].res, outs[1].idx, outs[2].res, outs[2].idx, tStop, 300))
	return nil
}

type deckAlias = pact.Deck

// Table2 reproduces Table 2 and Figure 5: the 25-port substrate mesh is
// reduced at maximum frequencies of 3 GHz, 1 GHz and 300 MHz (5%
// tolerance), and the small-signal transimpedance between the monitor
// port and an NMOS port is swept over 81 frequencies for the original and
// each reduced network.
func Table2(w io.Writer, full bool) error {
	opts := netgen.SmallMeshOpts()
	deck, ports, err := netgen.Mesh3D(opts)
	if err != nil {
		return err
	}
	ex, err := extractMesh(deck, ports)
	if err != nil {
		return err
	}
	nodes, rs, cs := ex.Sys.RCStats()
	fmt.Fprintf(w, "original mesh: %d nodes (%d ports), %d R, %d C (paper: 1525 nodes, 4970 R, 253 C)\n\n",
		nodes, ex.Sys.M, rs, cs)

	freqs := sim.LogSpace(10e6, 10e9, 81)
	iMon, jDrv := 2, 12 // monitor port, an "NMOS body" port

	// Original AC sweep (exact Y(s) per frequency), with the independent
	// frequency points fanned out across the worker pool.
	var zOrig []complex128
	acOrig, err := timeIt(func() error {
		ys, err := ex.Sys.YSweep(freqs, par.Workers(len(freqs)))
		if err != nil {
			return err
		}
		zOrig, err = par.Map(len(freqs), func(k int) (complex128, error) {
			return core.TransimpedanceOf(ys[k], iMon, jDrv)
		})
		return err
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-10s %6s %6s %6s %6s %12s %12s %14s\n",
		"fmax", "nodes", "R's", "C's", "poles", "reduce (s)", "chol mem", "AC sweep (s)")
	fmt.Fprintf(w, "%-10s %6d %6d %6d %6s %12s %12s %14.3f\n",
		"(original)", nodes, rs, cs, "—", "—", "—", acOrig.Seconds())

	type redRun struct {
		label string
		model *core.ReducedModel
		z     []complex128
		fmax  float64
	}
	var reds []redRun
	for _, fm := range []float64{3e9, 1e9, 300e6} {
		var model *core.ReducedModel
		var st *core.Stats
		redTime, err := timeIt(func() error {
			var e error
			model, st, e = core.Reduce(ex.Sys, core.Options{FMax: fm, Tol: 0.05})
			return e
		})
		if err != nil {
			return err
		}
		elems, internal, err := realizeElems(model, ex.PortNames)
		if err != nil {
			return err
		}
		var z []complex128
		acTime, err := timeIt(func() error {
			var e error
			z, e = par.Map(len(freqs), func(k int) (complex128, error) {
				y := model.Y(complex(0, 2*math.Pi*freqs[k]))
				return core.TransimpedanceOf(y, iMon, jDrv)
			})
			return e
		})
		if err != nil {
			return err
		}
		label := fmtFreq(fm)
		fmt.Fprintf(w, "%-10s %6d %6d %6d %6d %12.3f %12s %14.3f\n",
			label, ex.Sys.M+len(internal), countType(elems, 'r'), countType(elems, 'c'),
			model.K(), redTime.Seconds(), engMem(st.CholeskyBytes), acTime.Seconds())
		reds = append(reds, redRun{label, model, z, fm})
	}

	// Figure 5: |Z| series plus the 5%-below-fmax verification.
	fmt.Fprintf(w, "\nFigure 5 — |Z(monitor, drive)| (Ω)\n%12s %12s", "f (Hz)", "original")
	for _, r := range reds {
		fmt.Fprintf(w, " %12s", r.label)
	}
	fmt.Fprintln(w)
	for k := 0; k < len(freqs); k += 8 {
		fmt.Fprintf(w, "%12.3g %12.4g", freqs[k], cmplx.Abs(zOrig[k]))
		for _, r := range reds {
			fmt.Fprintf(w, " %12.4g", cmplx.Abs(r.z[k]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nrelative |Z| error at/below each reduction's fmax")
	fmt.Fprintln(w, "(the 3.04 cutoff factor bounds each dropped pole term by 5%; the")
	fmt.Fprintln(w, " aggregate over comparable modes can run slightly above it):")
	for _, r := range reds {
		maxErr := 0.0
		for k, f := range freqs {
			if f > r.fmax {
				continue
			}
			e := cmplx.Abs(r.z[k]-zOrig[k]) / cmplx.Abs(zOrig[k])
			if e > maxErr {
				maxErr = e
			}
		}
		fmt.Fprintf(w, "  %-8s max err below fmax: %.2f%%\n", r.label, 100*maxErr)
	}
	return nil
}

func fmtFreq(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%g GHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%g MHz", f/1e6)
	}
	return fmt.Sprintf("%g Hz", f)
}

// realizeElems realizes a model to netlist elements (helper shared by
// Table2/Table3).
func realizeElems(model *core.ReducedModel, portNames []string) ([]netlist.Element, []string, error) {
	return stamp.Realize(model, portNames, stamp.RealizeOptions{SparsifyTol: 1e-8})
}

// realizeElemsSparsified applies the RCFIT sparsity-enhancement heuristic
// at the strength Table 4 needs: the dense 469×469 port blocks carry many
// negligibly small couplings between distant contacts, and the paper's
// reduced element counts (14k R on a 469-port network, versus the 110k of
// the full dense block) are only reachable with it.
func realizeElemsSparsified(model *core.ReducedModel, portNames []string, tol float64) ([]netlist.Element, []string, error) {
	return stamp.Realize(model, portNames, stamp.RealizeOptions{SparsifyTol: tol})
}

func countType(elems []netlist.Element, letter byte) int {
	n := 0
	for _, e := range elems {
		if e.Name()[0] == letter {
			n++
		}
	}
	return n
}
