// Package lanczos implements the symmetric Lanczos eigensolvers used by
// PACT's pole-analysis transform: the plain recursion, full
// reorthogonalization, and the paper's choice — the Lanczos Algorithm with
// Selective Orthogonalization (LASO, Parlett & Scott), which
// orthogonalizes new Lanczos vectors against the small set of converged
// Ritz vectors only (loss of orthogonality happens along exactly those
// directions), rather than against the whole Lanczos basis.
//
// The solver finds every eigenvalue of a symmetric operator that lies
// above a caller-specified cutoff, together with the corresponding
// (approximate) eigenvectors. For PACT the operator is
// x ↦ L⁻¹ E L⁻ᵀ x, applied matrix-free with sparse triangular solves, and
// the cutoff is λ_c = 1/(2π f_c): eigenvalues above λ_c correspond to the
// low-frequency poles that must be preserved.
package lanczos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/check"
	"repro/internal/dense"
	"repro/internal/resilience/inject"
)

// ErrNoConvergence is the sentinel wrapped by every stagnation failure of
// the iterative eigensolvers (FindAbove, TwoPass). Callers match it with
// errors.Is to decide whether a restart with different options — or the
// dense fallback — is worth attempting; other error causes (a broken
// tridiagonal eigensolve, cancellation) are not retryable.
var ErrNoConvergence = errors.New("lanczos: no convergence")

// Operator is a symmetric linear operator.
type Operator interface {
	// Dim returns the dimension n of the operator.
	Dim() int
	// Apply computes dst = A src. dst and src do not alias.
	Apply(dst, src []float64)
}

// Mode selects the reorthogonalization strategy.
type Mode int

const (
	// Selective is LASO: orthogonalize against converged Ritz vectors when
	// the loss-of-orthogonality estimate exceeds sqrt(machine epsilon).
	Selective Mode = iota
	// Full orthogonalizes every new vector against all previous Lanczos
	// vectors (accurate but O(k) memory and O(k²) vector products, the
	// inefficiency the paper's Section 3.2 calls out).
	Full
	// None performs no reorthogonalization; spurious duplicate Ritz values
	// may appear for long runs. Exposed for the ablation benches.
	None
)

func (m Mode) String() string {
	switch m {
	case Selective:
		return "selective"
	case Full:
		return "full"
	case None:
		return "none"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures FindAbove.
type Options struct {
	// Cutoff: find all eigenvalues >= Cutoff. Required (may be zero or
	// negative to request the full positive spectrum of an NND operator;
	// use a small positive value to bound work).
	Cutoff float64
	// Mode is the reorthogonalization strategy (default Selective).
	Mode Mode
	// MaxIter caps the number of Lanczos steps (default: Dim()).
	MaxIter int
	// ConvTol is the relative Ritz residual bound for convergence
	// (default 1e-8).
	ConvTol float64
	// ExtraIters continues this many steps after the stopping criterion is
	// met, so late copies of multiple eigenvalues can emerge through
	// deflation (default 12).
	ExtraIters int
	// Seed seeds the deterministic starting vector (default 1).
	Seed int64
}

// Result reports the eigenpairs found above the cutoff.
type Result struct {
	// Values holds the converged eigenvalues >= Cutoff, descending.
	Values []float64
	// Vectors holds the matching orthonormal Ritz vectors as columns of an
	// n-by-len(Values) matrix.
	Vectors *dense.Mat
	// Iterations is the number of Lanczos steps taken.
	Iterations int
	// MatVecs counts operator applications.
	MatVecs int
	// Reorths counts selective/full orthogonalization vector operations.
	Reorths int
	// PeakVectors is the maximum number of length-n vectors simultaneously
	// held, the quantity compared in the Section 4 memory analysis.
	PeakVectors int
}

const machEps = 2.220446049250313e-16

// FindAbove runs the Lanczos iteration on op until every eigenvalue above
// opts.Cutoff has converged (or MaxIter is reached, which returns an
// error wrapping ErrNoConvergence).
func FindAbove(op Operator, opts Options) (*Result, error) {
	return FindAboveCtx(context.Background(), op, opts)
}

// FindAboveCtx is FindAbove with cooperative cancellation: the context is
// checked once per Lanczos step (each step costs at least one operator
// application, so the check is free by comparison), and a canceled run
// returns ctx.Err() wrapped with the iteration it stopped at.
func FindAboveCtx(ctx context.Context, op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	if n == 0 {
		return &Result{Vectors: dense.New(0, 0)}, nil
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 || maxIter > n {
		maxIter = n
	}
	convTol := opts.ConvTol
	if convTol <= 0 {
		convTol = 1e-8
	}
	extra := opts.ExtraIters
	if extra <= 0 {
		extra = 12
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Lanczos vector history (columns). Needed to form Ritz vectors; the
	// low-memory two-pass variant lives in twopass.go.
	w := make([][]float64, 0, 32)
	var alpha, beta []float64

	cur := randUnit(rng, n)
	var prev []float64
	betaPrev := 0.0
	av := make([]float64, n)

	res := &Result{}
	// Converged Ritz vectors (LASO's selective orthogonalization targets).
	var ritzVecs [][]float64
	var ritzVals []float64
	convergedAt := make(map[int]bool) // registered genuine Ritz values (bucketed)
	spuriousAt := make(map[int]bool)  // certified-spurious Ritz values (bucketed)
	au := make([]float64, n)

	stableFor := 0

	for j := 0; j < maxIter; j++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lanczos: canceled at iteration %d: %w", j, err)
		}
		if inject.Enabled && inject.ShouldFail(inject.LanczosIter, j) {
			return nil, fmt.Errorf("%w: injected stagnation at iteration %d (cutoff %g)", ErrNoConvergence, j, opts.Cutoff)
		}
		//lint:ignore defersmell storing the Lanczos basis is the algorithm's memory model (reported as PeakVectors); the two-pass variant avoids it
		w = append(w, append([]float64(nil), cur...))
		op.Apply(av, cur)
		res.MatVecs++
		a := dot(cur, av)
		alpha = append(alpha, a)
		for i := range av {
			av[i] -= a * cur[i]
			if prev != nil {
				av[i] -= betaPrev * prev[i]
			}
		}
		switch opts.Mode {
		case Full:
			for _, wk := range w {
				c := dot(wk, av)
				axpy(av, -c, wk)
				res.Reorths++
			}
			// Second pass for numerical safety (classic iterated MGS).
			for _, wk := range w {
				c := dot(wk, av)
				axpy(av, -c, wk)
			}
		case Selective:
			// Orthogonalize against the converged Ritz vectors. Loss of
			// orthogonality in finite precision happens precisely along
			// converged Ritz directions (Paige), so purging those
			// components every step keeps the recursion clean at O(k·n)
			// per step with k = #converged — the LASO cost the paper's
			// Section 4 contrasts with full reorthogonalization.
			for _, u := range ritzVecs {
				c := dot(u, av)
				axpy(av, -c, u)
				res.Reorths++
			}
		case None:
			// nothing
		}
		b := norm2(av)
		res.Iterations = j + 1
		scaleT := tScale(alpha, beta)
		if b <= 1e3*machEps*scaleT {
			// Invariant subspace: restart with a fresh random direction
			// orthogonal to everything seen so far.
			beta = append(beta, 0)
			nv := randUnit(rng, n)
			for _, wk := range w {
				axpy(nv, -dot(wk, nv), wk)
			}
			for _, u := range ritzVecs {
				axpy(nv, -dot(u, nv), u)
			}
			nb := norm2(nv)
			if nb < 1e-12 {
				// Whole space exhausted; in Selective/None mode redo with
				// full orthogonalization (see the exhaustion comment at
				// the end of the iteration loop).
				if opts.Mode != Full {
					full := opts
					full.Mode = Full
					fres, err := FindAboveCtx(ctx, op, full)
					if err != nil {
						return nil, err
					}
					fres.MatVecs += res.MatVecs
					fres.Reorths += res.Reorths
					return fres, nil
				}
				return finish(op, w, alpha, beta[:len(beta)-1], opts.Cutoff, convTol, res)
			}
			scal(nv, 1/nb)
			prev = nil
			betaPrev = 0
			cur = nv
			continue
		}
		scal(av, 1/b)
		// Rotate the three working buffers instead of cloning av: w already
		// holds its own copy of every Lanczos vector, so cur/prev/av can
		// cycle. av inherits the retired prev buffer (nil on the first
		// iteration and after a restart).
		prev, cur, av = cur, av, prev
		if av == nil {
			av = make([]float64, n)
		}
		betaPrev = b
		beta = append(beta, b)

		// Convergence check. Cheap early on, throttled once j grows.
		checkEvery := 1 + j/20
		if (j+1)%checkEvery != 0 && j+1 < maxIter {
			continue
		}
		vals, z, err := dense.TridiagEig(alpha, beta[:len(beta)-1])
		if err != nil {
			return nil, fmt.Errorf("lanczos: tridiagonal eigensolve failed: %w", err)
		}
		k := len(vals)
		allAboveConverged := true
		anyUnconvergedCouldPass := false
		newConverged := false
		for i := k - 1; i >= 0; i-- {
			bound := b * math.Abs(z.At(k-1, i))
			conv := bound <= convTol*scaleT
			key := keyOf(vals[i], scaleT)
			if conv && vals[i] >= opts.Cutoff && !convergedAt[key] && !spuriousAt[key] {
				// Certify the candidate with an explicit residual before
				// registering it: T can converge values that are not
				// eigenvalues of A once orthogonality among the
				// unconverged directions degrades (they betray themselves
				// by ‖Au − θu‖ ≈ θ instead of ≈ bound).
				u := combine(w, z, i)
				orthAgainst(u, ritzVecs)
				nb := norm2(u)
				if nb > 1e-8 {
					scal(u, 1/nb)
					op.Apply(au, u)
					res.MatVecs++
					r2 := 0.0
					for q := range au {
						d := au[q] - vals[i]*u[q]
						r2 += d * d
					}
					if math.Sqrt(r2) <= 0.5*vals[i] {
						ritzVecs = append(ritzVecs, u)
						ritzVals = append(ritzVals, vals[i])
						convergedAt[key] = true
						newConverged = true
					} else {
						spuriousAt[key] = true
					}
				}
			}
			if spuriousAt[key] {
				// Certified junk: it neither blocks termination nor gets
				// kept.
				continue
			}
			if vals[i] >= opts.Cutoff && !conv {
				allAboveConverged = false
			}
			if !conv && vals[i]+bound >= opts.Cutoff {
				anyUnconvergedCouldPass = true
			}
		}
		if newConverged {
			stableFor = 0
		}
		if allAboveConverged && !anyUnconvergedCouldPass {
			stableFor += checkEvery
			if stableFor >= extra {
				return finish(op, w, alpha, beta[:len(beta)-1], opts.Cutoff, convTol, res)
			}
		} else {
			stableFor = 0
		}
	}
	if res.Iterations >= n {
		// The Krylov space is the whole space. With full
		// reorthogonalization T's eigensystem is (backward stably) the
		// operator's; with selective orthogonalization the small end of a
		// widely spread spectrum may be corrupted, so redo the run in Full
		// mode — exhaustion implies n is commensurate with the number of
		// wanted eigenpairs, where the O(n²) vectors are affordable.
		if opts.Mode != Full {
			full := opts
			full.Mode = Full
			fres, err := FindAboveCtx(ctx, op, full)
			if err != nil {
				return nil, err
			}
			fres.MatVecs += res.MatVecs
			fres.Reorths += res.Reorths
			return fres, nil
		}
		return finish(op, w, alpha, beta[:len(beta)-1], opts.Cutoff, convTol, res)
	}
	return nil, fmt.Errorf("%w after %d iterations (cutoff %g)", ErrNoConvergence, res.Iterations, opts.Cutoff)
}

// keyOf buckets a Ritz value so repeated convergence detections of the
// same eigenvalue (within tolerance) are not double counted, while true
// multiple eigenvalues emerging later via deflation get fresh slots once
// the earlier copy's vector deflates them out of T.
func keyOf(v, scale float64) int {
	return int(math.Round(v / (1e-9 * scale)))
}

// finish assembles the final result from the tridiagonal eigensystem:
// Ritz values above the cutoff, Ritz vectors U = W Z, orthonormalized.
// Candidates whose assembled vector is a ghost (direction already kept) or
// whose residual ‖A u − θ u‖ is far from converged are dropped, which
// filters the spurious duplicates finite-precision Lanczos produces.
func finish(op Operator, w [][]float64, alpha, betaSub []float64, cutoff, convTol float64, res *Result) (*Result, error) {
	vals, z, err := dense.TridiagEig(alpha, betaSub)
	if err != nil {
		return nil, err
	}
	n := op.Dim()
	k := len(vals)
	scaleT := tScale(alpha, betaSub)
	residTol := math.Sqrt(convTol) * scaleT
	type pair struct {
		val float64
		col int
	}
	var keep []pair
	for i := k - 1; i >= 0; i-- { // descending
		if vals[i] >= cutoff {
			keep = append(keep, pair{vals[i], i})
		}
	}
	var outVals []float64
	var cols [][]float64
	au := make([]float64, n)
	for _, p := range keep {
		u := combine(w, z, p.col)
		// Orthonormalize against the already kept vectors; drop ghosts
		// (spurious duplicates) whose direction is already captured.
		orthAgainst(u, cols)
		nb := norm2(u)
		if nb < 1e-6 {
			continue
		}
		scal(u, 1/nb)
		op.Apply(au, u)
		res.MatVecs++
		r2 := 0.0
		for i := range au {
			d := au[i] - p.val*u[i]
			r2 += d * d
		}
		r := math.Sqrt(r2)
		if r > residTol {
			continue
		}
		// Spurious values from orthogonality loss sit far from the true
		// spectrum and show residuals of order θ itself; genuine
		// converged pairs resolve much more finely.
		if p.val > 0 && r > 0.5*p.val {
			continue
		}
		cols = append(cols, u)
		outVals = append(outVals, p.val)
	}
	vecs := dense.New(n, len(cols))
	for j, c := range cols {
		for i := 0; i < n; i++ {
			vecs.Set(i, j, c[i])
		}
	}
	res.Values = outVals
	res.Vectors = vecs
	if pv := len(w) + len(cols) + 3; pv > res.PeakVectors {
		res.PeakVectors = pv
	}
	if check.Enabled {
		check.Orthonormal("LASO Ritz basis", res.Vectors, check.OrthTol)
	}
	return res, nil
}

// combine forms W z_col, the Ritz vector for T-eigenvector column col.
func combine(w [][]float64, z *dense.Mat, col int) []float64 {
	n := len(w[0])
	u := make([]float64, n)
	for j, wj := range w {
		c := z.At(j, col)
		if c == 0 {
			continue
		}
		axpy(u, c, wj)
	}
	return u
}

func orthAgainst(v []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			axpy(v, -dot(b, v), b)
		}
	}
}

func tScale(alpha, beta []float64) float64 {
	s := 1e-300
	for i, a := range alpha {
		t := math.Abs(a)
		if i < len(beta) {
			t += math.Abs(beta[i])
		}
		if i > 0 {
			t += math.Abs(beta[i-1])
		}
		if t > s {
			s = t
		}
	}
	return s
}

func randUnit(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	scal(v, 1/norm2(v))
	return v
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(y []float64, a float64, x []float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}

func scal(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
