package lanczos

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dense"
)

// diagOp is a diagonal operator, the simplest symmetric test case with
// fully known spectrum.
type diagOp struct{ d []float64 }

func (o diagOp) Dim() int { return len(o.d) }
func (o diagOp) Apply(dst, src []float64) {
	for i, v := range o.d {
		dst[i] = v * src[i]
	}
}

// denseOp wraps a dense symmetric matrix.
type denseOp struct{ m *dense.Mat }

func (o denseOp) Dim() int { return o.m.R }
func (o denseOp) Apply(dst, src []float64) {
	copy(dst, o.m.MulVec(src))
}

func randomNND(rng *rand.Rand, n int, spectrum []float64) (*dense.Mat, []float64) {
	// Build A = Q diag(spectrum) Qᵀ with a random orthogonal Q obtained
	// from the eigenvectors of a random symmetric matrix.
	s := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	_, q, err := dense.SymEig(s, true)
	if err != nil {
		panic(err)
	}
	lam := dense.New(n, n)
	for i, v := range spectrum {
		lam.Set(i, i, v)
	}
	a := dense.Mul(dense.Mul(q, lam), q.T())
	a.Symmetrize()
	sorted := append([]float64(nil), spectrum...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return a, sorted
}

func checkEigenpairs(t *testing.T, op Operator, res *Result, wantVals []float64, tol float64) {
	t.Helper()
	if len(res.Values) != len(wantVals) {
		t.Fatalf("found %d eigenvalues %v, want %d: %v", len(res.Values), res.Values, len(wantVals), wantVals)
	}
	for i, v := range res.Values {
		if math.Abs(v-wantVals[i]) > tol*(1+math.Abs(wantVals[i])) {
			t.Fatalf("eigenvalue %d = %v, want %v", i, v, wantVals[i])
		}
	}
	// Residual and orthonormality checks.
	n := op.Dim()
	for j := range res.Values {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = res.Vectors.At(i, j)
		}
		ax := make([]float64, n)
		op.Apply(ax, x)
		resid := 0.0
		for i := range ax {
			d := ax[i] - res.Values[j]*x[i]
			resid += d * d
		}
		if math.Sqrt(resid) > 100*tol*(1+math.Abs(res.Values[j])) {
			t.Fatalf("residual for eigenpair %d = %g too large", j, math.Sqrt(resid))
		}
		for jj := 0; jj < j; jj++ {
			y := 0.0
			for i := 0; i < n; i++ {
				y += res.Vectors.At(i, j) * res.Vectors.At(i, jj)
			}
			if math.Abs(y) > 1e-6 {
				t.Fatalf("Ritz vectors %d and %d not orthogonal: %g", j, jj, y)
			}
		}
	}
}

func TestFindAboveDiagonal(t *testing.T) {
	d := []float64{9, 7, 5, 3, 1, 0.5, 0.25, 0.1, 0.05, 0.01}
	rng := rand.New(rand.NewSource(5))
	// Pad with many small eigenvalues.
	for i := 0; i < 70; i++ {
		d = append(d, 0.009*rng.Float64())
	}
	op := diagOp{d}
	res, err := FindAbove(op, Options{Cutoff: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{9, 7, 5, 3, 1}, 1e-7)
	if res.MatVecs >= len(d) {
		t.Logf("note: used %d matvecs for n=%d", res.MatVecs, len(d))
	}
}

func TestFindAboveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spectrum := make([]float64, 60)
	for i := range spectrum {
		spectrum[i] = rng.Float64() * 0.1
	}
	spectrum[0], spectrum[1], spectrum[2] = 4, 2.5, 1.1
	a, sorted := randomNND(rng, 60, spectrum)
	op := denseOp{a}
	res, err := FindAbove(op, Options{Cutoff: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, sorted[:3], 1e-6)
}

func TestFindAboveMultipleEigenvalues(t *testing.T) {
	// A repeated dominant eigenvalue: LASO must find both copies through
	// deflation against the converged Ritz vector.
	rng := rand.New(rand.NewSource(7))
	spectrum := make([]float64, 40)
	for i := range spectrum {
		spectrum[i] = 0.05 * rng.Float64()
	}
	spectrum[0], spectrum[1] = 3, 3
	spectrum[2] = 2
	a, _ := randomNND(rng, 40, spectrum)
	op := denseOp{a}
	res, err := FindAbove(op, Options{Cutoff: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{3, 3, 2}, 1e-6)
}

func TestFindAboveClusteredEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spectrum := make([]float64, 50)
	for i := range spectrum {
		spectrum[i] = 0.01 * rng.Float64()
	}
	spectrum[0], spectrum[1], spectrum[2] = 1.0, 0.999, 0.998
	a, _ := randomNND(rng, 50, spectrum)
	op := denseOp{a}
	res, err := FindAbove(op, Options{Cutoff: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{1.0, 0.999, 0.998}, 1e-5)
}

func TestFindAboveNoEigenvaluesAboveCutoff(t *testing.T) {
	d := make([]float64, 30)
	for i := range d {
		d[i] = 0.1 + 0.001*float64(i)
	}
	op := diagOp{d}
	res, err := FindAbove(op, Options{Cutoff: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Fatalf("found %v above an impossible cutoff", res.Values)
	}
}

func TestFindAboveFullSpectrumSmall(t *testing.T) {
	d := []float64{4, 3, 2, 1}
	op := diagOp{d}
	res, err := FindAbove(op, Options{Cutoff: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{4, 3, 2, 1}, 1e-9)
}

func TestFindAboveModes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	spectrum := make([]float64, 45)
	for i := range spectrum {
		spectrum[i] = 0.02 * rng.Float64()
	}
	spectrum[0], spectrum[1] = 6, 1.5
	a, _ := randomNND(rng, 45, spectrum)
	op := denseOp{a}
	for _, mode := range []Mode{Selective, Full, None} {
		res, err := FindAbove(op, Options{Cutoff: 1.0, Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		checkEigenpairs(t, op, res, []float64{6, 1.5}, 1e-6)
	}
}

func TestFindAboveDeterministic(t *testing.T) {
	d := []float64{5, 4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	op := diagOp{d}
	r1, err := FindAbove(op, Options{Cutoff: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FindAbove(op, Options{Cutoff: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Values) != len(r2.Values) || r1.MatVecs != r2.MatVecs {
		t.Fatal("same seed must give identical runs")
	}
}

func TestTwoPassDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := []float64{8, 6, 2.2}
	for i := 0; i < 80; i++ {
		d = append(d, 0.5*rng.Float64())
	}
	op := diagOp{d}
	res, err := TwoPass(op, Options{Cutoff: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{8, 6, 2.2}, 1e-6)
	if res.PeakVectors > 3+len(res.Values) {
		t.Errorf("PeakVectors = %d, want <= %d (the memory claim)", res.PeakVectors, 3+len(res.Values))
	}
}

func TestTwoPassDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spectrum := make([]float64, 70)
	for i := range spectrum {
		spectrum[i] = 0.05 * rng.Float64()
	}
	spectrum[0], spectrum[1] = 3.5, 1.2
	a, _ := randomNND(rng, 70, spectrum)
	op := denseOp{a}
	res, err := TwoPass(op, Options{Cutoff: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	checkEigenpairs(t, op, res, []float64{3.5, 1.2}, 1e-5)
}

func TestTwoPassUsesFewerVectorsThanStored(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 120
	spectrum := make([]float64, n)
	for i := range spectrum {
		spectrum[i] = 0.02 * rng.Float64()
	}
	spectrum[0] = 5
	a, _ := randomNND(rng, n, spectrum)
	op := denseOp{a}
	full, err := FindAbove(op, Options{Cutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := TwoPass(op, Options{Cutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	if two.PeakVectors >= full.PeakVectors {
		t.Errorf("TwoPass peak vectors %d not below stored-mode %d", two.PeakVectors, full.PeakVectors)
	}
}

func TestModeString(t *testing.T) {
	if Selective.String() != "selective" || Full.String() != "full" || None.String() != "none" {
		t.Error("Mode.String mismatch")
	}
}

func TestClusterDescending(t *testing.T) {
	got := clusterDescending([]float64{1.0, 3.0, 1.0000001, 2.0}, 1e-3)
	if len(got) != 3 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("clusterDescending = %v", got)
	}
	if math.Abs(got[2]-1.00000005) > 1e-9 {
		t.Fatalf("cluster mean = %v", got[2])
	}
}
