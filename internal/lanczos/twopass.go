package lanczos

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/check"
	"repro/internal/dense"
	"repro/internal/resilience/inject"
)

// TwoPass finds the eigenvalues of op above opts.Cutoff with the
// memory-minimal strategy the paper's complexity analysis assumes: a
// first pass runs the plain Lanczos recursion keeping only the scalar
// recursion coefficients (two Lanczos vectors of length n in working
// memory — the O(m) memory claim of Section 4), and a second pass replays
// the identical recursion to accumulate the selected Ritz vectors.
//
// Without reorthogonalization, converged eigenvalues reappear as
// duplicate ("ghost") Ritz values; TwoPass clusters converged Ritz values
// and keeps one representative per cluster, in the spirit of the
// Cullum–Willoughby post-processing the paper cites as reference [12].
//
// The result's PeakVectors field reports how many length-n vectors were
// simultaneously live, for the memory benches.
func TwoPass(op Operator, opts Options) (*Result, error) {
	return TwoPassCtx(context.Background(), op, opts)
}

// TwoPassCtx is TwoPass with cooperative cancellation, checked once per
// Lanczos step in both passes.
func TwoPassCtx(ctx context.Context, op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	if n == 0 {
		return &Result{Vectors: dense.New(0, 0)}, nil
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 || maxIter > n {
		maxIter = n
	}
	convTol := opts.ConvTol
	if convTol <= 0 {
		convTol = 1e-8
	}
	extra := opts.ExtraIters
	if extra <= 0 {
		extra = 12
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	res := &Result{PeakVectors: 3}

	// Pass 1: recursion scalars only.
	var alpha, beta []float64
	cur := randUnit(rand.New(rand.NewSource(seed)), n)
	prev := make([]float64, n)
	havePrev := false
	betaPrev := 0.0
	av := make([]float64, n)
	stableFor := 0
	var keptVals []float64
	iters := 0
	for j := 0; j < maxIter; j++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lanczos: two-pass canceled at iteration %d: %w", j, err)
		}
		if inject.Enabled && inject.ShouldFail(inject.LanczosIter, j) {
			return nil, fmt.Errorf("%w: injected stagnation at two-pass iteration %d (cutoff %g)", ErrNoConvergence, j, opts.Cutoff)
		}
		op.Apply(av, cur)
		res.MatVecs++
		a := dot(cur, av)
		alpha = append(alpha, a)
		for i := range av {
			av[i] -= a * cur[i]
			if havePrev {
				av[i] -= betaPrev * prev[i]
			}
		}
		b := norm2(av)
		iters = j + 1
		scaleT := tScale(alpha, beta)
		if b <= 1e3*machEps*scaleT {
			// Invariant subspace: the plain recursion cannot restart
			// deterministically without storing history, so stop here; the
			// Krylov space built so far is exact for this starting vector.
			beta = append(beta, 0)
			break
		}
		scal(av, 1/b)
		prev, cur, av = cur, av, prev
		havePrev = true
		betaPrev = b
		beta = append(beta, b)

		checkEvery := 1 + j/20
		if (j+1)%checkEvery != 0 && j+1 < maxIter {
			continue
		}
		vals, z, err := dense.TridiagEig(alpha, beta[:len(beta)-1])
		if err != nil {
			return nil, err
		}
		k := len(vals)
		clusterTol := 1e-7 * scaleT
		var conv []float64
		blocked := false
		for i := 0; i < k; i++ {
			bound := b * math.Abs(z.At(k-1, i))
			if bound <= convTol*scaleT {
				if vals[i] >= opts.Cutoff {
					conv = append(conv, vals[i])
				}
				continue
			}
			if vals[i]+bound < opts.Cutoff {
				continue
			}
			// Unconverged candidate above cutoff: ignore if it is a ghost
			// of an already converged value.
			ghost := false
			for _, c := range conv {
				if math.Abs(vals[i]-c) <= clusterTol {
					ghost = true
					break
				}
			}
			// conv is built in ascending order; also compare against
			// converged values later in the list by a full scan below.
			if !ghost {
				for ii := i + 1; ii < k; ii++ {
					bii := b * math.Abs(z.At(k-1, ii))
					if bii <= convTol*scaleT && math.Abs(vals[i]-vals[ii]) <= clusterTol {
						ghost = true
						break
					}
				}
			}
			if !ghost {
				blocked = true
			}
		}
		clustered := clusterDescending(conv, clusterTol)
		if !blocked && sameValues(clustered, keptVals, clusterTol) {
			stableFor += checkEvery
			if stableFor >= extra {
				keptVals = clustered
				break
			}
		} else {
			stableFor = 0
		}
		keptVals = clustered
	}
	res.Iterations = iters

	// Final eigensystem of T and representative column per kept value.
	vals, z, err := dense.TridiagEig(alpha, beta[:len(beta)-1])
	if err != nil {
		return nil, err
	}
	k := len(vals)
	scaleT := tScale(alpha, beta)
	clusterTol := 1e-7 * scaleT
	// Recompute kept values from the final T (handles the maxIter exit).
	var conv []float64
	lastBeta := 0.0
	if len(beta) > 0 {
		lastBeta = beta[len(beta)-1]
	}
	for i := 0; i < k; i++ {
		bound := lastBeta * math.Abs(z.At(k-1, i))
		if vals[i] >= opts.Cutoff && bound <= convTol*scaleT {
			conv = append(conv, vals[i])
		}
	}
	keptVals = clusterDescending(conv, clusterTol)
	cols := make([]int, 0, len(keptVals))
	for _, v := range keptVals {
		best, bestBound := -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if math.Abs(vals[i]-v) <= clusterTol {
				bound := lastBeta * math.Abs(z.At(k-1, i))
				if bound < bestBound {
					best, bestBound = i, bound
				}
			}
		}
		cols = append(cols, best)
	}

	// Pass 2: replay the recursion, accumulating U(:,j) += z[step][col_j] * w_step.
	u := dense.New(n, len(cols))
	res.PeakVectors = 3 + len(cols)
	cur = randUnit(rand.New(rand.NewSource(seed)), n)
	havePrev = false
	betaPrev = 0
	for step := 0; step < len(alpha); step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lanczos: two-pass replay canceled at step %d: %w", step, err)
		}
		for jc, col := range cols {
			c := z.At(step, col)
			if c != 0 {
				for i := 0; i < n; i++ {
					u.Add(i, jc, c*cur[i])
				}
			}
		}
		if step == len(alpha)-1 {
			break
		}
		op.Apply(av, cur)
		res.MatVecs++
		a := alpha[step]
		for i := range av {
			av[i] -= a * cur[i]
			if havePrev {
				av[i] -= betaPrev * prev[i]
			}
		}
		b := beta[step]
		if b == 0 {
			break
		}
		scal(av, 1/b)
		prev, cur, av = cur, av, prev
		havePrev = true
		betaPrev = b
	}
	// Orthonormalize the representatives (ghost directions collapse) and
	// drop spurious candidates by an explicit residual check — the
	// post-processing role the Cullum–Willoughby test plays in the paper's
	// reference [12].
	residTol := math.Sqrt(convTol) * scaleT
	var outVals []float64
	var outCols [][]float64
	auResid := make([]float64, n)
	for j := range cols {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = u.At(i, j)
		}
		orthAgainst(v, outCols)
		nb := norm2(v)
		if nb < 1e-6 {
			continue
		}
		scal(v, 1/nb)
		op.Apply(auResid, v)
		res.MatVecs++
		r2 := 0.0
		for i := range auResid {
			d := auResid[i] - keptVals[j]*v[i]
			r2 += d * d
		}
		r := math.Sqrt(r2)
		if r > residTol {
			continue
		}
		if keptVals[j] > 0 && r > 0.5*keptVals[j] {
			continue // spurious: residual of order θ itself
		}
		outCols = append(outCols, v)
		outVals = append(outVals, keptVals[j])
	}
	vecs := dense.New(n, len(outCols))
	for j, c := range outCols {
		for i := 0; i < n; i++ {
			vecs.Set(i, j, c[i])
		}
	}
	res.Values = outVals
	res.Vectors = vecs
	if len(outVals) == 0 && len(keptVals) > 0 {
		return nil, fmt.Errorf("%w: two-pass vector accumulation degenerated", ErrNoConvergence)
	}
	if check.Enabled {
		check.Orthonormal("two-pass Ritz basis", res.Vectors, check.OrthTol)
	}
	return res, nil
}

// clusterDescending sorts values descending and merges values closer than
// tol into a single representative (their mean).
func clusterDescending(vals []float64, tol float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	// insertion sort descending; lists are tiny
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out []float64
	i := 0
	for i < len(sorted) {
		j := i + 1
		sum := sorted[i]
		for j < len(sorted) && sorted[i]-sorted[j] <= tol {
			sum += sorted[j]
			j++
		}
		out = append(out, sum/float64(j-i))
		i = j
	}
	return out
}

func sameValues(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
