package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the module-wide half of the analyzer: a static call graph
// over every package the loader has materialized, with per-function
// facts (nondeterminism sources, package-level writes) attached to the
// nodes. The concurrency/determinism rules (nondet, globalmut) traverse
// it to reason about what code can run *inside* a parallel callback or
// *underneath* a numeric-package entry point, which no per-function AST
// pattern can see.
//
// Known approximations, deliberate and documented:
//
//   - Only static calls are edges: a call through a function-typed
//     variable, interface method, or method value is not resolved. The
//     hot paths of this module call concrete functions, so the graph is
//     near-complete where the determinism argument lives.
//   - A function literal contained in a body is treated as called by
//     that body (containment edge): whether it runs inline, deferred, or
//     on a pool worker, its effects are attributed to the enclosing
//     function. This over-approximates (a stored-but-never-called
//     closure still contributes) in the safe direction.

// Program is the module-wide analysis view: every package the loader
// has materialized, the static call graph over their functions, and the
// union of //lint:ignore suppressions across all their files (so a rule
// may anchor a finding in the package that owns the fact — e.g. the
// select statement inside internal/par — and a suppression written
// there covers every analyzed package that reaches it).
type Program struct {
	// Pkgs are the loaded module packages, sorted by import path.
	Pkgs []*Package

	funcs map[*types.Func]*cgNode
	lits  map[*ast.FuncLit]*cgNode
	byPkg map[*Package][]*cgNode
	sup   suppressions
}

// nondetSource is one nondeterminism source found directly in a body: a
// wall-clock read, a draw from the process-global random source, or a
// select statement with more than one case (resolved by scheduling
// order).
type nondetSource struct {
	pos  token.Pos
	desc string
}

// globalWrite is one direct write to a package-level variable.
type globalWrite struct {
	pos     token.Pos
	varName string
}

// cgNode is one function (declared or literal) in the call graph.
type cgNode struct {
	pkg   *Package
	fn    *types.Func  // nil for function literals
	lit   *ast.FuncLit // nil for declared functions
	label string
	pos   token.Pos

	callees []*types.Func  // static calls to module functions
	nested  []*ast.FuncLit // function literals contained in the body

	nondet  []nondetSource
	globals []globalWrite
}

// Program returns the module-wide analysis view for the load this
// package came from, building (and memoizing) it on first use.
func (p *Package) Program() *Program {
	return p.loader.program()
}

func (l *Loader) program() *Program {
	if l.prog != nil && l.progGen == len(l.pkgs) {
		return l.prog
	}
	prog := &Program{
		funcs: map[*types.Func]*cgNode{},
		lits:  map[*ast.FuncLit]*cgNode{},
		byPkg: map[*Package][]*cgNode{},
		sup:   suppressions{},
	}
	for _, p := range l.pkgs {
		if p != nil {
			prog.Pkgs = append(prog.Pkgs, p)
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	for _, p := range prog.Pkgs {
		prog.addPackage(p)
		sup, _ := collectSuppressions(p)
		for file, lines := range sup {
			for line, set := range lines {
				for rule := range set {
					prog.sup.add(file, line, []string{rule})
				}
			}
		}
	}
	l.prog = prog
	l.progGen = len(l.pkgs)
	return prog
}

// addPackage creates one node per declared function and per function
// literal of the package and collects their body facts.
func (prog *Program) addPackage(p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				fn, _ := p.Info.Defs[d.Name].(*types.Func)
				if fn == nil || d.Body == nil {
					return true // interface-less externs; keep walking for lits
				}
				node := &cgNode{pkg: p, fn: fn, label: funcLabel(fn), pos: d.Pos()}
				prog.funcs[fn] = node
				prog.byPkg[p] = append(prog.byPkg[p], node)
				collectFacts(p, node, d.Body)
			case *ast.FuncLit:
				node := &cgNode{pkg: p, lit: d, label: "function literal", pos: d.Pos()}
				prog.lits[d] = node
				prog.byPkg[p] = append(prog.byPkg[p], node)
				collectFacts(p, node, d.Body)
			}
			return true
		})
	}
	for _, nodes := range prog.byPkg {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].pos < nodes[j].pos })
	}
}

// collectFacts walks one function body — stopping at nested function
// literals, which are nodes of their own reached by a containment edge
// — recording call edges, nondeterminism sources and package-level
// writes.
func collectFacts(p *Package, node *cgNode, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			node.nested = append(node.nested, x)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(p, x)
			if fn == nil {
				return true
			}
			if inModule(p, fn) {
				node.callees = append(node.callees, fn)
			} else if desc := nondetCallDesc(fn); desc != "" {
				node.nondet = append(node.nondet, nondetSource{x.Pos(), desc})
			}
		case *ast.SelectStmt:
			if len(x.Body.List) >= 2 {
				node.nondet = append(node.nondet, nondetSource{
					x.Pos(), "select with multiple cases (winner picked by scheduling order)"})
			}
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true // := cannot target a package-level variable
			}
			for _, lhs := range x.Lhs {
				if v := packageLevelTarget(p, lhs); v != nil {
					node.globals = append(node.globals, globalWrite{lhs.Pos(), v.Name()})
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(p, x.X); v != nil {
				node.globals = append(node.globals, globalWrite{x.X.Pos(), v.Name()})
			}
		}
		return true
	})
}

// nondetCallDesc classifies a non-module call as a nondeterminism
// source. Seeded generators (methods on *rand.Rand, and the rand.New /
// rand.NewSource constructors themselves) are deterministic under the
// caller's control and therefore not sources; the package-level
// math/rand functions draw from the process-global source and are.
func nondetCallDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "" // method on a caller-seeded generator
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // constructors: determinism is the caller's seed choice
		}
		return "rand." + fn.Name() + " (process-global random source)"
	case "crypto/rand":
		return "crypto/rand." + fn.Name()
	}
	return ""
}

// packageLevelTarget unwraps an lvalue to its base identifier and
// returns the *types.Var if that base is a package-level variable.
func packageLevelTarget(p *Package, e ast.Expr) *types.Var {
	base, _ := unwrapLvalue(e)
	if base == nil {
		return nil
	}
	v := varObject(p, base)
	if v == nil || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// unwrapLvalue peels index, selector, star and paren layers off an
// assignable expression, returning the base identifier and the index
// expressions encountered along the chain (nil base for targets rooted
// in a call or composite literal, which the write rules skip).
func unwrapLvalue(e ast.Expr) (base *ast.Ident, indexes []ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, indexes
		case *ast.IndexExpr:
			indexes = append(indexes, x.Index)
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// varObject resolves an identifier to its variable object (use or def).
func varObject(p *Package, id *ast.Ident) *types.Var {
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info.Defs[id].(*types.Var)
	return v
}

// nodeFor returns the graph node of a declared module function.
func (prog *Program) nodeFor(fn *types.Func) *cgNode { return prog.funcs[fn] }

// litNode returns the graph node of a function literal.
func (prog *Program) litNode(l *ast.FuncLit) *cgNode { return prog.lits[l] }

// reach runs visit over every node reachable from root (including root
// itself) following static call edges and literal-containment edges.
// Visit order is deterministic: callees in source order, depth-first.
func (prog *Program) reach(root *cgNode, visit func(n *cgNode)) {
	seen := map[*cgNode]bool{}
	var walk func(n *cgNode)
	walk = func(n *cgNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(n)
		for _, fn := range n.callees {
			walk(prog.funcs[fn])
		}
		for _, lit := range n.nested {
			walk(prog.lits[lit])
		}
	}
	walk(root)
}

// pkgFuncs returns the declared-function nodes of a package in source
// order (literals excluded — they are reached through their containers).
func (prog *Program) pkgFuncs(p *Package) []*cgNode {
	var out []*cgNode
	for _, n := range prog.byPkg[p] {
		if n.fn != nil {
			out = append(out, n)
		}
	}
	return out
}

// suppressed reports whether a (file, line, rule) triple is covered by a
// //lint:ignore anywhere in the module — the cross-package complement of
// Run's own per-package suppression handling, used for findings anchored
// in a package other than the one under analysis.
func (prog *Program) suppressed(file string, line int, rule string) bool {
	return prog.sup.covers(file, line, rule)
}

// hasSuffixPath reports whether an import path ends in one of the given
// suffixes — the package-classification idiom shared by the rules, kept
// here so the callgraph-based rules classify identically on fixture
// modules and the real tree.
func hasSuffixPath(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}
