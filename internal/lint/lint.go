// Package lint is a domain-aware static analyzer for this repository. It
// loads every package of the module with the standard library's go/ast,
// go/parser, go/types and go/token (no external tooling), and runs a
// table-driven registry of rules that enforce the numerical-correctness
// conventions the PACT passivity argument rests on: no raw float
// equality, no silently dropped factorization errors, a strict panic
// policy, no per-iteration matrix allocation in the hot reduction loops,
// and no process exits from library code.
//
// Findings can be suppressed in the source with a comment on the line of
// the finding or the line directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, carrying everything the driver needs to
// print a file:line report with a fix hint.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
	Hint string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Rule is one analysis pass. Rules are pure functions of a type-checked
// package; adding a rule means writing a Run func and appending a table
// entry to Registry.
type Rule struct {
	// ID is the short name used in reports and //lint:ignore comments.
	ID string
	// Doc is the one-line description shown by `pactlint -rules`.
	Doc string
	// Hint is the default fix hint attached to findings that do not
	// provide their own.
	Hint string
	// Run reports findings via report; pos anchors the finding, hint may
	// be "" to use the rule's default.
	Run func(p *Package, report func(pos token.Pos, msg, hint string))
}

// Registry is the table of active rules, in reporting order. Later PRs
// extend the analyzer by appending here.
var Registry = []Rule{
	floatcmpRule,
	checkerrRule,
	panicpolicyRule,
	defersmellRule,
	exitpolicyRule,
	sharedwriteRule,
	fpreduceRule,
	maporderRule,
	nondetRule,
	globalmutRule,
}

// RuleByID returns the registered rule with the given ID.
func RuleByID(id string) (Rule, bool) {
	for _, r := range Registry {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

// Run applies the given rules to a package and returns the surviving
// diagnostics, sorted by position, with //lint:ignore suppressions
// applied. Malformed suppressions (no rule list, or no reason) are
// reported under the pseudo-rule "badignore".
//
// Suppression matching is module-wide: the callgraph-based rules anchor
// findings at the fact — a select statement in internal/par, a global
// write in a leaf package — which may live outside the package under
// analysis, and the //lint:ignore written next to that fact must cover
// every analyzing package that reaches it. Malformed-ignore reports
// stay per-package so each is emitted exactly once.
func Run(p *Package, rules []Rule) []Diagnostic {
	_, bad := collectSuppressions(p)
	sup := p.Program().sup
	var out []Diagnostic
	out = append(out, bad...)
	for _, r := range rules {
		rule := r
		r.Run(p, func(pos token.Pos, msg, hint string) {
			position := p.Fset.Position(pos)
			if sup.covers(position.Filename, position.Line, rule.ID) {
				return
			}
			if hint == "" {
				hint = rule.Hint
			}
			out = append(out, Diagnostic{Pos: position, Rule: rule.ID, Msg: msg, Hint: hint})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// RunAll applies every registered rule to every package, deduplicating
// identical (position, rule) findings across packages — the
// callgraph-based rules may anchor the same fact from several analyzing
// packages.
func RunAll(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, Run(p, Registry)...)
	}
	return Dedup(out)
}

// Dedup drops diagnostics that repeat an earlier (position, rule) pair,
// preserving order otherwise.
func Dedup(ds []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	out := ds[:0]
	for _, d := range ds {
		key := fmt.Sprintf("%s:%d:%d:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// suppressions maps file -> line -> set of suppressed rule IDs ("" means
// all rules). A //lint:ignore comment covers its own line and the line
// immediately below it, so both trailing and preceding-line placement
// work.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(file string, line int, rule string) bool {
	lines := s[file]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{line, line - 1} {
		if set := lines[ln]; set != nil && (set[rule] || set["all"]) {
			return true
		}
	}
	return false
}

func (s suppressions) add(file string, line int, rules []string) {
	lines := s[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = map[string]bool{}
		lines[line] = set
	}
	for _, r := range rules {
		set[r] = true
	}
}

// collectSuppressions scans every comment of the package for
// //lint:ignore directives.
func collectSuppressions(p *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "badignore",
						Msg:  "malformed suppression: want //lint:ignore <rule>[,<rule>] <reason>",
						Hint: "name the suppressed rule(s) and give a reason",
					})
					continue
				}
				sup.add(pos.Filename, pos.Line, strings.Split(fields[0], ","))
			}
		}
	}
	return sup, bad
}

// --- shared AST/type helpers used by several rules ---

// inspect walks every file of the package.
func inspect(p *Package, fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// packageLayer classifies an import path into the layers the panic and
// exit policies distinguish.
type layer int

const (
	layerLibrary layer = iota // internal/ numerical packages: prefixed panics allowed
	layerNoPanic              // parser/simulator layers: must return errors
	layerMain                 // cmd/ and examples/ binaries
)

// layerOf classifies by import path shape, not by hard-coded module name,
// so the rules work on fixture modules in tests too.
func layerOf(p *Package) layer {
	if p.Types.Name() == "main" {
		return layerMain
	}
	for _, suffix := range noPanicPackages {
		if strings.HasSuffix(p.Path, suffix) {
			return layerNoPanic
		}
	}
	return layerLibrary
}

// noPanicPackages are the user-input-facing layers where panicking on bad
// data is a bug: the deck parser and the circuit simulator.
var noPanicPackages = []string{"/internal/netlist", "/internal/sim"}
