package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader writes a throwaway module (path "fixturemod", so the
// rules' suffix-based package classification is exercised independently
// of this repository's module name) and returns a loader over it.
func fixtureLoader(t *testing.T, files map[string]string) *Loader {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.22\n"
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runRule loads one fixture package and runs a single rule on it.
func runRule(t *testing.T, l *Loader, dir, ruleID string) []Diagnostic {
	t.Helper()
	p, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(dir)))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := RuleByID(ruleID)
	if !ok {
		t.Fatalf("rule %q not registered", ruleID)
	}
	return Run(p, []Rule{r})
}

// lines extracts the flagged line numbers.
func lines(ds []Diagnostic) []int {
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.Pos.Line
	}
	return out
}

func wantLines(t *testing.T, ds []Diagnostic, want ...int) {
	t.Helper()
	got := lines(ds)
	if len(got) != len(want) {
		t.Fatalf("got %d findings on lines %v, want lines %v\n%v", len(got), got, want, ds)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d on line %d, want line %d\n%v", i, got[i], want[i], ds)
		}
	}
}

func TestFloatcmp(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/num/num.go": `package num

func Bad(a, b float64) bool { return a == b }
func BadNeq(a, b float64) bool { return a != b }
func BadComplex(a, b complex128) bool { return a == b }
func BadConst(a float64) bool { return a == 1.5 }
func OkZero(a float64) bool { return a == 0 }
func OkZeroLeft(a float64) bool { return 0 != a }
func OkInt(a, b int) bool { return a == b }
func OkString(a, b string) bool { return a == b }
`,
	})
	wantLines(t, runRule(t, l, "internal/num", "floatcmp"), 3, 4, 5, 6)
}

func TestCheckerr(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/chol/chol.go": `package chol

type Factor struct{}

func Factorize() (*Factor, error) { return &Factor{}, nil }
`,
		"internal/other/other.go": `package other

func MayFail() error { return nil }
`,
		"internal/use/use.go": `package use

import (
	"fmt"
	"fixturemod/internal/chol"
	"fixturemod/internal/other"
)

func Bad() {
	chol.Factorize()
	_, _ = chol.Factorize()
	other.MayFail()
}

func Ok() error {
	f, err := chol.Factorize()
	if err != nil {
		return err
	}
	_ = f
	fmt.Println("stdlib errors are not this rule's business")
	return other.MayFail()
}
`,
	})
	ds := runRule(t, l, "internal/use", "checkerr")
	wantLines(t, ds, 10, 11, 12)
	if !strings.Contains(ds[1].Msg, "blank") {
		t.Fatalf("line 11 should be the blank-discard form: %v", ds[1])
	}
}

// TestCheckerrFlow covers the flow-sensitive forms: an error overwritten
// before any read, a named error result silently replaced by an explicit
// return, and an error stored on a struct field of a value that is never
// used again — the dropped recovery-ladder shape.
func TestCheckerrFlow(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/chol/chol.go": `package chol

type Factor struct{}

func Factorize() (*Factor, error) { return &Factor{}, nil }
`,
		"internal/use/use.go": `package use

import "fixturemod/internal/chol"

type Result struct {
	F   *chol.Factor
	Err error
}

func BadOverwrite() error {
	_, err := chol.Factorize()
	_, err = chol.Factorize()
	return err
}

func BadNamedReturn() (err error) {
	_, err = chol.Factorize()
	return nil
}

func BadFieldDrop() {
	r := &Result{}
	r.F, r.Err = chol.Factorize()
}

func OkReadBetween() error {
	_, err := chol.Factorize()
	if err != nil {
		return err
	}
	_, err = chol.Factorize()
	return err
}

func OkNamedReturn() (err error) {
	_, err = chol.Factorize()
	return err
}

func OkBareReturn() (err error) {
	_, err = chol.Factorize()
	return
}

func OkFieldEscapes() *Result {
	r := &Result{}
	r.F, r.Err = chol.Factorize()
	return r
}

func OkFieldRead() error {
	r := &Result{}
	r.F, r.Err = chol.Factorize()
	return r.Err
}
`,
	})
	ds := runRule(t, l, "internal/use", "checkerr")
	// Line 11: err from the first Factorize overwritten by the second.
	// Line 17: named result err replaced by `return nil`.
	// Line 23: r.Err set on a value that is never used again.
	wantLines(t, ds, 11, 17, 23)
	if !strings.Contains(ds[0].Msg, "overwritten") {
		t.Fatalf("line 11 should be the overwrite form: %v", ds[0])
	}
	if !strings.Contains(ds[1].Msg, "explicit return") {
		t.Fatalf("line 17 should be the named-return form: %v", ds[1])
	}
	if !strings.Contains(ds[2].Msg, "field r.Err") {
		t.Fatalf("line 23 should be the dead-field form: %v", ds[2])
	}
}

func TestCheckerrBlankDiscardOnlyForWatchlist(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/other/other.go": `package other

func MayFail() error { return nil }
`,
		"internal/use/use.go": `package use

import "fixturemod/internal/other"

func DeliberateDiscard() {
	_ = other.MayFail()
}
`,
	})
	// other is not a factorization/solve package, so an explicit blank
	// assignment is a visible, deliberate choice and not flagged.
	wantLines(t, runRule(t, l, "internal/use", "checkerr"))
}

func TestPanicpolicy(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/dense/dense.go": `package dense

import "fmt"

func Ok(n int) {
	panic("dense: dimension mismatch")
}

func OkSprintf(n int) {
	panic(fmt.Sprintf("dense: bad dimension %d", n))
}

func BadPrefix() {
	panic("wrong prefix")
}

func BadDynamic(err error) {
	panic(err)
}

func BadSprintfPrefix(n int) {
	panic(fmt.Sprintf("oops %d", n))
}
`,
		"internal/netlist/parse.go": `package netlist

func Bad() {
	panic("netlist: even prefixed panics are banned in the parser layer")
}
`,
		"cmd/tool/main.go": `package main

func main() {
	panic("no panics in binaries")
}
`,
	})
	wantLines(t, runRule(t, l, "internal/dense", "panicpolicy"), 14, 18, 22)
	wantLines(t, runRule(t, l, "internal/netlist", "panicpolicy"), 4)
	wantLines(t, runRule(t, l, "cmd/tool", "panicpolicy"), 4)
}

func TestDefersmell(t *testing.T) {
	t.Parallel()
	denseStub := `package dense

type Mat struct{ R, C int }

func New(r, c int) *Mat        { return &Mat{R: r, C: c} }
func (m *Mat) Clone() *Mat     { return &Mat{R: m.R, C: m.C} }
`
	l := fixtureLoader(t, map[string]string{
		"internal/dense/dense.go": denseStub,
		"internal/core/hot.go": `package core

import "fixturemod/internal/dense"

func Bad(n int, f func()) {
	for i := 0; i < n; i++ {
		defer f()
		m := dense.New(n, n)
		_ = m.Clone()
		buf := append([]float64(nil), make([]float64, n)...)
		_ = buf
	}
}

func Ok(n int) {
	m := dense.New(n, n)
	buf := make([]float64, n)
	for i := 0; i < n; i++ {
		buf[i] = float64(i)
	}
	_ = m
}

func OkFuncLit(n int) func() *dense.Mat {
	var fs []func() *dense.Mat
	for i := 0; i < n; i++ {
		fs = append(fs, func() *dense.Mat { return dense.New(n, n) })
	}
	return fs[0]
}
`,
		"internal/cold/cold.go": `package cold

import "fixturemod/internal/dense"

func NotHotPackage(n int) {
	for i := 0; i < n; i++ {
		_ = dense.New(n, n)
	}
}
`,
	})
	// Line 7 defer, 8 dense.New, 9 Clone, 10 append-clone.
	wantLines(t, runRule(t, l, "internal/core", "defersmell"), 7, 8, 9, 10)
	// Matrix allocation in loops is only policed in the hot packages.
	wantLines(t, runRule(t, l, "internal/cold", "defersmell"))
}

// TestDefersmellParIsHot pins internal/par into the hot-package set: the
// worker-pool layer sits under every parallel hot loop, so per-iteration
// dense allocation or vector cloning there multiplies across all callers.
func TestDefersmellParIsHot(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/dense/dense.go": `package dense

type Mat struct{ R, C int }

func New(r, c int) *Mat { return &Mat{R: r, C: c} }
`,
		"internal/par/par.go": `package par

import "fixturemod/internal/dense"

func Bad(n int, scratch []float64) {
	for i := 0; i < n; i++ {
		_ = dense.New(n, n)
		_ = append([]float64(nil), scratch...)
	}
}

func Ok(n int) {
	bufs := make([][]float64, n)
	for w := range bufs {
		bufs[w] = make([]float64, n)
	}
}
`,
	})
	wantLines(t, runRule(t, l, "internal/par", "defersmell"), 7, 8)
}

// TestDefersmellCholPrimaAreHot pins the factorization kernels and the
// PRIMA recursion into the hot-package set: the supernodal panel loops
// and the Krylov iteration run once per elimination step or basis
// vector, so a per-iteration clone there scales with problem size.
func TestDefersmellCholPrimaAreHot(t *testing.T) {
	t.Parallel()
	loopClone := `

func Bad(n int, scratch []float64) {
	for i := 0; i < n; i++ {
		_ = append([]float64(nil), scratch...)
	}
}
`
	l := fixtureLoader(t, map[string]string{
		"internal/chol/chol.go":   "package chol" + loopClone,
		"internal/prima/prima.go": "package prima" + loopClone,
	})
	wantLines(t, runRule(t, l, "internal/chol", "defersmell"), 5)
	wantLines(t, runRule(t, l, "internal/prima", "defersmell"), 5)
}

func TestExitpolicy(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/lib/lib.go": `package lib

import (
	"log"
	"os"
)

func Bad() {
	log.Fatal("library exit")
}

func AlsoBad() {
	os.Exit(3)
}
`,
		"cmd/tool/main.go": `package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("fine here")
	}
	helper()
	os.Exit(0)
}

func helper() {
	log.Fatalf("not fine here: %d", 1)
}
`,
	})
	wantLines(t, runRule(t, l, "internal/lib", "exitpolicy"), 9, 13)
	wantLines(t, runRule(t, l, "cmd/tool", "exitpolicy"), 17)
}

func TestSuppression(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/num/num.go": `package num

func PrecedingLine(a, b float64) bool {
	//lint:ignore floatcmp test of the suppression mechanism
	return a == b
}

func TrailingSameLine(a, b float64) bool {
	return a == b //lint:ignore floatcmp also suppressed
}

func WrongRule(a, b float64) bool {
	//lint:ignore checkerr wrong rule name does not suppress
	return a == b
}

func Malformed(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`,
	})
	ds := runRule(t, l, "internal/num", "floatcmp")
	// Line 14 (wrong rule) and line 19 (malformed ignore is no ignore)
	// still flagged, plus the badignore report on line 18.
	var flagged, bad []int
	for _, d := range ds {
		if d.Rule == "badignore" {
			bad = append(bad, d.Pos.Line)
		} else {
			flagged = append(flagged, d.Pos.Line)
		}
	}
	if len(flagged) != 2 || flagged[0] != 14 || flagged[1] != 19 {
		t.Fatalf("floatcmp findings on %v, want [14 19]", flagged)
	}
	if len(bad) != 1 || bad[0] != 18 {
		t.Fatalf("badignore findings on %v, want [18]", bad)
	}
}

// TestRepositoryIsLintClean runs every registered rule over this entire
// module — the acceptance criterion that `pactlint ./...` stays at zero
// findings is enforced by the ordinary test suite.
func TestRepositoryIsLintClean(t *testing.T) {
	t.Parallel()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range RunAll(pkgs) {
		t.Errorf("%s", d)
	}
}
