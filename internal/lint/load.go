package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis,
// carrying everything a Rule needs: the syntax trees (with comments, for
// suppression handling) and the full types.Info.
type Package struct {
	// Path is the import path, e.g. "repro/internal/dense".
	Path string
	// Module is the module path the package belongs to.
	Module string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the file set shared by the whole load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the use/def/type maps populated by the checker.
	Info *types.Info

	// loader is the Loader that materialized this package; Program()
	// assembles the module-wide view from it.
	loader *Loader
}

// Loader loads and type-checks the packages of a single module using only
// the standard library: module-internal imports are resolved by walking
// the module tree, and everything else (the standard library) through the
// source importer, so no compiled export data or external tooling is
// needed.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string
	// BuildTags are extra build constraints honored when selecting files
	// (e.g. "pactcheck" to lint the tag-enabled invariant bodies).
	BuildTags []string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	ctx  build.Context

	// prog caches the module-wide Program; progGen is the number of
	// loaded packages at build time, so loading more invalidates it.
	prog    *Program
	progGen int
}

// NewLoader prepares a loader for the module rooted at root. The module
// path is read from go.mod.
func NewLoader(root string, buildTags ...string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.BuildTags = append(append([]string(nil), ctx.BuildTags...), buildTags...)
	return &Loader{
		Root:      root,
		Module:    mod,
		BuildTags: buildTags,
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      map[string]*Package{},
		ctx:       ctx,
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths are loaded from
// source; everything else is delegated to the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one package directory (non-test files
// matching the build context), memoized by import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := l.ctx.MatchFile(dir, name); err != nil || !ok {
			continue // excluded by build constraints for this configuration
		}
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Module: l.Module, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info, loader: l}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in a single directory inside the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// LoadAll walks the module tree and loads every buildable package,
// skipping vendor, testdata, hidden directories, and directories without
// Go files. Packages are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoSource(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoSource(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
