package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the closure-capture dataflow underneath the concurrency
// rules: it finds the callbacks handed to the internal/par entry points
// and, for each, classifies every write in the callback body as
// iteration-owned (indexed by the item/slot/worker argument, directly
// or through a derived variable) or shared (a captured location no
// argument-derived index selects — the race-and-nondeterminism smell
// the whole worker-pool design exists to prevent).
//
// Approximations, chosen so every report is actionable:
//
//   - Mutation through method calls (m.Set(i, j, v), slice arguments to
//     kernels) is not tracked; only direct assignments and ++/-- are.
//     The repository's hot callbacks mutate through indexed stores, so
//     this misses little, and it keeps the signal clean.
//   - A variable assigned *from* a parameter-derived expression is
//     itself derived (flow-insensitive fixpoint). Aliasing a shared
//     region into a fresh local and writing through it is therefore
//     visible only if the alias expression mentions no parameter.
//   - Function literals nested inside a callback are analyzed as part
//     of the callback body: whatever schedule runs them, their writes
//     happen within the iteration's dynamic extent.

// parEntryNames are the internal/par entry points that run a callback
// on pool workers. The map value records which leading parameter of the
// callback is the worker index (-1: none; the remaining parameters are
// the item/slot/range arguments).
var parEntryNames = map[string]int{
	"Do":            0,
	"DoCtx":         0,
	"DoChunks":      0,
	"ForChunks":     0,
	"ForWorkers":    0,
	"ForWorkersCtx": 0,
	"For":           -1,
	"ForCtx":        -1,
	"Map":           -1,
	"RunDAG":        0,
	"RunDAGScratch": 0,
}

// parEntry resolves a call to an internal/par entry point.
func parEntry(p *Package, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	path := fn.Pkg().Path()
	if !strings.HasSuffix(path, "/internal/par") && path != "par" {
		return nil, false
	}
	if _, ok := parEntryNames[fn.Name()]; !ok {
		return nil, false
	}
	return fn, true
}

// parCallback is one callback handed to a par entry point: an inline
// function literal (the usual form) or a named function passed by
// reference.
type parCallback struct {
	pkg   *Package
	call  *ast.CallExpr
	entry *types.Func
	lit   *ast.FuncLit // inline literal, or nil
	named *types.Func  // named function passed as the callback, or nil
}

// parCallbacks finds every callback handed to a par entry point in the
// package, in source order.
func parCallbacks(p *Package) []parCallback {
	var out []parCallback
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		entry, ok := parEntry(p, call)
		if !ok {
			return true
		}
		cb := parCallback{pkg: p, call: call, entry: entry}
		switch a := ast.Unparen(call.Args[len(call.Args)-1]).(type) {
		case *ast.FuncLit:
			cb.lit = a
		case *ast.Ident:
			cb.named, _ = p.Info.Uses[a].(*types.Func)
		case *ast.SelectorExpr:
			cb.named, _ = p.Info.Uses[a.Sel].(*types.Func)
		}
		if cb.lit != nil || cb.named != nil {
			out = append(out, cb)
		}
		return true
	})
	return out
}

// callbackScope is the dataflow result for one literal callback.
type callbackScope struct {
	p   *Package
	lit *ast.FuncLit

	// inner is every object declared inside the literal (parameters,
	// := definitions, range variables); writes to these are
	// iteration-local and never reported.
	inner map[types.Object]bool

	// derivedAll is the fixpoint of "mentions a callback parameter":
	// the parameters themselves plus every variable assigned from an
	// expression mentioning a derived variable. An index drawn from
	// this set selects an iteration- or worker-owned region.
	derivedAll map[*types.Var]bool

	// derivedItem is the same fixpoint seeded only with the item/slot
	// parameters (the worker index excluded): an index drawn from this
	// set is owned by exactly one iteration, which is the property the
	// fixed-order reduction argument needs — worker-indexed slots
	// receive items in scheduling order and do not qualify.
	derivedItem map[*types.Var]bool
}

// analyzeCallback computes the capture/derivation sets for a literal
// callback of the given entry point.
func analyzeCallback(p *Package, entry *types.Func, lit *ast.FuncLit) *callbackScope {
	cs := &callbackScope{
		p:           p,
		lit:         lit,
		inner:       map[types.Object]bool{},
		derivedAll:  map[*types.Var]bool{},
		derivedItem: map[*types.Var]bool{},
	}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				cs.inner[obj] = true
			}
		}
		return true
	})
	workerParam := parEntryNames[entry.Name()]
	var params []*types.Var
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				v, _ := p.Info.Defs[name].(*types.Var)
				params = append(params, v) // nil kept to preserve positions
			}
		}
	}
	for i, v := range params {
		if v == nil {
			continue
		}
		cs.derivedAll[v] = true
		if !(workerParam == i && len(params) > 1) {
			cs.derivedItem[v] = true
		}
	}
	deriveFixpoint(p, lit.Body, cs.derivedAll)
	deriveFixpoint(p, lit.Body, cs.derivedItem)
	return cs
}

// deriveFixpoint grows derived with every variable assigned from an
// expression that mentions a derived variable, to a fixed point.
func deriveFixpoint(p *Package, body *ast.BlockStmt, derived map[*types.Var]bool) {
	mark := func(e ast.Expr, changed *bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if v := varObject(p, id); v != nil && !derived[v] {
			derived[v] = true
			*changed = true
		}
	}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						if mentionsDerived(p, s.Rhs[i], derived) {
							mark(s.Lhs[i], &changed)
						}
					}
				} else {
					for _, r := range s.Rhs {
						if mentionsDerived(p, r, derived) {
							for _, l := range s.Lhs {
								mark(l, &changed)
							}
							break
						}
					}
				}
			case *ast.RangeStmt:
				if mentionsDerived(p, s.X, derived) {
					if s.Key != nil {
						mark(s.Key, &changed)
					}
					if s.Value != nil {
						mark(s.Value, &changed)
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// mentionsDerived reports whether any identifier under e resolves to a
// derived variable.
func mentionsDerived(p *Package, e ast.Expr, derived map[*types.Var]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := varObject(p, id); v != nil && derived[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// capturedWrite is one direct write in a callback body whose target is
// a variable captured from outside the callback.
type capturedWrite struct {
	pos  token.Pos
	v    *types.Var  // captured base variable
	expr ast.Expr    // the full lvalue, for rendering
	op   token.Token // ASSIGN, ADD_ASSIGN, ..., INC, DEC
	rhs  ast.Expr    // nil for ++/--

	indexedAll  bool // some index along the chain is parameter-derived
	indexedItem bool // some index is item-parameter-derived
	typ         types.Type
}

// desc renders the lvalue for a diagnostic.
func (w capturedWrite) desc() string { return types.ExprString(w.expr) }

// capturedWrites enumerates the captured-variable writes of a literal
// callback. Writes to package-level variables are excluded — those are
// globalmut's jurisdiction, whatever function they appear in.
func capturedWrites(cs *callbackScope) []capturedWrite {
	var out []capturedWrite
	add := func(lhs ast.Expr, op token.Token, rhs ast.Expr) {
		base, indexes := unwrapLvalue(lhs)
		if base == nil {
			return
		}
		v := varObject(cs.p, base)
		if v == nil || cs.inner[v] {
			return
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return // package-level: globalmut reports these
		}
		w := capturedWrite{pos: lhs.Pos(), v: v, expr: lhs, op: op, rhs: rhs}
		for _, ix := range indexes {
			if mentionsDerived(cs.p, ix, cs.derivedAll) {
				w.indexedAll = true
			}
			if mentionsDerived(cs.p, ix, cs.derivedItem) {
				w.indexedItem = true
			}
		}
		if tv, ok := cs.p.Info.Types[lhs]; ok {
			w.typ = tv.Type
		} else {
			w.typ = v.Type()
		}
		out = append(out, w)
	}
	ast.Inspect(cs.lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // new iteration-local declarations
			}
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Lhs) == len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				add(lhs, s.Tok, rhs)
			}
		case *ast.IncDecStmt:
			add(s.X, s.Tok, nil)
		}
		return true
	})
	return out
}

// floatAccumWrite reports whether a captured write is a floating-point
// accumulation: a compound arithmetic assignment (+=, -=, *=, /=), a
// float ++/--, or a plain assignment whose right side reads the written
// variable back (x = x + v). These are the order-dependent reductions
// fpreduce owns; sharedwrite skips them so each finding has one rule.
func floatAccumWrite(cs *callbackScope, w capturedWrite) bool {
	if !isFloatType(w.typ) {
		return false
	}
	switch w.op {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.INC, token.DEC:
		return true
	case token.ASSIGN:
		return w.rhs != nil && mentionsVar(cs.p, w.rhs, w.v)
	}
	return false
}

// mentionsVar reports whether expression e reads variable v.
func mentionsVar(p *Package, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && varObject(p, id) == v {
			found = true
			return false
		}
		return true
	})
	return found
}
