package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------- floatcmp

// floatcmpRule flags == and != between floating-point (or complex)
// expressions. Exact float equality against a computed value is almost
// always a latent bug in this codebase: eigenvalues, pivots and residuals
// are never bit-exact. The one legitimate pattern — comparing against a
// literal 0, the sparsity test used throughout internal/dense and
// internal/sparse to skip structural zeros — is allowed.
var floatcmpRule = Rule{
	ID:   "floatcmp",
	Doc:  "== / != between float expressions (comparison with a literal 0 is allowed)",
	Hint: "compare with a tolerance, e.g. math.Abs(a-b) <= tol*scale, or math.IsNaN for NaN tests",
	Run:  runFloatcmp,
}

func runFloatcmp(p *Package, report func(pos token.Pos, msg, hint string)) {
	inspect(p, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
		if !isFloatType(tx.Type) || !isFloatType(ty.Type) {
			return true
		}
		if isZeroConst(tx.Value) || isZeroConst(ty.Value) {
			return true
		}
		report(be.OpPos, fmt.Sprintf("floating-point %s comparison between computed values", be.Op), "")
		return true
	})
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}

// ---------------------------------------------------------------- checkerr

// errWatchSuffixes are the factorization/solve packages whose error
// results guard numerical validity: dropping one silently turns a
// singular or indefinite matrix into garbage downstream. Blank-discarding
// (`_ =`) an error from these packages is flagged too.
var errWatchSuffixes = []string{"/internal/chol", "/internal/dense", "/internal/sim", "/internal/sparse"}

// checkerrRule flags ignored error results from module-internal calls: a
// call used as a bare statement whose callee returns an error (go vet is
// silent about these), blank-assigned errors from the factorization/solve
// watchlist, and — the flow-sensitive forms — errors that are assigned
// but then dropped: overwritten before any read, silently replaced by an
// explicit `return` over a named error result, or stored in a struct
// field of a value that is never used again.
var checkerrRule = Rule{
	ID:   "checkerr",
	Doc:  "ignored error results from module-internal calls: bare-statement calls, watchlist `_ =` discards, and assigned errors dropped via overwrite, named-return shadowing or dead struct fields",
	Hint: "handle or return the error; a failed factorization invalidates everything computed from it",
	Run:  runCheckerr,
}

func runCheckerr(p *Package, report func(pos token.Pos, msg, hint string)) {
	inspect(p, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !inModule(p, fn) {
				return true
			}
			if errorResultIndex(fn) >= 0 {
				report(call.Pos(), fmt.Sprintf("error result of %s is silently discarded", funcLabel(fn)), "")
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !onWatchlist(fn) {
				return true
			}
			idx := errorResultIndex(fn)
			if idx < 0 || idx >= len(st.Lhs) {
				return true
			}
			if id, ok := st.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
				report(id.Pos(), fmt.Sprintf("error result of %s assigned to blank identifier", funcLabel(fn)), "")
			}
		}
		return true
	})
	runCheckerrFlow(p, report)
}

// runCheckerrFlow is the flow-sensitive half of checkerr: it tracks error
// values from module-internal calls after they are assigned. The analysis
// is per basic block and deliberately conservative — any mention of a
// tracked variable anywhere in a later statement (conditions, nested
// control flow, closures) counts as a read and clears it — so every
// report is a definite drop on the straight-line path:
//
//   - overwritten before read:  err = fragile(); err = nil
//   - named-return shadowing:   func f() (err error) { err = fragile(); return nil }
//   - dead struct field:        r := &Result{}; r.Err = fragile(); <r never used again>
func runCheckerrFlow(p *Package, report func(pos token.Pos, msg, hint string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkErrFlowBody(p, namedErrResults(p, fn.Type), fn.Body, report)
				}
			case *ast.FuncLit:
				checkErrFlowBody(p, namedErrResults(p, fn.Type), fn.Body, report)
			}
			return true
		})
	}
}

// namedErrResults collects the named error-typed result variables of a
// function type, resolved to their types.Var objects so body identifiers
// can be matched by object identity.
func namedErrResults(p *Package, ft *ast.FuncType) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok && types.Identical(v.Type(), errType) {
				out[v] = true
			}
		}
	}
	return out
}

// pendingErr is one tracked unchecked error value: where it was assigned
// and which callee produced it.
type pendingErr struct {
	pos   token.Pos
	label string
}

// checkErrFlowBody runs the straight-line drop analysis over every block
// of one function body. Nested function literals are skipped here — the
// inspection in runCheckerrFlow visits them as functions of their own, so
// their named results are resolved against the right signature.
func checkErrFlowBody(p *Package, named map[*types.Var]bool, body *ast.BlockStmt, report func(pos token.Pos, msg, hint string)) {
	var blocks []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			blocks = append(blocks, b)
		}
		return true
	})
	for _, b := range blocks {
		checkErrFlowBlock(p, named, b, report)
	}
}

type fieldKey struct {
	base  *types.Var
	field string
}

func checkErrFlowBlock(p *Package, named map[*types.Var]bool, b *ast.BlockStmt, report func(pos token.Pos, msg, hint string)) {
	pending := map[*types.Var]pendingErr{}
	fields := map[fieldKey]pendingErr{}
	local := map[*types.Var]bool{} // vars declared by := at this block level

	varOf := func(id *ast.Ident) *types.Var {
		if v, ok := p.Info.Uses[id].(*types.Var); ok {
			return v
		}
		v, _ := p.Info.Defs[id].(*types.Var)
		return v
	}
	// clearReads treats every identifier occurrence under n as a read of
	// that variable: tracked errors and tracked struct bases are cleared.
	clearReads := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			id, ok := c.(*ast.Ident)
			if !ok {
				return true
			}
			v := varOf(id)
			if v == nil {
				return true
			}
			delete(pending, v)
			for k := range fields {
				if k.base == v {
					delete(fields, k)
				}
			}
			return true
		})
	}
	reportOverwrite := func(pe pendingErr) {
		report(pe.pos, fmt.Sprintf("error from %s is overwritten before it is read", pe.label), "")
	}

	for _, st := range b.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// Compound assignment (+=, ...) reads its left side too.
				clearReads(s)
				continue
			}
			// A tracked-error-producing call: v = pkg.Fragile() or
			// x.Field = pkg.Fragile().
			var fn *types.Func
			idx := -1
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if fn = calleeFunc(p, call); fn != nil && inModule(p, fn) {
						idx = errorResultIndex(fn)
					}
				}
			}
			for _, r := range s.Rhs {
				clearReads(r)
			}
			for i, l := range s.Lhs {
				id, isIdent := ast.Unparen(l).(*ast.Ident)
				if !isIdent {
					// x.Field = ... reads x before writing the field; an
					// error-producing call landing in a field of a
					// block-local value starts field tracking.
					if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok {
						base, baseOk := ast.Unparen(sel.X).(*ast.Ident)
						if baseOk && i == idx {
							if bv := varOf(base); bv != nil && local[bv] {
								fields[fieldKey{bv, sel.Sel.Name}] = pendingErr{l.Pos(), funcLabel(fn)}
								continue
							}
						}
					}
					clearReads(l)
					continue
				}
				v := varOf(id)
				if v == nil || id.Name == "_" {
					continue
				}
				if pe, ok := pending[v]; ok {
					reportOverwrite(pe)
					delete(pending, v)
				}
				if s.Tok == token.DEFINE {
					local[v] = true
				}
				if i == idx && types.Identical(v.Type(), errType) {
					pending[v] = pendingErr{id.Pos(), funcLabel(fn)}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				clearReads(r)
			}
			if len(s.Results) > 0 {
				// An explicit return overwrites every named result; a
				// tracked error sitting in one is silently replaced.
				for v, pe := range pending {
					if named[v] {
						report(pe.pos, fmt.Sprintf("error from %s in named result %s is discarded by a later explicit return", pe.label, v.Name()), "")
						delete(pending, v)
					}
				}
			} else {
				for v := range pending {
					if named[v] {
						delete(pending, v)
					}
				}
			}
		default:
			clearReads(st)
		}
	}
	for k, pe := range fields {
		report(pe.pos, fmt.Sprintf("error from %s stored in field %s.%s is never read", pe.label, k.base.Name(), k.field), "")
	}
}

// calleeFunc resolves the static callee of a call, or nil for builtins,
// conversions and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func inModule(p *Package, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == p.Module || strings.HasPrefix(pkg.Path(), p.Module+"/")
}

func onWatchlist(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, s := range errWatchSuffixes {
		if strings.HasSuffix(pkg.Path(), s) {
			return true
		}
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

// errorResultIndex returns the index of the (last) error result of fn, or
// -1 if it has none.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Identical(res.At(i).Type(), errType) {
			return i
		}
	}
	return -1
}

func funcLabel(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}

// ------------------------------------------------------------- panicpolicy

// panicpolicyRule enforces the repository's panic conventions:
//
//   - cmd/ and example binaries never panic — they validate input and
//     return errors with non-zero exit codes;
//   - the deck parser and the circuit simulator (user-input-facing
//     layers) never panic either;
//   - the numerical library packages under internal/ may panic only for
//     programmer errors, and the message must be a constant string (or a
//     fmt.Sprintf of a constant format) prefixed "<pkg>: ", matching the
//     existing "dense: Mul dimension mismatch" style so a stack trace
//     names the guilty layer.
var panicpolicyRule = Rule{
	ID:   "panicpolicy",
	Doc:  "panic misuse: any panic in cmd/, examples or parser/sim layers; unprefixed or dynamic panic messages in library packages",
	Hint: "return an error for bad input; for programmer errors panic with a constant \"<pkg>: ...\" message",
	Run:  runPanicpolicy,
}

func runPanicpolicy(p *Package, report func(pos token.Pos, msg, hint string)) {
	lay := layerOf(p)
	prefix := p.Types.Name() + ": "
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		switch lay {
		case layerMain:
			report(call.Pos(), "panic in a command binary; report the error and exit non-zero instead", "")
		case layerNoPanic:
			report(call.Pos(), "panic in a user-input-facing layer; return an error instead", "")
		default:
			if len(call.Args) == 1 && panicMessageOK(p, call.Args[0], prefix) {
				return true
			}
			report(call.Pos(),
				fmt.Sprintf("library panic message must be a constant string prefixed %q", prefix), "")
		}
		return true
	})
}

// panicMessageOK reports whether the panic argument is a constant string
// with the required prefix, directly or through fmt.Sprintf.
func panicMessageOK(p *Package, arg ast.Expr, prefix string) bool {
	if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
		return false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
}

// -------------------------------------------------------------- defersmell

// hotAllocSuffixes are the packages whose loops dominate the reduction
// runtime (admittance evaluation, the congruence transforms, the
// Cholesky/LDLᵀ factorization kernels, and the Lanczos/PRIMA
// recursions). Per-iteration dense-matrix or full-length-vector
// allocation there is a performance bug unless deliberately part of the
// algorithm's memory model — in which case it carries a //lint:ignore
// with the reason.
var hotAllocSuffixes = []string{
	"/internal/chol",
	"/internal/core",
	"/internal/lanczos",
	"/internal/par",
	"/internal/prima",
}

// defersmellRule flags defer statements inside loops (they pile up until
// function exit — a classic leak with per-iteration resources), and
// per-iteration allocation of dense matrices or full-length vector clones
// inside loops of the hot numerical packages.
var defersmellRule = Rule{
	ID:   "defersmell",
	Doc:  "defer inside a loop; per-iteration dense.Mat allocation or vector cloning in hot-loop packages",
	Hint: "hoist the allocation out of the loop and reuse a buffer, or move the defer into a helper function",
	Run:  runDefersmell,
}

func runDefersmell(p *Package, report func(pos token.Pos, msg, hint string)) {
	hot := false
	for _, s := range hotAllocSuffixes {
		if strings.HasSuffix(p.Path, s) {
			hot = true
			break
		}
	}
	for _, f := range p.Files {
		walkLoopDepth(f, 0, func(n ast.Node, depth int) {
			if depth == 0 {
				return
			}
			switch nn := n.(type) {
			case *ast.DeferStmt:
				report(nn.Pos(), "defer inside a loop runs only at function exit, once per iteration", "")
			case *ast.CallExpr:
				if !hot {
					return
				}
				if fn := calleeFunc(p, nn); fn != nil && isDenseAlloc(fn) {
					report(nn.Pos(), fmt.Sprintf("%s allocates a dense matrix every loop iteration", funcLabel(fn)), "")
				} else if isSliceCloneAppend(p, nn) {
					report(nn.Pos(), "append([]T(nil), ...) clones a full-length vector every loop iteration", "")
				}
			}
		})
	}
}

// walkLoopDepth visits every node, tracking how many for/range loops
// enclose it.
func walkLoopDepth(n ast.Node, depth int, fn func(n ast.Node, depth int)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		switch loop := c.(type) {
		case *ast.ForStmt:
			fn(c, depth)
			if loop.Init != nil {
				walkLoopDepth(loop.Init, depth, fn)
			}
			if loop.Cond != nil {
				walkLoopDepth(loop.Cond, depth, fn)
			}
			if loop.Post != nil {
				walkLoopDepth(loop.Post, depth+1, fn)
			}
			walkLoopDepth(loop.Body, depth+1, fn)
			return false
		case *ast.RangeStmt:
			fn(c, depth)
			walkLoopDepth(loop.X, depth, fn)
			walkLoopDepth(loop.Body, depth+1, fn)
			return false
		case *ast.FuncLit:
			// A function literal resets loop context: its body runs when
			// called, not per enclosing-loop iteration.
			fn(c, depth)
			walkLoopDepth(loop.Body, 0, fn)
			return false
		}
		fn(c, depth)
		return true
	})
}

// isDenseAlloc reports whether fn is a dense-matrix allocator: the New /
// NewC constructors or the Clone methods of the dense package.
func isDenseAlloc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasSuffix(pkg.Path(), "/internal/dense") {
		return false
	}
	switch fn.Name() {
	case "New", "NewC", "Clone", "NewFromRows", "Identity":
		return true
	}
	return false
}

// isSliceCloneAppend matches the append([]T(nil), src...) cloning idiom.
func isSliceCloneAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if call.Ellipsis == token.NoPos || len(call.Args) != 2 {
		return false
	}
	conv, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(conv.Args) != 1 {
		return false
	}
	if arg, ok := ast.Unparen(conv.Args[0]).(*ast.Ident); !ok || arg.Name != "nil" {
		return false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// -------------------------------------------------------------- exitpolicy

// exitpolicyRule flags process-terminating calls (os.Exit, log.Fatal*,
// log.Panic*) outside the main function of a main package. Library code
// must return errors so callers — including the planned long-running
// service — keep control of process lifetime.
var exitpolicyRule = Rule{
	ID:   "exitpolicy",
	Doc:  "os.Exit / log.Fatal* / log.Panic* outside func main of a main package",
	Hint: "return an error up to main and exit there",
	Run:  runExitpolicy,
}

func runExitpolicy(p *Package, report func(pos token.Pos, msg, hint string)) {
	isMainPkg := p.Types.Name() == "main"
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			allowed := isMainPkg && isFunc && fd.Recv == nil && fd.Name.Name == "main"
			if allowed {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || !isExitCall(fn) {
					return true
				}
				where := "library code"
				if isMainPkg {
					where = "code outside func main"
				}
				report(call.Pos(), fmt.Sprintf("%s terminates the process in %s", funcLabel(fn), where), "")
				return true
			})
		}
	}
}

func isExitCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}
