package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// The determinism/concurrency rule set. These five rules turn the
// repository's bit-identical-at-every-GOMAXPROCS guarantee from a
// convention pinned by Float64bits tests into a machine-checked
// discipline: sharedwrite and fpreduce police the worker-owned-scratch
// and fixed-reduction-order rules inside parallel callbacks (via the
// capture dataflow in parflow.go), maporder keeps map iteration order
// out of numeric results and reports, and nondet/globalmut use the
// module call graph (callgraph.go) to prove that no wall-clock, global
// random source, scheduling race, or package-level mutation is
// reachable from the numeric packages or from inside a pool callback.

// ---------------------------------------------------------------- sharedwrite

// sharedwriteRule flags writes inside a parallel callback whose target
// is captured from the enclosing function and not selected by an index
// derived from the callback's item/slot/worker argument. Such a write
// is executed by whichever worker drew the iteration, so it is at best
// nondeterministic and usually also a data race.
var sharedwriteRule = Rule{
	ID:   "sharedwrite",
	Doc:  "a parallel callback writes captured state not indexed by its item/slot/worker argument",
	Hint: "give every iteration its own slot: write through an index derived from the callback's item argument (out[i] = ...), or worker-owned scratch (scratch[w]), and merge after the pool returns",
	Run:  runSharedwrite,
}

func runSharedwrite(p *Package, report func(pos token.Pos, msg, hint string)) {
	for _, cb := range parCallbacks(p) {
		if cb.lit == nil {
			continue
		}
		cs := analyzeCallback(p, cb.entry, cb.lit)
		for _, w := range capturedWrites(cs) {
			if w.indexedAll {
				continue // iteration- or worker-owned slot
			}
			if floatAccumWrite(cs, w) {
				continue // fpreduce owns order-dependent reductions
			}
			report(w.pos, fmt.Sprintf(
				"parallel callback writes captured %s without indexing by its item/slot/worker argument",
				w.desc()), "")
		}
	}
}

// ------------------------------------------------------------------ fpreduce

// fpreduceRule flags floating-point accumulation into captured state
// inside a parallel callback: x += v, x = x + v, and their kin, when
// the target is not a per-item slot. Even when such an accumulation is
// made race-free (mutex, atomics, worker-indexed partial sums), the
// summation order follows the dynamic schedule, so the rounded result
// differs run to run — the exact failure mode the fixed-order
// slot-merge idiom exists to prevent.
var fpreduceRule = Rule{
	ID:   "fpreduce",
	Doc:  "order-dependent floating-point reduction into captured state inside a parallel callback",
	Hint: "accumulate into per-item slots (indexed by the callback's item argument) and reduce them in fixed index order after the pool returns",
	Run:  runFpreduce,
}

func runFpreduce(p *Package, report func(pos token.Pos, msg, hint string)) {
	for _, cb := range parCallbacks(p) {
		if cb.lit == nil {
			continue
		}
		cs := analyzeCallback(p, cb.entry, cb.lit)
		for _, w := range capturedWrites(cs) {
			if !floatAccumWrite(cs, w) {
				continue
			}
			if w.indexedItem {
				continue // per-item slot: owned by exactly one iteration
			}
			extra := ""
			if w.indexedAll {
				extra = " (worker-indexed slots receive items in scheduling order)"
			}
			report(w.pos, fmt.Sprintf(
				"order-dependent floating-point accumulation into captured %s inside a parallel callback%s",
				w.desc(), extra), "")
		}
	}
}

// ------------------------------------------------------------------ maporder

// maporderRule flags range-over-map loops whose bodies let the
// iteration order reach results: floating-point accumulation (rounding
// differs per order), appends to a slice declared outside the loop
// (element order differs per run) unless the slice is later sorted in
// the same function, and printed reports. Exact-integer accumulation
// and map-to-map transforms are order-independent and not flagged.
var maporderRule = Rule{
	ID:   "maporder",
	Doc:  "map iteration order leaks into results: float accumulation, unsorted appends, or output inside a range over a map",
	Hint: "collect the keys, sort them, and iterate the sorted slice instead of the map",
	Run:  runMaporder,
}

func runMaporder(p *Package, report func(pos token.Pos, msg, hint string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					maporderBody(p, d.Body, report)
				}
			case *ast.FuncLit:
				maporderBody(p, d.Body, report)
			}
			return true
		})
	}
}

// maporderBody checks every map range directly inside one function body
// (nested function literals are bodies of their own).
func maporderBody(p *Package, body *ast.BlockStmt, report func(pos token.Pos, msg, hint string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, rs, body, report)
		return true
	})
}

func checkMapRangeBody(p *Package, rs *ast.RangeStmt, encl *ast.BlockStmt, report func(pos token.Pos, msg, hint string)) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if tv, ok := p.Info.Types[s.Lhs[0]]; ok && isFloatType(tv.Type) {
					report(s.Lhs[0].Pos(), fmt.Sprintf(
						"floating-point accumulation into %s in map iteration order",
						types.ExprString(s.Lhs[0])), "")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(s.Args) > 0 {
					checkMapOrderAppend(p, rs, encl, s, report)
				}
			}
			if fn := calleeFunc(p, s); fn != nil && isReportCall(fn) {
				report(s.Pos(), fmt.Sprintf(
					"%s emits output in map iteration order", funcLabel(fn)), "")
			}
		}
		return true
	})
}

// checkMapOrderAppend flags append(dst, ...) inside a map range when
// dst is declared outside the loop and never handed to a sort in the
// enclosing function — the collect-then-sort idiom is the sanctioned
// fix and must not be flagged.
func checkMapOrderAppend(p *Package, rs *ast.RangeStmt, encl *ast.BlockStmt, call *ast.CallExpr, report func(pos token.Pos, msg, hint string)) {
	base, _ := unwrapLvalue(call.Args[0])
	if base == nil {
		return
	}
	v := varObject(p, base)
	if v == nil {
		return
	}
	if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
		return // loop-local scratch
	}
	if sortedInBody(p, encl, v) {
		return
	}
	report(call.Pos(), fmt.Sprintf(
		"append to %s in map iteration order", v.Name()), "")
}

// sortedInBody reports whether the function body contains a sorting
// call that mentions v: anything from the sort or slices packages, or a
// local helper whose name starts with "sort" (the repository carries
// such helpers where importing sort would be heavier than the loop).
func sortedInBody(p *Package, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		isSorter := strings.HasPrefix(strings.ToLower(fn.Name()), "sort")
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			isSorter = true
		}
		if !isSorter {
			return true
		}
		for _, a := range call.Args {
			if mentionsVar(p, a, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isReportCall matches the fmt emission functions (Print*/Fprint*):
// inside a map range these publish in iteration order.
func isReportCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// -------------------------------------------------------------------- nondet

// nondetNumericSuffixes are the numeric packages whose results feed the
// PACT reproducibility argument: everything they compute must be a pure
// function of the inputs.
var nondetNumericSuffixes = []string{
	"/internal/chol",
	"/internal/core",
	"/internal/dense",
	"/internal/lanczos",
	"/internal/prima",
	"/internal/pade",
}

// nondetRule flags nondeterminism sources — time.Now and friends, the
// process-global math/rand functions, crypto/rand, and multi-case
// select statements — reachable through the module call graph from any
// function of the numeric packages. The finding anchors at the source,
// wherever it lives, so one reasoned //lint:ignore there covers every
// numeric entry point that reaches it.
var nondetRule = Rule{
	ID:   "nondet",
	Doc:  "time.Now / global math/rand / multi-case select reachable from the numeric packages (chol, core, dense, lanczos, prima, pade)",
	Hint: "thread a caller-seeded generator or timestamp in as a parameter; numeric results must be a pure function of the inputs",
	Run:  runNondet,
}

func runNondet(p *Package, report func(pos token.Pos, msg, hint string)) {
	if !hasSuffixPath(p.Path, nondetNumericSuffixes) {
		return
	}
	prog := p.Program()
	seen := map[token.Pos]bool{}
	for _, root := range prog.pkgFuncs(p) {
		prog.reach(root, func(n *cgNode) {
			for _, src := range n.nondet {
				if seen[src.pos] {
					continue
				}
				seen[src.pos] = true
				if n == root {
					report(src.pos, fmt.Sprintf(
						"%s in numeric package function %s", src.desc, root.label), "")
				} else {
					report(src.pos, fmt.Sprintf(
						"%s in %s is reachable from numeric package function %s",
						src.desc, n.label, root.label), "")
				}
			}
		})
	}
}

// ----------------------------------------------------------------- globalmut

// globalmutRule flags writes to package-level variables in any function
// reachable, through the module call graph, from a callback handed to a
// par entry point. A global written from inside the pool is mutated in
// scheduling order — even when mutex-guarded it breaks the determinism
// contract, and unguarded it is a data race. The finding anchors at the
// write, so the justification lives next to the state it covers.
var globalmutRule = Rule{
	ID:   "globalmut",
	Doc:  "package-level state written by code reachable from a parallel callback",
	Hint: "pass the state in explicitly and let the caller merge results after the pool returns",
	Run:  runGlobalmut,
}

func runGlobalmut(p *Package, report func(pos token.Pos, msg, hint string)) {
	cbs := parCallbacks(p)
	if len(cbs) == 0 {
		return
	}
	prog := p.Program()
	seen := map[token.Pos]bool{}
	for _, cb := range cbs {
		var root *cgNode
		if cb.lit != nil {
			root = prog.litNode(cb.lit)
		} else {
			root = prog.nodeFor(cb.named)
		}
		if root == nil {
			continue
		}
		at := p.Fset.Position(cb.call.Pos())
		prog.reach(root, func(n *cgNode) {
			for _, gw := range n.globals {
				if seen[gw.pos] {
					continue
				}
				seen[gw.pos] = true
				report(gw.pos, fmt.Sprintf(
					"package-level %s is written by %s, which can run inside the parallel callback at %s:%d",
					gw.varName, n.label, filepath.Base(at.Filename), at.Line), "")
			}
		})
	}
}
