package lint

import (
	"strings"
	"testing"
)

// parStub is a minimal fixturemod/internal/par with the entry-point
// signatures the callback analysis keys on. The rules classify by
// package-path suffix, so this stands in for the real pool.
const parStub = `package par

func Workers(n int) int { return 1 }

func Do(workers, n int, body func(worker, i int)) {
	for i := 0; i < n; i++ {
		body(0, i)
	}
}

func ForWorkers(n int, body func(worker, i int)) { Do(1, n, body) }

func ForChunks(n, chunk int, body func(worker, lo, hi int)) { body(0, 0, n) }

func For(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}
`

// TestSharedwrite: unindexed captured writes inside parallel callbacks
// are flagged; item-indexed, derived-index, worker-slot and
// callback-local writes are not.
func TestSharedwrite(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/par/par.go": parStub,
		"internal/core/core.go": `package core

import "fixturemod/internal/par"

func Bad(xs []float64, k int) float64 {
	var last float64
	count := 0
	out := make([]float64, len(xs))
	par.ForWorkers(len(xs), func(w, i int) {
		last = xs[i]
		count++
		out[k] = xs[i]
	})
	return last + float64(count) + out[0]
}

func OkSlots(out, xs []float64, lvl []int) {
	par.ForWorkers(len(xs), func(w, i int) {
		out[i] = 2 * xs[i]
		s := lvl[i]
		out[s] = float64(s)
	})
}

func OkScratch(n int) [][]float64 {
	scratch := make([][]float64, par.Workers(n))
	par.ForWorkers(n, func(w, i int) {
		if scratch[w] == nil {
			scratch[w] = make([]float64, 4)
		}
		buf := scratch[w]
		buf[0] = float64(i)
	})
	return scratch
}

func OkChunks(out, xs []float64) {
	par.ForChunks(len(xs), 8, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i]
		}
	})
}
`,
	})
	ds := runRule(t, l, "internal/core", "sharedwrite")
	// last (10), count++ (11), out[k] (12): k is captured, not a
	// callback argument, so the write is not iteration-owned.
	wantLines(t, ds, 10, 11, 12)
	if !strings.Contains(ds[0].Hint, "item argument") {
		t.Fatalf("hint should name the slot-indexed idiom: %v", ds[0])
	}
}

// TestFpreduce: floating-point accumulation into captured state —
// scalar, self-assign form, and worker-indexed partial sums — is
// flagged; the per-item slot accumulation with a fixed-order post-merge
// (the sanctioned idiom) is not.
func TestFpreduce(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/par/par.go": parStub,
		"internal/core/core.go": `package core

import "fixturemod/internal/par"

func BadSum(xs []float64) float64 {
	sum := 0.0
	par.For(len(xs), func(i int) {
		sum += xs[i]
	})
	return sum
}

func BadSelfAssign(xs []float64) float64 {
	sum := 0.0
	par.For(len(xs), func(i int) {
		sum = sum + xs[i]
	})
	return sum
}

func BadWorkerSlots(xs []float64) float64 {
	partial := make([]float64, par.Workers(len(xs)))
	par.ForWorkers(len(xs), func(w, i int) {
		partial[w] += xs[i]
	})
	sum := 0.0
	for _, v := range partial {
		sum += v
	}
	return sum
}

func OkSlotMerge(xs []float64) float64 {
	slots := make([]float64, len(xs))
	par.ForWorkers(len(xs), func(w, i int) {
		slots[i] += 2 * xs[i]
	})
	sum := 0.0
	for _, v := range slots {
		sum += v
	}
	return sum
}
`,
	})
	ds := runRule(t, l, "internal/core", "fpreduce")
	wantLines(t, ds, 8, 16, 24)
	if !strings.Contains(ds[2].Msg, "worker-indexed") {
		t.Fatalf("worker-slot accumulation should explain the scheduling-order trap: %v", ds[2])
	}
	// The same fixture must be clean under sharedwrite: every finding
	// here is a reduction, not a race, and each belongs to one rule.
	wantLines(t, runRule(t, l, "internal/core", "sharedwrite"))
}

// TestSharedwriteChunkBucketIdiom: the chunk-indexed bucket pattern of
// the parallel stamping/assembly front end — a ForChunks callback that
// writes only the bucket selected by lo/chunk, or only the rows of its
// own [lo,hi) range — is clean, while the same shape with a captured
// (non-derived) bucket cursor or a captured first-error variable is a
// scheduling-order race and is flagged.
func TestSharedwriteChunkBucketIdiom(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/par/par.go": parStub,
		"internal/stamp/stamp.go": `package stamp

import "fixturemod/internal/par"

type bucket struct {
	rows []int
	vals []float64
	err  error
}

func OkBuckets(n int, xs []float64) []bucket {
	buckets := make([]bucket, (n+7)/8)
	par.ForChunks(n, 8, func(w, lo, hi int) {
		bk := &buckets[lo/8]
		for i := lo; i < hi; i++ {
			bk.rows = append(bk.rows, i)
			bk.vals = append(bk.vals, xs[i])
		}
	})
	return buckets
}

func OkRowSegments(rowLen []int, n int) {
	par.ForChunks(n, 8, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			rowLen[i] = i - lo
		}
	})
}

func BadCapturedCursor(n int) []bucket {
	buckets := make([]bucket, (n+7)/8)
	next := 0
	par.ForChunks(n, 8, func(w, lo, hi int) {
		buckets[next].rows = append(buckets[next].rows, lo)
		next++
	})
	return buckets
}

func BadFirstError(n int) error {
	var firstErr error
	par.ForChunks(n, 8, func(w, lo, hi int) {
		firstErr = nil
	})
	return firstErr
}
`,
	})
	ds := runRule(t, l, "internal/stamp", "sharedwrite")
	// buckets[next] (35) and next++ (36): the cursor is captured, not
	// derived from lo/hi, so whichever worker draws the chunk writes it.
	// firstErr (44): the sanctioned idiom stores the error in the chunk's
	// own bucket and picks the lowest failing chunk after the pool
	// returns, never a captured scalar.
	wantLines(t, ds, 35, 36, 44)
	// The clean idioms must also be clean under fpreduce: every write is
	// an owned slot, not a reduction.
	wantLines(t, runRule(t, l, "internal/stamp", "fpreduce"))
}

// TestMaporder: float accumulation, unsorted appends and fmt output in
// map iteration order are flagged; the collect-sort-iterate idiom (both
// stdlib sort and a local sort helper), integer counting and map-to-map
// transforms are not.
func TestMaporder(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/rep/rep.go": `package rep

import (
	"fmt"
	"sort"
)

func BadSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

func BadCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BadReport(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func OkSortedStdlib(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func OkSortedLocal(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func OkCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func OkTransform(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}
`,
	})
	ds := runRule(t, l, "internal/rep", "maporder")
	wantLines(t, ds, 11, 19, 26)
}

// TestNondet: wall-clock and global-rand sources are flagged when
// reachable from a numeric package — directly, and through a helper
// package with the finding anchored at the source in the helper's file.
// Seeded generators are not sources, and non-numeric packages are not
// roots.
func TestNondet(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() time.Time {
	return time.Now()
}
`,
		"internal/core/core.go": `package core

import (
	"math/rand"
	"time"

	"fixturemod/internal/clock"
)

func BadDirect() int64 { return time.Now().UnixNano() }

func BadViaHelper() int64 { return clock.Stamp().UnixNano() }

func BadRand() float64 { return rand.Float64() }

func BadSelect(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func OkSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
`,
	}
	l := fixtureLoader(t, files)
	ds := runRule(t, l, "internal/core", "nondet")
	if len(ds) != 4 {
		t.Fatalf("got %d nondet findings, want 4:\n%v", len(ds), ds)
	}
	var sawHelper bool
	for _, d := range ds {
		if strings.HasSuffix(d.Pos.Filename, "clock.go") {
			sawHelper = true
			if !strings.Contains(d.Msg, "reachable from") {
				t.Fatalf("cross-package finding should name the numeric root: %v", d)
			}
		}
	}
	if !sawHelper {
		t.Fatalf("expected a finding anchored at the helper's time.Now:\n%v", ds)
	}
	// The helper package itself is not numeric, so it is not a root.
	wantLines(t, runRule(t, l, "internal/clock", "nondet"))
}

// TestNondetSuppressionAtSource: a //lint:ignore written next to the
// source in the helper package covers the analyzing numeric package too
// — module-wide suppression matching.
func TestNondetSuppressionAtSource(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/clock/clock.go": `package clock

import "time"

func Stamp() time.Time {
	//lint:ignore nondet wall-clock stamp feeds logging only, never arithmetic
	return time.Now()
}
`,
		"internal/core/core.go": `package core

import "fixturemod/internal/clock"

func ViaHelper() int64 { return clock.Stamp().UnixNano() }
`,
	})
	wantLines(t, runRule(t, l, "internal/core", "nondet"))
}

// TestGlobalmut: package-level writes are flagged whether they happen
// in the callback itself, in a function the callback calls, or in a
// named function passed as the callback; slot writes to caller-owned
// state are not. sharedwrite leaves package-level targets to this rule.
func TestGlobalmut(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/par/par.go": parStub,
		"internal/core/core.go": `package core

import "fixturemod/internal/par"

var hits int

var gauge float64

var named int

func bump() { hits++ }

func handler(w, i int) { named = i }

func Bad(xs []float64) {
	par.For(len(xs), func(i int) {
		bump()
	})
	par.For(len(xs), func(i int) {
		gauge = xs[i]
	})
	par.Do(1, len(xs), handler)
}

func Ok(out, xs []float64) {
	par.For(len(xs), func(i int) {
		out[i] = xs[i]
	})
}
`,
	})
	ds := runRule(t, l, "internal/core", "globalmut")
	// hits++ inside bump (11), gauge in the callback (20), named in the
	// handler passed by name (13) — reported in source order.
	wantLines(t, ds, 11, 13, 20)
	for _, d := range ds {
		if !strings.Contains(d.Msg, "parallel callback") {
			t.Fatalf("finding should name the callback call site: %v", d)
		}
	}
	// The direct global write is globalmut's, not sharedwrite's.
	wantLines(t, runRule(t, l, "internal/core", "sharedwrite"))
}

// TestDedup: identical (position, rule) diagnostics collapse to one.
func TestDedup(t *testing.T) {
	t.Parallel()
	l := fixtureLoader(t, map[string]string{
		"internal/num/num.go": `package num

func Bad(a, b float64) bool { return a == b }
`,
	})
	ds := runRule(t, l, "internal/num", "floatcmp")
	wantLines(t, ds, 3)
	doubled := append(append([]Diagnostic(nil), ds...), ds...)
	if got := Dedup(doubled); len(got) != 1 {
		t.Fatalf("Dedup left %d of 2 identical diagnostics, want 1", len(got))
	}
}
