package netgen

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// AdderInfo describes the full-adder-on-mesh workload.
type AdderInfo struct {
	// MeshPorts are the 25 substrate contact nodes, in the paper's
	// accounting: 22 transistor bodies, the Vss substrate contact, the
	// well contact, and the monitor node.
	MeshPorts []string
	// Monitor is the substrate node observed in Figures 5 and 6.
	Monitor string
	// VssContact and WellContact are the tied-down substrate contacts.
	VssContact, WellContact string
}

// FullAdderOnMesh builds the Table 2/3 workload: a 28-transistor CMOS
// mirror full adder (24-transistor carry/sum core plus two output
// inverters) with three input inverters, sitting on a 3-D substrate mesh.
// Exactly 22 core transistor bodies connect to distinct mesh contacts;
// together with the Vss and well contacts and one monitor node that gives
// the paper's 25 substrate ports. The substrate contacts are tied to
// ground through 0 V sources (the DC-blocking well junction is outside
// the macromodel, as in the paper).
//
// The mesh options must provide at least 25 ports.
func FullAdderOnMesh(o MeshOpts) (*netlist.Deck, *AdderInfo, error) {
	if err := o.validate(); err != nil {
		return nil, nil, err
	}
	ports, err := meshPorts(o)
	if err != nil {
		return nil, nil, err
	}
	if len(ports) < 25 {
		return nil, nil, fmt.Errorf("netgen: full adder needs 25 mesh ports, mesh has %d", len(ports))
	}
	ports = ports[:25]
	info := &AdderInfo{
		VssContact:  ports[0],
		WellContact: ports[1],
		Monitor:     ports[2],
	}
	bodies := ports[3:25] // 22 transistor body attachment sites
	bi := 0

	var b strings.Builder
	fmt.Fprintln(&b, "one-bit cmos mirror full adder over 3d substrate mesh (tables 2-3)")
	b.WriteString(mosModels)
	fmt.Fprintln(&b, "vdd vdd 0 dc 5")
	// Input stimuli exercising all input transitions (different periods).
	fmt.Fprintln(&b, "vain ain 0 dc 0 pulse(0 5 1n 0.2n 0.2n 4n 8n)")
	fmt.Fprintln(&b, "vbin bin 0 dc 0 pulse(0 5 2n 0.2n 0.2n 8n 16n)")
	fmt.Fprintln(&b, "vcin cin 0 dc 0 pulse(0 5 4n 0.2n 0.2n 16n 32n)")
	// Input inverters (bodies tied to rails; not substrate ports, per the
	// paper's 22-body accounting).
	fmt.Fprintln(&b, "mpia a ain vdd vdd pch w=16u l=1u")
	fmt.Fprintln(&b, "mnia a ain 0 0 nch w=8u l=1u")
	fmt.Fprintln(&b, "mpib bb bin vdd vdd pch w=16u l=1u")
	fmt.Fprintln(&b, "mnib bb bin 0 0 nch w=8u l=1u")
	fmt.Fprintln(&b, "mpic ci cin vdd vdd pch w=16u l=1u")
	fmt.Fprintln(&b, "mnic ci cin 0 0 nch w=8u l=1u")

	mos := func(name, kind, d, g, s, bnode string, w float64) {
		model := "nch"
		if kind == "p" {
			model = "pch"
		}
		fmt.Fprintf(&b, "%s %s %s %s %s %s w=%gu l=1u\n", name, d, g, s, bnode, model, w)
	}
	// body hands out substrate attachments. NMOS bodies sit directly on a
	// mesh contact. A PMOS body lives in an n-well: its body node ties to
	// vdd through the well resistance and couples to the mesh contact
	// through the well junction capacitance, so the body sees vdd at DC
	// and substrate noise through the junction — and the well node (which
	// touches the MOSFET) is the RC-network port, keeping the paper's 25
	// port count.
	nWell := 0
	body := func(kind string) string {
		site := bodies[bi]
		bi++
		if kind == "n" {
			info.MeshPorts = append(info.MeshPorts, site)
			return site
		}
		nWell++
		well := fmt.Sprintf("well%d", nWell)
		fmt.Fprintf(&b, "rwell%d %s vdd 200\n", nWell, well)
		fmt.Fprintf(&b, "cwell%d %s %s 30f\n", nWell, well, site)
		info.MeshPorts = append(info.MeshPorts, well)
		return well
	}
	// Carry stage (10 transistors): cob = NOT(majority(a, b, ci)).
	mos("mpc1", "p", "x1", "a", "vdd", body("p"), 20)
	mos("mpc2", "p", "x1", "bb", "vdd", body("p"), 20)
	mos("mpc3", "p", "cob", "ci", "x1", body("p"), 20)
	mos("mpc4", "p", "x2", "a", "vdd", body("p"), 20)
	mos("mpc5", "p", "cob", "bb", "x2", body("p"), 20)
	mos("mnc1", "n", "y1", "a", "0", body("n"), 10)
	mos("mnc2", "n", "y1", "bb", "0", body("n"), 10)
	mos("mnc3", "n", "cob", "ci", "y1", body("n"), 10)
	mos("mnc4", "n", "cob", "a", "y2", body("n"), 10)
	mos("mnc5", "n", "y2", "bb", "0", body("n"), 10)
	// Sum stage (14 transistors, 12 of them body-ported):
	// sb = NOT(a xor b xor ci) realized as cob·(a+b+ci) + a·b·ci.
	mos("mps1", "p", "z1", "a", "vdd", body("p"), 20)
	mos("mps2", "p", "z1", "bb", "vdd", body("p"), 20)
	mos("mps3", "p", "z1", "ci", "vdd", body("p"), 20)
	mos("mps4", "p", "sb", "cob", "z1", body("p"), 20)
	mos("mps5", "p", "w1", "a", "vdd", body("p"), 20)
	mos("mps6", "p", "w2", "bb", "w1", body("p"), 20)
	mos("mps7", "p", "sb", "ci", "w2", "vdd", 20) // rail body (23rd would exceed 22)
	mos("mns1", "n", "u1", "a", "0", body("n"), 10)
	mos("mns2", "n", "u1", "bb", "0", body("n"), 10)
	mos("mns3", "n", "u1", "ci", "0", body("n"), 10)
	mos("mns4", "n", "sb", "cob", "u1", body("n"), 10)
	mos("mns5", "n", "sb", "a", "v1", body("n"), 10)
	mos("mns6", "n", "v1", "bb", "v2", body("n"), 10)
	mos("mns7", "n", "v2", "ci", "0", "0", 10) // rail body
	// Output inverters (rail bodies).
	mos("mpoc", "p", "cout", "cob", "vdd", "vdd", 16)
	mos("mnoc", "n", "cout", "cob", "0", "0", 8)
	mos("mpos", "p", "sum", "sb", "vdd", "vdd", 16)
	mos("mnos", "n", "sum", "sb", "0", "0", 8)
	fmt.Fprintln(&b, "clsum sum 0 25f")
	fmt.Fprintln(&b, "clcout cout 0 25f")
	// Substrate contact ties and monitor (0 A probe keeps the node a
	// port).
	fmt.Fprintf(&b, "vsubc %s 0 dc 0\n", info.VssContact)
	fmt.Fprintf(&b, "vwellc %s 0 dc 0\n", info.WellContact)
	fmt.Fprintf(&b, "iobs %s 0 dc 0\n", info.Monitor)
	// The mesh itself.
	meshCards(&b, o)
	fmt.Fprintln(&b, ".end")
	deck, err := netlist.ParseString(b.String())
	if err != nil {
		return nil, nil, fmt.Errorf("netgen: adder deck: %w", err)
	}
	if bi != 22 {
		return nil, nil, fmt.Errorf("netgen: internal error: %d bodies ported, want 22", bi)
	}
	// Final port accounting: 22 bodies (NMOS mesh sites and PMOS well
	// nodes) + substrate contact + well contact + monitor = 25, as in the
	// paper.
	info.MeshPorts = append([]string{info.VssContact, info.WellContact, info.Monitor}, info.MeshPorts...)
	return deck, info, nil
}
