// Package netgen generates the paper's experimental workloads as SPICE
// decks: the 100-segment RC transmission line between two inverters
// (Figure 2), tree-like interconnect parasitics standing in for the 8-bit
// multiplier extraction (Table 1 — see DESIGN.md for the substitution
// argument), 3-D substrate meshes (Tables 2–4), and the one-bit CMOS full
// adder whose transistor bodies port into the substrate mesh (Tables
// 2–3, Figures 5–6).
package netgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/netlist"
)

// mosModels are the level-1 cards shared by every generated deck.
const mosModels = `.model nch nmos vto=0.7 kp=60u gamma=0.4 phi=0.65 lambda=0.02 cgso=0.35n cgdo=0.35n cbd=12f cbs=12f
.model pch pmos vto=-0.7 kp=25u gamma=0.5 phi=0.65 lambda=0.04 cgso=0.35n cgdo=0.35n cbd=18f cbs=18f
`

func mustParse(s string) *netlist.Deck {
	d, err := netlist.ParseString(s)
	if err != nil {
		panic(fmt.Sprintf("netgen: internal deck error: %v", err))
	}
	return d
}

// ladderCards emits an nseg-segment RC ladder between nodes from and to,
// with total resistance rtot and total capacitance ctot; intermediate
// nodes are prefixed.
func ladderCards(b *strings.Builder, prefix, from, to string, nseg int, rtot, ctot float64) {
	rseg := rtot / float64(nseg)
	cseg := ctot / float64(nseg)
	prev := from
	for i := 1; i <= nseg; i++ {
		node := fmt.Sprintf("%s%d", prefix, i)
		if i == nseg {
			node = to
		}
		fmt.Fprintf(b, "r%s%d %s %s %g\n", prefix, i, prev, node, rseg)
		fmt.Fprintf(b, "c%s%d %s 0 %g\n", prefix, i, node, cseg)
		prev = node
	}
}

// Ladder returns a pure two-port RC ladder deck: nseg segments, driven
// port "p1", receiving port "p2" (both marked as ports by zero-valued
// sources). This is the network of Figure 2 in isolation, used for the
// Eq. (20) reproduction.
func Ladder(nseg int, rtot, ctot float64) *netlist.Deck {
	var b strings.Builder
	fmt.Fprintf(&b, "rc ladder %d segments r=%g c=%g\n", nseg, rtot, ctot)
	fmt.Fprintln(&b, "i1 p1 0 dc 0 ac 1")
	fmt.Fprintln(&b, "i2 p2 0 dc 0")
	ladderCards(&b, "n", "p1", "p2", nseg, rtot, ctot)
	fmt.Fprintln(&b, ".end")
	return mustParse(b.String())
}

// LineModel selects how InverterPair models the interconnect, matching
// the three traces of Figure 3.
type LineModel int

const (
	// LineFull is the 100-segment (or nseg-segment) distributed model.
	LineFull LineModel = iota
	// LineLumped2 is the 2-segment lumped model with the same totals.
	LineLumped2
	// LineNone removes the line (driver directly at the receiver).
	LineNone
)

// InverterPair builds the Figure 2 circuit: a CMOS inverter driving a
// second inverter across an RC line with the given segment count and
// totals. Node "out1" is the driver output (line input), "in2" the line
// output / receiver gate, "out2" the receiver output. The input pulse
// switches at 1 ns with 0.1 ns edges.
func InverterPair(nseg int, rtot, ctot float64, lm LineModel) *netlist.Deck {
	var b strings.Builder
	fmt.Fprintln(&b, "cmos inverter pair with rc transmission line (figure 2)")
	b.WriteString(mosModels)
	fmt.Fprintln(&b, "vdd vdd 0 dc 5")
	fmt.Fprintln(&b, "vin in 0 dc 0 pulse(0 5 1n 0.1n 0.1n 8n 20n)")
	// Large driver inverter.
	fmt.Fprintln(&b, "mp1 out1 in vdd vdd pch w=40u l=1u")
	fmt.Fprintln(&b, "mn1 out1 in 0 0 nch w=20u l=1u")
	switch lm {
	case LineFull:
		ladderCards(&b, "t", "out1", "in2", nseg, rtot, ctot)
	case LineLumped2:
		ladderCards(&b, "t", "out1", "in2", 2, rtot, ctot)
	case LineNone:
		fmt.Fprintln(&b, "rshort out1 in2 1e-3")
	}
	// Receiver inverter.
	fmt.Fprintln(&b, "mp2 out2 in2 vdd vdd pch w=20u l=1u")
	fmt.Fprintln(&b, "mn2 out2 in2 0 0 nch w=10u l=1u")
	fmt.Fprintln(&b, "cl out2 0 30f")
	fmt.Fprintln(&b, ".end")
	return mustParse(b.String())
}

// Multiplier builds the synthetic Table-1 workload: a critical path of
// `stages` CMOS inverters where each stage drives a tree-like parasitic
// RC net with `fanout` branches of `segs` segments each (one branch
// continues to the next stage; the others model side loads), plus
// `sideNets` disconnected-from-the-path nets hanging on intermediate
// drivers, giving the tree-like, many-net structure of extracted
// multiplier interconnect. Node "in" is the path input and "out" the
// final stage output.
func Multiplier(stages, fanout, segs, sideNets int, seed int64) *netlist.Deck {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintln(&b, "synthetic multiplier critical path with tree-like rc parasitics (table 1 workload)")
	b.WriteString(mosModels)
	fmt.Fprintln(&b, "vdd vdd 0 dc 5")
	fmt.Fprintln(&b, "vin in 0 dc 0 pulse(0 5 1n 0.2n 0.2n 25n 60n)")
	prev := "in"
	net := 0
	emitTree := func(root, sink string) {
		// One spine to the sink plus side branches.
		net++
		for br := 0; br < fanout; br++ {
			to := fmt.Sprintf("x%d_b%dend", net, br)
			if br == 0 && sink != "" {
				to = sink
			}
			r := 80 + 140*rng.Float64()
			c := (0.04 + 0.08*rng.Float64()) * 1e-12
			ladderCards(&b, fmt.Sprintf("x%d_b%d_", net, br), root, to, segs, r, c)
		}
	}
	for st := 1; st <= stages; st++ {
		drv := fmt.Sprintf("d%d", st)
		fmt.Fprintf(&b, "mp%d %s %s vdd vdd pch w=16u l=1u\n", st, drv, prev)
		fmt.Fprintf(&b, "mn%d %s %s 0 0 nch w=8u l=1u\n", st, drv, prev)
		next := fmt.Sprintf("g%d", st)
		if st == stages {
			next = "out"
		}
		emitTree(drv, next)
		prev = next
	}
	// Side nets: extra parasitic trees on their own small drivers hanging
	// off the supply, contributing nodes/elements without lengthening the
	// path (the bulk of a real multiplier's extraction).
	for sn := 0; sn < sideNets; sn++ {
		src := fmt.Sprintf("sg%d", sn)
		fmt.Fprintf(&b, "mps%d %s %s vdd vdd pch w=8u l=1u\n", sn, src, "in")
		fmt.Fprintf(&b, "mns%d %s %s 0 0 nch w=4u l=1u\n", sn, src, "in")
		emitTree(src, "")
	}
	fmt.Fprintln(&b, "cload out 0 25f")
	// A zero-current probe keeps the path output a port of the RC network
	// (it would otherwise touch only parasitics and be eliminated).
	fmt.Fprintln(&b, "iout out 0 dc 0")
	fmt.Fprintln(&b, ".end")
	return mustParse(b.String())
}

// MultiplierIdeal is the same circuit as Multiplier with the parasitic
// networks removed: every driver connects directly to the next gate (the
// "without parasitics" rows of Table 1).
func MultiplierIdeal(stages, sideNets int) *netlist.Deck {
	var b strings.Builder
	fmt.Fprintln(&b, "synthetic multiplier critical path without parasitics")
	b.WriteString(mosModels)
	fmt.Fprintln(&b, "vdd vdd 0 dc 5")
	fmt.Fprintln(&b, "vin in 0 dc 0 pulse(0 5 1n 0.2n 0.2n 25n 60n)")
	prev := "in"
	for st := 1; st <= stages; st++ {
		next := fmt.Sprintf("g%d", st)
		if st == stages {
			next = "out"
		}
		fmt.Fprintf(&b, "mp%d %s %s vdd vdd pch w=16u l=1u\n", st, next, prev)
		fmt.Fprintf(&b, "mn%d %s %s 0 0 nch w=8u l=1u\n", st, next, prev)
		prev = next
	}
	for sn := 0; sn < sideNets; sn++ {
		src := fmt.Sprintf("sg%d", sn)
		fmt.Fprintf(&b, "mps%d %s %s vdd vdd pch w=8u l=1u\n", sn, src, "in")
		fmt.Fprintf(&b, "mns%d %s %s 0 0 nch w=4u l=1u\n", sn, src, "in")
	}
	fmt.Fprintln(&b, "cload out 0 25f")
	fmt.Fprintln(&b, "iout out 0 dc 0")
	fmt.Fprintln(&b, ".end")
	return mustParse(b.String())
}

// MeshOpts configures the 3-D substrate mesh generator.
type MeshOpts struct {
	NX, NY, NZ int     // lattice dimensions (nodes per axis)
	REdge      float64 // resistance of each lattice edge (Ω)
	CSurf      float64 // capacitance to ground at top-surface nodes (F)
	NPorts     int     // contacts placed on the top surface
}

// SmallMeshOpts is the paper-scale 1525-node substrate of Tables 2–3.
// The edge resistance and surface capacitance are calibrated so the
// slowest substrate mode sits near 2.8 GHz, reproducing Table 2's pole
// counts: none kept at 300 MHz, one at 1 GHz, several at 3 GHz.
func SmallMeshOpts() MeshOpts {
	return MeshOpts{NX: 13, NY: 13, NZ: 9, REdge: 630, CSurf: 30e-15, NPorts: 25}
}

// LargeMeshOpts is the ~20k-node mesh of Table 4 (469 ports + 19877
// internal in the paper). Its RC product is calibrated so that on the
// order of ten substrate modes fall below the Table 4 cutoff
// (500 MHz × the 10%-tolerance factor 2.06).
func LargeMeshOpts(ports int) MeshOpts {
	return MeshOpts{NX: 30, NY: 30, NZ: 23, REdge: 3100, CSurf: 135e-15, NPorts: ports}
}

// MeshNode names the lattice node at (x, y, z); z = 0 is the top surface.
func MeshNode(x, y, z int) string { return fmt.Sprintf("m%d_%d_%d", x, y, z) }

// Mesh3D builds a pure-RC substrate mesh deck and returns the deck and
// the port node names (top-surface contacts on a uniform sub-grid). The
// ports carry no devices; pass them to stamp.Extract as extra ports or
// wire devices to them. The options are validated: lattice dimensions
// must be at least 1, the edge resistance positive, the surface
// capacitance non-negative, and the port count must fit the top surface.
func Mesh3D(o MeshOpts) (*netlist.Deck, []string, error) {
	if err := o.validate(); err != nil {
		return nil, nil, err
	}
	ports, err := meshPorts(o)
	if err != nil {
		return nil, nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "3d substrate mesh %dx%dx%d\n", o.NX, o.NY, o.NZ)
	meshCards(&b, o)
	fmt.Fprintln(&b, ".end")
	return mustParse(b.String()), ports, nil
}

// validate rejects degenerate mesh configurations before any cards are
// emitted, so callers get an error instead of a nonsense deck.
func (o MeshOpts) validate() error {
	if o.NX < 1 || o.NY < 1 || o.NZ < 1 {
		return fmt.Errorf("netgen: mesh dimensions %dx%dx%d; every axis needs at least one node", o.NX, o.NY, o.NZ)
	}
	if o.REdge <= 0 {
		return fmt.Errorf("netgen: mesh edge resistance %g must be positive (network must be passive)", o.REdge)
	}
	if o.CSurf < 0 {
		return fmt.Errorf("netgen: mesh surface capacitance %g must be non-negative", o.CSurf)
	}
	if o.NPorts < 1 {
		return fmt.Errorf("netgen: mesh needs at least one port, got %d", o.NPorts)
	}
	return nil
}

// meshCards emits the mesh R/C cards into b.
func meshCards(b *strings.Builder, o MeshOpts) {
	re := 0
	ce := 0
	for z := 0; z < o.NZ; z++ {
		for y := 0; y < o.NY; y++ {
			for x := 0; x < o.NX; x++ {
				n := MeshNode(x, y, z)
				if x+1 < o.NX {
					re++
					fmt.Fprintf(b, "rm%d %s %s %g\n", re, n, MeshNode(x+1, y, z), o.REdge)
				}
				if y+1 < o.NY {
					re++
					fmt.Fprintf(b, "rm%d %s %s %g\n", re, n, MeshNode(x, y+1, z), o.REdge)
				}
				if z+1 < o.NZ {
					re++
					fmt.Fprintf(b, "rm%d %s %s %g\n", re, n, MeshNode(x, y, z+1), o.REdge)
				}
				if z == 0 && o.CSurf > 0 {
					ce++
					fmt.Fprintf(b, "cm%d %s 0 %g\n", ce, n, o.CSurf)
				}
			}
		}
	}
	// Backside contact: the bottom face ties to the grounded back plane
	// through a distributed resistance.
	rb := 0
	for y := 0; y < o.NY; y++ {
		for x := 0; x < o.NX; x++ {
			rb++
			fmt.Fprintf(b, "rback%d %s 0 %g\n", rb, MeshNode(x, y, o.NZ-1), 50*o.REdge)
		}
	}
}

// meshPorts spreads NPorts contact nodes over the top surface.
func meshPorts(o MeshOpts) ([]string, error) {
	total := o.NX * o.NY
	if o.NPorts > total {
		return nil, fmt.Errorf("netgen: %d ports requested but the top surface has only %d nodes", o.NPorts, total)
	}
	ports := make([]string, 0, o.NPorts)
	// Uniform stride over the linearized surface with a deterministic
	// pattern.
	stride := float64(total) / float64(o.NPorts)
	for i := 0; i < o.NPorts; i++ {
		idx := int(float64(i) * stride)
		x := idx % o.NX
		y := idx / o.NX
		ports = append(ports, MeshNode(x, y, 0))
	}
	return ports, nil
}
