package netgen

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/stamp"
)

func TestLadderStructure(t *testing.T) {
	deck := Ladder(100, 250, 1.35e-12)
	ex, err := stamp.Extract(deck)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M != 2 {
		t.Fatalf("ports = %d, want 2", ex.Sys.M)
	}
	if ex.Sys.N != 99 {
		t.Fatalf("internal = %d, want 99", ex.Sys.N)
	}
	nodes, rs, cs := ex.Sys.RCStats()
	if nodes != 101 || rs != 100 || cs != 100 {
		t.Fatalf("stats = %d nodes %d R %d C, want 101/100/100", nodes, rs, cs)
	}
}

func TestInverterPairBuilds(t *testing.T) {
	for _, lm := range []LineModel{LineFull, LineLumped2, LineNone} {
		deck := InverterPair(20, 250, 1.35e-12, lm)
		c, err := sim.Build(deck)
		if err != nil {
			t.Fatalf("line model %v: %v", lm, err)
		}
		res, err := c.DC()
		if err != nil {
			t.Fatalf("line model %v DC: %v", lm, err)
		}
		// Input low at DC: both inverter outputs at their static levels.
		v1, _ := c.Voltage(res.X, "out1")
		v2, _ := c.Voltage(res.X, "out2")
		if math.Abs(v1-5) > 0.01 {
			t.Fatalf("line model %v: V(out1) = %v, want 5", lm, v1)
		}
		if math.Abs(v2) > 0.01 {
			t.Fatalf("line model %v: V(out2) = %v, want 0", lm, v2)
		}
	}
}

func TestInverterPairTransientSwitches(t *testing.T) {
	deck := InverterPair(10, 250, 1.35e-12, LineFull)
	c, err := sim.Build(deck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(4e-9, 0.02e-9)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := c.NodeIndex("out2")
	if v := res.At(idx, 0.5e-9); math.Abs(v) > 0.05 {
		t.Fatalf("V(out2) before edge = %v, want 0", v)
	}
	if v := res.At(idx, 3.9e-9); math.Abs(v-5) > 0.25 {
		t.Fatalf("V(out2) after edge = %v, want 5", v)
	}
}

func TestMultiplierStructure(t *testing.T) {
	deck := Multiplier(6, 3, 4, 10, 1)
	ex, err := stamp.Extract(deck)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M == 0 || ex.Sys.N == 0 {
		t.Fatalf("degenerate system %d/%d", ex.Sys.M, ex.Sys.N)
	}
	// Trees only: no dangling components dropped.
	if len(ex.DroppedElements) != 0 {
		t.Fatalf("dropped %d elements", len(ex.DroppedElements))
	}
	if _, err := sim.Build(deck); err != nil {
		t.Fatal(err)
	}
}

func TestMesh3DCounts(t *testing.T) {
	o := MeshOpts{NX: 4, NY: 3, NZ: 2, REdge: 100, CSurf: 1e-15, NPorts: 5}
	deck, ports, err := Mesh3D(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 5 {
		t.Fatalf("ports = %d", len(ports))
	}
	nR := len(deck.ElementsOfType('r'))
	nC := len(deck.ElementsOfType('c'))
	// Edges: x: 3*3*2=18, y: 4*2*2=16, z: 4*3*1=12; back contacts 12.
	if nR != 18+16+12+12 {
		t.Fatalf("resistors = %d, want 58", nR)
	}
	if nC != 12 {
		t.Fatalf("capacitors = %d, want 12 (surface)", nC)
	}
	if len(deck.NodeNames()) != 24 {
		t.Fatalf("nodes = %d, want 24", len(deck.NodeNames()))
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M != 5 || ex.Sys.N != 19 {
		t.Fatalf("system %d/%d, want 5/19", ex.Sys.M, ex.Sys.N)
	}
}

func TestSmallMeshMatchesPaperScale(t *testing.T) {
	deck, ports, err := Mesh3D(SmallMeshOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := len(deck.NodeNames())
	if nodes != 13*13*9 {
		t.Fatalf("nodes = %d", nodes)
	}
	if len(ports) != 25 {
		t.Fatalf("ports = %d, want 25", len(ports))
	}
	nR := len(deck.ElementsOfType('r'))
	nC := len(deck.ElementsOfType('c'))
	// Same order of magnitude as the paper's 4970 R / 253 C on 1525
	// nodes.
	if nR < 3500 || nR > 6000 {
		t.Fatalf("resistors = %d, outside paper scale", nR)
	}
	if nC < 150 || nC > 400 {
		t.Fatalf("capacitors = %d, outside paper scale", nC)
	}
}

// tinyAdderMesh keeps the adder truth-table test fast: 25 surface nodes.
func tinyAdderMesh() MeshOpts {
	return MeshOpts{NX: 5, NY: 5, NZ: 3, REdge: 400, CSurf: 15e-15, NPorts: 25}
}

func TestFullAdderPortAccounting(t *testing.T) {
	deck, info, err := FullAdderOnMesh(tinyAdderMesh())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.MeshPorts) != 25 {
		t.Fatalf("substrate ports = %d, want 25", len(info.MeshPorts))
	}
	nm := 0
	for _, e := range deck.Elements {
		if _, ok := e.(*netlist.MOSFET); ok {
			nm++
		}
	}
	if nm != 34 {
		t.Fatalf("transistors = %d, want 34 (28 adder + 6 input inverters)", nm)
	}
	ex, err := stamp.Extract(deck)
	if err != nil {
		t.Fatal(err)
	}
	// RC ports: the 25 substrate ports plus vdd, sum and cout (their load
	// caps touch devices).
	if ex.Sys.M != 28 {
		t.Fatalf("extracted ports = %d, want 28", ex.Sys.M)
	}
	for _, p := range info.MeshPorts {
		found := false
		for _, q := range ex.PortNames {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("substrate port %s not detected as RC port", p)
		}
	}
}

func TestFullAdderTruthTable(t *testing.T) {
	deck, _, err := FullAdderOnMesh(tinyAdderMesh())
	if err != nil {
		t.Fatal(err)
	}
	// Static truth table: overwrite the input sources with DC levels. The
	// adder operates on the inverter outputs, so logic inputs are the
	// complements of the source levels.
	var vain, vbin, vcin *netlist.VSource
	for _, e := range deck.Elements {
		if v, ok := e.(*netlist.VSource); ok {
			switch v.Ident {
			case "vain":
				vain = v
			case "vbin":
				vbin = v
			case "vcin":
				vcin = v
			}
		}
	}
	if vain == nil || vbin == nil || vcin == nil {
		t.Fatal("input sources not found")
	}
	for bits := 0; bits < 8; bits++ {
		ai, bi, ci := bits&1, (bits>>1)&1, (bits>>2)&1
		// Drive the complements so the adder sees (ai, bi, ci).
		vain.DC, vain.Wave = float64(1-ai)*5, nil
		vbin.DC, vbin.Wave = float64(1-bi)*5, nil
		vcin.DC, vcin.Wave = float64(1-ci)*5, nil
		sum := ai ^ bi ^ ci
		cout := (ai & bi) | (ci & (ai | bi))
		c, err := sim.Build(deck)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.DC()
		if err != nil {
			t.Fatalf("inputs %d%d%d: DC failed: %v", ai, bi, ci, err)
		}
		vs, _ := c.Voltage(res.X, "sum")
		vc, _ := c.Voltage(res.X, "cout")
		if math.Abs(vs-float64(sum)*5) > 0.5 {
			t.Fatalf("inputs %d%d%d: sum = %v, want %v", ai, bi, ci, vs, float64(sum)*5)
		}
		if math.Abs(vc-float64(cout)*5) > 0.5 {
			t.Fatalf("inputs %d%d%d: cout = %v, want %v", ai, bi, ci, vc, float64(cout)*5)
		}
	}
}

func TestMeshPortsDistinct(t *testing.T) {
	for _, o := range []MeshOpts{SmallMeshOpts(), {NX: 6, NY: 6, NZ: 2, REdge: 1, NPorts: 36}} {
		ports, err := meshPorts(o)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range ports {
			if seen[p] {
				t.Fatalf("duplicate port %s for %+v", p, o)
			}
			seen[p] = true
		}
	}
}

func TestLargeMeshOptsScale(t *testing.T) {
	o := LargeMeshOpts(469)
	total := o.NX * o.NY * o.NZ
	if total < 19000 || total > 22000 {
		t.Fatalf("large mesh %d nodes, want ~20k (paper: 469+19877)", total)
	}
	if fmt.Sprintf("%d", o.NPorts) != "469" {
		t.Fatalf("ports = %d", o.NPorts)
	}
}

func TestSupplyWorkload(t *testing.T) {
	deck, info, err := Supply(DefaultSupplyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Taps) != 6 || info.Far == "" || info.Pin == "" {
		t.Fatalf("info = %+v", info)
	}
	ex, err := stamp.Extract(deck)
	if err != nil {
		t.Fatal(err)
	}
	// The pin (touching the package inductor) and every tap must be RC
	// ports.
	want := append([]string{info.Pin}, info.Taps...)
	for _, p := range want {
		found := false
		for _, q := range ex.PortNames {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %s not detected as port", p)
		}
	}
	// DC: the whole grid sits at vdd (inductor is a short).
	c, err := sim.Build(deck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	vf, _ := c.Voltage(res.X, info.Far)
	if math.Abs(vf-5) > 1e-3 {
		t.Fatalf("V(%s) = %v at DC, want 5", info.Far, vf)
	}
	if _, _, err := Supply(SupplyOpts{RX: 1, RY: 2, Taps: 1}); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestMultiplierIdealStructure(t *testing.T) {
	deck := MultiplierIdeal(6, 4)
	// 6 path inverters + 4 side drivers = 20 MOSFETs, no R.
	nm := 0
	for _, e := range deck.Elements {
		if _, ok := e.(*netlist.MOSFET); ok {
			nm++
		}
	}
	if nm != 20 {
		t.Fatalf("mosfets = %d, want 20", nm)
	}
	if n := len(deck.ElementsOfType('r')); n != 0 {
		t.Fatalf("ideal deck has %d resistors", n)
	}
	c, err := sim.Build(deck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	// Even stage count: out follows in = 0 at DC.
	v, _ := c.Voltage(res.X, "out")
	if math.Abs(v) > 1e-3 {
		t.Fatalf("V(out) = %v, want 0", v)
	}
}

func TestMesh3DRejectsBadOptions(t *testing.T) {
	base := MeshOpts{NX: 4, NY: 4, NZ: 2, REdge: 100, CSurf: 1e-15, NPorts: 4}
	cases := []struct {
		name   string
		mutate func(*MeshOpts)
	}{
		{"zero axis", func(o *MeshOpts) { o.NZ = 0 }},
		{"negative axis", func(o *MeshOpts) { o.NX = -1 }},
		{"non-positive resistance", func(o *MeshOpts) { o.REdge = 0 }},
		{"negative capacitance", func(o *MeshOpts) { o.CSurf = -1e-15 }},
		{"no ports", func(o *MeshOpts) { o.NPorts = 0 }},
		{"too many ports", func(o *MeshOpts) { o.NPorts = 17 }},
	}
	for _, tc := range cases {
		o := base
		tc.mutate(&o)
		if _, _, err := Mesh3D(o); err == nil {
			t.Errorf("%s: Mesh3D(%+v) accepted invalid options", tc.name, o)
		}
		if _, _, err := FullAdderOnMesh(o); err == nil {
			t.Errorf("%s: FullAdderOnMesh(%+v) accepted invalid options", tc.name, o)
		}
	}
	if _, _, err := Mesh3D(base); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}
