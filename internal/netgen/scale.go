package netgen

import (
	"fmt"

	"repro/internal/netlist"
)

// This file holds the large-scale workloads: RC networks big enough that
// building them as SPICE text and re-parsing it would double the memory
// bill, so they construct netlist.Deck elements directly. The decks still
// Write as ordinary SPICE, and port nodes are marked by zero-current
// probes exactly as the text generators do.

// PowerGridOpts configures the flat on-chip power-grid mesh: an NX×NY
// RC grid (segment resistance RSeg between lattice neighbors, CNode to
// ground at every node) with NPorts supply taps spread over the area.
// Unlike Supply, there are no devices — this is the pure parasitic net a
// grid-analysis flow hands to a reducer, scalable to millions of nodes.
type PowerGridOpts struct {
	NX, NY int
	RSeg   float64
	CNode  float64
	NPorts int
}

// PowerGridPreset sizes a grid with at least the requested node count
// (square, rounded up) at typical per-segment parasitics and 16 taps.
func PowerGridPreset(nodes int) PowerGridOpts {
	side := 1
	for side*side < nodes {
		side++
	}
	return PowerGridOpts{NX: side, NY: side, RSeg: 0.8, CNode: 60e-15, NPorts: 16}
}

// PowerGrid builds the grid deck and returns it with the port node
// names. Node g<x>_<y>; ports are spread along the grid diagonal so the
// reduced model sees the full electrical distance of the mesh.
func PowerGrid(o PowerGridOpts) (*netlist.Deck, []string, error) {
	if o.NX < 2 || o.NY < 2 {
		return nil, nil, fmt.Errorf("netgen: power grid needs at least 2x2 nodes, got %dx%d", o.NX, o.NY)
	}
	if o.RSeg <= 0 || o.CNode < 0 {
		return nil, nil, fmt.Errorf("netgen: power grid rseg %g must be positive, cnode %g non-negative", o.RSeg, o.CNode)
	}
	if o.NPorts < 1 || o.NPorts > o.NX*o.NY {
		return nil, nil, fmt.Errorf("netgen: %d ports do not fit a %dx%d grid", o.NPorts, o.NX, o.NY)
	}
	deck := &netlist.Deck{
		Title:   fmt.Sprintf("on-chip power grid %dx%d", o.NX, o.NY),
		Models:  map[string]*netlist.Model{},
		Subckts: map[string]*netlist.Subckt{},
	}
	// Node names are interned once and shared by every element touching
	// the node — at 10⁶ nodes the strings dominate the deck otherwise.
	names := make([]string, o.NX*o.NY)
	for y := 0; y < o.NY; y++ {
		for x := 0; x < o.NX; x++ {
			names[y*o.NX+x] = fmt.Sprintf("g%d_%d", x, y)
		}
	}
	nres := (o.NX-1)*o.NY + o.NX*(o.NY-1)
	elems := make([]netlist.Element, 0, nres+o.NX*o.NY+o.NPorts)
	re := 0
	for y := 0; y < o.NY; y++ {
		for x := 0; x < o.NX; x++ {
			n := names[y*o.NX+x]
			if x+1 < o.NX {
				re++
				elems = append(elems, &netlist.Resistor{
					Ident: fmt.Sprintf("rg%d", re), N1: n, N2: names[y*o.NX+x+1], Value: o.RSeg,
				})
			}
			if y+1 < o.NY {
				re++
				elems = append(elems, &netlist.Resistor{
					Ident: fmt.Sprintf("rg%d", re), N1: n, N2: names[(y+1)*o.NX+x], Value: o.RSeg,
				})
			}
			if o.CNode > 0 {
				elems = append(elems, &netlist.Capacitor{
					Ident: "c" + n, N1: n, N2: netlist.Ground, Value: o.CNode,
				})
			}
		}
	}
	ports := make([]string, 0, o.NPorts)
	seen := map[string]bool{}
	for k := 0; k < o.NPorts; k++ {
		f := float64(k) / float64(o.NPorts-1+boolInt(o.NPorts == 1))
		x := int(f * float64(o.NX-1))
		y := int(f * float64(o.NY-1))
		tap := names[y*o.NX+x]
		if seen[tap] { // small grids collapse adjacent diagonal taps
			continue
		}
		seen[tap] = true
		ports = append(ports, tap)
		elems = append(elems, &netlist.ISource{
			Ident: fmt.Sprintf("ip%d", k), N1: tap, N2: netlist.Ground,
		})
	}
	deck.Elements = elems
	return deck, ports, nil
}

// ClockTreeOpts configures the balanced clock-tree parasitic net: a
// binary RC tree Levels deep (2^(Levels+1)−1 nodes), each branch an RSeg
// resistance with CSeg at its far end, the root plus NLeafPorts sample
// leaves marked as ports. Its elimination graph is a tree, so the
// factorization has zero fill — the topology for exercising raw node
// count (10⁶ and beyond) without a superlinear memory bill.
type ClockTreeOpts struct {
	Levels     int
	RSeg       float64
	CSeg       float64
	NLeafPorts int
}

// ClockTreePreset sizes a tree with at least the requested node count
// (2^(L+1)−1 ≥ nodes) at typical wire parasitics and 8 leaf ports.
func ClockTreePreset(nodes int) ClockTreeOpts {
	levels := 1
	for (1<<(levels+1))-1 < nodes {
		levels++
	}
	return ClockTreeOpts{Levels: levels, RSeg: 2.5, CSeg: 4e-15, NLeafPorts: 8}
}

// ClockTreeNodes returns the node count of a tree with the given depth.
func ClockTreeNodes(levels int) int { return (1 << (levels + 1)) - 1 }

// ClockTree builds the tree deck and returns it with the port node
// names (root first, then the sampled leaves). Nodes use 1-based heap
// indexing: node k has children 2k and 2k+1; node 1 is the root.
func ClockTree(o ClockTreeOpts) (*netlist.Deck, []string, error) {
	if o.Levels < 1 || o.Levels > 30 {
		return nil, nil, fmt.Errorf("netgen: clock tree depth %d out of range [1, 30]", o.Levels)
	}
	if o.RSeg <= 0 || o.CSeg < 0 {
		return nil, nil, fmt.Errorf("netgen: clock tree rseg %g must be positive, cseg %g non-negative", o.RSeg, o.CSeg)
	}
	nleaf := 1 << o.Levels
	if o.NLeafPorts < 1 || o.NLeafPorts > nleaf {
		return nil, nil, fmt.Errorf("netgen: %d leaf ports do not fit %d leaves", o.NLeafPorts, nleaf)
	}
	n := ClockTreeNodes(o.Levels)
	deck := &netlist.Deck{
		Title:   fmt.Sprintf("balanced clock tree depth %d (%d nodes)", o.Levels, n),
		Models:  map[string]*netlist.Model{},
		Subckts: map[string]*netlist.Subckt{},
	}
	names := make([]string, n+1) // heap-indexed, names[0] unused
	for k := 1; k <= n; k++ {
		names[k] = fmt.Sprintf("t%d", k)
	}
	elems := make([]netlist.Element, 0, 2*n+o.NLeafPorts)
	for k := 2; k <= n; k++ {
		elems = append(elems, &netlist.Resistor{
			Ident: "r" + names[k][1:], N1: names[k/2], N2: names[k], Value: o.RSeg,
		})
		elems = append(elems, &netlist.Capacitor{
			Ident: "c" + names[k][1:], N1: names[k], N2: netlist.Ground, Value: o.CSeg,
		})
	}
	// Root load: without it the root would be a bare junction.
	elems = append(elems, &netlist.Capacitor{Ident: "c1", N1: names[1], N2: netlist.Ground, Value: o.CSeg})
	ports := make([]string, 0, 1+o.NLeafPorts)
	ports = append(ports, names[1])
	elems = append(elems, &netlist.ISource{Ident: "ip0", N1: names[1], N2: netlist.Ground})
	firstLeaf := 1 << o.Levels
	seen := map[int]bool{}
	for k := 0; k < o.NLeafPorts; k++ {
		f := float64(k) / float64(o.NLeafPorts-1+boolInt(o.NLeafPorts == 1))
		leaf := firstLeaf + int(f*float64(nleaf-1))
		if seen[leaf] { // shallow trees collapse adjacent sample leaves
			continue
		}
		seen[leaf] = true
		ports = append(ports, names[leaf])
		elems = append(elems, &netlist.ISource{
			Ident: fmt.Sprintf("ip%d", k+1), N1: names[leaf], N2: netlist.Ground,
		})
	}
	deck.Elements = elems
	return deck, ports, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
