package netgen

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chol"
	"repro/internal/netlist"
	"repro/internal/order"
	"repro/internal/stamp"
)

func TestPowerGridStructure(t *testing.T) {
	o := PowerGridOpts{NX: 8, NY: 8, RSeg: 0.8, CNode: 60e-15, NPorts: 5}
	deck, ports, err := PowerGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	wantR := 7*8 + 8*7
	nr, nc, ni := 0, 0, 0
	for _, e := range deck.Elements {
		switch e.(type) {
		case *netlist.Resistor:
			nr++
		case *netlist.Capacitor:
			nc++
		case *netlist.ISource:
			ni++
		}
	}
	if nr != wantR || nc != 64 || ni != len(ports) {
		t.Fatalf("grid has %d R, %d C, %d probes; want %d R, 64 C, %d probes", nr, nc, ni, wantR, len(ports))
	}
	// The direct-construction deck must be a valid SPICE deck: write it
	// out and re-parse.
	deck2, err := netlist.ParseString(deck.String())
	if err != nil {
		t.Fatalf("power grid deck does not re-parse: %v", err)
	}
	if len(deck2.Elements) != len(deck.Elements) {
		t.Fatalf("round trip changed element count %d -> %d", len(deck.Elements), len(deck2.Elements))
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M != len(ports) || ex.Sys.M+ex.Sys.N != 64 {
		t.Fatalf("extraction: %d ports + %d internal, want %d ports over 64 nodes", ex.Sys.M, ex.Sys.N, len(ports))
	}
}

func TestClockTreeStructure(t *testing.T) {
	o := ClockTreeOpts{Levels: 4, RSeg: 2.5, CSeg: 4e-15, NLeafPorts: 4}
	deck, ports, err := ClockTree(o)
	if err != nil {
		t.Fatal(err)
	}
	n := ClockTreeNodes(4)
	if n != 31 {
		t.Fatalf("depth-4 tree has %d nodes, want 31", n)
	}
	if ports[0] != "t1" || len(ports) != 5 {
		t.Fatalf("ports = %v, want root + 4 leaves", ports)
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M+ex.Sys.N != n {
		t.Fatalf("extraction covers %d nodes, want %d", ex.Sys.M+ex.Sys.N, n)
	}
	if _, err := netlist.ParseString(deck.String()); err != nil {
		t.Fatalf("clock tree deck does not re-parse: %v", err)
	}
}

func TestScalePresetsReachRequestedSize(t *testing.T) {
	if o := PowerGridPreset(100_000); o.NX*o.NY < 100_000 {
		t.Fatalf("PowerGridPreset(1e5) = %dx%d, below target", o.NX, o.NY)
	}
	if o := ClockTreePreset(1_000_000); ClockTreeNodes(o.Levels) < 1_000_000 {
		t.Fatalf("ClockTreePreset(1e6) depth %d = %d nodes, below target", o.Levels, ClockTreeNodes(o.Levels))
	}
}

// TestMillionNodeClockTreeFactorizes is the nightly scale smoke
// (PACT_SCALE_SMOKE=1): generate the 10⁶-node clock-tree preset, extract
// it, and run the DAG-scheduled supernodal factorization through a
// pooled workspace twice — the second pass re-using every buffer — to
// prove the million-node path completes without exhausting memory.
func TestMillionNodeClockTreeFactorizes(t *testing.T) {
	if os.Getenv("PACT_SCALE_SMOKE") == "" {
		t.Skip("set PACT_SCALE_SMOKE=1 to run the million-node smoke")
	}
	start := time.Now()
	o := ClockTreePreset(1_000_000)
	deck, ports, err := ClockTree(o)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	sys := ex.Sys
	t.Logf("deck built+extracted in %v: %d ports, %d internal nodes", time.Since(start), sys.M, sys.N)
	if sys.M+sys.N < 1_000_000 {
		t.Fatalf("smoke deck has only %d nodes", sys.M+sys.N)
	}
	deck = nil
	runtime.GC()

	sym := order.Analyze(sys.D, order.MinimumDegree)
	dperm := sys.D.PermuteSym(sym.Perm)
	ss, err := chol.AnalyzeSuper(dperm, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := ss.NewWorkspace()
	for pass := 0; pass < 2; pass++ {
		f, err := ss.FactorizeOpt(dperm, chol.ScheduleDAG, ws)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if pass == 0 {
			t.Logf("factorized %d nodes in %v: %d supernodes, %d B factor (%d B scratch)",
				sys.N, time.Since(start), ss.NSuper(), f.Bytes(), f.ScratchBytes())
		}
	}
}
