package netgen

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/chol"
	"repro/internal/netlist"
	"repro/internal/order"
	"repro/internal/stamp"
)

func TestPowerGridStructure(t *testing.T) {
	o := PowerGridOpts{NX: 8, NY: 8, RSeg: 0.8, CNode: 60e-15, NPorts: 5}
	deck, ports, err := PowerGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	wantR := 7*8 + 8*7
	nr, nc, ni := 0, 0, 0
	for _, e := range deck.Elements {
		switch e.(type) {
		case *netlist.Resistor:
			nr++
		case *netlist.Capacitor:
			nc++
		case *netlist.ISource:
			ni++
		}
	}
	if nr != wantR || nc != 64 || ni != len(ports) {
		t.Fatalf("grid has %d R, %d C, %d probes; want %d R, 64 C, %d probes", nr, nc, ni, wantR, len(ports))
	}
	// The direct-construction deck must be a valid SPICE deck: write it
	// out and re-parse.
	deck2, err := netlist.ParseString(deck.String())
	if err != nil {
		t.Fatalf("power grid deck does not re-parse: %v", err)
	}
	if len(deck2.Elements) != len(deck.Elements) {
		t.Fatalf("round trip changed element count %d -> %d", len(deck.Elements), len(deck2.Elements))
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M != len(ports) || ex.Sys.M+ex.Sys.N != 64 {
		t.Fatalf("extraction: %d ports + %d internal, want %d ports over 64 nodes", ex.Sys.M, ex.Sys.N, len(ports))
	}
}

func TestClockTreeStructure(t *testing.T) {
	o := ClockTreeOpts{Levels: 4, RSeg: 2.5, CSeg: 4e-15, NLeafPorts: 4}
	deck, ports, err := ClockTree(o)
	if err != nil {
		t.Fatal(err)
	}
	n := ClockTreeNodes(4)
	if n != 31 {
		t.Fatalf("depth-4 tree has %d nodes, want 31", n)
	}
	if ports[0] != "t1" || len(ports) != 5 {
		t.Fatalf("ports = %v, want root + 4 leaves", ports)
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M+ex.Sys.N != n {
		t.Fatalf("extraction covers %d nodes, want %d", ex.Sys.M+ex.Sys.N, n)
	}
	if _, err := netlist.ParseString(deck.String()); err != nil {
		t.Fatalf("clock tree deck does not re-parse: %v", err)
	}
}

func TestScalePresetsReachRequestedSize(t *testing.T) {
	if o := PowerGridPreset(100_000); o.NX*o.NY < 100_000 {
		t.Fatalf("PowerGridPreset(1e5) = %dx%d, below target", o.NX, o.NY)
	}
	if o := ClockTreePreset(1_000_000); ClockTreeNodes(o.Levels) < 1_000_000 {
		t.Fatalf("ClockTreePreset(1e6) depth %d = %d nodes, below target", o.Levels, ClockTreeNodes(o.Levels))
	}
}

// scaleSmokeRecord is the machine-readable result of the million-node
// smoke: the front-end (stamp.Extract) and back-end (ordering through
// numeric factorization) wall times, split so a front-end regression is
// visible on its own instead of hiding inside an aggregate total. The
// committed baseline lives at reports/scale-smoke.json; a fresh run
// whose extract time exceeds twice the committed row fails the smoke.
type scaleSmokeRecord struct {
	Nodes       int   `json:"nodes"`
	ExtractNs   int64 `json:"extract_ns"`
	OrderNs     int64 `json:"order_ns"`
	SymbolicNs  int64 `json:"symbolic_ns"`
	FactorizeNs int64 `json:"factorize_ns"`
}

// scaleSmokeBaseline is the committed baseline path, relative to this
// package.
const scaleSmokeBaseline = "../../reports/scale-smoke.json"

// TestMillionNodeClockTreeFactorizes is the nightly scale smoke
// (PACT_SCALE_SMOKE=1): generate the 10⁶-node clock-tree preset, extract
// it, and run the DAG-scheduled supernodal factorization through a
// pooled workspace twice — the second pass re-using every buffer — to
// prove the million-node path completes without exhausting memory. It
// records the extract/factorize wall-time split (PACT_SCALE_OUT=path
// writes it as JSON) and fails when extraction takes more than twice the
// committed baseline's extract row — the gate that keeps the front end
// keeping pace with the factorizer. The factor takes minutes of
// machine-dependent arithmetic so it is reported, not gated; extraction
// is memory-bandwidth bound and far more stable across runners.
func TestMillionNodeClockTreeFactorizes(t *testing.T) {
	if os.Getenv("PACT_SCALE_SMOKE") == "" {
		t.Skip("set PACT_SCALE_SMOKE=1 to run the million-node smoke")
	}
	start := time.Now()
	o := ClockTreePreset(1_000_000)
	deck, ports, err := ClockTree(o)
	if err != nil {
		t.Fatal(err)
	}
	tExtract := time.Now()
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	rec := scaleSmokeRecord{ExtractNs: time.Since(tExtract).Nanoseconds()}
	sys := ex.Sys
	rec.Nodes = sys.M + sys.N
	t.Logf("deck built+extracted in %v (extract %v = stamp %v + assemble %v): %d ports, %d internal nodes",
		time.Since(start), time.Duration(rec.ExtractNs),
		time.Duration(ex.StampNs), time.Duration(ex.AssembleNs), sys.M, sys.N)
	if rec.Nodes < 1_000_000 {
		t.Fatalf("smoke deck has only %d nodes", rec.Nodes)
	}
	deck = nil
	runtime.GC()

	sym := order.Analyze(sys.D, order.MinimumDegree)
	rec.OrderNs = sym.OrderNs
	rec.SymbolicNs = sym.SymbolicNs
	tFactor := time.Now()
	dperm := sys.D.PermuteSym(sym.Perm)
	ss, err := chol.AnalyzeSuper(dperm, sym, order.SupernodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := ss.NewWorkspace()
	for pass := 0; pass < 2; pass++ {
		f, err := ss.FactorizeOpt(dperm, chol.ScheduleDAG, ws)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if pass == 0 {
			rec.FactorizeNs = time.Since(tFactor).Nanoseconds()
			t.Logf("factorized %d nodes in %v (order %v, symbolic %v, factorize %v): %d supernodes, %d B factor (%d B scratch)",
				sys.N, time.Since(start), time.Duration(rec.OrderNs), time.Duration(rec.SymbolicNs),
				time.Duration(rec.FactorizeNs), ss.NSuper(), f.Bytes(), f.ScratchBytes())
		}
	}

	if out := os.Getenv("PACT_SCALE_OUT"); out != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}

	base, err := os.ReadFile(scaleSmokeBaseline)
	if err != nil {
		t.Logf("no committed baseline (%v); extract gate skipped", err)
		return
	}
	var want scaleSmokeRecord
	if err := json.Unmarshal(base, &want); err != nil {
		t.Fatalf("corrupt baseline %s: %v", scaleSmokeBaseline, err)
	}
	if want.ExtractNs > 0 && rec.ExtractNs > 2*want.ExtractNs {
		t.Fatalf("extract regression: %v vs committed %v (>2x); the front end no longer keeps pace",
			time.Duration(rec.ExtractNs), time.Duration(want.ExtractNs))
	}
	t.Logf("extract gate: %v vs committed %v (limit 2x)",
		time.Duration(rec.ExtractNs), time.Duration(want.ExtractNs))
}
