package netgen

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// SupplyOpts configures the power-grid workload: the paper's introduction
// motivates PACT with "supply line resistance and capacitance, in
// combination with package inductance" causing supply variations during
// digital switching. The vdd net is an RX×RY on-chip RC grid fed through
// a package inductance; inverter banks at tap points switch
// simultaneously and draw current through the grid.
type SupplyOpts struct {
	RX, RY int     // grid nodes per axis
	RGrid  float64 // grid segment resistance (Ω)
	CDecap float64 // decoupling capacitance per grid node (F)
	LPkg   float64 // package inductance (H)
	RPkg   float64 // package series resistance (Ω)
	Taps   int     // switching-gate attachment points
	Banks  int     // inverters per tap
}

// DefaultSupplyOpts is an example-scale power grid.
func DefaultSupplyOpts() SupplyOpts {
	return SupplyOpts{
		RX: 8, RY: 8,
		RGrid:  1.5,
		CDecap: 150e-15,
		LPkg:   2e-9,
		RPkg:   0.1,
		Taps:   6,
		Banks:  4,
	}
}

// SupplyInfo reports the generated node names.
type SupplyInfo struct {
	// Pin is the grid node fed by the package (port).
	Pin string
	// Taps are the grid nodes loaded by switching gates (ports).
	Taps []string
	// Far is the tap farthest from the pin, where droop is worst.
	Far string
}

// Supply builds the power-grid deck. Node g<x>_<y> is the grid; the
// package connects vddext -> (RPkg, LPkg) -> the pin corner g0_0. The
// switching banks share one clock and discharge load capacitors from
// their local supply tap, reproducing simultaneous-switching noise.
func Supply(o SupplyOpts) (*netlist.Deck, *SupplyInfo, error) {
	if o.RX < 2 || o.RY < 2 || o.Taps < 1 {
		return nil, nil, fmt.Errorf("netgen: supply grid needs at least 2x2 nodes and one tap")
	}
	gn := func(x, y int) string { return fmt.Sprintf("g%d_%d", x, y) }
	var b strings.Builder
	fmt.Fprintln(&b, "on-chip power grid with package inductance (intro workload)")
	b.WriteString(mosModels)
	fmt.Fprintln(&b, "vdd vddext 0 dc 5")
	fmt.Fprintf(&b, "rpkg vddext vddpin %g\n", o.RPkg)
	fmt.Fprintf(&b, "lpkg vddpin %s %g\n", gn(0, 0), o.LPkg)
	fmt.Fprintln(&b, "vclk clk 0 dc 0 pulse(0 5 1n 0.1n 0.1n 4n 10n)")
	// Grid resistors and decap.
	re, ce := 0, 0
	for y := 0; y < o.RY; y++ {
		for x := 0; x < o.RX; x++ {
			if x+1 < o.RX {
				re++
				fmt.Fprintf(&b, "rg%d %s %s %g\n", re, gn(x, y), gn(x+1, y), o.RGrid)
			}
			if y+1 < o.RY {
				re++
				fmt.Fprintf(&b, "rg%d %s %s %g\n", re, gn(x, y), gn(x, y+1), o.RGrid)
			}
			ce++
			fmt.Fprintf(&b, "cg%d %s 0 %g\n", ce, gn(x, y), o.CDecap)
		}
	}
	// Taps spread along the grid diagonal, biased away from the pin.
	info := &SupplyInfo{Pin: gn(0, 0)}
	for k := 0; k < o.Taps; k++ {
		f := float64(k+1) / float64(o.Taps)
		x := int(f * float64(o.RX-1))
		y := int(f * float64(o.RY-1))
		tap := gn(x, y)
		info.Taps = append(info.Taps, tap)
		info.Far = tap
		for bk := 0; bk < o.Banks; bk++ {
			out := fmt.Sprintf("t%d_o%d", k, bk)
			fmt.Fprintf(&b, "mpt%d_%d %s clk %s %s pch w=24u l=1u\n", k, bk, out, tap, tap)
			fmt.Fprintf(&b, "mnt%d_%d %s clk 0 0 nch w=12u l=1u\n", k, bk, out)
			fmt.Fprintf(&b, "clt%d_%d %s 0 120f\n", k, bk, out)
		}
	}
	fmt.Fprintln(&b, ".end")
	deck, err := netlist.ParseString(b.String())
	if err != nil {
		return nil, nil, fmt.Errorf("netgen: supply deck: %w", err)
	}
	return deck, info, nil
}
