package netgen

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// WideBandOpts configures the wide-band many-port workload: an NX×NY RC
// grid whose segment resistances grade exponentially along x and whose
// node capacitances grade along y, spreading the network time constants
// over GradeDecades decades — the workload single-expansion-point
// reduction struggles with (PACT matches moments at s = 0 only) and the
// multi-point mode exists for. A PX×PY subgrid of nodes is marked as
// ports, so port count scales quadratically into the hundreds.
type WideBandOpts struct {
	NX, NY int
	PX, PY int
	// RSeg is the segment resistance at the low-resistance edge (x = 0);
	// segments at x = NX−1 are 10^GradeDecades times larger.
	RSeg float64
	// CNode is the node capacitance at y = 0, graded the same way in y.
	CNode float64
	// GradeDecades is the exponential spread applied to each axis
	// (default behavior of the preset: 2 decades, ~4 decades of time
	// constant spread corner to corner).
	GradeDecades float64
}

// WideBandPreset sizes the workload for at least the requested port
// count: the port subgrid is the smallest square holding them and the
// grid adds a 4-node margin per side, at typical wire parasitics and a
// 2-decade grade. WideBandPreset(256) is the 16×16-port, 24×24-node
// bench of the experiments tables.
func WideBandPreset(ports int) WideBandOpts {
	p := 1
	for p*p < ports {
		p++
	}
	return WideBandOpts{
		NX: p + 8, NY: p + 8,
		PX: p, PY: p,
		RSeg: 0.8, CNode: 60e-15, GradeDecades: 2,
	}
}

// WideBandNodes returns the node count of the workload.
func WideBandNodes(o WideBandOpts) int { return o.NX * o.NY }

// WideBand builds the graded grid deck and returns it with the port node
// names (row-major over the port subgrid). Nodes are named w<x>_<y>;
// ports are spread evenly over the interior so every cluster of the
// port-clustered reduction sees a distinct electrical neighborhood.
func WideBand(o WideBandOpts) (*netlist.Deck, []string, error) {
	if o.NX < 2 || o.NY < 2 {
		return nil, nil, fmt.Errorf("netgen: wideband grid needs at least 2x2 nodes, got %dx%d", o.NX, o.NY)
	}
	if o.PX < 1 || o.PY < 1 || o.PX > o.NX || o.PY > o.NY {
		return nil, nil, fmt.Errorf("netgen: %dx%d port subgrid does not fit a %dx%d grid", o.PX, o.PY, o.NX, o.NY)
	}
	if o.RSeg <= 0 || o.CNode <= 0 {
		return nil, nil, fmt.Errorf("netgen: wideband rseg %g and cnode %g must be positive", o.RSeg, o.CNode)
	}
	if o.GradeDecades < 0 || o.GradeDecades > 6 {
		return nil, nil, fmt.Errorf("netgen: wideband grade %g decades out of range [0, 6]", o.GradeDecades)
	}
	deck := &netlist.Deck{
		Title:   fmt.Sprintf("wide-band graded grid %dx%d, %dx%d ports", o.NX, o.NY, o.PX, o.PY),
		Models:  map[string]*netlist.Model{},
		Subckts: map[string]*netlist.Subckt{},
	}
	names := make([]string, o.NX*o.NY)
	for y := 0; y < o.NY; y++ {
		for x := 0; x < o.NX; x++ {
			names[y*o.NX+x] = fmt.Sprintf("w%d_%d", x, y)
		}
	}
	// grade(t) spans [1, 10^GradeDecades] as t runs over [0, 1].
	gradeX := func(x float64) float64 {
		return math.Pow(10, o.GradeDecades*x/float64(o.NX-1))
	}
	gradeY := func(y float64) float64 {
		return math.Pow(10, o.GradeDecades*y/float64(o.NY-1))
	}
	nres := (o.NX-1)*o.NY + o.NX*(o.NY-1)
	elems := make([]netlist.Element, 0, nres+o.NX*o.NY+o.PX*o.PY)
	re := 0
	for y := 0; y < o.NY; y++ {
		for x := 0; x < o.NX; x++ {
			n := names[y*o.NX+x]
			if x+1 < o.NX {
				re++
				elems = append(elems, &netlist.Resistor{
					Ident: fmt.Sprintf("rw%d", re), N1: n, N2: names[y*o.NX+x+1],
					Value: o.RSeg * gradeX(float64(x)+0.5),
				})
			}
			if y+1 < o.NY {
				re++
				elems = append(elems, &netlist.Resistor{
					Ident: fmt.Sprintf("rw%d", re), N1: n, N2: names[(y+1)*o.NX+x],
					Value: o.RSeg * gradeX(float64(x)),
				})
			}
			elems = append(elems, &netlist.Capacitor{
				Ident: "c" + n, N1: n, N2: netlist.Ground,
				Value: o.CNode * gradeY(float64(y)),
			})
		}
	}
	// Port subgrid, spread evenly over the grid interior, row-major so
	// the port order (and everything keyed on it downstream: clustering,
	// basis layout, cache keys) is deterministic.
	ports := make([]string, 0, o.PX*o.PY)
	k := 0
	for py := 0; py < o.PY; py++ {
		for px := 0; px < o.PX; px++ {
			x := (px*(o.NX-1) + (o.PX-1)/2) / max(1, o.PX-1+boolInt(o.PX == 1))
			y := (py*(o.NY-1) + (o.PY-1)/2) / max(1, o.PY-1+boolInt(o.PY == 1))
			tap := names[y*o.NX+x]
			ports = append(ports, tap)
			elems = append(elems, &netlist.ISource{
				Ident: fmt.Sprintf("ip%d", k), N1: tap, N2: netlist.Ground,
			})
			k++
		}
	}
	deck.Elements = elems
	return deck, ports, nil
}
