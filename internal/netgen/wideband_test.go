package netgen

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/stamp"
)

func TestWideBandStructure(t *testing.T) {
	o := WideBandOpts{NX: 9, NY: 9, PX: 3, PY: 3, RSeg: 0.8, CNode: 60e-15, GradeDecades: 2}
	deck, ports, err := WideBand(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 9 {
		t.Fatalf("got %d ports, want 9", len(ports))
	}
	wantR := 8*9 + 9*8
	nr, nc, ni := 0, 0, 0
	var rmin, rmax float64
	for _, e := range deck.Elements {
		switch el := e.(type) {
		case *netlist.Resistor:
			nr++
			if rmin == 0 || el.Value < rmin {
				rmin = el.Value
			}
			if el.Value > rmax {
				rmax = el.Value
			}
		case *netlist.Capacitor:
			nc++
		case *netlist.ISource:
			ni++
		}
	}
	if nr != wantR || nc != 81 || ni != 9 {
		t.Fatalf("deck has %d R, %d C, %d probes; want %d R, 81 C, 9 probes", nr, nc, ni, wantR)
	}
	// The grade must actually spread the parts by ~GradeDecades decades.
	if spread := rmax / rmin; spread < 50 || spread > 200 {
		t.Fatalf("resistance spread %g, want ~10^2", spread)
	}
	deck2, err := netlist.ParseString(deck.String())
	if err != nil {
		t.Fatalf("wideband deck does not re-parse: %v", err)
	}
	if len(deck2.Elements) != len(deck.Elements) {
		t.Fatalf("round trip changed element count %d -> %d", len(deck.Elements), len(deck2.Elements))
	}
	ex, err := stamp.Extract(deck, ports...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Sys.M != 9 || ex.Sys.M+ex.Sys.N != 81 {
		t.Fatalf("extraction: %d ports + %d internal, want 9 ports over 81 nodes", ex.Sys.M, ex.Sys.N)
	}
}

func TestWideBandPresetSizes(t *testing.T) {
	o := WideBandPreset(256)
	if o.PX != 16 || o.PY != 16 || o.NX != 24 || o.NY != 24 {
		t.Fatalf("preset(256) = %+v, want 16x16 ports on a 24x24 grid", o)
	}
	if WideBandNodes(o) != 576 {
		t.Fatalf("preset(256) nodes = %d, want 576", WideBandNodes(o))
	}
	deck, ports, err := WideBand(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 256 {
		t.Fatalf("preset(256) marked %d ports, want 256", len(ports))
	}
	// Port taps must be distinct nodes.
	seen := map[string]bool{}
	for _, p := range ports {
		if seen[p] {
			t.Fatalf("port tap %s marked twice", p)
		}
		seen[p] = true
	}
	if len(deck.Elements) == 0 {
		t.Fatal("empty deck")
	}
	// Degenerate preset: a single port still fits.
	if o := WideBandPreset(1); o.PX != 1 || o.PY != 1 {
		t.Fatalf("preset(1) = %+v, want a 1x1 port subgrid", o)
	}
	if _, ports, err := WideBand(WideBandPreset(1)); err != nil || len(ports) != 1 {
		t.Fatalf("preset(1) build: %v, %d ports", err, len(ports))
	}
}

func TestWideBandValidation(t *testing.T) {
	bad := []WideBandOpts{
		{NX: 1, NY: 9, PX: 1, PY: 1, RSeg: 1, CNode: 1},
		{NX: 9, NY: 9, PX: 10, PY: 1, RSeg: 1, CNode: 1},
		{NX: 9, NY: 9, PX: 2, PY: 2, RSeg: 0, CNode: 1},
		{NX: 9, NY: 9, PX: 2, PY: 2, RSeg: 1, CNode: 1, GradeDecades: 7},
	}
	for i, o := range bad {
		if _, _, err := WideBand(o); err == nil {
			t.Fatalf("case %d: %+v must be rejected", i, o)
		}
	}
}
