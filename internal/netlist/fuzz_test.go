package netlist

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse: arbitrary text must parse or error, never panic, and any
// successfully parsed deck must survive a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("title\nr1 a b 1k\n.end\n")
	f.Add(sampleDeck)
	f.Add("t\n.subckt s a\nr1 a 0 1\n.ends\nx1 n s\nv1 n 0 dc 1\n.end\n")
	f.Add("t\nv1 a 0 dc 0 pulse(0 5 1n 0.1n 0.1n 4n 10n)\n.end\n")
	f.Add("t\n+ broken\n")
	f.Add("t\nl1 a 0 1u\nm1 a b c d mod w=1u l=1u\n.model mod nmos\n.end\n")
	f.Fuzz(func(t *testing.T, input string) {
		deck, err := ParseString(input)
		if err != nil {
			return
		}
		out := deck.String()
		deck2, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip failed: %v\nfirst output:\n%s", err, out)
		}
		if len(deck2.Elements) != len(deck.Elements) {
			t.Fatalf("round trip changed element count %d -> %d\n%s", len(deck.Elements), len(deck2.Elements), out)
		}
	})
}

// FuzzParseValue: numeric token parsing must never panic and must accept
// its own formatted output.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1k", "-2.5n", "1e-3", "10kohm", "meg", "..", "1e", "5meg"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		v, err := ParseValue(tok)
		if err != nil {
			return
		}
		s := FormatValue(v)
		v2, err := ParseValue(s)
		if err != nil {
			t.Fatalf("FormatValue(%v) = %q does not re-parse: %v", v, s, err)
		}
		if v2 != v {
			t.Fatalf("round trip %q -> %v -> %q -> %v is not exact", tok, v, s, v2)
		}
	})
}

// FuzzTokenize guards the card tokenizer against pathological input.
func FuzzTokenize(f *testing.F) {
	f.Add("v1 a 0 pulse(0 5, 1n)")
	f.Add("((((")
	f.Fuzz(func(t *testing.T, card string) {
		toks := tokenize(card)
		for _, tk := range toks {
			if strings.ContainsAny(tk, " \t") {
				t.Fatalf("token %q contains whitespace", tk)
			}
		}
	})
}

// FuzzFormatValue: every finite float must format to a token that
// ParseValue accepts and that recovers the value bit-exactly.
func FuzzFormatValue(f *testing.F) {
	for _, v := range []float64{0, 630, 30e-15, 1.35e-12, -2.5e-9, 5e6, 1e-3, -1, 2.2250738585072014e-308, 1.7976931348623157e308} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip("only finite values have a SPICE representation")
		}
		s := FormatValue(v)
		if strings.ContainsAny(s, " \t\n(),") {
			t.Fatalf("FormatValue(%v) = %q contains separator characters", v, s)
		}
		v2, err := ParseValue(s)
		if err != nil {
			t.Fatalf("FormatValue(%v) = %q does not parse: %v", v, s, err)
		}
		if v == 0 {
			if v2 != 0 {
				t.Fatalf("FormatValue(0) = %q parsed back as %v", s, v2)
			}
			return
		}
		if v2 != v {
			t.Fatalf("round trip %v -> %q -> %v is not exact", v, s, v2)
		}
	})
}

// FuzzWaveform drives the source-card waveform pipeline: arbitrary
// waveform specifications must parse or error (never panic), evaluate
// without panicking, and survive a Card() round trip with identical
// sample values.
func FuzzWaveform(f *testing.F) {
	f.Add("pulse(0 5 1n 0.1n 0.1n 4n 10n)")
	f.Add("pulse(0 5)")
	f.Add("sin(0 1 1meg)")
	f.Add("sin(2.5 2.5 50meg 1n 1e6)")
	f.Add("pwl(0 0 1n 5 2n 5 3n 0)")
	f.Add("pwl(0 0 0 5)")
	f.Add("pulse(0 5 -1n -2 3 4")
	f.Add("sin(1 2)")
	f.Add("pwl(1 2 3)")
	// Regression: ".1n" parses one ulp above float64 1e-10, and the old
	// ten-digit FormatValue rendered it "100p" — moving a zero-rise edge
	// across the 1e-10 sample point. FormatValue is exact now.
	f.Add("pulse 0 1 .1n 0 10")
	f.Fuzz(func(t *testing.T, spec string) {
		if strings.ContainsAny(spec, "\n\r") {
			t.Skip("a spec cannot span cards")
		}
		deck, err := ParseString("fuzz waveform\nv1 a 0 dc 0 " + spec + "\n.end\n")
		if err != nil {
			return
		}
		var wave Waveform
		for _, e := range deck.Elements {
			if v, ok := e.(*VSource); ok {
				wave = v.Wave
			}
		}
		if wave == nil {
			return
		}
		samples := []float64{0, 1e-10, 1e-9, 2.5e-9, 1e-6, 1}
		for _, ts := range samples {
			wave.At(ts) // must not panic, whatever the parameters
		}
		card := wave.Card()
		deck2, err := ParseString("fuzz waveform\nv1 a 0 dc 0 " + card + "\n.end\n")
		if err != nil {
			t.Fatalf("Card() = %q does not re-parse: %v", card, err)
		}
		var wave2 Waveform
		for _, e := range deck2.Elements {
			if v, ok := e.(*VSource); ok {
				wave2 = v.Wave
			}
		}
		if wave2 == nil {
			t.Fatalf("Card() = %q lost the waveform on re-parse", card)
		}
		for _, ts := range samples {
			a, b := wave.At(ts), wave2.At(ts)
			if math.IsNaN(a) && math.IsNaN(b) {
				continue
			}
			diff := a - b
			scale := math.Abs(a) + math.Abs(b) + 1
			if diff/scale < -1e-6 || diff/scale > 1e-6 {
				t.Fatalf("At(%g) changed across Card round trip: %v vs %v (card %q)", ts, a, b, card)
			}
		}
	})
}
