package netlist

import (
	"strings"
	"testing"
)

// FuzzParse: arbitrary text must parse or error, never panic, and any
// successfully parsed deck must survive a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("title\nr1 a b 1k\n.end\n")
	f.Add(sampleDeck)
	f.Add("t\n.subckt s a\nr1 a 0 1\n.ends\nx1 n s\nv1 n 0 dc 1\n.end\n")
	f.Add("t\nv1 a 0 dc 0 pulse(0 5 1n 0.1n 0.1n 4n 10n)\n.end\n")
	f.Add("t\n+ broken\n")
	f.Add("t\nl1 a 0 1u\nm1 a b c d mod w=1u l=1u\n.model mod nmos\n.end\n")
	f.Fuzz(func(t *testing.T, input string) {
		deck, err := ParseString(input)
		if err != nil {
			return
		}
		out := deck.String()
		deck2, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip failed: %v\nfirst output:\n%s", err, out)
		}
		if len(deck2.Elements) != len(deck.Elements) {
			t.Fatalf("round trip changed element count %d -> %d\n%s", len(deck.Elements), len(deck2.Elements), out)
		}
	})
}

// FuzzParseValue: numeric token parsing must never panic and must accept
// its own formatted output.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1k", "-2.5n", "1e-3", "10kohm", "meg", "..", "1e", "5meg"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		v, err := ParseValue(tok)
		if err != nil {
			return
		}
		s := FormatValue(v)
		v2, err := ParseValue(s)
		if err != nil {
			t.Fatalf("FormatValue(%v) = %q does not re-parse: %v", v, s, err)
		}
		if v != 0 {
			rel := (v2 - v) / v
			if rel < -1e-6 || rel > 1e-6 {
				t.Fatalf("round trip %q -> %v -> %q -> %v", tok, v, s, v2)
			}
		}
	})
}

// FuzzTokenize guards the card tokenizer against pathological input.
func FuzzTokenize(f *testing.F) {
	f.Add("v1 a 0 pulse(0 5, 1n)")
	f.Add("((((")
	f.Fuzz(func(t *testing.T, card string) {
		toks := tokenize(card)
		for _, tk := range toks {
			if strings.ContainsAny(tk, " \t") {
				t.Fatalf("token %q contains whitespace", tk)
			}
		}
	})
}
