// Package netlist models SPICE decks: parsing, in-memory representation
// and writing of the element classes the RCFIT flow needs — resistors,
// capacitors, inductors, junction diodes, independent sources with
// DC/PULSE/SIN/PWL waveforms, level-1 MOSFETs with .MODEL cards,
// subcircuits (flattened on parse), and the analysis control cards. The parser
// accepts the usual SPICE conventions: leading-letter element typing,
// '*' comments, '+' continuation lines, case insensitivity, and
// engineering unit suffixes (f p n u m k meg g t, plus 'mil').
package netlist

import (
	"fmt"
	"strings"
)

// Ground is the canonical ground node name; "gnd" is normalized to it.
const Ground = "0"

// Deck is a parsed SPICE netlist. Subcircuit instances are flattened by
// Parse, so Elements holds only primitive elements; the definitions stay
// available in Subckts for inspection but are not re-emitted by Write.
type Deck struct {
	Title    string
	Elements []Element
	Models   map[string]*Model
	Subckts  map[string]*Subckt
	// Controls holds non-element cards (.tran, .ac, .print, ...) verbatim
	// (lowercased, continuations joined) so a rewritten deck keeps its
	// analysis setup.
	Controls []string
	// ParseNs is the wall time Parse spent building this deck (zero for
	// decks constructed programmatically); pact.ReduceDeck folds it into
	// the per-stage reduction accounting.
	ParseNs int64
}

// Element is any circuit element.
type Element interface {
	// Name returns the element name, e.g. "r12" (lowercase).
	Name() string
	// Nodes returns the element's node names in declaration order.
	Nodes() []string
	// Card renders the element as a SPICE card.
	Card() string
}

// Resistor is a two-terminal resistor.
type Resistor struct {
	Ident  string
	N1, N2 string
	Value  float64 // ohms
}

func (r *Resistor) Name() string    { return r.Ident }
func (r *Resistor) Nodes() []string { return []string{r.N1, r.N2} }
func (r *Resistor) Card() string {
	return fmt.Sprintf("%s %s %s %s", r.Ident, r.N1, r.N2, FormatValue(r.Value))
}

// Capacitor is a two-terminal capacitor.
type Capacitor struct {
	Ident  string
	N1, N2 string
	Value  float64 // farads
}

func (c *Capacitor) Name() string    { return c.Ident }
func (c *Capacitor) Nodes() []string { return []string{c.N1, c.N2} }
func (c *Capacitor) Card() string {
	return fmt.Sprintf("%s %s %s %s", c.Ident, c.N1, c.N2, FormatValue(c.Value))
}

// Diode is a two-terminal junction diode referencing a .model card of
// type "d" (parameters: is, n, cj0).
type Diode struct {
	Ident     string
	N1, N2    string // anode, cathode
	ModelName string
}

func (d *Diode) Name() string    { return d.Ident }
func (d *Diode) Nodes() []string { return []string{d.N1, d.N2} }
func (d *Diode) Card() string {
	return fmt.Sprintf("%s %s %s %s", d.Ident, d.N1, d.N2, d.ModelName)
}

// Inductor is a two-terminal inductor. Inductors are simulated (the
// intro's package-inductance scenarios) but excluded from PACT reduction,
// which is defined for RC networks; their nodes therefore become ports of
// any RC network they touch.
type Inductor struct {
	Ident  string
	N1, N2 string
	Value  float64 // henries
}

func (l *Inductor) Name() string    { return l.Ident }
func (l *Inductor) Nodes() []string { return []string{l.N1, l.N2} }
func (l *Inductor) Card() string {
	return fmt.Sprintf("%s %s %s %s", l.Ident, l.N1, l.N2, FormatValue(l.Value))
}

// VSource is an independent voltage source.
type VSource struct {
	Ident  string
	N1, N2 string // positive, negative
	DC     float64
	ACMag  float64  // small-signal AC magnitude (0 when absent)
	Wave   Waveform // nil means pure DC
}

func (v *VSource) Name() string    { return v.Ident }
func (v *VSource) Nodes() []string { return []string{v.N1, v.N2} }
func (v *VSource) Card() string {
	s := fmt.Sprintf("%s %s %s dc %s", v.Ident, v.N1, v.N2, FormatValue(v.DC))
	if v.ACMag != 0 {
		s += fmt.Sprintf(" ac %s", FormatValue(v.ACMag))
	}
	if v.Wave != nil {
		s += " " + v.Wave.Card()
	}
	return s
}

// At returns the source value at time t (DC when no waveform).
func (v *VSource) At(t float64) float64 {
	if v.Wave == nil {
		return v.DC
	}
	return v.Wave.At(t)
}

// ISource is an independent current source (current flows from N1 through
// the source to N2).
type ISource struct {
	Ident  string
	N1, N2 string
	DC     float64
	ACMag  float64
	Wave   Waveform
}

func (i *ISource) Name() string    { return i.Ident }
func (i *ISource) Nodes() []string { return []string{i.N1, i.N2} }
func (i *ISource) Card() string {
	s := fmt.Sprintf("%s %s %s dc %s", i.Ident, i.N1, i.N2, FormatValue(i.DC))
	if i.ACMag != 0 {
		s += fmt.Sprintf(" ac %s", FormatValue(i.ACMag))
	}
	if i.Wave != nil {
		s += " " + i.Wave.Card()
	}
	return s
}

// At returns the source value at time t.
func (i *ISource) At(t float64) float64 {
	if i.Wave == nil {
		return i.DC
	}
	return i.Wave.At(t)
}

// MOSFET is a four-terminal MOSFET instance referencing a .MODEL card.
type MOSFET struct {
	Ident      string
	D, G, S, B string
	ModelName  string
	W, L       float64 // meters
}

func (m *MOSFET) Name() string    { return m.Ident }
func (m *MOSFET) Nodes() []string { return []string{m.D, m.G, m.S, m.B} }
func (m *MOSFET) Card() string {
	return fmt.Sprintf("%s %s %s %s %s %s w=%s l=%s",
		m.Ident, m.D, m.G, m.S, m.B, m.ModelName, FormatValue(m.W), FormatValue(m.L))
}

// Model is a .MODEL card. Type is "nmos" or "pmos"; Params holds the
// level-1 parameters (vto, kp, gamma, phi, lambda, cgso, cgdo, cbd, cbs,
// ...), all lowercase.
type Model struct {
	Ident  string
	Type   string
	Params map[string]float64
}

// Param returns a parameter with a default.
func (m *Model) Param(name string, def float64) float64 {
	if v, ok := m.Params[name]; ok {
		return v
	}
	return def
}

// Card renders the .model card.
func (m *Model) Card() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s %s", m.Ident, m.Type)
	// Deterministic order for reproducible output.
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, FormatValue(m.Params[k]))
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NodeNames returns all distinct node names in deck order of first
// appearance, excluding ground.
func (d *Deck) NodeNames() []string {
	seen := map[string]bool{Ground: true}
	var out []string
	for _, e := range d.Elements {
		for _, n := range e.Nodes() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// ElementsOfType returns the deck's elements matching the given leading
// letter ('r', 'c', 'v', 'i', 'm').
func (d *Deck) ElementsOfType(letter byte) []Element {
	var out []Element
	for _, e := range d.Elements {
		if e.Name()[0] == letter {
			out = append(out, e)
		}
	}
	return out
}
