package netlist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"100", 100},
		{"4.7k", 4.7e3},
		{"10kohm", 10e3},
		{"1.35pF", 1.35e-12},
		{"250", 250},
		{"5meg", 5e6},
		{"2MEG", 2e6},
		{"3g", 3e9},
		{"1t", 1e12},
		{"0.5u", 0.5e-6},
		{"15f", 15e-15},
		{"-2.5n", -2.5e-9},
		{"1e-3", 1e-3},
		{"1.5e3", 1.5e3},
		{"1e3k", 1e6},
		{"2m", 2e-3},
		{"1mil", 25.4e-6},
		{"3v", 3},
		{"+4", 4},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Note "1e" parses as 1 with the dangling 'e' treated as a unit word,
	// matching common SPICE leniency.
	for _, bad := range []string{"", "ohm", "k10", "--3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	f := func(mant float64, exp int) bool {
		e := exp%28 - 14
		v := mant * math.Pow(10, float64(e))
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			return false
		}
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v) <= 1e-5*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

const sampleDeck = `inverter pair with rc line
* comment line
Vdd vdd 0 DC 5
VIN in 0 dc 0 PULSE(0 5 1n 0.1n 0.1n 4n 10n)
M1 out in vdd vdd PCH W=20u L=1u
M2 out in 0 0 NCH W=10u L=1u
R1 out n1 2.5
C1 n1 0 13.5f
R2 n1 n2 2.5
+ $ trailing comment
C2 n2 GND 13.5f
.model NCH NMOS vto=0.7 kp=50u gamma=0.4
+ phi=0.65 lambda=0.02
.model PCH PMOS vto=-0.7 kp=20u
.tran 0.1n 20n
.print tran v(out)
.end
`

func TestParseDeck(t *testing.T) {
	deck, err := ParseString(sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	if deck.Title != "inverter pair with rc line" {
		t.Errorf("title = %q", deck.Title)
	}
	if len(deck.Elements) != 8 {
		t.Fatalf("parsed %d elements, want 8", len(deck.Elements))
	}
	if len(deck.Models) != 2 {
		t.Fatalf("parsed %d models, want 2", len(deck.Models))
	}
	if len(deck.Controls) != 2 {
		t.Fatalf("parsed %d control cards, want 2: %v", len(deck.Controls), deck.Controls)
	}

	vin := deck.Elements[1].(*VSource)
	if vin.Ident != "vin" || vin.N1 != "in" || vin.N2 != "0" {
		t.Errorf("vin parsed wrong: %+v", vin)
	}
	p, ok := vin.Wave.(*Pulse)
	if !ok {
		t.Fatalf("vin waveform = %T, want *Pulse", vin.Wave)
	}
	if p.V2 != 5 || p.TD != 1e-9 || p.PW != 4e-9 || p.PER != 10e-9 {
		t.Errorf("pulse = %+v", p)
	}

	m1 := deck.Elements[2].(*MOSFET)
	if m1.ModelName != "pch" || math.Abs(m1.W-20e-6) > 1e-12 || math.Abs(m1.L-1e-6) > 1e-12 {
		t.Errorf("m1 = %+v", m1)
	}
	// "GND" must normalize to "0".
	c2 := deck.Elements[7].(*Capacitor)
	if c2.N2 != Ground {
		t.Errorf("c2.N2 = %q, want ground", c2.N2)
	}
	// Continuation joined the model card.
	nch := deck.Models["nch"]
	if nch.Param("phi", 0) != 0.65 || nch.Param("lambda", 0) != 0.02 {
		t.Errorf("nch params = %v", nch.Params)
	}
	if nch.Param("missing", 42) != 42 {
		t.Error("Param default failed")
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	deck, err := ParseString(sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	out := deck.String()
	deck2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(deck2.Elements) != len(deck.Elements) || len(deck2.Models) != len(deck.Models) {
		t.Fatalf("round trip changed element counts: %d/%d elements", len(deck2.Elements), len(deck.Elements))
	}
	for i := range deck.Elements {
		a, b := deck.Elements[i], deck2.Elements[i]
		if a.Name() != b.Name() {
			t.Errorf("element %d name %q vs %q", i, a.Name(), b.Name())
		}
		an, bn := a.Nodes(), b.Nodes()
		for j := range an {
			if an[j] != bn[j] {
				t.Errorf("element %s node %d: %q vs %q", a.Name(), j, an[j], bn[j])
			}
		}
	}
	// Values survive the round trip.
	r1a := deck.Elements[4].(*Resistor)
	r1b := deck2.Elements[4].(*Resistor)
	if math.Abs(r1a.Value-r1b.Value) > 1e-9*r1a.Value {
		t.Errorf("resistor value %v vs %v", r1a.Value, r1b.Value)
	}
}

func TestParseSourceVariants(t *testing.T) {
	deck, err := ParseString(`sources
v1 a 0 5
v2 b 0 dc 3 ac 1
v3 c 0 sin(0 1 1meg)
i1 d 0 dc 1m pwl(0 0 1n 5m 2n 0)
v4 e 0 ac 2 90
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	v1 := deck.Elements[0].(*VSource)
	if v1.DC != 5 || v1.Wave != nil {
		t.Errorf("v1 = %+v", v1)
	}
	v2 := deck.Elements[1].(*VSource)
	if v2.DC != 3 || v2.ACMag != 1 {
		t.Errorf("v2 = %+v", v2)
	}
	v3 := deck.Elements[2].(*VSource)
	if s, ok := v3.Wave.(*Sin); !ok || s.Freq != 1e6 {
		t.Errorf("v3 wave = %+v", v3.Wave)
	}
	i1 := deck.Elements[3].(*ISource)
	w, ok := i1.Wave.(*PWL)
	if !ok || len(w.T) != 3 {
		t.Fatalf("i1 wave = %+v", i1.Wave)
	}
	if i1.At(0.5e-9) != 2.5e-3 {
		t.Errorf("pwl interpolation = %v, want 2.5m", i1.At(0.5e-9))
	}
	v4 := deck.Elements[4].(*VSource)
	if v4.ACMag != 2 {
		t.Errorf("v4 ac = %v", v4.ACMag)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"t\nr1 a b\n.end\n",            // short resistor
		"t\nx1 a b c sub\n.end\n",      // unsupported element
		"t\n+ continuation first\n",    // continuation with no card
		"t\nr1 a b 1k\nq1 a b c m\n",   // unsupported type q
		"t\n.model m1 diode is=1\n",    // unsupported model type
		"t\nv1 a 0 pulse(1\n.end\n",    // unbalanced paren
		"t\nm1 d g s b\n.end\n",        // missing model name
		"t\nv1 a 0 pwl(0 1 2)\n.end\n", // odd pwl pairs
		"t\nc1 a b 1x=\n.end\n",        // garbage value? (parses as 1) -- replaced below
	}
	bad = bad[:len(bad)-1]
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("deck %q parsed without error", s)
		}
	}
}

func TestWaveforms(t *testing.T) {
	p := &Pulse{V1: 0, V2: 5, TD: 1e-9, TR: 1e-10, TF: 1e-10, PW: 4e-9, PER: 10e-9}
	if p.At(0) != 0 {
		t.Error("pulse before delay")
	}
	if math.Abs(p.At(1.05e-9)-2.5) > 1e-9 {
		t.Errorf("pulse mid-rise = %v, want 2.5", p.At(1.05e-9))
	}
	if p.At(3e-9) != 5 {
		t.Error("pulse high")
	}
	if v := p.At(11.05e-9); math.Abs(v-2.5) > 1e-9 {
		t.Errorf("pulse periodic = %v, want 2.5", v)
	}
	s := &Sin{VO: 1, VA: 2, Freq: 1e6}
	if s.At(0) != 1 {
		t.Error("sin at t=0")
	}
	if v := s.At(0.25e-6); math.Abs(v-3) > 1e-9 {
		t.Errorf("sin peak = %v, want 3", v)
	}
	w := &PWL{T: []float64{0, 1, 2}, V: []float64{0, 10, 10}}
	if w.At(-1) != 0 || w.At(0.5) != 5 || w.At(3) != 10 {
		t.Error("pwl clamp/interp wrong")
	}
	var empty PWL
	if empty.At(1) != 0 {
		t.Error("empty pwl")
	}
}

func TestNodeNames(t *testing.T) {
	deck, err := ParseString(sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	names := deck.NodeNames()
	want := []string{"vdd", "in", "out", "n1", "n2"}
	if len(names) != len(want) {
		t.Fatalf("NodeNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("NodeNames = %v, want %v", names, want)
		}
	}
}

func TestElementsOfType(t *testing.T) {
	deck, err := ParseString(sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(deck.ElementsOfType('r')); n != 2 {
		t.Errorf("%d resistors, want 2", n)
	}
	if n := len(deck.ElementsOfType('m')); n != 2 {
		t.Errorf("%d mosfets, want 2", n)
	}
}

func TestWaveformCardsRoundTrip(t *testing.T) {
	waves := []Waveform{
		&Pulse{V1: 0, V2: 5, TD: 1e-9, TR: 1e-10, TF: 1e-10, PW: 4e-9, PER: 10e-9},
		&Sin{VO: 0, VA: 1, Freq: 2e6, TD: 1e-9, Theta: 1e3},
		&PWL{T: []float64{0, 1e-9, 5e-9}, V: []float64{0, 3, 0}},
	}
	for _, w := range waves {
		deck := "t\nv1 a 0 dc 0 " + w.Card() + "\n.end\n"
		parsed, err := ParseString(deck)
		if err != nil {
			t.Fatalf("%s: %v", w.Card(), err)
		}
		got := parsed.Elements[0].(*VSource).Wave
		for _, tt := range []float64{0, 0.3e-9, 1.2e-9, 4e-9, 7e-9} {
			if math.Abs(got.At(tt)-w.At(tt)) > 1e-6*(1+math.Abs(w.At(tt))) {
				t.Fatalf("%s at t=%g: %v vs %v", w.Card(), tt, got.At(tt), w.At(tt))
			}
		}
	}
}

func TestDeckStringContainsEnd(t *testing.T) {
	deck := &Deck{Title: "empty deck", Models: map[string]*Model{}}
	s := deck.String()
	if !strings.Contains(s, ".end") {
		t.Error("deck output missing .end")
	}
}

// TestParseNoPanics feeds semi-random garbage to the parser: it must
// return an error or a deck, never panic.
func TestParseNoPanics(t *testing.T) {
	pieces := []string{
		"r1 a b 1k", "c1 a 0", "v1", "m1 d g s b mod w= l=1u", ".model x nmos",
		".tran", "+", "* comment", "pulse(", ")", "v1 a 0 pwl(1", ".end",
		"r1 a b 1e99999", "i1 0 0 dc dc", "q", ".print", "0 0 0 0",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		b.WriteString("fuzz title\n")
		for i := 0; i < rng.Intn(12); i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte('\n')
		}
		_, _ = ParseString(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInductorCardRoundTrip(t *testing.T) {
	deck, err := ParseString("t\nl1 a b 2.2n\nv1 a 0 dc 1\nr1 b 0 1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	l := deck.Elements[0].(*Inductor)
	if l.N1 != "a" || l.N2 != "b" || math.Abs(l.Value-2.2e-9) > 1e-18 {
		t.Fatalf("inductor = %+v", l)
	}
	again, err := ParseString(deck.String())
	if err != nil {
		t.Fatal(err)
	}
	l2 := again.Elements[0].(*Inductor)
	if math.Abs(l2.Value-l.Value) > 1e-6*l.Value || l2.Name() != "l1" || len(l2.Nodes()) != 2 {
		t.Fatalf("round trip inductor = %+v", l2)
	}
	if _, err := ParseString("t\nl1 a b\n.end\n"); err == nil {
		t.Fatal("short inductor card accepted")
	}
}

func TestDiodeAndSourceAccessors(t *testing.T) {
	deck, err := ParseString(`accessors
d1 a k dmod
v1 a 0 dc 2 pulse(0 5 0 1p 1p 1n 2n)
i1 k 0 dc 1m
.model dmod d is=1e-14 n=1.2 cj0=2f
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	d := deck.Elements[0].(*Diode)
	if d.Name() != "d1" || len(d.Nodes()) != 2 || !strings.Contains(d.Card(), "dmod") {
		t.Fatalf("diode accessors: %q %v %q", d.Name(), d.Nodes(), d.Card())
	}
	v := deck.Elements[1].(*VSource)
	if v.At(0.5e-9) != 5 { // mid-pulse
		t.Fatalf("VSource.At = %v", v.At(0.5e-9))
	}
	i := deck.Elements[2].(*ISource)
	if i.At(123) != 1e-3 { // DC source: waveform-free At
		t.Fatalf("ISource.At = %v", i.At(123))
	}
	// Round trip keeps the diode.
	again, err := ParseString(deck.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := again.Elements[0].(*Diode); !ok {
		t.Fatal("diode lost in round trip")
	}
	if again.Models["dmod"].Param("n", 0) != 1.2 {
		t.Fatal("diode model params lost")
	}
}

func TestWriteHierarchicalDeck(t *testing.T) {
	// A deck constructed with explicit Subckts and an XInstance must
	// write hierarchically and re-parse to the same flat network.
	deck := &Deck{
		Title:  "handmade hierarchy",
		Models: map[string]*Model{},
		Subckts: map[string]*Subckt{
			"cell": {
				Ident: "cell",
				Ports: []string{"p", "q"},
				Elements: []Element{
					&Resistor{Ident: "r1", N1: "p", N2: "mid", Value: 100},
					&Capacitor{Ident: "c1", N1: "mid", N2: "q", Value: 1e-12},
				},
			},
			"unused": {Ident: "unused", Ports: []string{"z"}},
		},
		Elements: []Element{
			&VSource{Ident: "v1", N1: "a", N2: "0", DC: 1},
			&XInstance{Ident: "x1", NodeList: []string{"a", "0"}, SubcktRef: "cell"},
		},
	}
	text := deck.String()
	if !strings.Contains(text, ".subckt cell p q") || !strings.Contains(text, ".ends") {
		t.Fatalf("definition missing:\n%s", text)
	}
	if strings.Contains(text, "unused") {
		t.Fatalf("unreferenced subckt emitted:\n%s", text)
	}
	parsed, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	// Flattened: v1 + r1_x1 + c1_x1.
	if len(parsed.Elements) != 3 {
		t.Fatalf("flattened to %d elements:\n%s", len(parsed.Elements), text)
	}
}
