package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Parse reads a SPICE deck. Following SPICE convention the first line is
// the title; '*' lines are comments, '+' lines continue the previous
// card, and everything is case-insensitive. Parsing stops at .end (or
// EOF).
//
// Parsing streams: each card is dispatched into the deck as soon as its
// continuation lines end, so only the single pending card is buffered as
// text — a million-element deck costs the elements it declares, never a
// second copy of the file. The `.end` card terminates the scan at the
// line it appears on; whatever follows it in the stream is not read.
func Parse(r io.Reader) (*Deck, error) {
	t0 := time.Now()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	deck := &Deck{Models: map[string]*Model{}, Subckts: map[string]*Subckt{}}
	st := &parseState{deck: deck}
	lineNo := 0
	first := true
	pending := "" // the card being assembled, continuations joined
	done := false
	for !done && sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '$'); i >= 0 {
			line = line[:i]
		}
		if first {
			deck.Title = strings.TrimSpace(line)
			first = false
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed[0] == '*' {
			continue
		}
		if trimmed[0] == '+' {
			if pending == "" {
				return nil, fmt.Errorf("netlist: line %d: continuation with no previous card", lineNo)
			}
			pending += " " + strings.ToLower(strings.TrimSpace(trimmed[1:]))
			continue
		}
		// A new card begins: the pending one can no longer grow, so it
		// dispatches now.
		if pending != "" {
			if err := st.dispatch(pending); err != nil {
				return nil, err
			}
		}
		pending = strings.ToLower(trimmed)
		if pending == ".end" {
			done = true
		}
	}
	if !done {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("netlist: read: %w", err)
		}
		if pending != "" {
			if err := st.dispatch(pending); err != nil {
				return nil, err
			}
		}
	}
	if st.sub != nil {
		return nil, fmt.Errorf("netlist: .subckt %s not closed by .ends", st.sub.Ident)
	}
	if err := deck.flatten(); err != nil {
		return nil, err
	}
	deck.ParseNs = time.Since(t0).Nanoseconds()
	return deck, nil
}

// parseState carries the in-progress deck and the .subckt nesting state
// between streamed card dispatches.
type parseState struct {
	deck *Deck
	sub  *Subckt // non-nil while inside a .subckt body
}

// dispatch routes one complete card: subcircuit delimiters update the
// nesting state, everything else lands in the deck or the open subckt.
func (st *parseState) dispatch(card string) error {
	fields := strings.Fields(card)
	if len(fields) > 0 {
		switch fields[0] {
		case ".subckt":
			if st.sub != nil {
				return fmt.Errorf("netlist: nested .subckt definition in %q", card)
			}
			if len(fields) < 2 {
				return fmt.Errorf("netlist: %q needs a name", card)
			}
			st.sub = &Subckt{Ident: fields[1]}
			for _, p := range fields[2:] {
				st.sub.Ports = append(st.sub.Ports, norm(p))
			}
			return nil
		case ".ends":
			if st.sub == nil {
				return fmt.Errorf("netlist: .ends without .subckt")
			}
			if _, dup := st.deck.Subckts[st.sub.Ident]; dup {
				return fmt.Errorf("netlist: duplicate subcircuit %q", st.sub.Ident)
			}
			st.deck.Subckts[st.sub.Ident] = st.sub
			st.sub = nil
			return nil
		}
	}
	target := &st.deck.Elements
	if st.sub != nil {
		target = &st.sub.Elements
	}
	return parseCard(st.deck, target, card)
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

func parseCard(deck *Deck, target *[]Element, card string) error {
	toks := tokenize(card)
	if len(toks) == 0 {
		return nil
	}
	name := toks[0]
	switch name[0] {
	case '.':
		return parseDot(deck, name, toks[1:], card)
	case 'r':
		if len(toks) < 4 {
			return fmt.Errorf("netlist: resistor card %q needs 4 fields", card)
		}
		v, err := ParseValue(toks[3])
		if err != nil {
			return fmt.Errorf("netlist: resistor %s: %w", name, err)
		}
		*target = append(*target, &Resistor{Ident: name, N1: norm(toks[1]), N2: norm(toks[2]), Value: v})
	case 'c':
		if len(toks) < 4 {
			return fmt.Errorf("netlist: capacitor card %q needs 4 fields", card)
		}
		v, err := ParseValue(toks[3])
		if err != nil {
			return fmt.Errorf("netlist: capacitor %s: %w", name, err)
		}
		*target = append(*target, &Capacitor{Ident: name, N1: norm(toks[1]), N2: norm(toks[2]), Value: v})
	case 'd':
		if len(toks) < 4 {
			return fmt.Errorf("netlist: diode card %q needs anode cathode model", card)
		}
		*target = append(*target, &Diode{Ident: name, N1: norm(toks[1]), N2: norm(toks[2]), ModelName: toks[3]})
	case 'l':
		if len(toks) < 4 {
			return fmt.Errorf("netlist: inductor card %q needs 4 fields", card)
		}
		v, err := ParseValue(toks[3])
		if err != nil {
			return fmt.Errorf("netlist: inductor %s: %w", name, err)
		}
		*target = append(*target, &Inductor{Ident: name, N1: norm(toks[1]), N2: norm(toks[2]), Value: v})
	case 'v':
		if len(toks) < 3 {
			return fmt.Errorf("netlist: source card %q needs two nodes", card)
		}
		src := &VSource{Ident: name, N1: norm(toks[1]), N2: norm(toks[2])}
		wave, dc, ac, err := parseSource(toks[3:])
		if err != nil {
			return fmt.Errorf("netlist: source %s: %w", name, err)
		}
		src.DC, src.ACMag, src.Wave = dc, ac, wave
		*target = append(*target, src)
	case 'i':
		if len(toks) < 3 {
			return fmt.Errorf("netlist: source card %q needs two nodes", card)
		}
		src := &ISource{Ident: name, N1: norm(toks[1]), N2: norm(toks[2])}
		wave, dc, ac, err := parseSource(toks[3:])
		if err != nil {
			return fmt.Errorf("netlist: source %s: %w", name, err)
		}
		src.DC, src.ACMag, src.Wave = dc, ac, wave
		*target = append(*target, src)
	case 'x':
		if len(toks) < 3 {
			return fmt.Errorf("netlist: instance card %q needs nodes and a subcircuit name", card)
		}
		x := &XInstance{Ident: name, SubcktRef: toks[len(toks)-1]}
		for _, n := range toks[1 : len(toks)-1] {
			x.NodeList = append(x.NodeList, norm(n))
		}
		*target = append(*target, x)
	case 'm':
		if len(toks) < 6 {
			return fmt.Errorf("netlist: mosfet card %q needs d g s b model", card)
		}
		mos := &MOSFET{
			Ident: name,
			D:     norm(toks[1]), G: norm(toks[2]), S: norm(toks[3]), B: norm(toks[4]),
			ModelName: toks[5],
			W:         10e-6, L: 1e-6,
		}
		for _, t := range toks[6:] {
			k, v, ok := strings.Cut(t, "=")
			if !ok {
				return fmt.Errorf("netlist: mosfet %s: expected key=value, got %q", name, t)
			}
			val, err := ParseValue(v)
			if err != nil {
				return fmt.Errorf("netlist: mosfet %s %s: %w", name, k, err)
			}
			switch k {
			case "w":
				mos.W = val
			case "l":
				mos.L = val
			default:
				// Ignore unsupported instance parameters (ad, as, ...).
			}
		}
		*target = append(*target, mos)
	default:
		return fmt.Errorf("netlist: unsupported element type %q in card %q", name[:1], card)
	}
	return nil
}

func parseDot(deck *Deck, name string, args []string, card string) error {
	switch name {
	case ".model":
		if len(args) < 2 {
			return fmt.Errorf("netlist: %q needs name and type", card)
		}
		m := &Model{Ident: args[0], Type: args[1], Params: map[string]float64{}}
		if m.Type != "nmos" && m.Type != "pmos" && m.Type != "d" {
			return fmt.Errorf("netlist: unsupported model type %q (nmos/pmos/d only)", m.Type)
		}
		for _, t := range args[2:] {
			k, v, ok := strings.Cut(t, "=")
			if !ok {
				continue // tokens like "level" handled as key=value only
			}
			val, err := ParseValue(v)
			if err != nil {
				return fmt.Errorf("netlist: model %s param %s: %w", m.Ident, k, err)
			}
			m.Params[k] = val
		}
		deck.Models[m.Ident] = m
	case ".end":
		// handled by caller
	default:
		deck.Controls = append(deck.Controls, card)
	}
	return nil
}

// parseSource parses the value fields of a V/I source card: an optional
// bare value or "dc <v>", an optional "ac <mag> [phase]", and an optional
// pulse/sin/pwl waveform.
func parseSource(toks []string) (Waveform, float64, float64, error) {
	var wave Waveform
	dc, ac := 0.0, 0.0
	i := 0
	for i < len(toks) {
		t := toks[i]
		switch {
		case t == "dc":
			if i+1 >= len(toks) {
				return nil, 0, 0, fmt.Errorf("dc needs a value")
			}
			v, err := ParseValue(toks[i+1])
			if err != nil {
				return nil, 0, 0, err
			}
			dc = v
			i += 2
		case t == "ac":
			if i+1 >= len(toks) {
				return nil, 0, 0, fmt.Errorf("ac needs a magnitude")
			}
			v, err := ParseValue(toks[i+1])
			if err != nil {
				return nil, 0, 0, err
			}
			ac = v
			i += 2
			// Optional phase argument.
			if i < len(toks) {
				if _, err := ParseValue(toks[i]); err == nil && !isWaveKeyword(toks[i]) {
					i++
				}
			}
		case t == "pulse" || t == "sin" || t == "pwl":
			vals, next, err := collectArgs(toks, i+1)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("%s: %w", t, err)
			}
			w, err := buildWave(t, vals)
			if err != nil {
				return nil, 0, 0, err
			}
			wave = w
			i = next
		default:
			v, err := ParseValue(t)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("unexpected token %q", t)
			}
			dc = v
			i++
		}
	}
	return wave, dc, ac, nil
}

func isWaveKeyword(t string) bool {
	return t == "pulse" || t == "sin" || t == "pwl" || t == "dc" || t == "ac"
}

// collectArgs gathers the numeric arguments following a waveform keyword;
// tokenize has already split parentheses into separate tokens.
func collectArgs(toks []string, i int) ([]float64, int, error) {
	var vals []float64
	expectClose := false
	if i < len(toks) && toks[i] == "(" {
		expectClose = true
		i++
	}
	for i < len(toks) {
		t := toks[i]
		if t == ")" {
			i++
			return vals, i, nil
		}
		v, err := ParseValue(t)
		if err != nil {
			if expectClose {
				return nil, 0, fmt.Errorf("bad argument %q", t)
			}
			return vals, i, nil
		}
		vals = append(vals, v)
		i++
	}
	if expectClose {
		return nil, 0, fmt.Errorf("missing )")
	}
	return vals, i, nil
}

func buildWave(kind string, v []float64) (Waveform, error) {
	get := func(i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	switch kind {
	case "pulse":
		if len(v) < 2 {
			return nil, fmt.Errorf("netlist: pulse needs at least v1 v2")
		}
		return &Pulse{V1: get(0), V2: get(1), TD: get(2), TR: get(3), TF: get(4), PW: get(5), PER: get(6)}, nil
	case "sin":
		if len(v) < 3 {
			return nil, fmt.Errorf("netlist: sin needs vo va freq")
		}
		return &Sin{VO: get(0), VA: get(1), Freq: get(2), TD: get(3), Theta: get(4)}, nil
	case "pwl":
		if len(v) == 0 || len(v)%2 != 0 {
			return nil, fmt.Errorf("netlist: pwl needs time/value pairs")
		}
		w := &PWL{}
		for i := 0; i < len(v); i += 2 {
			w.T = append(w.T, v[i])
			w.V = append(w.V, v[i+1])
		}
		for i := 1; i < len(w.T); i++ {
			if w.T[i] < w.T[i-1] {
				return nil, fmt.Errorf("netlist: pwl times must be non-decreasing")
			}
		}
		return w, nil
	}
	return nil, fmt.Errorf("netlist: unknown waveform %q", kind)
}

// tokenize splits a card into fields, separating parentheses and commas
// into their own tokens and keeping key=value tokens intact.
func tokenize(card string) []string {
	var b strings.Builder
	for _, ch := range card {
		switch ch {
		case '(', ')':
			b.WriteByte(' ')
			b.WriteRune(ch)
			b.WriteByte(' ')
		case ',':
			b.WriteByte(' ')
		default:
			b.WriteRune(ch)
		}
	}
	return strings.Fields(b.String())
}

func norm(node string) string {
	if node == "gnd" {
		return Ground
	}
	return node
}

// Write renders the deck back to SPICE text: title, models, subcircuit
// definitions that are still referenced by X instances in Elements,
// elements, control cards, .end. (Parse flattens instances, so decks from
// Parse write flat; decks constructed with explicit Subckts and
// XInstances round-trip hierarchically.)
func (d *Deck) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, d.Title)
	keys := make([]string, 0, len(d.Models))
	for k := range d.Models {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		fmt.Fprintln(bw, d.Models[k].Card())
	}
	// Emit only definitions still referenced (transitively) by instances.
	refed := map[string]bool{}
	var mark func(elems []Element)
	mark = func(elems []Element) {
		for _, e := range elems {
			x, ok := e.(*XInstance)
			if !ok {
				continue
			}
			if refed[x.SubcktRef] {
				continue
			}
			refed[x.SubcktRef] = true
			if sub, ok := d.Subckts[x.SubcktRef]; ok {
				mark(sub.Elements)
			}
		}
	}
	mark(d.Elements)
	subNames := make([]string, 0, len(refed))
	for k := range refed {
		if _, ok := d.Subckts[k]; ok {
			subNames = append(subNames, k)
		}
	}
	sortStrings(subNames)
	for _, k := range subNames {
		sub := d.Subckts[k]
		fmt.Fprintf(bw, ".subckt %s %s\n", sub.Ident, strings.Join(sub.Ports, " "))
		for _, e := range sub.Elements {
			fmt.Fprintln(bw, e.Card())
		}
		fmt.Fprintln(bw, ".ends")
	}
	for _, e := range d.Elements {
		fmt.Fprintln(bw, e.Card())
	}
	for _, c := range d.Controls {
		fmt.Fprintln(bw, c)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// String renders the deck as SPICE text.
func (d *Deck) String() string {
	var b strings.Builder
	if err := d.Write(&b); err != nil {
		return ""
	}
	return b.String()
}
