package netlist

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// failAfter yields its contents and then a read error, standing in for a
// source that breaks after the interesting part of the stream.
type failAfter struct {
	r    io.Reader
	err  error
	done bool
}

func (f *failAfter) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 {
		return n, nil
	}
	if err == io.EOF {
		f.done = true
		return 0, f.err
	}
	return n, err
}

// TestParseStopsReadingAtEnd pins the streaming contract: once the .end
// card is seen, Parse asks the reader for nothing more. A source that
// fails right after .end must not turn into a parse error.
func TestParseStopsReadingAtEnd(t *testing.T) {
	boom := errors.New("reader exploded past .end")
	src := &failAfter{r: strings.NewReader("t\nr1 a b 1k\n.end\n"), err: boom}
	deck, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse should not read past .end: %v", err)
	}
	if len(deck.Elements) != 1 {
		t.Fatalf("got %d elements, want 1", len(deck.Elements))
	}
	// Without .end the same failure must surface: the parser only stops
	// early because .end told it to.
	src = &failAfter{r: strings.NewReader("t\nr1 a b 1k\n"), err: boom}
	if _, err := Parse(src); !errors.Is(err, boom) {
		t.Fatalf("Parse without .end swallowed the read error: %v", err)
	}
}

// TestParseIgnoresCardsAfterEnd: content between .end and EOF is dead —
// it contributes no elements and cannot fail the parse.
func TestParseIgnoresCardsAfterEnd(t *testing.T) {
	deck, err := ParseString("t\nr1 a b 1k\n.end\nzz not a card\nr9 q w 2\n")
	if err != nil {
		t.Fatalf("cards after .end must be ignored: %v", err)
	}
	if len(deck.Elements) != 1 || deck.Elements[0].Name() != "r1" {
		t.Fatalf("deck picked up elements after .end: %v", deck.Elements)
	}
}

// TestParseContinuationCaseInsensitive: continuation lines are folded to
// lower case like every other card line, so a waveform split across a
// '+' line parses regardless of its case.
func TestParseContinuationCaseInsensitive(t *testing.T) {
	deck, err := ParseString("t\nv1 a 0 dc 0\n+ PULSE(0 5 1N 0.1N 0.1N 4N 10N)\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := deck.Elements[0].(*VSource)
	if !ok || v.Wave == nil {
		t.Fatalf("continuation waveform lost: %#v", deck.Elements[0])
	}
	if _, ok := v.Wave.(*Pulse); !ok {
		t.Fatalf("wave = %T, want *Pulse", v.Wave)
	}
}

// TestParseStreamsSubcktAcrossCards: the per-card dispatch must keep the
// .subckt nesting state across the stream, including a definition whose
// body and delimiters interleave with comments and continuations.
func TestParseStreamsSubcktAcrossCards(t *testing.T) {
	deck, err := ParseString(`t
.subckt cell a b
* body comment
r1 a mid 1k
c1 mid
+ b 1p
.ends
x1 n1 n2 cell
i1 n1 0 dc 0
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := deck.Subckts["cell"]; !ok {
		t.Fatalf("subckt lost in streaming parse: %v", deck.Subckts)
	}
	// flatten expanded x1: one resistor + one capacitor + the probe.
	if len(deck.Elements) != 3 {
		t.Fatalf("got %d flattened elements, want 3", len(deck.Elements))
	}
}
