package netlist

import (
	"fmt"
	"strings"
)

// Subckt is a parsed .subckt definition: a name, the port node list, and
// the element/instance cards of the body. Models are global (SPICE
// convention); nested definitions are not supported, but bodies may
// instantiate other subcircuits.
type Subckt struct {
	Ident    string
	Ports    []string
	Elements []Element
}

// XInstance is a subcircuit instance card (xname n1 n2 ... subcktname).
// Parse expands instances into flat elements before returning, so
// downstream consumers never see XInstance; it is exported for tools that
// inspect unexpanded bodies.
type XInstance struct {
	Ident     string
	NodeList  []string
	SubcktRef string
}

func (x *XInstance) Name() string    { return x.Ident }
func (x *XInstance) Nodes() []string { return x.NodeList }
func (x *XInstance) Card() string {
	return fmt.Sprintf("%s %s %s", x.Ident, strings.Join(x.NodeList, " "), x.SubcktRef)
}

const maxFlattenDepth = 20

// flatten expands every XInstance in the deck using the deck's subcircuit
// definitions, renaming internal nodes to <inst>.<node> and element names
// to <name>_<inst> (keeping the type letter first).
func (d *Deck) flatten() error {
	if len(d.Subckts) == 0 {
		// Still reject stray instances.
		for _, e := range d.Elements {
			if x, ok := e.(*XInstance); ok {
				return fmt.Errorf("netlist: instance %s references unknown subcircuit %q", x.Ident, x.SubcktRef)
			}
		}
		return nil
	}
	var out []Element
	for _, e := range d.Elements {
		x, ok := e.(*XInstance)
		if !ok {
			out = append(out, e)
			continue
		}
		expanded, err := d.expand(x, 0)
		if err != nil {
			return err
		}
		out = append(out, expanded...)
	}
	d.Elements = out
	return nil
}

// expand instantiates one subcircuit instance, recursively.
func (d *Deck) expand(x *XInstance, depth int) ([]Element, error) {
	if depth > maxFlattenDepth {
		return nil, fmt.Errorf("netlist: subcircuit nesting deeper than %d at %s (recursive definition?)", maxFlattenDepth, x.Ident)
	}
	sub, ok := d.Subckts[x.SubcktRef]
	if !ok {
		return nil, fmt.Errorf("netlist: instance %s references unknown subcircuit %q", x.Ident, x.SubcktRef)
	}
	if len(x.NodeList) != len(sub.Ports) {
		return nil, fmt.Errorf("netlist: instance %s connects %d nodes to subcircuit %s with %d ports",
			x.Ident, len(x.NodeList), sub.Ident, len(sub.Ports))
	}
	portMap := map[string]string{Ground: Ground}
	for i, p := range sub.Ports {
		portMap[p] = x.NodeList[i]
	}
	mapNode := func(n string) string {
		if m, ok := portMap[n]; ok {
			return m
		}
		return x.Ident + "." + n
	}
	var out []Element
	for _, e := range sub.Elements {
		if xe, ok := e.(*XInstance); ok {
			inner := &XInstance{
				Ident:     xe.Ident + "_" + x.Ident,
				SubcktRef: xe.SubcktRef,
			}
			for _, n := range xe.NodeList {
				inner.NodeList = append(inner.NodeList, mapNode(n))
			}
			expanded, err := d.expand(inner, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
			continue
		}
		ce, err := cloneRenamed(e, mapNode, "_"+x.Ident)
		if err != nil {
			return nil, err
		}
		out = append(out, ce)
	}
	return out, nil
}

// cloneRenamed copies an element with its nodes mapped and its name
// suffixed (the type letter stays first, so downstream dispatch works).
func cloneRenamed(e Element, mapNode func(string) string, suffix string) (Element, error) {
	switch el := e.(type) {
	case *Resistor:
		return &Resistor{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), Value: el.Value}, nil
	case *Capacitor:
		return &Capacitor{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), Value: el.Value}, nil
	case *Inductor:
		return &Inductor{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), Value: el.Value}, nil
	case *VSource:
		return &VSource{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), DC: el.DC, ACMag: el.ACMag, Wave: el.Wave}, nil
	case *ISource:
		return &ISource{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), DC: el.DC, ACMag: el.ACMag, Wave: el.Wave}, nil
	case *Diode:
		return &Diode{Ident: el.Ident + suffix, N1: mapNode(el.N1), N2: mapNode(el.N2), ModelName: el.ModelName}, nil
	case *MOSFET:
		return &MOSFET{
			Ident: el.Ident + suffix,
			D:     mapNode(el.D), G: mapNode(el.G), S: mapNode(el.S), B: mapNode(el.B),
			ModelName: el.ModelName, W: el.W, L: el.L,
		}, nil
	}
	return nil, fmt.Errorf("netlist: cannot clone element type %T", e)
}
