package netlist

import (
	"math"
	"strings"
	"testing"
)

const subcktDeck = `hierarchy test
.model nch nmos vto=0.7 kp=60u
.model pch pmos vto=-0.7 kp=25u
.subckt inv in out vp
mp out in vp vp pch w=20u l=1u
mn out in 0 0 nch w=10u l=1u
c1 out 0 10f
.ends inv
.subckt buf a y vp
x1 a mid vp inv
x2 mid y vp inv
.ends
vdd vdd 0 dc 5
vin in 0 dc 0
xb1 in out vdd buf
rload out 0 100k
.end
`

func TestSubcktFlatten(t *testing.T) {
	deck, err := ParseString(subcktDeck)
	if err != nil {
		t.Fatal(err)
	}
	if len(deck.Subckts) != 2 {
		t.Fatalf("subckts = %d, want 2", len(deck.Subckts))
	}
	// Flattened: vdd, vin, rload + 2 inv instances × (2 mosfets + 1 cap).
	nm, nc, nr := 0, 0, 0
	for _, e := range deck.Elements {
		switch e.(type) {
		case *MOSFET:
			nm++
		case *Capacitor:
			nc++
		case *Resistor:
			nr++
		case *XInstance:
			t.Fatalf("unexpanded instance %s survived flattening", e.Name())
		}
	}
	if nm != 4 || nc != 2 || nr != 1 {
		t.Fatalf("flattened counts: %d mosfets %d caps %d resistors, want 4/2/1", nm, nc, nr)
	}
	// Node renaming: the buffer's internal node becomes x1/x2-scoped
	// under the xb1 instance; ports map through.
	names := deck.NodeNames()
	hasMid := false
	for _, n := range names {
		if strings.Contains(n, "xb1.mid") {
			hasMid = true
		}
		if n == "mid" {
			t.Fatalf("unscoped internal node leaked: %v", names)
		}
	}
	if !hasMid {
		t.Fatalf("internal node not scoped: %v", names)
	}
}

func TestSubcktValuesSurvive(t *testing.T) {
	deck, err := ParseString(subcktDeck)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range deck.Elements {
		if c, ok := e.(*Capacitor); ok {
			if math.Abs(c.Value-10e-15) > 1e-20 {
				t.Fatalf("cap value %v", c.Value)
			}
		}
		if m, ok := e.(*MOSFET); ok {
			if m.ModelName != "pch" && m.ModelName != "nch" {
				t.Fatalf("model ref %q", m.ModelName)
			}
		}
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := []string{
		// unknown subckt
		"t\nx1 a b nosuch\n.end\n",
		// port count mismatch
		"t\n.subckt s a b\nr1 a b 1\n.ends\nx1 n1 s\n.end\n",
		// nested definition
		"t\n.subckt s a\n.subckt t b\n.ends\n.ends\n.end\n",
		// unclosed definition
		"t\n.subckt s a\nr1 a 0 1\n.end\n",
		// stray .ends
		"t\n.ends\n.end\n",
		// duplicate definition
		"t\n.subckt s a\nr1 a 0 1\n.ends\n.subckt s a\nr1 a 0 1\n.ends\n.end\n",
		// short instance card
		"t\nx1 s\n.end\n",
		// direct recursion
		"t\n.subckt s a\nx1 a s\n.ends\nx0 n s\n.end\n",
	}
	for _, deck := range cases {
		if _, err := ParseString(deck); err == nil {
			t.Errorf("deck %q parsed without error", deck)
		}
	}
}

func TestSubcktGroundPassesThrough(t *testing.T) {
	deck, err := ParseString(`g
.subckt s a
r1 a 0 1k
.ends
x1 n s
v1 n 0 dc 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	r := deck.Elements[0].(*Resistor)
	if r.N1 != "n" || r.N2 != Ground {
		t.Fatalf("resistor nodes %v", r.Nodes())
	}
	if !strings.HasPrefix(r.Ident, "r1_x1") {
		t.Fatalf("resistor name %q", r.Ident)
	}
}
