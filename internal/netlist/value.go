package netlist

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseValue parses a SPICE numeric token: a float with an optional
// engineering suffix (f p n u mil m k meg g t, case-insensitive); any
// trailing letters after the suffix are ignored, so "10kohm" parses as
// 10e3 and "5pF" as 5e-12.
func ParseValue(tok string) (float64, error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	if tok == "" {
		return 0, fmt.Errorf("netlist: empty numeric token")
	}
	// Find the longest numeric prefix.
	end := 0
	seenDigit := false
	for end < len(tok) {
		ch := tok[end]
		switch {
		case ch >= '0' && ch <= '9':
			seenDigit = true
			end++
		case ch == '+' || ch == '-':
			if end == 0 {
				end++
			} else if tok[end-1] == 'e' {
				end++
			} else {
				goto done
			}
		case ch == '.':
			end++
		case ch == 'e' && seenDigit && end+1 < len(tok) &&
			(tok[end+1] == '+' || tok[end+1] == '-' || (tok[end+1] >= '0' && tok[end+1] <= '9')):
			end++
		default:
			goto done
		}
	}
done:
	if end == 0 || !seenDigit {
		return 0, fmt.Errorf("netlist: %q is not a number", tok)
	}
	mant, err := strconv.ParseFloat(tok[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("netlist: bad number %q: %v", tok, err)
	}
	suffix := tok[end:]
	mult := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "mil"):
		mult = 25.4e-6
	case suffix[0] == 'f':
		mult = 1e-15
	case suffix[0] == 'p':
		mult = 1e-12
	case suffix[0] == 'n':
		mult = 1e-9
	case suffix[0] == 'u':
		mult = 1e-6
	case suffix[0] == 'm':
		mult = 1e-3
	case suffix[0] == 'k':
		mult = 1e3
	case suffix[0] == 'g':
		mult = 1e9
	case suffix[0] == 't':
		mult = 1e12
	default:
		// Unit words like "ohm", "v", "hz" carry no scale.
	}
	return mant * mult, nil
}

// FormatValue renders a value in compact SPICE engineering notation,
// picking the suffix that leaves a mantissa in [1, 1000) where possible.
//
// The rendered token always re-parses to exactly v (bit-identical): a
// waveform can hold a step edge at TD, and a time constant off by one
// ulp flips the value on either side of it, so "close" is not good
// enough for a deck that must simulate identically after a write/parse
// cycle. The pretty ten-digit engineering form is used whenever it is
// exact; otherwise the shortest exact mantissa keeps the suffix, and if
// the suffix multiply itself cannot reproduce v, the value falls back
// to plain shortest-exact scientific notation.
func FormatValue(v float64) string {
	if v == 0 {
		return "0"
	}
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%g", v)
	}
	abs := math.Abs(v)
	type unit struct {
		mult float64
		suf  string
	}
	units := []unit{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	for _, u := range units {
		if abs >= u.mult && abs < u.mult*1000 {
			if s := trimFloat(v/u.mult) + u.suf; reparsesTo(s, v) {
				return s
			}
			if s := strconv.FormatFloat(v/u.mult, 'g', -1, 64) + u.suf; reparsesTo(s, v) {
				return s
			}
			return strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	if s := trimFloat(v); reparsesTo(s, v) {
		return s
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// reparsesTo reports whether the token parses back to exactly v.
func reparsesTo(s string, v float64) bool {
	got, err := ParseValue(s)
	//lint:ignore floatcmp bit-exact round trip is the contract here: one ulp of drift moves a waveform edge across its sample point
	return err == nil && got == v
}

func trimFloat(v float64) string {
	// Ten significant digits: enough for every humanly-entered value to
	// keep its natural spelling ("2.5", "13.5"); FormatValue falls back
	// to the shortest exact form when ten digits lose bits.
	s := strconv.FormatFloat(v, 'g', 10, 64)
	// Rounding to ten digits can carry values at the very edge of the
	// float64 range past it (MaxFloat64 becomes 1.797693135e+308, which
	// overflows on re-parse); fall back to the shortest exact form.
	if f, err := strconv.ParseFloat(s, 64); err != nil || math.IsInf(f, 0) {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return s
}
