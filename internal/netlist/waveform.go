package netlist

import (
	"fmt"
	"math"
	"strings"
)

// Waveform is a time-dependent source description.
type Waveform interface {
	// At returns the source value at time t >= 0.
	At(t float64) float64
	// Card renders the SPICE waveform specification.
	Card() string
}

// Pulse is the SPICE PULSE(V1 V2 TD TR TF PW PER) waveform.
type Pulse struct {
	V1, V2, TD, TR, TF, PW, PER float64
}

// At evaluates the pulse train at time t.
func (p *Pulse) At(t float64) float64 {
	if t < p.TD {
		return p.V1
	}
	tt := t - p.TD
	if p.PER > 0 {
		tt = math.Mod(tt, p.PER)
	}
	switch {
	case tt < p.TR:
		if p.TR == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.TR
	case tt < p.TR+p.PW:
		return p.V2
	case tt < p.TR+p.PW+p.TF:
		if p.TF == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.TR-p.PW)/p.TF
	default:
		return p.V1
	}
}

// Card renders the waveform.
func (p *Pulse) Card() string {
	return fmt.Sprintf("pulse(%s %s %s %s %s %s %s)",
		FormatValue(p.V1), FormatValue(p.V2), FormatValue(p.TD),
		FormatValue(p.TR), FormatValue(p.TF), FormatValue(p.PW), FormatValue(p.PER))
}

// Sin is the SPICE SIN(VO VA FREQ TD THETA) waveform.
type Sin struct {
	VO, VA, Freq, TD, Theta float64
}

// At evaluates the damped sinusoid at time t.
func (s *Sin) At(t float64) float64 {
	if t < s.TD {
		return s.VO
	}
	tt := t - s.TD
	return s.VO + s.VA*math.Exp(-s.Theta*tt)*math.Sin(2*math.Pi*s.Freq*tt)
}

// Card renders the waveform.
func (s *Sin) Card() string {
	return fmt.Sprintf("sin(%s %s %s %s %s)",
		FormatValue(s.VO), FormatValue(s.VA), FormatValue(s.Freq),
		FormatValue(s.TD), FormatValue(s.Theta))
}

// PWL is the SPICE piecewise-linear waveform.
type PWL struct {
	T, V []float64 // strictly increasing times
}

// At evaluates the piecewise-linear waveform (clamped at the ends).
func (p *PWL) At(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	// Linear scan is fine: waveforms in these decks have few breakpoints.
	for i := 1; i < n; i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[n-1]
}

// Card renders the waveform.
func (p *PWL) Card() string {
	var b strings.Builder
	b.WriteString("pwl(")
	for i := range p.T {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s %s", FormatValue(p.T[i]), FormatValue(p.V[i]))
	}
	b.WriteByte(')')
	return b.String()
}
