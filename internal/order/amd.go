package order

import "repro/internal/sparse"

// AMDMinOrder is the matrix order at or above which Analyze's
// MinimumDegree method dispatches to AMD. Below it the simpler MinDegree
// runs; the two produce different (both valid) permutations, so the
// threshold is exported to let tests and benchmarks force either path.
var AMDMinOrder = 512

// AMD computes a fill-reducing permutation (new index -> old index) of
// the symmetric pattern a using the approximate minimum degree algorithm
// of Amestoy, Davis and Duff: a quotient graph with element absorption
// (as in MinDegree) extended with supervariables. Indistinguishable
// variables — equal adjacency sets after a pivot — are merged into a
// weighted supervariable that is eliminated as a unit, and variables
// whose entire adjacency lies inside the pivot's element are mass
// eliminated together with the pivot. Both shrink the quotient graph far
// below the original vertex count on meshes, which is where the
// asymptotic win over plain minimum degree comes from.
//
// Values in a are ignored; the pattern must be structurally symmetric.
// The algorithm is serial and touches only index slices in a fixed
// order, so the permutation is a pure function of the pattern —
// independent of GOMAXPROCS, map iteration order, or scheduling.
func AMD(a *sparse.CSR) []int {
	n := a.Rows
	if n == 0 {
		return nil
	}
	// Variable-variable adjacency (alive entries only; purged as the
	// algorithm runs) and variable-element adjacency (purged lazily).
	varAdj := make([][]int32, n)
	elAdj := make([][]int32, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		adj := make([]int32, 0, len(cols))
		for _, j := range cols {
			if j != i {
				adj = append(adj, int32(j))
			}
		}
		varAdj[i] = adj
	}
	bound := make([][]int32, n) // element boundary lists, indexed by pivot
	ew := make([]int32, n)      // element weight: sum of nv over alive boundary members
	alive := make([]bool, n)    // supervariable alive (not eliminated or merged)?
	elAlive := make([]bool, n)  // element alive (not absorbed)?
	nv := make([]int32, n)      // weight: original variables in each supervariable
	// Each supervariable's merged originals form a linked group emitted
	// together when the representative is eliminated.
	groupNext := make([]int32, n)
	groupTail := make([]int32, n)
	for i := range alive {
		alive[i] = true
		nv[i] = 1
		groupNext[i] = -1
		groupTail[i] = int32(i)
	}

	// Degree bucket lists keyed by weighted approximate external degree.
	head := make([]int, n+1)
	next := make([]int, n)
	prev := make([]int, n)
	degree := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	insert := func(i, d int) {
		degree[i] = d
		next[i] = head[d]
		prev[i] = -1
		if head[d] != -1 {
			prev[head[d]] = i
		}
		head[d] = i
	}
	remove := func(i int) {
		d := degree[i]
		if prev[i] != -1 {
			next[prev[i]] = next[i]
		} else {
			head[d] = next[i]
		}
		if next[i] != -1 {
			prev[next[i]] = prev[i]
		}
	}
	for i := 0; i < n; i++ {
		insert(i, len(varAdj[i]))
	}
	minDeg := 0

	mark := make([]int, n) // visitation marks for L_k and set comparison
	mv := 0
	wStamp := make([]int32, n) // per-element weighted |L_e \ L_k| counters
	wVal := make([]int32, n)
	stamp := int32(0)
	lk := make([]int32, 0, 256)
	// Supervariable hash buckets, reset lazily by pivot stamp. The
	// arrays themselves are allocated on first use: tree-like graphs
	// never produce a multi-member L_k, and skipping four n-sized
	// allocations is measurable at 10^6 nodes.
	var hHead, hNext []int32
	var hStamp, hDone []int32
	hOf := make([]int32, 0, 256) // per-L_k-member bucket, parallel to lk

	perm := make([]int, 0, n)
	emit := func(i int32) {
		for x := i; x != -1; x = groupNext[x] {
			perm = append(perm, int(x))
		}
	}

	for len(perm) < n {
		for head[minDeg] == -1 {
			minDeg++
		}
		k := head[minDeg]
		remove(k)
		alive[k] = false
		emit(int32(k))

		// Build L_k: alive supervariables reachable from k directly or
		// through k's adjacent elements. Those elements are absorbed.
		// Boundary lists may hold stale merged ids (skipped here); their
		// weights ew are exact, because a merge moves weight between two
		// members of every element the merged pair shares.
		mv++
		mark[k] = mv
		lk = lk[:0]
		lkW := int32(0)
		for _, j := range varAdj[k] {
			if alive[j] && mark[j] != mv {
				mark[j] = mv
				lk = append(lk, j)
				lkW += nv[j]
			}
		}
		for _, e := range elAdj[k] {
			if !elAlive[e] {
				continue
			}
			for _, j := range bound[e] {
				if alive[j] && mark[j] != mv {
					mark[j] = mv
					lk = append(lk, j)
					lkW += nv[j]
				}
			}
			elAlive[e] = false
			bound[e] = nil
		}
		varAdj[k] = nil
		elAdj[k] = nil
		if len(lk) == 0 {
			continue
		}
		// The new element's boundary is filled in after the update
		// passes, once mass elimination and supervariable merging have
		// settled who survives; nothing reads it this pivot.
		elAlive[k] = true

		// Pass 1: purge dead elements from each boundary variable's
		// element list and compute weighted w[e] = |L_e \ L_k| for every
		// element touching L_k, using the stamp-reset trick so each
		// element is initialized exactly once per pivot.
		stamp++
		for _, i := range lk {
			el := elAdj[i][:0]
			for _, e := range elAdj[i] {
				if !elAlive[e] {
					continue
				}
				el = append(el, e)
				if wStamp[e] != stamp {
					wStamp[e] = stamp
					wVal[e] = ew[e]
				}
				wVal[e] -= nv[i]
			}
			elAdj[i] = el
		}

		// Pass 2: purge variable adjacencies (edges inside L_k are now
		// represented by element k), absorb elements whose boundary is
		// contained in L_k, mass-eliminate members with no connections
		// outside the element, and recompute weighted approximate
		// external degrees
		//   d_i = w(A_i \ L_k) + (w(L_k) - nv_i) + sum over elements of
		//         w(L_e \ L_k).
		for _, i := range lk {
			va := varAdj[i][:0]
			vaW := int32(0)
			for _, j := range varAdj[i] {
				if alive[j] && mark[j] != mv {
					va = append(va, j)
					vaW += nv[j]
				}
			}
			varAdj[i] = va

			elSum := int32(0)
			el := elAdj[i][:0]
			for _, e := range elAdj[i] {
				if !elAlive[e] {
					continue
				}
				if wVal[e] == 0 {
					// L_e is a subset of L_k: absorb e into k.
					elAlive[e] = false
					bound[e] = nil
					continue
				}
				el = append(el, e)
				elSum += wVal[e]
			}
			if len(va) == 0 && elSum == 0 {
				// Mass elimination: i's entire adjacency lies inside the
				// new element, so eliminating it right after k adds no
				// fill. Emit its group now and shrink the pivot weight so
				// later members see a tighter degree. The only alive
				// element that will list i is k itself, and k's boundary
				// is built below from survivors only.
				remove(int(i))
				alive[i] = false
				emit(i)
				lkW -= nv[i]
				nv[i] = 0
				varAdj[i] = nil
				elAdj[i] = nil
				continue
			}
			el = append(el, int32(k))
			elAdj[i] = el

			d := int(vaW) + int(lkW-nv[i]) + int(elSum)
			if d > n-1 {
				d = n - 1
			}
			remove(int(i))
			insert(int(i), d)
			if d < minDeg {
				minDeg = d
			}
		}

		// Pass 3: supervariable detection. Surviving members of L_k with
		// equal adjacency sets are indistinguishable — they fill in
		// identically from here on — so merge them into one weighted
		// supervariable. Candidates are grouped by a cheap additive hash
		// and compared exactly with the mark array. Variable and element
		// indices share one index space without collision: element ids
		// are eliminated pivots, adjacency lists hold only alive ids.
		if len(lk) > 1 {
			if hHead == nil {
				hHead = make([]int32, n)
				hNext = make([]int32, n)
				hStamp = make([]int32, n)
				hDone = make([]int32, n)
			}
			hOf = hOf[:0]
			for _, i := range lk {
				if !alive[i] {
					hOf = append(hOf, -1)
					continue
				}
				h := uint64(0)
				for _, j := range varAdj[i] {
					h += uint64(j)
				}
				for _, e := range elAdj[i] {
					h += uint64(e)
				}
				b := int(h % uint64(n))
				hOf = append(hOf, int32(b))
				if hStamp[b] != stamp {
					hStamp[b] = stamp
					hHead[b] = -1
				}
				hNext[i] = hHead[b]
				hHead[b] = i
			}
			for li, i := range lk {
				if !alive[i] {
					continue
				}
				b := int(hOf[li])
				if b < 0 || hDone[b] == stamp {
					continue
				}
				hDone[b] = stamp
				for x := hHead[b]; x != -1; x = hNext[x] {
					if !alive[x] {
						continue
					}
					mv++
					for _, j := range varAdj[x] {
						mark[j] = mv
					}
					for _, e := range elAdj[x] {
						mark[e] = mv
					}
					merged := int32(0)
					for y := hNext[x]; y != -1; y = hNext[y] {
						if !alive[y] ||
							len(varAdj[y]) != len(varAdj[x]) ||
							len(elAdj[y]) != len(elAdj[x]) {
							continue
						}
						same := true
						for _, j := range varAdj[y] {
							if mark[j] != mv {
								same = false
								break
							}
						}
						if same {
							for _, e := range elAdj[y] {
								if mark[e] != mv {
									same = false
									break
								}
							}
						}
						if !same {
							continue
						}
						// Merge y into x: y's group is emitted with x's.
						remove(int(y))
						alive[y] = false
						groupNext[groupTail[x]] = y
						groupTail[x] = groupTail[y]
						merged += nv[y]
						nv[x] += nv[y]
						nv[y] = 0
						varAdj[y] = nil
						elAdj[y] = nil
					}
					if merged > 0 {
						// Tighten x's listed degree: the merged weight sat
						// in the (w(L_k) - nv_x) term and is external no
						// longer.
						d := degree[int(x)] - int(merged)
						if d < 0 {
							d = 0
						}
						remove(int(x))
						insert(int(x), d)
						if d < minDeg {
							minDeg = d
						}
					}
				}
			}
		}

		// Finalize element k: boundary and weight cover exactly the
		// members that survived mass elimination and merging.
		b := lk[:0] // reuse: lk is rebuilt next pivot
		for _, j := range lk {
			if alive[j] {
				b = append(b, j)
			}
		}
		if len(b) == 0 {
			elAlive[k] = false
			continue
		}
		bound[k] = append(make([]int32, 0, len(b)), b...)
		ew[k] = lkW
	}
	return perm
}
