package order

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

func grid3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	b := sparse.NewBuilder(n, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				b.Add(id(x, y, z), id(x, y, z), 6)
				if x+1 < nx {
					b.AddSym(id(x, y, z), id(x+1, y, z), -1)
				}
				if y+1 < ny {
					b.AddSym(id(x, y, z), id(x, y+1, z), -1)
				}
				if z+1 < nz {
					b.AddSym(id(x, y, z), id(x, y, z+1), -1)
				}
			}
		}
	}
	return b.Build()
}

// binaryTree builds the graph of a complete binary tree on n heap-indexed
// nodes — the clock-tree topology netgen generates at scale.
func binaryTree(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if c := 2*i + 1; c < n {
			b.AddSym(i, c, -1)
		}
		if c := 2*i + 2; c < n {
			b.AddSym(i, c, -1)
		}
	}
	return b.Build()
}

// fillFor computes the Cholesky factor nonzero count of a under the given
// permutation via the etree-based symbolic analysis.
func fillFor(a *sparse.CSR, perm []int) int {
	upper := a.PermuteSym(perm).UpperCSC()
	parent := ETree(upper)
	total := 0
	for _, c := range ColCounts(upper, parent) {
		total += c
	}
	return total
}

func TestAMDIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(80)
		a := randomSymPattern(rng, n, 3*n)
		if !validPerm(AMD(a), n) {
			t.Fatalf("trial %d: AMD did not return a permutation", trial)
		}
	}
}

func TestAMDHandlesDisconnected(t *testing.T) {
	n := 12
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	for i := 0; i < 4; i++ {
		b.AddSym(i, i+1, 1)
	}
	for i := 6; i < 9; i++ {
		b.AddSym(i, i+1, 1)
	}
	a := b.Build()
	if !validPerm(AMD(a), n) {
		t.Fatal("AMD failed on disconnected graph")
	}
}

func TestAMDDeterministic(t *testing.T) {
	// Same pattern, same permutation — AMD is a pure serial function of
	// the pattern, so repeated runs must agree exactly.
	fixtures := []*sparse.CSR{
		grid2D(17, 13),
		grid3D(6, 6, 6),
		binaryTree(501),
	}
	rng := rand.New(rand.NewSource(32))
	fixtures = append(fixtures, randomSymPattern(rng, 300, 900))
	for fi, a := range fixtures {
		p1 := AMD(a)
		p2 := AMD(a)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("fixture %d: AMD not deterministic at position %d: %d vs %d", fi, i, p1[i], p2[i])
			}
		}
	}
}

func TestAMDFillNoWorseThanMinDegree(t *testing.T) {
	// On the fixture meshes the supervariable AMD must match or beat the
	// plain minimum-degree ordering it replaces at scale.
	fixtures := []struct {
		name string
		a    *sparse.CSR
	}{
		{"grid2d-20x20", grid2D(20, 20)},
		{"grid2d-31x17", grid2D(31, 17)},
		{"grid3d-7x7x7", grid3D(7, 7, 7)},
		{"tree-1023", binaryTree(1023)},
		{"path-400", pathGraph(400)},
	}
	for _, f := range fixtures {
		amd := fillFor(f.a, AMD(f.a))
		md := fillFor(f.a, MinDegree(f.a))
		t.Logf("%s: AMD fill %d, MinDegree fill %d", f.name, amd, md)
		if amd > md {
			t.Errorf("%s: AMD fill %d worse than MinDegree fill %d", f.name, amd, md)
		}
	}
}

func TestAMDFillMatchesBruteForce(t *testing.T) {
	// The permuted-pattern fill reported through the symbolic pipeline
	// must equal brute-force symbolic elimination, i.e. the permutation
	// is usable, not just valid.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(24)
		a := randomSymPattern(rng, n, 2*n)
		perm := AMD(a)
		if !validPerm(perm, n) {
			t.Fatalf("trial %d: invalid perm", trial)
		}
		got := fillFor(a, perm)
		want := denseSymbolicFill(a.PermuteSym(perm))
		if got != want {
			t.Fatalf("trial %d: fill %d, brute force %d", trial, got, want)
		}
	}
}

func TestAnalyzeDispatchesAMD(t *testing.T) {
	// Above the threshold Analyze must use AMD, below it MinDegree; both
	// observable because the two orderings differ on a shuffled grid.
	a := grid2D(25, 25).PermuteSym(rand.New(rand.NewSource(34)).Perm(625))
	defer func(old int) { AMDMinOrder = old }(AMDMinOrder)

	AMDMinOrder = 1 // force AMD
	sym := Analyze(a, MinimumDegree)
	want := AMD(a)
	for i := range want {
		if sym.Perm[i] != want[i] {
			t.Fatalf("Analyze above threshold did not use AMD (pos %d)", i)
		}
	}
	if sym.OrderNs < 0 || sym.SymbolicNs <= 0 {
		t.Errorf("stage times not recorded: order %d symbolic %d", sym.OrderNs, sym.SymbolicNs)
	}

	AMDMinOrder = 1 << 30 // force MinDegree
	sym = Analyze(a, MinimumDegree)
	want = MinDegree(a)
	for i := range want {
		if sym.Perm[i] != want[i] {
			t.Fatalf("Analyze below threshold did not use MinDegree (pos %d)", i)
		}
	}
}
