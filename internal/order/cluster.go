package order

// ClusterGreedy partitions the items 0..m-1 into exactly k clusters by
// deterministic greedy agglomeration: every item starts as its own
// cluster, and while more than k clusters remain the pair with the
// largest inter-cluster weight merges. Inter-cluster weight is single
// linkage (the maximum pairwise weight between members), ties break
// toward the lexicographically lowest index pair, and a merge absorbs
// the higher-indexed cluster into the lower-indexed one — so the result
// is a pure function of (m, k, weight) with no dependence on map order,
// goroutine count, or the sign structure of ties.
//
// The multi-expansion-point reduction uses it to cluster ports by
// electrical proximity on the conductance graph (weight = normalized
// |A′_ij| coupling); weight must be symmetric in its arguments and is
// only ever called with i < j. Weights that are zero or negative still
// merge when needed to reach k — the partition is total.
//
// Clusters are returned with members ascending, ordered by their lowest
// member. k < 1 is treated as 1; k >= m returns singletons.
func ClusterGreedy(m, k int, weight func(i, j int) float64) [][]int {
	if m <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	// Dense inter-cluster weight matrix, indexed by cluster root (the
	// lowest original member). w[a][b] with a < b is live while both
	// roots are active.
	w := make([][]float64, m)
	for i := 0; i < m; i++ {
		w[i] = make([]float64, m)
		for j := i + 1; j < m; j++ {
			w[i][j] = weight(i, j)
		}
	}
	active := make([]bool, m)
	members := make([][]int, m)
	for i := range active {
		active[i] = true
		members[i] = []int{i}
	}
	for remaining := m; remaining > k; remaining-- {
		// Scan for the best active pair; strict > keeps the first (lowest)
		// pair on ties.
		ba, bb := -1, -1
		best := 0.0
		for a := 0; a < m; a++ {
			if !active[a] {
				continue
			}
			for b := a + 1; b < m; b++ {
				if !active[b] {
					continue
				}
				if ba < 0 || w[a][b] > best {
					ba, bb, best = a, b, w[a][b]
				}
			}
		}
		// Absorb bb into ba: single-linkage update against every other
		// active root, then retire bb.
		for c := 0; c < m; c++ {
			if !active[c] || c == ba || c == bb {
				continue
			}
			lo, hi := ba, c
			if hi < lo {
				lo, hi = hi, lo
			}
			clo, chi := bb, c
			if chi < clo {
				clo, chi = chi, clo
			}
			if w[clo][chi] > w[lo][hi] {
				w[lo][hi] = w[clo][chi]
			}
		}
		members[ba] = append(members[ba], members[bb]...)
		members[bb] = nil
		active[bb] = false
	}
	out := make([][]int, 0, k)
	for i := 0; i < m; i++ {
		if active[i] {
			sortInts(members[i])
			out = append(out, members[i])
		}
	}
	return out
}

// sortInts is an insertion sort: cluster member lists are short and the
// package avoids pulling in sort for one call site.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
