package order

import (
	"math/rand"
	"testing"
)

func clusterInvariants(t *testing.T, m int, clusters [][]int) {
	t.Helper()
	seen := make([]bool, m)
	prevLow := -1
	for ci, cl := range clusters {
		if len(cl) == 0 {
			t.Fatalf("cluster %d is empty", ci)
		}
		for i, v := range cl {
			if v < 0 || v >= m {
				t.Fatalf("cluster %d holds out-of-range member %d", ci, v)
			}
			if seen[v] {
				t.Fatalf("member %d appears twice", v)
			}
			seen[v] = true
			if i > 0 && cl[i-1] >= v {
				t.Fatalf("cluster %d members not ascending: %v", ci, cl)
			}
		}
		if cl[0] <= prevLow {
			t.Fatalf("clusters not ordered by lowest member: %v", clusters)
		}
		prevLow = cl[0]
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("member %d missing from every cluster", v)
		}
	}
}

// TestClusterGreedyMergesByWeight pins the single-linkage behavior on a
// hand-checkable instance: two tight pairs and an outlier must collapse
// into exactly those groups.
func TestClusterGreedyMergesByWeight(t *testing.T) {
	t.Parallel()
	// Weights: {0,1} and {2,4} are tight, 3 is far from everyone.
	w := [][]float64{
		{0, 10, 1, 0.1, 1},
		{10, 0, 1, 0.1, 1},
		{1, 1, 0, 0.1, 9},
		{0.1, 0.1, 0.1, 0, 0.1},
		{1, 1, 9, 0.1, 0},
	}
	got := ClusterGreedy(5, 3, func(i, j int) float64 { return w[i][j] })
	clusterInvariants(t, 5, got)
	want := [][]int{{0, 1}, {2, 4}, {3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for ci := range want {
		if len(got[ci]) != len(want[ci]) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want[ci] {
			if got[ci][i] != want[ci][i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

// TestClusterGreedyEdges pins the degenerate shapes: k clamped to
// [1, m], empty input, and the k ≥ m identity.
func TestClusterGreedyEdges(t *testing.T) {
	t.Parallel()
	if got := ClusterGreedy(0, 4, nil); got != nil {
		t.Fatalf("m=0 must return nil, got %v", got)
	}
	flat := func(i, j int) float64 { return 1 }
	one := ClusterGreedy(4, 0, flat)
	clusterInvariants(t, 4, one)
	if len(one) != 1 || len(one[0]) != 4 {
		t.Fatalf("k=0 must clamp to one cluster, got %v", one)
	}
	ident := ClusterGreedy(3, 7, flat)
	clusterInvariants(t, 3, ident)
	if len(ident) != 3 {
		t.Fatalf("k>m must keep singletons, got %v", ident)
	}
}

// TestClusterGreedyInvariantsRandom fuzzes partition invariants: every
// member appears exactly once, clusters are ascending and ordered by
// lowest member, and the requested count is hit exactly.
func TestClusterGreedyInvariantsRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(m)
		w := make([][]float64, m)
		for i := range w {
			w[i] = make([]float64, m)
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				w[i][j] = rng.Float64()
				w[j][i] = w[i][j]
			}
		}
		got := ClusterGreedy(m, k, func(i, j int) float64 { return w[i][j] })
		clusterInvariants(t, m, got)
		if len(got) != k {
			t.Fatalf("trial %d: got %d clusters, want %d", trial, len(got), k)
		}
	}
}
