// Package order provides fill-reducing orderings (minimum degree, reverse
// Cuthill–McKee) and the symbolic analysis (elimination tree, column
// counts) that drive the sparse Cholesky and LDLᵀ factorizations used by
// the PACT reduction.
package order

import (
	"fmt"
	"time"

	"repro/internal/sparse"
)

// Method selects the fill-reducing ordering used by Analyze.
type Method int

const (
	// MinimumDegree orders by quotient-graph minimum external degree with
	// element absorption; the default, best for the strongly connected 3-D
	// meshes the paper targets. At order >= AMDMinOrder Analyze dispatches
	// to the supervariable AMD variant; below it the simpler MinDegree
	// runs and doubles as AMD's correctness oracle.
	MinimumDegree Method = iota
	// RCM orders by reverse Cuthill–McKee from a pseudo-peripheral start
	// node, producing banded factors; kept as a robust cross-check.
	RCM
	// Natural keeps the input ordering. Useful in tests and for matrices
	// that are already well ordered (e.g. ladders).
	Natural
)

func (m Method) String() string {
	switch m {
	case MinimumDegree:
		return "minimum-degree"
	case RCM:
		return "rcm"
	case Natural:
		return "natural"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Symbolic holds the result of the symbolic Cholesky analysis of a
// symmetric matrix: the fill-reducing permutation, the elimination tree of
// the permuted matrix, and the column pointers of its Cholesky factor L.
type Symbolic struct {
	N      int
	Perm   []int // new index -> old index
	Inv    []int // old index -> new index
	Parent []int // elimination tree of the permuted matrix
	ColPtr []int // column pointers of L (length N+1)

	// Stage wall times, filled by Analyze: the fill-reducing ordering
	// itself, and the symbolic analysis (pattern permute, elimination
	// tree, column counts) that follows it.
	OrderNs    int64
	SymbolicNs int64
}

// LNNZ returns the number of nonzeros in the Cholesky factor (including
// the diagonal).
func (s *Symbolic) LNNZ() int { return s.ColPtr[s.N] }

// Analyze computes a fill-reducing ordering of the symmetric pattern a
// (full pattern, values ignored) and the symbolic factorization of the
// permuted matrix. The pattern must be structurally symmetric.
func Analyze(a *sparse.CSR, method Method) *Symbolic {
	if a.Rows != a.Cols {
		panic("order: Analyze requires a square matrix")
	}
	n := a.Rows
	// Wall-clock reads here feed only the OrderNs/SymbolicNs stage
	// accounting; the permutation and symbolic structure are pure
	// functions of the pattern.
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	t0 := time.Now()
	var perm []int
	switch method {
	case MinimumDegree:
		if n >= AMDMinOrder {
			perm = AMD(a)
		} else {
			perm = MinDegree(a)
		}
	case RCM:
		perm = ReverseCuthillMcKee(a)
	case Natural:
		perm = sparse.IdentityPerm(n)
	default:
		panic("order: unknown ordering method")
	}
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	t1 := time.Now()
	ap := a.PermuteSym(perm)
	upper := ap.UpperCSC()
	parent := ETree(upper)
	counts := ColCounts(upper, parent)
	colPtr := make([]int, n+1)
	for j := 0; j < n; j++ {
		colPtr[j+1] = colPtr[j] + counts[j]
	}
	//lint:ignore nondet stage wall-time accounting only, never feeds numeric results
	end := time.Now()
	return &Symbolic{
		N:          n,
		Perm:       perm,
		Inv:        sparse.InversePerm(perm),
		Parent:     parent,
		ColPtr:     colPtr,
		OrderNs:    t1.Sub(t0).Nanoseconds(),
		SymbolicNs: end.Sub(t1).Nanoseconds(),
	}
}

// ETree computes the elimination tree of a symmetric matrix given its
// upper triangle (including the diagonal) in CSC form. parent[j] is the
// parent of column j, or -1 for a root.
func ETree(a *sparse.CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			// Traverse from row i up the partially built tree, compressing
			// paths through the ancestor array as we go.
			for i := a.Row[p]; i != -1 && i < k; {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// EReach computes the nonzero pattern of row k of the Cholesky factor L
// (excluding the diagonal) given the upper triangle of A in CSC form and
// the elimination tree. The pattern is returned in s[top:n] in topological
// order (deepest column first). w is an integer workspace of length n,
// initialized to -1 before the first call; EReach marks visited nodes with
// the value k, so the same workspace can be reused across increasing
// k = 0..n-1 without clearing.
func EReach(a *sparse.CSC, k int, parent []int, s, w []int) int {
	n := a.Cols
	top := n
	w[k] = k
	for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
		i := a.Row[p]
		if i > k {
			continue
		}
		// Walk up the elimination tree until hitting a marked node,
		// recording the path, then flush it to s in reverse.
		length := 0
		for ; w[i] != k; i = parent[i] {
			s[length] = i
			length++
			w[i] = k
		}
		for length > 0 {
			length--
			top--
			s[top] = s[length]
		}
	}
	return top
}

// ColCounts returns the number of nonzeros in each column of L (including
// the diagonal) by accumulating the row patterns from EReach. This is
// O(|L|), which is fine at the scales this repository targets and keeps
// the code obviously correct.
func ColCounts(a *sparse.CSC, parent []int) []int {
	n := a.Cols
	counts := make([]int, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		counts[k]++ // diagonal
		top := EReach(a, k, parent, s, w)
		for ; top < n; top++ {
			counts[s[top]]++
		}
	}
	return counts
}
