package order

import "repro/internal/sparse"

// MinDegree computes a fill-reducing permutation (new index -> old index)
// of the symmetric pattern a using a quotient-graph minimum-degree
// algorithm with approximate external degrees and element absorption, in
// the style of Amestoy/Davis/Duff AMD. Values in a are ignored; the
// pattern must be structurally symmetric.
//
// The quotient graph represents the fill produced by elimination
// implicitly: eliminating variable k turns it into an "element" whose
// boundary is the set of still-alive variables adjacent to k either
// directly or through previously formed elements. Elements adjacent to k
// are absorbed into the new element, which keeps the representation no
// larger than the original graph plus one boundary list per pivot.
func MinDegree(a *sparse.CSR) []int {
	n := a.Rows
	if n == 0 {
		return nil
	}
	// Variable-variable adjacency (alive entries only; purged as the
	// algorithm runs) and variable-element adjacency (purged lazily).
	varAdj := make([][]int32, n)
	elAdj := make([][]int32, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		adj := make([]int32, 0, len(cols))
		for _, j := range cols {
			if j != i {
				adj = append(adj, int32(j))
			}
		}
		varAdj[i] = adj
	}
	bound := make([][]int32, n) // element boundary lists, indexed by pivot
	alive := make([]bool, n)    // variable alive?
	elAlive := make([]bool, n)  // element alive (not absorbed)?
	for i := range alive {
		alive[i] = true
	}

	// Degree bucket lists.
	head := make([]int, n+1)
	next := make([]int, n)
	prev := make([]int, n)
	degree := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	insert := func(i, d int) {
		degree[i] = d
		next[i] = head[d]
		prev[i] = -1
		if head[d] != -1 {
			prev[head[d]] = i
		}
		head[d] = i
	}
	remove := func(i int) {
		d := degree[i]
		if prev[i] != -1 {
			next[prev[i]] = next[i]
		} else {
			head[d] = next[i]
		}
		if next[i] != -1 {
			prev[next[i]] = prev[i]
		}
	}
	for i := 0; i < n; i++ {
		insert(i, len(varAdj[i]))
	}
	minDeg := 0

	mark := make([]int, n) // visitation marks for L_k construction
	mv := 0
	wStamp := make([]int, n) // per-element |L_e \ L_k| counters
	wVal := make([]int, n)
	stamp := 0
	lk := make([]int32, 0, 256)

	perm := make([]int, 0, n)
	for len(perm) < n {
		for head[minDeg] == -1 {
			minDeg++
		}
		k := head[minDeg]
		remove(k)
		alive[k] = false
		perm = append(perm, k)

		// Build L_k: alive variables reachable from k directly or through
		// k's adjacent elements. Those elements are absorbed into k.
		mv++
		mark[k] = mv
		lk = lk[:0]
		for _, j := range varAdj[k] {
			if alive[j] && mark[j] != mv {
				mark[j] = mv
				lk = append(lk, j)
			}
		}
		for _, e := range elAdj[k] {
			if !elAlive[e] {
				continue
			}
			for _, j := range bound[e] {
				if alive[j] && mark[j] != mv {
					mark[j] = mv
					lk = append(lk, j)
				}
			}
			elAlive[e] = false
			bound[e] = nil
		}
		varAdj[k] = nil
		elAdj[k] = nil
		if len(lk) == 0 {
			continue
		}
		bound[k] = append([]int32(nil), lk...)
		elAlive[k] = true

		// Pass 1: purge dead elements from each boundary variable's element
		// list and compute w[e] = |L_e \ L_k| for every element touching
		// L_k, using the stamp-reset trick so each element is initialized
		// exactly once per pivot.
		stamp++
		for _, i := range lk {
			el := elAdj[i][:0]
			for _, e := range elAdj[i] {
				if !elAlive[e] {
					continue
				}
				el = append(el, e)
				if wStamp[e] != stamp {
					wStamp[e] = stamp
					wVal[e] = len(bound[e])
				}
				wVal[e]--
			}
			elAdj[i] = el
		}

		// Pass 2: purge variable adjacencies (edges inside L_k are now
		// represented by element k), absorb elements whose boundary is
		// contained in L_k, and recompute approximate external degrees
		//   d_i = |A_i \ L_k| + (|L_k| - 1) + sum over other elements of
		//         |L_e \ L_k|.
		for _, i := range lk {
			va := varAdj[i][:0]
			for _, j := range varAdj[i] {
				if alive[j] && mark[j] != mv {
					va = append(va, j)
				}
			}
			varAdj[i] = va

			elSum := 0
			el := elAdj[i][:0]
			for _, e := range elAdj[i] {
				if !elAlive[e] {
					continue
				}
				if wVal[e] == 0 {
					// L_e is a subset of L_k: absorb e into k.
					elAlive[e] = false
					bound[e] = nil
					continue
				}
				el = append(el, e)
				elSum += wVal[e]
			}
			el = append(el, int32(k))
			elAdj[i] = el

			d := len(va) + len(lk) - 1 + elSum
			if d > n-1 {
				d = n - 1
			}
			remove(int(i))
			insert(int(i), d)
			if d < minDeg {
				minDeg = d
			}
		}
	}
	return perm
}
