package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// denseSymbolicFill computes the exact Cholesky factor fill (nonzeros in L
// including the diagonal) of a symmetric pattern by brute-force
// right-looking symbolic elimination. It is the reference the fast
// etree-based counts are checked against.
func denseSymbolicFill(a *sparse.CSR) int {
	n := a.Rows
	b := make([][]bool, n)
	for i := range b {
		b[i] = make([]bool, n)
		cols, _ := a.Row(i)
		for _, j := range cols {
			b[i][j] = true
		}
	}
	lnz := 0
	rows := make([]int, 0, n)
	for j := 0; j < n; j++ {
		lnz++ // diagonal
		rows = rows[:0]
		for i := j + 1; i < n; i++ {
			if b[i][j] {
				rows = append(rows, i)
			}
		}
		lnz += len(rows)
		for x := 0; x < len(rows); x++ {
			for y := x + 1; y < len(rows); y++ {
				b[rows[x]][rows[y]] = true
				b[rows[y]][rows[x]] = true
			}
		}
	}
	return lnz
}

func pathGraph(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	return b.Build()
}

func grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	b := sparse.NewBuilder(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			b.Add(id(x, y), id(x, y), 4)
			if x+1 < nx {
				b.AddSym(id(x, y), id(x+1, y), -1)
			}
			if y+1 < ny {
				b.AddSym(id(x, y), id(x, y+1), -1)
			}
		}
	}
	return b.Build()
}

func randomSymPattern(rng *rand.Rand, n, extra int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j, 1)
		}
	}
	return b.Build()
}

func TestETreePath(t *testing.T) {
	// A tridiagonal matrix has the path 0->1->2->... as elimination tree.
	a := pathGraph(6)
	parent := ETree(a.UpperCSC())
	for i := 0; i < 5; i++ {
		if parent[i] != i+1 {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[5] != -1 {
		t.Errorf("root parent = %d, want -1", parent[5])
	}
}

func TestETreeArrow(t *testing.T) {
	// Arrowhead matrix: every node connected to the last; the tree is a
	// star with root n-1 only for the first column; elimination chains the
	// fill: parents become i+1 after fill-in of the dense trailing block.
	n := 5
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i < n-1 {
			b.AddSym(i, n-1, -1)
		}
	}
	parent := ETree(b.Build().UpperCSC())
	for i := 0; i < n-1; i++ {
		if parent[i] != n-1 {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], n-1)
		}
	}
}

func TestColCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		a := randomSymPattern(rng, n, 2*n)
		upper := a.UpperCSC()
		parent := ETree(upper)
		counts := ColCounts(upper, parent)
		total := 0
		for _, c := range counts {
			total += c
		}
		want := denseSymbolicFill(a)
		if total != want {
			t.Fatalf("trial %d: ColCounts total = %d, brute force = %d", trial, total, want)
		}
	}
}

func validPerm(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

func TestRCMIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		a := randomSymPattern(rng, n, 3*n)
		if !validPerm(ReverseCuthillMcKee(a), n) {
			t.Fatalf("trial %d: RCM did not return a permutation", trial)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// Shuffle a path graph; RCM must restore a small bandwidth.
	n := 60
	rng := rand.New(rand.NewSource(23))
	shuffle := rng.Perm(n)
	a := pathGraph(n).PermuteSym(shuffle)
	perm := ReverseCuthillMcKee(a)
	ap := a.PermuteSym(perm)
	bw := 0
	for i := 0; i < n; i++ {
		cols, _ := ap.Row(i)
		for _, j := range cols {
			if d := i - j; d > bw {
				bw = d
			}
			if d := j - i; d > bw {
				bw = d
			}
		}
	}
	if bw > 2 {
		t.Errorf("RCM bandwidth on shuffled path = %d, want <= 2", bw)
	}
}

func TestMinDegreeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		a := randomSymPattern(rng, n, 3*n)
		if !validPerm(MinDegree(a), n) {
			t.Fatalf("trial %d: MinDegree did not return a permutation", trial)
		}
	}
}

func TestMinDegreeHandlesDisconnected(t *testing.T) {
	// Two disjoint paths plus isolated vertices.
	n := 12
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	for i := 0; i < 4; i++ {
		b.AddSym(i, i+1, 1)
	}
	for i := 6; i < 9; i++ {
		b.AddSym(i, i+1, 1)
	}
	a := b.Build()
	if !validPerm(MinDegree(a), n) {
		t.Fatal("MinDegree failed on disconnected graph")
	}
}

func TestMinDegreeBeatsNaturalOnGrid(t *testing.T) {
	// Shuffled 2-D grid: minimum degree must produce substantially less
	// fill than the shuffled natural order, and no more than ~2x the
	// natural (banded) order of the unshuffled grid.
	g := grid2D(14, 14)
	rng := rand.New(rand.NewSource(25))
	shuffled := g.PermuteSym(rng.Perm(g.Rows))
	fillMD := Analyze(shuffled, MinimumDegree).LNNZ()
	fillNat := Analyze(shuffled, Natural).LNNZ()
	if fillMD >= fillNat {
		t.Errorf("MD fill %d >= shuffled-natural fill %d", fillMD, fillNat)
	}
	banded := Analyze(g, Natural).LNNZ()
	if fillMD > 2*banded {
		t.Errorf("MD fill %d > 2x banded fill %d; ordering quality regression", fillMD, banded)
	}
}

func TestAnalyzeLNNZConsistent(t *testing.T) {
	// LNNZ from Analyze must equal brute-force fill of the permuted
	// pattern for every method.
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(16)
		a := randomSymPattern(rng, n, 2*n)
		for _, m := range []Method{Natural, RCM, MinimumDegree} {
			sym := Analyze(a, m)
			want := denseSymbolicFill(a.PermuteSym(sym.Perm))
			if sym.LNNZ() != want {
				t.Fatalf("trial %d method %v: LNNZ = %d, want %d", trial, m, sym.LNNZ(), want)
			}
		}
	}
}

func TestAnalyzePermProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := randomSymPattern(rng, n, 2*n)
		sym := Analyze(a, MinimumDegree)
		if !validPerm(sym.Perm, n) {
			return false
		}
		// Inv must invert Perm, and LNNZ is at least n (diagonal).
		for i, p := range sym.Perm {
			if sym.Inv[p] != i {
				return false
			}
		}
		return sym.LNNZ() >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMethodString(t *testing.T) {
	if MinimumDegree.String() != "minimum-degree" || RCM.String() != "rcm" || Natural.String() != "natural" {
		t.Error("Method.String mismatch")
	}
}
