package order

import (
	"sort"

	"repro/internal/sparse"
)

// ReverseCuthillMcKee returns a bandwidth-reducing permutation (new index
// -> old index) of the symmetric pattern a. Each connected component is
// ordered by breadth-first search from a pseudo-peripheral node, visiting
// neighbours in increasing-degree order, and the final ordering is
// reversed (RCM).
func ReverseCuthillMcKee(a *sparse.CSR) []int {
	n := a.Rows
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		d := 0
		for _, j := range cols {
			if j != i {
				d++
			}
		}
		degree[i] = d
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	neighbors := make([]int, 0, 64)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(a, start, degree)
		queue = queue[:0]
		queue = append(queue, root)
		visited[root] = true
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			order = append(order, u)
			cols, _ := a.Row(u)
			neighbors = neighbors[:0]
			for _, v := range cols {
				if v != u && !visited[v] {
					visited[v] = true
					neighbors = append(neighbors, v)
				}
			}
			sort.Slice(neighbors, func(x, y int) bool { return degree[neighbors[x]] < degree[neighbors[y]] })
			queue = append(queue, neighbors...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// pseudoPeripheral finds an approximate peripheral node of the component
// containing start by repeated BFS to the farthest minimum-degree node
// (the George–Liu heuristic).
func pseudoPeripheral(a *sparse.CSR, start int, degree []int) int {
	level := make(map[int]int)
	root := start
	lastEcc := -1
	for iter := 0; iter < 10; iter++ {
		for k := range level {
			delete(level, k)
		}
		frontier := []int{root}
		level[root] = 0
		ecc := 0
		var lastLevel []int
		for len(frontier) > 0 {
			lastLevel = frontier
			var next []int
			for _, u := range frontier {
				cols, _ := a.Row(u)
				for _, v := range cols {
					if v == u {
						continue
					}
					if _, ok := level[v]; !ok {
						level[v] = level[u] + 1
						ecc = level[v]
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		if ecc <= lastEcc {
			break
		}
		lastEcc = ecc
		// Pick the minimum-degree node in the last BFS level as the next
		// root candidate.
		best := lastLevel[0]
		for _, v := range lastLevel {
			if degree[v] < degree[best] {
				best = v
			}
		}
		root = best
	}
	return root
}
