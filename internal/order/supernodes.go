package order

import "fmt"

// SupernodeOptions tunes the supernode partition used by the blocked
// (supernodal) Cholesky kernels.
type SupernodeOptions struct {
	// MaxWidth caps the number of columns per supernode (panel width).
	// Zero means DefaultMaxWidth. Wider panels amortize more work into
	// dense rank-k updates but grow the per-panel scratch.
	MaxWidth int
	// RelaxFill is the relaxed-amalgamation budget: a column whose
	// structure is *almost* nested in the running panel may still be
	// merged as long as the explicitly stored zeros stay at or below
	// RelaxFill times the panel's entry count. Zero fill budget yields
	// exactly the fundamental partition. Negative disables amalgamation
	// (same result as zero; kept for clarity in tests).
	RelaxFill float64
}

// DefaultMaxWidth is the panel-width cap used when
// SupernodeOptions.MaxWidth is zero: wide enough for rank-k updates to
// run at dense-kernel speed, small enough that a panel's diagonal block
// (MaxWidth² floats) stays cache resident.
const DefaultMaxWidth = 48

// DefaultRelaxFill is the relaxed-amalgamation budget used by the
// factorization packages: up to 12.5% of a panel's entries may be
// explicit zeros if that lets neighbouring fundamental supernodes fuse
// into one dense panel.
const DefaultRelaxFill = 0.125

func (o SupernodeOptions) withDefaults() SupernodeOptions {
	if o.MaxWidth <= 0 {
		o.MaxWidth = DefaultMaxWidth
	}
	if o.RelaxFill < 0 {
		o.RelaxFill = 0
	}
	return o
}

// Supernodes is a partition of the factor's columns into contiguous
// panels, each of which is stored and factored as one dense trapezoid by
// the supernodal kernels. Within a panel the elimination tree is a chain
// (Parent[j] = j+1 for all but the last column), so the row structure of
// every column is a suffix of the panel's row list — the invariant the
// dense storage relies on.
type Supernodes struct {
	// Super holds the first column of each supernode plus the terminating
	// N, so supernode s spans columns [Super[s], Super[s+1]).
	Super []int
	// ColToSuper maps each column to its supernode.
	ColToSuper []int
	// Fill counts the explicitly stored zeros the relaxed amalgamation
	// introduced (zero for a fundamental partition).
	Fill int
}

// NSuper returns the number of supernodes.
func (sn *Supernodes) NSuper() int { return len(sn.Super) - 1 }

// Width returns the column count of supernode s.
func (sn *Supernodes) Width(s int) int { return sn.Super[s+1] - sn.Super[s] }

// FindSupernodes partitions the columns of the symbolic factor into
// supernodes. Column j extends the running panel [s, j) when the panel
// stays a chain of the elimination tree (Parent[j-1] == j) and either
//
//   - the structures nest exactly — count[j-1] == count[j] + 1, the
//     fundamental-supernode condition: struct(L(:,j-1)) \ {j-1} equals
//     struct(L(:,j)), so the panel gains no stored zeros — or
//   - the merge is "relaxed": the explicit zeros of the widened panel
//     stay within opt.RelaxFill of its entries.
//
// Both cases respect opt.MaxWidth. The scan is a single deterministic
// left-to-right pass, so the partition depends only on the symbolic
// structure and the options.
func (sym *Symbolic) FindSupernodes(opt SupernodeOptions) *Supernodes {
	opt = opt.withDefaults()
	n := sym.N
	count := make([]int, n) // nnz of column j of L, incl. diagonal
	for j := 0; j < n; j++ {
		count[j] = sym.ColPtr[j+1] - sym.ColPtr[j]
	}
	sn := &Supernodes{ColToSuper: make([]int, n)}
	sn.Super = append(sn.Super, 0)
	start := 0
	liveNNZ := 0    // Σ count[i] for i in the running panel
	panelZeros := 0 // explicit zeros of the running panel
	for j := 0; j < n; j++ {
		if j > start {
			w := j - start // panel width before the candidate extension
			extend := sym.Parent[j-1] == j && w < opt.MaxWidth
			if extend {
				// The widened panel [start..j] stores, per column i, the
				// in-panel rows {i..j} plus the count[j]−1 below-diagonal
				// rows of its (new) last column; whatever exceeds the
				// columns' own structures is explicitly stored zero. The
				// fundamental condition count[j-1] == count[j]+1 keeps
				// the zero count unchanged; otherwise the merge must fit
				// the relaxed-fill budget.
				W := w + 1
				entries := W*(W+1)/2 + W*(count[j]-1)
				zeros := entries - liveNNZ - count[j]
				if count[j-1] != count[j]+1 {
					extend = zeros <= int(opt.RelaxFill*float64(entries))
				}
				if extend {
					panelZeros = zeros
				}
			}
			if !extend {
				sn.Fill += panelZeros
				sn.Super = append(sn.Super, j)
				start = j
				liveNNZ = 0
				panelZeros = 0
			}
		}
		liveNNZ += count[j]
		sn.ColToSuper[j] = len(sn.Super) - 1
	}
	if n > 0 {
		sn.Fill += panelZeros
		sn.Super = append(sn.Super, n)
	}
	return sn
}

// Validate checks the structural invariants of a partition against its
// symbolic analysis: contiguous coverage, consistent ColToSuper, the
// chain property inside every panel, and structure nesting
// (count[j-1] <= count[j]+1 within a panel — equality everywhere exactly
// when the partition is fundamental). It is used by tests and by the
// factorization package's tests.
func (sn *Supernodes) Validate(sym *Symbolic) error {
	n := sym.N
	if len(sn.ColToSuper) != n {
		return fmt.Errorf("order: ColToSuper length %d, want %d", len(sn.ColToSuper), n)
	}
	if n == 0 {
		return nil
	}
	if sn.Super[0] != 0 || sn.Super[len(sn.Super)-1] != n {
		return fmt.Errorf("order: supernode boundaries do not cover [0,%d)", n)
	}
	for s := 0; s < sn.NSuper(); s++ {
		lo, hi := sn.Super[s], sn.Super[s+1]
		if lo >= hi {
			return fmt.Errorf("order: empty supernode %d", s)
		}
		for j := lo; j < hi; j++ {
			if sn.ColToSuper[j] != s {
				return fmt.Errorf("order: column %d maps to supernode %d, want %d", j, sn.ColToSuper[j], s)
			}
			if j > lo {
				if sym.Parent[j-1] != j {
					return fmt.Errorf("order: supernode %d is not an etree chain at column %d", s, j)
				}
				// parent[j-1] == j implies struct(j-1)\{j-1} ⊆ struct(j),
				// so count[j-1] <= count[j]+1; equality is the
				// fundamental (zero-fill) case.
				cPrev := sym.ColPtr[j] - sym.ColPtr[j-1]
				cCur := sym.ColPtr[j+1] - sym.ColPtr[j]
				if cPrev > cCur+1 {
					return fmt.Errorf("order: column %d structure not nested in supernode %d", j, s)
				}
			}
		}
	}
	return nil
}
