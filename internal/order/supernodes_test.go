package order

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// rcMeshPattern builds the symmetric pattern of an nx×ny RC-mesh
// conductance matrix (5-point grid plus a random sprinkle of extra
// coupling edges), the structural class the factorization sees.
func rcMeshPattern(rng *rand.Rand, nx, ny, extra int) *sparse.CSR {
	n := nx * ny
	idx := func(x, y int) int { return y*nx + x }
	b := sparse.NewBuilder(n, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			b.Add(i, i, 4)
			if x+1 < nx {
				b.AddSym(i, idx(x+1, y), -1)
			}
			if y+1 < ny {
				b.AddSym(i, idx(x, y+1), -1)
			}
		}
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j, -0.25)
		}
	}
	return b.Build()
}

// TestFundamentalSupernodes validates the zero-fill partition on random
// RC-mesh patterns under every ordering: the structural invariants hold,
// the partition reports no fill, and every boundary is maximal — the
// next column genuinely fails the fundamental condition (or the width
// cap), so no two adjacent supernodes could have been fused for free.
func TestFundamentalSupernodes(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 12; trial++ {
		nx, ny := 2+rng.Intn(9), 2+rng.Intn(9)
		a := rcMeshPattern(rng, nx, ny, rng.Intn(3*nx*ny))
		for _, m := range []Method{Natural, RCM, MinimumDegree} {
			sym := Analyze(a, m)
			sn := sym.FindSupernodes(SupernodeOptions{RelaxFill: 0})
			if err := sn.Validate(sym); err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			if sn.Fill != 0 {
				t.Fatalf("trial %d %v: fundamental partition reports fill %d", trial, m, sn.Fill)
			}
			count := func(j int) int { return sym.ColPtr[j+1] - sym.ColPtr[j] }
			for s := 0; s < sn.NSuper(); s++ {
				lo, hi := sn.Super[s], sn.Super[s+1]
				// Inside: the exact fundamental condition per merged pair.
				for j := lo + 1; j < hi; j++ {
					if sym.Parent[j-1] != j || count(j-1) != count(j)+1 {
						t.Fatalf("trial %d %v: columns %d,%d merged without the fundamental condition",
							trial, m, j-1, j)
					}
				}
				// Boundary: maximal unless the width cap forced the split.
				if hi < sym.N && hi-lo < DefaultMaxWidth &&
					sym.Parent[hi-1] == hi && count(hi-1) == count(hi)+1 {
					t.Fatalf("trial %d %v: supernode %d not maximal at column %d", trial, m, s, hi)
				}
			}
		}
	}
}

// TestRelaxedSupernodes checks the amalgamated partition: invariants
// still hold, panels never exceed the width cap, the reported fill
// matches a direct recount from the column structures, and the budget is
// respected per panel.
func TestRelaxedSupernodes(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 12; trial++ {
		nx, ny := 2+rng.Intn(9), 2+rng.Intn(9)
		a := rcMeshPattern(rng, nx, ny, rng.Intn(2*nx*ny))
		for _, m := range []Method{Natural, RCM, MinimumDegree} {
			sym := Analyze(a, m)
			opt := SupernodeOptions{MaxWidth: 8, RelaxFill: 0.2}
			sn := sym.FindSupernodes(opt)
			if err := sn.Validate(sym); err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			fund := sym.FindSupernodes(SupernodeOptions{MaxWidth: 8, RelaxFill: 0})
			if sn.NSuper() > fund.NSuper() {
				t.Fatalf("trial %d %v: amalgamation grew the partition: %d > %d",
					trial, m, sn.NSuper(), fund.NSuper())
			}
			count := func(j int) int { return sym.ColPtr[j+1] - sym.ColPtr[j] }
			totalFill := 0
			for s := 0; s < sn.NSuper(); s++ {
				lo, hi := sn.Super[s], sn.Super[s+1]
				w := hi - lo
				if w > opt.MaxWidth {
					t.Fatalf("trial %d %v: supernode %d width %d exceeds cap %d", trial, m, s, w, opt.MaxWidth)
				}
				// Panel entries: column i stores rows {i..hi-1} plus the
				// below-diagonal rows of the last column.
				entries := w*(w+1)/2 + w*(count(hi-1)-1)
				nnz := 0
				for j := lo; j < hi; j++ {
					nnz += count(j)
				}
				zeros := entries - nnz
				if zeros < 0 {
					t.Fatalf("trial %d %v: supernode %d negative fill %d", trial, m, s, zeros)
				}
				if w > 1 && zeros > int(opt.RelaxFill*float64(entries)) {
					t.Fatalf("trial %d %v: supernode %d fill %d exceeds budget of %d entries",
						trial, m, s, zeros, entries)
				}
				totalFill += zeros
			}
			if totalFill != sn.Fill {
				t.Fatalf("trial %d %v: Fill = %d, recount = %d", trial, m, sn.Fill, totalFill)
			}
		}
	}
}

// TestSupernodesEdgeCases covers the trivial shapes: empty, 1×1, and a
// diagonal matrix (every column its own supernode, or merged only by
// relaxation... a diagonal matrix has no etree edges, so never merged).
func TestSupernodesEdgeCases(t *testing.T) {
	t.Parallel()
	empty := &Symbolic{N: 0, ColPtr: []int{0}}
	if sn := empty.FindSupernodes(SupernodeOptions{}); sn.NSuper() != 0 {
		t.Fatalf("empty matrix: %d supernodes", sn.NSuper())
	}
	b := sparse.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		b.Add(i, i, 1)
	}
	sym := Analyze(b.Build(), Natural)
	sn := sym.FindSupernodes(SupernodeOptions{RelaxFill: 0.5})
	if err := sn.Validate(sym); err != nil {
		t.Fatal(err)
	}
	if sn.NSuper() != 5 {
		t.Fatalf("diagonal matrix: %d supernodes, want 5 (no etree edges to merge along)", sn.NSuper())
	}
}

// TestSupernodesDenseChain: a fully dense SPD pattern is one chain with
// perfectly nested structures — a single supernode up to the width cap.
func TestSupernodesDenseChain(t *testing.T) {
	t.Parallel()
	n := 10
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				b.Add(i, i, float64(n))
			} else {
				b.Add(i, j, -0.5)
			}
		}
	}
	sym := Analyze(b.Build(), Natural)
	sn := sym.FindSupernodes(SupernodeOptions{RelaxFill: 0})
	if err := sn.Validate(sym); err != nil {
		t.Fatal(err)
	}
	if sn.NSuper() != 1 {
		t.Fatalf("dense pattern: %d supernodes, want 1", sn.NSuper())
	}
	capped := sym.FindSupernodes(SupernodeOptions{MaxWidth: 4, RelaxFill: 0})
	if got := capped.NSuper(); got != 3 {
		t.Fatalf("dense pattern with width cap 4: %d supernodes, want 3", got)
	}
}
