// Package pade implements the Padé-type congruence reduction the paper
// compares against (Kerns/Wemple/Yang ICCAD'95, the symmetric analogue of
// MPVL): after PACT's first transform, a block Krylov basis
// span{R′, E′R′, …, E′^{q−1}R′} is built with a fully orthogonalized
// block Lanczos process and the internal block is projected onto it.
// The projection matches moments of Y(s) rather than preserving exact
// poles, and — the crux of Section 4 of the paper — it must hold the
// whole n×(m·q) basis plus the dense n×m block R′ in memory and
// orthogonalize against all of it, which is why its memory and vector-op
// counts scale as O(m²)/O(m³) where LASO needs O(m)/O(m²).
package pade

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dense"
)

// Stats reports the cost of a Padé-congruence reduction in the units of
// the paper's Section 4.
type Stats struct {
	// MatVecs counts E′ applications.
	MatVecs int
	// PeakVectors is the maximum number of length-n vectors simultaneously
	// live: the R′ block plus the accumulated Krylov basis.
	PeakVectors int
	// BasisSize is the final Krylov basis dimension (≈ m·q).
	BasisSize int
	// Blocks is the number of block Lanczos steps performed.
	Blocks int
}

// Reduce performs the q-block Padé congruence reduction of sys. The
// options select the ordering and Transform-1 behaviour; FMax/Tol are not
// used for pole selection (the method keeps the whole projected pencil)
// but FMax must still be positive for option validation symmetry with
// core.Reduce.
func Reduce(sys *core.System, q int, opts core.Options) (*core.ReducedModel, *Stats, error) {
	if q < 1 {
		return nil, nil, fmt.Errorf("pade: need at least one block, got %d", q)
	}
	t, _, err := core.Transform1(sys, opts)
	if err != nil {
		return nil, nil, err
	}
	m, n := t.M, t.N
	stats := &Stats{}
	if n == 0 {
		return &core.ReducedModel{M: m, A: t.APrime, B: t.BPrime, R: dense.New(0, m)}, stats, nil
	}
	op := t.EOp()

	// Form R′ in full — the dense n×m block the Padé methods require.
	// RPrimeBlock solves the m port columns in parallel.
	rPrime := t.RPrimeBlock()
	stats.PeakVectors = m

	// Block Lanczos with full orthogonalization — the O(m²·q) vector
	// products the paper counts against the Padé-based methods.
	// Deflation is relative to each candidate's pre-orthogonalization
	// norm: Krylov blocks of E′ shrink by the pole time constants, so an
	// absolute threshold would deflate genuinely new directions.
	const deflTol = 1e-10
	var basis [][]float64
	block := make([][]float64, 0, m)
	addCandidate := func(v []float64, dst *[][]float64) {
		before := norm2(v)
		if before == 0 {
			return
		}
		orth(v, basis)
		orth(v, *dst)
		orth(v, basis)
		orth(v, *dst)
		if after := norm2(v); after > deflTol*before {
			scal(v, 1/after)
			*dst = append(*dst, v)
		}
	}
	for _, col := range rPrime {
		v := append([]float64(nil), col...)
		addCandidate(v, &block)
	}
	for b := 0; b < q && len(block) > 0; b++ {
		basis = append(basis, block...)
		stats.Blocks++
		if pv := m + len(basis) + len(block); pv > stats.PeakVectors {
			stats.PeakVectors = pv
		}
		if b == q-1 || len(basis) >= n {
			break
		}
		var next [][]float64
		for _, v := range block {
			w := make([]float64, n)
			op.Apply(w, v)
			stats.MatVecs++
			addCandidate(w, &next)
		}
		block = next
	}
	kk := len(basis)
	stats.BasisSize = kk

	// Project: Ẽ = Vᵀ E′ V and R̃ = Vᵀ R′.
	eTilde := dense.New(kk, kk)
	w := make([]float64, n)
	for j := 0; j < kk; j++ {
		op.Apply(w, basis[j])
		stats.MatVecs++
		for i := 0; i < kk; i++ {
			eTilde.Set(i, j, dot(basis[i], w))
		}
	}
	eTilde.Symmetrize()
	rTilde := dense.New(kk, m)
	for j := 0; j < m; j++ {
		for i := 0; i < kk; i++ {
			rTilde.Set(i, j, dot(basis[i], rPrime[j]))
		}
	}

	// Diagonalize the projected pencil into pole/residue form compatible
	// with core.ReducedModel.
	vals, vecs, err := dense.SymEig(eTilde.Clone(), true)
	if err != nil {
		return nil, nil, fmt.Errorf("pade: projected eigensolve: %w", err)
	}
	lamFloor := 0.0
	if kk > 0 {
		lamFloor = 1e-14 * math.Max(vals[kk-1], 0)
	}
	var lambda []float64
	var keep []int
	for i := kk - 1; i >= 0; i-- { // descending
		if vals[i] > lamFloor {
			lambda = append(lambda, vals[i])
			keep = append(keep, i)
		}
	}
	rk := dense.New(len(keep), m)
	for c, idx := range keep {
		for j := 0; j < m; j++ {
			s := 0.0
			for i := 0; i < kk; i++ {
				s += vecs.At(i, idx) * rTilde.At(i, j)
			}
			rk.Set(c, j, s)
		}
	}
	model := &core.ReducedModel{M: m, Lambda: lambda, A: t.APrime, B: t.BPrime, R: rk}
	return model, stats, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func scal(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func orth(v []float64, basis [][]float64) {
	for _, b := range basis {
		c := dot(b, v)
		if c == 0 {
			continue
		}
		for i := range v {
			v[i] -= c * b[i]
		}
	}
}
