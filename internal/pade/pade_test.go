package pade

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// ladderSystem builds an n-internal-node RC ladder with ports at both
// ends as a partitioned system.
func ladderSystem(nseg int, rtot, ctot float64) *core.System {
	// Nodes: 0 = left port, nseg = right port, 1..nseg-1 internal.
	tot := nseg + 1
	gseg := float64(nseg) / rtot
	cseg := ctot / float64(nseg)
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	for i := 0; i < nseg; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	for i := 1; i <= nseg; i++ {
		cb.Add(i, i, cseg)
	}
	sys, err := core.Partition(gb.Build(), cb.Build(), []int{0, nseg})
	if err != nil {
		panic(err)
	}
	return sys
}

func cNorm(y *dense.CMat) float64 {
	maxv := 0.0
	for _, v := range y.Data {
		if a := cmplx.Abs(v); a > maxv {
			maxv = a
		}
	}
	return maxv
}

func TestPadeExactWhenBasisSpans(t *testing.T) {
	// With q·m >= n the Krylov basis spans the whole internal space and
	// the reduction must be exact at any frequency.
	sys := ladderSystem(12, 100, 1e-12) // n = 11 internal, m = 2
	model, stats, err := Reduce(sys, 8, core.Options{FMax: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BasisSize < sys.N {
		t.Fatalf("basis %d does not span n=%d", stats.BasisSize, sys.N)
	}
	for _, f := range []float64{1e8, 1e10, 1e12} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got := model.Y(s)
		if d := dense.MaxAbsDiff(got, want); d > 1e-6*(1+cNorm(want)) {
			t.Fatalf("f=%g: exact-span error %g", f, d)
		}
	}
}

func TestPadeLowOrderMatchesLowFrequency(t *testing.T) {
	sys := ladderSystem(60, 250, 1.35e-12)
	model, _, err := Reduce(sys, 2, core.Options{FMax: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	// First ladder pole is ~GHz; a 2-block Padé model must be excellent a
	// decade below.
	for _, f := range []float64{1e7, 1e8, 5e8} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got := model.Y(s)
		if d := dense.MaxAbsDiff(got, want); d > 0.01*cNorm(want) {
			t.Fatalf("f=%g: q=2 Padé error %g (scale %g)", f, d, cNorm(want))
		}
	}
}

func TestPadePreservesPassivity(t *testing.T) {
	sys := ladderSystem(40, 500, 2e-12)
	model, _, err := Reduce(sys, 3, core.Options{FMax: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if !model.CheckPassive(1e-8) {
		t.Fatal("Padé congruence reduction must stay passive")
	}
	for _, l := range model.Lambda {
		if l <= 0 {
			t.Fatalf("projected eigenvalue %v not positive", l)
		}
	}
}

func TestPadeMemoryGrowsWithBlocksAndPorts(t *testing.T) {
	sys := ladderSystem(80, 250, 1e-12)
	_, s2, err := Reduce(sys, 2, core.Options{FMax: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := Reduce(sys, 4, core.Options{FMax: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if s4.PeakVectors <= s2.PeakVectors {
		t.Fatalf("peak vectors %d (q=4) should exceed %d (q=2)", s4.PeakVectors, s2.PeakVectors)
	}
	if s2.PeakVectors < sys.M+s2.BasisSize {
		t.Fatalf("peak vectors %d below R' + basis %d", s2.PeakVectors, sys.M+s2.BasisSize)
	}
}

func TestPadeRejectsBadArgs(t *testing.T) {
	sys := ladderSystem(10, 100, 1e-12)
	if _, _, err := Reduce(sys, 0, core.Options{FMax: 1}); err == nil {
		t.Error("q=0 accepted")
	}
}

// Compared head to head at equal reduced size, PACT keeps exact poles
// below the cutoff while the Padé model smears accuracy across moments;
// both must beat the tolerance below fmax for this well-behaved ladder.
func TestPadeVersusPACTShape(t *testing.T) {
	sys := ladderSystem(100, 250, 1.35e-12)
	fmax := 5e9
	pact, _, err := core.Reduce(sys, core.Options{FMax: fmax, Tol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	padeModel, _, err := Reduce(sys, 1, core.Options{FMax: fmax})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e8, 1e9, 5e9} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		scale := cNorm(want)
		if d := dense.MaxAbsDiff(pact.Y(s), want); d > 0.15*scale {
			t.Fatalf("PACT error %g at %g Hz", d/scale, f)
		}
		if d := dense.MaxAbsDiff(padeModel.Y(s), want); d > 0.5*scale {
			t.Fatalf("Padé q=1 error %g at %g Hz", d/scale, f)
		}
	}
}
