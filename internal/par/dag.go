// Task-DAG scheduling: the dependency-counting generalization of the
// pool in par.go. Do hands out the iterations of one flat loop; RunDAG
// hands out the tasks of a precedence DAG, firing each task the moment
// its last dependency completes instead of barriering on level
// boundaries. The supernodal Cholesky is the motivating caller: its
// elimination-tree level schedule leaves workers idle whenever one slow
// panel tail-gates a level, while the DAG schedule keeps every worker
// busy as long as any panel is ready.
//
// Determinism contract: RunDAG guarantees only *which* tasks run (all of
// them, each exactly once) and that a task starts strictly after all of
// its dependencies returned. Execution order beyond that is
// timing-dependent, so — exactly as with Do — a body that keeps
// per-task arithmetic independent (worker-owned scratch indexed by the
// worker id, writes only to task-owned slots, fixed reduction order
// inside a task) produces bit-identical results at every GOMAXPROCS and
// under every interleaving. The five pactlint determinism rules check
// RunDAG callback bodies like every other par callback.
//
// Panics inside a task are captured per worker; the pool keeps draining
// (a panicked task still releases its dependents, so the run cannot
// deadlock) and the first captured panic by worker id is re-raised on
// the calling goroutine after the DAG completes, mirroring Do.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// DAG is an immutable task-precedence graph prepared once by NewDAG and
// shared by every subsequent run — including concurrent runs, each with
// its own DAGScratch. It stores the dependency counts and the successor
// adjacency in CSR form (int32 indices: DAGs here index supernodes, not
// matrix entries, so 2^31 tasks is not a practical bound).
type DAG struct {
	n       int
	indeg   []int32 // baseline dependency count per task
	succPtr []int32 // CSR offsets into succ, length n+1
	succ    []int32 // successor task ids (tasks that depend on i)
	roots   []int32 // tasks with no dependencies, ascending
}

// NewDAG builds the run-ready form of a dependency graph: deps[t] lists
// the tasks that must complete before task t may start (duplicates are
// tolerated and counted once). NewDAG validates acyclicity with one
// Kahn sweep and panics on a cycle — an impossible input from a correct
// symbolic analysis, so it is a programmer error, not a runtime
// condition.
func NewDAG(deps [][]int32) *DAG {
	n := len(deps)
	d := &DAG{
		n:       n,
		indeg:   make([]int32, n),
		succPtr: make([]int32, n+1),
	}
	// Dedup each task's dependency list via a seen-stamp so a repeated
	// edge releases its dependent exactly once.
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	nedges := 0
	for t, dl := range deps {
		for _, p := range dl {
			if p < 0 || int(p) >= n {
				panic(fmt.Sprintf("par: DAG dependency %d of task %d out of range [0,%d)", p, t, n))
			}
			if seen[p] == int32(t) {
				continue
			}
			seen[p] = int32(t)
			d.indeg[t]++
			d.succPtr[p+1]++
			nedges++
		}
	}
	for i := 0; i < n; i++ {
		d.succPtr[i+1] += d.succPtr[i]
	}
	d.succ = make([]int32, nedges)
	next := make([]int32, n)
	copy(next, d.succPtr[:n])
	for i := range seen {
		seen[i] = -1
	}
	for t, dl := range deps {
		for _, p := range dl {
			if seen[p] == int32(t) {
				continue
			}
			seen[p] = int32(t)
			d.succ[next[p]] = int32(t)
			next[p]++
		}
	}
	for t := 0; t < n; t++ {
		if d.indeg[t] == 0 {
			d.roots = append(d.roots, int32(t))
		}
	}
	// Kahn acyclicity sweep over scratch counts: every task must become
	// ready exactly once.
	sc := d.NewScratch()
	counts, queue := sc.counts, sc.queue
	copy(counts, d.indeg)
	queue = append(queue[:0], d.roots...)
	processed := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for p := d.succPtr[t]; p < d.succPtr[t+1]; p++ {
			s := d.succ[p]
			if counts[s]--; counts[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != n {
		panic(fmt.Sprintf("par: DAG has a dependency cycle (%d of %d tasks reachable)", processed, n))
	}
	return d
}

// Len returns the number of tasks.
func (d *DAG) Len() int { return d.n }

// Edges returns the number of (deduplicated) dependency edges.
func (d *DAG) Edges() int { return len(d.succ) }

// DAGScratch is the per-run mutable state of a DAG execution: the live
// dependency counts and the ready queue. One scratch serves one run at
// a time; reusing it across runs makes repeated executions of the same
// DAG allocation-free, and concurrent runs of one shared DAG each bring
// their own scratch.
type DAGScratch struct {
	counts []int32
	queue  []int32
}

// NewScratch allocates run state sized for this DAG.
func (d *DAG) NewScratch() *DAGScratch {
	return &DAGScratch{
		counts: make([]int32, d.n),
		queue:  make([]int32, 0, d.n),
	}
}

// Bytes returns the memory footprint of the scratch in bytes.
func (sc *DAGScratch) Bytes() int64 {
	return int64(len(sc.counts)+cap(sc.queue)) * 4
}

// RunDAG executes every task of d exactly once on at most the given
// number of workers, starting each task only after all of its
// dependencies returned. Allocates fresh run state; use RunDAGScratch
// with a reused DAGScratch for allocation-free repeated runs.
func RunDAG(workers int, d *DAG, body func(worker, task int)) {
	RunDAGScratch(workers, d, d.NewScratch(), body)
}

// RunDAGScratch is RunDAG against caller-owned run state (see
// DAGScratch). The scratch must have been created by d.NewScratch (or
// one of a DAG with at least as many tasks) and must not be shared by
// concurrent runs.
//
// Scheduling: ready tasks are held in a LIFO queue under one mutex —
// finishing a panel tends to ready its parent, so depth-first hand-out
// keeps a worker walking up a subtree it just touched. Workers take one
// task at a time; with one worker (or one task) the whole DAG runs
// inline on the calling goroutine with no synchronization. The
// completion order is timing-dependent; see the package comment for
// what that does and does not mean for determinism.
//
// Every task runs even if another task panicked or recorded an error in
// a caller-owned slot: there is no early exit, which keeps the set of
// executed tasks — and therefore every caller-visible side effect — the
// same on every run. Panics are captured per worker and the first by
// worker id is re-raised after the run, as in Do.
func RunDAGScratch(workers int, d *DAG, sc *DAGScratch, body func(worker, task int)) {
	n := d.n
	if n == 0 {
		return
	}
	if max := Workers(n); workers > max {
		workers = max
	}
	counts := sc.counts[:n]
	copy(counts, d.indeg)
	// queue never outgrows its capacity (each task is pushed exactly
	// once and the scratch was sized for the DAG), so the append below
	// always reuses the scratch array — no write-back needed.
	queue := append(sc.queue[:0], d.roots...)

	if workers <= 1 {
		// Inline serial path: no goroutines, no synchronization, no
		// allocations (the parallel machinery lives in its own function so
		// its escaping captures cost nothing here). A body panic
		// propagates immediately, as in Do's serial path.
		for len(queue) > 0 {
			t := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			body(0, int(t))
			for p := d.succPtr[t]; p < d.succPtr[t+1]; p++ {
				s := d.succ[p]
				if counts[s]--; counts[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
		return
	}
	runDAGParallel(workers, d, counts, queue, body)
}

func runDAGParallel(workers int, d *DAG, counts []int32, queue []int32, body func(worker, task int)) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	remaining := d.n
	panics := make([]*capturedPanic, workers)
	runTask := func(w int, t int32) {
		defer func() {
			if r := recover(); r != nil && panics[w] == nil {
				panics[w] = &capturedPanic{value: r, stack: debug.Stack()}
			}
		}()
		body(w, int(t))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				for len(queue) == 0 && remaining > 0 {
					cond.Wait()
				}
				if remaining == 0 {
					mu.Unlock()
					return
				}
				t := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				mu.Unlock()

				runTask(w, t)

				mu.Lock()
				for p := d.succPtr[t]; p < d.succPtr[t+1]; p++ {
					s := d.succ[p]
					if counts[s]--; counts[s] == 0 {
						queue = append(queue, s)
					}
				}
				remaining--
				wake := remaining == 0 || len(queue) > 0
				mu.Unlock()
				if wake {
					cond.Broadcast()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: worker panic: %v\n%s", p.value, p.stack))
		}
	}
}
