package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// withProcs raises GOMAXPROCS so the workers>1 scheduling path actually
// runs on single-CPU test machines (Workers clamps to GOMAXPROCS).
func withProcs(t *testing.T, p int) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// chainDeps builds a DAG of nchains independent chains of the given
// length: task c*length+i depends on c*length+i-1.
func chainDeps(nchains, length int) [][]int32 {
	deps := make([][]int32, nchains*length)
	for c := 0; c < nchains; c++ {
		for i := 1; i < length; i++ {
			t := c*length + i
			deps[t] = []int32{int32(t - 1)}
		}
	}
	return deps
}

// treeDeps builds the reverse of a complete binary tree over n tasks:
// task t depends on its children 2t+1 and 2t+2 (heap order), so the
// root (task 0) runs last — the shape of a supernodal elimination tree.
func treeDeps(n int) [][]int32 {
	deps := make([][]int32, n)
	for t := 0; t < n; t++ {
		if c := 2*t + 1; c < n {
			deps[t] = append(deps[t], int32(c))
		}
		if c := 2*t + 2; c < n {
			deps[t] = append(deps[t], int32(c))
		}
	}
	return deps
}

func TestRunDAGRespectsDependencies(t *testing.T) {
	withProcs(t, 8)
	cases := []struct {
		name string
		deps [][]int32
	}{
		{"chains", chainDeps(7, 13)},
		{"tree", treeDeps(127)},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, tc := range cases {
			name, deps := tc.name, tc.deps
			d := NewDAG(deps)
			n := d.Len()
			done := make([]atomic.Bool, n)
			var ran atomic.Int64
			RunDAG(workers, d, func(_, task int) {
				for _, p := range deps[task] {
					if !done[p].Load() {
						t.Errorf("%s/w%d: task %d started before dependency %d finished", name, workers, task, p)
					}
				}
				ran.Add(1)
				done[task].Store(true)
			})
			if got := ran.Load(); got != int64(n) {
				t.Fatalf("%s/w%d: ran %d of %d tasks", name, workers, got, n)
			}
		}
	}
}

func TestRunDAGTaskOwnedSlotsMatchSerial(t *testing.T) {
	withProcs(t, 8)
	deps := treeDeps(255)
	d := NewDAG(deps)
	n := d.Len()
	want := make([]float64, n)
	RunDAG(1, d, func(_, task int) {
		v := float64(task) * 1.5
		for _, p := range deps[task] {
			v += want[p] // reading dependency slots is safe: they are final
		}
		want[task] = v
	})
	for _, workers := range []int{2, 4, 8} {
		got := make([]float64, n)
		RunDAG(workers, d, func(_, task int) {
			v := float64(task) * 1.5
			for _, p := range deps[task] {
				v += got[p]
			}
			got[task] = v
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunDAGPanicPropagatesAfterDrain(t *testing.T) {
	withProcs(t, 4)
	deps := chainDeps(4, 8)
	d := NewDAG(deps)
	var ran atomic.Int64
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected re-raised panic")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic %q does not carry the task panic", r)
			}
		}()
		RunDAG(4, d, func(_, task int) {
			ran.Add(1)
			if task == 3 {
				panic("boom")
			}
		})
	}()
	// No early exit: a panicked task still releases its dependents, so
	// the whole DAG drains before the panic is re-raised.
	if got := ran.Load(); got != int64(d.Len()) {
		t.Fatalf("ran %d of %d tasks after panic", got, d.Len())
	}
}

func TestRunDAGScratchReuseIsAllocationFree(t *testing.T) {
	d := NewDAG(treeDeps(63))
	sc := d.NewScratch()
	sink := make([]int, d.Len())
	// Warm once, then the steady state must not allocate (single worker:
	// the parallel path spawns goroutines, which allocate by design).
	body := func(_, task int) { sink[task]++ }
	RunDAGScratch(1, d, sc, body)
	allocs := testing.AllocsPerRun(10, func() {
		RunDAGScratch(1, d, sc, body)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunDAGScratch allocates %v objects/run", allocs)
	}
	for i, c := range sink {
		if c != 12 { // 1 warm + 10 measured + 1 AllocsPerRun warm-up
			t.Fatalf("task %d ran %d times, want 12", i, c)
		}
	}
}

func TestRunDAGSharedDAGConcurrentRuns(t *testing.T) {
	withProcs(t, 8)
	d := NewDAG(treeDeps(127))
	// One immutable DAG, many concurrent runs each with its own scratch —
	// the YSweep shape (per-frequency refactorizations share the symbolic
	// DAG).
	For(8, func(i int) {
		sc := d.NewScratch()
		var ran atomic.Int64
		RunDAGScratch(2, d, sc, func(_, task int) { ran.Add(1) })
		if ran.Load() != int64(d.Len()) {
			t.Errorf("run %d: ran %d of %d", i, ran.Load(), d.Len())
		}
	})
}

func TestNewDAGDetectsCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cyclic dependency graph")
		}
	}()
	NewDAG([][]int32{1: {2}, 2: {1}})
}

func TestNewDAGDedupsEdges(t *testing.T) {
	d := NewDAG([][]int32{0: nil, 1: {0, 0, 0}})
	if d.Edges() != 1 {
		t.Fatalf("duplicate dependencies kept: %d edges, want 1", d.Edges())
	}
	var ran atomic.Int64
	RunDAG(2, d, func(_, task int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Fatalf("ran %d of 2 tasks", ran.Load())
	}
}

func TestRunDAGWorkerIndexDense(t *testing.T) {
	withProcs(t, 4)
	d := NewDAG(chainDeps(16, 4))
	workers := 4
	seen := make([]atomic.Int64, workers)
	RunDAG(workers, d, func(w, _ int) { seen[w].Add(1) })
	total := int64(0)
	for w := range seen {
		total += seen[w].Load()
	}
	if total != int64(d.Len()) {
		t.Fatalf("worker ids outside [0,%d): %d of %d tasks accounted", workers, total, d.Len())
	}
}
