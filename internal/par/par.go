// Package par is the worker-pool layer of the numerical core: bounded
// fan-out over independent loop iterations with deterministic result
// placement. The hot loops of the PACT flow — the per-port triangular
// solves of Transform 1, row panels of dense matrix products, and the
// independent frequency points of the AC verification sweeps — are all
// embarrassingly parallel, and this package gives them one shared,
// allocation-disciplined scheduling primitive instead of ad-hoc
// goroutine spawns.
//
// Determinism contract: every parallel entry point assigns iteration i
// the same work regardless of worker count, and results land in
// caller-owned slots indexed by i. Callers that keep per-iteration
// arithmetic independent (no shared accumulators, fixed reduction order)
// therefore get bit-identical output at every GOMAXPROCS, which is what
// lets the golden experiment outputs stay exact while the wall-clock
// drops. Worker-owned scratch is supported by the worker index passed to
// ForWorkers/Do: allocate one scratch slot per worker up front and index
// it with that id; no two iterations on the same worker overlap.
//
// Panics inside a worker are captured and re-raised on the calling
// goroutine (first worker id wins, deterministically ordered), so a
// library invariant violation inside a pool behaves like one in a serial
// loop instead of crashing the process from an anonymous goroutine.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/resilience/inject"
)

// Workers returns the bounded fan-out for n independent iterations:
// min(GOMAXPROCS, n), at least 1. This is the pool size ForWorkers uses.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// capturedPanic holds a worker panic until the caller re-raises it.
type capturedPanic struct {
	value any
	stack []byte
}

// Do runs body(worker, i) for every i in [0, n) using at most the given
// number of workers (clamped to [1, min(GOMAXPROCS, n)]). Iterations are
// handed out dynamically, so uneven per-iteration cost load-balances;
// the worker argument identifies which pool member is running (dense in
// [0, workers)), letting callers own one scratch buffer per worker. With
// one worker the body runs inline on the calling goroutine — no
// goroutines, no synchronization — so small problems pay nothing.
//
// If any body call panics, Do waits for the remaining workers, then
// re-panics on the calling goroutine with the first captured panic (by
// worker id) and its stack.
func Do(workers, n int, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	if max := Workers(n); workers > max {
		workers = max
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make([]*capturedPanic, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = &capturedPanic{value: r, stack: debug.Stack()}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: worker panic: %v\n%s", p.value, p.stack))
		}
	}
}

// DoCtx is Do with cooperative cancellation: workers check a cancel flag
// between work items (never mid-item), so a canceled context stops the
// pool at the next item boundary and DoCtx returns ctx.Err(). Items that
// already ran wrote their results to their caller-owned slots as usual;
// the determinism contract still holds for every completed run (nil
// return), because cancellation only changes *whether* iterations run,
// never what work iteration i performs. A context that can never be
// canceled (ctx.Done() == nil, e.g. context.Background()) takes the
// plain Do path and pays no synchronization beyond Do itself.
func DoCtx(ctx context.Context, workers, n int, body func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		Do(workers, n, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if max := Workers(n); workers > max {
		workers = max
	}
	if workers <= 1 {
		// Serial path: no watcher, the loop asks the context directly (one
		// uncontended check per item).
		for i := 0; i < n; i++ {
			if inject.Enabled {
				inject.Visit(inject.ParItem, i)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			body(0, i)
		}
		return nil
	}
	// One watcher goroutine turns the channel close into an atomic flag
	// the workers can poll for free; it exits as soon as the pool drains.
	var stop atomic.Bool
	poolDone := make(chan struct{})
	defer close(poolDone)
	go func() {
		// The watcher's select races cancellation against pool drain, but
		// it only decides *whether* remaining items run, never what work
		// an item performs — completed (nil-return) pools are bit-identical
		// at every GOMAXPROCS, which is the documented DoCtx contract.
		//lint:ignore nondet cancellation watcher: the race picks whether items run, not what they compute; completed runs stay bit-identical
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-poolDone:
		}
	}()
	var bailed atomic.Bool
	item := func(w, i int) bool {
		if stop.Load() {
			bailed.Store(true)
			return false
		}
		if inject.Enabled {
			// Per-item checkpoint: a func rule armed at par.item models an
			// external event (canonically ctx cancellation) arriving between
			// items; re-checking the context right after makes the effect
			// land on this very item instead of racing the watcher.
			inject.Visit(inject.ParItem, i)
			if ctx.Err() != nil {
				bailed.Store(true)
				return false
			}
		}
		body(w, i)
		return true
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make([]*capturedPanic, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = &capturedPanic{value: r, stack: debug.Stack()}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !item(w, i) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: worker panic: %v\n%s", p.value, p.stack))
		}
	}
	if bailed.Load() {
		return ctx.Err()
	}
	return nil
}

// Chunks returns the number of contiguous chunks of the given size
// needed to cover n items (the hand-out granularity of DoChunks).
func Chunks(n, chunk int) int {
	if chunk < 1 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// DoChunks runs body(worker, lo, hi) over the half-open ranges
// [0,chunk), [chunk,2·chunk), … covering [0, n), using at most the given
// number of workers. It is the sized-chunking variant of Do: the atomic
// hand-out advances one *chunk* at a time instead of one item, so loops
// whose per-item cost is small (dense row panels, multi-RHS solve
// columns) pay the scheduling overhead once per batch rather than once
// per iteration, while uneven chunk cost still load-balances.
//
// The chunk boundaries depend only on n and chunk — never on the worker
// count — so a body that keeps per-range arithmetic independent inherits
// the pool's determinism contract unchanged. With one worker (or a
// single chunk) the ranges run inline on the calling goroutine in
// ascending order.
func DoChunks(workers, n, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nchunks := Chunks(n, chunk)
	Do(workers, nchunks, func(w, c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(w, lo, hi)
	})
}

// ForChunks runs body over sized chunks of [0, n) on Workers(nchunks)
// workers (see DoChunks).
func ForChunks(n, chunk int, body func(worker, lo, hi int)) {
	DoChunks(Workers(Chunks(n, chunk)), n, chunk, body)
}

// ForWorkers runs body(worker, i) for every i in [0, n) on Workers(n)
// workers. Use the worker index to address pre-allocated per-worker
// scratch.
func ForWorkers(n int, body func(worker, i int)) {
	Do(Workers(n), n, body)
}

// ForWorkersCtx is ForWorkers with cooperative cancellation (see DoCtx).
func ForWorkersCtx(ctx context.Context, n int, body func(worker, i int)) error {
	return DoCtx(ctx, Workers(n), n, body)
}

// ForCtx is For with cooperative cancellation (see DoCtx).
func ForCtx(ctx context.Context, n int, body func(i int)) error {
	return DoCtx(ctx, Workers(n), n, func(_, i int) { body(i) })
}

// For runs body(i) for every i in [0, n) on Workers(n) workers. For
// loops whose iterations need no worker-owned scratch.
func For(n int, body func(i int)) {
	Do(Workers(n), n, func(_, i int) { body(i) })
}

// Map evaluates f(i) for every i in [0, n) in parallel and returns the
// results in index order. If any call errors, Map returns the error of
// the lowest failing index (deterministic regardless of completion
// order) and a nil slice.
func Map[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForWorkers(n, func(_, i int) { out[i], errs[i] = f(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
