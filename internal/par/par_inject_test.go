//go:build pactcheck

package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/resilience/inject"
)

// TestInjectedCancelAtParItem drives the par.item injection point: a func
// rule armed at item k cancels the context at that exact checkpoint, and
// DoCtx must stop without running item k's body and without leaking the
// watcher goroutine.
func TestInjectedCancelAtParItem(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := inject.NewSchedule().ArmFunc(inject.ParItem, 25, cancel)
	inject.Install(s)
	defer inject.Reset()
	var ran atomic.Int64
	err := DoCtx(ctx, 1, 100, func(_, i int) {
		if i == 25 {
			t.Error("item 25 ran despite cancellation at its checkpoint")
		}
		ran.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 25 {
		t.Fatalf("ran %d items before the injected cancel, want 25 (serial)", got)
	}
	if s.Fired(inject.ParItem) != 1 {
		t.Fatal("injection point did not fire")
	}
	waitGoroutines(t, base)
}
