package par

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the live goroutine count returns to at most
// base (background scavengers may retire at any time), failing the test
// if the pool leaked workers. This is the no-dependency stand-in for a
// leak detector: every DoCtx test brackets itself with it.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, want <= %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForWorkersIDsAreDense(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	pool := Workers(64)
	var bad atomic.Int64
	ForWorkers(64, func(w, i int) {
		if w < 0 || w >= pool {
			bad.Store(int64(w) + 1)
		}
	})
	if b := bad.Load(); b != 0 {
		t.Fatalf("worker id %d outside pool of %d", b-1, pool)
	}
}

func TestDoSerialWhenOneWorker(t *testing.T) {
	// With workers=1 the body must run inline, in order, on the calling
	// goroutine (observable via strictly increasing indices without
	// synchronization).
	last := -1
	Do(1, 50, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial path used worker %d", w)
		}
		if i != last+1 {
			t.Fatalf("serial path out of order: %d after %d", i, last)
		}
		last = i
	})
	if last != 49 {
		t.Fatalf("serial path stopped at %d", last)
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	out, err := Map(200, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	out, err := Map(100, func(i int) (int, error) {
		if i == 17 || i == 63 {
			return 0, errAt(i)
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("Map returned results alongside error")
	}
	if err == nil || err.Error() != "fail@17" {
		t.Fatalf("Map error = %v, want fail@17 (lowest failing index)", err)
	}
}

func TestWorkerPanicIsCapturedAndRethrown(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "par: worker panic") || !strings.Contains(msg, "boom") {
			t.Fatalf("unexpected re-panic payload: %v", r)
		}
	}()
	For(32, func(i int) {
		if i == 5 {
			panic(errors.New("boom"))
		}
	})
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers exceeds GOMAXPROCS: %d", w)
	}
}

// TestDeterministicSumAcrossGOMAXPROCS drives the determinism contract:
// per-index arithmetic with a fixed merge order must be bit-identical at
// every worker count.
func TestDeterministicSumAcrossGOMAXPROCS(t *testing.T) {
	n := 1000
	run := func() []float64 {
		out := make([]float64, n)
		ForWorkers(n, func(_, i int) {
			v := 1.0
			for k := 1; k <= 40; k++ {
				v = v*1.0000001 + float64(i%7)*1e-9
			}
			out[i] = v
		})
		return out
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(4)
	parallel := run()
	runtime.GOMAXPROCS(old)
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("index %d differs across GOMAXPROCS: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func TestDoCtxCompletesWithoutCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hits := make([]int32, 500)
	if err := ForWorkersCtx(ctx, 500, func(_, i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
		t.Fatalf("DoCtx with live context: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	waitGoroutines(t, base)
}

func TestDoCtxBackgroundTakesPlainPath(t *testing.T) {
	// context.Background can never be canceled, so DoCtx must not spawn a
	// watcher goroutine — same goroutine count before and after, serially.
	base := runtime.NumGoroutine()
	if err := DoCtx(context.Background(), 1, 100, func(_, i int) {}); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

func TestDoCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	err := ForWorkersCtx(ctx, 1000, func(_, i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled context still ran %d items", ran.Load())
	}
}

func TestDoCtxCancelMidRunStopsAndCleansUp(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := DoCtx(ctx, 4, 100000, func(_, i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100000 {
		t.Fatalf("cancellation did not stop the pool (ran all %d items)", n)
	}
	waitGoroutines(t, base)
}

func TestDoCtxDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := ForCtx(ctx, 1<<30, func(i int) { time.Sleep(50 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	waitGoroutines(t, base)
}

func TestDoCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err := DoCtx(ctx, 1, 1000, func(_, i int) {
		ran++
		if i == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= 1000 {
		t.Fatal("serial path ignored cancellation")
	}
}

func BenchmarkForOverheadSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(1, func(int) {})
	}
}

func TestDoChunksCoversEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, chunk, workers int }{
		{0, 4, 3}, {1, 4, 3}, {7, 3, 2}, {100, 7, 5}, {64, 64, 4}, {64, 1, 4}, {10, 100, 4},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		DoChunks(tc.workers, tc.n, tc.chunk, func(_, lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d chunk=%d: bad range [%d,%d)", tc.n, tc.chunk, lo, hi)
			}
			if lo%tc.chunk != 0 {
				t.Errorf("n=%d chunk=%d: range start %d not on a chunk boundary", tc.n, tc.chunk, lo)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d: index %d ran %d times", tc.n, tc.chunk, i, c)
			}
		}
	}
}

func TestDoChunksBoundariesIndependentOfWorkers(t *testing.T) {
	t.Parallel()
	collect := func(workers int) map[int]int {
		var mu sync.Mutex
		ranges := make(map[int]int)
		DoChunks(workers, 103, 8, func(_, lo, hi int) {
			mu.Lock()
			ranges[lo] = hi
			mu.Unlock()
		})
		return ranges
	}
	one := collect(1)
	for _, w := range []int{2, 4, 16} {
		got := collect(w)
		if len(got) != len(one) {
			t.Fatalf("workers=%d: %d chunks, want %d", w, len(got), len(one))
		}
		for lo, hi := range one {
			if got[lo] != hi {
				t.Fatalf("workers=%d: chunk [%d,%d), want [%d,%d)", w, lo, got[lo], lo, hi)
			}
		}
	}
}

func TestChunksCount(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, chunk, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 0, 8}, {8, -1, 8},
	} {
		if got := Chunks(tc.n, tc.chunk); got != tc.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", tc.n, tc.chunk, got, tc.want)
		}
	}
}
