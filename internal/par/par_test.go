package par

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForWorkersIDsAreDense(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	pool := Workers(64)
	var bad atomic.Int64
	ForWorkers(64, func(w, i int) {
		if w < 0 || w >= pool {
			bad.Store(int64(w) + 1)
		}
	})
	if b := bad.Load(); b != 0 {
		t.Fatalf("worker id %d outside pool of %d", b-1, pool)
	}
}

func TestDoSerialWhenOneWorker(t *testing.T) {
	// With workers=1 the body must run inline, in order, on the calling
	// goroutine (observable via strictly increasing indices without
	// synchronization).
	last := -1
	Do(1, 50, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial path used worker %d", w)
		}
		if i != last+1 {
			t.Fatalf("serial path out of order: %d after %d", i, last)
		}
		last = i
	})
	if last != 49 {
		t.Fatalf("serial path stopped at %d", last)
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	out, err := Map(200, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	out, err := Map(100, func(i int) (int, error) {
		if i == 17 || i == 63 {
			return 0, errAt(i)
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("Map returned results alongside error")
	}
	if err == nil || err.Error() != "fail@17" {
		t.Fatalf("Map error = %v, want fail@17 (lowest failing index)", err)
	}
}

func TestWorkerPanicIsCapturedAndRethrown(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "par: worker panic") || !strings.Contains(msg, "boom") {
			t.Fatalf("unexpected re-panic payload: %v", r)
		}
	}()
	For(32, func(i int) {
		if i == 5 {
			panic(errors.New("boom"))
		}
	})
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers exceeds GOMAXPROCS: %d", w)
	}
}

// TestDeterministicSumAcrossGOMAXPROCS drives the determinism contract:
// per-index arithmetic with a fixed merge order must be bit-identical at
// every worker count.
func TestDeterministicSumAcrossGOMAXPROCS(t *testing.T) {
	n := 1000
	run := func() []float64 {
		out := make([]float64, n)
		ForWorkers(n, func(_, i int) {
			v := 1.0
			for k := 1; k <= 40; k++ {
				v = v*1.0000001 + float64(i%7)*1e-9
			}
			out[i] = v
		})
		return out
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(4)
	parallel := run()
	runtime.GOMAXPROCS(old)
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("index %d differs across GOMAXPROCS: %g vs %g", i, serial[i], parallel[i])
		}
	}
}

func BenchmarkForOverheadSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(1, func(int) {})
	}
}
