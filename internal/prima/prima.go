// Package prima implements PRIMA (Passive Reduced-order Interconnect
// Macromodeling Algorithm, Odabasioglu/Celik/Pileggi 1997) specialized to
// RC networks — the direct successor of the PACT line of work, included
// as a second congruence baseline. A block Arnoldi process builds an
// orthonormal basis of the Krylov space span{G⁻¹B, (G⁻¹C)G⁻¹B, …} on the
// full (ports + internal) matrices, and the conductance/susceptance
// matrices are congruence-projected onto it, preserving passivity while
// matching q block moments at s = 0.
//
// Differences from PACT worth measuring (see the baselines example):
// PRIMA carries the ports inside the projected state, so the reduced
// model has m·q states rather than PACT's "exact port blocks + kept
// poles" structure, and its accuracy is moment-based rather than
// pole-location-based.
package prima

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/chol"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Model is a PRIMA-reduced multiport: Ỹ(s) = B̃ᵀ (G̃ + sC̃)⁻¹ B̃ with the
// projected matrices dense and small.
type Model struct {
	M    int
	Gr   *dense.Mat // q·m × q·m projected conductance
	Cr   *dense.Mat // projected susceptance
	Br   *dense.Mat // q·m × m projected input incidence
	Dims int        // reduced state dimension
}

// Stats reports the reduction work.
type Stats struct {
	MatVecs     int // G solves + C products
	PeakVectors int // full-length vectors simultaneously live
	BasisSize   int
	Blocks      int
}

// Reduce runs q block-Arnoldi steps on the full matrices of sys,
// expanding at the real frequency point s0 >= 0 (rad/s): the Krylov
// operator is (G + s0·C)⁻¹C. Use s0 = 0 when every node has a DC path to
// ground; networks whose conductance matrix is singular (e.g. a floating
// RC line, where only the port sources provide the DC reference) need
// s0 > 0, the standard PRIMA shifted expansion.
func Reduce(sys *core.System, q int, s0 float64, ordering order.Method) (*Model, *Stats, error) {
	if q < 1 {
		return nil, nil, fmt.Errorf("prima: need at least one block, got %d", q)
	}
	if s0 < 0 {
		return nil, nil, fmt.Errorf("prima: expansion point s0 must be non-negative, got %g", s0)
	}
	m := sys.M
	g, c := sys.Full()
	shifted := g
	if s0 > 0 {
		shifted = sparse.Add(1, g, s0, c)
	}
	nt := g.Rows
	sym := order.Analyze(sparse.PatternUnion(g, c), ordering)
	ap := shifted.PermuteSym(sym.Perm) // Arnoldi operator matrix G + s0·C
	gp := g.PermuteSym(sym.Perm)       // original G for the projection
	cp := c.PermuteSym(sym.Perm)
	fact, err := chol.Factorize(ap, sym)
	if err != nil {
		return nil, nil, fmt.Errorf("prima: factorization of G + s0·C (try a positive s0 for networks without a DC path to ground): %w", err)
	}
	stats := &Stats{}

	// Input incidence in permuted space: unit injection at each port
	// (ports are indices 0..m-1 before permutation).
	bCols := make([][]float64, m)
	for j := 0; j < m; j++ {
		col := make([]float64, nt)
		col[sym.Inv[j]] = 1
		bCols[j] = col
	}

	// Block Arnoldi with full orthogonalization: V1 = orth(G⁻¹B),
	// V_{k+1} = orth(G⁻¹ C V_k ⊥ all previous). Deflation is decided
	// relative to the candidate's norm before orthogonalization —
	// successive Krylov blocks shrink geometrically (by roughly the RC
	// time constants), so an absolute threshold would deflate genuinely
	// new directions.
	const deflTol = 1e-10
	var basis [][]float64
	block := make([][]float64, 0, m)
	addCandidate := func(v []float64, dst *[][]float64) {
		before := norm2(v)
		if before == 0 {
			return
		}
		orth(v, basis)
		orth(v, *dst)
		orth(v, basis)
		orth(v, *dst)
		if after := norm2(v); after > deflTol*before {
			scal(v, 1/after)
			*dst = append(*dst, v)
		}
	}
	for _, bc := range bCols {
		//lint:ignore defersmell each candidate is kept as a basis vector, so the clone is the algorithm's storage, not loop scratch
		v := append([]float64(nil), bc...)
		fact.Solve(v)
		stats.MatVecs++
		addCandidate(v, &block)
	}
	tmp := make([]float64, nt)
	for b := 0; b < q && len(block) > 0; b++ {
		basis = append(basis, block...)
		stats.Blocks++
		if pv := m + len(basis) + len(block); pv > stats.PeakVectors {
			stats.PeakVectors = pv
		}
		if b == q-1 || len(basis) >= nt {
			break
		}
		var next [][]float64
		for _, v := range block {
			cp.MulVec(tmp, v)
			//lint:ignore defersmell the clone survives the loop as a candidate basis vector; tmp is the reused scratch
			w := append([]float64(nil), tmp...)
			fact.Solve(w)
			stats.MatVecs++
			addCandidate(w, &next)
		}
		block = next
	}
	k := len(basis)
	stats.BasisSize = k

	// Congruence projection. VᵀGV and VᵀCV are symmetric by construction,
	// so compute each pair once from column j's product and mirror it with
	// SetSym instead of averaging afterwards.
	gr := dense.New(k, k)
	cr := dense.New(k, k)
	br := dense.New(k, m)
	for j := 0; j < k; j++ {
		gp.MulVec(tmp, basis[j])
		for i := 0; i <= j; i++ {
			gr.SetSym(i, j, dot(basis[i], tmp))
		}
		cp.MulVec(tmp, basis[j])
		for i := 0; i <= j; i++ {
			cr.SetSym(i, j, dot(basis[i], tmp))
		}
	}
	if check.Enabled {
		// The projection VᵀGV, VᵀCV is a congruence, so the reduced
		// matrices must stay non-negative definite — PRIMA's passivity
		// argument, checked here directly.
		check.NonNegDef("PRIMA projected conductance", gr, check.DefaultTol)
		check.NonNegDef("PRIMA projected susceptance", cr, check.DefaultTol)
	}
	for j := 0; j < m; j++ {
		for i := 0; i < k; i++ {
			br.Set(i, j, basis[i][sym.Inv[j]])
		}
	}
	return &Model{M: m, Gr: gr, Cr: cr, Br: br, Dims: k}, stats, nil
}

// Z evaluates the reduced multiport impedance
// Z̃(s) = B̃ᵀ (G̃ + sC̃)⁻¹ B̃ (current in, voltage out — the natural
// transfer of the projected system).
func (md *Model) Z(s complex128) (*dense.CMat, error) {
	k := md.Dims
	a := dense.NewC(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			a.Set(i, j, complex(md.Gr.At(i, j), 0)+s*complex(md.Cr.At(i, j), 0))
		}
	}
	f, err := dense.FactorCLU(a)
	if err != nil {
		return nil, fmt.Errorf("prima: reduced system singular at s=%v", s)
	}
	z := dense.NewC(md.M, md.M)
	col := make([]complex128, k)
	for j := 0; j < md.M; j++ {
		for i := 0; i < k; i++ {
			col[i] = complex(md.Br.At(i, j), 0)
		}
		f.Solve(col)
		for i := 0; i < md.M; i++ {
			var acc complex128
			for kk := 0; kk < k; kk++ {
				acc += complex(md.Br.At(kk, i), 0) * col[kk]
			}
			z.Set(i, j, acc)
		}
	}
	return z, nil
}

// Y evaluates the reduced multiport admittance, the inverse of Z(s),
// comparable directly with core.System.Y and core.ReducedModel.Y.
func (md *Model) Y(s complex128) (*dense.CMat, error) {
	z, err := md.Z(s)
	if err != nil {
		return nil, err
	}
	f, err := dense.FactorCLU(z)
	if err != nil {
		return nil, fmt.Errorf("prima: impedance singular at s=%v", s)
	}
	y := dense.NewC(md.M, md.M)
	col := make([]complex128, md.M)
	for j := 0; j < md.M; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.Solve(col)
		for i := 0; i < md.M; i++ {
			y.Set(i, j, col[i])
		}
	}
	return y, nil
}

// CheckPassive verifies the projected matrices are non-negative definite,
// PRIMA's passivity guarantee.
func (md *Model) CheckPassive(tol float64) bool {
	return dense.IsNonNegDefinite(md.Gr.Clone(), tol) && dense.IsNonNegDefinite(md.Cr.Clone(), tol)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func scal(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func orth(v []float64, basis [][]float64) {
	for _, b := range basis {
		c := dot(b, v)
		if c == 0 {
			continue
		}
		for i := range v {
			v[i] -= c * b[i]
		}
	}
}
