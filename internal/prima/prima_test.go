package prima

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/sparse"
)

func ladderSystem(nseg int, rtot, ctot float64) *core.System {
	tot := nseg + 1
	gseg := float64(nseg) / rtot
	cseg := ctot / float64(nseg)
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	for i := 0; i < nseg; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	// Ground the left port resistively so G is nonsingular.
	gb.Add(0, 0, 1e-3)
	for i := 1; i <= nseg; i++ {
		cb.Add(i, i, cseg)
	}
	sys, err := core.Partition(gb.Build(), cb.Build(), []int{0, nseg})
	if err != nil {
		panic(err)
	}
	return sys
}

func cNorm(y *dense.CMat) float64 {
	maxv := 0.0
	for _, v := range y.Data {
		if a := cmplx.Abs(v); a > maxv {
			maxv = a
		}
	}
	return maxv
}

func TestPRIMAExactWhenBasisSpans(t *testing.T) {
	sys := ladderSystem(10, 100, 1e-12) // 11 total nodes, m=2
	model, stats, err := Reduce(sys, 8, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BasisSize < sys.M+sys.N {
		t.Fatalf("basis %d does not span %d", stats.BasisSize, sys.M+sys.N)
	}
	for _, f := range []float64{1e8, 1e10, 1e12} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(got, want); d > 1e-6*(1+cNorm(want)) {
			t.Fatalf("f=%g: full-span error %g", f, d)
		}
	}
}

func TestPRIMALowOrderAccurateLowFrequency(t *testing.T) {
	sys := ladderSystem(60, 250, 1.35e-12)
	model, _, err := Reduce(sys, 2, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e7, 1e8, 5e8} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(got, want); d > 0.01*cNorm(want) {
			t.Fatalf("f=%g: q=2 error %g (scale %g)", f, d, cNorm(want))
		}
	}
}

func TestPRIMAPassivity(t *testing.T) {
	sys := ladderSystem(40, 500, 2e-12)
	model, _, err := Reduce(sys, 3, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	if !model.CheckPassive(1e-8) {
		t.Fatal("PRIMA projection must stay passive")
	}
}

func TestPRIMAVsPACTAtEqualAccuracyGoal(t *testing.T) {
	// Both methods reduce the ladder; both must track the exact
	// admittance below 1 GHz. PACT keeps the exact port blocks so its DC
	// value is exact; PRIMA matches moments so its DC error is also ~0.
	sys := ladderSystem(100, 250, 1.35e-12)
	prima, _, err := Reduce(sys, 2, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	pact, _, err := core.Reduce(sys, core.Options{FMax: 5e9, Tol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e7, 1e8, 1e9} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		scale := cNorm(want)
		yp, err := prima.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(yp, want); d > 0.02*scale {
			t.Fatalf("PRIMA error %g at %g Hz", d/scale, f)
		}
		if d := dense.MaxAbsDiff(pact.Y(s), want); d > 0.02*scale {
			t.Fatalf("PACT error %g at %g Hz", d/scale, f)
		}
	}
}

func TestPRIMARejectsBadArgs(t *testing.T) {
	sys := ladderSystem(5, 100, 1e-12)
	if _, _, err := Reduce(sys, 0, 0, order.MinimumDegree); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestPRIMAMemoryGrowsWithPorts(t *testing.T) {
	sys := ladderSystem(80, 250, 1e-12)
	_, s2, err := Reduce(sys, 2, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := Reduce(sys, 4, 0, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	if s4.PeakVectors <= s2.PeakVectors {
		t.Fatalf("peak vectors %d (q=4) vs %d (q=2)", s4.PeakVectors, s2.PeakVectors)
	}
}

func TestPRIMAShiftedExpansionOnFloatingNetwork(t *testing.T) {
	// A floating RC line (no DC path to ground) has singular G; the
	// shifted expansion must still produce an accurate passive model.
	nseg := 40
	tot := nseg + 1
	gseg := float64(nseg) / 250.0
	cseg := 1.35e-12 / float64(nseg)
	gb := sparse.NewBuilder(tot, tot)
	cb := sparse.NewBuilder(tot, tot)
	for i := 0; i < nseg; i++ {
		gb.Add(i, i, gseg)
		gb.Add(i+1, i+1, gseg)
		gb.AddSym(i, i+1, -gseg)
	}
	for i := 1; i <= nseg; i++ {
		cb.Add(i, i, cseg)
	}
	sys, err := core.Partition(gb.Build(), cb.Build(), []int{0, nseg})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Reduce(sys, 2, 0, order.MinimumDegree); err == nil {
		t.Fatal("singular G accepted at s0 = 0")
	}
	model, _, err := Reduce(sys, 2, 2*math.Pi*1e9, order.MinimumDegree)
	if err != nil {
		t.Fatal(err)
	}
	if !model.CheckPassive(1e-8) {
		t.Fatal("shifted PRIMA lost passivity")
	}
	for _, f := range []float64{1e8, 1e9, 3e9} {
		s := complex(0, 2*math.Pi*f)
		want, err := sys.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.Y(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(got, want); d > 0.02*cNorm(want) {
			t.Fatalf("f=%g: shifted PRIMA error %g", f, d/cNorm(want))
		}
	}
	if _, _, err := Reduce(sys, 2, -1, order.MinimumDegree); err == nil {
		t.Fatal("negative s0 accepted")
	}
}
