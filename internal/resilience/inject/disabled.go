//go:build !pactcheck

package inject

// Enabled reports whether the injection hooks are compiled in. In the
// default build it is a false constant, so the guarded call sites
// (`if inject.Enabled && inject.ShouldFail(...)`) are eliminated as dead
// code and the pipeline pays nothing for its injection points.
const Enabled = false

// ShouldFail is a no-op unless built with -tags pactcheck.
func ShouldFail(p Point, index int) bool { return false }

// Visit is a no-op unless built with -tags pactcheck.
func Visit(p Point, index int) {}

// PoisonValue passes v through unless built with -tags pactcheck.
func PoisonValue(p Point, index int, v float64) float64 { return v }
