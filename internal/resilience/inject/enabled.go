//go:build pactcheck

package inject

import (
	"math"
	"math/rand"
	"sync"
)

// Enabled reports whether the injection hooks are compiled in.
const Enabled = true

type kind int

const (
	kindFail kind = iota
	kindPoison
	kindFunc
)

// rule is one armed fault: fire when the site's index matches (index < 0
// matches any), at most `remaining` times (remaining < 0 = unlimited).
type rule struct {
	kind      kind
	index     int
	remaining int
	poison    float64 // value substituted by PoisonValue rules
	fn        func()  // side effect fired on match (e.g. a context cancel)
}

// Schedule is a set of armed faults. Schedules are built by tests, then
// installed with Install; the zero value of NewSchedule is an empty
// (never-firing) schedule. All methods are safe for concurrent use once
// installed — injection sites run inside worker pools.
type Schedule struct {
	mu    sync.Mutex
	rules map[Point][]*rule
	fired map[Point]int
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{rules: map[Point][]*rule{}, fired: map[Point]int{}}
}

func (s *Schedule) add(p Point, r *rule) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules[p] = append(s.rules[p], r)
	return s
}

// Arm schedules a single failure at the given index of the point
// (index < 0 matches the next occurrence regardless of index).
func (s *Schedule) Arm(p Point, index int) *Schedule { return s.ArmN(p, index, 1) }

// ArmN schedules up to times failures (times < 0 = every occurrence) at
// the given index of the point (index < 0 matches any index).
func (s *Schedule) ArmN(p Point, index, times int) *Schedule {
	return s.add(p, &rule{kind: kindFail, index: index, remaining: times})
}

// ArmPoison schedules the matching PoisonValue site to substitute v
// (typically NaN or ±Inf) for its operand, up to times occurrences
// (times < 0 = every occurrence).
func (s *Schedule) ArmPoison(p Point, index, times int, v float64) *Schedule {
	return s.add(p, &rule{kind: kindPoison, index: index, remaining: times, poison: v})
}

// ArmFunc schedules fn to run when the point fires at the given index
// (once). The site itself observes no failure — ArmFunc models external
// events, canonically a context cancellation arriving mid-stage.
func (s *Schedule) ArmFunc(p Point, index int, fn func()) *Schedule {
	return s.add(p, &rule{kind: kindFunc, index: index, remaining: 1, fn: fn})
}

// FromSeed derives a reproducible randomized schedule: for each listed
// point, one fault is armed at an index drawn uniformly from [0, span),
// using the fault kind the point's call site consumes (a poison value
// for poison points, a failure for everything else). Two calls with the
// same arguments arm identical schedules, so a seeded fault sweep is
// replayable from its seed alone.
func FromSeed(seed int64, span int, points ...Point) *Schedule {
	if span < 1 {
		span = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := NewSchedule()
	for _, p := range points {
		idx := rng.Intn(span)
		if p == CholPoison {
			// Alternate the poison between NaN and +Inf so sweeps cover
			// both non-finite classes the pivot test must reject.
			v := NaN()
			if rng.Intn(2) == 0 {
				v = Inf()
			}
			s.ArmPoison(p, idx, 1, v)
			continue
		}
		s.Arm(p, idx)
	}
	return s
}

// match consumes and returns the first live rule at (p, index) whose
// kind is in want, or nil.
func (s *Schedule) match(p Point, index int, want ...kind) *rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules[p] {
		ok := false
		for _, k := range want {
			if r.kind == k {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		if r.index >= 0 && r.index != index {
			continue
		}
		if r.remaining == 0 {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		s.fired[p]++
		return r
	}
	return nil
}

// Fired reports how many times the point has fired under this schedule,
// so tests can assert an injection actually reached its site.
func (s *Schedule) Fired(p Point) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[p]
}

var (
	instMu    sync.Mutex
	installed *Schedule
)

// Install makes s the active schedule. Tests must pair it with a
// deferred Reset; installing nil is equivalent to Reset.
func Install(s *Schedule) {
	instMu.Lock()
	installed = s
	instMu.Unlock()
}

// Reset removes the active schedule; every site reverts to pass-through.
func Reset() { Install(nil) }

func active() *Schedule {
	instMu.Lock()
	defer instMu.Unlock()
	return installed
}

// ShouldFail reports whether the active schedule arms a failure for the
// point at this index, consuming one firing. Func rules armed at the
// same site run their side effect here and report no failure.
func ShouldFail(p Point, index int) bool {
	s := active()
	if s == nil {
		return false
	}
	r := s.match(p, index, kindFail, kindFunc)
	if r == nil {
		return false
	}
	if r.kind == kindFunc {
		r.fn()
		return false
	}
	return true
}

// Visit fires any func rule armed at (p, index) without reporting
// failure — the hook form for sites that have no natural failure action
// of their own (e.g. the worker pool's per-item checkpoint).
func Visit(p Point, index int) {
	s := active()
	if s == nil {
		return
	}
	if r := s.match(p, index, kindFunc); r != nil {
		r.fn()
	}
}

// PoisonValue returns the armed poison value for (p, index), consuming
// one firing, or v unchanged when nothing is armed.
func PoisonValue(p Point, index int, v float64) float64 {
	s := active()
	if s == nil {
		return v
	}
	if r := s.match(p, index, kindPoison); r != nil {
		return r.poison
	}
	return v
}

// NaN is a convenience poison value.
func NaN() float64 { return math.NaN() }

// Inf is a convenience poison value.
func Inf() float64 { return math.Inf(1) }
