//go:build pactcheck

package inject

import (
	"math"
	"testing"
)

func TestArmFiresOnceAtIndex(t *testing.T) {
	s := NewSchedule().Arm(CholPivot, 3)
	Install(s)
	defer Reset()
	for k := 0; k < 3; k++ {
		if ShouldFail(CholPivot, k) {
			t.Fatalf("fired early at index %d", k)
		}
	}
	if !ShouldFail(CholPivot, 3) {
		t.Fatal("did not fire at armed index 3")
	}
	if ShouldFail(CholPivot, 3) {
		t.Fatal("single-shot rule fired twice")
	}
	if got := s.Fired(CholPivot); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestArmAnyIndexAndUnlimited(t *testing.T) {
	Install(NewSchedule().ArmN(NewtonIter, -1, -1))
	defer Reset()
	for k := 0; k < 5; k++ {
		if !ShouldFail(NewtonIter, k) {
			t.Fatalf("unlimited any-index rule did not fire at %d", k)
		}
	}
}

func TestPoison(t *testing.T) {
	Install(NewSchedule().ArmPoison(CholPoison, 2, 1, NaN()))
	defer Reset()
	if v := PoisonValue(CholPoison, 0, 7.5); v != 7.5 {
		t.Fatalf("unarmed index poisoned: %g", v)
	}
	if v := PoisonValue(CholPoison, 2, 7.5); !math.IsNaN(v) {
		t.Fatalf("armed index not poisoned: %g", v)
	}
	if v := PoisonValue(CholPoison, 2, 7.5); !(v == 7.5) {
		t.Fatalf("consumed poison rule fired again: %g", v)
	}
}

func TestArmFuncViaVisitAndShouldFail(t *testing.T) {
	calls := 0
	Install(NewSchedule().
		ArmFunc(ParItem, 4, func() { calls++ }).
		ArmFunc(LanczosIter, -1, func() { calls += 10 }))
	defer Reset()
	Visit(ParItem, 3)
	if calls != 0 {
		t.Fatal("func fired at wrong index")
	}
	Visit(ParItem, 4)
	if calls != 1 {
		t.Fatalf("func did not fire exactly once: %d", calls)
	}
	// A func rule reached through ShouldFail runs but reports no failure.
	if ShouldFail(LanczosIter, 0) {
		t.Fatal("func rule must not report failure")
	}
	if calls != 11 {
		t.Fatalf("ShouldFail did not run the func rule: %d", calls)
	}
}

func TestVisitDoesNotConsumeFailRules(t *testing.T) {
	Install(NewSchedule().Arm(LanczosIter, 5))
	defer Reset()
	Visit(LanczosIter, 5) // must not eat the fail rule
	if !ShouldFail(LanczosIter, 5) {
		t.Fatal("Visit consumed a fail rule")
	}
}

func TestFromSeedReproducible(t *testing.T) {
	a := FromSeed(42, 100, CholPivot, LanczosIter)
	b := FromSeed(42, 100, CholPivot, LanczosIter)
	for _, p := range []Point{CholPivot, LanczosIter} {
		// The schedules must arm identical indices: walk indices until one
		// fires and compare.
		Install(a)
		ia := -1
		for k := 0; k < 100; k++ {
			if ShouldFail(p, k) {
				ia = k
				break
			}
		}
		Install(b)
		ib := -1
		for k := 0; k < 100; k++ {
			if ShouldFail(p, k) {
				ib = k
				break
			}
		}
		Reset()
		if ia != ib || ia < 0 {
			t.Fatalf("point %s: seeded schedules diverge (%d vs %d)", p, ia, ib)
		}
	}
}

// TestCatalogPinsCount pins the size and membership of the injection
// catalog: fourteen points, one per documented site. Adding a point
// without extending Catalog() (and the DESIGN.md §9 table plus a seeded
// sweep) fails here.
func TestCatalogPinsCount(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d points, want 14 (update Catalog, DESIGN.md §9 and the seeded sweeps)", len(cat))
	}
	want := map[Point]bool{
		CholPivot: true, CholPoison: true, CholComplexPivot: true, CholDAGTask: true,
		LanczosIter: true, NewtonIter: true, SimSparseLUPivot: true, SimACComplexSolve: true,
		ParItem: true, SvcAdmit: true, SvcCacheStore: true, SvcFlightLeader: true,
		MPShiftFactor: true, StampAssemble: true,
	}
	for _, p := range cat {
		if !want[p] {
			t.Fatalf("catalog lists unknown point %q", p)
		}
		delete(want, p)
	}
	for p := range want {
		t.Errorf("catalog is missing point %q", p)
	}
	for _, p := range []Point{SvcAdmit, SvcCacheStore, SvcFlightLeader} {
		found := false
		for _, q := range cat {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("service point %q missing from catalog", p)
		}
	}
}

// TestFromSeedCoversSeedableCatalog proves every seedable catalog point
// — the full set minus the func-only par.item — is reachable from a
// seeded sweep: FromSeed over Seedable() arms exactly one live rule per
// point, and walking the armed span fires each of them (through
// PoisonValue for the poison point, ShouldFail for the rest). This is
// the coverage guarantee the nightly 200-seed sweep rests on; a point
// FromSeed silently skipped would never be drilled by it.
func TestFromSeedCoversSeedableCatalog(t *testing.T) {
	const span = 25
	seedable := Seedable()
	if want := len(Catalog()) - 1; len(seedable) != want {
		t.Fatalf("Seedable lists %d points, want %d (catalog minus par.item)", len(seedable), want)
	}
	for _, p := range seedable {
		if p == ParItem {
			t.Fatalf("func-only point %q must not be seedable", p)
		}
	}
	s := FromSeed(99, span, seedable...)
	Install(s)
	defer Reset()
	for _, p := range seedable {
		fired := false
		for k := 0; k < span && !fired; k++ {
			if p == CholPoison {
				v := PoisonValue(p, k, 1.5)
				fired = math.IsNaN(v) || math.IsInf(v, 0)
				continue
			}
			fired = ShouldFail(p, k)
		}
		if !fired {
			t.Errorf("point %q not reachable from the seeded sweep over [0,%d)", p, span)
		}
		if got := s.Fired(p); fired && got != 1 {
			t.Errorf("point %q fired %d times, want exactly 1", p, got)
		}
	}
}

func TestNoScheduleIsPassThrough(t *testing.T) {
	Reset()
	if ShouldFail(CholPivot, 0) {
		t.Fatal("no schedule must mean no failures")
	}
	if v := PoisonValue(CholPoison, 0, 1.25); v != 1.25 {
		t.Fatalf("no schedule must pass values through, got %g", v)
	}
}

// TestFromSeedArmsPoisonForPoisonPoints pins the kind-awareness of
// seeded schedules: chol.poison must be armed as a poison rule (a
// non-finite value surfacing through PoisonValue), never as a fail rule
// a ShouldFail site would consume.
func TestFromSeedArmsPoisonForPoisonPoints(t *testing.T) {
	const span = 50
	Install(FromSeed(7, span, CholPoison))
	defer Reset()
	for k := 0; k < span; k++ {
		if ShouldFail(CholPoison, k) {
			t.Fatalf("seeded poison point armed as a fail rule at index %d", k)
		}
	}
	armed := -1
	for k := 0; k < span; k++ {
		v := PoisonValue(CholPoison, k, 1.25)
		if v == 1.25 {
			continue
		}
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			t.Fatalf("poison at index %d is %v, want NaN or ±Inf", k, v)
		}
		armed = k
		break
	}
	if armed < 0 {
		t.Fatal("seeded schedule armed no poison for chol.poison")
	}
	// Replaying the seed must arm the identical index and value class.
	Install(FromSeed(7, span, CholPoison))
	if v := PoisonValue(CholPoison, armed, 1.25); v == 1.25 {
		t.Fatalf("replayed seed did not arm index %d", armed)
	}
}
