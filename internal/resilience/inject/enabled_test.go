//go:build pactcheck

package inject

import (
	"math"
	"testing"
)

func TestArmFiresOnceAtIndex(t *testing.T) {
	s := NewSchedule().Arm(CholPivot, 3)
	Install(s)
	defer Reset()
	for k := 0; k < 3; k++ {
		if ShouldFail(CholPivot, k) {
			t.Fatalf("fired early at index %d", k)
		}
	}
	if !ShouldFail(CholPivot, 3) {
		t.Fatal("did not fire at armed index 3")
	}
	if ShouldFail(CholPivot, 3) {
		t.Fatal("single-shot rule fired twice")
	}
	if got := s.Fired(CholPivot); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestArmAnyIndexAndUnlimited(t *testing.T) {
	Install(NewSchedule().ArmN(NewtonIter, -1, -1))
	defer Reset()
	for k := 0; k < 5; k++ {
		if !ShouldFail(NewtonIter, k) {
			t.Fatalf("unlimited any-index rule did not fire at %d", k)
		}
	}
}

func TestPoison(t *testing.T) {
	Install(NewSchedule().ArmPoison(CholPoison, 2, 1, NaN()))
	defer Reset()
	if v := PoisonValue(CholPoison, 0, 7.5); v != 7.5 {
		t.Fatalf("unarmed index poisoned: %g", v)
	}
	if v := PoisonValue(CholPoison, 2, 7.5); !math.IsNaN(v) {
		t.Fatalf("armed index not poisoned: %g", v)
	}
	if v := PoisonValue(CholPoison, 2, 7.5); !(v == 7.5) {
		t.Fatalf("consumed poison rule fired again: %g", v)
	}
}

func TestArmFuncViaVisitAndShouldFail(t *testing.T) {
	calls := 0
	Install(NewSchedule().
		ArmFunc(ParItem, 4, func() { calls++ }).
		ArmFunc(LanczosIter, -1, func() { calls += 10 }))
	defer Reset()
	Visit(ParItem, 3)
	if calls != 0 {
		t.Fatal("func fired at wrong index")
	}
	Visit(ParItem, 4)
	if calls != 1 {
		t.Fatalf("func did not fire exactly once: %d", calls)
	}
	// A func rule reached through ShouldFail runs but reports no failure.
	if ShouldFail(LanczosIter, 0) {
		t.Fatal("func rule must not report failure")
	}
	if calls != 11 {
		t.Fatalf("ShouldFail did not run the func rule: %d", calls)
	}
}

func TestVisitDoesNotConsumeFailRules(t *testing.T) {
	Install(NewSchedule().Arm(LanczosIter, 5))
	defer Reset()
	Visit(LanczosIter, 5) // must not eat the fail rule
	if !ShouldFail(LanczosIter, 5) {
		t.Fatal("Visit consumed a fail rule")
	}
}

func TestFromSeedReproducible(t *testing.T) {
	a := FromSeed(42, 100, CholPivot, LanczosIter)
	b := FromSeed(42, 100, CholPivot, LanczosIter)
	for _, p := range []Point{CholPivot, LanczosIter} {
		// The schedules must arm identical indices: walk indices until one
		// fires and compare.
		Install(a)
		ia := -1
		for k := 0; k < 100; k++ {
			if ShouldFail(p, k) {
				ia = k
				break
			}
		}
		Install(b)
		ib := -1
		for k := 0; k < 100; k++ {
			if ShouldFail(p, k) {
				ib = k
				break
			}
		}
		Reset()
		if ia != ib || ia < 0 {
			t.Fatalf("point %s: seeded schedules diverge (%d vs %d)", p, ia, ib)
		}
	}
}

func TestNoScheduleIsPassThrough(t *testing.T) {
	Reset()
	if ShouldFail(CholPivot, 0) {
		t.Fatal("no schedule must mean no failures")
	}
	if v := PoisonValue(CholPoison, 0, 1.25); v != 1.25 {
		t.Fatalf("no schedule must pass values through, got %g", v)
	}
}

// TestFromSeedArmsPoisonForPoisonPoints pins the kind-awareness of
// seeded schedules: chol.poison must be armed as a poison rule (a
// non-finite value surfacing through PoisonValue), never as a fail rule
// a ShouldFail site would consume.
func TestFromSeedArmsPoisonForPoisonPoints(t *testing.T) {
	const span = 50
	Install(FromSeed(7, span, CholPoison))
	defer Reset()
	for k := 0; k < span; k++ {
		if ShouldFail(CholPoison, k) {
			t.Fatalf("seeded poison point armed as a fail rule at index %d", k)
		}
	}
	armed := -1
	for k := 0; k < span; k++ {
		v := PoisonValue(CholPoison, k, 1.25)
		if v == 1.25 {
			continue
		}
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			t.Fatalf("poison at index %d is %v, want NaN or ±Inf", k, v)
		}
		armed = k
		break
	}
	if armed < 0 {
		t.Fatal("seeded schedule armed no poison for chol.poison")
	}
	// Replaying the seed must arm the identical index and value class.
	Install(FromSeed(7, span, CholPoison))
	if v := PoisonValue(CholPoison, armed, 1.25); v == 1.25 {
		t.Fatalf("replayed seed did not arm index %d", armed)
	}
}
