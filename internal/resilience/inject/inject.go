// Package inject is the deterministic fault-injection harness of the
// resilience layer. Each fragile stage of the pipeline hosts one or more
// named injection points; a test installs a Schedule that arms specific
// points at specific occurrences, runs the pipeline, and asserts the
// recovery ladder's outcome — a degraded-but-bounded result, or a typed
// terminal error naming the stage and the attempts.
//
// Like internal/check, the harness is compiled out of release builds: in
// the default build every hook is a no-op stub and Enabled is a false
// constant, so the guarded call sites
//
//	if inject.Enabled && inject.ShouldFail(inject.CholPivot, k) { ... }
//
// are eliminated as dead code. Building with -tags pactcheck swaps in
// the real implementation.
//
// Schedules are deterministic by construction: a rule fires on an exact
// (point, index) match with a bounded fire count, and FromSeed derives a
// randomized-but-reproducible schedule from a seed, so every rung of
// every ladder can be exercised reproducibly in CI.
package inject

// Point names one injection site in the pipeline. The catalog below is
// documented in DESIGN.md §9; every point has at least one test forcing
// a fault through it.
type Point string

// The injection-point catalog.
const (
	// CholPivot forces a pivot failure on the k-th elimination of the
	// real Cholesky factorization (chol.Factorize): the site returns
	// ErrNotPositiveDefinite as if pivot k had collapsed.
	CholPivot Point = "chol.pivot"
	// CholPoison poisons the scattered diagonal entry of elimination k
	// with the armed value (NaN or ±Inf) before the pivot test.
	CholPoison Point = "chol.poison"
	// CholComplexPivot forces a zero-pivot failure at step k of the
	// complex LDLᵀ factorization (chol.FactorizeComplex).
	CholComplexPivot Point = "chol.complexpivot"
	// CholDAGTask fails the supernodal panel task for supernode s before
	// any of its arithmetic runs, modeling a task-level fault in the
	// DAG-scheduled factorization. The scheduler has no early exit —
	// every other panel still factors and the lowest-indexed failure is
	// reported — so arming this point exercises the drain-and-report
	// path under race detection.
	CholDAGTask Point = "chol.dag.task"
	// LanczosIter fails the Lanczos iteration at step j
	// (lanczos.FindAbove / lanczos.TwoPass), modeling stagnation or
	// breakdown on a clustered spectrum.
	LanczosIter Point = "lanczos.iter"
	// NewtonIter forces Newton non-convergence at iteration k of one
	// sim.Circuit Newton solve.
	NewtonIter Point = "newton.iter"
	// SimSparseLUPivot forces a singular-pivot failure at elimination
	// column k of one sparse LU factorization (sim.LUFactor), as if
	// partial pivoting found the whole candidate column exactly zero.
	SimSparseLUPivot Point = "sim.sparselu.pivot"
	// SimACComplexSolve fails the complex factor-and-solve of frequency
	// point i in an AC sweep (sim.Circuit.ACCtx), modeling a resonant
	// point where the complex MNA matrix is numerically singular.
	SimACComplexSolve Point = "sim.ac.complexsolve"
	// ParItem is visited by the worker pool before work item i of a
	// context-aware parallel region; arm it with a func (ArmFunc) that
	// cancels the region's context to test mid-stage cancellation.
	ParItem Point = "par.item"
	// SvcAdmit fires at admission decision i of the reduction service
	// (internal/service): an armed failure forces a deterministic shed —
	// the request is rejected 429 exactly as if the admission queue were
	// at its depth limit.
	SvcAdmit Point = "svc.admit"
	// SvcCacheStore fails store i into the service's content-addressed
	// model cache: the completed result is returned to its requester but
	// the cache write is dropped, so the next identical deck misses and
	// re-reduces instead of observing a corrupt entry.
	SvcCacheStore Point = "svc.cache.store"
	// SvcFlightLeader fails the leader of singleflight i before its
	// reduction runs: a plain arm surfaces a typed StageError that every
	// follower of the flight must observe verbatim; an ArmFunc that
	// panics models a leader crash mid-flight, which must fail followers
	// over to a fresh attempt instead of hanging them.
	SvcFlightLeader Point = "svc.flight.leader"
	// MPShiftFactor fails the shifted factorization of D + s₀E for
	// expansion point k of a multi-expansion-point reduction before any
	// numeric work runs. The basis union must degrade to the surviving
	// shifts (recording a Recovery) and only surface a typed StageError
	// when every expansion point fails.
	MPShiftFactor Point = "mp.shiftfactor"
	// StampAssemble fails stamping chunk i of the parallel element loop
	// in stamp.Extract before any of its triplets are emitted. The other
	// chunks still run to completion and the lowest-indexed armed chunk
	// is the error reported, so drilling this point under -race proves
	// the bucketed assembly drains deterministically on failure.
	StampAssemble Point = "stamp.assemble"
)

// Catalog lists every injection point in the pipeline, in the
// declaration order above. The count is pinned by a test so a new point
// cannot be added without joining the catalog (and therefore the seeded
// sweeps and the DESIGN.md table).
func Catalog() []Point {
	return []Point{
		CholPivot, CholPoison, CholComplexPivot, CholDAGTask,
		LanczosIter, NewtonIter, SimSparseLUPivot, SimACComplexSolve,
		ParItem, SvcAdmit, SvcCacheStore, SvcFlightLeader,
		MPShiftFactor, StampAssemble,
	}
}

// Seedable lists the catalog points FromSeed can arm on its own: every
// point whose call site consumes a fail or poison rule. The func-only
// ParItem is excluded — a seeded sweep derives its cancellation index
// from the seed and arms it with ArmFunc explicitly.
func Seedable() []Point {
	var out []Point
	for _, p := range Catalog() {
		if p == ParItem {
			continue
		}
		out = append(out, p)
	}
	return out
}
