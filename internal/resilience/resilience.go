// Package resilience is the failure taxonomy of the PACT pipeline. The
// reduction's guarantees (passivity, absolute stability, bounded error)
// hold only while every numerical stage succeeds, and the paper assumes
// the failure modes away: an internal node with no DC path to a port
// makes D singular, Lanczos can stagnate on clustered spectra, and the
// simulator's Newton loop can walk off a cliff on a stiff nonlinearity.
// Real extracted netlists hit all three.
//
// This package gives every fragile stage a shared vocabulary:
//
//   - StageError is the terminal, typed failure of one pipeline stage. It
//     names the stage, the offending node/pivot/eigenpair, and every
//     recovery rung that was attempted before surrender. It wraps the
//     stage's underlying sentinel error, so existing errors.Is callers
//     (chol.ErrNotPositiveDefinite, context.Canceled, ...) keep working.
//
//   - Recovery records a degradation that kept a stage alive — a diagonal
//     regularization of D, a Lanczos restart, a dense-eigenpath fallback,
//     a gmin/source-stepping continuation — together with its quantified
//     cost (the applied perturbation and its worst-case admittance error
//     bound), so a caller can decide whether a degraded result is usable.
//
// The package depends only on the standard library; the numerical
// packages it describes import it, never the reverse.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Stage identifies one fragile stage of the pipeline.
type Stage string

// The stages with recovery ladders.
const (
	// StageCholesky is the sparse Cholesky factorization of the internal
	// conductance block D (Transform 1). Its ladder retries with
	// escalating diagonal regularization D + γI.
	StageCholesky Stage = "cholesky(D)"
	// StagePoleAnalysis is the Lanczos pole analysis of E′ (Transform 2).
	// Its ladder restarts with a fresh seed vector and full
	// reorthogonalization, then falls back to the dense eigenpath.
	StagePoleAnalysis Stage = "pole-analysis(E')"
	// StageNewton is the simulator's Newton–Raphson operating-point solve.
	// Its ladder falls through gmin stepping then source stepping.
	StageNewton Stage = "newton(DC)"
	// StageYEval is the exact admittance evaluation (complex LDLᵀ of
	// D + sE); it has no ladder — a singular D + sE is terminal — but its
	// failures carry the same typed shape.
	StageYEval Stage = "admittance(D+sE)"
	// StageTransient is the simulator's transient integration loop.
	StageTransient Stage = "transient"
	// StageAC is the simulator's small-signal frequency sweep.
	StageAC Stage = "ac-sweep"
	// StageService is the reduction service's request path
	// (internal/service): admission, singleflight leadership and cache
	// maintenance. It has no numerical ladder — its failures are typed so
	// every follower of a deduplicated flight observes the same
	// StageError the leader produced.
	StageService Stage = "service(reduce)"
	// StageMultiPoint is the multi-expansion-point basis construction
	// (core, shifted factorizations of D + s₀E plus the basis union). Its
	// ladder degrades to the expansion points whose factorizations
	// survived; only when every shift fails is the stage terminal.
	StageMultiPoint Stage = "multipoint(D+sE)"
	// StageExtract is the deck-to-matrices front end (stamp.Extract):
	// element classification, port detection and the parallel bucketed
	// stamping of the conductance/susceptance matrices. It has no ladder
	// — a malformed element or an injected assembly fault is terminal —
	// but its failures carry the same typed shape, with the lowest
	// failing stamping chunk reported deterministically.
	StageExtract Stage = "extract(stamp)"
)

// Attempt records one rung of a recovery ladder: what was tried and how
// it failed (Err is nil for the rung that succeeded, in which case the
// ladder reports a Recovery instead of a StageError).
type Attempt struct {
	// Action describes the rung, e.g. "regularize D+γI, γ=1.2e-9".
	Action string
	// Err is the failure of this rung.
	Err error
}

// StageError is the terminal failure of a pipeline stage after its
// recovery ladder (if any) is exhausted.
type StageError struct {
	// Stage names the failing stage.
	Stage Stage
	// Detail pins the failure to the offending object: a pivot index, an
	// internal node, an eigenpair, a time point.
	Detail string
	// Attempts lists every recovery rung tried, in order.
	Attempts []Attempt
	// Err is the underlying error of the final (or only) attempt; Unwrap
	// exposes it so errors.Is/As reach the stage's sentinel errors and
	// context cancellation causes.
	Err error
}

// Error formats the stage, detail, attempts and cause on one line.
func (e *StageError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience: stage %s failed", e.Stage)
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if len(e.Attempts) > 0 {
		fmt.Fprintf(&b, " after %d recovery attempt(s): ", len(e.Attempts))
		for i, a := range e.Attempts {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(a.Action)
			if a.Err != nil {
				fmt.Fprintf(&b, " -> %v", a.Err)
			}
		}
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// NewStageError builds a StageError; attempts may be nil for stages
// without a ladder.
func NewStageError(stage Stage, detail string, attempts []Attempt, cause error) *StageError {
	return &StageError{Stage: stage, Detail: detail, Attempts: attempts, Err: cause}
}

// Canceled wraps a context cancellation observed inside a stage. The
// returned error satisfies errors.Is for the context's cause
// (context.Canceled or context.DeadlineExceeded), so callers distinguish
// a user abort from a numerical failure with the standard predicates.
func Canceled(stage Stage, ctx context.Context) *StageError {
	return &StageError{Stage: stage, Detail: "canceled", Err: ctx.Err()}
}

// IsCancellation reports whether err was (ultimately) caused by context
// cancellation or deadline expiry — the one failure class recovery
// ladders must NOT retry through: the user asked for the work to stop.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Recovery records a degradation that kept a stage alive.
type Recovery struct {
	// Stage is the stage that degraded.
	Stage Stage
	// Action names the rung that succeeded, e.g. "regularize D+γI" or
	// "dense eigenpath fallback".
	Action string
	// Attempts is the total number of rungs tried, including the one that
	// succeeded.
	Attempts int
	// Gamma is the applied diagonal perturbation (StageCholesky only).
	Gamma float64
	// ErrBound is the worst-case admittance error introduced by the
	// degradation, in the same units as the admittance entries
	// (StageCholesky: the first-order DC bound γ·‖D_γ⁻¹Q‖²_F; zero when
	// the degradation is exact, e.g. the dense eigenpath fallback).
	ErrBound float64
	// Reason is the failure that forced the degradation, as text (kept as
	// a string so Recovery values are plain data, comparable and
	// serializable).
	Reason string
}

// String formats the recovery for logs and CLI reports.
func (r Recovery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", r.Stage, r.Action)
	if r.Attempts > 1 {
		fmt.Fprintf(&b, " (attempt %d)", r.Attempts)
	}
	if r.Gamma != 0 {
		fmt.Fprintf(&b, ", γ=%.3g", r.Gamma)
	}
	if r.ErrBound != 0 {
		fmt.Fprintf(&b, ", worst-case admittance error %.3g", r.ErrBound)
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, " [cause: %s]", r.Reason)
	}
	return b.String()
}
