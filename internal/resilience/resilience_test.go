package resilience

import (
	"context"
	"errors"
	"strings"
	"testing"
)

var errSentinel = errors.New("pivot 3 is not positive definite")

func TestStageErrorWrapsSentinel(t *testing.T) {
	t.Parallel()
	e := NewStageError(StageCholesky, "pivot 3", []Attempt{
		{Action: "regularize γ=1e-12", Err: errSentinel},
		{Action: "regularize γ=1e-9", Err: errSentinel},
	}, errSentinel)
	if !errors.Is(e, errSentinel) {
		t.Fatal("StageError must unwrap to the stage's sentinel error")
	}
	var se *StageError
	if !errors.As(e, &se) || se.Stage != StageCholesky {
		t.Fatalf("errors.As failed or wrong stage: %v", se)
	}
	msg := e.Error()
	for _, want := range []string{"cholesky(D)", "pivot 3", "2 recovery attempt", "γ=1e-12"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func TestCanceled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := Canceled(StagePoleAnalysis, ctx)
	if !errors.Is(e, context.Canceled) {
		t.Fatal("Canceled must satisfy errors.Is(err, context.Canceled)")
	}
	if !IsCancellation(e) {
		t.Fatal("IsCancellation must detect a wrapped context cancellation")
	}
	if IsCancellation(errSentinel) {
		t.Fatal("IsCancellation must not fire on numerical failures")
	}
}

func TestDeadlineIsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	if !IsCancellation(Canceled(StageNewton, ctx)) {
		t.Fatal("deadline expiry must count as cancellation")
	}
}

func TestRecoveryString(t *testing.T) {
	t.Parallel()
	r := Recovery{
		Stage:    StageCholesky,
		Action:   "regularize D+γI",
		Attempts: 2,
		Gamma:    1.5e-9,
		ErrBound: 3e-7,
		Reason:   "pivot 4 collapsed",
	}
	s := r.String()
	for _, want := range []string{"cholesky(D)", "regularize", "attempt 2", "1.5e-09", "3e-07", "pivot 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Recovery string %q missing %q", s, want)
		}
	}
}
