package service

import (
	"container/list"
	"sync"

	pact "repro"
	"repro/internal/resilience/inject"
)

// Result is one finished reduction as the service caches and serves it:
// the realized reduced deck plus the statistics a client needs to judge
// the result (degradations, pole count, pooled-workspace footprint).
// Results are immutable once stored — every cache hit and every
// singleflight follower shares the same value.
type Result struct {
	// Deck is the reduced SPICE netlist text.
	Deck string `json:"deck"`
	// Poles is the number of retained poles (internal nodes realized).
	Poles int `json:"poles"`
	// Ports and Internal describe the extracted RC network.
	Ports    int `json:"ports"`
	Internal int `json:"internal"`
	// Recoveries lists the recovery-ladder rungs that fired, rendered as
	// text; a non-empty list marks the result degraded-but-bounded.
	Recoveries []string `json:"recoveries,omitempty"`
	// ScratchBytes is the pooled FactorWorkspace footprint of the
	// reduction that produced this result.
	ScratchBytes int64 `json:"scratch_bytes"`
	// ElapsedNs is the wall-clock time of the producing reduction; a
	// cache hit returns it unchanged, so clients can see what they saved.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Stage is the per-stage wall-time breakdown of the producing
	// reduction (parse/stamp/assemble/order/symbolic/factor), carried so
	// clients can see where a slow deck spent its time.
	Stage pact.StageTimes `json:"stage_ns"`
}

// CacheStats is the cache counter snapshot reported by /statz.
type CacheStats struct {
	Entries    int     `json:"entries"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Stores     int64   `json:"stores"`
	StoreDrops int64   `json:"store_drops"`
	Evictions  int64   `json:"evictions"`
	HitRate    float64 `json:"hit_rate"`
}

// modelCache is a bounded LRU of reduced models keyed by canonical
// content hash. It is safe for concurrent use; eviction is strictly
// least-recently-used so a steady repeated-deck workload converges to a
// 100% hit rate regardless of interleaving.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element

	hits, misses, stores, storeDrops, evictions int64
}

type cacheEntry struct {
	key string
	res *Result
}

func newModelCache(capacity int) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{capacity: capacity, ll: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached result for key, promoting it to most recently
// used, and records a hit or miss.
func (c *modelCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// store inserts res under key, evicting from the LRU tail past
// capacity. seq is the server-wide store sequence number: the
// svc.cache.store injection point fires on it, and an armed failure
// drops the write (counted in store_drops) — the requester still gets
// its result, the next identical deck simply misses. Returns whether
// the entry was actually stored.
func (c *modelCache) store(key string, res *Result, seq int) bool {
	if inject.Enabled && inject.ShouldFail(inject.SvcCacheStore, seq) {
		c.mu.Lock()
		c.storeDrops++
		c.mu.Unlock()
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	if el, ok := c.byKey[key]; ok {
		// A racing leader already stored this key; keep the existing
		// entry (results for one key are interchangeable by construction).
		c.ll.MoveToFront(el)
		return true
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res})
	c.byKey[key] = el
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
	return true
}

// snapshot returns the counters under one lock acquisition.
func (c *modelCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries:    c.ll.Len(),
		Hits:       c.hits,
		Misses:     c.misses,
		Stores:     c.stores,
		StoreDrops: c.storeDrops,
		Evictions:  c.evictions,
	}
	if lookups := s.Hits + s.Misses; lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(lookups)
	}
	return s
}
