package service

import (
	"fmt"
	"testing"
)

func res(tag string) *Result { return &Result{Deck: tag} }

func TestCacheHitMissAndPromotion(t *testing.T) {
	c := newModelCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.store("a", res("a"), 0)
	c.store("b", res("b"), 1)
	if r, ok := c.get("a"); !ok || r.Deck != "a" {
		t.Fatalf("a not cached: %v %v", r, ok)
	}
	// a is now most recently used; storing c must evict b, not a.
	c.store("c", res("c"), 2)
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU evicted the wrong entry (b survived)")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	s := c.snapshot()
	if s.Entries != 2 || s.Evictions != 1 || s.Stores != 3 {
		t.Fatalf("snapshot %+v, want 2 entries, 1 eviction, 3 stores", s)
	}
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("snapshot %+v, want 2 hits / 2 misses", s)
	}
	if want := 0.5; s.HitRate != want {
		t.Fatalf("hit rate %g, want %g", s.HitRate, want)
	}
}

func TestCacheDuplicateStoreKeepsFirstEntry(t *testing.T) {
	c := newModelCache(4)
	first := res("first")
	c.store("k", first, 0)
	c.store("k", res("second"), 1)
	got, ok := c.get("k")
	if !ok || got != first {
		t.Fatalf("duplicate store replaced the entry: got %v", got)
	}
	if s := c.snapshot(); s.Entries != 1 {
		t.Fatalf("duplicate store grew the cache: %+v", s)
	}
}

func TestCacheCapacityBound(t *testing.T) {
	c := newModelCache(8)
	for i := 0; i < 100; i++ {
		c.store(fmt.Sprintf("k%d", i), res("x"), i)
	}
	s := c.snapshot()
	if s.Entries != 8 {
		t.Fatalf("cache grew past capacity: %d entries", s.Entries)
	}
	if s.Evictions != 92 {
		t.Fatalf("evictions = %d, want 92", s.Evictions)
	}
	// The survivors are exactly the 8 most recent keys.
	for i := 92; i < 100; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d evicted", i)
		}
	}
}
