package service

import (
	"errors"
	"fmt"
	"sync"
)

// errLeaderCrashed is the terminal error a follower reports when every
// failover attempt also crashed; it never surfaces unless maxFailovers
// consecutive leaders panic on the same key.
var errLeaderCrashed = errors.New("service: reduction leader crashed")

// maxFailovers bounds how many fresh attempts a follower makes after
// observing leader crashes, so a deterministically-crashing deck ends in
// a typed error instead of an unbounded retry storm.
const maxFailovers = 3

// FlightStats is the singleflight counter snapshot reported by /statz.
type FlightStats struct {
	// Leaders counts flights that ran the reduction; Followers counts
	// requests that waited on another request's flight instead of paying
	// their own factorization.
	Leaders   int64 `json:"leaders"`
	Followers int64 `json:"followers"`
	// Crashes counts leader panics; Failovers counts follower retries
	// caused by them.
	Crashes   int64 `json:"crashes"`
	Failovers int64 `json:"failovers"`
}

// flight is one in-progress reduction: followers block on done, then
// read res/err. crashed marks a leader panic — followers must not trust
// err as the reduction's outcome and instead fail over to a fresh
// attempt. Fields other than done are written only by the leader before
// close(done), so the channel close is the publication barrier.
type flight struct {
	done    chan struct{}
	res     *Result
	err     error
	crashed bool
}

// flightGroup deduplicates concurrent work by key: the first request
// becomes the leader and runs fn; every request arriving for the same
// key before the leader finishes becomes a follower and observes the
// leader's result or its typed error. A leader panic is contained and
// converted to failover: followers retry (one becoming the next
// leader), bounded by maxFailovers.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight

	leaders, followers, crashes, failovers int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// do runs fn under singleflight semantics for key and reports the
// result, the error, and whether this caller led the flight (false =
// the result was inherited from another request's flight).
func (g *flightGroup) do(key string, fn func() (*Result, error)) (res *Result, err error, led bool) {
	for attempt := 0; ; attempt++ {
		g.mu.Lock()
		if f, ok := g.flights[key]; ok {
			g.followers++
			if attempt > 0 {
				g.failovers++
			}
			g.mu.Unlock()
			<-f.done
			if !f.crashed {
				return f.res, f.err, false
			}
			if attempt+1 >= maxFailovers {
				return nil, fmt.Errorf("%w (gave up after %d failover attempts)", errLeaderCrashed, attempt+1), false
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.leaders++
		if attempt > 0 {
			g.failovers++
		}
		g.mu.Unlock()

		f.res, f.err, f.crashed = runProtected(fn)
		g.mu.Lock()
		delete(g.flights, key)
		if f.crashed {
			g.crashes++
		}
		g.mu.Unlock()
		close(f.done)
		return f.res, f.err, true
	}
}

// runProtected runs fn, converting a panic into (nil, error, crashed)
// so one crashing reduction cannot take the daemon down and followers
// can distinguish a crash (retry fresh) from a typed failure (share it).
func runProtected(fn func() (*Result, error)) (res *Result, err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, crashed = nil, fmt.Errorf("%w: %v", errLeaderCrashed, r), true
		}
	}()
	res, err = fn()
	return res, err, false
}

// snapshot returns the counters under one lock acquisition.
func (g *flightGroup) snapshot() FlightStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return FlightStats{Leaders: g.leaders, Followers: g.followers, Crashes: g.crashes, Failovers: g.failovers}
}
