package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedup pins the singleflight contract: N concurrent
// identical keys run the work function once, every caller observes the
// same *Result pointer, and exactly one caller reports having led.
func TestFlightDedup(t *testing.T) {
	g := newFlightGroup()
	const n = 16
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	shared := res("shared")
	fn := func() (*Result, error) {
		calls.Add(1)
		close(entered)
		<-release
		return shared, nil
	}

	var wg sync.WaitGroup
	results := make([]*Result, n)
	leds := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, leds[0] = g.do("k", fn)
	}()
	<-entered // the leader is inside fn; everyone else must follow
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, leds[i] = g.do("k", func() (*Result, error) {
				t.Error("a follower ran the work function")
				return nil, nil
			})
		}(i)
	}
	// Wait until every follower is registered before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for g.snapshot().Followers < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined", g.snapshot().Followers)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("work ran %d times, want 1", got)
	}
	nLed := 0
	for i := range results {
		if results[i] != shared {
			t.Fatalf("caller %d got %v, want the shared result", i, results[i])
		}
		if leds[i] {
			nLed++
		}
	}
	if nLed != 1 {
		t.Fatalf("%d callers led, want 1", nLed)
	}
	s := g.snapshot()
	if s.Leaders != 1 || s.Followers != n-1 || s.Crashes != 0 {
		t.Fatalf("stats %+v, want 1 leader, %d followers", s, n-1)
	}
}

// TestFlightSharesTypedError pins error propagation: followers inherit
// the leader's error value verbatim.
func TestFlightSharesTypedError(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("typed failure")
	entered := make(chan struct{})
	release := make(chan struct{})
	errs := make(chan error, 2)
	go func() {
		_, err, _ := g.do("k", func() (*Result, error) {
			close(entered)
			<-release
			return nil, boom
		})
		errs <- err
	}()
	<-entered
	go func() {
		_, err, _ := g.do("k", func() (*Result, error) { return nil, nil })
		errs <- err
	}()
	for g.snapshot().Followers < 1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("caller %d got %v, want the leader's error", i, err)
		}
	}
}

// TestFlightCrashFailsOverFollowers pins the crash contract: a leader
// panic is contained, the leader reports the crash, and a waiting
// follower retries on a fresh flight instead of hanging or inheriting
// the panic.
func TestFlightCrashFailsOverFollowers(t *testing.T) {
	g := newFlightGroup()
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, err, _ := g.do("k", func() (*Result, error) {
			close(entered)
			<-release
			panic("drill: leader dies mid-flight")
		})
		leaderErr <- err
	}()
	<-entered
	good := res("fresh")
	followerDone := make(chan *Result, 1)
	go func() {
		r, err, _ := g.do("k", func() (*Result, error) { return good, nil })
		if err != nil {
			t.Errorf("failover attempt failed: %v", err)
		}
		followerDone <- r
	}()
	for g.snapshot().Followers < 1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)

	if err := <-leaderErr; !errors.Is(err, errLeaderCrashed) {
		t.Fatalf("leader error %v, want errLeaderCrashed", err)
	}
	select {
	case r := <-followerDone:
		if r != good {
			t.Fatalf("follower got %v, want the fresh-attempt result", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower hung after leader crash")
	}
	s := g.snapshot()
	if s.Crashes != 1 || s.Failovers != 1 || s.Leaders != 2 {
		t.Fatalf("stats %+v, want 1 crash, 1 failover, 2 leaders", s)
	}
}

// TestFlightFailoverIsBounded pins that a key whose every leader
// crashes ends in errLeaderCrashed for followers after maxFailovers
// attempts — never an unbounded retry loop or a hang.
func TestFlightFailoverIsBounded(t *testing.T) {
	g := newFlightGroup()
	crash := func() (*Result, error) { panic("drill: always crashes") }
	// Drive a follower against a stream of crashing leaders: the
	// follower's own retries become leaders (which crash in its call
	// stack via runProtected) until the bound trips.
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do("k", crash)
		done <- err
	}()
	select {
	case err := <-done:
		// With no concurrent flight the caller leads immediately and gets
		// the contained crash error.
		if !errors.Is(err, errLeaderCrashed) {
			t.Fatalf("err %v, want errLeaderCrashed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crashing flight hung")
	}
}
