//go:build pactcheck

// Request-level fault drills for the service's three injection points
// (svc.admit, svc.cache.store, svc.flight.leader), run under
// -race -tags pactcheck by the check.sh service leg. Every drill
// leak-checks its goroutines: a follower left hanging on a dead flight
// would show up here long before it wedged a production drain.
package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/resilience/inject"
)

// checkNoGoroutineLeak waits for the goroutine count to return to the
// baseline captured before the drill.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInjectedAdmitShedIs429 drives svc.admit: an armed admission
// failure sheds the request with 429 + Retry-After exactly as a full
// queue would, even though the pool is idle.
func TestInjectedAdmitShedIs429(t *testing.T) {
	base := runtime.NumGoroutine()
	s, _, release := slowServer(Config{Workers: 2})
	close(release) // reductions return immediately
	defer s.Close()
	sched := inject.NewSchedule().Arm(inject.SvcAdmit, 0)
	inject.Install(sched)
	defer inject.Reset()

	code, hdr, _, eresp := post(t, s, tinyDeck("d0"), "fmax=1e9")
	if code != http.StatusTooManyRequests {
		t.Fatalf("injected shed: %d (%+v), want 429", code, eresp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("injected shed missing Retry-After")
	}
	if eresp.Stage != string(resilience.StageService) {
		t.Fatalf("injected shed stage %q, want %s", eresp.Stage, resilience.StageService)
	}
	if sched.Fired(inject.SvcAdmit) != 1 {
		t.Fatal("svc.admit did not fire")
	}
	if st := s.Snapshot(); st.Shed != 1 || st.Completed != 0 {
		t.Fatalf("stats %+v, want exactly one shed", st)
	}
	// The very next request (admission index 1, unarmed) must be served.
	if code, _, resp, _ := post(t, s, tinyDeck("d0"), "fmax=1e9"); code != http.StatusOK || resp.Cache != "miss" {
		t.Fatalf("request after shed: %d %+v, want 200 miss", code, resp)
	}
	checkNoGoroutineLeak(t, base)
}

// TestInjectedCacheStoreDropStaysConsistent drives svc.cache.store: a
// dropped store must cost only a re-reduction on the next identical
// request — never serve a corrupt or phantom entry.
func TestInjectedCacheStoreDropStaysConsistent(t *testing.T) {
	base := runtime.NumGoroutine()
	s, _, release := slowServer(Config{Workers: 2})
	close(release)
	defer s.Close()
	sched := inject.NewSchedule().Arm(inject.SvcCacheStore, 0)
	inject.Install(sched)
	defer inject.Reset()

	want := []string{"miss", "miss", "hit"} // store 0 dropped, store 1 lands
	for i, w := range want {
		code, _, resp, eresp := post(t, s, tinyDeck("d0"), "fmax=1e9")
		if code != http.StatusOK {
			t.Fatalf("request %d: %d (%+v)", i, code, eresp)
		}
		if resp.Cache != w {
			t.Fatalf("request %d cache = %q, want %q", i, resp.Cache, w)
		}
	}
	if sched.Fired(inject.SvcCacheStore) != 1 {
		t.Fatal("svc.cache.store did not fire")
	}
	st := s.Snapshot()
	if st.Cache.StoreDrops != 1 || st.Cache.Stores != 1 || st.Cache.Hits != 1 {
		t.Fatalf("cache stats %+v, want 1 drop, 1 store, 1 hit", st.Cache)
	}
	checkNoGoroutineLeak(t, base)
}

// herdResponse carries one request's outcome out of its goroutine.
type herdResponse struct {
	code int
	body string // "cache deck" on success, "stage: error" on failure
}

// herd stages the canonical drill topology on a one-worker server: a
// blocker deck occupies the worker, a leader for deck X queues behind
// it (flight open, mid-flight once the blocker finishes), and nFollow
// followers park on X's flight. It returns once every follower is
// registered; closing release then lets the blocker finish and the
// leader reach the armed svc.flight.leader point with the herd watching.
func herd(t *testing.T, s *Server, started chan string, nFollow int) chan herdResponse {
	t.Helper()
	out := make(chan herdResponse, nFollow+2)
	postAsync := func(title string) {
		go func() {
			code, _, resp, eresp := post(t, s, tinyDeck(title), "fmax=1e9")
			switch {
			case resp != nil:
				out <- herdResponse{code, resp.Cache + " " + resp.Deck}
			case eresp != nil:
				out <- herdResponse{code, eresp.Stage + ": " + eresp.Error}
			default:
				out <- herdResponse{code, "(no body)"}
			}
		}()
	}
	postAsync("blocker")
	if got := <-started; got != "blocker" {
		t.Fatalf("first reduction is %q, want blocker", got)
	}
	postAsync("x") // flight leader for deck x; parks on the semaphore
	waitFor(t, func() bool { return s.Snapshot().QueueDepth == 1 })
	for i := 0; i < nFollow; i++ {
		postAsync("x")
	}
	waitFor(t, func() bool { return s.Snapshot().Flights.Followers >= int64(nFollow) })
	return out
}

// collect drains n herd responses or fails the test on a hang.
func collect(t *testing.T, out chan herdResponse, n int) []herdResponse {
	t.Helper()
	got := make([]herdResponse, 0, n)
	for i := 0; i < n; i++ {
		select {
		case r := <-out:
			got = append(got, r)
		case <-time.After(30 * time.Second):
			t.Fatalf("request hung: only %d of %d responses arrived", i, n)
		}
	}
	return got
}

// TestInjectedLeaderFaultSharesTypedErrorWithFollowers is the
// acceptance drill: svc.flight.leader armed on deck X's flight makes
// the leader fail with a typed StageError, and every parked follower
// observes the very same typed failure — same stage, same message — no
// hang, no goroutine leak, no retry storm.
func TestInjectedLeaderFaultSharesTypedErrorWithFollowers(t *testing.T) {
	base := runtime.NumGoroutine()
	const nFollow = 6
	s, started, release := slowServer(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	sched := inject.NewSchedule().Arm(inject.SvcFlightLeader, 1) // flight 0 = blocker, 1 = x
	inject.Install(sched)
	defer inject.Reset()

	out := herd(t, s, started, nFollow)
	close(release)

	var failures []string
	okCount := 0
	for _, r := range collect(t, out, nFollow+2) {
		switch r.code {
		case http.StatusOK:
			okCount++
		case http.StatusInternalServerError:
			failures = append(failures, r.body)
		default:
			t.Fatalf("unexpected status %d (%s)", r.code, r.body)
		}
	}
	if okCount != 1 { // only the blocker succeeds
		t.Fatalf("%d requests succeeded, want 1 (the blocker)", okCount)
	}
	if len(failures) != nFollow+1 {
		t.Fatalf("%d failures, want leader + %d followers", len(failures), nFollow)
	}
	for i, f := range failures {
		if f != failures[0] {
			t.Fatalf("failure %d differs from the leader's:\n%s\nvs\n%s", i, f, failures[0])
		}
		if !strings.HasPrefix(f, string(resilience.StageService)) {
			t.Fatalf("failure %d not typed with the service stage: %s", i, f)
		}
		if !strings.Contains(f, "injected leader fault") {
			t.Fatalf("failure %d does not carry the leader's cause: %s", i, f)
		}
	}
	if sched.Fired(inject.SvcFlightLeader) != 1 {
		t.Fatal("svc.flight.leader did not fire exactly once")
	}
	if st := s.Snapshot(); st.Flights.Followers < nFollow || st.Flights.Crashes != 0 {
		t.Fatalf("flight stats %+v, want >=%d followers and no crashes", st.Flights, nFollow)
	}
	checkNoGoroutineLeak(t, base)
}

// TestInjectedLeaderCrashFailsOverFollowers arms svc.flight.leader with
// a panicking func: the leader crashes mid-flight. The crash must be
// contained (500 for the leader, daemon alive), and every follower must
// fail over to a fresh attempt and be served — never hang.
func TestInjectedLeaderCrashFailsOverFollowers(t *testing.T) {
	base := runtime.NumGoroutine()
	const nFollow = 6
	s, started, release := slowServer(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	sched := inject.NewSchedule().ArmFunc(inject.SvcFlightLeader, 1, func() {
		panic("drill: svc.flight.leader crash")
	})
	inject.Install(sched)
	defer inject.Reset()

	out := herd(t, s, started, nFollow)
	close(release)

	okCount, crashCount := 0, 0
	for _, r := range collect(t, out, nFollow+2) {
		switch {
		case r.code == http.StatusOK:
			okCount++
		case r.code == http.StatusInternalServerError && strings.Contains(r.body, "leader crashed"):
			crashCount++
		default:
			t.Fatalf("unexpected response %d (%s)", r.code, r.body)
		}
	}
	// The blocker and every follower get real results; only the crashed
	// leader reports the contained panic.
	if crashCount != 1 || okCount != nFollow+1 {
		t.Fatalf("ok=%d crash=%d, want ok=%d crash=1", okCount, crashCount, nFollow+1)
	}
	st := s.Snapshot()
	if st.Flights.Crashes != 1 || st.Flights.Failovers < 1 {
		t.Fatalf("flight stats %+v, want 1 crash and >=1 failover", st.Flights)
	}
	// The daemon is still serving after the contained crash.
	if code, _, resp, _ := post(t, s, tinyDeck("x"), "fmax=1e9"); code != http.StatusOK || resp.Cache != "hit" {
		t.Fatalf("post-crash request: %d %+v, want 200 hit from the failover's store", code, resp)
	}
	checkNoGoroutineLeak(t, base)
}

// TestInjectedLeaderFaultDoesNotPoisonCache verifies that after an
// injected leader failure the next request for the same deck reduces
// cleanly and repopulates the cache: typed failures are never stored.
func TestInjectedLeaderFaultDoesNotPoisonCache(t *testing.T) {
	s, _, release := slowServer(Config{Workers: 2})
	close(release)
	defer s.Close()
	inject.Install(inject.NewSchedule().Arm(inject.SvcFlightLeader, 0))
	defer inject.Reset()
	if code, _, _, eresp := post(t, s, tinyDeck("d0"), "fmax=1e9"); code != http.StatusInternalServerError {
		t.Fatalf("injected flight: %d (%+v), want 500", code, eresp)
	}
	if code, _, resp, _ := post(t, s, tinyDeck("d0"), "fmax=1e9"); code != http.StatusOK || resp.Cache != "miss" {
		t.Fatalf("retry after fault: %d %+v, want 200 miss", code, resp)
	}
	if code, _, resp, _ := post(t, s, tinyDeck("d0"), "fmax=1e9"); code != http.StatusOK || resp.Cache != "hit" {
		t.Fatalf("third request: %d %+v, want 200 hit", code, resp)
	}
}

// TestSeededServiceFaultSweepIsReproducible replays FromSeed schedules
// over the three service points against a fixed serial request script,
// in the same style as the core and sim sweeps: whatever the armed
// faults hit, every outcome is a typed HTTP status — and replaying the
// seed reproduces the outcome string exactly.
func TestSeededServiceFaultSweepIsReproducible(t *testing.T) {
	oneRun := func(seed int64) string {
		s, _, release := slowServer(Config{Workers: 2})
		close(release)
		defer s.Close()
		inject.Install(inject.FromSeed(seed, 4,
			inject.SvcAdmit, inject.SvcCacheStore, inject.SvcFlightLeader))
		defer inject.Reset()
		var b strings.Builder
		for i := 0; i < 6; i++ {
			code, _, resp, eresp := post(t, s, tinyDeck("sweep"), "fmax=1e9")
			switch {
			case resp != nil:
				fmt.Fprintf(&b, "%d:%s ", code, resp.Cache)
			case eresp != nil:
				fmt.Fprintf(&b, "%d:%s ", code, eresp.Stage)
			}
			switch code {
			case http.StatusOK, http.StatusTooManyRequests:
			case http.StatusInternalServerError:
				if eresp.Stage != string(resilience.StageService) {
					t.Fatalf("seed %d request %d: 500 not typed to %s: %+v", seed, i, resilience.StageService, eresp)
				}
			default:
				t.Fatalf("seed %d request %d: unexpected status %d", seed, i, code)
			}
		}
		return b.String()
	}
	for seed := int64(0); seed < 8; seed++ {
		first := oneRun(seed)
		if second := oneRun(seed); second != first {
			t.Fatalf("seed %d not reproducible:\n  first:  %s\n  second: %s", seed, first, second)
		}
	}
}
