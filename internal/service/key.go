// Package service is the reduction-as-a-service layer: a long-running,
// admission-controlled HTTP front end over the PACT pipeline. It turns
// the one-shot ReduceDeck flow into a daemon that survives heavy
// traffic: a bounded worker pool sheds load deterministically when its
// admission queue fills, a content-addressed model cache keyed by
// (canonical netlist SHA-256, tolerance, f_max) makes repeated decks
// free, and singleflight dedup collapses a thundering herd of identical
// decks into one factorization whose result — or typed
// resilience.StageError — every follower observes. Draining is a
// first-class state: on SIGTERM the server stops admitting, finishes
// in-flight reductions under a deadline, and cancels cooperatively past
// it.
//
// The package is stdlib-only and engineered for the fault-injection
// harness: the request path hosts the svc.admit, svc.cache.store and
// svc.flight.leader points of the inject catalog, drilled under
// -race -tags pactcheck.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Params are the reduction parameters that shape the result and
// therefore belong in the cache key: two requests with equal canonical
// decks and equal Params must produce byte-identical reduced decks.
type Params struct {
	// FMax is the maximum frequency of interest in Hz (required).
	FMax float64
	// Tol is the relative error tolerance at FMax (0 = the pipeline
	// default of 5%).
	Tol float64
	// MaxPoles caps the retained poles (0 = no cap).
	MaxPoles int
	// Shifts selects multi-expansion-point reduction (Hz). The slice is
	// canonicalized (sorted, deduplicated) before keying, so listing
	// order never splits cache entries for the same expansion-point set.
	Shifts []float64
	// PortClusters enables TurboMOR-style port clustering of the
	// multi-point basis union (0 disables).
	PortClusters int
}

// id renders the parameters exactly: floats in hex form, so two Params
// collide only when they are bit-equal and no decimal rounding can
// alias distinct tolerances onto one key.
func (p Params) id() string {
	s := "fmax=" + strconv.FormatFloat(p.FMax, 'x', -1, 64) +
		";tol=" + strconv.FormatFloat(p.Tol, 'x', -1, 64) +
		";maxpoles=" + strconv.Itoa(p.MaxPoles)
	if len(p.Shifts) > 0 {
		s += ";shifts="
		for i, f := range p.Shifts {
			if i > 0 {
				s += ","
			}
			s += strconv.FormatFloat(f, 'x', -1, 64)
		}
	}
	if p.PortClusters > 0 {
		s += ";portcluster=" + strconv.Itoa(p.PortClusters)
	}
	return s
}

// Canonicalize renders a parsed deck in the repository's canonical SPICE
// form: comments dropped, whitespace collapsed, element values in the
// bit-exact engineering notation of netlist.FormatValue, models and
// subcircuits in sorted order. Two source texts that differ only in
// comments or spacing canonicalize identically, and the form is a fixed
// point: parsing canonical text and canonicalizing again reproduces it
// byte for byte (pinned by TestCanonicalizeRoundTrip).
func Canonicalize(deck *netlist.Deck) string { return deck.String() }

// RawKey is the content hash of the request exactly as received: the
// SHA-256 of the raw deck bytes plus the exact parameters. It
// distinguishes texts that canonicalize identically, so it is useful
// for request logging but deliberately NOT the cache key.
func RawKey(raw []byte, p Params) string {
	h := sha256.New()
	h.Write(raw)
	h.Write([]byte{0})
	h.Write([]byte(p.id()))
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalKey is the cache key: the SHA-256 of the canonicalized deck
// plus the exact parameters. Decks differing only in comments or
// whitespace share a canonical key and therefore share one cache entry
// and one singleflight.
func CanonicalKey(deck *netlist.Deck, p Params) string {
	h := sha256.New()
	h.Write([]byte(Canonicalize(deck)))
	h.Write([]byte{0})
	h.Write([]byte(p.id()))
	return hex.EncodeToString(h.Sum(nil))
}

// shortKey abbreviates a hex key for error detail and log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// validate rejects parameter combinations the pipeline would reject
// later, so admission-layer errors are cheap and typed.
func (p Params) validate() error {
	if p.FMax <= 0 {
		return fmt.Errorf("service: fmax is required and must be positive, got %g", p.FMax)
	}
	if p.Tol < 0 || p.Tol >= 1 {
		return fmt.Errorf("service: tol %g outside [0,1)", p.Tol)
	}
	if p.MaxPoles < 0 {
		return fmt.Errorf("service: maxpoles %d negative", p.MaxPoles)
	}
	if p.PortClusters < 0 {
		return fmt.Errorf("service: portcluster %d negative", p.PortClusters)
	}
	if p.PortClusters > 0 && len(p.Shifts) == 0 {
		return fmt.Errorf("service: portcluster requires a multi-point shift set")
	}
	return nil
}

// canonicalizeShifts rewrites the shift set into its canonical form so
// that every listing order of the same expansion points shares one
// cache key and one singleflight; it surfaces the pipeline's own
// validation error for out-of-range entries.
func (p *Params) canonicalizeShifts() error {
	if len(p.Shifts) == 0 {
		p.Shifts = nil
		return nil
	}
	cs, err := core.CanonicalShifts(p.Shifts)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	p.Shifts = cs
	return nil
}
