package service

import (
	"testing"

	"repro/internal/netlist"
)

// deckA and deckB describe the identical circuit; B differs only in
// comments, blank lines, spacing and value spelling that the parser
// normalizes away.
const deckA = `key test deck
r1 in mid 250
c1 mid 0 1p
r2 mid out 250
c2 out 0 1e-12
.end
`

const deckB = `key test deck
* a comment the canonical form drops
r1   in    mid   250
c1 mid 0 1p

* another comment
r2 mid out 0.25k
c2 out 0 1p
.end
`

func mustParse(t *testing.T, s string) *netlist.Deck {
	t.Helper()
	d, err := netlist.ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

// TestRawVsCanonicalKeys pins the content-addressing contract: decks
// differing only in comments/whitespace hash to different raw keys but
// identical canonical keys, so they share one cache entry while the
// request log still distinguishes the bytes received.
func TestRawVsCanonicalKeys(t *testing.T) {
	p := Params{FMax: 1e9, Tol: 0.05}
	da, db := mustParse(t, deckA), mustParse(t, deckB)
	rawA, rawB := RawKey([]byte(deckA), p), RawKey([]byte(deckB), p)
	if rawA == rawB {
		t.Fatal("raw keys collide for different source bytes")
	}
	canA, canB := CanonicalKey(da, p), CanonicalKey(db, p)
	if canA != canB {
		t.Fatalf("canonical keys differ for equivalent decks:\n%s\nvs\n%s",
			Canonicalize(da), Canonicalize(db))
	}
	if canA == rawA {
		t.Fatal("canonical and raw keys must hash different material")
	}
}

// TestKeysSeparateParams pins that every Params field participates in
// both keys: the same deck at a different tolerance, fmax or pole cap
// must address a different cache entry.
func TestKeysSeparateParams(t *testing.T) {
	d := mustParse(t, deckA)
	base := Params{FMax: 1e9, Tol: 0.05}
	for _, p := range []Params{
		{FMax: 2e9, Tol: 0.05},
		{FMax: 1e9, Tol: 0.1},
		{FMax: 1e9, Tol: 0.05, MaxPoles: 3},
		{FMax: 1e9, Tol: 0.05, Shifts: []float64{0, 1e9}},
		{FMax: 1e9, Tol: 0.05, Shifts: []float64{0, 1e9}, PortClusters: 2},
	} {
		if CanonicalKey(d, base) == CanonicalKey(d, p) {
			t.Fatalf("params %+v and %+v share a canonical key", base, p)
		}
		if RawKey([]byte(deckA), base) == RawKey([]byte(deckA), p) {
			t.Fatalf("params %+v and %+v share a raw key", base, p)
		}
	}
}

// TestCanonicalizeRoundTrip pins that the canonical form is a fixed
// point: parsing canonical text and canonicalizing again reproduces it
// byte for byte, so the canonical key of a canonicalized deck is stable
// across arbitrarily many round trips.
func TestCanonicalizeRoundTrip(t *testing.T) {
	for _, src := range []string{deckA, deckB} {
		can1 := Canonicalize(mustParse(t, src))
		can2 := Canonicalize(mustParse(t, can1))
		if can1 != can2 {
			t.Fatalf("canonical form is not a fixed point:\n--- first\n%s\n--- second\n%s", can1, can2)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{
		{},                            // missing fmax
		{FMax: -1},                    // negative fmax
		{FMax: 1e9, Tol: -0.1},        // negative tol
		{FMax: 1e9, Tol: 1},           // tol at 1
		{FMax: 1e9, MaxPoles: -2},     // negative cap
		{FMax: 1e9, PortClusters: -1}, // negative cluster count
		{FMax: 1e9, PortClusters: 4},  // clustering without shifts
	} {
		if err := p.validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if err := (Params{FMax: 1e9, Tol: 0.05}).validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	if err := (Params{FMax: 1e9, Shifts: []float64{0, 1e9}, PortClusters: 4}).validate(); err != nil {
		t.Fatalf("good multi-point params rejected: %v", err)
	}
}

// TestShiftSetCanonicalizationSharesKeys pins the multi-point cache
// contract: every listing order (and duplicate spelling) of one
// expansion-point set canonicalizes to one shift slice and therefore one
// canonical key, while a genuinely different set gets its own key.
func TestShiftSetCanonicalizationSharesKeys(t *testing.T) {
	d := mustParse(t, deckA)
	mk := func(shifts ...float64) Params {
		p := Params{FMax: 1e9, Tol: 0.05, Shifts: shifts}
		if err := p.canonicalizeShifts(); err != nil {
			t.Fatalf("canonicalize %v: %v", shifts, err)
		}
		return p
	}
	ref := CanonicalKey(d, mk(0, 1e8, 1e9))
	for _, p := range []Params{
		mk(1e9, 0, 1e8),
		mk(1e8, 1e9, 0, 1e8), // duplicate collapses
	} {
		if CanonicalKey(d, p) != ref {
			t.Fatalf("equivalent shift set %v split the cache key", p.Shifts)
		}
	}
	if CanonicalKey(d, mk(0, 1e9)) == ref {
		t.Fatal("distinct shift sets share a canonical key")
	}
	var bad Params
	bad.Shifts = []float64{-1}
	if err := bad.canonicalizeShifts(); err == nil {
		t.Fatal("negative shift must be rejected at canonicalization")
	}
}
