package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pact "repro"
	"repro/internal/netlist"
	"repro/internal/resilience"
	"repro/internal/resilience/inject"
)

// errOverloaded is returned by admission when the queue is at its depth
// limit (or the svc.admit injection point forces a shed); the HTTP
// layer maps it to 429 with a Retry-After header.
var errOverloaded = errors.New("service: admission queue full")

// errDraining is returned for work arriving after BeginDrain; mapped to
// 503 so orchestrators retry against another replica.
var errDraining = errors.New("service: draining")

// Config sizes the service. The zero value of every field selects a
// production-reasonable default.
type Config struct {
	// Workers bounds concurrent reductions (default runtime.GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// ones running; an arrival finding the queue full is shed with 429
	// (default 4×Workers).
	QueueDepth int
	// RequestTimeout is the per-reduction deadline, wired into the
	// pipeline's context cancellation (default 2m; <0 disables).
	RequestTimeout time.Duration
	// CacheEntries bounds the content-addressed model cache (default 256).
	CacheEntries int
	// MaxDeckBytes caps the request body (default 64 MiB).
	MaxDeckBytes int64
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 256
	}
	if c.MaxDeckBytes < 1 {
		c.MaxDeckBytes = 64 << 20
	}
	if c.RetryAfter < time.Second {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats is the /statz snapshot: queue and worker gauges, request
// counters, cache and singleflight counters, and the pooled
// FactorWorkspace footprint of the reductions served.
type Stats struct {
	UptimeNs   int64 `json:"uptime_ns"`
	Draining   bool  `json:"draining"`
	Workers    int   `json:"workers"`
	QueueLimit int   `json:"queue_limit"`
	// QueueDepth is the current number of requests waiting for a worker
	// slot; Inflight the requests inside the reduce path (queued or
	// reducing).
	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Timeouts  int64 `json:"timeouts"`
	// Degraded counts served reductions whose recovery ladders fired:
	// results that are valid but carry recorded, bounded degradations.
	Degraded int64 `json:"degraded"`

	Cache   CacheStats  `json:"cache"`
	Flights FlightStats `json:"flights"`

	// StageTotals accumulates the per-stage wall time of every reduction
	// this process actually ran (led flights only; hits and followers are
	// free), so operators can see whether the front end (stamp/assemble)
	// or the factorizer dominates the fleet's spend.
	StageTotals pact.StageTimes `json:"stage_totals_ns"`

	// WorkspaceLastBytes/WorkspacePeakBytes report the pooled
	// chol.FactorWorkspace scratch of the most recent and the largest
	// reduction served, surfacing the steady-state memory the worker
	// pool pins.
	WorkspaceLastBytes int64 `json:"workspace_last_bytes"`
	WorkspacePeakBytes int64 `json:"workspace_peak_bytes"`
}

// ReduceResponse is the JSON body of a successful POST /reduce.
type ReduceResponse struct {
	*Result
	// Cache reports how the request was served: "hit" (cache), "miss"
	// (this request led the reduction) or "follower" (deduplicated onto
	// a concurrent identical request's flight).
	Cache string `json:"cache"`
	// Key is the canonical content-address; RawKey hashes the request
	// bytes exactly as received.
	Key    string `json:"key"`
	RawKey string `json:"raw_key"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// Stage names the failing pipeline stage when the error is a typed
	// resilience.StageError.
	Stage string `json:"stage,omitempty"`
}

// Server is the reduction service. It implements http.Handler; process
// lifetime (listening, signals) belongs to the caller — cmd/rcfitd.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// baseCtx parents every reduction; cancelAll is the drain hammer.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	sem      chan struct{} // worker slots
	waiting  atomic.Int64  // requests queued for a slot
	inflight atomic.Int64
	wg       sync.WaitGroup
	draining atomic.Bool

	cache   *modelCache
	flights *flightGroup

	admitSeq, storeSeq, flightSeq atomic.Int64

	requests, completed, failed, shed, timeouts, degraded atomic.Int64
	wsLast, wsPeak                                        atomic.Int64

	// Cumulative per-stage wall time of every reduction this process led
	// (cache hits and followers add nothing — the work ran once).
	stageStamp, stageAssemble, stageOrder, stageSymbolic, stageFactor atomic.Int64

	// reduceFn runs one reduction; tests substitute it to control timing
	// and outcomes without multi-second decks.
	reduceFn func(ctx context.Context, deck *netlist.Deck, p Params) (*Result, error)
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		baseCtx:   ctx,
		cancelAll: cancel,
		sem:       make(chan struct{}, cfg.Workers),
		cache:     newModelCache(cfg.CacheEntries),
		flights:   newFlightGroup(),
	}
	s.reduceFn = s.runReduction
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/reduce", s.handleReduce)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// runReduction is the real reduction path: the leader's work function.
// It runs under the server's lifetime context (not the leader's request
// context — followers inherit the result, so one impatient client must
// not cancel everyone's reduction) plus the per-request deadline.
func (s *Server) runReduction(ctx context.Context, deck *netlist.Deck, p Params) (*Result, error) {
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	red, err := pact.ReduceDeckContext(ctx, deck, pact.Options{
		FMax:     p.FMax,
		Tol:      p.Tol,
		MaxPoles: p.MaxPoles,

		Shifts:       p.Shifts,
		PortClusters: p.PortClusters,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Deck:         red.Deck.String(),
		Poles:        red.Model.K(),
		Ports:        red.Stats.Ports,
		Internal:     red.Stats.Internal,
		ScratchBytes: red.Stats.ScratchBytes,
		ElapsedNs:    red.Elapsed.Nanoseconds(),
		Stage:        red.Stats.Stage,
	}
	for _, rec := range red.Stats.Recoveries {
		res.Recoveries = append(res.Recoveries, rec.String())
	}
	s.recordStages(res.Stage)
	return res, nil
}

// recordStages folds one reduction's stage breakdown into the running
// /statz totals (front-end parse time is absent here: the service parses
// decks on the request path before the flight, so its cost shows up in
// the request latency, not the reduction's stage accounting).
func (s *Server) recordStages(st pact.StageTimes) {
	s.stageStamp.Add(st.StampNs)
	s.stageAssemble.Add(st.AssembleNs)
	s.stageOrder.Add(st.OrderNs)
	s.stageSymbolic.Add(st.SymbolicNs)
	s.stageFactor.Add(st.FactorNs)
}

// acquireSlot admits the caller into the bounded worker pool: it sheds
// deterministically (errOverloaded) when QueueDepth requests are
// already waiting — the queue gauge never overshoots its limit — then
// blocks for a worker slot. The svc.admit injection point fires here
// with the admission sequence number; an armed failure forces the shed
// path regardless of actual depth. Returns a release func on success.
func (s *Server) acquireSlot(ctx context.Context) (func(), error) {
	seq := s.admitSeq.Add(1) - 1
	if inject.Enabled && inject.ShouldFail(inject.SvcAdmit, int(seq)) {
		return nil, resilience.NewStageError(resilience.StageService,
			fmt.Sprintf("admit #%d", seq), nil, errOverloaded)
	}
	for {
		n := s.waiting.Load()
		if n >= int64(s.cfg.QueueDepth) {
			return nil, resilience.NewStageError(resilience.StageService,
				fmt.Sprintf("admit #%d", seq), nil, errOverloaded)
		}
		if s.waiting.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, resilience.Canceled(resilience.StageService, ctx)
	case <-s.baseCtx.Done():
		return nil, errDraining
	}
}

// handleReduce is POST /reduce: parse → cache → singleflight → admit →
// reduce → store. Admission happens inside the flight leader, so a
// thundering herd of identical decks occupies one queue slot and pays
// one factorization; followers wait for free.
func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("service: %s not allowed on /reduce", r.Method), 0)
		return
	}
	s.requests.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining, 0)
		return
	}
	// Track the request for drain *before* re-checking the flag: a drain
	// beginning between the check above and wg.Add must either see this
	// request in the group or be seen by the re-check.
	s.wg.Add(1)
	defer s.wg.Done()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining, 0)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	p, err := paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxDeckBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: read deck: %w", err), 0)
		return
	}
	deck, err := netlist.ParseString(string(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parse deck: %w", err), 0)
		return
	}
	rawKey := RawKey(raw, p)
	key := CanonicalKey(deck, p)

	if res, ok := s.cache.get(key); ok {
		s.completed.Add(1)
		writeJSON(w, http.StatusOK, &ReduceResponse{Result: res, Cache: "hit", Key: key, RawKey: rawKey})
		return
	}

	res, err, led := s.flights.do(key, func() (*Result, error) {
		release, aerr := s.acquireSlot(r.Context())
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		// The leader fault point fires once the flight owns a worker slot
		// — mid-flight, when followers are already parked on it. A plain
		// arm yields the typed StageError below (shared by every
		// follower); an ArmFunc that panics models a leader crash, which
		// runProtected contains and followers fail over from.
		fseq := s.flightSeq.Add(1) - 1
		if inject.Enabled && inject.ShouldFail(inject.SvcFlightLeader, int(fseq)) {
			return nil, resilience.NewStageError(resilience.StageService,
				fmt.Sprintf("flight %s leader", shortKey(key)), nil, errLeaderFault)
		}
		out, rerr := s.reduceFn(s.baseCtx, deck, p)
		if rerr != nil {
			return nil, rerr
		}
		s.recordWorkspace(out.ScratchBytes)
		s.cache.store(key, out, int(s.storeSeq.Add(1)-1))
		return out, nil
	})
	if err != nil {
		s.recordFailure(err)
		writeError(w, statusFor(err), err, s.retryAfterSeconds(err))
		return
	}
	s.completed.Add(1)
	if len(res.Recoveries) > 0 {
		s.degraded.Add(1)
	}
	mode := "follower"
	if led {
		mode = "miss"
	}
	writeJSON(w, http.StatusOK, &ReduceResponse{Result: res, Cache: mode, Key: key, RawKey: rawKey})
}

// errLeaderFault is the sentinel cause of an injected svc.flight.leader
// failure; followers of the flight observe the identical StageError.
var errLeaderFault = errors.New("service: injected leader fault")

// recordFailure classifies a failed reduction for the counters.
func (s *Server) recordFailure(err error) {
	switch {
	case errors.Is(err, errOverloaded):
		s.shed.Add(1)
	case resilience.IsCancellation(err) && s.baseCtx.Err() == nil:
		s.timeouts.Add(1)
		s.failed.Add(1)
	default:
		s.failed.Add(1)
	}
}

// recordWorkspace tracks the pooled-workspace footprint gauges.
func (s *Server) recordWorkspace(b int64) {
	s.wsLast.Store(b)
	for {
		peak := s.wsPeak.Load()
		if b <= peak || s.wsPeak.CompareAndSwap(peak, b) {
			return
		}
	}
}

// statusFor maps a reduce-path error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case resilience.IsCancellation(err):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) retryAfterSeconds(err error) int {
	if !errors.Is(err, errOverloaded) {
		return 0
	}
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the /statz view; exported so cmd/rcfitd and
// pactbench read the same numbers the endpoint serves.
func (s *Server) Snapshot() Stats {
	return Stats{
		UptimeNs:   time.Since(s.start).Nanoseconds(),
		Draining:   s.draining.Load(),
		Workers:    s.cfg.Workers,
		QueueLimit: s.cfg.QueueDepth,
		QueueDepth: s.waiting.Load(),
		Inflight:   s.inflight.Load(),
		Requests:   s.requests.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Shed:       s.shed.Load(),
		Timeouts:   s.timeouts.Load(),
		Degraded:   s.degraded.Load(),
		Cache:      s.cache.snapshot(),
		Flights:    s.flights.snapshot(),
		StageTotals: pact.StageTimes{
			StampNs:    s.stageStamp.Load(),
			AssembleNs: s.stageAssemble.Load(),
			OrderNs:    s.stageOrder.Load(),
			SymbolicNs: s.stageSymbolic.Load(),
			FactorNs:   s.stageFactor.Load(),
		},
		WorkspaceLastBytes: s.wsLast.Load(),
		WorkspacePeakBytes: s.wsPeak.Load(),
	}
}

// BeginDrain flips the server into draining: /healthz reports 503 and
// new /reduce requests are refused. In-flight work continues.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully stops the server: it begins draining, waits for
// in-flight requests, and past ctx's deadline cancels them through the
// pipeline's cooperative cancellation, then waits for them to unwind.
// Returns nil when every request finished on its own, or an error
// naming how many were canceled.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelAll()
		return nil
	case <-ctx.Done():
		forced := s.inflight.Load()
		s.cancelAll()
		<-done
		return fmt.Errorf("service: drain deadline expired, canceled %d in-flight request(s)", forced)
	}
}

// Close cancels every in-flight reduction immediately (tests and
// last-resort shutdown).
func (s *Server) Close() { s.cancelAll() }

// paramsFromQuery extracts and validates the reduction parameters.
func paramsFromQuery(r *http.Request) (Params, error) {
	q := r.URL.Query()
	var p Params
	fmax := q.Get("fmax")
	if fmax == "" {
		return p, errors.New("service: query parameter fmax is required")
	}
	v, err := strconv.ParseFloat(fmax, 64)
	if err != nil {
		return p, fmt.Errorf("service: bad fmax %q: %w", fmax, err)
	}
	p.FMax = v
	if tol := q.Get("tol"); tol != "" {
		v, err := strconv.ParseFloat(tol, 64)
		if err != nil {
			return p, fmt.Errorf("service: bad tol %q: %w", tol, err)
		}
		p.Tol = v
	}
	if mp := q.Get("maxpoles"); mp != "" {
		n, err := strconv.Atoi(mp)
		if err != nil {
			return p, fmt.Errorf("service: bad maxpoles %q: %w", mp, err)
		}
		p.MaxPoles = n
	}
	if sh := q.Get("shifts"); sh != "" {
		for _, tok := range strings.Split(sh, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return p, fmt.Errorf("service: bad shifts entry %q: %w", tok, err)
			}
			p.Shifts = append(p.Shifts, v)
		}
	}
	if pc := q.Get("portcluster"); pc != "" {
		n, err := strconv.Atoi(pc)
		if err != nil {
			return p, fmt.Errorf("service: bad portcluster %q: %w", pc, err)
		}
		p.PortClusters = n
	}
	if err := p.canonicalizeShifts(); err != nil {
		return p, err
	}
	if err := p.validate(); err != nil {
		return p, err
	}
	return p, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore checkerr the response writer owns delivery failures; there is no caller to report a broken client connection to
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error, retryAfterSecs int) {
	resp := errorResponse{Error: err.Error()}
	var se *resilience.StageError
	if errors.As(err, &se) {
		resp.Stage = string(se.Stage)
	}
	if retryAfterSecs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	}
	writeJSON(w, status, resp)
}
