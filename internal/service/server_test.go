package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

// post sends deck to the in-process server and decodes the response.
func post(t *testing.T, s *Server, deck, query string) (int, http.Header, *ReduceResponse, *errorResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/reduce?"+query, strings.NewReader(deck))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		var out ReduceResponse
		if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return rec.Code, rec.Header(), &out, nil
	}
	var eresp errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&eresp); err != nil {
		t.Fatalf("decode error body (%d): %v", rec.Code, err)
	}
	return rec.Code, rec.Header(), nil, &eresp
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

// TestReduceMissThenHit drives the real pipeline end to end: the first
// request pays a reduction and reports a miss, an equivalent deck with
// different comments/whitespace reports a hit with a byte-identical
// reduced deck, and /statz reflects both.
func TestReduceMissThenHit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ladder := netgen.Ladder(60, 250, 1.35e-12).String()
	code, _, first, _ := post(t, s, ladder, "fmax=5e9")
	if code != http.StatusOK {
		t.Fatalf("first POST: %d", code)
	}
	if first.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", first.Cache)
	}
	if first.Poles < 1 || !strings.Contains(first.Deck, ".end") {
		t.Fatalf("implausible reduction: %d poles, deck %q...", first.Poles, first.Deck[:min(len(first.Deck), 60)])
	}
	// Same circuit, different bytes: comments and spacing.
	noisy := strings.Replace(ladder, "\n", "\n* a comment\n", 1)
	code, _, second, _ := post(t, s, noisy, "fmax=5e9")
	if code != http.StatusOK {
		t.Fatalf("second POST: %d", code)
	}
	if second.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", second.Cache)
	}
	if second.Deck != first.Deck {
		t.Fatal("cache hit returned a different reduced deck")
	}
	if second.Key != first.Key {
		t.Fatal("equivalent decks got different canonical keys")
	}
	if second.RawKey == first.RawKey {
		t.Fatal("different source bytes got the same raw key")
	}
	st := s.Snapshot()
	if st.Completed != 2 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats %+v, want 2 completed, 1 hit, 1 miss", st)
	}
	if st.WorkspacePeakBytes < 0 || st.Flights.Leaders != 1 {
		t.Fatalf("stats %+v, want 1 flight leader", st)
	}
	// A different tolerance is a different content address: miss again.
	code, _, third, _ := post(t, s, ladder, "fmax=5e9&tol=0.01")
	if code != http.StatusOK || third.Cache != "miss" {
		t.Fatalf("tol change: %d cache=%v, want 200 miss", code, third)
	}
}

// TestReduceMultiPointSharesCacheAcrossShiftOrder drives the multi-point
// request path end to end: the reduction succeeds with a shift set and
// port clustering, and a permuted spelling of the same shift set is a
// cache hit — the CanonicalShifts contract observed at the HTTP surface.
func TestReduceMultiPointSharesCacheAcrossShiftOrder(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ladder := netgen.Ladder(60, 250, 1.35e-12).String()
	code, _, first, _ := post(t, s, ladder, "fmax=5e9&shifts=0,1e9,5e9&portcluster=2")
	if code != http.StatusOK {
		t.Fatalf("multi-point POST: %d", code)
	}
	if first.Cache != "miss" || first.Poles < 1 {
		t.Fatalf("implausible multi-point reduction: cache %q, %d poles", first.Cache, first.Poles)
	}
	code, _, second, _ := post(t, s, ladder, "fmax=5e9&shifts=5e9,0,1e9,0&portcluster=2")
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("permuted shift set: %d cache=%q, want 200 hit", code, second.Cache)
	}
	if second.Deck != first.Deck {
		t.Fatal("permuted shift set returned a different reduced deck")
	}
	// Single-point remains a distinct content address.
	code, _, third, _ := post(t, s, ladder, "fmax=5e9")
	if code != http.StatusOK || third.Cache != "miss" {
		t.Fatalf("single-point after multi-point: %d cache=%v, want 200 miss", code, third)
	}
}

func TestReduceRejectsBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ladder := netgen.Ladder(10, 250, 1e-12).String()
	for _, tc := range []struct {
		deck, query string
		want        int
	}{
		{ladder, "", http.StatusBadRequest},               // missing fmax
		{ladder, "fmax=abc", http.StatusBadRequest},       // unparsable fmax
		{ladder, "fmax=1e9&tol=2", http.StatusBadRequest}, // tol out of range
		{ladder, "fmax=1e9&maxpoles=x", http.StatusBadRequest},
		{ladder, "fmax=1e9&shifts=0,zap", http.StatusBadRequest},  // unparsable shift
		{ladder, "fmax=1e9&shifts=-1e9", http.StatusBadRequest},   // negative shift
		{ladder, "fmax=1e9&portcluster=4", http.StatusBadRequest}, // clustering without shifts
		{ladder, "fmax=1e9&shifts=0,1e9&portcluster=-1", http.StatusBadRequest},
		{"t\nz1 bogus\n.end\n", "fmax=1e9", http.StatusBadRequest}, // bad deck
	} {
		code, _, _, eresp := post(t, s, tc.deck, tc.query)
		if code != tc.want {
			t.Errorf("query %q: code %d, want %d", tc.query, code, tc.want)
		}
		if eresp == nil || eresp.Error == "" {
			t.Errorf("query %q: empty error body", tc.query)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/reduce?fmax=1e9", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reduce: %d, want 405", rec.Code)
	}
}

// slowServer returns a server whose reductions block until release is
// closed (or the reduction context is canceled), so tests control
// exactly what is in flight.
func slowServer(cfg Config) (s *Server, started chan string, release chan struct{}) {
	s = New(cfg)
	started = make(chan string, 64)
	release = make(chan struct{})
	s.reduceFn = func(ctx context.Context, deck *netlist.Deck, p Params) (*Result, error) {
		started <- deck.Title
		select {
		case <-release:
			return &Result{Deck: "reduced " + deck.Title, Poles: 1, ScratchBytes: 1 << 20}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started, release
}

func tinyDeck(title string) string {
	return title + "\nr1 a b 100\nc1 b 0 1p\nr2 b c 100\n.end\n"
}

// TestAdmissionShedsDeterministically fills the one-worker,
// depth-2 queue and asserts the exact overflow request is shed with 429
// and a Retry-After header while the queued ones are served.
func TestAdmissionShedsDeterministically(t *testing.T) {
	s, started, release := slowServer(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	defer close(release)

	codes := make(chan int, 8)
	postAsync := func(title string) {
		go func() {
			code, _, _, _ := post(t, s, tinyDeck(title), "fmax=1e9")
			codes <- code
		}()
	}
	// d0 occupies the worker.
	postAsync("d0")
	<-started
	// d1, d2 fill the queue; wait until both are parked on the semaphore.
	postAsync("d1")
	postAsync("d2")
	waitFor(t, func() bool { return s.Snapshot().QueueDepth == 2 })
	// d3 must be shed: queue is at its limit.
	code, hdr, _, eresp := post(t, s, tinyDeck("d3"), "fmax=1e9")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if eresp == nil || !strings.Contains(eresp.Error, "admission queue full") {
		t.Fatalf("429 body %+v does not name the shed", eresp)
	}
	if st := s.Snapshot(); st.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", st.Shed)
	}
}

// TestRequestTimeoutIsTypedAndLadderFree pins the deadline path: a
// reduction that overruns RequestTimeout is canceled cooperatively,
// reported 504, counted as a timeout — and because cancellation is
// typed, no recovery ladder fires spuriously on the way down.
func TestRequestTimeoutIsTypedAndLadderFree(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 20 * time.Millisecond})
	defer s.Close()
	// The real pipeline on a deck large enough to overrun 20ms.
	deck := netgen.Ladder(20000, 250, 1.35e-12).String()
	code, _, ok, eresp := post(t, s, deck, "fmax=5e9")
	if code == http.StatusOK {
		t.Skipf("reduction finished before the deadline on this machine: %+v", ok)
	}
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out reduction: %d (%+v), want 504", code, eresp)
	}
	st := s.Snapshot()
	if st.Timeouts != 1 || st.Degraded != 0 {
		t.Fatalf("stats %+v, want 1 timeout and 0 degraded (no spurious ladder)", st)
	}
}

// TestDrainGraceful pins the drain state machine: after BeginDrain the
// health endpoint degrades and new work is refused 503, in-flight work
// finishes, and Drain returns nil.
func TestDrainGraceful(t *testing.T) {
	s, started, release := slowServer(Config{Workers: 1})
	var done sync.WaitGroup
	done.Add(1)
	var inflightCode int
	go func() {
		defer done.Done()
		inflightCode, _, _, _ = post(t, s, tinyDeck("d0"), "fmax=1e9")
	}()
	<-started

	s.BeginDrain()
	if code, body := get(t, s, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz: %d %q", code, body)
	}
	if code, _, _, _ := post(t, s, tinyDeck("d1"), "fmax=1e9"); code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503", code)
	}
	close(release)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("graceful drain errored: %v", err)
	}
	done.Wait()
	if inflightCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", inflightCode)
	}
}

// TestDrainDeadlineCancels pins the forced path: a reduction that will
// not finish is canceled through the pipeline's context when the drain
// deadline expires, and Drain reports how many it killed.
func TestDrainDeadlineCancels(t *testing.T) {
	s, started, release := slowServer(Config{Workers: 1})
	defer close(release)
	var done sync.WaitGroup
	done.Add(1)
	var code int
	go func() {
		defer done.Done()
		code, _, _, _ = post(t, s, tinyDeck("stuck"), "fmax=1e9")
	}()
	<-started
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := s.Drain(drainCtx)
	if err == nil || !strings.Contains(err.Error(), "canceled 1 in-flight") {
		t.Fatalf("forced drain err = %v, want the canceled-count report", err)
	}
	done.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("canceled request finished %d, want 503", code)
	}
}

// TestHealthzAndStatz smoke-tests the observability endpoints.
func TestHealthzAndStatz(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 7})
	defer s.Close()
	if code, body := get(t, s, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, s, "/statz")
	if code != http.StatusOK {
		t.Fatalf("statz: %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statz JSON: %v\n%s", err, body)
	}
	if st.Workers != 3 || st.QueueLimit != 7 || st.Draining {
		t.Fatalf("statz %+v, want workers 3, queue 7, not draining", st)
	}
}

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition did not hold within 10s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
