package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/resilience"
)

// TransientAdaptive integrates from the DC operating point to tstop with
// local-truncation-error step control: every step is computed both as one
// trapezoidal step of size h and as two half steps; the difference
// estimates the local error (order h³ for the trapezoidal rule) and
// drives the usual (tol/err)^{1/3} controller. The accepted solution is
// the more accurate two-half-step one.
//
// tolV is the per-step voltage error target (default 1e-4 when zero);
// hInit seeds the controller and hMax bounds growth (default tstop/50).
// Compared with the fixed-step Transient, adaptive stepping shines on
// circuits with widely separated time constants — e.g. substrate meshes
// whose noise bursts are brief but whose quiet stretches are long.
func (c *Circuit) TransientAdaptive(tstop, hInit, tolV float64) (*TranResult, error) {
	return c.TransientAdaptiveCtx(context.Background(), tstop, hInit, tolV)
}

// TransientAdaptiveCtx is TransientAdaptive with cooperative cancellation
// between steps. Cancellation is distinguished from Newton trouble so the
// controller never shrinks the step in response to a deadline.
func (c *Circuit) TransientAdaptiveCtx(ctx context.Context, tstop, hInit, tolV float64) (*TranResult, error) {
	if hInit <= 0 || tstop <= 0 {
		return nil, fmt.Errorf("sim: adaptive transient needs positive initial step and stop time")
	}
	if tolV <= 0 {
		tolV = 1e-4
	}
	hMax := tstop / 50
	if hInit > hMax {
		hInit = hMax
	}
	op, err := c.DCCtx(ctx)
	if err != nil {
		if resilience.IsCancellation(err) {
			return nil, resilience.Canceled(resilience.StageTransient, ctx)
		}
		return nil, fmt.Errorf("sim: adaptive transient operating point: %w", err)
	}
	x := op.X
	for k := range c.caps {
		cp := &c.caps[k]
		cp.vPrev = nodeV(x, cp.i) - nodeV(x, cp.j)
		cp.iPrev = 0
	}
	res := &TranResult{c: c}
	res.T = append(res.T, 0)
	res.X = append(res.X, append([]float64(nil), x...))

	t := 0.0
	h := hInit
	useBE := true // first step
	const hMinFactor = 1e-9
	for t < tstop-1e-15*tstop {
		if t+h > tstop {
			h = tstop - t
		}
		v0, i0 := c.capState()
		// One full step.
		xFull := append([]float64(nil), x...)
		errFull := c.singleStep(ctx, xFull, t, h, useBE)
		// Two half steps from the same starting state.
		c.restoreCapState(v0, i0)
		xHalf := append([]float64(nil), x...)
		errHalf := c.singleStep(ctx, xHalf, t, h/2, useBE)
		if errHalf == nil {
			errHalf = c.singleStep(ctx, xHalf, t+h/2, h/2, false)
		}
		if resilience.IsCancellation(errFull) || resilience.IsCancellation(errHalf) {
			return nil, resilience.Canceled(resilience.StageTransient, ctx)
		}
		if errFull != nil || errHalf != nil {
			// Newton trouble: restore and halve.
			c.restoreCapState(v0, i0)
			h /= 2
			if h < hMinFactor*tstop {
				return nil, fmt.Errorf("sim: adaptive step underflow at t=%g", t)
			}
			useBE = true
			continue
		}
		// LTE estimate on node voltages.
		lte := 0.0
		for i := 0; i < c.nNodes; i++ {
			if d := math.Abs(xFull[i] - xHalf[i]); d > lte {
				lte = d
			}
		}
		if lte > tolV && h > hMinFactor*tstop {
			// Reject: restore state, shrink.
			c.restoreCapState(v0, i0)
			shrink := 0.9 * math.Cbrt(tolV/math.Max(lte, 1e-300))
			if shrink > 0.5 {
				shrink = 0.5
			}
			if shrink < 0.1 {
				shrink = 0.1
			}
			h *= shrink
			useBE = true
			continue
		}
		// Accept the two-half-step solution (capacitor states already
		// reflect it).
		copy(x, xHalf)
		t += h
		c.Stats.Steps++
		res.T = append(res.T, t)
		res.X = append(res.X, append([]float64(nil), x...))
		useBE = false
		// Grow within bounds.
		grow := 0.9 * math.Cbrt(tolV/math.Max(lte, 1e-300))
		if grow > 2 {
			grow = 2
		}
		if grow < 0.5 {
			grow = 0.5
		}
		h *= grow
		if h > hMax {
			h = hMax
		}
	}
	return res, nil
}
