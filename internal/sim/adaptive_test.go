package sim

import (
	"math"
	"testing"
)

func TestTransientAdaptiveRCCharge(t *testing.T) {
	c := mustBuild(t, `rc step adaptive
v1 a 0 dc 0 pulse(0 5 0 1p 1p 1 2)
r1 a b 1k
c1 b 0 1n
.end
`)
	res, err := c.TransientAdaptive(5e-6, 1e-9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := c.NodeIndex("b")
	rc := 1e-6
	for _, tt := range []float64{0.2e-6, 0.5e-6, 1e-6, 2e-6, 4e-6} {
		want := 5 * (1 - math.Exp(-tt/rc))
		if got := res.At(idx, tt); math.Abs(got-want) > 0.05 {
			t.Fatalf("t=%g: v=%v, want %v", tt, got, want)
		}
	}
	if len(res.T) < 10 {
		t.Fatalf("suspiciously few accepted steps: %d", len(res.T))
	}
}

func TestTransientAdaptiveFewerStepsThanFixed(t *testing.T) {
	// Widely separated time constants: a fast edge then a long quiet
	// tail. Adaptive must use far fewer steps than a fixed grid at the
	// same terminal accuracy.
	deck := `two tau
v1 a 0 dc 0 pulse(0 5 0 1p 1p 1 2)
r1 a b 100
c1 b 0 10p
r2 b d 100k
c2 d 0 1n
.end
`
	cA := mustBuild(t, deck)
	resA, err := cA.TransientAdaptive(500e-6, 1e-9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	cF := mustBuild(t, deck)
	resF, err := cF.Transient(500e-6, 100e-9)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := cA.NodeIndex("d")
	iff, _ := cF.NodeIndex("d")
	if d := math.Abs(resA.At(ia, 400e-6) - resF.At(iff, 400e-6)); d > 0.05 {
		t.Fatalf("adaptive and fixed disagree at the tail: %v", d)
	}
	if len(resA.T) >= len(resF.T) {
		t.Fatalf("adaptive used %d steps, fixed used %d", len(resA.T), len(resF.T))
	}
}

func TestTransientAdaptiveInverter(t *testing.T) {
	c := mustBuild(t, inverterDeck)
	// Add a pulse drive: rebuild from deck text with pulse.
	c2 := mustBuild(t, `switching inverter adaptive
vdd vdd 0 dc 5
vin in 0 dc 0 pulse(0 5 1n 0.1n 0.1n 3n 8n)
mp out in vdd vdd pch w=20u l=1u
mn out in 0 0 nch w=10u l=1u
cl out 0 20f
.model nch nmos vto=0.7 kp=60u gamma=0.4 phi=0.65 lambda=0.02
.model pch pmos vto=-0.7 kp=25u gamma=0.4 phi=0.65 lambda=0.02
.end
`)
	_ = c
	res, err := c2.TransientAdaptive(6e-9, 0.01e-9, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := c2.NodeIndex("out")
	if v := res.At(idx, 0.5e-9); math.Abs(v-5) > 0.1 {
		t.Fatalf("before edge: %v", v)
	}
	if v := res.At(idx, 3.5e-9); math.Abs(v) > 0.1 {
		t.Fatalf("after edge: %v", v)
	}
}

func TestTransientAdaptiveBadArgs(t *testing.T) {
	c := mustBuild(t, "t\nv1 a 0 dc 1\nr1 a 0 1\n.end\n")
	if _, err := c.TransientAdaptive(0, 1e-9, 0); err == nil {
		t.Error("tstop=0 accepted")
	}
	if _, err := c.TransientAdaptive(1e-6, 0, 0); err == nil {
		t.Error("h=0 accepted")
	}
}
