package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/check"
	"repro/internal/resilience"
	"repro/internal/resilience/inject"
	"repro/internal/sparse"
)

// ErrNoConvergence is the sentinel wrapped by every Newton convergence
// failure, so callers can distinguish a stalled iteration (retryable by
// the DC recovery ladder) from structural problems like a singular MNA
// matrix.
var ErrNoConvergence = errors.New("sim: Newton did not converge")

// checkMNASymmetry asserts (under -tags pactcheck) that the assembled MNA
// matrix is numerically symmetric. Every stamp except the MOSFET's —
// resistor, capacitor, inductor and source branch rows, diode
// linearization, gmin — is symmetric, so the invariant holds exactly when
// the circuit has no MOSFETs. The CSC arrays reinterpreted as CSR
// describe the transpose, whose symmetry is the same property.
func (c *Circuit) checkMNASymmetry(ctx string, vals []float64) {
	if !check.Enabled || len(c.mosfets) > 0 {
		return
	}
	check.SymmetricCSR(ctx, &sparse.CSR{
		Rows: c.nUnknown, Cols: c.nUnknown,
		RowPtr: c.colPtr, Col: c.rowIdx, Val: vals,
	}, check.DefaultTol)
}

// DCResult is a DC operating point.
type DCResult struct {
	// X holds node voltages then source branch currents.
	X     []float64
	Iters int
}

// Voltage returns the DC voltage of a named node.
func (c *Circuit) Voltage(res []float64, name string) (float64, error) {
	idx, ok := c.NodeIndex(name)
	if !ok {
		return 0, fmt.Errorf("sim: unknown node %q", name)
	}
	if idx < 0 {
		return 0, nil
	}
	return res[idx], nil
}

// loadStatic stamps the time-independent linear parts plus nonlinear
// linearizations at x, with sources scaled by srcScale and waveforms
// evaluated at time t (t < 0 means DC: waveform sources use their value
// at t=0 of the waveform or DC field).
func (c *Circuit) loadStatic(vals, rhs, x []float64, srcScale, gmin, t float64) {
	for i := range vals {
		vals[i] = 0
	}
	for i := range rhs {
		rhs[i] = 0
	}
	for k := range c.resistors {
		stampG(vals, c.resistors[k].pos, c.resistors[k].g)
	}
	for k := range c.vsrcs {
		v := &c.vsrcs[k]
		for _, p := range []int{v.pos[0], v.pos[1]} {
			if p >= 0 {
				vals[p] += 1
			}
		}
		for _, p := range []int{v.pos[2], v.pos[3]} {
			if p >= 0 {
				vals[p] -= 1
			}
		}
		val := v.src.DC
		if t >= 0 && v.src.Wave != nil {
			val = v.src.At(t)
		}
		rhs[v.br] = srcScale * val
	}
	for k := range c.isrcs {
		is := &c.isrcs[k]
		val := is.src.DC
		if t >= 0 && is.src.Wave != nil {
			val = is.src.At(t)
		}
		// Positive source current flows from N1 through the source to N2:
		// it leaves the circuit at N1 and returns at N2.
		addRHS(rhs, is.i, -srcScale*val)
		addRHS(rhs, is.j, srcScale*val)
	}
	// Inductor branch relation: at DC an inductor is a short
	// (v_i − v_j = 0); transient and AC loads add the reactive term on
	// the branch diagonal on top of this pattern.
	for k := range c.inductors {
		l := &c.inductors[k]
		if l.pos[0] >= 0 {
			vals[l.pos[0]] += 1 // KCL at i: +i_br
		}
		if l.pos[1] >= 0 {
			vals[l.pos[1]] += 1 // branch: +v_i
		}
		if l.pos[2] >= 0 {
			vals[l.pos[2]] -= 1 // KCL at j: −i_br
		}
		if l.pos[3] >= 0 {
			vals[l.pos[3]] -= 1 // branch: −v_j
		}
	}
	for k := range c.diodes {
		c.diodes[k].load(vals, rhs, x)
	}
	for k := range c.mosfets {
		c.mosfets[k].load(vals, rhs, x)
	}
	for i := 0; i < c.nNodes; i++ {
		vals[c.diagPos[i]] += gmin
	}
}

// newton iterates the Newton–Raphson loop on top of an arbitrary loader.
// load must fill vals/rhs given the candidate x.
func (c *Circuit) newton(x []float64, load func(vals, rhs, x []float64), maxIter int) (int, error) {
	return c.newtonCtx(context.Background(), x, load, maxIter)
}

// newtonCtx is newton with a cooperative cancellation check between
// iterations; a canceled loop reports the context error so ladders do
// not retry through a deadline.
func (c *Circuit) newtonCtx(ctx context.Context, x []float64, load func(vals, rhs, x []float64), maxIter int) (int, error) {
	n := c.nUnknown
	vals := make([]float64, len(c.rowIdx))
	rhs := make([]float64, n)
	const (
		absTol  = 1e-9
		relTol  = 1e-6
		maxStep = 1.0 // volts per Newton step (damping)
	)
	for iter := 1; iter <= maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return iter - 1, fmt.Errorf("sim: Newton canceled at iteration %d: %w", iter, err)
		}
		if inject.Enabled && inject.ShouldFail(inject.NewtonIter, iter-1) {
			return iter, fmt.Errorf("%w: injected stall at iteration %d of %d", ErrNoConvergence, iter, maxIter)
		}
		load(vals, rhs, x)
		c.checkMNASymmetry("sim Newton MNA matrix", vals)
		lu, err := LUFactor(n, c.colPtr, c.rowIdx, vals, c.q, math.Abs, 0.1)
		if err != nil {
			return iter, fmt.Errorf("sim: %w", err)
		}
		c.Stats.Factorizations++
		c.Stats.LUNNZ = lu.NNZ()
		if b := int64(lu.NNZ() * 16); b > c.Stats.PeakBytes {
			c.Stats.PeakBytes = b
		}
		lu.Solve(rhs) // rhs now holds x_new
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			d := rhs[i] - x[i]
			if i < c.nNodes {
				if d > maxStep {
					d = maxStep
				} else if d < -maxStep {
					d = -maxStep
				}
			}
			if a := math.Abs(d); a > maxDelta && i < c.nNodes {
				maxDelta = a
			}
			x[i] += d
		}
		c.Stats.NewtonIters++
		if maxDelta < absTol+relTol*maxAbsVec(x[:c.nNodes]) {
			return iter, nil
		}
	}
	return maxIter, fmt.Errorf("%w in %d iterations", ErrNoConvergence, maxIter)
}

func maxAbsVec(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// DC computes the DC operating point with gmin stepping and, failing
// that, source stepping.
func (c *Circuit) DC() (*DCResult, error) {
	return c.DCCtx(context.Background())
}

// DCCtx is DC with cooperative cancellation and a recorded recovery
// ladder. A direct Newton failure escalates to gmin stepping, then to
// source stepping; the rung that rescues the solve is reported in
// c.Stats.Recoveries, and if every rung fails the terminal error is a
// resilience.StageError carrying the full attempt history. Cancellation
// is never retried through — a canceled rung surrenders immediately.
func (c *Circuit) DCCtx(ctx context.Context) (*DCResult, error) {
	x := make([]float64, c.nUnknown)
	loader := func(gmin, scale float64) func(vals, rhs, x []float64) {
		return func(vals, rhs, xx []float64) {
			c.loadStatic(vals, rhs, xx, scale, gmin, -1)
		}
	}
	it, derr := c.newtonCtx(ctx, x, loader(c.Gmin, 1), 100)
	if derr == nil {
		return &DCResult{X: x, Iters: it}, nil
	}
	if resilience.IsCancellation(derr) {
		return nil, resilience.Canceled(resilience.StageNewton, ctx)
	}
	attempts := []resilience.Attempt{{Action: "newton(direct)", Err: derr}}
	// Gmin stepping: continuation in the diagonal damping, each solve warm
	// starting the next, then a final solve at the nominal gmin.
	for i := range x {
		x[i] = 0
	}
	total := 0
	var gerr error
	for _, g := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10} {
		it, err := c.newtonCtx(ctx, x, loader(g, 1), 120)
		total += it
		if err != nil {
			gerr = fmt.Errorf("at gmin %g: %w", g, err)
			break
		}
	}
	if gerr == nil {
		it, err := c.newtonCtx(ctx, x, loader(c.Gmin, 1), 150)
		if err == nil {
			c.Stats.Recoveries = append(c.Stats.Recoveries, resilience.Recovery{
				Stage:    resilience.StageNewton,
				Action:   "gmin stepping",
				Attempts: len(attempts) + 1,
				Reason:   derr.Error(),
			})
			return &DCResult{X: x, Iters: total + it}, nil
		}
		gerr = err
	}
	if resilience.IsCancellation(gerr) {
		return nil, resilience.Canceled(resilience.StageNewton, ctx)
	}
	attempts = append(attempts, resilience.Attempt{Action: "gmin stepping", Err: gerr})
	// Source stepping: continuation in the excitation, ramping every
	// source from 10% to full strength under a tiny fixed gmin.
	for i := range x {
		x[i] = 0
	}
	total = 0
	var serr error
	for _, sc := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		it, err := c.newtonCtx(ctx, x, loader(1e-9, sc), 150)
		total += it
		if err != nil {
			serr = fmt.Errorf("at source scale %g: %w", sc, err)
			break
		}
	}
	if serr == nil {
		it, err := c.newtonCtx(ctx, x, loader(c.Gmin, 1), 150)
		if err == nil {
			c.Stats.Recoveries = append(c.Stats.Recoveries, resilience.Recovery{
				Stage:    resilience.StageNewton,
				Action:   "source stepping",
				Attempts: len(attempts) + 1,
				Reason:   derr.Error(),
			})
			return &DCResult{X: x, Iters: total + it}, nil
		}
		serr = err
	}
	if resilience.IsCancellation(serr) {
		return nil, resilience.Canceled(resilience.StageNewton, ctx)
	}
	attempts = append(attempts, resilience.Attempt{Action: "source stepping", Err: serr})
	return nil, resilience.NewStageError(resilience.StageNewton,
		"gmin and source stepping exhausted", attempts, derr)
}

// TranResult is a transient waveform set.
type TranResult struct {
	T []float64
	X [][]float64 // per time point, the unknown vector
	c *Circuit
}

// Waveform returns the voltage waveform of a named node.
func (r *TranResult) Waveform(name string) ([]float64, error) {
	idx, ok := r.c.NodeIndex(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown node %q", name)
	}
	out := make([]float64, len(r.T))
	if idx >= 0 {
		for k, x := range r.X {
			out[k] = x[idx]
		}
	}
	return out, nil
}

// At linearly interpolates the voltage of node idx at time t.
func (r *TranResult) At(idx int, t float64) float64 {
	if len(r.T) == 0 {
		return 0
	}
	if t <= r.T[0] {
		return value(r.X[0], idx)
	}
	if t >= r.T[len(r.T)-1] {
		return value(r.X[len(r.T)-1], idx)
	}
	lo, hi := 0, len(r.T)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - r.T[lo]) / (r.T[hi] - r.T[lo])
	return value(r.X[lo], idx)*(1-f) + value(r.X[hi], idx)*f
}

func value(x []float64, idx int) float64 {
	if idx < 0 {
		return 0
	}
	return x[idx]
}

// Transient runs a fixed-step transient analysis from the DC operating
// point at t=0 to tstop with step h, using trapezoidal integration with a
// backward-Euler first step. If Newton fails at a step the step is
// recursively halved (up to 10 levels).
func (c *Circuit) Transient(tstop, h float64) (*TranResult, error) {
	return c.TransientCtx(context.Background(), tstop, h)
}

// TransientCtx is Transient with cooperative cancellation between time
// steps (and between Newton iterations within a step): a canceled run
// returns a resilience.StageError for the transient stage instead of a
// truncated waveform.
func (c *Circuit) TransientCtx(ctx context.Context, tstop, h float64) (*TranResult, error) {
	if h <= 0 || tstop <= 0 {
		return nil, fmt.Errorf("sim: transient needs positive step and stop time")
	}
	op, err := c.DCCtx(ctx)
	if err != nil {
		if resilience.IsCancellation(err) {
			return nil, resilience.Canceled(resilience.StageTransient, ctx)
		}
		return nil, fmt.Errorf("sim: transient operating point: %w", err)
	}
	x := op.X
	// Initialize capacitor states from the OP (zero current).
	for k := range c.caps {
		cp := &c.caps[k]
		cp.vPrev = nodeV(x, cp.i) - nodeV(x, cp.j)
		cp.iPrev = 0
	}
	res := &TranResult{c: c}
	res.T = append(res.T, 0)
	res.X = append(res.X, append([]float64(nil), x...))
	t := 0.0
	firstStep := true
	for t < tstop-1e-15*tstop {
		step := h
		if t+step > tstop {
			step = tstop - t
		}
		if err := c.advance(ctx, x, t, step, firstStep, 0); err != nil {
			if resilience.IsCancellation(err) {
				return nil, resilience.Canceled(resilience.StageTransient, ctx)
			}
			return nil, fmt.Errorf("sim: transient at t=%g: %w", t, err)
		}
		firstStep = false
		t += step
		c.Stats.Steps++
		res.T = append(res.T, t)
		res.X = append(res.X, append([]float64(nil), x...))
	}
	return res, nil
}

// singleStep performs exactly one integration step of size h starting at
// time t, updating x and the capacitor states on success. It does not
// retry; callers handle step control.
func (c *Circuit) singleStep(ctx context.Context, x []float64, t, h float64, useBE bool) error {
	xTry := append([]float64(nil), x...)
	tNext := t + h
	// Inductor history from the incoming solution: branch current is the
	// branch unknown, branch voltage comes from the node voltages.
	indI := make([]float64, len(c.inductors))
	indV := make([]float64, len(c.inductors))
	for k := range c.inductors {
		l := &c.inductors[k]
		indI[k] = x[l.br]
		indV[k] = nodeV(x, l.i) - nodeV(x, l.j)
	}
	load := func(vals, rhs, xx []float64) {
		c.loadStatic(vals, rhs, xx, 1, c.Gmin, tNext)
		for k := range c.caps {
			cp := &c.caps[k]
			if cp.c == 0 {
				continue
			}
			var geq, ieq float64
			if useBE {
				geq = cp.c / h
				ieq = geq * cp.vPrev
			} else {
				geq = 2 * cp.c / h
				ieq = geq*cp.vPrev + cp.iPrev
			}
			stampG(vals, cp.pos, geq)
			addRHS(rhs, cp.i, ieq)
			addRHS(rhs, cp.j, -ieq)
		}
		// Inductor companion: trapezoidal
		//   v_i − v_j − (2L/h)·i_new = −v_old − (2L/h)·i_old,
		// backward Euler
		//   v_i − v_j − (L/h)·i_new = −(L/h)·i_old.
		for k := range c.inductors {
			l := &c.inductors[k]
			var zeq, veq float64
			if useBE {
				zeq = l.l / h
				veq = -zeq * indI[k]
			} else {
				zeq = 2 * l.l / h
				veq = -zeq*indI[k] - indV[k]
			}
			if l.pos[4] >= 0 {
				vals[l.pos[4]] -= zeq
			}
			rhs[l.br] += veq
		}
	}
	if _, err := c.newtonCtx(ctx, xTry, load, 60); err != nil {
		return err
	}
	// Accept: update capacitor states.
	for k := range c.caps {
		cp := &c.caps[k]
		if cp.c == 0 {
			continue
		}
		vNew := nodeV(xTry, cp.i) - nodeV(xTry, cp.j)
		if useBE {
			cp.iPrev = cp.c / h * (vNew - cp.vPrev)
		} else {
			cp.iPrev = 2*cp.c/h*(vNew-cp.vPrev) - cp.iPrev
		}
		cp.vPrev = vNew
	}
	copy(x, xTry)
	return nil
}

// capState snapshots the capacitor companion states.
func (c *Circuit) capState() (v, i []float64) {
	v = make([]float64, len(c.caps))
	i = make([]float64, len(c.caps))
	for k := range c.caps {
		v[k], i[k] = c.caps[k].vPrev, c.caps[k].iPrev
	}
	return v, i
}

// restoreCapState restores a capState snapshot.
func (c *Circuit) restoreCapState(v, i []float64) {
	for k := range c.caps {
		c.caps[k].vPrev, c.caps[k].iPrev = v[k], i[k]
	}
}

// advance integrates one step of size h starting at time t, updating x
// and the capacitor states. depth guards the recursive step halving on
// Newton failure.
func (c *Circuit) advance(ctx context.Context, x []float64, t, h float64, useBE bool, depth int) error {
	if depth > 10 {
		return fmt.Errorf("step size underflow after %d halvings", depth)
	}
	if err := c.singleStep(ctx, x, t, h, useBE); err != nil {
		if resilience.IsCancellation(err) {
			return err
		}
		// Halve the step: integrate two half steps (backward Euler on the
		// halves for stability).
		if err2 := c.advance(ctx, x, t, h/2, true, depth+1); err2 != nil {
			return err2
		}
		return c.advance(ctx, x, t+h/2, h/2, true, depth+1)
	}
	return nil
}

// ACResult holds a small-signal frequency sweep.
type ACResult struct {
	F []float64
	X [][]complex128
	c *Circuit
}

// Mag returns |V(node)| across the sweep.
func (r *ACResult) Mag(name string) ([]float64, error) {
	idx, ok := r.c.NodeIndex(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown node %q", name)
	}
	out := make([]float64, len(r.F))
	if idx >= 0 {
		for k, x := range r.X {
			out[k] = cmplx.Abs(x[idx])
		}
	}
	return out, nil
}

// AC performs a small-signal sweep at the given frequencies (Hz). The
// operating point is computed first; MOSFETs contribute their
// linearized conductances, capacitors jωC, and sources their ACMag.
func (c *Circuit) AC(freqs []float64) (*ACResult, error) {
	return c.ACCtx(context.Background(), freqs)
}

// ACCtx is AC with cooperative cancellation between frequency points: a
// canceled sweep returns a resilience.StageError for the AC stage
// instead of partial results.
func (c *Circuit) ACCtx(ctx context.Context, freqs []float64) (*ACResult, error) {
	if _, err := c.DCCtx(ctx); err != nil {
		if resilience.IsCancellation(err) {
			return nil, resilience.Canceled(resilience.StageAC, ctx)
		}
		return nil, fmt.Errorf("sim: AC operating point: %w", err)
	}
	n := c.nUnknown
	vals := make([]complex128, len(c.rowIdx))
	rhs := make([]complex128, n)
	res := &ACResult{c: c}
	for fi, f := range freqs {
		if ctx.Err() != nil {
			return nil, resilience.Canceled(resilience.StageAC, ctx)
		}
		omega := 2 * math.Pi * f
		for i := range vals {
			vals[i] = 0
		}
		for i := range rhs {
			rhs[i] = 0
		}
		stampGC := func(pos [4]int, g complex128) {
			if pos[0] >= 0 {
				vals[pos[0]] += g
			}
			if pos[1] >= 0 {
				vals[pos[1]] += g
			}
			if pos[2] >= 0 {
				vals[pos[2]] -= g
			}
			if pos[3] >= 0 {
				vals[pos[3]] -= g
			}
		}
		for k := range c.resistors {
			stampGC(c.resistors[k].pos, complex(c.resistors[k].g, 0))
		}
		for k := range c.caps {
			stampGC(c.caps[k].pos, complex(0, omega*c.caps[k].c))
		}
		for k := range c.vsrcs {
			v := &c.vsrcs[k]
			for _, p := range []int{v.pos[0], v.pos[1]} {
				if p >= 0 {
					vals[p] += 1
				}
			}
			for _, p := range []int{v.pos[2], v.pos[3]} {
				if p >= 0 {
					vals[p] -= 1
				}
			}
			rhs[v.br] = complex(v.src.ACMag, 0)
		}
		for k := range c.isrcs {
			is := &c.isrcs[k]
			if is.i >= 0 {
				rhs[is.i] -= complex(is.src.ACMag, 0)
			}
			if is.j >= 0 {
				rhs[is.j] += complex(is.src.ACMag, 0)
			}
		}
		for k := range c.inductors {
			l := &c.inductors[k]
			if l.pos[0] >= 0 {
				vals[l.pos[0]] += 1
			}
			if l.pos[1] >= 0 {
				vals[l.pos[1]] += 1
			}
			if l.pos[2] >= 0 {
				vals[l.pos[2]] -= 1
			}
			if l.pos[3] >= 0 {
				vals[l.pos[3]] -= 1
			}
			if l.pos[4] >= 0 {
				vals[l.pos[4]] -= complex(0, omega*l.l)
			}
		}
		for k := range c.diodes {
			stampGC(c.diodes[k].pos, complex(c.diodes[k].opGd, 0))
		}
		for k := range c.mosfets {
			m := &c.mosfets[k]
			fs := -(m.opFd + m.opFg + m.opFb)
			cols := [4]float64{m.opFd, m.opFg, fs, m.opFb}
			for b, v := range cols {
				if p := m.pos[0][b]; p >= 0 {
					vals[p] += complex(v, 0)
				}
				if p := m.pos[1][b]; p >= 0 {
					vals[p] -= complex(v, 0)
				}
			}
		}
		for i := 0; i < c.nNodes; i++ {
			vals[c.diagPos[i]] += complex(c.Gmin, 0)
		}
		if check.Enabled && len(c.mosfets) == 0 {
			re := make([]float64, len(vals))
			im := make([]float64, len(vals))
			for p, v := range vals {
				re[p] = real(v)
				im[p] = imag(v)
			}
			c.checkMNASymmetry("sim AC MNA matrix (real part)", re)
			c.checkMNASymmetry("sim AC MNA matrix (imaginary part)", im)
		}
		lu, err := LUFactor(n, c.colPtr, c.rowIdx, vals, c.q, cmplx.Abs, 0.1)
		if inject.Enabled && err == nil && inject.ShouldFail(inject.SimACComplexSolve, fi) {
			err = fmt.Errorf("complex MNA matrix numerically singular")
		}
		if err != nil {
			return nil, fmt.Errorf("sim: AC at %g Hz: %w", f, err)
		}
		c.Stats.Factorizations++
		if b := int64(lu.NNZ() * 32); b > c.Stats.PeakBytes {
			c.Stats.PeakBytes = b
		}
		x := append([]complex128(nil), rhs...)
		lu.Solve(x)
		res.F = append(res.F, f)
		res.X = append(res.X, x)
	}
	return res, nil
}

// LogSpace returns n log-spaced frequencies from f1 to f2 inclusive.
func LogSpace(f1, f2 float64, n int) []float64 {
	if n < 2 {
		return []float64{f1}
	}
	out := make([]float64, n)
	l1, l2 := math.Log10(f1), math.Log10(f2)
	for i := 0; i < n; i++ {
		out[i] = math.Pow(10, l1+(l2-l1)*float64(i)/float64(n-1))
	}
	return out
}
